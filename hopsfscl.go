// Package hopsfscl is a from-scratch reproduction of HopsFS-CL, the
// availability-zone-aware distributed hierarchical file system of
// "Distributed Hierarchical File Systems strike back in the Cloud"
// (ICDCS 2020): HDFS-compatible metadata operations executed as
// transactions on an NDB-style replicated storage engine, with AZ
// awareness at the metadata storage, metadata serving, and block storage
// layers.
//
// The whole system — network, database, metadata servers, block storage,
// clients — runs inside a deterministic discrete-event simulation, so a
// three-AZ deployment with replicated metadata fits in one process and one
// test. The public API is synchronous: each call drives the simulation
// until the operation completes.
//
//	cluster, err := hopsfscl.New()        // HopsFS-CL (3,3): 3 AZs, RF 3
//	defer cluster.Close()
//	fs := cluster.Client(1)               // a client in us-west1-a
//	fs.MkdirAll("/data/logs")
//	fs.WriteFile("/data/logs/app.log", 64<<10)  // small file: inline in NDB
//	cluster.FailZone(2)                   // an AZ goes dark
//	fs.ReadFile("/data/logs/app.log")     // still readable
//
// The benchmark harness reproducing every table and figure of the paper
// lives in cmd/hopsbench; see DESIGN.md and EXPERIMENTS.md.
package hopsfscl

import (
	"errors"
	"fmt"
	"time"

	"hopsfscl/internal/bench"
	"hopsfscl/internal/chaos"
	"hopsfscl/internal/core"
	"hopsfscl/internal/namenode"
	"hopsfscl/internal/sim"
	"hopsfscl/internal/simnet"
	"hopsfscl/internal/workload"
)

// Re-exported file system errors.
var (
	ErrNotFound    = namenode.ErrNotFound
	ErrExists      = namenode.ErrExists
	ErrNotDir      = namenode.ErrNotDir
	ErrIsDir       = namenode.ErrIsDir
	ErrNotEmpty    = namenode.ErrNotEmpty
	ErrInvalidPath = namenode.ErrInvalidPath
)

// FileInfo describes a file or directory.
type FileInfo struct {
	Name   string
	Path   string
	Dir    bool
	Size   int64
	Perm   uint16
	Owner  string
	Inline bool // small file stored inline in the metadata layer
	Blocks int  // block count for large files
}

// Option configures New.
type Option interface{ apply(*options) }

type options struct {
	setupName         string
	metadataServers   int
	storageNodes      int
	blockDataNodes    int
	seed              int64
	shards            int
	withoutBlocks     bool
	objectStoreBlocks bool
}

type optionFunc func(*options)

func (f optionFunc) apply(o *options) { f(o) }

// WithSetup selects one of the paper's deployment setups by legend name,
// e.g. "HopsFS-CL (3,3)" (the default), "HopsFS (2,1)", "HopsFS-CL (2,3)".
func WithSetup(name string) Option {
	return optionFunc(func(o *options) { o.setupName = name })
}

// WithMetadataServers sets the number of metadata servers (default 3, one
// per AZ).
func WithMetadataServers(n int) Option {
	return optionFunc(func(o *options) { o.metadataServers = n })
}

// WithStorageNodes sets the NDB datanode count (default 6; the paper's
// evaluation uses 12).
func WithStorageNodes(n int) Option {
	return optionFunc(func(o *options) { o.storageNodes = n })
}

// WithBlockDataNodes sets the block storage datanode count (default 9 for
// three-AZ deployments).
func WithBlockDataNodes(n int) Option {
	return optionFunc(func(o *options) { o.blockDataNodes = n })
}

// WithoutBlockLayer builds a metadata-only cluster (all files inline).
func WithoutBlockLayer() Option {
	return optionFunc(func(o *options) { o.withoutBlocks = true })
}

// WithObjectStoreBlocks stores large-file blocks in a cloud object store
// instead of on replicated block datanodes — the integration the paper
// names as future work (§VII) to make storage and inter-AZ networking
// costs competitive with native cloud object stores.
func WithObjectStoreBlocks() Option {
	return optionFunc(func(o *options) { o.objectStoreBlocks = true })
}

// WithShards hash-shards the namespace across n independent NDB clusters
// (default 1, the paper's single-cluster deployment). Rows route by the
// FNV-64a hash of the parent directory's id, so directory listings and
// parent-child operations stay on one shard; only a rename across the
// hash boundary pays a cross-cluster ordered commit. See DESIGN.md §16.
func WithShards(n int) Option {
	return optionFunc(func(o *options) { o.shards = n })
}

// WithSeed sets the deterministic simulation seed (default 1).
func WithSeed(seed int64) Option {
	return optionFunc(func(o *options) { o.seed = seed })
}

// Cluster is a running HopsFS-CL deployment.
type Cluster struct {
	d *core.Deployment
}

// New builds and starts a cluster. The default deployment is the paper's
// HopsFS-CL (3,3): metadata replicated three ways across the three AZs of
// a us-west1-like region, Read Backup on all tables, AZ-aware coordinator
// selection and block placement.
func New(opts ...Option) (*Cluster, error) {
	o := options{
		setupName:       "HopsFS-CL (3,3)",
		metadataServers: 3,
		storageNodes:    6,
		seed:            1,
	}
	for _, opt := range opts {
		opt.apply(&o)
	}
	setup, ok := core.SetupByName(o.setupName)
	if !ok {
		return nil, fmt.Errorf("hopsfscl: unknown setup %q", o.setupName)
	}
	if setup.System != core.HopsFS && setup.System != core.HopsFSCL {
		return nil, errors.New("hopsfscl: the CephFS baselines are benchmark-only; use cmd/hopsbench")
	}
	buildOpts := core.Options{
		Setup:            setup,
		MetadataServers:  o.metadataServers,
		ClientsPerServer: 0, // no benchmark clients; the API creates clients on demand
		StorageNodes:     o.storageNodes,
		// A partition count in the spirit of the evaluation deployments.
		PartitionsPerTable: 4 * o.storageNodes,
		WithBlockLayer:     !o.withoutBlocks,
		BlockDataNodes:     o.blockDataNodes,
		ObjectStoreBlocks:  o.objectStoreBlocks,
		Shards:             o.shards,
		Namespace:          workload.NamespaceSpec{}, // start empty
		Seed:               o.seed,
	}
	d, err := core.Build(buildOpts)
	if err != nil {
		return nil, err
	}
	c := &Cluster{d: d}
	// Let elections and heartbeats establish steady state.
	d.Env.RunFor(3 * time.Second)
	return c, nil
}

// Close tears the cluster down.
func (c *Cluster) Close() { c.d.Close() }

// Setups returns the names of all predefined deployments.
func Setups() []string {
	out := make([]string, len(core.PaperSetups))
	for i, s := range core.PaperSetups {
		out[i] = s.Name
	}
	return out
}

// Zones returns the availability zone names of the cluster's region.
func (c *Cluster) Zones() []string {
	topo := c.d.Net.Topology()
	out := make([]string, topo.Zones())
	for i := range out {
		out[i] = topo.ZoneName(simnet.ZoneID(i + 1))
	}
	return out
}

// run executes fn as a simulation process and drives the clock until it
// finishes.
func (c *Cluster) run(fn func(p *sim.Proc) error) error {
	var err error
	done := false
	c.d.Env.Spawn("api", func(p *sim.Proc) {
		err = fn(p)
		p.Flush() // settle deferred I/O time before reporting completion
		done = true
	})
	for i := 0; !done && i < 10000; i++ {
		c.d.Env.RunFor(10 * time.Millisecond)
	}
	if !done {
		return errors.New("hopsfscl: operation did not complete within the simulation budget")
	}
	return err
}

// Advance runs the cluster for d of virtual time (heartbeats, elections,
// checkpoints, re-replication all progress).
func (c *Cluster) Advance(d time.Duration) { c.d.Env.RunFor(d) }

// now returns the virtual clock (used by benchmarks to time operations).
func (c *Cluster) now() time.Duration { return c.d.Env.Now() }

// Client returns a file system client in the given zone (1-based; the
// client's locationDomainId is set for AZ-aware deployments).
func (c *Cluster) Client(zone int) *FS {
	z := simnet.ZoneID(zone)
	domain := z
	if c.d.Setup.System == core.HopsFS {
		domain = simnet.ZoneUnset
	}
	if c.d.Setup.Zones == 1 {
		z = 2 // single-AZ deployments live in us-west1-b
		domain = simnet.ZoneUnset
	}
	cl := c.d.NS.NewClient(z, simnet.HostID(5000+len(c.d.Clients)+zone*17), domain)
	return &FS{c: c, cl: cl}
}

// FailZone takes down every storage and metadata server in the zone.
func (c *Cluster) FailZone(zone int) {
	z := simnet.ZoneID(zone)
	c.d.DB.FailZone(z)
	for _, nn := range c.d.NS.NameNodes() {
		if nn.Node.Zone() == z {
			nn.Fail()
		}
	}
	if c.d.Blocks != nil {
		for _, dn := range c.d.Blocks.DataNodes() {
			if dn.Node.Zone() == z {
				dn.Node.Fail()
			}
		}
	}
	// Give failure detection, promotion and re-election time to act.
	c.d.Env.RunFor(2 * time.Second)
}

// PartitionZones severs the network between two zones. The NDB arbitration
// protocol decides which side survives; call Advance or any operation to
// let it play out.
func (c *Cluster) PartitionZones(a, b int) {
	c.d.DB.NextArbitrationEpoch()
	c.d.Net.Partition(simnet.ZoneID(a), simnet.ZoneID(b))
	c.d.Env.RunFor(2 * time.Second)
}

// HealZones restores the network between two zones.
func (c *Cluster) HealZones(a, b int) {
	c.d.Net.Heal(simnet.ZoneID(a), simnet.ZoneID(b))
}

// RecoverZone brings a failed zone back: storage nodes rejoin the cluster
// and resync their partitions from surviving primaries, metadata servers
// restart and rejoin the leader election, and block datanodes come back
// online.
func (c *Cluster) RecoverZone(zone int) error {
	z := simnet.ZoneID(zone)
	err := c.run(func(p *sim.Proc) error {
		c.d.DB.RecoverZone(p, z)
		return nil
	})
	if err != nil {
		return err
	}
	for _, nn := range c.d.NS.NameNodes() {
		if nn.Node.Zone() == z {
			nn.Recover()
		}
	}
	if c.d.Blocks != nil {
		for _, dn := range c.d.Blocks.DataNodes() {
			if dn.Node.Zone() == z {
				dn.Node.Recover()
			}
		}
	}
	c.d.Env.RunFor(3 * time.Second) // elections, heartbeats settle
	return nil
}

// FailNameNode kills the i-th metadata server (1-based).
func (c *Cluster) FailNameNode(i int) error {
	nns := c.d.NS.NameNodes()
	if i < 1 || i > len(nns) {
		return fmt.Errorf("hopsfscl: no metadata server %d", i)
	}
	nns[i-1].Fail()
	c.d.Env.RunFor(2 * time.Second)
	return nil
}

// LeaderID returns the id of the currently elected leader metadata server.
func (c *Cluster) LeaderID() int {
	if l := c.d.NS.ElectedLeader(); l != nil {
		return l.ID
	}
	return 0
}

// Stats is a snapshot of cluster-wide counters.
type Stats struct {
	// Transactions committed/aborted on the metadata storage layer.
	CommittedTxns, AbortedTxns int64
	// CrossZoneBytes is cumulative traffic that crossed AZ boundaries.
	CrossZoneBytes int64
	// TotalBytes is cumulative traffic on all links.
	TotalBytes int64
	// ReReplications counts block re-replications after failures.
	ReReplications int64
	// AliveStorageNodes / AliveNameNodes report current membership.
	AliveStorageNodes, AliveNameNodes int
}

// Stats returns a snapshot of cluster counters.
func (c *Cluster) Stats() Stats {
	s := Stats{
		CommittedTxns:  c.d.DB.Stats.Committed,
		AbortedTxns:    c.d.DB.Stats.Aborted,
		CrossZoneBytes: c.d.Net.CrossZoneBytes(),
		TotalBytes:     c.d.Net.TotalBytes(),
	}
	if c.d.Blocks != nil {
		s.ReReplications = c.d.Blocks.ReReplications
	}
	for _, dn := range c.d.DB.DataNodes() {
		if dn.Alive() {
			s.AliveStorageNodes++
		}
	}
	for _, nn := range c.d.NS.NameNodes() {
		if nn.Alive() {
			s.AliveNameNodes++
		}
	}
	return s
}

// FS is a synchronous file system handle bound to one client.
type FS struct {
	c  *Cluster
	cl *namenode.Client
}

// Mkdir creates a directory.
func (f *FS) Mkdir(path string) error {
	return f.c.run(func(p *sim.Proc) error { return f.cl.Mkdir(p, path) })
}

// MkdirAll creates a directory and any missing ancestors.
func (f *FS) MkdirAll(path string) error {
	return f.c.run(func(p *sim.Proc) error { return f.cl.MkdirAll(p, path) })
}

// Create creates an empty file.
func (f *FS) Create(path string) error {
	return f.c.run(func(p *sim.Proc) error { return f.cl.Create(p, path, 0) })
}

// WriteFile creates a file of the given size. Files at or below 128 KB are
// stored inline with the metadata in NDB (§II-A3); larger files are split
// into blocks, replicated with at least one copy per AZ (§IV-C).
func (f *FS) WriteFile(path string, size int64) error {
	return f.c.run(func(p *sim.Proc) error { return f.cl.WriteFile(p, path, size) })
}

// ReadFile reads a file (metadata + inline data or AZ-local block reads)
// and returns its info.
func (f *FS) ReadFile(path string) (FileInfo, error) {
	var out FileInfo
	err := f.c.run(func(p *sim.Proc) error {
		ino, err := f.cl.ReadFile(p, path)
		if err != nil {
			return err
		}
		out = toFileInfo(path, ino)
		return nil
	})
	return out, err
}

// Stat returns metadata for a path.
func (f *FS) Stat(path string) (FileInfo, error) {
	var out FileInfo
	err := f.c.run(func(p *sim.Proc) error {
		ino, err := f.cl.Stat(p, path)
		if err != nil {
			return err
		}
		out = toFileInfo(path, ino)
		return nil
	})
	return out, err
}

// List returns a directory's children, name-sorted.
func (f *FS) List(path string) ([]FileInfo, error) {
	var out []FileInfo
	err := f.c.run(func(p *sim.Proc) error {
		kids, err := f.cl.List(p, path)
		if err != nil {
			return err
		}
		for _, k := range kids {
			out = append(out, toFileInfo(joinPath(path, k.Name), k))
		}
		return nil
	})
	return out, err
}

// Delete removes a file or directory (recursive removes subtrees).
func (f *FS) Delete(path string, recursive bool) error {
	return f.c.run(func(p *sim.Proc) error { return f.cl.Delete(p, path, recursive) })
}

// Rename atomically moves src to dst — the operation cloud object stores
// cannot provide (§I).
func (f *FS) Rename(src, dst string) error {
	return f.c.run(func(p *sim.Proc) error { return f.cl.Rename(p, src, dst) })
}

// SetPermission updates mode bits.
func (f *FS) SetPermission(path string, perm uint16) error {
	return f.c.run(func(p *sim.Proc) error { return f.cl.SetPermission(p, path, perm) })
}

// SetOwner updates ownership.
func (f *FS) SetOwner(path, owner string) error {
	return f.c.run(func(p *sim.Proc) error { return f.cl.SetOwner(p, path, owner) })
}

// Exists reports whether a path resolves.
func (f *FS) Exists(path string) (bool, error) {
	var ok bool
	err := f.c.run(func(p *sim.Proc) error {
		got, err := f.cl.Exists(p, path)
		ok = got
		return err
	})
	return ok, err
}

// Du returns a subtree's content summary: file count, directory count
// (including the root of the walk), and total logical bytes.
func (f *FS) Du(path string) (files, dirs int, bytes int64, err error) {
	err = f.c.run(func(p *sim.Proc) error {
		var ierr error
		files, dirs, bytes, ierr = f.cl.Du(p, path)
		return ierr
	})
	return files, dirs, bytes, err
}

func toFileInfo(path string, ino *namenode.Inode) FileInfo {
	return FileInfo{
		Name:   ino.Name,
		Path:   path,
		Dir:    ino.Dir,
		Size:   ino.Size,
		Perm:   ino.Perm,
		Owner:  ino.Owner,
		Inline: ino.InlineSize > 0,
		Blocks: len(ino.Blocks),
	}
}

func joinPath(dir, name string) string {
	if dir == "/" {
		return "/" + name
	}
	return dir + "/" + name
}

// ChaosReport is the outcome of one chaos campaign: operation and history
// counts, invariant checkpoints and violations, per-fault recovery times,
// and unavailability windows. Render formats it deterministically.
type ChaosReport = chaos.Report

// ServingNameNodes reports how many metadata servers currently accept new
// operations (draining servers no longer count). Zero for CephFS clusters,
// which have no elastic tier.
func (c *Cluster) ServingNameNodes() int { return c.d.ServingNNs() }

// ScaleUp commissions n additional metadata servers online, placed in the
// zones with the fewest serving servers. The tier is stateless (§II-A2), so
// new servers serve as soon as they join the election; clients re-spread
// over the grown set at their next operation.
func (c *Cluster) ScaleUp(n int) error {
	if n <= 0 {
		return fmt.Errorf("hopsfscl: ScaleUp(%d)", n)
	}
	c.d.AddNameNodes(n)
	c.d.Env.RunFor(500 * time.Millisecond) // join the election, start serving
	return nil
}

// ScaleDown gracefully drains n metadata servers (youngest first, never
// below one serving server) and waits for their in-flight operations to
// finish before decommissioning them. Returns how many servers actually
// left the tier.
func (c *Cluster) ScaleDown(n int) int {
	if n <= 0 {
		return 0
	}
	victims := c.d.DrainNameNodes(n)
	for i := 0; i < 100 && c.d.FinishDrains() > 0; i++ {
		c.d.Env.RunFor(10 * time.Millisecond)
	}
	return len(victims)
}

// RunChaos executes a declarative fault schedule against this cluster
// under the chaos engine: an audited workload runs on virtual time while
// the schedule injects AZ failures, partitions, node crashes, and link
// degradations; at every step the engine quiesces and verifies the
// cross-layer invariants (replica liveness, checkpoint durability, block
// placement, namespace agreement, leader uniqueness), and afterwards the
// recorded history is checked for lost acknowledged writes and stale
// reads. The schedule text is line-oriented:
//
//	at 4s fail-zone 2
//	at 10s recover-zone 2
//	at 16s partition 1 3
//	at 21s heal 1 3
//
// The seed drives the workload's operation mix. The cluster keeps running
// afterwards in whatever state the schedule left it.
func (c *Cluster) RunChaos(schedule string, seed int64) (*ChaosReport, error) {
	sched, err := chaos.ParseSchedule(schedule)
	if err != nil {
		return nil, err
	}
	eng, err := chaos.NewEngine(c.d, sched, chaos.Config{Seed: seed})
	if err != nil {
		return nil, err
	}
	return eng.Run()
}

// RunChaosCampaign generates a seeded random fault schedule (faults
// degrading steps, each with a paired recovery, spread over dur) and runs
// it like RunChaos. The same seed always generates the same schedule and
// produces the same report.
func (c *Cluster) RunChaosCampaign(seed int64, faults int, dur time.Duration) (*ChaosReport, error) {
	sched := chaos.Generate(c.d, seed, dur, faults)
	eng, err := chaos.NewEngine(c.d, sched, chaos.Config{Seed: seed})
	if err != nil {
		return nil, err
	}
	return eng.Run()
}

// RunExperiment regenerates one of the paper's tables or figures ("table1",
// "fig5", ..., "failures") and returns its report. full selects the
// complete parameter grid.
func RunExperiment(id string, full bool, seed int64) (string, error) {
	exp, ok := bench.ExperimentByID(id)
	if !ok {
		return "", fmt.Errorf("hopsfscl: unknown experiment %q", id)
	}
	return exp.Run(bench.ExpOptions{Full: full, Seed: seed})
}

// ExperimentIDs lists the reproducible tables and figures.
func ExperimentIDs() []string {
	out := make([]string, len(bench.Experiments))
	for i, e := range bench.Experiments {
		out[i] = e.ID
	}
	return out
}
