package hopsfscl

// One benchmark per table and figure of the paper's evaluation. Each
// benchmark regenerates its artefact at reduced scale (few server counts,
// short measurement windows) and reports the headline quantity as a custom
// metric; `go run ./cmd/hopsbench -full all` regenerates everything at the
// paper's full grid. A single iteration of a benchmark is one complete
// experiment, so b.N is typically 1.

import (
	"strings"
	"testing"
	"time"

	"hopsfscl/internal/bench"
	"hopsfscl/internal/core"
	"hopsfscl/internal/workload"
)

// benchOpts is the reduced grid used by the testing.B targets.
func benchOpts() bench.ExpOptions {
	return bench.ExpOptions{Seed: 1, Counts: []int{6, 12}, ClientsPerServer: 32}
}

// measureSetup runs one setup at one size and reports throughput metrics.
func measureSetup(b *testing.B, name string, servers int) *bench.Result {
	b.Helper()
	setup, ok := core.SetupByName(name)
	if !ok {
		b.Fatalf("unknown setup %q", name)
	}
	cfg := bench.DefaultRunConfig()
	cfg.Window = 150 * time.Millisecond
	res, err := bench.Measure(setup, servers, 32, cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func BenchmarkTable1LatencyMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := bench.Table1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(out, "us-west1-a") {
			b.Fatal("unexpected table1 output")
		}
	}
}

func BenchmarkTable2ThreadConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := bench.Table2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(out, "27 CPUs") {
			b.Fatal("unexpected table2 output")
		}
	}
}

func BenchmarkFig5Throughput(b *testing.B) {
	// The headline comparison at one size: AZ-aware vs unaware vs CephFS.
	for i := 0; i < b.N; i++ {
		cl := measureSetup(b, "HopsFS-CL (3,3)", 12)
		un := measureSetup(b, "HopsFS (3,3)", 12)
		ceph := measureSetup(b, "CephFS", 12)
		b.ReportMetric(cl.Throughput, "cl-ops/s")
		b.ReportMetric(un.Throughput, "hops-ops/s")
		b.ReportMetric(ceph.Throughput, "ceph-ops/s")
		if cl.Throughput <= un.Throughput {
			b.Fatalf("AZ awareness did not help: %f <= %f", cl.Throughput, un.Throughput)
		}
		if cl.Throughput <= ceph.Throughput {
			b.Fatalf("HopsFS-CL did not beat CephFS: %f <= %f", cl.Throughput, ceph.Throughput)
		}
	}
}

func BenchmarkFig6PerServer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cl := measureSetup(b, "HopsFS-CL (3,3)", 12)
		ceph := measureSetup(b, "CephFS - DirPinned", 12)
		b.ReportMetric(cl.ServerRequestRate, "cl-req/s/server")
		b.ReportMetric(ceph.ServerRequestRate, "mds-req/s/server")
		if cl.ServerRequestRate < 4*ceph.ServerRequestRate {
			b.Fatalf("per-server gap too small: %f vs %f (paper: ~23X)",
				cl.ServerRequestRate, ceph.ServerRequestRate)
		}
	}
}

func BenchmarkFig7MicroOps(b *testing.B) {
	ops := []workload.Op{workload.OpMkdir, workload.OpCreate, workload.OpDelete, workload.OpRead}
	for _, op := range ops {
		b.Run(op.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				setup, _ := core.SetupByName("HopsFS-CL (3,3)")
				cfg := bench.DefaultRunConfig()
				cfg.Mix = workload.MicroMix(op)
				cfg.Window = 150 * time.Millisecond
				opts := core.DefaultOptions(setup)
				opts.MetadataServers = 12
				opts.ClientsPerServer = 32
				opts.Namespace.FilesPerDir = 80
				d, err := core.Build(opts)
				if err != nil {
					b.Fatal(err)
				}
				res := bench.Run(d, cfg)
				d.Close()
				b.ReportMetric(res.Throughput, "vops/s")
			}
		})
	}
}

func BenchmarkFig8Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cl := measureSetup(b, "HopsFS-CL (3,3)", 12)
		un := measureSetup(b, "HopsFS (3,3)", 12)
		ceph := measureSetup(b, "CephFS", 12)
		b.ReportMetric(float64(cl.AvgLatency.Microseconds()), "cl-us")
		b.ReportMetric(float64(un.AvgLatency.Microseconds()), "hops-us")
		b.ReportMetric(float64(ceph.AvgLatency.Microseconds()), "ceph-us")
		if cl.AvgLatency >= un.AvgLatency {
			b.Fatalf("AZ awareness did not lower latency: %v >= %v", cl.AvgLatency, un.AvgLatency)
		}
	}
}

func BenchmarkFig9Percentiles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		setup, _ := core.SetupByName("HopsFS-CL (3,3)")
		cfg := bench.DefaultRunConfig()
		cfg.Mix = workload.MicroMix(workload.OpCreate)
		cfg.Window = 150 * time.Millisecond
		opts := core.DefaultOptions(setup)
		opts.MetadataServers = 12
		opts.ClientsPerServer = 8 // unloaded
		d, err := core.Build(opts)
		if err != nil {
			b.Fatal(err)
		}
		res := bench.Run(d, cfg)
		d.Close()
		b.ReportMetric(float64(res.P50.Microseconds()), "p50-us")
		b.ReportMetric(float64(res.P99.Microseconds()), "p99-us")
		if res.P99 < res.P50 {
			b.Fatal("percentiles inverted")
		}
	}
}

func BenchmarkFig10CPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := measureSetup(b, "HopsFS-CL (3,3)", 12)
		b.ReportMetric(res.StorageCPU*100, "storage-cpu-%")
		b.ReportMetric(res.ServerCPU*100, "server-cpu-%")
		if res.StorageCPU <= 0 || res.ServerCPU <= 0 {
			b.Fatal("no CPU utilization measured")
		}
	}
}

func BenchmarkFig11ThreadCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := measureSetup(b, "HopsFS-CL (3,3)", 12)
		for _, ty := range []string{"LDM", "TC", "RECV", "SEND", "REP"} {
			b.ReportMetric(res.ThreadCPU[ty]*100, ty+"-%")
		}
		// The paper's Fig 11 structure: RECV is the hottest thread class;
		// IO and MAIN stay idle under the metadata workload.
		if res.ThreadCPU["RECV"] <= res.ThreadCPU["MAIN"] {
			b.Fatal("RECV not busier than MAIN")
		}
	}
}

func BenchmarkFig12StorageIO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := measureSetup(b, "HopsFS-CL (3,3)", 12)
		b.ReportMetric(res.StorageNetRead/1e6, "net-read-MB/s")
		b.ReportMetric(res.StorageNetWrite/1e6, "net-write-MB/s")
		b.ReportMetric(res.StorageDiskWrite/1e6, "disk-write-MB/s")
		if res.StorageNetRead == 0 {
			b.Fatal("no storage network traffic measured")
		}
	}
}

func BenchmarkFig13ServerIO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := measureSetup(b, "HopsFS-CL (3,3)", 12)
		b.ReportMetric(res.ServerNetRead/1e6, "net-read-MB/s")
		b.ReportMetric(res.ServerNetWrite/1e6, "net-write-MB/s")
		if res.ServerNetRead == 0 {
			b.Fatal("no server network traffic measured")
		}
	}
}

func BenchmarkFig14ReadBackup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := bench.Fig14(bench.ExpOptions{Seed: 1, ClientsPerServer: 32})
		if err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(out, "Read Backup ENABLED") {
			b.Fatal("unexpected fig14 output")
		}
	}
}

func BenchmarkFailureDrills(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := bench.Failures(bench.ExpOptions{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(out, "zone 2 failed") {
			b.Fatal("unexpected failures output")
		}
	}
}

// BenchmarkAblationInterAZBandwidth quantifies the DESIGN.md design choice:
// finite shared inter-AZ links are what separates AZ-aware from unaware
// deployments at scale. It compares cross-zone byte rates directly.
func BenchmarkAblationInterAZBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cl := measureSetup(b, "HopsFS-CL (3,3)", 12)
		un := measureSetup(b, "HopsFS (3,3)", 12)
		b.ReportMetric(cl.CrossZoneRate/1e6, "cl-xAZ-MB/s")
		b.ReportMetric(un.CrossZoneRate/1e6, "hops-xAZ-MB/s")
		if cl.CrossZoneRate >= un.CrossZoneRate {
			b.Fatal("AZ awareness did not reduce cross-AZ traffic")
		}
	}
}

// BenchmarkAblationObjectStoreBlocks compares the two block backends — DN
// pipeline replication vs the §VII future-work cloud object store — on a
// 256 MB file write + read, reporting virtual I/O time and cross-AZ bytes.
func BenchmarkAblationObjectStoreBlocks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		type outcome struct {
			writeMS, readMS float64
			crossAZ         float64
		}
		run := func(objectStore bool) outcome {
			opts := []Option{WithSeed(7)}
			if objectStore {
				opts = append(opts, WithObjectStoreBlocks())
			}
			c, err := New(opts...)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			fs := c.Client(1)
			base := c.Stats().CrossZoneBytes
			t0 := c.now()
			if err := fs.WriteFile("/f", 256<<20); err != nil {
				b.Fatal(err)
			}
			t1 := c.now()
			if _, err := fs.ReadFile("/f"); err != nil {
				b.Fatal(err)
			}
			t2 := c.now()
			return outcome{
				writeMS: float64((t1 - t0).Milliseconds()),
				readMS:  float64((t2 - t1).Milliseconds()),
				crossAZ: float64(c.Stats().CrossZoneBytes-base) / 1e6,
			}
		}
		dn := run(false)
		cloud := run(true)
		b.ReportMetric(dn.writeMS, "dn-write-ms")
		b.ReportMetric(cloud.writeMS, "cloud-write-ms")
		b.ReportMetric(dn.readMS, "dn-read-ms")
		b.ReportMetric(cloud.readMS, "cloud-read-ms")
		b.ReportMetric(dn.crossAZ, "dn-xAZ-MB")
		b.ReportMetric(cloud.crossAZ, "cloud-xAZ-MB")
	}
}
