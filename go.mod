module hopsfscl

go 1.24
