// rename demonstrates why the paper argues hierarchical file systems beat
// object stores in the cloud (§I): atomic directory rename. Data lake
// frameworks (Delta Lake, Iceberg, Hive's ACID tables) commit work by
// renaming a staging directory into place; on an object store that is a
// per-object copy, on HopsFS-CL it is one metadata transaction regardless
// of subtree size — and it stays atomic across an AZ failure.
package main

import (
	"fmt"
	"log"

	"hopsfscl"
)

func main() {
	cluster, err := hopsfscl.New(hopsfscl.WithoutBlockLayer())
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fs := cluster.Client(1)

	// A Hive-style job writes 100 output files into a staging directory.
	if err := fs.MkdirAll("/warehouse/sales/.staging"); err != nil {
		log.Fatal(err)
	}
	const files = 100
	for i := 0; i < files; i++ {
		if err := fs.Create(fmt.Sprintf("/warehouse/sales/.staging/part-%05d", i)); err != nil {
			log.Fatal(err)
		}
	}

	before := cluster.Stats().CommittedTxns

	// Commit the job: one atomic rename of the whole directory. Because
	// inodes are keyed by parent id, moving a directory never rewrites its
	// children — the transaction touches exactly two rows.
	if err := fs.Rename("/warehouse/sales/.staging", "/warehouse/sales/2026-07-05"); err != nil {
		log.Fatal(err)
	}

	txns := cluster.Stats().CommittedTxns - before
	fmt.Printf("renamed a %d-file directory in %d metadata transaction(s)\n", files, txns)
	fmt.Println("an object store would copy all", files, "objects over the network")

	kids, err := fs.List("/warehouse/sales/2026-07-05")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed partition is visible atomically: %d files\n", len(kids))

	// The old path is gone — readers can never observe a half-renamed
	// directory.
	if _, err := fs.Stat("/warehouse/sales/.staging"); err == nil {
		log.Fatal("staging directory still visible after rename")
	}

	// And the guarantee holds across an AZ failure: fail a zone, rename
	// again, still atomic.
	cluster.FailZone(3)
	if err := fs.Rename("/warehouse/sales/2026-07-05", "/warehouse/sales/final"); err != nil {
		log.Fatal(err)
	}
	kids, err = fs.List("/warehouse/sales/final")
	if err != nil || len(kids) != files {
		log.Fatalf("after AZ failure: %v, %d files", err, len(kids))
	}
	fmt.Println("rename stayed atomic through an AZ failure")
}
