// Quickstart: build a three-AZ HopsFS-CL cluster, use it like a file
// system, and peek at what the AZ-aware stack did under the hood.
package main

import (
	"fmt"
	"log"

	"hopsfscl"
)

func main() {
	// HopsFS-CL (3,3): metadata replicated three ways, one replica per
	// availability zone, Read Backup enabled on all tables, AZ-aware
	// transaction coordinators and block placement — the paper's headline
	// deployment (Figure 4).
	cluster, err := hopsfscl.New()
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fmt.Println("zones:", cluster.Zones())

	// A client in us-west1-a. Its locationDomainId steers it to an
	// AZ-local metadata server and AZ-local replicas.
	fs := cluster.Client(1)

	if err := fs.MkdirAll("/data/logs"); err != nil {
		log.Fatal(err)
	}

	// Small files (<= 128 KB) are stored inline in the metadata layer
	// (NDB), so a read never touches the block storage layer.
	if err := fs.WriteFile("/data/logs/app.log", 64<<10); err != nil {
		log.Fatal(err)
	}

	// Large files are split into 128 MB blocks, each replicated with at
	// least one copy in every AZ.
	if err := fs.WriteFile("/data/logs/archive.bin", 300<<20); err != nil {
		log.Fatal(err)
	}

	for _, path := range []string{"/data/logs/app.log", "/data/logs/archive.bin"} {
		info, err := fs.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		placement := "inline in NDB"
		if info.Blocks > 0 {
			placement = fmt.Sprintf("%d blocks across the AZs", info.Blocks)
		}
		fmt.Printf("%-28s %12d bytes  (%s)\n", path, info.Size, placement)
	}

	// Atomic rename: the operation object stores cannot provide.
	if err := fs.Rename("/data/logs", "/data/archive-2026"); err != nil {
		log.Fatal(err)
	}
	kids, err := fs.List("/data/archive-2026")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after rename, /data/archive-2026 holds:")
	for _, k := range kids {
		fmt.Println("  ", k.Name)
	}

	stats := cluster.Stats()
	fmt.Printf("committed metadata transactions: %d\n", stats.CommittedTxns)
	fmt.Printf("cross-AZ traffic: %.1f MB of %.1f MB total\n",
		float64(stats.CrossZoneBytes)/1e6, float64(stats.TotalBytes)/1e6)
}
