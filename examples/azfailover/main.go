// azfailover demonstrates §V-F of the paper: the file system tolerates the
// failure of an entire availability zone, resolves a split brain through
// the management-node arbitrator, and re-replicates blocks whose replicas
// were lost — all while continuing to serve clients.
package main

import (
	"fmt"
	"log"

	"hopsfscl"
)

func main() {
	cluster, err := hopsfscl.New(hopsfscl.WithMetadataServers(6))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	fs := cluster.Client(1)
	if err := fs.MkdirAll("/prod/db"); err != nil {
		log.Fatal(err)
	}
	if err := fs.WriteFile("/prod/db/snapshot", 256<<20); err != nil {
		log.Fatal(err)
	}
	report(cluster, "steady state")

	// --- 1. An availability zone goes dark ------------------------------
	// Metadata: NDB promotes backup partition replicas within each node
	// group (every group spans all three AZs, Figure 4). Serving: clients
	// stuck to zone-2 NNs pick surviving servers; a new leader is elected
	// if the leader was in zone 2. Blocks: the leader NN triggers
	// re-replication of block replicas lost with the zone.
	fmt.Println("\n*** zone 2 fails ***")
	cluster.FailZone(2)
	report(cluster, "after AZ failure")

	if _, err := fs.ReadFile("/prod/db/snapshot"); err != nil {
		log.Fatal("read after AZ failure: ", err)
	}
	if err := fs.WriteFile("/prod/db/wal", 64<<10); err != nil {
		log.Fatal("write after AZ failure: ", err)
	}
	fmt.Println("reads and writes keep working")

	// Give the re-replication monitor time to restore the replication
	// factor of the snapshot's blocks.
	cluster.Advance(5e9)
	report(cluster, "after re-replication")

	// --- 2. Split brain between the surviving zones ---------------------
	// Zone 1 hosts the elected arbitrator (M1). When zones 1 and 3
	// partition, the side that reaches the arbitrator first survives; the
	// other side shuts itself down rather than risk divergence.
	fmt.Println("\n*** network partition between zone 1 and zone 3 ***")
	cluster.PartitionZones(1, 3)
	report(cluster, "after split brain")

	if err := fs.Create("/prod/db/marker"); err != nil {
		log.Fatal("write after split brain: ", err)
	}
	fmt.Println("the surviving side keeps accepting writes")

	cluster.HealZones(1, 3)
	fmt.Println("\npartition healed (shut-down nodes stay out until operator re-join)")
	report(cluster, "final")
}

func report(c *hopsfscl.Cluster, label string) {
	s := c.Stats()
	fmt.Printf("[%-22s] storage nodes up: %d  metadata servers up: %d  leader: nn-%d  re-replications: %d\n",
		label, s.AliveStorageNodes, s.AliveNameNodes, c.LeaderID(), s.ReReplications)
}
