// spotify runs a scaled-down version of the paper's industrial workload
// scenario: analytics clients in all three availability zones hammer a
// Hadoop-style namespace, once on AZ-aware HopsFS-CL and once on unaware
// HopsFS, and the example compares how much traffic crossed AZ boundaries —
// the cost the paper's design minimizes (challenge C2, §III).
package main

import (
	"fmt"
	"log"

	"hopsfscl"
)

// dataset mirrors a small analytics project layout.
var dataset = []string{
	"/spotify/playlists/2026-07-04",
	"/spotify/playlists/2026-07-05",
	"/spotify/streams/2026-07-04",
	"/spotify/streams/2026-07-05",
	"/spotify/users/profiles",
	"/spotify/users/sessions",
}

func main() {
	for _, setup := range []string{"HopsFS-CL (3,3)", "HopsFS (3,3)"} {
		crossAZ, total, txns := runWorkload(setup)
		fmt.Printf("%-18s committed txns: %5d   cross-AZ: %7.2f MB of %7.2f MB (%.0f%%)\n",
			setup, txns, float64(crossAZ)/1e6, float64(total)/1e6,
			100*float64(crossAZ)/float64(total))
	}
	fmt.Println("\nAZ awareness keeps metadata traffic inside each zone: local transaction")
	fmt.Println("coordinators, Read Backup replicas, and AZ-local metadata servers (§IV).")
}

func runWorkload(setup string) (crossAZ, total, txns int64) {
	cluster, err := hopsfscl.New(
		hopsfscl.WithSetup(setup),
		hopsfscl.WithoutBlockLayer(), // metadata-only, like the paper's benchmarks
		hopsfscl.WithMetadataServers(3),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Build the namespace from zone 1.
	seed := cluster.Client(1)
	for _, dir := range dataset {
		if err := seed.MkdirAll(dir); err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if err := seed.Create(fmt.Sprintf("%s/part-%05d", dir, i)); err != nil {
				log.Fatal(err)
			}
		}
	}

	base := cluster.Stats()

	// Analytics tasks in every zone: read-dominated metadata traffic over
	// their own datasets (stat + open + list), plus a thin stream of
	// output writes — the shape of the Spotify trace.
	for z := 1; z <= 3; z++ {
		fs := cluster.Client(z)
		home := dataset[(z-1)*2 : (z-1)*2+2]
		for round := 0; round < 10; round++ {
			for _, dir := range home {
				if _, err := fs.List(dir); err != nil {
					log.Fatal(err)
				}
				for i := 0; i < 4; i++ {
					path := fmt.Sprintf("%s/part-%05d", dir, i)
					if _, err := fs.Stat(path); err != nil {
						log.Fatal(err)
					}
					if _, err := fs.ReadFile(path); err != nil {
						log.Fatal(err)
					}
				}
			}
			out := fmt.Sprintf("%s/out-z%d-%03d", home[0], z, round)
			if err := fs.Create(out); err != nil {
				log.Fatal(err)
			}
		}
	}

	s := cluster.Stats()
	return s.CrossZoneBytes - base.CrossZoneBytes, s.TotalBytes - base.TotalBytes,
		s.CommittedTxns - base.CommittedTxns
}
