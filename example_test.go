package hopsfscl_test

import (
	"fmt"
	"log"

	"hopsfscl"
)

// Example builds the paper's headline deployment, writes a small and a
// large file, survives an AZ failure, and performs the atomic rename that
// object stores cannot.
func Example() {
	cluster, err := hopsfscl.New()
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	fs := cluster.Client(1)
	if err := fs.MkdirAll("/data"); err != nil {
		log.Fatal(err)
	}
	if err := fs.WriteFile("/data/small", 64<<10); err != nil {
		log.Fatal(err)
	}
	if err := fs.WriteFile("/data/large", 300<<20); err != nil {
		log.Fatal(err)
	}

	small, _ := fs.ReadFile("/data/small")
	large, _ := fs.ReadFile("/data/large")
	fmt.Printf("small inline=%v blocks=%d\n", small.Inline, small.Blocks)
	fmt.Printf("large inline=%v blocks=%d\n", large.Inline, large.Blocks)

	cluster.FailZone(2)
	if _, err := fs.ReadFile("/data/large"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("readable after AZ failure: true")

	if err := fs.Rename("/data", "/archive"); err != nil {
		log.Fatal(err)
	}
	kids, _ := fs.List("/archive")
	fmt.Printf("entries after atomic rename: %d\n", len(kids))

	// Output:
	// small inline=true blocks=0
	// large inline=false blocks=3
	// readable after AZ failure: true
	// entries after atomic rename: 2
}

// ExampleRunExperiment regenerates one of the paper's artefacts.
func ExampleRunExperiment() {
	out, err := hopsfscl.RunExperiment("table2", false, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(out) > 0)
	// Output: true
}
