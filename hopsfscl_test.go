package hopsfscl

import (
	"errors"
	"strings"
	"testing"
)

func newCluster(t *testing.T, opts ...Option) *Cluster {
	t.Helper()
	c, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestQuickstartFlow(t *testing.T) {
	c := newCluster(t)
	fs := c.Client(1)
	if err := fs.MkdirAll("/data/logs"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/data/logs/app.log", 64<<10); err != nil {
		t.Fatal(err)
	}
	info, err := fs.ReadFile("/data/logs/app.log")
	if err != nil {
		t.Fatal(err)
	}
	if !info.Inline || info.Size != 64<<10 {
		t.Fatalf("small file info: %+v", info)
	}
	kids, err := fs.List("/data/logs")
	if err != nil || len(kids) != 1 || kids[0].Name != "app.log" {
		t.Fatalf("list: %v %+v", err, kids)
	}
	if err := fs.Rename("/data/logs", "/data/archive"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/data/archive/app.log"); err != nil {
		t.Fatalf("stat after rename: %v", err)
	}
	if _, err := fs.Stat("/data/logs/app.log"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("old path: %v", err)
	}
}

func TestLargeFileSpansAZs(t *testing.T) {
	c := newCluster(t)
	fs := c.Client(2)
	if err := fs.WriteFile("/big.bin", 300<<20); err != nil {
		t.Fatal(err)
	}
	info, err := fs.ReadFile("/big.bin")
	if err != nil {
		t.Fatal(err)
	}
	if info.Blocks != 3 { // 300 MB over 128 MB blocks
		t.Fatalf("blocks = %d, want 3", info.Blocks)
	}
}

func TestAZFailureIsTolerated(t *testing.T) {
	c := newCluster(t)
	fs := c.Client(1)
	if err := fs.MkdirAll("/svc"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/svc/before"); err != nil {
		t.Fatal(err)
	}
	c.FailZone(2)
	if _, err := fs.Stat("/svc/before"); err != nil {
		t.Fatalf("read after AZ failure: %v", err)
	}
	if err := fs.Create("/svc/after"); err != nil {
		t.Fatalf("write after AZ failure: %v", err)
	}
	s := c.Stats()
	if s.AliveStorageNodes == 6 || s.AliveNameNodes == 3 {
		t.Fatalf("zone failure had no effect: %+v", s)
	}
}

func TestSplitBrainResolvedByArbitrator(t *testing.T) {
	c := newCluster(t)
	fs := c.Client(1)
	if err := fs.Create("/x"); err != nil {
		t.Fatal(err)
	}
	c.PartitionZones(2, 3)
	c.Advance(2e9)
	// One side shut down; the cluster keeps serving.
	if err := fs.Create("/y"); err != nil {
		t.Fatalf("write after split brain: %v", err)
	}
	s := c.Stats()
	if s.AliveStorageNodes >= 6 {
		t.Fatalf("no node shut down after split brain: %+v", s)
	}
}

func TestLeaderFailover(t *testing.T) {
	c := newCluster(t)
	first := c.LeaderID()
	if first == 0 {
		t.Fatal("no leader elected")
	}
	if err := c.FailNameNode(first); err != nil {
		t.Fatal(err)
	}
	c.Advance(6e9)
	second := c.LeaderID()
	if second == 0 || second == first {
		t.Fatalf("leader did not fail over: %d -> %d", first, second)
	}
	// The surviving servers still serve requests.
	fs := c.Client(3)
	if err := fs.Create("/post-failover"); err != nil {
		t.Fatal(err)
	}
}

func TestAZAwarenessReducesCrossZoneTraffic(t *testing.T) {
	run := func(setup string) int64 {
		c := newCluster(t, WithSetup(setup), WithoutBlockLayer())
		// Spread reads over many directories and all three zones so the
		// partition primaries are scattered, as in a real namespace.
		var clients []*FS
		for z := 1; z <= 3; z++ {
			clients = append(clients, c.Client(z))
		}
		for i := 0; i < 24; i++ {
			if err := clients[i%3].Mkdir("/d" + string(rune('a'+i))); err != nil {
				t.Fatal(err)
			}
		}
		before := c.Stats().CrossZoneBytes
		for i := 0; i < 120; i++ {
			if _, err := clients[i%3].Stat("/d" + string(rune('a'+i%24))); err != nil {
				t.Fatal(err)
			}
		}
		return c.Stats().CrossZoneBytes - before
	}
	aware := run("HopsFS-CL (3,3)")
	unaware := run("HopsFS (3,3)")
	if aware >= unaware {
		t.Fatalf("AZ-aware reads crossed more zones (%d) than unaware (%d)", aware, unaware)
	}
}

func TestUnknownSetupRejected(t *testing.T) {
	if _, err := New(WithSetup("HopsFS (9,9)")); err == nil {
		t.Fatal("bogus setup accepted")
	}
	if _, err := New(WithSetup("CephFS")); err == nil {
		t.Fatal("CephFS baseline accepted as a library deployment")
	}
}

func TestSetupsAndExperimentsListed(t *testing.T) {
	if got := len(Setups()); got != 9 {
		t.Fatalf("setups = %d, want 9", got)
	}
	ids := ExperimentIDs()
	if len(ids) != 22 {
		t.Fatalf("experiments = %d, want 22", len(ids))
	}
	want := map[string]bool{"table1": true, "table2": true, "fig5": true, "fig14": true, "failures": true, "chaos": true, "phases": true, "writefan": true, "autoscale": true, "kernel": true, "hotspot": true, "shardsweep": true}
	for _, id := range ids {
		delete(want, id)
	}
	if len(want) != 0 {
		t.Fatalf("missing experiment ids: %v", want)
	}
}

func TestDeterminism(t *testing.T) {
	trace := func() []int64 {
		c := newCluster(t, WithSeed(42))
		fs := c.Client(1)
		_ = fs.MkdirAll("/a/b")
		for i := 0; i < 10; i++ {
			_ = fs.Create("/a/b/f" + string(rune('0'+i)))
		}
		s := c.Stats()
		return []int64{s.CommittedTxns, s.CrossZoneBytes, s.TotalBytes}
	}
	a, b := trace(), trace()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at stat %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestZoneFailureAndRecoveryRoundTrip(t *testing.T) {
	c := newCluster(t)
	fs := c.Client(1)
	if err := fs.MkdirAll("/svc"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/svc/f"); err != nil {
		t.Fatal(err)
	}
	c.FailZone(3)
	if got := c.Stats().AliveStorageNodes; got >= 6 {
		t.Fatalf("alive storage = %d after failure", got)
	}
	if err := c.RecoverZone(3); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.AliveStorageNodes != 6 || s.AliveNameNodes != 3 {
		t.Fatalf("recovery incomplete: %+v", s)
	}
	if _, err := fs.Stat("/svc/f"); err != nil {
		t.Fatalf("stat after recovery: %v", err)
	}
	if err := fs.Create("/svc/g"); err != nil {
		t.Fatalf("create after recovery: %v", err)
	}
}

func TestObjectStoreBlockBackend(t *testing.T) {
	c := newCluster(t, WithObjectStoreBlocks())
	fs := c.Client(1)
	if err := fs.WriteFile("/cloud.bin", 300<<20); err != nil {
		t.Fatal(err)
	}
	info, err := fs.ReadFile("/cloud.bin")
	if err != nil {
		t.Fatal(err)
	}
	if info.Blocks != 3 {
		t.Fatalf("blocks = %d, want 3", info.Blocks)
	}
	// The blocks are objects, and the provider owns durability: an AZ
	// failure cannot make them unreadable and no re-replication happens.
	c.FailZone(2)
	if _, err := fs.ReadFile("/cloud.bin"); err != nil {
		t.Fatalf("read after AZ failure: %v", err)
	}
	if got := c.Stats().ReReplications; got != 0 {
		t.Fatalf("object-store blocks re-replicated %d times", got)
	}
	if err := fs.Delete("/cloud.bin", false); err != nil {
		t.Fatal(err)
	}
}

func TestExistsAndDu(t *testing.T) {
	c := newCluster(t, WithoutBlockLayer())
	fs := c.Client(2)
	if err := fs.MkdirAll("/du/sub"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/du/a", 1000); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/du/sub/b", 2000); err != nil {
		t.Fatal(err)
	}
	files, dirs, bytes, err := fs.Du("/du")
	if err != nil {
		t.Fatal(err)
	}
	if files != 2 || dirs != 2 || bytes != 3000 {
		t.Fatalf("du = (%d, %d, %d), want (2, 2, 3000)", files, dirs, bytes)
	}
	ok, err := fs.Exists("/du/a")
	if err != nil || !ok {
		t.Fatalf("exists = %v, %v", ok, err)
	}
	ok, err = fs.Exists("/du/zzz")
	if err != nil || ok {
		t.Fatalf("exists missing = %v, %v", ok, err)
	}
}

func TestRunChaosScheduleOnFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign drives a full deployment")
	}
	c := newCluster(t, WithSeed(11))
	rep, err := c.RunChaos("at 3s fail-zone 2\nat 8s recover-zone 2\n", 11)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Check.Ops == 0 || rep.Check.OK == 0 {
		t.Fatalf("campaign recorded no operations: %+v", rep.Check)
	}
	if !rep.Clean() {
		t.Fatalf("campaign not clean:\n%s", rep.Render())
	}
	if rep.Check.AckedLost != 0 {
		t.Fatalf("acked writes lost: %d", rep.Check.AckedLost)
	}
	if !strings.Contains(rep.Render(), "fail-zone") {
		t.Fatalf("render missing the schedule step:\n%s", rep.Render())
	}
	// The cluster is still usable after the campaign.
	if err := c.Client(1).MkdirAll("/post/chaos"); err != nil {
		t.Fatalf("cluster unusable after campaign: %v", err)
	}

	if _, err := c.RunChaos("at 1s fail-zone 9\n", 1); err == nil {
		t.Fatal("schedule with a bogus zone accepted")
	}
}

func TestElasticScaleOnFacade(t *testing.T) {
	c := newCluster(t)
	base := c.ServingNameNodes()
	if base == 0 {
		t.Fatal("no serving metadata servers")
	}
	if err := c.ScaleUp(2); err != nil {
		t.Fatal(err)
	}
	if got := c.ServingNameNodes(); got != base+2 {
		t.Fatalf("serving after ScaleUp(2) = %d, want %d", got, base+2)
	}
	// The grown tier serves traffic.
	if err := c.Client(1).MkdirAll("/elastic/up"); err != nil {
		t.Fatalf("cluster unusable after scale-up: %v", err)
	}
	if gone := c.ScaleDown(2); gone != 2 {
		t.Fatalf("ScaleDown(2) drained %d servers", gone)
	}
	if got := c.ServingNameNodes(); got != base {
		t.Fatalf("serving after ScaleDown(2) = %d, want %d", got, base)
	}
	if err := c.Client(1).MkdirAll("/elastic/down"); err != nil {
		t.Fatalf("cluster unusable after scale-down: %v", err)
	}
	// Bad arguments are rejected; the tier never drains to zero.
	if err := c.ScaleUp(0); err == nil {
		t.Fatal("ScaleUp(0) accepted")
	}
	if gone := c.ScaleDown(100); gone >= base {
		t.Fatalf("ScaleDown(100) removed %d of %d — tier drained too far", gone, base)
	}
	if c.ServingNameNodes() < 1 {
		t.Fatal("no serving servers left")
	}
}

func TestShardedFacade(t *testing.T) {
	c, err := New(WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fs := c.Client(1)
	// The README sharding quickstart, end to end: shard-local creates,
	// then a rename that may cross the hash boundary.
	if err := fs.MkdirAll("/proj/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/proj/a/x", 4096); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/stage"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/proj/a/x", "/stage/x"); err != nil {
		t.Fatal(err)
	}
	if ok, _ := fs.Exists("/stage/x"); !ok {
		t.Fatal("renamed file missing at destination")
	}
	if ok, _ := fs.Exists("/proj/a/x"); ok {
		t.Fatal("renamed file still present at source")
	}
}
