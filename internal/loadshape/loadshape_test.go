package loadshape

import (
	"math"
	"strings"
	"testing"
	"time"
)

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %g, want %g (+/- %g)", what, got, want, tol)
	}
}

func TestSinusoidCurve(t *testing.T) {
	pr := Profile{Day: time.Second, Days: 2, Base: 0.2, Peak: 1.0, PeakFrac: 0.5, RatePerClient: 100}
	if err := pr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Peak at the configured time of day, trough half a day away.
	almost(t, pr.Multiplier(500*time.Millisecond), 1.0, 1e-9, "peak multiplier")
	almost(t, pr.Multiplier(0), 0.2, 1e-9, "trough multiplier")
	// Second day repeats the curve.
	almost(t, pr.Multiplier(1500*time.Millisecond), 1.0, 1e-9, "day-2 peak")
	// Midway between trough and peak sits at the curve midpoint.
	almost(t, pr.Multiplier(250*time.Millisecond), 0.6, 1e-9, "quarter-day multiplier")
}

func TestPiecewiseCurveWraps(t *testing.T) {
	pr := Profile{
		Day: time.Second, Days: 1, RatePerClient: 100,
		Points: []Point{{Frac: 0.25, Mult: 1.0}, {Frac: 0.75, Mult: 0.2}},
	}
	if err := pr.Validate(); err != nil {
		t.Fatal(err)
	}
	almost(t, pr.Multiplier(250*time.Millisecond), 1.0, 1e-9, "at first point")
	almost(t, pr.Multiplier(750*time.Millisecond), 0.2, 1e-9, "at second point")
	almost(t, pr.Multiplier(500*time.Millisecond), 0.6, 1e-9, "interpolated midpoint")
	// The segment from 0.75 wraps through midnight back to 0.25: at frac 0
	// we are halfway along it.
	almost(t, pr.Multiplier(0), 0.6, 1e-9, "wrapped midnight value")
}

func TestWeeklyFactor(t *testing.T) {
	pr := Profile{
		Day: time.Second, Days: 7, Base: 1, Peak: 1, RatePerClient: 100,
		Week: []float64{1, 1, 1, 1, 1, 0.5, 0.25},
	}
	almost(t, pr.Multiplier(100*time.Millisecond), 1.0, 1e-9, "weekday")
	almost(t, pr.Multiplier(5*time.Second+100*time.Millisecond), 0.5, 1e-9, "saturday")
	almost(t, pr.Multiplier(6*time.Second+100*time.Millisecond), 0.25, 1e-9, "sunday")
}

func TestBurstEnvelope(t *testing.T) {
	pr := Profile{
		Day: time.Second, Days: 2, Base: 0.5, Peak: 0.5, RatePerClient: 100,
		Bursts: []Burst{{Day: 1, Frac: 0.5, Mult: 3,
			Ramp: 100 * time.Millisecond, Dwell: 200 * time.Millisecond, Decay: 100 * time.Millisecond}},
	}
	start := 1500 * time.Millisecond
	almost(t, pr.Multiplier(start-time.Millisecond), 0.5, 1e-9, "before burst")
	almost(t, pr.Multiplier(start+50*time.Millisecond), 0.5*2, 1e-9, "mid ramp")
	almost(t, pr.Multiplier(start+150*time.Millisecond), 0.5*3, 1e-9, "dwell plateau")
	almost(t, pr.Multiplier(start+350*time.Millisecond), 0.5*2, 1e-9, "mid decay")
	almost(t, pr.Multiplier(start+400*time.Millisecond), 0.5, 1e-9, "after burst")
}

func TestGapTracksRate(t *testing.T) {
	pr := Profile{Day: time.Second, Days: 1, Base: 0.5, Peak: 0.5, RatePerClient: 200}
	// Multiplier 0.5 at 200 ops/s peak -> 100 ops/s -> 10ms gaps.
	if got := pr.Gap(0); got != 10*time.Millisecond {
		t.Fatalf("Gap = %v, want 10ms", got)
	}
}

func TestSpanCompression(t *testing.T) {
	pr := DefaultProfile()
	if got, want := pr.Span(), 7*pr.Day; got != want {
		t.Fatalf("Span = %v, want %v", got, want)
	}
}

func TestParseRoundTrip(t *testing.T) {
	text := `
# a compressed week
day 2s x 7
rate 300
curve sinusoid base 0.2 peak 1 at 15:00
week 1 1 1 1 1 0.7 0.5
burst day 3 at 20:00 ramp 100ms dwell 200ms decay 150ms x 2.5
`
	pr, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Day != 2*time.Second || pr.Days != 7 || pr.RatePerClient != 300 {
		t.Fatalf("geometry: %+v", pr)
	}
	if len(pr.Bursts) != 1 || pr.Bursts[0].Day != 3 || pr.Bursts[0].Mult != 2.5 {
		t.Fatalf("bursts: %+v", pr.Bursts)
	}
	almost(t, pr.PeakFrac, 15.0/24, 1e-9, "peak frac")
	// Render -> Parse is the identity on the multiplier function.
	rt, err := Parse(pr.Render())
	if err != nil {
		t.Fatalf("re-parse rendered profile: %v", err)
	}
	for _, at := range []time.Duration{0, 500 * time.Millisecond, 3 * time.Second, 7 * time.Second, 13 * time.Second} {
		a, b := pr.Multiplier(at), rt.Multiplier(at)
		almost(t, b, a, 1e-6, "round-trip multiplier at "+at.String())
	}
}

func TestParsePiecewise(t *testing.T) {
	pr, err := Parse("day 1s x 1\npoint 06:00 0.3\npoint 12:00 1\npoint 18:00 0.5\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Points) != 3 {
		t.Fatalf("points: %+v", pr.Points)
	}
	almost(t, pr.Multiplier(time.Second/2), 1.0, 1e-9, "noon multiplier")
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ text, wantSub string }{
		{"frob 1", "line 1"},
		{"frob 1", "unknown directive"},
		{"day nope", "line 1"},
		{"burst day 0 at 12:00 ramp 1ms dwell 1ms decay 1ms", "x <multiplier>"},
		{"point 25:00 1", "outside 00:00..23:59"},
		{"curve sinusoid base 0.2 peak 1\npoint 06:00 1", "conflicts"},
		{"point 06:00 1\ncurve sinusoid base 0.2 peak 1", "conflicts"},
		{"day 1s x 1\nburst day 4 at 12:00 ramp 1ms dwell 1ms decay 1ms x 2", "outside the 1-day span"},
		{"curve sinusoid base 2 peak 1", "base <= peak"},
	}
	for _, c := range cases {
		if _, err := Parse(c.text); err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) error = %v, want containing %q", c.text, err, c.wantSub)
		}
	}
}

func TestMultiplierFloor(t *testing.T) {
	pr := Profile{Day: time.Second, Days: 1, Base: 0.011, Peak: 0.011, RatePerClient: 100,
		Week: []float64{0.001}}
	if got := pr.Multiplier(0); got != minMult {
		t.Fatalf("floored multiplier = %g, want %g", got, minMult)
	}
}

func TestDefaultProfileValid(t *testing.T) {
	if err := DefaultProfile().Validate(); err != nil {
		t.Fatal(err)
	}
}
