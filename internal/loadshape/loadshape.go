// Package loadshape turns the steady-state benchmark workload into the
// traffic a metadata cluster actually serves: a declarative load profile
// with a time-of-day curve (sinusoid day/night or piecewise-linear
// breakpoints), weekly structure (weekend dips), and flash-crowd burst
// events with ramp/dwell/decay envelopes. A time-compression factor maps
// virtual days onto a bounded simulation run, so "replay a week of traffic"
// (ROADMAP item 1) costs seconds of virtual time.
//
// A profile is purely a function from virtual time to a load multiplier:
// evaluation allocates nothing and draws no randomness, so two runs with
// the same seed replay byte-identical offered-load curves. The only
// randomness in a paced run is the per-client arrival jitter, drawn from
// the simulation's per-process RNG streams — deterministic per seed like
// everything else on the virtual clock.
package loadshape

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"hopsfscl/internal/sim"
	"hopsfscl/internal/workload"
)

// minMult floors the curve so pacing gaps stay finite: an idle valley is
// quiet, not silent (real clusters never see literally zero traffic).
const minMult = 0.01

// Point is one breakpoint of a piecewise-linear day curve: the load
// multiplier at a time-of-day fraction in [0,1). The curve interpolates
// linearly between consecutive points and wraps around midnight.
type Point struct {
	Frac float64 // time of day as a fraction of the (compressed) day
	Mult float64 // load multiplier at that instant
}

// Burst is one flash-crowd event: starting at time-of-day Frac on day Day,
// the load multiplier ramps linearly from 1 to Mult over Ramp, holds for
// Dwell, and decays linearly back over Decay. Bursts multiply the diurnal
// curve (a crowd arriving at peak hurts more than one at night), and
// overlapping bursts compound.
type Burst struct {
	Day  int     // 0-based virtual day index
	Frac float64 // time-of-day fraction of the ramp start
	Mult float64 // multiplier at the plateau (> 1 for a spike)

	// Ramp, Dwell, Decay are in compressed (simulation) time, like every
	// duration in a profile.
	Ramp, Dwell, Decay time.Duration
}

// Profile is a declarative load shape over a run of Days compressed
// virtual days, each Day long in simulation time. The zero Profile is not
// runnable; start from DefaultProfile or Parse.
type Profile struct {
	// Day is the compressed length of one virtual day; Days is how many
	// the profile spans.
	Day  time.Duration
	Days int

	// Base and Peak bound the sinusoid day/night curve (Base at the
	// trough); PeakFrac is the time-of-day fraction of the peak. Points,
	// when set, replaces the sinusoid with a piecewise-linear curve and
	// Base/Peak/PeakFrac are ignored.
	Base, Peak float64
	PeakFrac   float64
	Points     []Point

	// Week scales whole days: day d uses Week[d mod len(Week)]. Empty
	// means no weekly structure.
	Week []float64

	// Bursts lists the flash-crowd events.
	Bursts []Burst

	// RatePerClient is the offered operation rate of one paced client at
	// multiplier 1.0, in ops/second.
	RatePerClient float64
}

// DefaultProfile returns a week of diurnal traffic compressed to 3s days:
// a sinusoid swinging 0.15..1.0 peaking mid-afternoon, a weekend dip, and
// one evening flash crowd mid-week.
func DefaultProfile() Profile {
	return Profile{
		Day:           3 * time.Second,
		Days:          7,
		Base:          0.15,
		Peak:          1.0,
		PeakFrac:      14.0 / 24,
		Week:          []float64{1, 1, 1, 1, 1, 0.7, 0.55},
		RatePerClient: 250,
		Bursts: []Burst{
			{Day: 2, Frac: 19.5 / 24, Mult: 2.0,
				Ramp: 120 * time.Millisecond, Dwell: 250 * time.Millisecond, Decay: 250 * time.Millisecond},
		},
	}
}

// withDefaults fills unset geometry from DefaultProfile so a sparse parsed
// profile is runnable.
func (pr Profile) withDefaults() Profile {
	d := DefaultProfile()
	if pr.Day <= 0 {
		pr.Day = d.Day
	}
	if pr.Days <= 0 {
		pr.Days = d.Days
	}
	if len(pr.Points) == 0 {
		if pr.Peak <= 0 {
			pr.Base, pr.Peak, pr.PeakFrac = d.Base, d.Peak, d.PeakFrac
		}
		if pr.Base <= 0 {
			pr.Base = minMult
		}
	}
	if pr.RatePerClient <= 0 {
		pr.RatePerClient = d.RatePerClient
	}
	return pr
}

// Validate reports the first structural problem of a profile.
func (pr Profile) Validate() error {
	if pr.Day <= 0 || pr.Days <= 0 {
		return fmt.Errorf("loadshape: need a positive day length and day count")
	}
	if pr.RatePerClient <= 0 {
		return fmt.Errorf("loadshape: need a positive per-client rate")
	}
	if len(pr.Points) > 0 {
		for _, p := range pr.Points {
			if p.Frac < 0 || p.Frac >= 1 {
				return fmt.Errorf("loadshape: point time %.3f outside [0,1)", p.Frac)
			}
			if p.Mult <= 0 {
				return fmt.Errorf("loadshape: point multiplier %g must be positive", p.Mult)
			}
		}
	} else {
		if pr.Base <= 0 || pr.Peak < pr.Base {
			return fmt.Errorf("loadshape: need 0 < base <= peak (got base %g peak %g)", pr.Base, pr.Peak)
		}
		if pr.PeakFrac < 0 || pr.PeakFrac >= 1 {
			return fmt.Errorf("loadshape: peak time %.3f outside [0,1)", pr.PeakFrac)
		}
	}
	for _, w := range pr.Week {
		if w <= 0 {
			return fmt.Errorf("loadshape: week factor %g must be positive", w)
		}
	}
	for i, b := range pr.Bursts {
		if b.Day < 0 || b.Day >= pr.Days {
			return fmt.Errorf("loadshape: burst %d on day %d outside the %d-day span", i, b.Day, pr.Days)
		}
		if b.Frac < 0 || b.Frac >= 1 {
			return fmt.Errorf("loadshape: burst %d time %.3f outside [0,1)", i, b.Frac)
		}
		if b.Mult <= 0 {
			return fmt.Errorf("loadshape: burst %d multiplier %g must be positive", i, b.Mult)
		}
		if b.Ramp < 0 || b.Dwell < 0 || b.Decay < 0 || b.Ramp+b.Dwell+b.Decay <= 0 {
			return fmt.Errorf("loadshape: burst %d needs a positive envelope", i)
		}
	}
	return nil
}

// Span is the profile's total compressed run length.
func (pr Profile) Span() time.Duration { return time.Duration(pr.Days) * pr.Day }

// dayCurve evaluates the time-of-day curve at day fraction frac.
func (pr Profile) dayCurve(frac float64) float64 {
	if len(pr.Points) == 0 {
		// Cosine peaking at PeakFrac: Base at the opposite side of the day.
		c := 0.5 + 0.5*math.Cos(2*math.Pi*(frac-pr.PeakFrac))
		return pr.Base + (pr.Peak-pr.Base)*c
	}
	pts := pr.Points // sorted by Parse / normalizePoints
	// Find the segment containing frac, wrapping around midnight.
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Frac > frac }) - 1
	a := pts[(i+len(pts))%len(pts)]
	b := pts[(i+1)%len(pts)]
	af, bf := a.Frac, b.Frac
	if af > frac { // frac before the first point: previous segment wraps back
		af -= 1
	}
	if bf <= af {
		bf += 1
	}
	if bf == af {
		return a.Mult
	}
	t := (frac - af) / (bf - af)
	return a.Mult + (b.Mult-a.Mult)*t
}

// burstEnvelope evaluates one burst's multiplier at absolute compressed
// time t (1 outside the envelope).
func (pr Profile) burstEnvelope(b Burst, t time.Duration) float64 {
	start := time.Duration(b.Day)*pr.Day + time.Duration(b.Frac*float64(pr.Day))
	dt := t - start
	switch {
	case dt < 0 || dt >= b.Ramp+b.Dwell+b.Decay:
		return 1
	case dt < b.Ramp:
		return 1 + (b.Mult-1)*float64(dt)/float64(b.Ramp)
	case dt < b.Ramp+b.Dwell:
		return b.Mult
	default:
		rem := float64(dt-b.Ramp-b.Dwell) / float64(b.Decay)
		return b.Mult + (1-b.Mult)*rem
	}
}

// Multiplier evaluates the load multiplier at compressed time t since the
// profile start: day curve x weekly factor x burst envelopes, floored at
// a small positive minimum. Past the span it holds the final day's curve
// (callers normally stop at Span).
func (pr Profile) Multiplier(t time.Duration) float64 {
	if t < 0 {
		t = 0
	}
	day := int(t / pr.Day)
	if day >= pr.Days {
		day = pr.Days - 1
	}
	frac := float64(t-time.Duration(day)*pr.Day) / float64(pr.Day)
	if frac < 0 {
		frac = 0
	} else if frac >= 1 {
		frac = math.Nextafter(1, 0)
	}
	m := pr.dayCurve(frac)
	if len(pr.Week) > 0 {
		m *= pr.Week[day%len(pr.Week)]
	}
	for _, b := range pr.Bursts {
		m *= pr.burstEnvelope(b, t)
	}
	if m < minMult {
		m = minMult
	}
	return m
}

// Gap returns the target inter-arrival gap of one paced client at
// compressed time t: 1/(RatePerClient x Multiplier(t)).
func (pr Profile) Gap(t time.Duration) time.Duration {
	r := pr.RatePerClient * pr.Multiplier(t)
	return time.Duration(float64(time.Second) / r)
}

// PaceControl steers a set of paced clients from outside the simulation.
// Pause parks clients between operations (audit quiesce); Stop ends them.
type PaceControl struct {
	Stop  bool
	Pause bool
	// Ops and Errors tally completions across every client on the control
	// (the simulation schedules clients cooperatively, so plain counters
	// are safe).
	Ops    int64
	Errors int64
}

// Pace runs one paced client process: operations drawn from gen execute
// against fs at the profile's offered rate. Arrivals are open-loop — when
// an operation finishes before its gap the client sleeps the remainder
// (with seeded jitter to avoid phase lock), and when the system is slower
// than the offered rate the client degrades to closed-loop, which is what
// saturates an underprovisioned cluster. Returns when the profile span
// ends or ctl.Stop is set.
func (pr Profile) Pace(p *sim.Proc, start time.Duration, gen *workload.Generator, fs workload.FS, ctl *PaceControl) {
	span := pr.Span()
	parked := false
	for !ctl.Stop {
		if ctl.Pause {
			parked = true
			p.Sleep(500 * time.Microsecond)
			continue
		}
		t := p.Now() - start
		if t >= span {
			return
		}
		gap := pr.Gap(t)
		if parked {
			// Every client notices an unpause within one polling tick, so
			// resuming in lockstep would slam the cluster with a synthetic
			// herd no real workload produces. Re-spread over one gap first.
			parked = false
			p.Sleep(time.Duration(p.Rand().Float64() * float64(gap)))
			continue
		}
		t0 := p.Now()
		_, err := gen.Step(p, fs)
		if !errors.Is(err, workload.ErrNoTarget) {
			ctl.Ops++
			if err != nil {
				ctl.Errors++
			}
		}
		if el := p.Now() - t0; el < gap {
			// Jitter the idle remainder +/-50% so clients spread over the
			// gap instead of phase-locking on profile edges; the mean stays
			// at the offered rate.
			rest := gap - el
			j := time.Duration((0.5 + p.Rand().Float64()) * float64(rest))
			p.Sleep(j)
		}
	}
}
