package loadshape

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Render writes the profile in the line syntax Parse reads.
func (pr Profile) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "day %v x %d\n", pr.Day, pr.Days)
	fmt.Fprintf(&b, "rate %g\n", pr.RatePerClient)
	if len(pr.Points) > 0 {
		for _, p := range pr.Points {
			fmt.Fprintf(&b, "point %s %g\n", fmtTOD(p.Frac), p.Mult)
		}
	} else {
		fmt.Fprintf(&b, "curve sinusoid base %g peak %g at %s\n", pr.Base, pr.Peak, fmtTOD(pr.PeakFrac))
	}
	if len(pr.Week) > 0 {
		parts := make([]string, len(pr.Week))
		for i, w := range pr.Week {
			parts[i] = strconv.FormatFloat(w, 'g', -1, 64)
		}
		fmt.Fprintf(&b, "week %s\n", strings.Join(parts, " "))
	}
	for _, bu := range pr.Bursts {
		fmt.Fprintf(&b, "burst day %d at %s ramp %v dwell %v decay %v x %g\n",
			bu.Day, fmtTOD(bu.Frac), bu.Ramp, bu.Dwell, bu.Decay, bu.Mult)
	}
	return b.String()
}

// fmtTOD renders a day fraction as HH:MM virtual time of day (rounded to
// the minute, which is all the syntax can express).
func fmtTOD(frac float64) string {
	mins := int(frac*24*60 + 0.5)
	return fmt.Sprintf("%02d:%02d", (mins/60)%24, mins%60)
}

// parseTOD parses an HH:MM virtual time of day into a day fraction.
func parseTOD(s string) (float64, error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return 0, fmt.Errorf("want HH:MM, got %q", s)
	}
	h, err := strconv.Atoi(parts[0])
	if err != nil {
		return 0, fmt.Errorf("bad hour in %q: %w", s, err)
	}
	m, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, fmt.Errorf("bad minute in %q: %w", s, err)
	}
	if h < 0 || h > 23 || m < 0 || m > 59 {
		return 0, fmt.Errorf("time %q outside 00:00..23:59", s)
	}
	return (float64(h) + float64(m)/60) / 24, nil
}

// Parse reads a declarative load profile in a line-oriented syntax:
//
//	# a week of diurnal traffic, 3s per virtual day
//	day 3s x 7
//	rate 250                                  # ops/s per client at multiplier 1
//	curve sinusoid base 0.15 peak 1.0 at 14:00
//	week 1 1 1 1 1 0.7 0.55                   # weekend dip
//	burst day 2 at 19:30 ramp 120ms dwell 250ms decay 250ms x 2
//
// A piecewise-linear day replaces the sinusoid with breakpoints (linear
// interpolation between them, wrapping around midnight):
//
//	point 04:00 0.1
//	point 14:00 1.0
//	point 22:00 0.4
//
// All durations are compressed (simulation) time; times of day are virtual
// HH:MM within the compressed day. Omitted directives fall back to
// DefaultProfile geometry.
func Parse(text string) (Profile, error) {
	var pr Profile
	sawCurve := false
	for ln, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		f := strings.Fields(line)
		fail := func(err error) (Profile, error) {
			return Profile{}, fmt.Errorf("loadshape: line %d: %q: %w", ln+1, raw, err)
		}
		switch f[0] {
		case "day":
			// "day <dur> [x <days>]"
			if len(f) != 2 && (len(f) != 4 || f[2] != "x") {
				return fail(fmt.Errorf("want `day <dur> [x <days>]`"))
			}
			d, err := time.ParseDuration(f[1])
			if err != nil {
				return fail(err)
			}
			pr.Day = d
			if len(f) == 4 {
				n, err := strconv.Atoi(f[3])
				if err != nil {
					return fail(err)
				}
				pr.Days = n
			}
		case "rate":
			if len(f) != 2 {
				return fail(fmt.Errorf("want `rate <ops-per-second>`"))
			}
			r, err := strconv.ParseFloat(f[1], 64)
			if err != nil {
				return fail(err)
			}
			pr.RatePerClient = r
		case "curve":
			// "curve sinusoid base <m> peak <m> [at HH:MM]"
			if sawCurve || len(pr.Points) > 0 {
				return fail(fmt.Errorf("curve conflicts with an earlier curve/point directive"))
			}
			if len(f) < 2 || f[1] != "sinusoid" {
				return fail(fmt.Errorf("want `curve sinusoid base <m> peak <m> [at HH:MM]`"))
			}
			sawCurve = true
			pr.PeakFrac = DefaultProfile().PeakFrac
			rest := f[2:]
			for len(rest) > 0 {
				if len(rest) < 2 {
					return fail(fmt.Errorf("dangling %q", rest[0]))
				}
				switch rest[0] {
				case "base":
					v, err := strconv.ParseFloat(rest[1], 64)
					if err != nil {
						return fail(err)
					}
					pr.Base = v
				case "peak":
					v, err := strconv.ParseFloat(rest[1], 64)
					if err != nil {
						return fail(err)
					}
					pr.Peak = v
				case "at":
					frac, err := parseTOD(rest[1])
					if err != nil {
						return fail(err)
					}
					pr.PeakFrac = frac
				default:
					return fail(fmt.Errorf("unknown curve field %q", rest[0]))
				}
				rest = rest[2:]
			}
		case "point":
			if sawCurve {
				return fail(fmt.Errorf("point conflicts with an earlier curve directive"))
			}
			if len(f) != 3 {
				return fail(fmt.Errorf("want `point HH:MM <multiplier>`"))
			}
			frac, err := parseTOD(f[1])
			if err != nil {
				return fail(err)
			}
			m, err := strconv.ParseFloat(f[2], 64)
			if err != nil {
				return fail(err)
			}
			pr.Points = append(pr.Points, Point{Frac: frac, Mult: m})
		case "week":
			if len(f) < 2 {
				return fail(fmt.Errorf("want `week <factor>...`"))
			}
			pr.Week = nil
			for _, s := range f[1:] {
				w, err := strconv.ParseFloat(s, 64)
				if err != nil {
					return fail(err)
				}
				pr.Week = append(pr.Week, w)
			}
		case "burst":
			// "burst day <d> at HH:MM ramp <dur> dwell <dur> decay <dur> x <mult>"
			b := Burst{}
			rest := f[1:]
			for len(rest) > 0 {
				if len(rest) < 2 {
					return fail(fmt.Errorf("dangling %q", rest[0]))
				}
				var err error
				switch rest[0] {
				case "day":
					b.Day, err = strconv.Atoi(rest[1])
				case "at":
					b.Frac, err = parseTOD(rest[1])
				case "ramp":
					b.Ramp, err = time.ParseDuration(rest[1])
				case "dwell":
					b.Dwell, err = time.ParseDuration(rest[1])
				case "decay":
					b.Decay, err = time.ParseDuration(rest[1])
				case "x":
					b.Mult, err = strconv.ParseFloat(rest[1], 64)
				default:
					err = fmt.Errorf("unknown burst field %q", rest[0])
				}
				if err != nil {
					return fail(err)
				}
				rest = rest[2:]
			}
			if b.Mult == 0 {
				return fail(fmt.Errorf("burst needs `x <multiplier>`"))
			}
			pr.Bursts = append(pr.Bursts, b)
		default:
			return fail(fmt.Errorf("unknown directive %q", f[0]))
		}
	}
	pr = pr.withDefaults()
	sort.SliceStable(pr.Points, func(i, j int) bool { return pr.Points[i].Frac < pr.Points[j].Frac })
	if err := pr.Validate(); err != nil {
		return Profile{}, err
	}
	return pr, nil
}
