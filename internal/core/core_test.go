package core

import (
	"strings"
	"testing"
	"time"

	"hopsfscl/internal/ndb"
	"hopsfscl/internal/sim"
	"hopsfscl/internal/slo"
	"hopsfscl/internal/workload"
)

// smallOptions returns a deployment small enough for fast tests.
func smallOptions(setup Setup) Options {
	opts := DefaultOptions(setup)
	opts.MetadataServers = 3
	opts.ClientsPerServer = 4
	opts.StorageNodes = 6
	opts.PartitionsPerTable = 12
	opts.Namespace = workload.NamespaceSpec{TopDirs: 8, SubDirs: 2, FilesPerDir: 5, ZipfS: 1.1}
	return opts
}

// TestBuildAllPaperSetups builds every one of the nine evaluation setups
// and runs a short workload through each.
func TestBuildAllPaperSetups(t *testing.T) {
	for _, setup := range PaperSetups {
		setup := setup
		t.Run(setup.Name, func(t *testing.T) {
			d, err := Build(smallOptions(setup))
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			if len(d.Clients) != 12 {
				t.Fatalf("clients = %d, want 12", len(d.Clients))
			}
			gen := workload.NewGenerator(d.Namespace, workload.SpotifyMix, 1)
			var errs, ops int
			d.Env.Spawn("driver", func(p *sim.Proc) {
				for i := 0; i < 200; i++ {
					if _, err := gen.Step(p, d.Clients[i%len(d.Clients)]); err != nil {
						errs++
					}
					ops++
				}
			})
			d.Env.RunFor(30 * time.Second)
			if ops != 200 {
				t.Fatalf("only %d/200 ops completed", ops)
			}
			if errs > 10 {
				t.Fatalf("%d/200 ops errored", errs)
			}
		})
	}
}

// TestShardedDeployment builds a two-shard HopsFS-CL deployment, drives a
// mixed workload through it (including renames, some of which cross the
// shard boundary), and checks the namespace actually spread across both
// clusters with no pending cross-shard intents left behind.
func TestShardedDeployment(t *testing.T) {
	opts := smallOptions(PaperSetups[5])
	opts.Shards = 2
	d, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if got := len(d.MetaClusters()); got != 2 {
		t.Fatalf("meta clusters = %d, want 2", got)
	}
	if got := len(d.StorageNodes()); got != 12 {
		t.Fatalf("storage nodes = %d, want 12 across both shards", got)
	}
	gen := workload.NewGenerator(d.Namespace, workload.SpotifyMix, 1)
	var errs, ops int
	d.Env.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 400; i++ {
			if _, err := gen.Step(p, d.Clients[i%len(d.Clients)]); err != nil {
				errs++
			}
			ops++
		}
	})
	d.Env.RunFor(time.Minute)
	if ops != 400 {
		t.Fatalf("only %d/400 ops completed", ops)
	}
	if errs > 20 {
		t.Fatalf("%d/400 ops errored", errs)
	}
	for s := 0; s < 2; s++ {
		rows := 0
		d.NS.Router().Cluster(s).Table("inodes").ForEachCommitted(func(_, _ string, _ ndb.Value) {
			rows++
		})
		if rows == 0 {
			t.Fatalf("shard %d holds no inode rows: namespace did not spread", s)
		}
	}
	if pending := d.NS.PendingIntents(); pending != 0 {
		t.Fatalf("%d cross-shard intents left pending after quiesce", pending)
	}
}

// TestShardedDeterminism checks that a sharded deployment is bit-for-bit
// reproducible under load, like its unsharded counterpart.
func TestShardedDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		opts := smallOptions(PaperSetups[5])
		opts.Shards = 3
		d, err := Build(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		gen := workload.NewGenerator(d.Namespace, workload.SpotifyMix, 3)
		d.Env.Spawn("driver", func(p *sim.Proc) {
			for i := 0; i < 300; i++ {
				_, _ = gen.Step(p, d.Clients[i%len(d.Clients)])
			}
		})
		d.Env.RunFor(30 * time.Second)
		var committed int64
		for _, c := range d.MetaClusters() {
			committed += c.Stats.Committed
		}
		return committed, d.Net.CrossZoneBytes()
	}
	c1, x1 := run()
	c2, x2 := run()
	if c1 != c2 || x1 != x2 {
		t.Fatalf("sharded deployments diverge: (%d,%d) vs (%d,%d)", c1, x1, c2, x2)
	}
}

func TestSetupByName(t *testing.T) {
	for _, s := range PaperSetups {
		got, ok := SetupByName(s.Name)
		if !ok || got != s {
			t.Fatalf("SetupByName(%q) = %+v, %v", s.Name, got, ok)
		}
	}
	if _, ok := SetupByName("nope"); ok {
		t.Fatal("bogus name found")
	}
}

func TestDeploymentAccessorsHops(t *testing.T) {
	d, err := Build(smallOptions(PaperSetups[5])) // HopsFS-CL (3,3)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if got := len(d.ServerCPUs()); got != 3 {
		t.Fatalf("server CPUs = %d", got)
	}
	if got := len(d.StorageCPUs()); got != 6*7 {
		t.Fatalf("storage CPUs = %d, want 42 thread pools", got)
	}
	if got := len(d.StorageNodes()); got != 6 {
		t.Fatalf("storage nodes = %d", got)
	}
	if got := len(d.ServerNodes()); got != 3 {
		t.Fatalf("server nodes = %d", got)
	}
	if got := len(d.ServerRequests()); got != 3 {
		t.Fatalf("server requests = %d entries", got)
	}
}

func TestDeploymentAccessorsCeph(t *testing.T) {
	d, err := Build(smallOptions(PaperSetups[6])) // CephFS
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.DB != nil || d.NS != nil {
		t.Fatal("ceph deployment has hops components")
	}
	if got := len(d.ServerCPUs()); got != 3 {
		t.Fatalf("MDS CPUs = %d", got)
	}
	if got := len(d.StorageNodes()); got != 6 {
		t.Fatalf("OSDs = %d", got)
	}
	if got := len(d.StorageCPUs()); got != 0 {
		t.Fatalf("ceph storage CPUs = %d, want 0", got)
	}
}

// TestZoneAssignmentsFollowSetup checks the single- and triple-AZ layouts.
func TestZoneAssignmentsFollowSetup(t *testing.T) {
	single, err := Build(smallOptions(PaperSetups[0])) // HopsFS (2,1)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	for _, n := range single.StorageNodes() {
		if n.Zone() != 2 {
			t.Fatalf("single-AZ deployment placed %s in zone %d", n.Name(), n.Zone())
		}
	}
	triple, err := Build(smallOptions(PaperSetups[5]))
	if err != nil {
		t.Fatal(err)
	}
	defer triple.Close()
	zones := map[int]bool{}
	for _, n := range triple.StorageNodes() {
		zones[int(n.Zone())] = true
	}
	if len(zones) != 3 {
		t.Fatalf("triple-AZ storage spans %d zones", len(zones))
	}
}

// TestAwarenessWiring checks that AZ awareness flags flow to every layer.
func TestAwarenessWiring(t *testing.T) {
	aware, err := Build(smallOptions(PaperSetups[5]))
	if err != nil {
		t.Fatal(err)
	}
	defer aware.Close()
	for _, dn := range aware.DB.DataNodes() {
		if dn.Domain == 0 {
			t.Fatal("HopsFS-CL datanode has no LocationDomainId")
		}
	}
	unaware, err := Build(smallOptions(PaperSetups[3])) // HopsFS (3,3)
	if err != nil {
		t.Fatal(err)
	}
	defer unaware.Close()
	for _, dn := range unaware.DB.DataNodes() {
		if dn.Domain != 0 {
			t.Fatal("vanilla HopsFS datanode has a LocationDomainId")
		}
	}
	if unaware.NS.InodeTable().Options().ReadBackup {
		t.Fatal("vanilla HopsFS has Read Backup enabled")
	}
	if !aware.NS.InodeTable().Options().ReadBackup {
		t.Fatal("HopsFS-CL lacks Read Backup")
	}
}

// TestDisableReadBackupAblation checks the Figure 14 toggle.
func TestDisableReadBackupAblation(t *testing.T) {
	opts := smallOptions(PaperSetups[5])
	opts.DisableReadBackup = true
	d, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.NS.InodeTable().Options().ReadBackup {
		t.Fatal("Read Backup still enabled under the ablation")
	}
	// The deployment remains AZ-aware at the other layers.
	if d.DB.DataNodes()[0].Domain == 0 {
		t.Fatal("ablation disabled LocationDomainIds too")
	}
}

// TestWorkloadMidAZFailure drives the workload while an AZ dies and checks
// the error rate stays bounded (retries + failover mask the failure).
func TestWorkloadMidAZFailure(t *testing.T) {
	opts := smallOptions(PaperSetups[5])
	opts.MetadataServers = 6
	d, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var ops, errs int
	stop := false
	for i, fs := range d.Clients {
		fs := fs
		gen := workload.NewGenerator(d.Namespace, workload.SpotifyMix, int64(i))
		d.Env.Spawn("client", func(p *sim.Proc) {
			for !stop {
				if _, err := gen.Step(p, fs); err != nil {
					errs++
				}
				ops++
			}
		})
	}
	d.Env.RunFor(200 * time.Millisecond)
	d.DB.FailZone(3)
	for _, nn := range d.NS.NameNodes() {
		if nn.Node.Zone() == 3 {
			nn.Fail()
		}
	}
	d.Env.RunFor(2 * time.Second)
	stop = true
	d.Env.RunFor(time.Second)
	if ops == 0 {
		t.Fatal("no operations completed")
	}
	if float64(errs) > 0.1*float64(ops) {
		t.Fatalf("error rate too high across AZ failure: %d/%d", errs, ops)
	}
}

// TestDeterministicDeployments checks bit-for-bit reproducibility of whole
// deployments under load.
func TestDeterministicDeployments(t *testing.T) {
	run := func() (int64, int64) {
		d, err := Build(smallOptions(PaperSetups[5]))
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		gen := workload.NewGenerator(d.Namespace, workload.SpotifyMix, 3)
		d.Env.Spawn("driver", func(p *sim.Proc) {
			for i := 0; i < 300; i++ {
				_, _ = gen.Step(p, d.Clients[i%len(d.Clients)])
			}
		})
		d.Env.RunFor(30 * time.Second)
		return d.DB.Stats.Committed, d.Net.CrossZoneBytes()
	}
	c1, x1 := run()
	c2, x2 := run()
	if c1 != c2 || x1 != x2 {
		t.Fatalf("deployments diverge: (%d,%d) vs (%d,%d)", c1, x1, c2, x2)
	}
}

// TestSLOWithMetricsDisabled wires the live SLO engine into a deployment
// built with DisableMetrics: the engine must still observe operations and
// evaluate (its sketches are independent of the registry), while the no-op
// registry stays empty of slo gauges.
func TestSLOWithMetricsDisabled(t *testing.T) {
	opts := smallOptions(PaperSetups[5])
	opts.DisableMetrics = true
	d, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	eng := d.EnableSLO(slo.Spec{})
	gen := workload.NewGenerator(d.Namespace, workload.SpotifyMix, 1)
	d.Env.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 300; i++ {
			_, _ = gen.Step(p, d.Clients[i%len(d.Clients)])
		}
	})
	d.Env.RunFor(30 * time.Second)
	rep := eng.Report(d.Env.Now())
	if rep == nil || len(rep.Ops) == 0 {
		t.Fatal("engine observed no operations under DisableMetrics")
	}
	for _, s := range d.Registry.Snapshot() {
		if strings.HasPrefix(s.Name, "slo.") {
			t.Errorf("disabled registry accumulated gauge %s", s.Name)
		}
	}
	d.StopBackground()
	d.Env.RunFor(time.Second)
}
