package core

import (
	"sort"

	"hopsfscl/internal/namenode"
	"hopsfscl/internal/simnet"
)

// Elastic metadata tier: the serving layer is stateless (§II-A2), so a
// deployment can add and drain namenodes while the workload runs. These
// methods are the actuators an autoscale controller drives; the lifecycle
// itself lives in the namenode package (Commission / Drain / Decommission).

// ServingNNs returns how many metadata servers currently accept new
// operations (zero for CephFS deployments, which have no elastic tier).
func (d *Deployment) ServingNNs() int {
	if d.NS == nil {
		return 0
	}
	return d.NS.ServingCount()
}

// AddNameNodes commissions n new metadata servers on the live deployment,
// each in the zone with the fewest serving servers (ties to the lower zone
// id), matching how an operator restores AZ balance. Clients re-spread over
// the grown set at their next operation.
func (d *Deployment) AddNameNodes(n int) []*namenode.NameNode {
	if d.NS == nil || n <= 0 {
		return nil
	}
	aware := d.Setup.System == HopsFSCL
	zones := d.Opts.zoneSet()
	var added []*namenode.NameNode
	for i := 0; i < n; i++ {
		counts := make(map[simnet.ZoneID]int, len(zones))
		for _, nn := range d.NS.ServingNameNodes() {
			counts[nn.Node.Zone()]++
		}
		best := zones[0]
		for _, z := range zones[1:] {
			if counts[z] < counts[best] {
				best = z
			}
		}
		domain := simnet.ZoneUnset
		if aware {
			domain = best
		}
		added = append(added, d.NS.Commission(best, d.nextHost(), domain))
	}
	return added
}

// DrainNameNodes starts a graceful drain of n serving metadata servers,
// youngest (highest id) first — scale-down releases the servers scale-up
// commissioned. It never drains below one serving server. The drained
// servers keep finishing in-flight operations; complete the exit with
// FinishDrains.
func (d *Deployment) DrainNameNodes(n int) []*namenode.NameNode {
	if d.NS == nil || n <= 0 {
		return nil
	}
	serving := d.NS.ServingNameNodes()
	sort.Slice(serving, func(i, j int) bool { return serving[i].ID > serving[j].ID })
	if n > len(serving)-1 {
		n = len(serving) - 1
	}
	var drained []*namenode.NameNode
	for i := 0; i < n; i++ {
		serving[i].Drain()
		drained = append(drained, serving[i])
	}
	return drained
}

// FinishDrains decommissions every draining server whose in-flight count
// has reached zero and returns how many are still draining. Callers poll it
// between simulation steps until it returns zero.
func (d *Deployment) FinishDrains() int {
	if d.NS == nil {
		return 0
	}
	pending := 0
	for _, nn := range d.NS.NameNodes() {
		if !nn.Draining() {
			continue
		}
		if nn.InFlight() > 0 {
			pending++
			continue
		}
		if err := nn.Decommission(); err != nil {
			pending++
		}
	}
	return pending
}
