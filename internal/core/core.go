// Package core assembles the paper's systems into runnable deployments: it
// is HopsFS-CL put together — the AZ-aware metadata storage (ndb), metadata
// serving (namenode), and block storage (blocks) layers wired across one or
// three availability zones — plus the baselines, exactly as §V-A deploys
// them. The nine evaluation setups of Figure 5 are predefined.
package core

import (
	"errors"
	"fmt"
	"time"

	"hopsfscl/internal/blocks"
	"hopsfscl/internal/cephfs"
	"hopsfscl/internal/heat"
	"hopsfscl/internal/namenode"
	"hopsfscl/internal/ndb"
	"hopsfscl/internal/objstore"
	"hopsfscl/internal/shard"
	"hopsfscl/internal/sim"
	"hopsfscl/internal/simnet"
	"hopsfscl/internal/slo"
	"hopsfscl/internal/trace"
	"hopsfscl/internal/workload"
)

// System identifies the file system under test.
type System int

// Systems.
const (
	// HopsFS is vanilla HopsFS: no AZ awareness anywhere in the stack.
	HopsFS System = iota + 1
	// HopsFSCL is the paper's contribution: AZ awareness at the metadata
	// storage, metadata serving, and block storage layers.
	HopsFSCL
	// Ceph is the default CephFS setup (dynamic subtree balancing).
	Ceph
	// CephDirPinned manually pins subtrees to MDSs.
	CephDirPinned
	// CephSkipKCache disables the client kernel cache.
	CephSkipKCache
)

// Setup is one evaluated deployment configuration.
type Setup struct {
	// Name matches the paper's figure legends, e.g. "HopsFS-CL (3,3)".
	Name string
	// System selects the stack.
	System System
	// MetaReplication is the metadata replication factor (first tuple
	// element in the paper's naming).
	MetaReplication int
	// Zones is the number of AZs used (second tuple element).
	Zones int
}

// PaperSetups are the nine deployments of Figure 5, in legend order.
var PaperSetups = []Setup{
	{Name: "HopsFS (2,1)", System: HopsFS, MetaReplication: 2, Zones: 1},
	{Name: "HopsFS (3,1)", System: HopsFS, MetaReplication: 3, Zones: 1},
	{Name: "HopsFS (2,3)", System: HopsFS, MetaReplication: 2, Zones: 3},
	{Name: "HopsFS (3,3)", System: HopsFS, MetaReplication: 3, Zones: 3},
	{Name: "HopsFS-CL (2,3)", System: HopsFSCL, MetaReplication: 2, Zones: 3},
	{Name: "HopsFS-CL (3,3)", System: HopsFSCL, MetaReplication: 3, Zones: 3},
	{Name: "CephFS", System: Ceph, MetaReplication: 3, Zones: 3},
	{Name: "CephFS - DirPinned", System: CephDirPinned, MetaReplication: 3, Zones: 3},
	{Name: "CephFS - SkipKCache", System: CephSkipKCache, MetaReplication: 3, Zones: 3},
}

// SetupByName finds a paper setup by its legend name.
func SetupByName(name string) (Setup, bool) {
	for _, s := range PaperSetups {
		if s.Name == name {
			return s, true
		}
	}
	return Setup{}, false
}

// Options parameterize a deployment build.
type Options struct {
	// Setup selects the system and replication/zone configuration.
	Setup Setup
	// MetadataServers is the NN count (or MDS count for CephFS).
	MetadataServers int
	// ClientsPerServer is the closed-loop benchmark client count per
	// metadata server.
	ClientsPerServer int
	// StorageNodes is the NDB datanode count (paper: 12). CephFS uses the
	// same count of OSDs.
	StorageNodes int
	// PartitionsPerTable sets the NDB partition count.
	PartitionsPerTable int
	// Shards is the number of independent NDB clusters the namespace is
	// hash-partitioned across (internal/shard). Zero or one keeps the
	// single-cluster deployment, byte for byte. Each extra shard is a full
	// cluster of StorageNodes datanodes with its own node groups, replica
	// chains, and management nodes.
	Shards int
	// WithBlockLayer adds block storage datanodes (not needed for the
	// metadata benchmarks, which use empty files as in §V).
	WithBlockLayer bool
	// BlockDataNodes is the DN count when WithBlockLayer is set.
	BlockDataNodes int
	// ObjectStoreBlocks replaces datanode replication with a cloud object
	// store block backend — the paper's §VII future work.
	ObjectStoreBlocks bool
	// Namespace shapes the pre-seeded tree.
	Namespace workload.NamespaceSpec
	// Seed makes the whole deployment deterministic.
	Seed int64
	// DisableReadBackup turns the Read Backup table option off even on
	// HopsFS-CL — the Figure 14 ablation isolating the feature.
	DisableReadBackup bool
	// NDBCosts overrides the storage engine's calibrated service demands
	// (nil keeps ndb.DefaultCosts) — used by the batching ablation.
	NDBCosts *ndb.Costs
	// DisableBatchedResolve forces the serial per-component path walk,
	// ignoring the hint cache's batching opportunity — the ablation
	// isolating batched path resolution.
	DisableBatchedResolve bool
	// DisableBatchedWrites forces the serial write path: per-row staging
	// round trips and one 2PC chain per row instead of coalesced commit
	// trains — the ablation isolating the batched write path.
	DisableBatchedWrites bool
	// DisableMetrics switches the registry to no-op mode before any handle
	// is registered: instrumented hot paths get nil handles and pay a single
	// nil check per update — the floor for measuring registry overhead.
	DisableMetrics bool
	// NNCores, NNOpBase, and NNElectionRound override the metadata-server
	// sizing (zero keeps namenode.DefaultConfig). The elastic experiments
	// use them to shrink per-NN capacity — the paper's 32-vCPU servers never
	// saturate under the benchmark client counts, so autoscaling on real
	// utilization needs smaller servers — and to speed elections up so
	// commissioned servers join the active list within a compressed day.
	NNCores         int
	NNOpBase        time.Duration
	NNElectionRound time.Duration
}

// DefaultOptions returns the evaluation defaults for a setup.
func DefaultOptions(setup Setup) Options {
	return Options{
		Setup:              setup,
		MetadataServers:    12,
		ClientsPerServer:   64,
		StorageNodes:       12,
		PartitionsPerTable: 48,
		Namespace:          workload.DefaultNamespace(),
		Seed:               1,
	}
}

// Deployment is a built, running system with its benchmark clients.
type Deployment struct {
	Env   *sim.Env
	Net   *simnet.Network
	Opts  Options
	Setup Setup

	// Registry aggregates cluster-wide counters and timings; Tracer owns it
	// and mints per-operation spans. Both are always live (cheap, pre-registered
	// handles); the detailed span sink is off until EnableTracing.
	Registry *trace.Registry
	Tracer   *trace.Tracer

	// HopsFS/HopsFS-CL components (nil for CephFS). DB is shard 0's
	// cluster — the only one for unsharded deployments; Router routes
	// partition keys across all of them (a one-cluster identity router
	// when Opts.Shards <= 1).
	DB     *ndb.Cluster
	Router *shard.Router
	NS     *namenode.Namesystem
	Blocks *blocks.Manager

	// CephFS components (nil for HopsFS).
	Ceph *cephfs.Cluster

	// Clients are the workload-facing file system handles, one per
	// closed-loop benchmark client.
	Clients []workload.FS

	// Namespace is the seeded tree the workload generators share.
	Namespace *workload.Namespace

	// SLO is the live objective engine, nil until EnableSLO.
	SLO *slo.Engine

	// Heat is the namespace/table heat collector, nil until EnableHeat.
	Heat *heat.Collector

	// Exemplars is the tail-based exemplar store, nil until EnableExemplars.
	Exemplars *slo.Exemplars

	hostSeq int
	// flightStop asks the flight-recorder ticker to exit at its next tick
	// (see EnableFlightRecorder / StopBackground); sloStop and heatStop do
	// the same for the SLO evaluation and heat-publisher tickers.
	flightStop bool
	sloStop    bool
	heatStop   bool
}

// zoneSet returns the zones this deployment spans. Single-AZ deployments
// use us-west1-b (zone 2), as the paper does.
func (o Options) zoneSet() []simnet.ZoneID {
	if o.Setup.Zones == 1 {
		return []simnet.ZoneID{2}
	}
	return []simnet.ZoneID{1, 2, 3}
}

func (d *Deployment) nextHost() simnet.HostID {
	d.hostSeq++
	return simnet.HostID(d.hostSeq)
}

// NamespaceSeed derives the workload-namespace seed from a deployment
// seed. External tools (trace generation) use it to build namespaces that
// match a deployment built with the same seed.
func NamespaceSeed(seed int64) int64 { return seed + 7 }

// Build constructs and seeds a deployment.
func Build(opts Options) (*Deployment, error) {
	if opts.MetadataServers <= 0 {
		return nil, errors.New("core: MetadataServers must be positive")
	}
	env := sim.New(opts.Seed)
	net := simnet.New(env, simnet.USWest1())
	reg := trace.NewRegistry()
	if opts.DisableMetrics {
		reg.Disable()
	}
	net.SetRegistry(reg)
	d := &Deployment{
		Env: env, Net: net, Opts: opts, Setup: opts.Setup,
		Registry: reg, Tracer: trace.NewTracer(reg),
		hostSeq: 1000,
	}
	d.Namespace = workload.BuildNamespace(opts.Namespace, NamespaceSeed(opts.Seed))

	var err error
	switch opts.Setup.System {
	case HopsFS, HopsFSCL:
		err = d.buildHops()
	case Ceph, CephDirPinned, CephSkipKCache:
		err = d.buildCeph()
	default:
		err = fmt.Errorf("core: unknown system %d", opts.Setup.System)
	}
	if err != nil {
		env.Close()
		return nil, err
	}
	return d, nil
}

func (d *Deployment) buildHops() error {
	opts := d.Opts
	zones := opts.zoneSet()
	aware := opts.Setup.System == HopsFSCL

	dbCfg := ndb.DefaultConfig()
	dbCfg.DataNodes = opts.StorageNodes
	dbCfg.Replication = opts.Setup.MetaReplication
	dbCfg.PartitionsPerTable = opts.PartitionsPerTable
	dbCfg.AZAware = aware
	dbCfg.DisableWriteBatching = opts.DisableBatchedWrites
	if opts.NDBCosts != nil {
		dbCfg.Costs = *opts.NDBCosts
	}

	// buildCluster stands up one NDB cluster on fresh hosts; extra shards
	// get a name prefix so node names and gauge labels stay distinct.
	buildCluster := func(prefix string) (*ndb.Cluster, error) {
		cfg := dbCfg
		cfg.NamePrefix = prefix
		dataPl := make([]ndb.Placement, 0, opts.StorageNodes)
		for _, pl := range ndb.SpreadPlacement(opts.StorageNodes, zones, 0) {
			dataPl = append(dataPl, ndb.Placement{Zone: pl.Zone, Host: d.nextHost()})
		}
		var mgmtPl []ndb.Placement
		if opts.Setup.Zones == 1 {
			mgmtPl = []ndb.Placement{{Zone: zones[0], Host: d.nextHost()}}
		} else {
			// Figure 4: one management node per AZ; M1 (zone 1) arbitrates.
			for _, z := range zones {
				mgmtPl = append(mgmtPl, ndb.Placement{Zone: z, Host: d.nextHost()})
			}
		}
		return ndb.New(d.Env, d.Net, cfg, dataPl, mgmtPl)
	}
	db, err := buildCluster("")
	if err != nil {
		return err
	}
	db.SetTracer(d.Tracer)
	d.DB = db

	clusters := []*ndb.Cluster{db}
	for s := 1; s < opts.Shards; s++ {
		c, err := buildCluster(fmt.Sprintf("s%d-", s))
		if err != nil {
			return err
		}
		c.SetTracer(d.Tracer)
		clusters = append(clusters, c)
	}

	if opts.WithBlockLayer {
		bCfg := blocks.DefaultConfig()
		bCfg.AZAware = aware
		n := opts.BlockDataNodes
		if n <= 0 {
			n = 3 * len(zones)
		}
		if opts.ObjectStoreBlocks {
			n = 0 // the provider owns the storage nodes
		}
		var pls []blocks.Placement
		for i := 0; i < n; i++ {
			pls = append(pls, blocks.Placement{Zone: zones[i%len(zones)], Host: d.nextHost()})
		}
		d.Blocks = blocks.NewManager(d.Env, d.Net, bCfg, pls)
		d.Blocks.SetRegistry(d.Registry)
		if opts.ObjectStoreBlocks {
			hosts := make([]simnet.ZoneID, len(zones))
			copy(hosts, zones)
			store := objstore.New(d.Env, d.Net, objstore.DefaultConfig(), hosts, int(d.nextHost())+100)
			d.hostSeq += len(zones) + 1
			d.Blocks.UseObjectStore(store)
		}
	}

	nnCfg := namenode.DefaultConfig()
	// HopsFS-CL enables Read Backup on all tables (§IV-A5), unless the
	// Figure 14 ablation explicitly disables it.
	nnCfg.ReadBackup = aware && !opts.DisableReadBackup
	nnCfg.DisableBatchedResolve = opts.DisableBatchedResolve
	if opts.NNCores > 0 {
		nnCfg.NNCores = opts.NNCores
	}
	if opts.NNOpBase > 0 {
		nnCfg.Costs.OpBase = opts.NNOpBase
	}
	if opts.NNElectionRound > 0 {
		nnCfg.ElectionRound = opts.NNElectionRound
	}
	ns := namenode.NewNamesystem(db, d.Blocks, nnCfg)
	if len(clusters) > 1 {
		// Re-home the namespace onto a multi-cluster router before any
		// namenode or traffic exists. Unsharded deployments keep the
		// namesystem's internal one-cluster router untouched.
		router, err := shard.NewRouter(clusters)
		if err != nil {
			return err
		}
		router.SetTracer(d.Tracer)
		if err := ns.AttachShards(router); err != nil {
			return err
		}
	}
	d.Router = ns.Router()
	ns.SetTracer(d.Tracer)
	d.NS = ns

	domainOf := func(z simnet.ZoneID) simnet.ZoneID {
		if aware {
			return z
		}
		return simnet.ZoneUnset
	}
	for i := 0; i < opts.MetadataServers; i++ {
		z := zones[i%len(zones)]
		ns.AddNameNode(z, d.nextHost(), domainOf(z))
	}
	if err := ns.Seed(d.Namespace.Dirs, d.Namespace.AllFiles()); err != nil {
		return err
	}
	for i := 0; i < opts.MetadataServers*opts.ClientsPerServer; i++ {
		z := zones[i%len(zones)]
		cl := ns.NewClient(z, d.nextHost(), domainOf(z))
		d.Clients = append(d.Clients, hopsAdapter{cl: cl})
	}
	return nil
}

func (d *Deployment) buildCeph() error {
	opts := d.Opts
	zones := opts.zoneSet()

	cfg := cephfs.DefaultConfig()
	cfg.OSDs = opts.StorageNodes
	switch opts.Setup.System {
	case Ceph:
		cfg.Mode = cephfs.Dynamic
		cfg.KernelCache = true
	case CephDirPinned:
		cfg.Mode = cephfs.DirPinned
		cfg.KernelCache = true
	case CephSkipKCache:
		cfg.Mode = cephfs.DirPinned
		cfg.KernelCache = false
	}
	cfg.JournalReplication = opts.Setup.MetaReplication

	mdsZones := make([]simnet.ZoneID, opts.MetadataServers)
	for i := range mdsZones {
		mdsZones[i] = zones[i%len(zones)]
	}
	c := cephfs.New(d.Env, d.Net, cfg, mdsZones, d.hostSeq)
	d.hostSeq += opts.StorageNodes + opts.MetadataServers + 1
	d.Ceph = c
	if err := c.Seed(d.Namespace.Dirs, d.Namespace.AllFiles()); err != nil {
		return err
	}
	for i := 0; i < opts.MetadataServers*opts.ClientsPerServer; i++ {
		z := zones[i%len(zones)]
		cl := c.NewClient(z, d.nextHost())
		d.Clients = append(d.Clients, cephAdapter{cl: cl})
	}
	return nil
}

// EnableTracing turns on detailed span capture: every client operation
// records a full span tree (2PC phases, lock waits, retries, per-hop
// network classes) into a bounded ring sink of the given capacity
// (capacity <= 0 selects the default). The aggregate Registry is always
// on regardless; this only affects the per-span detail.
func (d *Deployment) EnableTracing(capacity int) *trace.Sink {
	return d.Tracer.EnableSink(capacity)
}

// EnableFlightRecorder starts a virtual-time ticker sampling the registry
// into a bounded ring every interval: the run's black box, answering "what
// did this signal look like over time" (see trace.FlightRecorder). keep
// restricts captured metric names by prefix; none keeps everything. The
// ticker is a background process — call StopBackground before expecting
// Env.Run to quiesce.
func (d *Deployment) EnableFlightRecorder(interval time.Duration, capacity int, keep ...string) *trace.FlightRecorder {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	fr := trace.NewFlightRecorder(d.Registry, interval, capacity)
	fr.Keep(keep...)
	d.Env.Spawn("flight-recorder", func(p *sim.Proc) {
		for !d.flightStop {
			p.Sleep(interval)
			if d.flightStop {
				return
			}
			fr.Record(p.Now())
		}
	})
	return fr
}

// EnableSLO starts the live SLO engine: every finishing root operation
// feeds the engine's windowed latency sketches (via the tracer's op
// observer), the deployment's components register health probes (NN
// thread-pool utilization, NDB liveness/contention, block
// under-replication), and a background ticker evaluates the burn-rate
// alerter and health model every spec.Tick of virtual time, publishing
// rolling percentile/throughput gauges. Pass a zero slo.Spec for
// DefaultSpec. The ticker is a background process — call StopBackground
// before expecting Env.Run to quiesce.
func (d *Deployment) EnableSLO(spec slo.Spec) *slo.Engine {
	eng := slo.NewEngine(spec, d.Registry)
	d.SLO = eng
	d.installOpObserver()
	if d.NS != nil {
		ns := d.NS
		eng.RegisterComponent("namenode", func(now time.Duration) slo.ComponentStats {
			live, expected, util := ns.HealthStats(now)
			return slo.ComponentStats{Live: live, Expected: expected, Quorum: 1, Util: util}
		})
	}
	for i, c := range d.MetaClusters() {
		db := c
		// Shard 0 keeps the historical "ndb" component name; extra shards
		// are health-tracked as their own components, so one failing shard
		// degrades cluster health without masking the others.
		name := "ndb"
		if i > 0 {
			name = fmt.Sprintf("ndb-s%d", i)
		}
		eng.RegisterComponent(name, func(now time.Duration) slo.ComponentStats {
			live, expected, groupLost, util, pressure := db.HealthStats(now)
			st := slo.ComponentStats{
				Live: live, Expected: expected, Quorum: expected/2 + 1,
				Util: util, Pressure: pressure,
			}
			if groupLost {
				// A node group with no surviving replica means lost
				// partitions: the cluster cannot serve, however many other
				// nodes are up.
				st.Live = 0
			}
			return st
		})
	}
	if d.Blocks != nil {
		bm := d.Blocks
		eng.RegisterComponent("blocks", func(time.Duration) slo.ComponentStats {
			live, expected, under := bm.HealthStats()
			return slo.ComponentStats{Live: live, Expected: expected, Quorum: 1, Pressure: float64(under)}
		})
	}
	tick := eng.Spec().Tick
	d.Env.Spawn("slo-engine", func(p *sim.Proc) {
		for !d.sloStop {
			p.Sleep(tick)
			if d.sloStop {
				return
			}
			eng.Tick(p.Now())
		}
	})
	return eng
}

// installOpObserver (re)installs the tracer's single op-observer slot as a
// dispatcher over every consumer the deployment has enabled so far: the SLO
// engine's windowed sketches and the heat collector's op-class sketch.
// EnableSLO and EnableHeat both route through it, so enabling them in
// either order composes instead of clobbering the slot.
func (d *Deployment) installOpObserver() {
	eng, h := d.SLO, d.Heat
	if eng == nil && h == nil {
		return
	}
	d.Tracer.SetOpObserver(func(op string, end, latency time.Duration, failed bool) {
		eng.ObserveOp(op, end, latency, failed)
		h.ObserveOp(op, end, latency, failed)
	})
}

// EnableHeat starts namespace heat tracking: the namenode layer attributes
// every operation's target path (per-depth subtree prefixes) and every
// inode row read, the NDB layer attributes every row access to its table
// and partition, and the tracer's op observer feeds per-op-class touches.
// A background ticker republishes the heat.* gauges every
// cfg.PublishEvery of virtual time, so a flight recorder keeping the
// "heat." prefix yields a heat timeline CSV. Pass a zero heat.Config for
// defaults. The ticker is a background process — call StopBackground
// before expecting Env.Run to quiesce.
func (d *Deployment) EnableHeat(cfg heat.Config) *heat.Collector {
	h := heat.NewCollector(cfg, d.Registry)
	d.Heat = h
	d.installOpObserver()
	if d.NS != nil {
		d.NS.SetHeat(h)
	}
	for _, c := range d.MetaClusters() {
		c.SetHeat(h)
	}
	if d.Router != nil {
		d.Router.SetHeat(h)
	}
	every := h.Config().PublishEvery
	d.Env.Spawn("heat-publisher", func(p *sim.Proc) {
		for !d.heatStop {
			p.Sleep(every)
			if d.heatStop {
				return
			}
			h.Publish(p.Now())
		}
	})
	return h
}

// EnableExemplars starts tail-based exemplar capture: every finished
// detailed span tree is judged against the SLO spec's latency objectives
// (call EnableSLO first to gate on objectives and burn alerts; without it
// only per-window slowest ops pin), and qualifying trees are pinned in a
// bounded deterministic store. Requires detailed tracing (EnableTracing)
// to see any spans at all. Pass a zero config for defaults.
func (d *Deployment) EnableExemplars(cfg slo.ExemplarConfig) *slo.Exemplars {
	x := slo.NewExemplars(d.SLO, cfg)
	d.Exemplars = x
	d.Tracer.SetSpanObserver(x.Observe)
	return x
}

// StopBackground halts housekeeping processes so Env.Run can quiesce.
func (d *Deployment) StopBackground() {
	d.flightStop = true
	d.sloStop = true
	d.heatStop = true
	for _, c := range d.MetaClusters() {
		c.StopBackground()
	}
	if d.NS != nil {
		d.NS.StopBackground()
	}
	if d.Blocks != nil {
		d.Blocks.Stop()
	}
	if d.Ceph != nil {
		d.Ceph.Stop()
	}
}

// Close releases the deployment's simulation resources.
func (d *Deployment) Close() { d.Env.Close() }

// ServerCPUs returns the metadata servers' CPU resources (NN or MDS).
func (d *Deployment) ServerCPUs() []*sim.Resource {
	var out []*sim.Resource
	if d.NS != nil {
		for _, nn := range d.NS.NameNodes() {
			out = append(out, nn.CPU())
		}
	}
	if d.Ceph != nil {
		for _, m := range d.Ceph.MDSs() {
			out = append(out, m.CPU())
		}
	}
	return out
}

// MetaClusters returns every NDB metadata cluster in shard order — one for
// unsharded deployments, Opts.Shards of them otherwise (nil for CephFS).
func (d *Deployment) MetaClusters() []*ndb.Cluster {
	if d.Router != nil {
		return d.Router.Clusters()
	}
	if d.DB != nil {
		return []*ndb.Cluster{d.DB}
	}
	return nil
}

// StorageCPUs returns the storage layer's CPU resources: every NDB thread
// pool, across all shards. CephFS OSD CPU stays flat and low in the paper
// (§V-D1); disk and network are the interesting OSD signals, reported via
// StorageNodes.
func (d *Deployment) StorageCPUs() []*sim.Resource {
	var out []*sim.Resource
	for _, c := range d.MetaClusters() {
		for _, dn := range c.DataNodes() {
			threads := dn.Threads()
			out = append(out, threads[:]...)
		}
	}
	return out
}

// StorageNodes returns the storage layer's network nodes (NDB datanodes or
// OSDs) for NIC/disk accounting.
func (d *Deployment) StorageNodes() []*simnet.Node {
	var out []*simnet.Node
	for _, c := range d.MetaClusters() {
		for _, dn := range c.DataNodes() {
			out = append(out, dn.Node)
		}
	}
	if d.Ceph != nil {
		for _, o := range d.Ceph.OSDs() {
			out = append(out, o.Node)
		}
	}
	return out
}

// ServerNodes returns the metadata servers' network nodes.
func (d *Deployment) ServerNodes() []*simnet.Node {
	var out []*simnet.Node
	if d.NS != nil {
		for _, nn := range d.NS.NameNodes() {
			out = append(out, nn.Node)
		}
	}
	if d.Ceph != nil {
		for _, m := range d.Ceph.MDSs() {
			out = append(out, m.Node)
		}
	}
	return out
}

// ServerRequests returns the number of requests actually handled by each
// metadata server (Figure 6: kernel-cache hits never reach a CephFS MDS).
func (d *Deployment) ServerRequests() []int64 {
	var out []int64
	if d.NS != nil {
		for _, nn := range d.NS.NameNodes() {
			out = append(out, nn.Ops)
		}
	}
	if d.Ceph != nil {
		for _, m := range d.Ceph.MDSs() {
			out = append(out, m.Requests)
		}
	}
	return out
}

// hopsAdapter adapts a HopsFS/HopsFS-CL client to the workload interface.
// Files are created empty, as in all §V metadata benchmarks.
type hopsAdapter struct{ cl *namenode.Client }

var _ workload.FS = hopsAdapter{}

func (a hopsAdapter) Mkdir(p *sim.Proc, path string) error  { return a.cl.Mkdir(p, path) }
func (a hopsAdapter) Create(p *sim.Proc, path string) error { return a.cl.Create(p, path, 0) }
func (a hopsAdapter) Stat(p *sim.Proc, path string) error {
	_, err := a.cl.Stat(p, path)
	return err
}
func (a hopsAdapter) Read(p *sim.Proc, path string) error {
	_, err := a.cl.ReadFile(p, path)
	return err
}
func (a hopsAdapter) List(p *sim.Proc, path string) error {
	_, err := a.cl.List(p, path)
	return err
}
func (a hopsAdapter) Delete(p *sim.Proc, path string) error { return a.cl.Delete(p, path, false) }
func (a hopsAdapter) Rename(p *sim.Proc, src, dst string) error {
	return a.cl.Rename(p, src, dst)
}
func (a hopsAdapter) SetPermission(p *sim.Proc, path string) error {
	return a.cl.SetPermission(p, path, 0o644)
}

// cephAdapter adapts a CephFS kernel client to the workload interface.
type cephAdapter struct{ cl *cephfs.Client }

var _ workload.FS = cephAdapter{}

func (a cephAdapter) Mkdir(p *sim.Proc, path string) error  { return a.cl.Mkdir(p, path) }
func (a cephAdapter) Create(p *sim.Proc, path string) error { return a.cl.Create(p, path, 0) }
func (a cephAdapter) Stat(p *sim.Proc, path string) error   { return a.cl.Stat(p, path) }
func (a cephAdapter) Read(p *sim.Proc, path string) error   { return a.cl.Read(p, path) }
func (a cephAdapter) List(p *sim.Proc, path string) error   { return a.cl.List(p, path) }
func (a cephAdapter) Delete(p *sim.Proc, path string) error { return a.cl.Delete(p, path, false) }
func (a cephAdapter) Rename(p *sim.Proc, src, dst string) error {
	return a.cl.Rename(p, src, dst)
}
func (a cephAdapter) SetPermission(p *sim.Proc, path string) error {
	return a.cl.SetPermission(p, path, 0o644)
}
