package trace

import (
	"testing"
	"time"
)

// TestSpanObserverSeesDetailedRoots checks the span observer fires once
// per finished detailed root, with the complete tree, before the sink
// retains it.
func TestSpanObserverSeesDetailedRoots(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg)
	sink := tr.EnableSink(8)

	var seen []*Span
	tr.SetSpanObserver(func(root *Span) { seen = append(seen, root) })

	sp := tr.StartOp("create", 0)
	child := sp.Child("txn", time.Millisecond)
	child.Finish(2 * time.Millisecond)
	sp.Finish(3 * time.Millisecond)

	if len(seen) != 1 {
		t.Fatalf("observer fired %d times, want 1", len(seen))
	}
	if seen[0].Name != "create" || len(seen[0].Children) != 1 {
		t.Fatalf("observer saw %q with %d children, want create with 1", seen[0].Name, len(seen[0].Children))
	}
	if got := sink.Slowest(1); len(got) != 1 || got[0] != seen[0] {
		t.Fatal("sink and observer disagree on the retained root")
	}

	// Child finishes must not re-fire the observer.
	sp2 := tr.StartOp("stat", 4*time.Millisecond)
	c2 := sp2.Child("lookup", 4*time.Millisecond)
	c2.Finish(5 * time.Millisecond)
	if len(seen) != 1 {
		t.Fatalf("child Finish fired the observer (%d calls)", len(seen))
	}
	sp2.Finish(6 * time.Millisecond)
	if len(seen) != 2 {
		t.Fatalf("observer fired %d times after two roots, want 2", len(seen))
	}

	// Removal stops delivery.
	tr.SetSpanObserver(nil)
	sp3 := tr.StartOp("read", 7*time.Millisecond)
	sp3.Finish(8 * time.Millisecond)
	if len(seen) != 2 {
		t.Fatal("removed observer still fired")
	}
}

// TestSpanObserverSilentInAggregateMode checks that without a sink
// (aggregate mode, no detailed spans) the span observer never fires and
// does not force span creation on its own.
func TestSpanObserverSilentInAggregateMode(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg)
	fired := 0
	tr.SetSpanObserver(func(root *Span) { fired++ })

	sp := tr.StartOp("stat", 0)
	sp.Finish(time.Millisecond)
	if fired != 0 {
		t.Fatalf("span observer fired %d times in aggregate mode, want 0", fired)
	}
}
