package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Frame is one fixed-interval snapshot retained by a FlightRecorder: the
// virtual capture instant plus the filtered, name-sorted samples.
type Frame struct {
	At      time.Duration
	Samples []Sample
}

// Probe is a named callback sampled alongside the registry on every frame —
// the hook for values the registry cannot hold, such as histogram
// percentiles maintained by a harness.
type Probe struct {
	Name string
	Fn   func() float64
}

// FlightRecorder keeps a bounded ring of fixed-interval registry snapshots,
// so a run can answer "what did this signal look like over time" instead of
// only end-of-run totals. The caller drives Record from a virtual-time
// ticker (see core.Deployment.EnableFlightRecorder); the recorder itself
// never touches the clock, which keeps it deterministic and reusable in
// tests.
type FlightRecorder struct {
	mu       sync.Mutex
	reg      *Registry
	interval time.Duration
	cap      int
	prefixes []string
	probes   []Probe
	frames   []Frame
	next     int
	dropped  int64
}

// NewFlightRecorder returns a recorder over reg capturing at the given
// interval, retaining at most capacity frames (default 1024 for
// capacity <= 0; FIFO eviction beyond that). The interval is advisory
// metadata for the CSV header — the caller's ticker enforces it.
func NewFlightRecorder(reg *Registry, interval time.Duration, capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = 1024
	}
	return &FlightRecorder{reg: reg, interval: interval, cap: capacity}
}

// Keep restricts captured registry samples to names with any of the given
// prefixes (e.g. "txn.", "net.link."). No filter keeps everything. Probes
// are always kept.
func (f *FlightRecorder) Keep(prefixes ...string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.prefixes = append(f.prefixes, prefixes...)
	f.mu.Unlock()
}

// AddProbe registers a named callback sampled on every frame.
func (f *FlightRecorder) AddProbe(name string, fn func() float64) {
	if f == nil || fn == nil {
		return
	}
	f.mu.Lock()
	f.probes = append(f.probes, Probe{Name: name, Fn: fn})
	f.mu.Unlock()
}

// Interval returns the configured capture interval.
func (f *FlightRecorder) Interval() time.Duration {
	if f == nil {
		return 0
	}
	return f.interval
}

// Record captures one frame at the given virtual instant, evicting the
// oldest frame when the ring is full. The registry snapshot and the probe
// callbacks run outside the recorder lock: probes may touch the registry
// (or the recorder itself), and holding f.mu across an arbitrary callback
// would deadlock on reentrancy and serialize registry writers against the
// capture.
func (f *FlightRecorder) Record(now time.Duration) {
	if f == nil {
		return
	}
	f.mu.Lock()
	probes := append([]Probe(nil), f.probes...)
	prefixes := append([]string(nil), f.prefixes...)
	f.mu.Unlock()

	all := f.reg.Snapshot()
	samples := make([]Sample, 0, len(all)+len(probes))
	for _, s := range all {
		if keepsName(prefixes, s.Name) {
			samples = append(samples, s)
		}
	}
	for _, p := range probes {
		samples = append(samples, Sample{Name: p.Name, Kind: KindGauge, Value: p.Fn()})
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].Name < samples[j].Name })
	fr := Frame{At: now, Samples: samples}

	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.frames) < f.cap {
		f.frames = append(f.frames, fr)
		return
	}
	f.dropped++
	f.frames[f.next] = fr
	f.next = (f.next + 1) % f.cap
}

func keepsName(prefixes []string, name string) bool {
	if len(prefixes) == 0 {
		return true
	}
	for _, p := range prefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// Frames returns the retained frames, oldest first.
func (f *FlightRecorder) Frames() []Frame {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Frame, 0, len(f.frames))
	out = append(out, f.frames[f.next:]...)
	out = append(out, f.frames[:f.next]...)
	return out
}

// Dropped returns how many frames were evicted to make room.
func (f *FlightRecorder) Dropped() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// WriteCSV renders the retained frames as a deterministic CSV time series:
// one row per frame, one column per signal (the sorted union of all sample
// names across frames). Counter samples are emitted as per-frame deltas —
// the rate view a timeline wants — while gauges, maxima and probes keep
// their point values. Fields containing commas or quotes are quoted.
func (f *FlightRecorder) WriteCSV(w io.Writer) error {
	frames := f.Frames()
	cols := make(map[string]Kind)
	for _, fr := range frames {
		for _, s := range fr.Samples {
			cols[s.Name] = s.Kind
		}
	}
	names := make([]string, 0, len(cols))
	for name := range cols {
		names = append(names, name)
	}
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	bw.WriteString("t_ms")
	for _, name := range names {
		bw.WriteByte(',')
		bw.WriteString(csvQuote(name))
	}
	bw.WriteByte('\n')
	prev := make(map[string]float64)
	for _, fr := range frames {
		vals := make(map[string]float64, len(fr.Samples))
		for _, s := range fr.Samples {
			vals[s.Name] = s.Value
		}
		writeCSVFloat(bw, float64(fr.At)/1e6)
		for _, name := range names {
			bw.WriteByte(',')
			v := vals[name]
			if cols[name] == KindCounter {
				d := v - prev[name]
				prev[name] = v
				v = d
			}
			writeCSVFloat(bw, v)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// writeCSVFloat renders a value with up to three decimals, trimming
// trailing zeros so counters print as integers.
func writeCSVFloat(bw *bufio.Writer, v float64) {
	s := strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", v), "0"), ".")
	if s == "" || s == "-" {
		s = "0"
	}
	bw.WriteString(s)
}

func csvQuote(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
}
