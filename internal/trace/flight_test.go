package trace

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlightRecorderFramesAndCSV(t *testing.T) {
	reg := NewRegistry()
	ops := reg.Counter("op.stat.count")
	lat := reg.Gauge("op.stat.p99_ms")
	reg.Counter("noise.other").Add(99)

	fr := NewFlightRecorder(reg, 10*time.Millisecond, 8)
	fr.Keep("op.")
	probeVal := 1.5
	fr.AddProbe("probe.depth", func() float64 { return probeVal })

	ops.Add(3)
	lat.Set(0.25)
	fr.Record(10 * time.Millisecond)
	ops.Add(5)
	probeVal = 2.5
	fr.Record(20 * time.Millisecond)

	frames := fr.Frames()
	if len(frames) != 2 {
		t.Fatalf("frames = %d, want 2", len(frames))
	}
	if frames[0].At != 10*time.Millisecond || frames[1].At != 20*time.Millisecond {
		t.Fatalf("frame instants: %v, %v", frames[0].At, frames[1].At)
	}
	for _, s := range frames[0].Samples {
		if strings.HasPrefix(s.Name, "noise.") {
			t.Fatalf("prefix filter leaked %q", s.Name)
		}
	}

	var b strings.Builder
	if err := fr.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	csv := b.String()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want header + 2 rows:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "t_ms,") || !strings.Contains(lines[0], "op.stat.count") || !strings.Contains(lines[0], "probe.depth") {
		t.Fatalf("csv header = %q", lines[0])
	}
	// Counters render as per-frame deltas: 3 in frame 1, then +5.
	if !strings.HasPrefix(lines[1], "10,") || !strings.Contains(lines[1], ",3,") {
		t.Fatalf("frame 1 row = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "20,") || !strings.Contains(lines[2], ",5,") {
		t.Fatalf("frame 2 row = %q", lines[2])
	}
	// Probe (gauge) keeps its point value.
	if !strings.Contains(lines[2], "2.5") {
		t.Fatalf("probe value missing from %q", lines[2])
	}

	// Byte determinism.
	var b2 strings.Builder
	if err := fr.WriteCSV(&b2); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Fatal("CSV output not deterministic")
	}
}

func TestFlightRecorderRingEviction(t *testing.T) {
	reg := NewRegistry()
	fr := NewFlightRecorder(reg, time.Millisecond, 4)
	for i := 1; i <= 10; i++ {
		fr.Record(time.Duration(i) * time.Millisecond)
	}
	frames := fr.Frames()
	if len(frames) != 4 {
		t.Fatalf("frames = %d, want 4", len(frames))
	}
	if fr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", fr.Dropped())
	}
	if frames[0].At != 7*time.Millisecond || frames[3].At != 10*time.Millisecond {
		t.Fatalf("eviction kept wrong frames: %v..%v", frames[0].At, frames[3].At)
	}
}

func TestFlightRecorderNilSafety(t *testing.T) {
	var fr *FlightRecorder
	fr.Keep("x.")
	fr.AddProbe("p", func() float64 { return 0 })
	fr.Record(time.Second)
	if fr.Frames() != nil || fr.Dropped() != 0 || fr.Interval() != 0 {
		t.Fatal("nil recorder not inert")
	}
}

func TestSinkDropAccounting(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg)
	sink := tr.EnableSink(2)
	for i := 0; i < 5; i++ {
		sp := tr.StartOp("stat", time.Duration(i)*time.Millisecond)
		sp.Finish(time.Duration(i+1) * time.Millisecond)
	}
	if sink.Total() != 5 {
		t.Fatalf("total = %d, want 5", sink.Total())
	}
	if sink.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", sink.Dropped())
	}
	if got, ok := Lookup(reg.Snapshot(), "trace.sink.dropped"); !ok || got != 3 {
		t.Fatalf("trace.sink.dropped = %v (present=%v), want 3", got, ok)
	}
	if len(sink.Spans()) != 2 {
		t.Fatalf("retained = %d, want 2", len(sink.Spans()))
	}
	sink.Reset()
	if sink.Dropped() != 0 {
		t.Fatal("Reset did not clear dropped")
	}
	var nilSink *Sink
	if nilSink.Dropped() != 0 {
		t.Fatal("nil sink Dropped != 0")
	}
}

// TestFlightRecorderReentrantProbe pins the lock discipline of Record:
// probe callbacks run outside the recorder mutex, so a probe may call back
// into the recorder (or trigger registry reads) without deadlocking. This
// hung forever when Record held f.mu across the callbacks.
func TestFlightRecorderReentrantProbe(t *testing.T) {
	reg := NewRegistry()
	fr := NewFlightRecorder(reg, 10*time.Millisecond, 4)
	fr.AddProbe("meta.dropped", func() float64 { return float64(fr.Dropped()) })
	fr.AddProbe("meta.frames", func() float64 { return float64(len(fr.Frames())) })

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 8; i++ {
			fr.Record(time.Duration(i) * 10 * time.Millisecond)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Record deadlocked on a reentrant probe")
	}
	if fr.Dropped() != 4 {
		t.Fatalf("dropped = %d, want 4", fr.Dropped())
	}
}

// TestFlightRecorderConcurrentRecord exercises Record against concurrent
// registry writers and probe registration; run with -race this is the
// regression test for the probe-snapshot data race.
func TestFlightRecorderConcurrentRecord(t *testing.T) {
	reg := NewRegistry()
	ctr := reg.Counter("op.mixed.count")
	fr := NewFlightRecorder(reg, time.Millisecond, 64)
	fr.Keep("op.")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				ctr.Add(1)
				reg.Gauge("op.mixed.g").Set(1)
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 32; i++ {
			fr.AddProbe(fmt.Sprintf("probe.%d", i), func() float64 { return float64(fr.Dropped()) })
		}
	}()
	for i := 0; i < 200; i++ {
		fr.Record(time.Duration(i) * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if len(fr.Frames()) == 0 {
		t.Fatal("no frames recorded")
	}
}
