package trace

import (
	"strings"
	"testing"
	"time"
)

// checkCSVWellFormed parses a flight CSV and asserts rectangular shape
// and finite cells: every row has the header's column count and no cell
// renders as NaN or a signed infinity.
func checkCSVWellFormed(t *testing.T, csv string) {
	t.Helper()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "t_ms") {
		t.Fatalf("csv header missing t_ms:\n%s", csv)
	}
	width := len(strings.Split(lines[0], ","))
	for i, line := range lines {
		if got := len(strings.Split(line, ",")); got != width {
			t.Fatalf("row %d has %d cells, header has %d:\n%s", i, got, width, csv)
		}
		for _, bad := range []string{"NaN", "Inf", "inf", "nan"} {
			if strings.Contains(line, bad) {
				t.Fatalf("row %d contains %s:\n%s", i, bad, csv)
			}
		}
	}
}

// TestFlightCSVEmptyWindow checks that a recorder that never captured a
// frame still writes a well-formed (header-only) CSV.
func TestFlightCSVEmptyWindow(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("op.stat.count").Add(5)
	fr := NewFlightRecorder(reg, 10*time.Millisecond, 8)

	var b strings.Builder
	if err := fr.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	csv := b.String()
	if csv != "t_ms\n" {
		t.Fatalf("empty-window csv = %q, want header-only \"t_ms\\n\"", csv)
	}
	checkCSVWellFormed(t, csv)
}

// TestFlightCSVSingleSnapshot checks the one-frame case: counters delta
// against an implicit zero baseline, gauges keep point values, and every
// cell is finite.
func TestFlightCSVSingleSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("op.stat.count").Add(7)
	reg.Gauge("op.stat.p99_ms").Set(2.5)
	reg.Gauge("op.stat.idle").Set(0)
	fr := NewFlightRecorder(reg, 10*time.Millisecond, 8)
	fr.Record(10 * time.Millisecond)

	var b strings.Builder
	if err := fr.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	csv := b.String()
	checkCSVWellFormed(t, csv)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("single snapshot produced %d lines, want header + 1 row:\n%s", len(lines), csv)
	}
	// First delta of a counter is its absolute value.
	if !strings.HasPrefix(lines[1], "10,") || !strings.Contains(lines[1], "7") || !strings.Contains(lines[1], "2.5") {
		t.Fatalf("row = %q, want t=10 with counter 7 and gauge 2.5", lines[1])
	}
}

// TestFlightCSVZeroMatchFilter checks a Keep prefix matching no series:
// frames are captured (probes still run), but only probe columns appear,
// and with no probes the rows are timestamps only.
func TestFlightCSVZeroMatchFilter(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("op.stat.count").Add(3)
	fr := NewFlightRecorder(reg, 10*time.Millisecond, 8)
	fr.Keep("heat.nonexistent.")
	fr.Record(10 * time.Millisecond)
	fr.Record(20 * time.Millisecond)

	var b strings.Builder
	if err := fr.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	csv := b.String()
	checkCSVWellFormed(t, csv)
	if csv != "t_ms\n10\n20\n" {
		t.Fatalf("zero-match csv = %q, want timestamp-only rows", csv)
	}
}
