package trace

import (
	"testing"
	"time"
)

func TestRegistryDisable(t *testing.T) {
	reg := NewRegistry()
	before := reg.Counter("pre.count")
	before.Add(1)
	reg.Disable()
	if !reg.Disabled() {
		t.Fatal("Disabled() false after Disable")
	}
	if c := reg.Counter("post.count"); c != nil {
		t.Fatal("disabled registry returned a live counter handle")
	}
	if g := reg.Gauge("post.g"); g != nil {
		t.Fatal("disabled registry returned a live gauge handle")
	}
	if tm := reg.Timing("post.t"); tm != nil {
		t.Fatal("disabled registry returned a live timing handle")
	}
	// Handles created before Disable keep working (nil-safe no-op
	// semantics apply only to new lookups).
	before.Add(1)
	var nilReg *Registry
	if nilReg.Disabled() {
		t.Fatal("nil registry reports disabled")
	}
	if nilReg.Counter("x") != nil {
		t.Fatal("nil registry returned a handle")
	}
}

// The disabled-registry fast path is what bench runs with metrics off pay
// per instrumentation site: one nil check on the registry plus one atomic
// load, and the nil handle swallows the op.

func BenchmarkRegistryCounterEnabled(b *testing.B) {
	reg := NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reg.Counter("bench.count").Add(1)
	}
}

func BenchmarkRegistryCounterDisabled(b *testing.B) {
	reg := NewRegistry()
	reg.Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reg.Counter("bench.count").Add(1)
	}
}

func BenchmarkRegistryCounterLabeledDisabled(b *testing.B) {
	reg := NewRegistry()
	reg.Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reg.Counter("bench.count", "nn", "1").Add(1)
	}
}

func BenchmarkRegistryTimingDisabled(b *testing.B) {
	reg := NewRegistry()
	reg.Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reg.Timing("bench.lat").Observe(time.Millisecond)
	}
}

// TestStartOpFastPathOff pins the span-creation extension of the disable
// fast path: a tracer whose registry is disabled and that has neither sink
// nor observer returns nil spans (all downstream calls collapse to nil
// checks), while attaching any consumer — observer or sink — restores real
// spans.
func TestStartOpFastPathOff(t *testing.T) {
	reg := NewRegistry()
	reg.Disable()
	tr := NewTracer(reg)
	if sp := tr.StartOp("stat", 0); sp != nil {
		t.Fatal("StartOp returned a live span with every output disabled")
	}
	var buf Span
	if sp := tr.StartOpInto(&buf, "stat", 0); sp != nil {
		t.Fatal("StartOpInto returned a live span with every output disabled")
	}
	// Nil spans must swallow the full instrumentation surface.
	var sp *Span
	sp.SetAttr("k", "v")
	sp.RecordHop(HopCrossZone, 128, time.Millisecond)
	sp.SetError()
	sp.Child("c", 0).Finish(0)
	sp.Finish(0)

	// An observer is a live consumer: spans come back.
	seen := 0
	tr.SetOpObserver(func(op string, end, lat time.Duration, failed bool) { seen++ })
	sp2 := tr.StartOp("stat", 0)
	if sp2 == nil {
		t.Fatal("StartOp returned nil despite an attached observer")
	}
	sp2.Finish(time.Millisecond)
	if seen != 1 {
		t.Fatalf("observer saw %d ops, want 1", seen)
	}
	tr.SetOpObserver(nil)
	if tr.StartOp("stat", 0) != nil {
		t.Fatal("removing the observer did not restore the fast path")
	}
	// A sink is a live consumer too.
	tr.EnableSink(16)
	if tr.StartOp("stat", 0) == nil {
		t.Fatal("StartOp returned nil despite an enabled sink")
	}
}

// The off-tracer span path is what a metrics-off benchmark run pays per
// client operation: StartOp must cost a few atomic loads and allocate
// nothing.

func BenchmarkStartOpDisabled(b *testing.B) {
	reg := NewRegistry()
	reg.Disable()
	tr := NewTracer(reg)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartOp("bench", 0)
		sp.RecordHop(HopSameZone, 64, time.Microsecond)
		sp.Finish(time.Microsecond)
	}
}

func BenchmarkStartOpIntoAggregate(b *testing.B) {
	reg := NewRegistry()
	tr := NewTracer(reg)
	var buf Span
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartOpInto(&buf, "bench", 0)
		sp.RecordHop(HopSameZone, 64, time.Microsecond)
		sp.Finish(time.Microsecond)
	}
}

func BenchmarkRecordHopNilSpan(b *testing.B) {
	var sp *Span
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp.RecordHop(HopCrossZone, 64, time.Microsecond)
	}
}

func BenchmarkHandleCounterAdd(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("bench.count")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkNilHandleCounterAdd(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}
