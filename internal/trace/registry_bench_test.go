package trace

import (
	"testing"
	"time"
)

func TestRegistryDisable(t *testing.T) {
	reg := NewRegistry()
	before := reg.Counter("pre.count")
	before.Add(1)
	reg.Disable()
	if !reg.Disabled() {
		t.Fatal("Disabled() false after Disable")
	}
	if c := reg.Counter("post.count"); c != nil {
		t.Fatal("disabled registry returned a live counter handle")
	}
	if g := reg.Gauge("post.g"); g != nil {
		t.Fatal("disabled registry returned a live gauge handle")
	}
	if tm := reg.Timing("post.t"); tm != nil {
		t.Fatal("disabled registry returned a live timing handle")
	}
	// Handles created before Disable keep working (nil-safe no-op
	// semantics apply only to new lookups).
	before.Add(1)
	var nilReg *Registry
	if nilReg.Disabled() {
		t.Fatal("nil registry reports disabled")
	}
	if nilReg.Counter("x") != nil {
		t.Fatal("nil registry returned a handle")
	}
}

// The disabled-registry fast path is what bench runs with metrics off pay
// per instrumentation site: one nil check on the registry plus one atomic
// load, and the nil handle swallows the op.

func BenchmarkRegistryCounterEnabled(b *testing.B) {
	reg := NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reg.Counter("bench.count").Add(1)
	}
}

func BenchmarkRegistryCounterDisabled(b *testing.B) {
	reg := NewRegistry()
	reg.Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reg.Counter("bench.count").Add(1)
	}
}

func BenchmarkRegistryCounterLabeledDisabled(b *testing.B) {
	reg := NewRegistry()
	reg.Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reg.Counter("bench.count", "nn", "1").Add(1)
	}
}

func BenchmarkRegistryTimingDisabled(b *testing.B) {
	reg := NewRegistry()
	reg.Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reg.Timing("bench.lat").Observe(time.Millisecond)
	}
}

func BenchmarkHandleCounterAdd(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("bench.count")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkNilHandleCounterAdd(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}
