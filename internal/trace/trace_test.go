package trace

import (
	"strings"
	"testing"
	"time"
)

func TestNameSortsLabels(t *testing.T) {
	got := Name("net.bytes", "class", "cross_az")
	if got != "net.bytes{class=cross_az}" {
		t.Fatalf("Name = %q", got)
	}
	a := Name("m", "b", "2", "a", "1")
	b := Name("m", "a", "1", "b", "2")
	if a != b || a != "m{a=1,b=2}" {
		t.Fatalf("label order not canonical: %q vs %q", a, b)
	}
	if got := Name("plain"); got != "plain" {
		t.Fatalf("unlabeled Name = %q", got)
	}
}

func TestRegistryHandlesAreIdempotent(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x", "k", "v")
	c2 := r.Counter("x", "k", "v")
	if c1 != c2 {
		t.Fatal("same name returned distinct counters")
	}
	c1.Add(3)
	c2.Add(4)
	if c1.Value() != 7 {
		t.Fatalf("counter = %d", c1.Value())
	}
	if r.Timing("t") != r.Timing("t") {
		t.Fatal("same name returned distinct timings")
	}
}

func TestSnapshotDiffLookup(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops").Add(10)
	r.Gauge("depth").Set(3)
	tm := r.Timing("lat")
	tm.Observe(2 * time.Millisecond)
	tm.Observe(4 * time.Millisecond)

	snap := r.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Fatalf("snapshot not sorted: %q >= %q", snap[i-1].Name, snap[i].Name)
		}
	}
	if v, ok := Lookup(snap, "lat.count"); !ok || v != 2 {
		t.Fatalf("lat.count = %v %v", v, ok)
	}
	if v, _ := Lookup(snap, "lat.sum_ns"); v != float64(6*time.Millisecond) {
		t.Fatalf("lat.sum_ns = %v", v)
	}
	if v, _ := Lookup(snap, "lat.max_ns"); v != float64(4*time.Millisecond) {
		t.Fatalf("lat.max_ns = %v", v)
	}

	r.Counter("ops").Add(5)
	tm.Observe(8 * time.Millisecond)
	d := Diff(snap, r.Snapshot())
	if v, _ := Lookup(d, "ops"); v != 5 {
		t.Fatalf("diffed counter = %v", v)
	}
	if v, _ := Lookup(d, "lat.count"); v != 1 {
		t.Fatalf("diffed lat.count = %v", v)
	}
	// Gauges and maxima keep the after value rather than subtracting.
	if v, _ := Lookup(d, "depth"); v != 3 {
		t.Fatalf("diffed gauge = %v", v)
	}
	if v, _ := Lookup(d, "lat.max_ns"); v != float64(8*time.Millisecond) {
		t.Fatalf("diffed max = %v", v)
	}
}

func TestNilSafety(t *testing.T) {
	// Every handle and span method must be callable on nil: instrumentation
	// sites run unconditionally whether or not tracing is wired up.
	var c *Counter
	c.Add(1)
	_ = c.Value()
	var g *Gauge
	g.Set(1)
	var tm *Timing
	tm.Observe(time.Second)
	var r *Registry
	r.Counter("x").Add(1)
	r.Timing("y").Observe(time.Second)
	var tr *Tracer
	sp := tr.StartOp("stat", 0)
	if sp != nil {
		t.Fatal("nil tracer minted a span")
	}
	sp.SetAttr("k", "v")
	sp.RecordHop(HopCrossZone, 10, time.Millisecond)
	sp.SetError()
	sp.Finish(time.Second)
	if sp.Child("c", 0) != nil {
		t.Fatal("nil span minted a child")
	}
	var sink *Sink
	sink.Add(nil)
	if sink.Spans() != nil || sink.Total() != 0 {
		t.Fatal("nil sink not empty")
	}
}

func TestSpanNestingAndAggregation(t *testing.T) {
	tr := NewTracer(NewRegistry())
	tr.EnableSink(8)

	root := tr.StartOp("rename", 10*time.Millisecond)
	if root == nil {
		t.Fatal("no root span with sink enabled")
	}
	txn := root.Child("txn", 11*time.Millisecond)
	prep := txn.Child("prepare", 12*time.Millisecond)
	prep.RecordHop(HopCrossZone, 100, 2*time.Millisecond)
	prep.RecordHop(HopSameZone, 40, time.Millisecond)
	prep.Finish(14 * time.Millisecond)
	txn.Finish(18 * time.Millisecond)
	root.Finish(20 * time.Millisecond)

	if root.Duration() != 10*time.Millisecond {
		t.Fatalf("root duration = %v", root.Duration())
	}
	// Hops recorded on a child roll up to the root.
	if root.HopBytes[HopCrossZone] != 100 || root.HopBytes[HopSameZone] != 40 {
		t.Fatalf("root hop bytes = %v", root.HopBytes)
	}
	if prep.HopBytes[HopCrossZone] != 100 {
		t.Fatalf("child hop bytes = %v", prep.HopBytes)
	}
	if len(root.Children) != 1 || len(root.Children[0].Children) != 1 {
		t.Fatal("nesting lost")
	}
	if root.Children[0].Children[0].Name != "prepare" {
		t.Fatalf("grandchild = %q", root.Children[0].Children[0].Name)
	}

	snap := tr.Registry().Snapshot()
	if v, _ := Lookup(snap, "op.rename.latency.count"); v != 1 {
		t.Fatalf("latency count = %v", v)
	}
	if v, _ := Lookup(snap, "op.rename.latency.sum_ns"); v != float64(10*time.Millisecond) {
		t.Fatalf("latency sum = %v", v)
	}
	if v, _ := Lookup(snap, Name("op.rename.net.bytes", "class", "cross_az")); v != 100 {
		t.Fatalf("cross-az bytes = %v", v)
	}
	if got := tr.Sink().Total(); got != 1 {
		t.Fatalf("sink total = %d", got)
	}
}

func TestAggregateOnlyModeHasNoChildren(t *testing.T) {
	tr := NewTracer(NewRegistry())
	root := tr.StartOp("stat", 0)
	if root == nil {
		t.Fatal("aggregate mode should still mint root spans")
	}
	if c := root.Child("txn", 0); c != nil {
		t.Fatal("child minted without sink")
	}
	root.SetAttr("k", "v")
	if len(root.Attrs) != 0 {
		t.Fatal("attr recorded without sink")
	}
	root.RecordHop(HopCrossZone, 50, time.Millisecond)
	root.Finish(time.Millisecond)
	snap := tr.Registry().Snapshot()
	if v, _ := Lookup(snap, Name("op.stat.net.bytes", "class", "cross_az")); v != 50 {
		t.Fatalf("aggregates lost without sink: %v", v)
	}
	if tr.Sink() != nil {
		t.Fatal("sink exists in aggregate mode")
	}
}

func TestSinkRingEviction(t *testing.T) {
	k := NewSink(3)
	mk := func(id SpanID, d time.Duration) *Span {
		return &Span{ID: id, Name: "op", End: d}
	}
	for i := 1; i <= 5; i++ {
		k.Add(mk(SpanID(i), time.Duration(i)*time.Millisecond))
	}
	if k.Total() != 5 {
		t.Fatalf("total = %d", k.Total())
	}
	spans := k.Spans()
	if len(spans) != 3 {
		t.Fatalf("retained = %d", len(spans))
	}
	// Oldest first, with the two oldest evicted.
	for i, want := range []SpanID{3, 4, 5} {
		if spans[i].ID != want {
			t.Fatalf("spans[%d].ID = %d, want %d", i, spans[i].ID, want)
		}
	}
	k.Reset()
	if len(k.Spans()) != 0 || k.Total() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestSlowestOrderAndTieBreak(t *testing.T) {
	k := NewSink(8)
	k.Add(&Span{ID: 1, End: 5 * time.Millisecond})
	k.Add(&Span{ID: 2, End: 9 * time.Millisecond})
	k.Add(&Span{ID: 3, End: 9 * time.Millisecond})
	k.Add(&Span{ID: 4, End: 1 * time.Millisecond})
	got := k.Slowest(3)
	if len(got) != 3 || got[0].ID != 2 || got[1].ID != 3 || got[2].ID != 1 {
		ids := []SpanID{}
		for _, s := range got {
			ids = append(ids, s.ID)
		}
		t.Fatalf("slowest IDs = %v, want [2 3 1]", ids)
	}
}

// runFixedWorkload drives one synthetic operation sequence through a tracer.
func runFixedWorkload(tr *Tracer) {
	for i := 0; i < 20; i++ {
		base := time.Duration(i) * time.Millisecond
		sp := tr.StartOp("mkdir", base)
		c := sp.Child("txn", base+100*time.Microsecond)
		c.RecordHop(HopCrossZone, 64*(i+1), time.Millisecond)
		c.SetAttr("tc", "ndb-1")
		c.Finish(base + 500*time.Microsecond)
		if i%5 == 0 {
			sp.SetError()
		}
		sp.Finish(base + time.Duration(i%7)*100*time.Microsecond + 600*time.Microsecond)
	}
}

func TestDeterministicOutput(t *testing.T) {
	render := func() (string, string) {
		tr := NewTracer(NewRegistry())
		tr.EnableSink(16)
		runFixedWorkload(tr)
		var flames strings.Builder
		for _, s := range tr.Sink().Slowest(5) {
			flames.WriteString(s.Render())
		}
		return FormatSamples(tr.Registry().Snapshot()), flames.String()
	}
	reg1, fl1 := render()
	reg2, fl2 := render()
	if reg1 != reg2 {
		t.Fatalf("registry output not deterministic:\n%s\nvs\n%s", reg1, reg2)
	}
	if fl1 != fl2 {
		t.Fatalf("flame output not deterministic:\n%s\nvs\n%s", fl1, fl2)
	}
	if !strings.Contains(fl1, "mkdir") || !strings.Contains(fl1, "txn") {
		t.Fatalf("flame output missing spans:\n%s", fl1)
	}
	if !strings.Contains(fl1, "xAZ=") {
		t.Fatalf("flame output missing cross-AZ bytes:\n%s", fl1)
	}
	if v, _ := Lookup(nil, "nope"); v != 0 {
		t.Fatal("lookup on nil samples")
	}
}

func TestRenderMarksErrors(t *testing.T) {
	tr := NewTracer(NewRegistry())
	tr.EnableSink(4)
	sp := tr.StartOp("delete", 0)
	sp.SetError()
	sp.Finish(time.Millisecond)
	out := sp.Render()
	if !strings.Contains(out, "ERR") {
		t.Fatalf("render lacks ERR flag:\n%s", out)
	}
}
