package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies a span within one Tracer. IDs are assigned from a
// deterministic sequence, so a fixed-seed simulation produces identical IDs.
type SpanID uint64

// HopClass classifies a network message by the proximity of its endpoints.
type HopClass uint8

// Hop classes, from cheapest to most expensive.
const (
	HopLocal     HopClass = iota // same simulated node (loopback)
	HopSameHost                  // distinct nodes co-located on one host
	HopSameZone                  // same availability zone, different hosts
	HopCrossZone                 // crosses an availability-zone boundary

	NumHopClasses = 4
)

// String returns the class's label as used in registry metric names.
func (h HopClass) String() string {
	switch h {
	case HopLocal:
		return "local"
	case HopSameHost:
		return "same_host"
	case HopSameZone:
		return "same_zone"
	case HopCrossZone:
		return "cross_az"
	default:
		return "?"
	}
}

// Attr is one key/value annotation on a span.
type Attr struct{ Key, Value string }

// Span is one timed region of an operation: the root span covers a whole
// client operation, child spans cover transaction attempts, 2PC phases and
// lock waits. Network hops are attributed to the root of the enclosing
// span tree regardless of which child was active.
//
// All methods are nil-safe: instrumentation sites call them unconditionally
// and pay only a nil check when tracing is off.
type Span struct {
	ID     SpanID
	Parent SpanID
	Name   string
	// Start and End are virtual-time offsets since simulation start.
	Start time.Duration
	End   time.Duration
	Err   bool
	// Benign marks an error as an expected application outcome (a stat of
	// an absent path, a create of an existing one). Benign errors still
	// count in op.<name>.errors but are not availability failures: the
	// operation observer reports them as successes, the way an HTTP SLO
	// counts 5xx but not 4xx against the error budget.
	Benign bool

	Attrs    []Attr
	Children []*Span

	// HopCount and HopBytes tally network messages by proximity class.
	// On the root span they cover the whole tree; on detailed children
	// they cover just that child's extent. HopTime accumulates the
	// virtual time those messages spent in flight (queueing, transmission
	// and propagation), the raw material of critical-path attribution.
	HopCount [NumHopClasses]int64
	HopBytes [NumHopClasses]int64
	HopTime  [NumHopClasses]time.Duration

	tracer   *Tracer
	root     *Span
	detailed bool
}

// Duration returns the span's elapsed virtual time.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return s.End - s.Start
}

// Child opens a child span. Children exist only in detailed mode (sink
// enabled); otherwise Child returns nil, and the nil span swallows all
// further calls.
func (s *Span) Child(name string, now time.Duration) *Span {
	if s == nil || !s.detailed {
		return nil
	}
	t := s.root.tracer
	c := &Span{ID: SpanID(t.seq.Add(1)), Parent: s.ID, Name: name, Start: now, root: s.root, detailed: true}
	s.Children = append(s.Children, c)
	return c
}

// SetAttr annotates the span. Attributes exist only in detailed mode.
func (s *Span) SetAttr(key, value string) {
	if s == nil || !s.detailed {
		return
	}
	// Replace, don't append: a key set twice on one span (e.g. op.batched
	// when a rename batch-resolves both of its paths) keeps the last value.
	for i := range s.Attrs {
		if s.Attrs[i].Key == key {
			s.Attrs[i].Value = value
			return
		}
	}
	s.Attrs = append(s.Attrs, Attr{key, value})
}

// SetError marks the whole operation failed.
func (s *Span) SetError() {
	if s == nil {
		return
	}
	s.root.Err = true
}

// SetBenign marks the operation's error as an expected application
// outcome rather than a system failure (see Span.Benign).
func (s *Span) SetBenign() {
	if s == nil {
		return
	}
	s.root.Benign = true
}

// RecordHop attributes one network message of the given wire time to the
// span's operation. The root accumulates regardless of mode; the active
// child also accumulates in detailed mode, so flame output and the
// critical-path profiler can localize traffic per phase.
func (s *Span) RecordHop(class HopClass, bytes int, d time.Duration) {
	if s == nil {
		return
	}
	r := s.root
	r.HopCount[class]++
	r.HopBytes[class] += int64(bytes)
	r.HopTime[class] += d
	if s != r && s.detailed {
		s.HopCount[class]++
		s.HopBytes[class] += int64(bytes)
		s.HopTime[class] += d
	}
}

// Root returns the root span of the tree this span belongs to (itself for
// a root span, nil for a nil span).
func (s *Span) Root() *Span {
	if s == nil {
		return nil
	}
	return s.root
}

// OpName returns the operation name of the span's root, or "" on nil: the
// op type an instrumented subsystem is currently serving.
func (s *Span) OpName() string {
	if s == nil {
		return ""
	}
	return s.root.Name
}

// Finish closes the span. Finishing a root span flushes its aggregates
// (latency, error, per-class hop bytes) into the registry under
// op.<name>.* and, in detailed mode, retains the tree in the sink.
func (s *Span) Finish(now time.Duration) {
	if s == nil {
		return
	}
	s.End = now
	if s.root != s {
		return
	}
	t := s.tracer
	if t == nil {
		return
	}
	st := t.opStats(s.Name)
	st.lat.Observe(s.End - s.Start)
	if s.Err {
		st.errs.Add(1)
	}
	if obs := t.obs.Load(); obs != nil {
		(*obs)(s.Name, s.End, s.End-s.Start, s.Err && !s.Benign)
	}
	for c := HopClass(0); c < NumHopClasses; c++ {
		if s.HopBytes[c] != 0 {
			st.hopBytes[c].Add(s.HopBytes[c])
		}
	}
	if s.detailed {
		if so := t.spanObs.Load(); so != nil {
			(*so)(s)
		}
		if sink := t.Sink(); sink != nil {
			sink.Add(s)
		}
	}
}

// opStats caches the registry handles for one operation type so finishing
// a span does at most one map lookup, never a registration.
type opStats struct {
	lat      *Timing
	errs     *Counter
	hopBytes [NumHopClasses]*Counter
}

// Tracer creates spans and routes finished root spans to the registry and
// (when enabled) the sink. A nil Tracer is valid and inert. The sink
// pointer and span-ID sequence are lock-free: StartOp sits on the hot path
// of every client operation.
type Tracer struct {
	reg     *Registry
	sink    atomic.Pointer[Sink]
	obs     atomic.Pointer[OpObserver]
	spanObs atomic.Pointer[SpanObserver]
	seq     atomic.Uint64
	mu      sync.Mutex // guards ops
	ops     map[string]*opStats
}

// OpObserver receives every finished root operation: op name, the virtual
// end instant, end-to-end latency, and whether the operation failed.
// Benign errors (expected application outcomes, see Span.SetBenign)
// report failed=false. The SLO engine uses this to feed its windowed
// sketches without the tracer depending on it.
type OpObserver func(op string, end, latency time.Duration, failed bool)

// SetOpObserver installs (or, with nil, removes) the tracer's operation
// observer. When unset, finishing a span costs one atomic load beyond the
// existing aggregate flush. The observer must be safe for concurrent calls.
func (t *Tracer) SetOpObserver(obs OpObserver) {
	if t == nil {
		return
	}
	if obs == nil {
		t.obs.Store(nil)
		return
	}
	t.obs.Store(&obs)
}

// SpanObserver receives every finished detailed root span, after its
// aggregates flush and before the sink retains it. The span tree is
// complete and must be treated as immutable. Detailed mode exists only
// while a sink is enabled, so the observer never fires in aggregate mode.
// The exemplar store uses this to pin outlier traces without the tracer
// depending on it.
type SpanObserver func(root *Span)

// SetSpanObserver installs (or, with nil, removes) the tracer's span
// observer. The observer must be safe for concurrent calls.
func (t *Tracer) SetSpanObserver(obs SpanObserver) {
	if t == nil {
		return
	}
	if obs == nil {
		t.spanObs.Store(nil)
		return
	}
	t.spanObs.Store(&obs)
}

// NewTracer returns a tracer feeding aggregates into reg (which may be nil
// for a registry-less tracer; spans then only reach the sink).
func NewTracer(reg *Registry) *Tracer {
	return &Tracer{reg: reg, ops: make(map[string]*opStats)}
}

// Registry returns the tracer's registry.
func (t *Tracer) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// EnableSink switches the tracer to detailed mode: subsequently started
// root spans carry children and attributes, and completed trees are
// retained in a fresh bounded ring sink of the given capacity, which is
// returned.
func (t *Tracer) EnableSink(capacity int) *Sink {
	if t == nil {
		return nil
	}
	s := NewSink(capacity)
	s.evictions = t.reg.Counter("trace.sink.dropped")
	t.sink.Store(s)
	return s
}

// Sink returns the current sink, or nil when disabled.
func (t *Tracer) Sink() *Sink {
	if t == nil {
		return nil
	}
	return t.sink.Load()
}

// off reports whether span creation can be skipped entirely: the registry
// is absent or disabled, no sink retains trees, and no observer consumes
// finished operations. A span started in this state would flush into
// nil handles and then be discarded, so StartOp hands back a nil span
// instead and every downstream call (Child, SetAttr, RecordHop, Finish)
// collapses to a nil check — the span-creation extension of the
// Registry.Disable fast path.
func (t *Tracer) off() bool {
	return (t.reg == nil || t.reg.disabled.Load()) &&
		t.sink.Load() == nil && t.obs.Load() == nil
}

// StartOp opens a root span for one client operation. Returns nil on a nil
// tracer, and on a tracer whose every output is disabled (see off).
func (t *Tracer) StartOp(name string, now time.Duration) *Span {
	if t == nil || t.off() {
		return nil
	}
	s := &Span{Name: name, Start: now, tracer: t}
	t.initRoot(s)
	return s
}

// StartOpInto is StartOp without the per-operation allocation: in aggregate
// mode (no sink) it reinitializes buf — callers running one operation at a
// time keep a reusable span buffer. In detailed mode buf is ignored and a
// fresh span is returned, since the sink retains finished trees.
func (t *Tracer) StartOpInto(buf *Span, name string, now time.Duration) *Span {
	if t == nil || t.off() {
		return nil
	}
	if t.sink.Load() != nil {
		return t.StartOp(name, now)
	}
	*buf = Span{Name: name, Start: now, tracer: t}
	buf.root = buf
	return buf
}

func (t *Tracer) initRoot(s *Span) {
	if t.sink.Load() != nil {
		s.detailed = true
		s.ID = SpanID(t.seq.Add(1))
	}
	s.root = s
}

// opStats returns (creating on first use) the cached handles for op name.
func (t *Tracer) opStats(name string) *opStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.ops[name]
	if !ok {
		st = &opStats{
			lat:  t.reg.Timing("op." + name + ".latency"),
			errs: t.reg.Counter("op." + name + ".errors"),
		}
		for c := HopClass(0); c < NumHopClasses; c++ {
			st.hopBytes[c] = t.reg.Counter("op."+name+".net.bytes", "class", c.String())
		}
		t.ops[name] = st
	}
	return st
}

// Sink is a bounded ring buffer of completed root spans: the newest
// Capacity trees are retained, older ones are evicted in FIFO order.
// Evictions are counted, so reports built from the ring can say whether
// they saw the whole run or a truncated tail.
type Sink struct {
	mu      sync.Mutex
	cap     int
	buf     []*Span
	next    int
	total   int64
	dropped int64
	// evictions mirrors dropped into the registry (trace.sink.dropped);
	// nil for sinks constructed outside a tracer.
	evictions *Counter
}

// NewSink returns a sink retaining at most capacity spans (default 4096
// for capacity <= 0).
func NewSink(capacity int) *Sink {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Sink{cap: capacity, buf: make([]*Span, 0, capacity)}
}

// Add retains a completed root span, evicting the oldest if full.
func (k *Sink) Add(s *Span) {
	if k == nil {
		return
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	k.total++
	if len(k.buf) < k.cap {
		k.buf = append(k.buf, s)
		return
	}
	k.dropped++
	k.evictions.Add(1)
	k.buf[k.next] = s
	k.next = (k.next + 1) % k.cap
}

// Spans returns the retained spans, oldest first.
func (k *Sink) Spans() []*Span {
	if k == nil {
		return nil
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]*Span, 0, len(k.buf))
	out = append(out, k.buf[k.next:]...)
	out = append(out, k.buf[:k.next]...)
	return out
}

// Total returns how many spans were ever added (retained + evicted).
func (k *Sink) Total() int64 {
	if k == nil {
		return 0
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.total
}

// Dropped returns how many spans were evicted to make room — the count by
// which any report built from the ring is truncated.
func (k *Sink) Dropped() int64 {
	if k == nil {
		return 0
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.dropped
}

// Capacity returns the ring size.
func (k *Sink) Capacity() int {
	if k == nil {
		return 0
	}
	return k.cap
}

// Reset discards all retained spans and the total count.
func (k *Sink) Reset() {
	if k == nil {
		return
	}
	k.mu.Lock()
	k.buf = k.buf[:0]
	k.next = 0
	k.total = 0
	k.dropped = 0
	k.mu.Unlock()
}

// Slowest returns up to n retained spans ordered by descending duration,
// with span ID as the deterministic tie-break.
func (k *Sink) Slowest(n int) []*Span {
	spans := k.Spans()
	sort.Slice(spans, func(i, j int) bool {
		di, dj := spans[i].Duration(), spans[j].Duration()
		if di != dj {
			return di > dj
		}
		return spans[i].ID < spans[j].ID
	})
	if n < len(spans) {
		spans = spans[:n]
	}
	return spans
}

// barWidth is the character width of the flame bars in Render.
const barWidth = 32

// Render formats the span tree as an indented flame-style breakdown: one
// line per span showing its duration and a bar marking its extent within
// the root's duration, plus attributes and cross-AZ bytes when present.
func (s *Span) Render() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	renderInto(&b, s, s.root, 0)
	return b.String()
}

func renderInto(b *strings.Builder, s, root *Span, depth int) {
	rootDur := root.Duration()
	lo, hi := 0, barWidth
	if rootDur > 0 {
		lo = int(float64(s.Start-root.Start) / float64(rootDur) * barWidth)
		hi = int(float64(s.End-root.Start) / float64(rootDur) * barWidth)
	}
	if lo < 0 {
		lo = 0
	}
	if hi > barWidth {
		hi = barWidth
	}
	if hi <= lo {
		hi = lo + 1
		if hi > barWidth {
			lo, hi = barWidth-1, barWidth
		}
	}
	bar := strings.Repeat("·", lo) + strings.Repeat("█", hi-lo) + strings.Repeat("·", barWidth-hi)

	label := strings.Repeat("  ", depth) + s.Name
	fmt.Fprintf(b, "%-28s %9.3fms  |%s|", label, float64(s.Duration())/1e6, bar)
	if xaz := s.HopBytes[HopCrossZone]; xaz > 0 {
		fmt.Fprintf(b, "  xAZ=%dB", xaz)
	}
	for _, a := range s.Attrs {
		fmt.Fprintf(b, "  %s=%s", a.Key, a.Value)
	}
	if s.Err {
		b.WriteString("  ERR")
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		renderInto(b, c, root, depth+1)
	}
}
