// Package trace provides end-to-end operation tracing and a cluster-wide
// metrics registry for simulated deployments.
//
// It is a leaf package: it depends only on the standard library so that the
// simulation kernel (internal/sim) can carry a typed span slot on every
// process without an import cycle. All timestamps are virtual-time offsets
// (time.Duration since simulation start), supplied by the caller — typically
// sim.Proc.EffNow, which includes deferred fluid-model delay.
//
// Two tiers of cost:
//
//   - The Registry (named counters, gauges and timings) is always on. Hot
//     paths hold pre-registered handles, so recording is an atomic add or an
//     uncontended mutex — cheap enough to leave enabled during benchmarks.
//   - The Sink (full span trees with children and attributes) is opt-in via
//     Tracer.EnableSink. With the sink disabled, child spans and attributes
//     are never allocated; only root-span aggregates reach the registry.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies a snapshot sample for windowed differencing.
type Kind uint8

const (
	// KindCounter samples increase monotonically; Diff subtracts before
	// from after, yielding the delta over the window.
	KindCounter Kind = iota
	// KindGauge samples are point-in-time values; Diff keeps the after
	// value.
	KindGauge
	// KindMax samples are running maxima; Diff keeps the after value.
	KindMax
)

// Sample is one named value in a registry snapshot.
type Sample struct {
	Name  string
	Kind  Kind
	Value float64
}

// Counter is a monotonically increasing integer metric. All methods are
// nil-safe so uninstrumented deployments pay only a nil check.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time float metric.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Timing aggregates durations: observation count, sum, and running max.
type Timing struct {
	mu    sync.Mutex
	count int64
	sum   time.Duration
	max   time.Duration
}

// Observe records one duration.
func (t *Timing) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.count++
	t.sum += d
	if d > t.max {
		t.max = d
	}
	t.mu.Unlock()
}

// Count returns the number of observations.
func (t *Timing) Count() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// Sum returns the total of all observed durations.
func (t *Timing) Sum() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sum
}

// Max returns the largest observed duration.
func (t *Timing) Max() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.max
}

// Mean returns the average observed duration.
func (t *Timing) Mean() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.count == 0 {
		return 0
	}
	return t.sum / time.Duration(t.count)
}

// Name renders a hierarchical metric name with labels baked in:
// Name("net.bytes", "class", "cross_az") == "net.bytes{class=cross_az}".
// Labels are alternating key/value pairs, sorted by key so the same label
// set always yields the same name.
func Name(name string, labels ...string) string {
	if len(labels) == 0 {
		return name
	}
	if len(labels)%2 != 0 {
		panic("trace: labels must be alternating key/value pairs")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteByte('=')
		b.WriteString(p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// Registry is a cluster-wide hierarchical registry of named metrics.
// Metric names use dotted hierarchies ("op.stat.latency", "txn.phase.prepare")
// with optional {key=value} labels appended by Name. Registration is
// idempotent: the same name always returns the same handle, so hot paths
// register once and keep the pointer.
type Registry struct {
	disabled atomic.Bool
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timings  map[string]*Timing
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timings:  make(map[string]*Timing),
	}
}

// Disable switches the registry to no-op mode: every subsequent
// registration returns a nil handle, whose methods are no-ops, so
// instrumented hot paths skip both the name-bake and the map lookup and
// updates through the handle cost a single nil check. Handles obtained
// before Disable keep working; call Disable before wiring a deployment to
// turn metrics off entirely.
func (r *Registry) Disable() {
	if r == nil {
		return
	}
	r.disabled.Store(true)
}

// Disabled reports whether Disable was called.
func (r *Registry) Disabled() bool {
	return r != nil && r.disabled.Load()
}

// Counter returns (registering on first use) the counter with the given
// name and labels. Nil-safe: a nil registry returns a nil handle, whose
// methods are no-ops; a disabled registry does the same.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil || r.disabled.Load() {
		return nil
	}
	full := Name(name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[full]
	if !ok {
		c = &Counter{}
		r.counters[full] = c
	}
	return c
}

// Gauge returns (registering on first use) the gauge with the given name
// and labels.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil || r.disabled.Load() {
		return nil
	}
	full := Name(name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[full]
	if !ok {
		g = &Gauge{}
		r.gauges[full] = g
	}
	return g
}

// Timing returns (registering on first use) the timing with the given name
// and labels.
func (r *Registry) Timing(name string, labels ...string) *Timing {
	if r == nil || r.disabled.Load() {
		return nil
	}
	full := Name(name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timings[full]
	if !ok {
		t = &Timing{}
		r.timings[full] = t
	}
	return t
}

// Snapshot returns every metric as a flat, name-sorted sample list. Timings
// expand to three samples: <name>.count, <name>.sum_ns and <name>.max_ns.
// The output is deterministic for identical registry contents.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Sample, 0, len(r.counters)+len(r.gauges)+3*len(r.timings))
	for name, c := range r.counters {
		out = append(out, Sample{Name: name, Kind: KindCounter, Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, Sample{Name: name, Kind: KindGauge, Value: g.Value()})
	}
	for name, t := range r.timings {
		t.mu.Lock()
		count, sum, max := t.count, t.sum, t.max
		t.mu.Unlock()
		out = append(out,
			Sample{Name: name + ".count", Kind: KindCounter, Value: float64(count)},
			Sample{Name: name + ".sum_ns", Kind: KindCounter, Value: float64(sum)},
			Sample{Name: name + ".max_ns", Kind: KindMax, Value: float64(max)},
		)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Diff computes the change from the before snapshot to the after snapshot:
// counters subtract (delta over the window), gauges and maxima keep their
// after value. Samples absent from before are treated as zero.
func Diff(before, after []Sample) []Sample {
	base := make(map[string]float64, len(before))
	for _, s := range before {
		base[s.Name] = s.Value
	}
	out := make([]Sample, 0, len(after))
	for _, s := range after {
		d := s
		if s.Kind == KindCounter {
			d.Value = s.Value - base[s.Name]
		}
		out = append(out, d)
	}
	return out
}

// Lookup finds a sample by exact name in a snapshot (or diff) and reports
// whether it was present.
func Lookup(samples []Sample, name string) (float64, bool) {
	for _, s := range samples {
		if s.Name == name {
			return s.Value, true
		}
	}
	return 0, false
}

// FormatSamples renders samples one per line as "name value", with counter
// values printed as integers — used for debugging dumps and golden tests.
func FormatSamples(samples []Sample) string {
	var b strings.Builder
	for _, s := range samples {
		if s.Kind == KindGauge {
			fmt.Fprintf(&b, "%s %.3f\n", s.Name, s.Value)
		} else {
			fmt.Fprintf(&b, "%s %.0f\n", s.Name, s.Value)
		}
	}
	return b.String()
}
