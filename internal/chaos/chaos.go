// Package chaos is a deterministic fault-campaign engine for the simulated
// HopsFS-CL deployment. It generalizes the paper's §V-F failure drills
// (AZ loss, split brain, NN loss) into systematic, seeded fault
// exploration in the style of Jepsen and deterministic-simulation testing:
//
//   - a fault scheduler executes declarative schedules — {at, kind,
//     target} steps for node crash/rejoin, zone failure/recovery, zone
//     partition/heal, NN kill/restart, and slow-link / lossy-link
//     degradation — and a seeded generator derives safe-by-construction
//     random campaigns so `go test` can sweep many seeds reproducibly;
//   - a cross-layer invariant auditor quiesces the workload at
//     checkpoints and verifies NDB group liveness, durable-epoch
//     monotonicity, the §IV-C one-replica-per-AZ block guarantee,
//     namespace/block-layer agreement, lock hygiene, and leader
//     uniqueness;
//   - an operation-history checker records every client operation on
//     virtual time, verifies the observed results against a sequential
//     namespace model (acked writes are never lost, reads never return
//     dropped data), and reports MTTR, unavailability windows, and
//     failed-operation counts.
//
// Everything runs on virtual time inside internal/sim: the same seed
// always produces byte-identical reports.
package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"hopsfscl/internal/simnet"
)

// FaultKind names one fault-injection (or recovery) action.
type FaultKind string

// The fault vocabulary. Every degrading kind has a restoring counterpart;
// generated campaigns always schedule the pair.
const (
	// FaultCrashDN crashes one NDB datanode (target: datanode index).
	FaultCrashDN FaultKind = "crash-dn"
	// FaultRejoinDN rejoins a crashed NDB datanode: it resyncs its node
	// group's partitions from the surviving primaries.
	FaultRejoinDN FaultKind = "rejoin-dn"
	// FaultFailZone fails a whole availability zone: its NDB datanodes,
	// metadata servers, and block datanodes all go down.
	FaultFailZone FaultKind = "fail-zone"
	// FaultRecoverZone brings a failed zone back.
	FaultRecoverZone FaultKind = "recover-zone"
	// FaultPartition severs the network between two zones (and opens a
	// fresh arbitration epoch, as a real membership change would).
	FaultPartition FaultKind = "partition"
	// FaultHeal restores the network between two zones.
	FaultHeal FaultKind = "heal"
	// FaultKillNN kills one metadata server (target: 1-based NN id).
	FaultKillNN FaultKind = "kill-nn"
	// FaultRestartNN restarts a killed metadata server.
	FaultRestartNN FaultKind = "restart-nn"
	// FaultSlowLink multiplies the latency between two zones.
	FaultSlowLink FaultKind = "slow-link"
	// FaultLossyLink drops messages between two zones with a probability.
	FaultLossyLink FaultKind = "lossy-link"
	// FaultRestoreLink removes any degradation between two zones.
	FaultRestoreLink FaultKind = "restore-link"
)

// Degrades reports whether the kind injects a fault rather than repairs
// one; reporting harnesses use it to count a schedule's degrading steps.
func (k FaultKind) Degrades() bool { return k.degrades() }

// degrades reports whether the kind injects a fault (true) or recovers
// from one (false). Only degrading steps start an MTTR clock.
func (k FaultKind) degrades() bool {
	switch k {
	case FaultRejoinDN, FaultRecoverZone, FaultHeal, FaultRestartNN, FaultRestoreLink:
		return false
	}
	return true
}

// Step is one scheduled action of a campaign.
type Step struct {
	At   time.Duration
	Kind FaultKind

	// Zone is the target zone (fail-zone, recover-zone) or the first zone
	// of a pair (partition, heal, slow-link, lossy-link, restore-link).
	Zone simnet.ZoneID
	// ZoneB is the second zone of a pair.
	ZoneB simnet.ZoneID
	// Node targets a node: the NDB datanode index for crash-dn/rejoin-dn,
	// the 1-based metadata-server id for kill-nn/restart-nn.
	Node int
	// Shard selects which NDB cluster crash-dn/rejoin-dn target in a
	// sharded deployment (0 for unsharded, and the default).
	Shard int
	// Factor is the slow-link latency multiplier.
	Factor float64
	// Loss is the lossy-link drop probability.
	Loss float64
}

// String renders the step in the schedule-file syntax (see ParseSchedule).
func (s Step) String() string {
	switch s.Kind {
	case FaultCrashDN, FaultRejoinDN:
		if s.Shard != 0 {
			return fmt.Sprintf("at %v %s %d %d", s.At, s.Kind, s.Node, s.Shard)
		}
		return fmt.Sprintf("at %v %s %d", s.At, s.Kind, s.Node)
	case FaultKillNN, FaultRestartNN:
		return fmt.Sprintf("at %v %s %d", s.At, s.Kind, s.Node)
	case FaultFailZone, FaultRecoverZone:
		return fmt.Sprintf("at %v %s %d", s.At, s.Kind, s.Zone)
	case FaultSlowLink:
		return fmt.Sprintf("at %v %s %d %d %g", s.At, s.Kind, s.Zone, s.ZoneB, s.Factor)
	case FaultLossyLink:
		return fmt.Sprintf("at %v %s %d %d %g", s.At, s.Kind, s.Zone, s.ZoneB, s.Loss)
	default: // partition, heal, restore-link
		return fmt.Sprintf("at %v %s %d %d", s.At, s.Kind, s.Zone, s.ZoneB)
	}
}

// Schedule is a campaign: steps executed in time order.
type Schedule []Step

// Sort orders the schedule by time (stable, so same-instant steps keep
// their declaration order).
func (s Schedule) Sort() {
	sort.SliceStable(s, func(i, j int) bool { return s[i].At < s[j].At })
}

// End returns the time of the last step.
func (s Schedule) End() time.Duration {
	var end time.Duration
	for _, st := range s {
		if st.At > end {
			end = st.At
		}
	}
	return end
}

// Render returns the schedule in the schedule-file syntax.
func (s Schedule) Render() string {
	var b strings.Builder
	for _, st := range s {
		b.WriteString(st.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// DetectionSchedule is the canonical three-class fault sequence used to
// exercise SLO detection: a datanode death, a zone partition, and a
// degraded cross-zone link, each followed by its recovery. The classes
// stress different detectors — node death surfaces through NDB liveness
// health, a partition through arbitration fallout and availability burn,
// a slow link through latency burn-rate alerts.
func DetectionSchedule() Schedule {
	return Schedule{
		{At: 3 * time.Second, Kind: FaultCrashDN, Node: 0},
		{At: 8 * time.Second, Kind: FaultRejoinDN, Node: 0},
		{At: 14 * time.Second, Kind: FaultPartition, Zone: 1, ZoneB: 3},
		{At: 19 * time.Second, Kind: FaultHeal, Zone: 1, ZoneB: 3},
		{At: 25 * time.Second, Kind: FaultSlowLink, Zone: 1, ZoneB: 2, Factor: 50},
		{At: 33 * time.Second, Kind: FaultRestoreLink, Zone: 1, ZoneB: 2},
	}
}

// ParseSchedule reads a campaign from the line-oriented schedule syntax:
//
//	# comment
//	at 5s   fail-zone 2
//	at 12s  recover-zone 2
//	at 15s  partition 1 3
//	at 20s  heal 1 3
//	at 22s  kill-nn 2
//	at 26s  restart-nn 2
//	at 28s  crash-dn 4
//	at 31s  rejoin-dn 4
//	at 33s  slow-link 1 2 4
//	at 34s  lossy-link 2 3 0.2
//	at 36s  restore-link 1 2
//
// Durations use Go syntax (5s, 500ms). Zones are 1-based zone ids;
// crash-dn/rejoin-dn take an NDB datanode index plus an optional shard
// index ("crash-dn 4 1" crashes datanode 4 of shard 1's cluster),
// kill-nn/restart-nn a 1-based metadata-server id.
func ParseSchedule(text string) (Schedule, error) {
	var sched Schedule
	for ln, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 3 || f[0] != "at" {
			return nil, fmt.Errorf("chaos: line %d: want `at <duration> <kind> <args>`, got %q", ln+1, raw)
		}
		at, err := time.ParseDuration(f[1])
		if err != nil {
			return nil, fmt.Errorf("chaos: line %d: bad duration %q: %v", ln+1, f[1], err)
		}
		st := Step{At: at, Kind: FaultKind(f[2])}
		args := f[3:]
		num := func(i int) (int, error) {
			if i >= len(args) {
				return 0, fmt.Errorf("chaos: line %d: %s needs more arguments", ln+1, st.Kind)
			}
			return strconv.Atoi(args[i])
		}
		fl := func(i int) (float64, error) {
			if i >= len(args) {
				return 0, fmt.Errorf("chaos: line %d: %s needs more arguments", ln+1, st.Kind)
			}
			return strconv.ParseFloat(args[i], 64)
		}
		switch st.Kind {
		case FaultCrashDN, FaultRejoinDN:
			n, err := num(0)
			if err != nil {
				return nil, err
			}
			st.Node = n
			if len(args) > 1 {
				// Optional second argument: the shard whose cluster owns
				// the datanode (sharded deployments only).
				s, err := num(1)
				if err != nil {
					return nil, err
				}
				st.Shard = s
			}
		case FaultKillNN, FaultRestartNN:
			n, err := num(0)
			if err != nil {
				return nil, err
			}
			st.Node = n
		case FaultFailZone, FaultRecoverZone:
			z, err := num(0)
			if err != nil {
				return nil, err
			}
			st.Zone = simnet.ZoneID(z)
		case FaultPartition, FaultHeal, FaultRestoreLink:
			a, err := num(0)
			if err != nil {
				return nil, err
			}
			b, err := num(1)
			if err != nil {
				return nil, err
			}
			st.Zone, st.ZoneB = simnet.ZoneID(a), simnet.ZoneID(b)
		case FaultSlowLink, FaultLossyLink:
			a, err := num(0)
			if err != nil {
				return nil, err
			}
			b, err := num(1)
			if err != nil {
				return nil, err
			}
			v, err := fl(2)
			if err != nil {
				return nil, err
			}
			st.Zone, st.ZoneB = simnet.ZoneID(a), simnet.ZoneID(b)
			if st.Kind == FaultSlowLink {
				st.Factor = v
			} else {
				st.Loss = v
			}
		default:
			return nil, fmt.Errorf("chaos: line %d: unknown fault kind %q", ln+1, f[2])
		}
		sched = append(sched, st)
	}
	sched.Sort()
	return sched, nil
}
