package chaos

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"hopsfscl/internal/core"
	"hopsfscl/internal/ndb"
	"hopsfscl/internal/sim"
	"hopsfscl/internal/simnet"
	"hopsfscl/internal/workload"
)

// TestCrossShardRenameCrashRace is the two-shard commit property test: a
// stream of renames pinned to cross the shard boundary races the crash of
// the exact datanode serving the participating partition — on the source
// shard for half the scenarios, the destination shard for the other half.
// After recovery and an intent sweep, every file must exist exactly once
// (no lost acked write, no duplicated or orphaned inode), storage must
// agree with the acked outcome, and the operation history must check
// clean. Runs ≥5 seeds; the CI shardsweep job repeats it under -race.
func TestCrossShardRenameCrashRace(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	disturbed := 0
	for _, seed := range seeds {
		for victim := 0; victim < 2; victim++ {
			seed, victim := seed, victim
			t.Run(fmt.Sprintf("seed%d-crash-shard%d", seed, victim), func(t *testing.T) {
				disturbed += runRenameCrashRace(t, seed, victim)
			})
		}
	}
	if disturbed == 0 {
		t.Fatalf("no scenario disturbed a rename: the race never bit, crash timing needs retuning")
	}
}

// runRenameCrashRace runs one scenario and returns 1 when the crash
// actually disturbed the rename stream (an errored rename or a pending
// intent), 0 when every rename sailed through before or after the outage.
func runRenameCrashRace(t *testing.T, seed int64, victimShard int) int {
	const files = 16
	setup, _ := core.SetupByName("HopsFS-CL (3,3)")
	o := core.DefaultOptions(setup)
	o.MetadataServers = 3
	o.ClientsPerServer = 1
	o.StorageNodes = 6
	o.PartitionsPerTable = 8
	o.Namespace = workload.NamespaceSpec{TopDirs: 1, SubDirs: 1, FilesPerDir: 2}
	o.Seed = seed
	o.Shards = 2
	d, err := core.Build(o)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cl := d.NS.NewClient(1, simnet.HostID(9500), 1)

	var (
		records          []Record
		renameErrs       = make([]error, files)
		srcID, dstID     uint64
		setupErr         error
		renamesStarted   bool
		renamesDone      bool
		pendingBeforeFix int
	)
	name := func(i int) string { return fmt.Sprintf("f%02d", i) }

	d.Env.Spawn("driver", func(p *sim.Proc) {
		fail := func(stage string, err error) bool {
			if err != nil && setupErr == nil {
				setupErr = fmt.Errorf("%s: %w", stage, err)
			}
			return err != nil
		}
		if fail("mkdir race", cl.Mkdir(p, "/race")) ||
			fail("mkdir src", cl.Mkdir(p, "/race/src")) ||
			fail("mkdir dst", cl.Mkdir(p, "/race/dst")) {
			return
		}
		src, err := cl.Stat(p, "/race/src")
		if fail("stat src", err) {
			return
		}
		dst, err := cl.Stat(p, "/race/dst")
		if fail("stat dst", err) {
			return
		}
		srcID, dstID = src.ID, dst.ID
		// Pin the two directories to different shards before any child
		// rows exist, so every rename below is a true two-shard commit.
		if fail("pin src", d.NS.PinSubtree(src.ID, 0)) ||
			fail("pin dst", d.NS.PinSubtree(dst.ID, 1)) {
			return
		}
		for i := 0; i < files; i++ {
			invoke := p.Now()
			err := cl.Create(p, "/race/src/"+name(i), 100)
			records = append(records, Record{Op: "create", Path: "/race/src/" + name(i),
				Invoke: invoke, Return: p.Now(), Err: err})
			if fail("create", err) {
				return
			}
		}
		renamesStarted = true
		for i := 0; i < files; i++ {
			invoke := p.Now()
			err := cl.Rename(p, "/race/src/"+name(i), "/race/dst/"+name(i))
			renameErrs[i] = err
			records = append(records, Record{Op: "rename", Path: "/race/src/" + name(i),
				Path2: "/race/dst/" + name(i), Invoke: invoke, Return: p.Now(), Err: err})
			p.Sleep(500 * time.Microsecond)
		}
		renamesDone = true
	})

	// The saboteur: once renames begin, wait a seed-dependent offset, then
	// poll for a durable cross-shard intent — the sign that some rename is
	// exactly between its two commits — and at that instant crash the
	// datanode serving the racing partition on the victim shard. Crashing
	// the destination shard fails the second leg mid-commit; crashing the
	// source shard hits the intent holder, stranding the record until the
	// sweep. Either way the crash lands inside the two-shard commit window
	// deterministically.
	d.Env.Spawn("saboteur", func(p *sim.Proc) {
		for !renamesStarted && setupErr == nil {
			p.Sleep(200 * time.Microsecond)
		}
		if setupErr != nil {
			return
		}
		p.Sleep(time.Duration(seed) * time.Millisecond)
		deadline := p.Now() + 10*time.Second
		for d.NS.PendingIntents() == 0 && !renamesDone && p.Now() < deadline {
			p.Sleep(20 * time.Microsecond)
		}
		db := d.MetaClusters()[victimShard]
		dirID := srcID
		if victimShard == 1 {
			dirID = dstID
		}
		dn := db.Table("inodes").PrimaryFor(fmt.Sprintf("%d", dirID))
		if dn == nil {
			return
		}
		dn.Node.Fail()
		p.Sleep(1500 * time.Millisecond)
		db.Rejoin(p, dn)
	})

	d.Env.RunFor(40 * time.Second)
	if setupErr != nil {
		t.Fatalf("scenario setup failed: %v", setupErr)
	}
	if !renamesDone {
		t.Fatalf("rename stream never finished")
	}
	pendingBeforeFix = d.NS.PendingIntents()
	// The crash can land anywhere in the two-shard commit: before the
	// intent is durable (clean abort), between the commits (inline
	// resolution or a stranded intent), or after. All of those are the
	// race biting; the router's counters see every case, including the
	// ones the retry/resolution machinery masks from the client.
	crossOK := d.Registry.Counter("shard.txn.cross").Value()
	crossAborts := d.Registry.Counter("shard.txn.cross_aborts").Value()
	crossIndet := d.Registry.Counter("shard.txn.cross_indeterminate").Value()
	resolvedInline := d.Registry.Counter("shard.intents.resolved").Value()
	if crossOK+crossIndet == 0 {
		t.Fatalf("no rename crossed the shard boundary: pinning is broken")
	}

	// Recovery: sweep any intent a mid-commit crash left durable.
	d.Env.Spawn("sweeper", func(p *sim.Proc) {
		if _, err := d.NS.ResolvePendingIntents(p); err != nil {
			t.Errorf("intent sweep: %v", err)
		}
	})
	d.Env.RunFor(5 * time.Second)
	if n := d.NS.PendingIntents(); n != 0 {
		t.Fatalf("%d intents still pending after sweep", n)
	}

	// Storage-level audit: each file exists exactly once across the two
	// shards, under exactly one of its two possible parents, and no
	// conflict-parked duplicate rows linger.
	rows := make(map[string]int)
	for s := 0; s < 2; s++ {
		d.MetaClusters()[s].Table("inodes").ForEachCommitted(func(_, key string, _ ndb.Value) {
			rows[key]++
			if strings.Contains(key, "~dup") {
				t.Errorf("shard %d holds conflict-parked duplicate row %q", s, key)
			}
		})
	}
	for i := 0; i < files; i++ {
		srcKey := fmt.Sprintf("%d/%s", srcID, name(i))
		dstKey := fmt.Sprintf("%d/%s", dstID, name(i))
		n := rows[srcKey] + rows[dstKey]
		if n != 1 {
			t.Errorf("file %s exists %d times (src=%d dst=%d), want exactly 1",
				name(i), n, rows[srcKey], rows[dstKey])
			continue
		}
		switch err := renameErrs[i]; {
		case err == nil && rows[dstKey] != 1:
			t.Errorf("rename of %s was acked but the row sits at the source", name(i))
		case err != nil && !indeterminate(err) && rows[srcKey] != 1:
			t.Errorf("rename of %s failed definitively (%v) but the row moved", name(i), err)
		}
	}

	// History-level audit: final reads resolve every indeterminate rename,
	// and the checker must find no lost acked write or stale read.
	d.Env.Spawn("verifier", func(p *sim.Proc) {
		for i := 0; i < files; i++ {
			for _, path := range []string{"/race/src/" + name(i), "/race/dst/" + name(i)} {
				invoke := p.Now()
				_, err := cl.Stat(p, path)
				records = append(records, Record{Op: "stat", Path: path,
					Invoke: invoke, Return: p.Now(), Err: err})
			}
		}
	})
	d.Env.RunFor(5 * time.Second)
	res := CheckHistory(records)
	if len(res.Violations) != 0 {
		for _, v := range res.Violations {
			t.Errorf("history: %s", v)
		}
	}

	errored := 0
	for _, err := range renameErrs {
		if err != nil {
			errored++
		}
	}
	t.Logf("seed=%d victim=shard%d: %d/%d renames errored, pending=%d aborts=%d indet=%d resolved=%d",
		seed, victimShard, errored, files, pendingBeforeFix, crossAborts, crossIndet, resolvedInline)
	if errored > 0 || pendingBeforeFix > 0 || crossAborts > 0 || crossIndet > 0 || resolvedInline > 0 {
		return 1
	}
	return 0
}

// TestShardedChaosCampaign runs generated fault campaigns against a
// two-shard deployment: faults land on both clusters' datanodes, the
// workload's renames cross the shard boundary, and every campaign must
// finish with zero invariant violations (including the pending-intent
// invariant the auditor checks after each quiesced sweep) and a clean
// operation history.
func TestShardedChaosCampaign(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	if testing.Short() {
		seeds = seeds[:1]
	}
	shardFaults := 0
	for _, seed := range seeds {
		seed := seed
		t.Run(fmtSeed(seed), func(t *testing.T) {
			rep, err := RunCampaign(seed, CampaignOptions{
				Faults:      4,
				CampaignLen: 25 * time.Second,
				Engine:      Config{Clients: 4},
				Shards:      2,
			})
			if err != nil {
				t.Fatalf("campaign: %v", err)
			}
			if rep.Check.OK == 0 {
				t.Fatalf("campaign had no successful operation:\n%s", rep.Render())
			}
			if !rep.Clean() {
				t.Fatalf("campaign not clean:\n%s", rep.Render())
			}
			for _, st := range rep.Schedule {
				if st.Shard != 0 {
					shardFaults++
				}
			}
		})
	}
	if !testing.Short() && shardFaults == 0 {
		t.Errorf("no generated fault targeted shard 1 across %d campaigns", len(seeds))
	}
}
