package chaos

import (
	"errors"
	"strings"
	"testing"
	"time"

	"hopsfscl/internal/namenode"
)

// TestChaosCampaign sweeps seeded random campaigns over HopsFS-CL (3,3)
// and requires every one to finish with zero invariant violations and
// zero history violations (no acked write lost, no stale read). The CI
// chaos job runs the full sweep under -race; tier-1 (`go test ./...`)
// runs a reduced one.
func TestChaosCampaign(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmtSeed(seed), func(t *testing.T) {
			rep, err := RunCampaign(seed, CampaignOptions{
				Faults:      4,
				CampaignLen: 25 * time.Second,
				Engine:      Config{Clients: 4},
			})
			if err != nil {
				t.Fatalf("campaign: %v", err)
			}
			if rep.Check.Ops == 0 {
				t.Fatalf("campaign recorded no operations")
			}
			if rep.Check.OK == 0 {
				t.Fatalf("campaign had no successful operation:\n%s", rep.Render())
			}
			if !rep.Clean() {
				t.Fatalf("campaign not clean:\n%s", rep.Render())
			}
		})
	}
}

func fmtSeed(seed int64) string {
	return "seed" + itoa(seed)
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestChaosDeterminism runs the same campaign twice and requires
// byte-identical reports — the property every other chaos test relies on
// for reproduction.
func TestChaosDeterminism(t *testing.T) {
	run := func() string {
		rep, err := RunCampaign(42, CampaignOptions{
			Faults:      3,
			CampaignLen: 20 * time.Second,
			Engine:      Config{Clients: 3},
		})
		if err != nil {
			t.Fatalf("campaign: %v", err)
		}
		return rep.Render()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different reports:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

// TestGenerateDeterminism checks the schedule generator alone: same
// deployment shape and seed must give the same schedule, and every
// degrading step must carry a later recovery step for the same target.
func TestGenerateDeterminism(t *testing.T) {
	rep1, err := RunCampaign(7, CampaignOptions{Faults: 5, CampaignLen: 25 * time.Second, Engine: Config{Clients: 2}})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	rep2, err := RunCampaign(7, CampaignOptions{Faults: 5, CampaignLen: 25 * time.Second, Engine: Config{Clients: 2}})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if rep1.Schedule.Render() != rep2.Schedule.Render() {
		t.Fatalf("generator not deterministic:\n%s\nvs\n%s", rep1.Schedule.Render(), rep2.Schedule.Render())
	}
	degrading := 0
	for _, st := range rep1.Schedule {
		if st.Kind.degrades() {
			degrading++
		} else {
			degrading--
		}
	}
	if degrading != 0 {
		t.Fatalf("schedule has unpaired degrading steps:\n%s", rep1.Schedule.Render())
	}
}

func TestParseScheduleRoundTrip(t *testing.T) {
	text := `
# the §V-F drill, as a schedule
at 5s fail-zone 2
at 12s recover-zone 2
at 18s partition 1 3
at 24s heal 1 3
at 30s kill-nn 2
at 34s restart-nn 2
at 36s crash-dn 4
at 40s rejoin-dn 4
at 42s slow-link 1 2 4
at 44s lossy-link 2 3 0.1
at 46s restore-link 1 2
at 47s restore-link 2 3
`
	sched, err := ParseSchedule(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(sched) != 12 {
		t.Fatalf("want 12 steps, got %d", len(sched))
	}
	again, err := ParseSchedule(sched.Render())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if sched.Render() != again.Render() {
		t.Fatalf("round trip changed the schedule:\n%s\nvs\n%s", sched.Render(), again.Render())
	}
	if sched[0].Kind != FaultFailZone || sched[0].Zone != 2 || sched[0].At != 5*time.Second {
		t.Fatalf("first step parsed wrong: %+v", sched[0])
	}
	if sched[8].Kind != FaultSlowLink || sched[8].Factor != 4 {
		t.Fatalf("slow-link parsed wrong: %+v", sched[8])
	}

	for _, bad := range []string{
		"at 5s fail-zone",       // missing argument
		"after 5s fail-zone 2",  // bad keyword
		"at five fail-zone 2",   // bad duration
		"at 5s melt-the-rack 1", // unknown kind
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) accepted a bad line", bad)
		}
	}
}

// TestCheckHistory feeds the checker synthetic histories and verifies it
// flags exactly the two violation classes.
func TestCheckHistory(t *testing.T) {
	rec := func(client int, op, path string, err error) Record {
		return Record{Client: client, Op: op, Path: path, Err: err}
	}
	t.Run("clean", func(t *testing.T) {
		res := CheckHistory([]Record{
			rec(0, "create", "/a", nil),
			rec(0, "stat", "/a", nil),
			rec(0, "delete", "/a", nil),
			rec(0, "statAbsent", "/a", namenode.ErrNotFound),
		})
		if len(res.Violations) != 0 || res.OK != 3 || res.Failed != 1 {
			t.Fatalf("clean history misjudged: %+v", res)
		}
	})
	t.Run("acked write lost", func(t *testing.T) {
		res := CheckHistory([]Record{
			rec(0, "create", "/a", nil),
			rec(0, "stat", "/a", namenode.ErrNotFound),
		})
		if res.AckedLost != 1 {
			t.Fatalf("lost acked write not flagged: %+v", res)
		}
	})
	t.Run("stale read", func(t *testing.T) {
		res := CheckHistory([]Record{
			rec(0, "create", "/a", nil),
			rec(0, "delete", "/a", nil),
			rec(0, "stat", "/a", nil),
		})
		if res.StaleReads != 1 {
			t.Fatalf("read of deleted path not flagged: %+v", res)
		}
	})
	t.Run("lost ack resolved by ErrExists", func(t *testing.T) {
		res := CheckHistory([]Record{
			rec(0, "create", "/a", namenode.ErrRetriesExhausted), // maybe applied
			rec(0, "create", "/a", namenode.ErrExists),           // it was
			rec(0, "stat", "/a", nil),                            // consistent
		})
		if len(res.Violations) != 0 || res.Indet != 1 {
			t.Fatalf("retry ambiguity misjudged: %+v", res)
		}
	})
	t.Run("indeterminate delete", func(t *testing.T) {
		res := CheckHistory([]Record{
			rec(0, "create", "/a", nil),
			rec(0, "delete", "/a", namenode.ErrRetriesExhausted),
			rec(0, "stat", "/a", namenode.ErrNotFound), // either outcome fine
			rec(0, "stat", "/a", nil),                  // now resolved absent: data back?
		})
		if res.StaleReads != 1 {
			t.Fatalf("resurrected delete not flagged: %+v", res)
		}
	})
	t.Run("clients independent", func(t *testing.T) {
		res := CheckHistory([]Record{
			rec(0, "create", "/a", nil),
			rec(1, "stat", "/a", namenode.ErrNotFound), // other client: no claim
		})
		if len(res.Violations) != 0 {
			t.Fatalf("cross-client state leaked: %+v", res)
		}
	})
}

// TestEngineExplicitSchedule runs the paper's §V-F drill as an explicit
// schedule and checks the availability accounting comes out: the AZ
// failure must be visible as a fault mark with a measured MTTR, and the
// campaign must stay clean (the paper's claim: an AZ loss is survived
// without data loss).
func TestEngineExplicitSchedule(t *testing.T) {
	sched, err := ParseSchedule(`
at 4s  fail-zone 2
at 10s recover-zone 2
at 16s partition 1 3
at 21s heal 1 3
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	rep, err := RunCampaign(3, CampaignOptions{Schedule: sched, Engine: Config{Clients: 4, Duration: 40 * time.Second}})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if !rep.Clean() {
		t.Fatalf("drill not clean:\n%s", rep.Render())
	}
	if len(rep.MTTR) != 2 {
		t.Fatalf("want 2 MTTR entries (fail-zone, partition), got %d:\n%s", len(rep.MTTR), rep.Render())
	}
	for _, m := range rep.MTTR {
		if !m.Recovered {
			t.Fatalf("fault %v never recovered:\n%s", m.Step.Kind, rep.Render())
		}
	}
	out := rep.Render()
	for _, want := range []string{"chaos campaign", "timeline", "recovery", "unavailability"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

var _ = errors.Is // keep errors imported if assertions above change
