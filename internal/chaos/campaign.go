package chaos

import (
	"math/rand"
	"time"

	"hopsfscl/internal/core"
	"hopsfscl/internal/simnet"
)

// The campaign generator derives random fault schedules that are
// safe by construction: with three-way metadata replication and one
// replica per zone, the rules below guarantee that every NDB node group
// keeps at least one live member at all times, so campaigns probe
// availability and recovery — not unsurvivable data loss, which the
// paper's deployment (and any real one) cannot mask either.
//
// The safety argument, fault kind by fault kind:
//
//   - fail-zone removes one replica from every group. It never overlaps
//     another fail-zone, a partition, a crash-dn, or a lossy link, so the
//     other two replicas of every group stay up and connected.
//   - partition triggers arbitration; the winner is the side that reaches
//     the arbitrator (the first live management node, M1 in zone 1), so
//     exactly one side survives and it spans at least one member of every
//     group. Partitions never overlap zone faults, node crashes, lossy
//     links, or each other.
//   - crash-dn removes one member of one group, and never overlaps any
//     fault that could take another member of that group.
//   - kill-nn only touches metadata servers; at most one is down at a
//     time, so the election always has a quorum of candidates.
//   - slow-link stretches latency but stays far below the heartbeat and
//     RPC timeouts, so it cannot cause spurious failure declarations.
//   - lossy-link can cause spurious declarations and even
//     suicide-by-arbitration, but the casualties are confined to the two
//     zones of the lossy pair — the third zone's replica survives — and
//     the restore step sweeps the casualties back in.

// genWeight is the relative frequency of each degrading fault kind.
var genKinds = []struct {
	kind   FaultKind
	weight int
}{
	{FaultFailZone, 20},
	{FaultPartition, 20},
	{FaultKillNN, 20},
	{FaultCrashDN, 15},
	{FaultSlowLink, 15},
	{FaultLossyLink, 10},
}

// interval is one placed fault's active window, for conflict checking.
type interval struct {
	kind     FaultKind
	from, to time.Duration
	zone     simnet.ZoneID
	zoneB    simnet.ZoneID
	node     int
	shard    int
}

// conflicts lists, per fault kind, the kinds it must never overlap.
var conflicts = map[FaultKind][]FaultKind{
	FaultFailZone:  {FaultFailZone, FaultPartition, FaultCrashDN, FaultLossyLink, FaultKillNN},
	FaultPartition: {FaultFailZone, FaultPartition, FaultCrashDN, FaultLossyLink},
	FaultCrashDN:   {FaultFailZone, FaultPartition, FaultCrashDN, FaultLossyLink},
	FaultKillNN:    {FaultKillNN, FaultFailZone},
	FaultSlowLink:  {FaultSlowLink, FaultLossyLink},
	FaultLossyLink: {FaultFailZone, FaultPartition, FaultCrashDN, FaultSlowLink, FaultLossyLink},
}

// recovery maps each degrading kind to its restoring counterpart.
var recovery = map[FaultKind]FaultKind{
	FaultFailZone:  FaultRecoverZone,
	FaultPartition: FaultHeal,
	FaultCrashDN:   FaultRejoinDN,
	FaultKillNN:    FaultRestartNN,
	FaultSlowLink:  FaultRestoreLink,
	FaultLossyLink: FaultRestoreLink,
}

// conflictMargin separates conflicting faults in time, so detection and
// arbitration from one fault fully settle before the next lands.
const conflictMargin = 500 * time.Millisecond

// Generate derives a random but safe-by-construction campaign for the
// deployment: faults degrading steps, each paired with its recovery, all
// landing within the first 70% of the duration so the campaign ends with
// a recovered, auditable cluster. Same deployment shape and seed — same
// schedule.
func Generate(d *core.Deployment, seed int64, duration time.Duration, faults int) Schedule {
	rng := rand.New(rand.NewSource(seed*2654435761 + 97))
	multiZone := d.Setup.Zones == 3
	lossyOK := d.Setup.MetaReplication >= 3
	nns := len(d.NS.NameNodes())
	// Enumerate datanodes across every NDB cluster so a sharded deployment
	// gets faults on all shards. One rng draw selects a global index that
	// maps back to (shard, local node); with one cluster the totals and
	// draw sequence match the pre-sharding generator exactly.
	clusters := d.MetaClusters()
	perCluster := make([]int, len(clusters))
	dns := 0
	for i, c := range clusters {
		perCluster[i] = len(c.DataNodes())
		dns += perCluster[i]
	}

	var placed []interval
	var sched Schedule

	totalWeight := 0
	for _, k := range genKinds {
		if !multiZone && (k.kind == FaultFailZone || k.kind == FaultPartition ||
			k.kind == FaultSlowLink || k.kind == FaultLossyLink) {
			continue
		}
		if !lossyOK && k.kind == FaultLossyLink {
			continue
		}
		totalWeight += k.weight
	}
	if totalWeight == 0 || faults <= 0 {
		return sched
	}

	drawKind := func() FaultKind {
		n := rng.Intn(totalWeight)
		for _, k := range genKinds {
			if !multiZone && (k.kind == FaultFailZone || k.kind == FaultPartition ||
				k.kind == FaultSlowLink || k.kind == FaultLossyLink) {
				continue
			}
			if !lossyOK && k.kind == FaultLossyLink {
				continue
			}
			if n < k.weight {
				return k.kind
			}
			n -= k.weight
		}
		return FaultCrashDN
	}

	overlaps := func(iv interval) bool {
		bad := conflicts[iv.kind]
		for _, p := range placed {
			if p.to+conflictMargin <= iv.from || iv.to+conflictMargin <= p.from {
				continue
			}
			for _, k := range bad {
				if p.kind == k {
					return true
				}
			}
			// Never stack two faults on the identical target even when the
			// kinds are compatible (e.g. slow-link twice on the same pair).
			if p.kind == iv.kind && p.zone == iv.zone && p.zoneB == iv.zoneB &&
				p.node == iv.node && p.shard == iv.shard {
				return true
			}
		}
		return false
	}

	earliest := 2 * time.Second
	latestEnd := duration * 7 / 10
	for placedFaults := 0; placedFaults < faults; {
		kind := drawKind()
		ok := false
		for try := 0; try < 20; try++ {
			start := earliest + time.Duration(rng.Int63n(int64(duration*55/100-earliest)))
			dur := 3*time.Second + time.Duration(rng.Int63n(int64(5*time.Second)))
			if kind == FaultLossyLink && dur > 6*time.Second {
				dur = 6 * time.Second
			}
			if start+dur > latestEnd {
				continue
			}
			iv := interval{kind: kind, from: start, to: start + dur}
			st := Step{At: start, Kind: kind}
			rec := Step{At: start + dur, Kind: recovery[kind]}
			switch kind {
			case FaultFailZone:
				iv.zone = simnet.ZoneID(1 + rng.Intn(3))
				st.Zone, rec.Zone = iv.zone, iv.zone
			case FaultPartition, FaultSlowLink, FaultLossyLink:
				pairs := [][2]simnet.ZoneID{{1, 2}, {1, 3}, {2, 3}}
				pr := pairs[rng.Intn(len(pairs))]
				iv.zone, iv.zoneB = pr[0], pr[1]
				st.Zone, st.ZoneB = pr[0], pr[1]
				rec.Zone, rec.ZoneB = pr[0], pr[1]
				if kind == FaultSlowLink {
					st.Factor = 2 + 6*rng.Float64()
				}
				if kind == FaultLossyLink {
					st.Loss = 0.05 + 0.10*rng.Float64()
				}
			case FaultKillNN:
				iv.node = 1 + rng.Intn(nns)
				st.Node, rec.Node = iv.node, iv.node
			case FaultCrashDN:
				g := rng.Intn(dns)
				for s, n := range perCluster {
					if g < n {
						iv.shard, iv.node = s, g
						break
					}
					g -= n
				}
				st.Node, rec.Node = iv.node, iv.node
				st.Shard, rec.Shard = iv.shard, iv.shard
			}
			if overlaps(iv) {
				continue
			}
			placed = append(placed, iv)
			sched = append(sched, st, rec)
			ok = true
			break
		}
		placedFaults++ // count the attempt even if unplaceable: terminate
		_ = ok
	}
	sched.Sort()
	return sched
}
