package chaos

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"hopsfscl/internal/blocks"
	"hopsfscl/internal/namenode"
	"hopsfscl/internal/ndb"
)

// The history checker verifies client-observed results against a
// sequential namespace model. It relies on the sole-mutator discipline the
// engine's workload enforces: each chaos client mutates only its own
// directory and always creates fresh names, so every response can be
// resolved against what that client alone has done. Under that discipline
// even ambiguous errors become informative — a create of a fresh name that
// fails with ErrExists means our own lost-ack attempt applied.

// Record is one client operation: invocation and response on virtual time.
type Record struct {
	Client int
	Op     string // create, write, delete, stat, statAbsent, read, list, rename
	Path   string
	Path2  string // rename destination
	Invoke time.Duration
	Return time.Duration
	Err    error
}

// pathState is the checker's knowledge of one path.
type pathState int

const (
	stAbsent pathState = iota // definitely absent (never created, or deleted)
	stExists                  // definitely exists (acked or observed)
	stMaybe                   // unresolved: an indeterminate mutation touched it
)

func (s pathState) String() string {
	switch s {
	case stExists:
		return "exists"
	case stMaybe:
		return "maybe"
	default:
		return "absent"
	}
}

// indeterminate reports whether err leaves the operation's effect unknown:
// the request may have been applied with the acknowledgment lost.
func indeterminate(err error) bool {
	return errors.Is(err, namenode.ErrNoNameNodes) ||
		errors.Is(err, namenode.ErrRetriesExhausted) ||
		errors.Is(err, ndb.ErrNodeUnavailable) ||
		errors.Is(err, ndb.ErrLockTimeout) ||
		errors.Is(err, blocks.ErrNoDatanodes) ||
		errors.Is(err, blocks.ErrNoReplica)
}

// transition advances the sequential model for one operation on one path
// and reports a violation kind ("" if consistent). It is shared by the
// live workload (for choosing targets) and the post-hoc checker, so the
// two can never disagree. For rename, it governs the source; the
// destination is handled by renameDst.
func transition(op string, prev pathState, err error) (next pathState, violation string) {
	switch op {
	case "create", "write":
		switch {
		case err == nil:
			return stExists, ""
		case errors.Is(err, namenode.ErrExists):
			// Fresh name: only our own retried attempt can have created it.
			return stExists, ""
		case op == "write" && !indeterminate(err):
			// Large write = create + stream + attach. A definite attach
			// error still leaves the created (empty) inode behind, but the
			// error may also come from the create leg: unresolvable.
			return stMaybe, ""
		case indeterminate(err):
			return stMaybe, ""
		default:
			return prev, ""
		}
	case "delete":
		switch {
		case err == nil:
			return stAbsent, ""
		case errors.Is(err, namenode.ErrNotFound):
			// Sole mutator: if anything removed it, it was our own
			// lost-ack attempt (or it was already maybe/absent).
			return stAbsent, ""
		case indeterminate(err):
			return stMaybe, ""
		default:
			return prev, ""
		}
	case "stat", "read", "statAbsent":
		switch {
		case err == nil:
			if prev == stAbsent {
				// After flagging, adopt the observation so one lost update
				// is counted once, not on every subsequent read.
				return stExists, "stale-read"
			}
			return stExists, ""
		case errors.Is(err, namenode.ErrNotFound):
			if prev == stExists {
				return stAbsent, "acked-write-lost"
			}
			return stAbsent, ""
		default:
			// Availability failure: no knowledge gained.
			return prev, ""
		}
	case "rename":
		switch {
		case err == nil:
			return stAbsent, "" // source moved away
		case indeterminate(err), errors.Is(err, namenode.ErrNotFound), errors.Is(err, namenode.ErrExists):
			// ErrNotFound can mean our own retried rename applied; treat
			// the source as unresolved rather than inferring success.
			return stMaybe, ""
		default:
			return prev, ""
		}
	}
	return prev, ""
}

// renameDst advances the model for a rename's destination path.
func renameDst(prev pathState, err error) pathState {
	switch {
	case err == nil:
		return stExists
	case indeterminate(err), errors.Is(err, namenode.ErrNotFound), errors.Is(err, namenode.ErrExists):
		return stMaybe
	default:
		return prev
	}
}

// CheckResult summarizes a history verification.
type CheckResult struct {
	Ops        int
	OK         int
	Failed     int // definite failures (the namespace rejected the op)
	Indet      int // indeterminate failures (timeouts, no reachable NN)
	AckedLost  int // acked writes that later vanished
	StaleReads int // reads that returned definitely-deleted data
	Violations []Violation
}

// CheckHistory replays the recorded operations through the sequential
// model, client by client, and returns every consistency violation. The
// records must be in per-client program order (the engine appends them as
// operations complete, and each client runs one operation at a time, so
// appending order suffices).
func CheckHistory(recs []Record) CheckResult {
	var res CheckResult
	states := make(map[int]map[string]pathState)
	for _, r := range recs {
		m := states[r.Client]
		if m == nil {
			m = make(map[string]pathState)
			states[r.Client] = m
		}
		res.Ops++
		switch {
		case r.Err == nil:
			res.OK++
		case indeterminate(r.Err):
			res.Indet++
		default:
			res.Failed++
		}
		if r.Op == "list" || r.Op == "mkdir" {
			continue // availability only; no per-path claim checked
		}
		next, viol := transition(r.Op, m[r.Path], r.Err)
		if viol != "" {
			v := Violation{
				Invariant: viol,
				Detail: fmt.Sprintf("client %d %s %s at %v returned %s with path state %s",
					r.Client, r.Op, r.Path, r.Return, errString(r.Err), m[r.Path]),
			}
			res.Violations = append(res.Violations, v)
			if viol == "acked-write-lost" {
				res.AckedLost++
			} else {
				res.StaleReads++
			}
		}
		m[r.Path] = next
		if r.Op == "rename" {
			m[r.Path2] = renameDst(m[r.Path2], r.Err)
		}
	}
	sort.Slice(res.Violations, func(i, j int) bool {
		if res.Violations[i].Invariant != res.Violations[j].Invariant {
			return res.Violations[i].Invariant < res.Violations[j].Invariant
		}
		return res.Violations[i].Detail < res.Violations[j].Detail
	})
	return res
}

func errString(err error) string {
	if err == nil {
		return "ok"
	}
	return err.Error()
}
