package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"hopsfscl/internal/core"
	"hopsfscl/internal/namenode"
	"hopsfscl/internal/ndb"
	"hopsfscl/internal/sim"
	"hopsfscl/internal/simnet"
	"hopsfscl/internal/slo"
)

// Config parameterizes a campaign run.
type Config struct {
	// Clients is the number of sole-mutator workload clients (default 6).
	Clients int
	// Duration is the campaign length on virtual time. Zero derives it
	// from the schedule: last step plus a settle tail.
	Duration time.Duration
	// OpGap is the think time between a client's operations (default 2ms).
	OpGap time.Duration
	// LargeEvery makes every Nth create a block-layer file write
	// (default 20; 0 disables large writes).
	LargeEvery int
	// LargeSize is the large-file size (default 256 KiB, one block).
	LargeSize int64
	// SettleAfterStep is how long the workload runs after each fault step
	// before the engine quiesces and audits (default 500ms).
	SettleAfterStep time.Duration
	// AuditBudget bounds the quiesce drain. It must exceed the slowest
	// possible in-flight operation (a block transfer timeout), or a merely
	// slow operation would be misreported as a stuck transaction
	// (default 45s).
	AuditBudget time.Duration
	// LeaderSettle is the quiet time after the last fault before leader
	// uniqueness is audited: election rows expire after 5s and rounds run
	// every 2s, so views need several seconds to converge (default 10s).
	LeaderSettle time.Duration
	// GapThreshold classifies unavailability: any gap between consecutive
	// successful operations longer than this counts as an outage window
	// (default 400ms — far above the healthy op cadence).
	GapThreshold time.Duration
	// Seed seeds the workload's operation mix (independent from the
	// deployment seed so the two can be varied separately).
	Seed int64
}

func (c Config) withDefaults(sched Schedule) Config {
	if c.Clients <= 0 {
		c.Clients = 6
	}
	if c.OpGap <= 0 {
		c.OpGap = 2 * time.Millisecond
	}
	if c.LargeEvery < 0 {
		c.LargeEvery = 0
	}
	if c.LargeEvery == 0 {
		c.LargeEvery = 20
	}
	if c.LargeSize <= 0 {
		c.LargeSize = 256 << 10
	}
	if c.SettleAfterStep <= 0 {
		c.SettleAfterStep = 500 * time.Millisecond
	}
	if c.AuditBudget <= 0 {
		c.AuditBudget = 45 * time.Second
	}
	if c.LeaderSettle <= 0 {
		c.LeaderSettle = 10 * time.Second
	}
	if c.GapThreshold <= 0 {
		c.GapThreshold = 400 * time.Millisecond
	}
	if c.Duration <= 0 {
		c.Duration = sched.End() + c.LeaderSettle + 2*time.Second
		if c.Duration < 20*time.Second {
			c.Duration = 20 * time.Second
		}
	}
	return c
}

// Snapshot captures cluster state at one campaign checkpoint, for
// drill-style reporting.
type Snapshot struct {
	Label     string
	Now       time.Duration
	OpsPerSec float64 // successful ops/s since the previous snapshot
	LiveNDB   int
	TotalNDB  int
	LeaderID  int // 0 when no leader is elected
	NewViol   int // violations found at this checkpoint
}

// Engine drives one fault campaign over a deployment: it runs the
// sole-mutator workload, executes the schedule, audits invariants at
// checkpoints, and verifies the operation history.
type Engine struct {
	d     *core.Deployment
	cfg   Config
	sched Schedule
	aud   *Auditor

	// dbs are the deployment's NDB clusters in shard order (just d.DB for
	// unsharded deployments); sharded is len(dbs) > 1.
	dbs     []*ndb.Cluster
	sharded bool

	agents  []*agent
	records []Record
	paused  bool
	stopped bool
	// pauses are the audit quiesce windows: the workload is deliberately
	// stopped, so they are excluded from availability accounting.
	pauses []Window

	// fault-state tracking for the settled gate.
	downZones map[simnet.ZoneID]bool
	downNNs   map[int]bool
	// downDNs is keyed by (shard, datanode index) so per-cluster faults in
	// a sharded deployment track independently.
	downDNs   map[[2]int]bool
	parts     map[[2]simnet.ZoneID]bool
	degr      map[[2]simnet.ZoneID]bool
	lastFault time.Duration

	snapshots []Snapshot
	lastSnap  struct {
		at time.Duration
		ok int
	}
	marks []mark // fault injections, for MTTR

	// slo, when attached, is consulted after the run to compute
	// time-to-detect per injected fault (see AttachSLO).
	slo *slo.Engine
}

// mark is one degrading step's injection time.
type mark struct {
	step Step
	at   time.Duration
}

// AttachSLO connects a live SLO engine (normally the deployment's, after
// core.Deployment.EnableSLO): the campaign report then carries the full
// alert/health timeline and a time-to-detect entry per degrading fault —
// the delay until the first degrading alert or health transition at or
// after the injection.
func (e *Engine) AttachSLO(se *slo.Engine) { e.slo = se }

// NewEngine prepares a campaign over an existing deployment. The
// deployment must be a HopsFS variant (the auditor inspects NDB state).
func NewEngine(d *core.Deployment, sched Schedule, cfg Config) (*Engine, error) {
	if d.DB == nil || d.NS == nil {
		return nil, fmt.Errorf("chaos: deployment has no NDB/namenode stack")
	}
	dbs := d.MetaClusters()
	e := &Engine{
		d:         d,
		cfg:       cfg.withDefaults(sched),
		sched:     append(Schedule{}, sched...),
		aud:       NewAuditor(d),
		dbs:       dbs,
		sharded:   len(dbs) > 1,
		downZones: make(map[simnet.ZoneID]bool),
		downNNs:   make(map[int]bool),
		downDNs:   make(map[[2]int]bool),
		parts:     make(map[[2]simnet.ZoneID]bool),
		degr:      make(map[[2]simnet.ZoneID]bool),
	}
	e.sched.Sort()
	if err := e.validate(); err != nil {
		return nil, err
	}
	return e, nil
}

func (e *Engine) validate() error {
	nns := len(e.d.NS.NameNodes())
	zones := e.d.Net.Topology().Zones()
	for _, st := range e.sched {
		switch st.Kind {
		case FaultKillNN, FaultRestartNN:
			if st.Node < 1 || st.Node > nns {
				return fmt.Errorf("chaos: step %q: no metadata server %d", st, st.Node)
			}
		case FaultCrashDN, FaultRejoinDN:
			if st.Shard < 0 || st.Shard >= len(e.dbs) {
				return fmt.Errorf("chaos: step %q: no shard %d", st, st.Shard)
			}
			if st.Node < 0 || st.Node >= len(e.dbs[st.Shard].DataNodes()) {
				return fmt.Errorf("chaos: step %q: no NDB datanode %d", st, st.Node)
			}
		case FaultFailZone, FaultRecoverZone:
			if int(st.Zone) < 1 || int(st.Zone) > zones {
				return fmt.Errorf("chaos: step %q: no zone %d", st, st.Zone)
			}
		case FaultPartition, FaultHeal, FaultSlowLink, FaultLossyLink, FaultRestoreLink:
			if int(st.Zone) < 1 || int(st.Zone) > zones || int(st.ZoneB) < 1 || int(st.ZoneB) > zones || st.Zone == st.ZoneB {
				return fmt.Errorf("chaos: step %q: bad zone pair", st)
			}
		default:
			return fmt.Errorf("chaos: unknown fault kind %q", st.Kind)
		}
	}
	return nil
}

// Run executes the campaign and returns its report.
func (e *Engine) Run() (*Report, error) {
	env := e.d.Env
	e.spawnAgents()
	// Warm up: let the clients build their directories and election
	// complete before the first fault.
	env.RunFor(2 * time.Second)
	for _, a := range e.agents {
		if a.setupErr != nil {
			return nil, fmt.Errorf("chaos: client %d setup failed: %w", a.idx, a.setupErr)
		}
	}
	start := env.Now()
	e.lastSnap.at = start
	e.checkpoint("baseline")

	// Schedule step times are workload time: audit quiesces stop the
	// workload clock, so each checkpoint's pause shifts later steps by the
	// pause length. Without this a slow drain (e.g. auditing under a
	// partition) would eat the dwell time of every subsequent fault.
	for _, st := range e.sched {
		target := start + st.At + e.pausedTotal()
		if now := env.Now(); target > now {
			env.RunFor(target - now)
		}
		if err := e.apply(st); err != nil {
			return nil, err
		}
		env.RunFor(e.cfg.SettleAfterStep)
		e.checkpoint(st.String())
	}

	end := start + e.cfg.Duration + e.pausedTotal()
	if now := env.Now(); end > now {
		env.RunFor(end - now)
	}
	e.checkpoint("final")
	e.stopped = true
	env.RunFor(10 * time.Millisecond)

	return e.report(start, env.Now()), nil
}

// apply executes one schedule step. Recovery actions that need simulated
// time (datanode resync) run in spawned processes, concurrently with the
// workload — recovery time is part of what campaigns measure.
func (e *Engine) apply(st Step) error {
	d := e.d
	now := d.Env.Now()
	if st.Kind.degrades() {
		e.marks = append(e.marks, mark{step: st, at: now})
		d.Registry.Counter("chaos.faults", "kind", string(st.Kind)).Add(1)
	}
	e.lastFault = now
	switch st.Kind {
	case FaultFailZone:
		e.downZones[st.Zone] = true
		for _, db := range e.dbs {
			db.FailZone(st.Zone)
		}
		for _, nn := range d.NS.NameNodes() {
			if nn.Node.Zone() == st.Zone {
				nn.Fail()
			}
		}
		if d.Blocks != nil {
			for _, dn := range d.Blocks.DataNodes() {
				if dn.Node.Zone() == st.Zone {
					dn.Node.Fail()
				}
			}
		}
	case FaultRecoverZone:
		delete(e.downZones, st.Zone)
		z := st.Zone
		d.Env.Spawn("chaos-recover-zone", func(p *sim.Proc) {
			for _, db := range e.dbs {
				db.RecoverZone(p, z)
			}
			for _, nn := range d.NS.NameNodes() {
				if nn.Node.Zone() == z {
					nn.Recover()
				}
			}
			if d.Blocks != nil {
				for _, dn := range d.Blocks.DataNodes() {
					if dn.Node.Zone() == z {
						dn.Node.Recover()
					}
				}
			}
			e.rejoinStragglers(p)
		})
	case FaultPartition:
		e.parts[zpair(st.Zone, st.ZoneB)] = true
		for _, db := range e.dbs {
			db.NextArbitrationEpoch()
		}
		d.Net.Partition(st.Zone, st.ZoneB)
	case FaultHeal:
		delete(e.parts, zpair(st.Zone, st.ZoneB))
		d.Net.Heal(st.Zone, st.ZoneB)
		// Arbitration losers shut themselves down during the partition and
		// stay down after the network heals; sweep them back in, as an
		// operator restarting the losing side would.
		d.Env.Spawn("chaos-heal-rejoin", e.rejoinStragglers)
	case FaultKillNN:
		e.downNNs[st.Node] = true
		d.NS.NameNodes()[st.Node-1].Fail()
	case FaultRestartNN:
		delete(e.downNNs, st.Node)
		d.NS.NameNodes()[st.Node-1].Recover()
	case FaultCrashDN:
		e.downDNs[[2]int{st.Shard, st.Node}] = true
		e.dbs[st.Shard].DataNodes()[st.Node].Node.Fail()
	case FaultRejoinDN:
		delete(e.downDNs, [2]int{st.Shard, st.Node})
		db := e.dbs[st.Shard]
		dn := db.DataNodes()[st.Node]
		d.Env.Spawn("chaos-rejoin-dn", func(p *sim.Proc) { db.Rejoin(p, dn) })
	case FaultSlowLink:
		e.degr[zpair(st.Zone, st.ZoneB)] = true
		d.Net.DegradeLink(st.Zone, st.ZoneB, st.Factor, 0)
	case FaultLossyLink:
		e.degr[zpair(st.Zone, st.ZoneB)] = true
		d.Net.DegradeLink(st.Zone, st.ZoneB, 1, st.Loss)
	case FaultRestoreLink:
		delete(e.degr, zpair(st.Zone, st.ZoneB))
		d.Net.RestoreLink(st.Zone, st.ZoneB)
		// Lossy links can trick the heartbeat ring into spurious failure
		// declarations (and even suicide-by-arbitration); sweep the
		// casualties back in once the link is clean.
		d.Env.Spawn("chaos-restore-rejoin", e.rejoinStragglers)
	}
	return nil
}

// rejoinStragglers rejoins every storage node that is down without the
// schedule saying so: arbitration losers after a partition, and heartbeat
// false-positives after a lossy link. Nodes in deliberately failed zones
// or deliberately crashed are left alone.
func (e *Engine) rejoinStragglers(p *sim.Proc) {
	for s, db := range e.dbs {
		for i, dn := range db.DataNodes() {
			if e.downDNs[[2]int{s, i}] || e.downZones[dn.Node.Zone()] {
				continue
			}
			switch {
			case !dn.Alive():
				db.Rejoin(p, dn)
			case dn.DeclaredDead():
				db.Reinstate(p, dn)
			}
		}
	}
}

func zpair(a, b simnet.ZoneID) [2]simnet.ZoneID {
	if a > b {
		a, b = b, a
	}
	return [2]simnet.ZoneID{a, b}
}

// settled reports whether no fault is active and the cluster has had time
// to converge (elections re-run, detection complete).
func (e *Engine) settled() bool {
	if len(e.downZones) > 0 || len(e.downNNs) > 0 || len(e.downDNs) > 0 ||
		len(e.parts) > 0 || len(e.degr) > 0 {
		return false
	}
	return e.d.Env.Now()-e.lastFault >= e.cfg.LeaderSettle
}

// checkpoint quiesces the workload, audits invariants, records a
// snapshot, and resumes.
func (e *Engine) checkpoint(label string) {
	pauseStart := e.d.Env.Now()
	quiesced := e.quiesce()
	if quiesced {
		// With the workload drained, any durable cross-shard intent left in
		// storage belongs to a coordinator that died mid-commit: recover it
		// now so the auditor sees a namespace with no commit half-applied.
		// (No-op for unsharded deployments, which never write intents.)
		e.sweepIntents()
	}
	viol := e.aud.Check(e.d.Env.Now(), quiesced, e.settled())
	if !quiesced {
		// The drain itself is an invariant: a workload that cannot drain
		// within the budget means a transaction or lock is stuck.
		v := Violation{Invariant: "txn-quiescence", Detail: fmt.Sprintf(
			"workload failed to drain within %v at %q (stuck transaction or lock)", e.cfg.AuditBudget, label)}
		viol = append(viol, v)
		e.aud.Violations = append(e.aud.Violations, v)
	}
	e.pauses = append(e.pauses, Window{From: pauseStart, To: e.d.Env.Now()})
	e.snapshot(label, len(viol))
	e.paused = false
}

// sweepIntents runs the cross-shard intent resolver to completion while the
// workload is quiesced. Resolution is itself transactional, so the run
// drains back to zero in-flight transactions before returning.
func (e *Engine) sweepIntents() {
	if !e.sharded {
		return
	}
	done := false
	e.d.Env.Spawn("chaos-intent-sweep", func(p *sim.Proc) {
		_, _ = e.d.NS.ResolvePendingIntents(p)
		done = true
	})
	deadline := e.d.Env.Now() + e.cfg.AuditBudget
	for !done && e.d.Env.Now() < deadline {
		e.d.Env.RunFor(2 * time.Millisecond)
	}
}

// pausedTotal returns the total time spent in audit pauses so far.
func (e *Engine) pausedTotal() time.Duration {
	var total time.Duration
	for _, w := range e.pauses {
		total += w.To - w.From
	}
	return total
}

// pausedBetween returns how much of [from, to) the workload spent
// deliberately paused for audits.
func (e *Engine) pausedBetween(from, to time.Duration) time.Duration {
	var total time.Duration
	for _, w := range e.pauses {
		lo, hi := w.From, w.To
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if hi > lo {
			total += hi - lo
		}
	}
	return total
}

// quiesce pauses the agents and runs the simulation until in-flight
// operations, transactions, and row locks drain, within the audit budget.
func (e *Engine) quiesce() bool {
	e.paused = true
	env := e.d.Env
	deadline := env.Now() + e.cfg.AuditBudget
	for {
		if e.drained() {
			return true
		}
		if env.Now() >= deadline {
			return false
		}
		env.RunFor(2 * time.Millisecond)
	}
}

// drained reports whether no agent operation, transaction, or row lock is
// outstanding. Background elections keep running — their transactions are
// short, so the polling loop always finds a clean instant between rounds.
func (e *Engine) drained() bool {
	for _, a := range e.agents {
		if a.busy {
			return false
		}
	}
	for _, db := range e.dbs {
		if db.InFlightTxns() != 0 || len(db.HeldLocks()) != 0 {
			return false
		}
	}
	return true
}

func (e *Engine) snapshot(label string, newViol int) {
	now := e.d.Env.Now()
	ok := 0
	for _, r := range e.records {
		if r.Err == nil {
			ok++
		}
	}
	rate := 0.0
	// Rate over the time the workload was actually allowed to run: audit
	// pauses are not outages.
	if dt := now - e.lastSnap.at - e.pausedBetween(e.lastSnap.at, now); dt > 0 {
		rate = float64(ok-e.lastSnap.ok) / dt.Seconds()
	}
	live, total := 0, 0
	for _, db := range e.dbs {
		for _, dn := range db.DataNodes() {
			total++
			if dn.Alive() {
				live++
			}
		}
	}
	leaderID := 0
	if l := e.d.NS.ElectedLeader(); l != nil {
		leaderID = l.ID
	}
	e.snapshots = append(e.snapshots, Snapshot{
		Label: label, Now: now, OpsPerSec: rate,
		LiveNDB: live, TotalNDB: total, LeaderID: leaderID, NewViol: newViol,
	})
	e.lastSnap.at = now
	e.lastSnap.ok = ok
}

// spawnAgents starts the sole-mutator workload clients, spread over the
// deployment's zones.
func (e *Engine) spawnAgents() {
	zones := e.d.Net.Topology().Zones()
	aware := e.d.Setup.System == core.HopsFSCL
	singleZone := e.d.Setup.Zones == 1
	for i := 0; i < e.cfg.Clients; i++ {
		z := simnet.ZoneID(1 + i%zones)
		if singleZone {
			z = 2
		}
		domain := simnet.ZoneUnset
		if aware {
			domain = z
		}
		a := &agent{
			e:    e,
			idx:  i,
			cl:   e.d.NS.NewClient(z, simnet.HostID(9000+i), domain),
			rng:  rand.New(rand.NewSource(e.cfg.Seed*1_000_003 + int64(i)*7919 + 13)),
			dir:  fmt.Sprintf("/chaos/c%d", i),
			st:   make(map[string]pathState),
			byst: map[pathState][]string{},
		}
		if e.sharded {
			// A second directory whose partition key hashes independently:
			// renames into it cross the shard boundary whenever the two
			// directories land on different clusters, so sharded campaigns
			// exercise the two-shard commit path. Both directories belong
			// to this agent — the sole-mutator property is preserved.
			a.xdir = fmt.Sprintf("/chaos/m%d", i)
		}
		e.agents = append(e.agents, a)
		e.d.Env.Spawn(fmt.Sprintf("chaos-client-%d", i), a.run)
	}
}

// agent is one sole-mutator workload client: it mutates only its own
// directory and always creates fresh names, which is what makes the
// recorded history checkable (see history.go).
type agent struct {
	e   *Engine
	idx int
	cl  *namenode.Client
	rng *rand.Rand
	dir string
	// xdir is the agent's second directory, set only for sharded
	// deployments; some renames target it to cross the shard boundary.
	xdir string
	seq  int

	st   map[string]pathState
	byst map[pathState][]string

	busy     bool
	setup    bool
	setupErr error
}

func (a *agent) run(p *sim.Proc) {
	if err := a.cl.MkdirAll(p, a.dir); err != nil {
		a.setupErr = err
		return
	}
	if a.xdir != "" {
		if err := a.cl.MkdirAll(p, a.xdir); err != nil {
			a.setupErr = err
			return
		}
	}
	a.setup = true
	for !a.e.stopped {
		if a.e.paused {
			p.Sleep(time.Millisecond)
			continue
		}
		a.busy = true
		a.op(p)
		a.busy = false
		p.Sleep(a.e.cfg.OpGap)
	}
}

// op runs one randomly drawn operation and records it.
func (a *agent) op(p *sim.Proc) {
	r := a.rng.Float64()
	switch {
	case r < 0.28:
		a.create(p)
	case r < 0.42:
		a.remove(p)
	case r < 0.56:
		a.probe(p, "stat", stExists)
	case r < 0.64:
		a.probe(p, "statAbsent", stAbsent)
	case r < 0.78:
		a.probe(p, "read", stExists)
	case r < 0.90:
		a.list(p)
	default:
		a.rename(p)
	}
}

// record logs the finished operation and advances the agent's model using
// the same transition function the checker replays later.
func (a *agent) record(op, path, path2 string, invoke time.Duration, err error) {
	p := a.e.d.Env.Now()
	a.e.records = append(a.e.records, Record{
		Client: a.idx, Op: op, Path: path, Path2: path2,
		Invoke: invoke, Return: p, Err: err,
	})
	if op == "list" || op == "mkdir" {
		return
	}
	next, _ := transition(op, a.st[path], err)
	a.setState(path, next)
	if op == "rename" {
		a.setState(path2, renameDst(a.st[path2], err))
	}
}

func (a *agent) setState(path string, s pathState) {
	prev, known := a.st[path]
	if known && prev == s {
		return
	}
	if known {
		lst := a.byst[prev]
		for i, q := range lst {
			if q == path {
				a.byst[prev] = append(lst[:i], lst[i+1:]...)
				break
			}
		}
	}
	a.st[path] = s
	a.byst[s] = append(a.byst[s], path)
}

// pick returns a random path in the given state ("" if none).
func (a *agent) pick(s pathState) string {
	lst := a.byst[s]
	if len(lst) == 0 {
		return ""
	}
	return lst[a.rng.Intn(len(lst))]
}

func (a *agent) create(p *sim.Proc) {
	path := fmt.Sprintf("%s/f%06d", a.dir, a.seq)
	a.seq++
	invoke := p.Now()
	if a.e.cfg.LargeEvery > 0 && a.seq%a.e.cfg.LargeEvery == 0 {
		err := a.cl.WriteFile(p, path, a.e.cfg.LargeSize)
		p.Flush()
		a.record("write", path, "", invoke, err)
		return
	}
	err := a.cl.Create(p, path, 200)
	p.Flush()
	a.record("create", path, "", invoke, err)
}

func (a *agent) remove(p *sim.Proc) {
	path := a.pick(stExists)
	if path == "" {
		path = a.pick(stMaybe)
	}
	if path == "" {
		a.create(p)
		return
	}
	invoke := p.Now()
	err := a.cl.Delete(p, path, false)
	p.Flush()
	a.record("delete", path, "", invoke, err)
}

// probe runs a read-only check against a path in the wanted state: stat
// or read on a live file, or a stat on a definitely-deleted path (which
// must fail with ErrNotFound — returning data would mean reading dropped
// state).
func (a *agent) probe(p *sim.Proc, op string, want pathState) {
	path := a.pick(want)
	if path == "" && want == stExists {
		path = a.pick(stMaybe)
	}
	if path == "" {
		a.create(p)
		return
	}
	invoke := p.Now()
	var err error
	if op == "read" {
		_, err = a.cl.ReadFile(p, path)
	} else {
		_, err = a.cl.Stat(p, path)
	}
	p.Flush()
	a.record(op, path, "", invoke, err)
}

func (a *agent) list(p *sim.Proc) {
	invoke := p.Now()
	_, err := a.cl.List(p, a.dir)
	p.Flush()
	a.record("list", a.dir, "", invoke, err)
}

func (a *agent) rename(p *sim.Proc) {
	src := a.pick(stExists)
	if src == "" {
		a.create(p)
		return
	}
	dir := a.dir
	if a.xdir != "" && a.rng.Intn(2) == 1 {
		// Sharded deployments only: half the renames move into the second
		// directory, crossing the shard boundary when the two directories
		// hash to different clusters. The extra RNG draw happens only when
		// xdir is set, so unsharded campaigns keep their byte-identical
		// operation sequence.
		dir = a.xdir
	}
	dst := fmt.Sprintf("%s/r%06d", dir, a.seq)
	a.seq++
	invoke := p.Now()
	err := a.cl.Rename(p, src, dst)
	p.Flush()
	a.record("rename", src, dst, invoke, err)
}
