package chaos

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hopsfscl/internal/core"
	"hopsfscl/internal/slo"
	"hopsfscl/internal/workload"
)

// MTTREntry is the measured recovery time of one degrading fault: the gap
// between the injection and the first client operation that completed
// successfully afterwards.
type MTTREntry struct {
	Step Step
	At   time.Duration
	MTTR time.Duration
	// Recovered is false when no operation succeeded after the fault
	// (campaign ended first).
	Recovered bool
}

// DetectEntry is the measured detection time of one degrading fault: the
// gap between the injection and the first degrading SLO signal (a firing
// burn-rate alert or a worsening health transition) at or after it, net of
// audit pauses — the same workload-time base MTTR uses, so the two columns
// compare directly.
type DetectEntry struct {
	Step Step
	At   time.Duration
	TTD  time.Duration
	// Signal is the subject of the detecting event ("availability:99.9
	// [fast]", "ndb: healthy -> critical").
	Signal string
	// Detected is false when no degrading signal followed the fault before
	// the campaign ended; TTD then holds the censored bound.
	Detected bool
}

// Window is one unavailability window: a span during which no client
// operation completed successfully. Paused is how much of the span the
// workload was deliberately stopped for audits; Dur excludes it.
type Window struct {
	From, To time.Duration
	Paused   time.Duration
}

func (w Window) Dur() time.Duration { return w.To - w.From - w.Paused }

// Report is the full outcome of one chaos campaign. Same deployment seed,
// schedule, and config always produce a byte-identical Render().
type Report struct {
	Seed     int64
	Setup    string
	Schedule Schedule
	Start    time.Duration
	End      time.Duration

	Check       CheckResult
	Checkpoints int
	Violations  []Violation

	MTTR      []MTTREntry
	Unavail   []Window
	Snapshots []Snapshot
	Records   []Record

	// Detect and SLO are populated when an SLO engine was attached (see
	// Engine.AttachSLO): per-fault time-to-detect and the full alert/health
	// report.
	Detect []DetectEntry
	SLO    *slo.Report
}

// Clean reports whether the campaign finished with zero invariant
// violations and zero history violations.
func (r *Report) Clean() bool {
	return len(r.Violations) == 0 && len(r.Check.Violations) == 0
}

// TotalUnavailability sums the outage windows.
func (r *Report) TotalUnavailability() time.Duration {
	var t time.Duration
	for _, w := range r.Unavail {
		t += w.Dur()
	}
	return t
}

// MaxMTTR returns the longest measured recovery time.
func (r *Report) MaxMTTR() time.Duration {
	var m time.Duration
	for _, e := range r.MTTR {
		if e.Recovered && e.MTTR > m {
			m = e.MTTR
		}
	}
	return m
}

// report assembles the Report once the campaign has run.
func (e *Engine) report(start, end time.Duration) *Report {
	r := &Report{
		Seed:        e.cfg.Seed,
		Setup:       e.d.Setup.Name,
		Schedule:    e.sched,
		Start:       start,
		End:         end,
		Check:       CheckHistory(e.records),
		Checkpoints: e.aud.Checkpoints,
		Violations:  e.aud.Violations,
		Snapshots:   e.snapshots,
		Records:     e.records,
	}
	r.MTTR = e.mttr(end)
	r.Unavail = e.unavailability(start, end)
	if e.slo != nil {
		r.SLO = e.slo.Report(end)
		r.Detect = e.detect(r.SLO, end)
	}

	reg := e.d.Registry
	for _, rec := range e.records {
		switch {
		case rec.Err == nil:
			reg.Counter("chaos.ops", "outcome", "ok").Add(1)
		case indeterminate(rec.Err):
			reg.Counter("chaos.ops", "outcome", "indeterminate").Add(1)
		default:
			reg.Counter("chaos.ops", "outcome", "failed").Add(1)
		}
	}
	mt := reg.Timing("chaos.mttr")
	for _, m := range r.MTTR {
		if m.Recovered {
			mt.Observe(m.MTTR)
		}
	}
	tt := reg.Timing("chaos.ttd")
	for _, de := range r.Detect {
		if de.Detected {
			tt.Observe(de.TTD)
		}
	}
	ut := reg.Timing("chaos.unavailability")
	for _, w := range r.Unavail {
		ut.Observe(w.Dur())
	}
	reg.Counter("chaos.violations", "layer", "invariant").Add(int64(len(r.Violations)))
	reg.Counter("chaos.violations", "layer", "history").Add(int64(len(r.Check.Violations)))
	return r
}

// detect computes time-to-detect: for each degrading step, the delay until
// the first degrading SLO event (alert fire or worsening health
// transition) at or after the injection, net of audit pauses. Undetected
// faults report the censored bound to campaign end.
func (e *Engine) detect(sr *slo.Report, end time.Duration) []DetectEntry {
	var out []DetectEntry
	for _, m := range e.marks {
		entry := DetectEntry{Step: m.step, At: m.at}
		if ev, ok := sr.FirstDetection(m.at); ok {
			entry.TTD = ev.At - m.at - e.pausedBetween(m.at, ev.At)
			entry.Signal = ev.Subject
			entry.Detected = true
		} else {
			entry.TTD = end - m.at - e.pausedBetween(m.at, end)
		}
		out = append(out, entry)
	}
	return out
}

// mttr computes recovery times: for each degrading step, the delay until
// the first operation that completed successfully at or after injection.
func (e *Engine) mttr(end time.Duration) []MTTREntry {
	// Successful completion times in ascending order (records are appended
	// in completion order, so they already are).
	var oks []time.Duration
	for _, rec := range e.records {
		if rec.Err == nil {
			oks = append(oks, rec.Return)
		}
	}
	var out []MTTREntry
	for _, m := range e.marks {
		i := sort.Search(len(oks), func(i int) bool { return oks[i] >= m.at })
		entry := MTTREntry{Step: m.step, At: m.at}
		if i < len(oks) {
			entry.MTTR = oks[i] - m.at - e.pausedBetween(m.at, oks[i])
			entry.Recovered = true
		} else {
			entry.MTTR = end - m.at - e.pausedBetween(m.at, end)
		}
		out = append(out, entry)
	}
	return out
}

// unavailability finds the gaps between consecutive successful completions
// that exceed the configured threshold, net of the audit pauses (during
// which no operation could run by design).
func (e *Engine) unavailability(start, end time.Duration) []Window {
	prev := start
	var out []Window
	gap := func(to time.Duration) {
		paused := e.pausedBetween(prev, to)
		if to-prev-paused > e.cfg.GapThreshold {
			out = append(out, Window{From: prev, To: to, Paused: paused})
		}
	}
	for _, rec := range e.records {
		if rec.Err != nil {
			continue
		}
		if rec.Return < start {
			prev = rec.Return
			continue
		}
		gap(rec.Return)
		prev = rec.Return
	}
	gap(end)
	return out
}

// Render formats the report deterministically: same campaign, same bytes.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos campaign: setup=%s seed=%d steps=%d ops=%d span=%v\n",
		r.Setup, r.Seed, len(r.Schedule), r.Check.Ops, (r.End - r.Start).Round(time.Millisecond))
	fmt.Fprintf(&b, "  operations: ok=%d failed=%d indeterminate=%d\n",
		r.Check.OK, r.Check.Failed, r.Check.Indet)
	fmt.Fprintf(&b, "  history:    acked-writes-lost=%d stale-reads=%d\n",
		r.Check.AckedLost, r.Check.StaleReads)
	fmt.Fprintf(&b, "  invariants: checkpoints=%d violations=%d\n",
		r.Checkpoints, len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "    VIOLATION %s\n", v)
	}
	for _, v := range r.Check.Violations {
		fmt.Fprintf(&b, "    VIOLATION %s\n", v)
	}
	b.WriteString("  timeline:\n")
	for _, s := range r.Snapshots {
		fmt.Fprintf(&b, "    %8v  %-34s %7.0f ops/s  ndb %d/%d  leader nn-%d  viol %d\n",
			s.Now.Round(time.Millisecond), s.Label, s.OpsPerSec, s.LiveNDB, s.TotalNDB, s.LeaderID, s.NewViol)
	}
	if len(r.MTTR) > 0 {
		b.WriteString("  recovery (MTTR = first successful op after injection):\n")
		for _, m := range r.MTTR {
			state := "recovered"
			if !m.Recovered {
				state = "NOT RECOVERED"
			}
			fmt.Fprintf(&b, "    %8v  %-24s mttr=%-8v %s\n",
				m.At.Round(time.Millisecond), m.Step.Kind, m.MTTR.Round(time.Millisecond), state)
		}
	}
	if len(r.Detect) > 0 {
		b.WriteString("  detection (TTD = first degrading SLO signal after injection):\n")
		for _, de := range r.Detect {
			state := "detected"
			if !de.Detected {
				state = "NOT DETECTED"
			}
			fmt.Fprintf(&b, "    %8v  %-24s ttd=%-8v %-13s %s\n",
				de.At.Round(time.Millisecond), de.Step.Kind, de.TTD.Round(time.Millisecond), state, de.Signal)
		}
	}
	fmt.Fprintf(&b, "  unavailability: windows=%d total=%v\n",
		len(r.Unavail), r.TotalUnavailability().Round(time.Millisecond))
	for _, w := range r.Unavail {
		fmt.Fprintf(&b, "    %8v .. %8v  (%v)\n",
			w.From.Round(time.Millisecond), w.To.Round(time.Millisecond), w.Dur().Round(time.Millisecond))
	}
	if r.SLO != nil {
		fmt.Fprintf(&b, "  slo: pages=%d tickets=%d firing-at-end=%d cluster=%s events=%d\n",
			r.SLO.Pages(), r.SLO.Tickets(), r.SLO.Firing, r.SLO.Cluster, len(r.SLO.Events))
	}
	return b.String()
}

// CampaignOptions shape a RunCampaign deployment and schedule.
type CampaignOptions struct {
	// SetupName picks the paper setup (default "HopsFS-CL (3,3)").
	SetupName string
	// Faults is the number of degrading faults to generate (default 5).
	Faults int
	// CampaignLen spaces the generated faults (default 30s).
	CampaignLen time.Duration
	// Schedule overrides generation with an explicit schedule.
	Schedule Schedule
	// Engine overrides the engine defaults.
	Engine Config
	// SLO enables the live SLO engine on the deployment and attaches it to
	// the campaign: the report then carries time-to-detect per fault and
	// the alert/health timeline. SLOSpec overrides the evaluated spec (zero
	// value = slo.DefaultSpec).
	SLO     bool
	SLOSpec slo.Spec
	// Shards is the number of independent NDB clusters the namespace is
	// sharded across (0 or 1 = the classic single-cluster deployment). The
	// generated campaign then targets datanodes on every shard, and the
	// workload includes cross-shard renames.
	Shards int
}

// RunCampaign builds a fresh deployment, generates (or takes) a fault
// schedule for the seed, runs the campaign, and returns the report. The
// deployment is closed before returning.
func RunCampaign(seed int64, opts CampaignOptions) (*Report, error) {
	name := opts.SetupName
	if name == "" {
		name = "HopsFS-CL (3,3)"
	}
	setup, ok := core.SetupByName(name)
	if !ok {
		return nil, fmt.Errorf("chaos: unknown setup %q", name)
	}
	o := core.DefaultOptions(setup)
	o.MetadataServers = 3
	o.ClientsPerServer = 0
	o.StorageNodes = 6
	o.PartitionsPerTable = 8
	o.WithBlockLayer = true
	o.BlockDataNodes = 9
	o.Namespace = workload.NamespaceSpec{TopDirs: 2, SubDirs: 2, FilesPerDir: 4}
	o.Seed = seed
	o.Shards = opts.Shards
	d, err := core.Build(o)
	if err != nil {
		return nil, err
	}
	defer d.Close()

	sched := opts.Schedule
	if len(sched) == 0 {
		n := opts.Faults
		if n <= 0 {
			n = 5
		}
		dur := opts.CampaignLen
		if dur <= 0 {
			dur = 30 * time.Second
		}
		sched = Generate(d, seed, dur, n)
	}
	cfg := opts.Engine
	if cfg.Seed == 0 {
		cfg.Seed = seed
	}
	eng, err := NewEngine(d, sched, cfg)
	if err != nil {
		return nil, err
	}
	if opts.SLO {
		eng.AttachSLO(d.EnableSLO(opts.SLOSpec))
	}
	rep, err := eng.Run()
	if err != nil {
		return nil, err
	}
	rep.Seed = seed
	return rep, nil
}
