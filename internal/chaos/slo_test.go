package chaos

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// renderDetection flattens the SLO-dependent slice of a campaign report —
// per-fault time-to-detect plus the full alert/health event log — into the
// stable text form the golden file pins.
func renderDetection(rep *Report) string {
	var b strings.Builder
	b.WriteString("detection:\n")
	for _, de := range rep.Detect {
		state := "detected"
		if !de.Detected {
			state = "NOT-DETECTED"
		}
		fmt.Fprintf(&b, "  %8v  %-12s ttd=%-10v %-13s %s\n",
			de.At, de.Step.Kind, de.TTD, state, de.Signal)
	}
	b.WriteString("events:\n")
	for _, ev := range rep.SLO.Events {
		b.WriteString("  " + ev.String() + "\n")
	}
	return b.String()
}

// TestDetectionCampaignGolden runs the canonical three-class detection
// schedule under the live SLO engine and pins the resulting alert log and
// time-to-detect table byte-for-byte. Re-generate with `go test -run
// DetectionCampaignGolden -update` after an intentional behavior change.
func TestDetectionCampaignGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full detection campaign in -short mode")
	}
	rep, err := RunCampaign(1, CampaignOptions{Schedule: DetectionSchedule(), SLO: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("campaign not clean:\n%s", rep.Render())
	}

	// Acceptance gate: the campaign must report a measured (non-censored)
	// time-to-detect for all three fault classes.
	wantKinds := map[FaultKind]bool{FaultCrashDN: false, FaultPartition: false, FaultSlowLink: false}
	for _, de := range rep.Detect {
		if _, ok := wantKinds[de.Step.Kind]; !ok {
			continue
		}
		if !de.Detected {
			t.Errorf("%s not detected (censored ttd=%v)", de.Step.Kind, de.TTD)
			continue
		}
		if de.TTD < 0 || de.TTD > 30*time.Second {
			t.Errorf("%s ttd=%v out of range", de.Step.Kind, de.TTD)
		}
		wantKinds[de.Step.Kind] = true
	}
	for kind, seen := range wantKinds {
		if !seen {
			t.Errorf("no detection entry for fault class %s:\n%s", kind, rep.Render())
		}
	}
	if rep.SLO == nil || len(rep.SLO.Events) == 0 {
		t.Fatal("campaign produced no SLO events")
	}

	got := renderDetection(rep)
	golden := filepath.Join("testdata", "detection_seed1.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("detection output drifted from golden (run with -update if intended):\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestDetectionCampaignDeterminism re-runs the same seeded campaign and
// demands a byte-identical alert log — the property the golden file (and
// any TTD comparison across code versions) rests on.
func TestDetectionCampaignDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full detection campaign in -short mode")
	}
	run := func() string {
		rep, err := RunCampaign(3, CampaignOptions{Schedule: DetectionSchedule(), SLO: true})
		if err != nil {
			t.Fatal(err)
		}
		return renderDetection(rep)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different detection output:\n%s\nvs\n%s", a, b)
	}
}
