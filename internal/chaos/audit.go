package chaos

import (
	"fmt"
	"sort"
	"time"

	"hopsfscl/internal/blocks"
	"hopsfscl/internal/core"
	"hopsfscl/internal/ndb"
)

// Violation is one observed invariant breach.
type Violation struct {
	Invariant string
	Detail    string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// Auditor verifies cross-layer invariants over a quiesced deployment. It
// inspects storage, namespace, and block-layer state directly (outside the
// simulated network), so callers must drain the workload first — the
// engine's checkpoint path does.
type Auditor struct {
	d *core.Deployment
	// dbs are the NDB clusters in shard order; lastDurable tracks each
	// shard's durable epoch independently (the clusters checkpoint on
	// their own cadences).
	dbs         []*ndb.Cluster
	lastDurable []uint64

	// Checkpoints counts completed audits; Violations accumulates every
	// breach found across them.
	Checkpoints int
	Violations  []Violation
}

// NewAuditor returns an auditor over the deployment. All invariants run
// per NDB cluster, so a sharded deployment is audited shard by shard with
// the same checks an unsharded one gets.
func NewAuditor(d *core.Deployment) *Auditor {
	a := &Auditor{d: d, dbs: d.MetaClusters()}
	a.lastDurable = make([]uint64, len(a.dbs))
	for i, db := range a.dbs {
		a.lastDurable[i] = db.DurableEpoch()
	}
	return a
}

// Check runs one audit checkpoint and returns the newly found violations.
// quiesced means the workload drained cleanly (in-flight transactions and
// row locks are checked only then, since a live transaction legitimately
// holds both). settled means no fault is active and failure detection,
// re-election, and re-replication have had time to converge — the
// conditions under which leader uniqueness and orphan reclamation must
// hold.
func (a *Auditor) Check(now time.Duration, quiesced, settled bool) []Violation {
	var out []Violation
	add := func(invariant, format string, args ...any) {
		out = append(out, Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
	}
	for s := range a.dbs {
		a.checkNDB(add, s, quiesced)
	}
	a.checkIntents(add, quiesced, settled)
	a.checkBlocks(add, now, settled)
	a.checkLeader(add, settled)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Invariant != out[j].Invariant {
			return out[i].Invariant < out[j].Invariant
		}
		return out[i].Detail < out[j].Detail
	})
	a.Checkpoints++
	a.Violations = append(a.Violations, out...)
	return out
}

type addFn func(invariant, format string, args ...any)

// checkNDB verifies one shard's storage layer: every node group keeps at
// least one live member, every partition keeps a live primary from its own
// group, the durable epoch never regresses, and a drained cluster holds no
// locks or half-open transactions. Violation details name the shard only
// on sharded deployments, so unsharded audit output is unchanged.
func (a *Auditor) checkNDB(add addFn, s int, quiesced bool) {
	db := a.dbs[s]
	at := ""
	if len(a.dbs) > 1 {
		at = fmt.Sprintf(" [shard %d]", s)
	}
	for gi, group := range db.NodeGroups() {
		alive := 0
		for _, dn := range group {
			if dn.Alive() {
				alive++
			}
		}
		if alive == 0 {
			add("ndb-group-liveness", "node group %d has no live member: its partitions are gone%s", gi, at)
		}
	}
	for _, t := range db.Tables() {
		for _, part := range t.Partitions() {
			reps := part.Replicas()
			if len(reps) == 0 {
				add("ndb-partition-replicas", "table %s partition %d has no live replica%s", t.Name(), part.Index(), at)
				continue
			}
			for _, dn := range reps {
				if !dn.Alive() {
					add("ndb-partition-replicas", "table %s partition %d lists dead replica ndb-%d%s",
						t.Name(), part.Index(), dn.Index+1, at)
				}
				if dn.Group != part.Group() && !t.Options().FullyReplicated {
					add("ndb-partition-replicas", "table %s partition %d served by ndb-%d of group %d, want group %d%s",
						t.Name(), part.Index(), dn.Index+1, dn.Group, part.Group(), at)
				}
			}
		}
	}
	cur, dur := db.CurrentEpoch(), db.DurableEpoch()
	if dur < a.lastDurable[s] {
		add("gcp-durable-monotonic", "durable epoch regressed from %d to %d%s", a.lastDurable[s], dur, at)
	}
	a.lastDurable[s] = dur
	if cur <= dur {
		add("gcp-epoch-order", "current epoch %d not ahead of durable epoch %d%s", cur, dur, at)
	}
	if quiesced {
		if n := db.InFlightTxns(); n != 0 {
			add("txn-quiescence", "%d transactions still in flight after drain%s", n, at)
		}
		for _, row := range db.HeldLocks() {
			add("lock-leak", "row %s still locked after drain%s", row, at)
		}
	}
}

// checkIntents verifies that no durable cross-shard intent survives a
// quiesced sweep: the engine resolves pending intents before auditing, so
// anything still in the intent tables means an unrecoverable half-commit.
// Meaningful only once settled — while a fault is active, the sweeper may
// legitimately be unable to reach the shard holding an intent's rows.
// Unsharded deployments have no intent tables and always pass.
func (a *Auditor) checkIntents(add addFn, quiesced, settled bool) {
	if !quiesced || !settled || a.d.NS == nil || len(a.dbs) <= 1 {
		return
	}
	if n := a.d.NS.PendingIntents(); n != 0 {
		add("intent-resolution", "%d cross-shard intents still pending after quiesced sweep", n)
	}
}

// checkBlocks verifies the §IV-C block guarantees and namespace agreement:
// every committed block keeps at least one replica per live AZ or is
// queued for re-replication, block data survives somewhere, no inode
// points at a deleted block, and (once settled) no orphan outlives the
// reclamation grace.
func (a *Auditor) checkBlocks(add addFn, now time.Duration, settled bool) {
	mgr := a.d.Blocks
	if mgr == nil || a.d.NS == nil || mgr.ObjectStore() != nil {
		return
	}
	under := make(map[blocks.BlockID]bool)
	for _, b := range mgr.UnderReplicated() {
		under[b.ID] = true
	}
	refs := a.d.NS.ReferencedBlocks()
	liveDNs := 0
	for _, dn := range mgr.DataNodes() {
		if dn.Node.Alive() {
			liveDNs++
		}
	}
	want := mgr.Replication()
	if liveDNs < want {
		want = liveDNs
	}
	for _, b := range mgr.Blocks() {
		if b.InObjectStore() {
			continue
		}
		locs := b.Locations()
		if len(locs) == 0 {
			held := false
			for _, dn := range mgr.DataNodes() {
				if dn.HoldsBlock(b.ID) {
					held = true
					break
				}
			}
			if !held {
				add("block-durability", "block %d has no replica on any datanode, live or down", b.ID)
			}
		}
		if (len(locs) < want || mgr.SpreadViolated(b)) && !under[b.ID] {
			add("block-az-spread", "block %d violates placement and is not queued for re-replication", b.ID)
		}
	}
	danglers := make([]blocks.BlockID, 0)
	for id := range refs {
		if _, ok := mgr.Block(id); !ok {
			danglers = append(danglers, id)
		}
	}
	sort.Slice(danglers, func(i, j int) bool { return danglers[i] < danglers[j] })
	for _, id := range danglers {
		add("ns-block-dangling", "an inode references deleted block %d", id)
	}
	if settled && mgr.OrphanGrace() > 0 {
		for _, b := range mgr.Blocks() {
			if !refs[b.ID] && now-b.Created > mgr.OrphanGrace()+3*time.Second {
				add("block-orphan", "unreferenced block %d outlived the reclamation grace", b.ID)
			}
		}
	}
}

// checkLeader verifies exactly one elected leader among live metadata
// servers. Meaningful only once settled: during partitions or within an
// election-expiry window of a fault, views legitimately diverge.
func (a *Auditor) checkLeader(add addFn, settled bool) {
	ns := a.d.NS
	if ns == nil || !settled {
		return
	}
	alive, leaders := 0, 0
	ids := ""
	for _, nn := range ns.NameNodes() {
		if !nn.Alive() {
			continue
		}
		alive++
		if nn.IsLeader() {
			leaders++
			ids += fmt.Sprintf(" nn-%d", nn.ID)
		}
	}
	if alive > 0 && leaders != 1 {
		add("leader-uniqueness", "%d leaders among %d live metadata servers:%s", leaders, alive, ids)
	}
}
