package bench

import (
	"fmt"
	"strings"
	"time"

	"hopsfscl/internal/core"
	"hopsfscl/internal/heat"
	"hopsfscl/internal/profile"
	"hopsfscl/internal/slo"
	"hopsfscl/internal/trace"
)

// hotspotHomeDirs is how many of the namespace's leaf datasets get
// planted as every client's home set (see Hotspot).
const hotspotHomeDirs = 2

// Hotspot drives a deliberately skewed workload — every client shares the
// same two planted home datasets at high affinity — and demonstrates the
// heat-and-exemplar observability layer end to end: the Space-Saving
// sketches must rank the planted subtrees first at every depth, every op
// class whose window p99 breached its objective must have a pinned
// exemplar, and the slowest exemplar's span tree renders through the
// critical-path profiler. The whole run is virtual-time deterministic: the
// same seed reproduces the same report bytes.
func Hotspot(o ExpOptions) (string, error) {
	setup := core.PaperSetups[5] // HopsFS-CL (3,3)
	servers := 3
	clients := o.ClientsPerServer
	if clients <= 0 {
		clients = 32
	}

	opts := core.DefaultOptions(setup)
	opts.MetadataServers = servers
	opts.ClientsPerServer = clients
	opts.Seed = o.Seed
	d, err := core.Build(opts)
	if err != nil {
		return "", err
	}
	defer d.Close()

	// Plant the hot set: the first client's default datasets become every
	// client's home directories. Both live under the same project root, so
	// the depth-1 subtree is unambiguous.
	planted := d.Namespace.HomeDirsFor(0, hotspotHomeDirs)
	if len(planted) == 0 {
		return "", fmt.Errorf("hotspot: namespace has no leaf datasets to plant")
	}
	plantedTop := topDirOf(planted[0])

	cfg := DefaultRunConfig()
	cfg.Seed = o.Seed
	cfg.Affinity = 0.9
	cfg.HomeDirs = planted
	cfg.Heat = true
	cfg.Exemplars = true // implies Profile + SLO
	// Tighten the latency objectives well below healthy cross-AZ operation:
	// the point of this experiment is inducing p99 breaches so the exemplar
	// store has outliers to pin, not passing the SLO.
	cfg.SLOSpec = slo.DefaultSpec()
	cfg.SLOSpec.Latency = []slo.LatencyObjective{
		{Op: "stat", Quantile: 0.99, Target: 1200 * time.Microsecond},
		{Op: "read", Quantile: 0.99, Target: 1500 * time.Microsecond},
		{Op: "list", Quantile: 0.99, Target: 2 * time.Millisecond},
		{Op: "*", Quantile: 0.99, Target: 3 * time.Millisecond},
	}
	// A short exemplar window yields a window-slowest exemplar per ~25ms
	// of virtual time instead of one for the whole run.
	cfg.ExemplarConfig.Window = 25 * time.Millisecond
	if o.Full {
		cfg.Window = 300 * time.Millisecond
	}

	res := Run(d, cfg)

	var b strings.Builder
	fmt.Fprintf(&b, "hotspot: skewed workload on %s, %d servers x %d clients, seed %d\n",
		setup.Name, servers, clients, o.Seed)
	fmt.Fprintf(&b, "planted hot datasets (affinity %.0f%% for every client): %s\n\n",
		cfg.Affinity*100, strings.Join(planted, ", "))

	// 1. Heat ranking, with explicit planted-subtree assertions.
	b.WriteString(res.Heat.Render())
	b.WriteByte('\n')
	b.WriteString(renderPlantedRanks(res.Heat, plantedTop, planted))

	// 2. Per-op-class p99-breach exemplar coverage.
	b.WriteByte('\n')
	b.WriteString(renderBreachCoverage(res))

	// 3. The pinned exemplar set, plus the slowest exemplar rendered
	// through the critical-path profiler.
	b.WriteByte('\n')
	b.WriteString(res.Exemplars.Render())
	if ex := slowestExemplar(res.Exemplars); ex != nil {
		fmt.Fprintf(&b, "\nwhere the time went in the slowest exemplar (op %s, %v, span %d):\n",
			ex.Op, ex.Latency, ex.Root.ID)
		b.WriteString(profile.Analyze([]*trace.Span{ex.Root}).Table())
	}

	// 4. Span-loss accounting: exemplar claims are only trustworthy when
	// no spans were silently evicted.
	if res.SinkDropped > 0 {
		fmt.Fprintf(&b, "\nWARNING: %d spans dropped from the profiling sink; exemplars cover a suffix of the window\n",
			res.SinkDropped)
	} else {
		b.WriteString("\nsink dropped: 0 (exemplars saw every operation in the window)\n")
	}
	return b.String(), nil
}

// topDirOf returns the first path component ("/proj000/ds01" -> "/proj000").
func topDirOf(path string) string {
	if len(path) < 2 || path[0] != '/' {
		return path
	}
	if i := strings.IndexByte(path[1:], '/'); i >= 0 {
		return path[:i+1]
	}
	return path
}

// renderPlantedRanks checks the planted subtrees against the heat report:
// the shared project root must rank first at depth 1 and the planted
// datasets must fill the top ranks at depth 2.
func renderPlantedRanks(rep *heat.Report, top string, planted []string) string {
	var b strings.Builder
	b.WriteString("planted-subtree ranking check:\n")
	check := func(family, key string, wantWithin int) {
		rank, row := rep.Rank(family, key)
		verdict := "FAIL"
		if rank >= 1 && rank <= wantWithin {
			verdict = "OK"
		}
		fmt.Fprintf(&b, "  %s %q: rank %d (share %.1f%%, want <=%d) %s\n",
			family, key, rank, row.Share*100, wantWithin, verdict)
	}
	check("subtree depth 1", top, 1)
	for _, dir := range planted {
		check("subtree depth 2", dir, len(planted))
	}
	return b.String()
}

// renderBreachCoverage lists every op class whose measured window p99
// exceeded its latency objective and whether a breach exemplar was pinned
// for it — the acceptance criterion that no breaching class goes dark.
func renderBreachCoverage(res *Result) string {
	var b strings.Builder
	b.WriteString("p99-breach exemplar coverage:\n")
	spec := res.SLOReport.Spec
	targets := make(map[string]time.Duration)
	var fallback time.Duration
	for _, lo := range spec.Latency {
		if lo.Op == "*" {
			fallback = lo.Target
		} else {
			targets[lo.Op] = lo.Target
		}
	}
	breaching := 0
	for _, opr := range res.SLOReport.Ops {
		target, ok := targets[opr.Op]
		if !ok {
			target = fallback
		}
		if target <= 0 {
			continue
		}
		p99 := opr.Summary.Percentile(0.99)
		if p99 <= target {
			continue
		}
		breaching++
		covered := false
		if c := res.Exemplars.Class(opr.Op); c != nil {
			for _, ex := range c.Exemplars {
				if ex.Reason&slo.ReasonBreach != 0 {
					covered = true
					break
				}
			}
		}
		verdict := "MISSING"
		if covered {
			verdict = "pinned"
		}
		fmt.Fprintf(&b, "  op %-8s p99 %v > target %v: breach exemplar %s\n",
			opr.Op, p99, target, verdict)
	}
	if breaching == 0 {
		b.WriteString("  (no op class breached its p99 objective in this window)\n")
	}
	return b.String()
}

// slowestExemplar returns the highest-latency pinned exemplar.
func slowestExemplar(rep *slo.ExemplarReport) *slo.Exemplar {
	if rep == nil {
		return nil
	}
	var best *slo.Exemplar
	for _, c := range rep.Classes {
		for _, ex := range c.Exemplars {
			if best == nil || ex.Latency > best.Latency ||
				(ex.Latency == best.Latency && ex.Root.ID < best.Root.ID) {
				best = ex
			}
		}
	}
	return best
}
