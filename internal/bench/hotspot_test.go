package bench

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestHotspotPlantedRankingAndExemplars runs the skewed-workload experiment
// once and checks the acceptance criteria from the report text itself: the
// planted subtrees pass every ranking check, at least one exemplar is
// pinned, and no p99-breaching op class is missing a breach exemplar.
func TestHotspotPlantedRankingAndExemplars(t *testing.T) {
	out, err := Hotspot(ExpOptions{Seed: 1})
	if err != nil {
		t.Fatalf("Hotspot: %v", err)
	}
	if strings.Contains(out, "FAIL") {
		t.Errorf("planted-subtree ranking check failed:\n%s", out)
	}
	if !strings.Contains(out, `subtree depth 1 "/proj000": rank 1`) {
		t.Errorf("planted top-level subtree not ranked #1:\n%s", out)
	}
	m := regexp.MustCompile(`exemplars: (\d+) pinned`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no exemplar summary line in report:\n%s", out)
	}
	if n, _ := strconv.Atoi(m[1]); n < 1 {
		t.Errorf("want >=1 pinned exemplar, got %d", n)
	}
	if strings.Contains(out, "MISSING") {
		t.Errorf("a p99-breaching op class has no breach exemplar:\n%s", out)
	}
	if !strings.Contains(out, "where the time went in the slowest exemplar") {
		t.Errorf("slowest exemplar not rendered through the profiler:\n%s", out)
	}
}

// TestHotspotDeterministic pins run-to-run reproducibility: the same seed
// must yield byte-identical reports.
func TestHotspotDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full hotspot runs in -short mode")
	}
	a, err := Hotspot(ExpOptions{Seed: 2})
	if err != nil {
		t.Fatalf("Hotspot run 1: %v", err)
	}
	b, err := Hotspot(ExpOptions{Seed: 2})
	if err != nil {
		t.Fatalf("Hotspot run 2: %v", err)
	}
	if a != b {
		t.Errorf("hotspot report not deterministic for seed 2:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}
