package bench

import (
	"fmt"
	"strings"
	"time"

	"hopsfscl/internal/core"
	"hopsfscl/internal/metrics"
	"hopsfscl/internal/trace"
)

// The shard sweep holds the offered load fixed — the same metadata-server
// and client counts at every point — and varies only Options.Shards, so
// any throughput change is attributable to namespace sharding alone. Each
// shard is a deliberately small NDB cluster (one node group) whose ceiling
// the fixed load overruns: the single-shard point sits on the storage
// plateau the paper's single-cluster deployments hit at scale, and extra
// shards add whole clusters of capacity under the same namespace.
const (
	shardSweepServers    = 24
	shardSweepClients    = 128
	shardSweepStorageDNs = 3
	shardSweepPartitions = 24
)

// shardSweepCounts returns the swept shard counts.
func shardSweepCounts(o ExpOptions) []int {
	if o.Full {
		return []int{1, 2, 4, 8}
	}
	return []int{1, 2, 4}
}

// ShardSweepOptions returns the deployment options of one sweep point:
// HopsFS-CL (3,3) with the sweep's fixed server/client load and
// shardSweepStorageDNs datanodes per shard. The default client count must
// overrun one shard's ceiling, or the sweep measures closed-loop latency
// instead of the plateau. Exported for the CI smoke test, which runs
// 2-vs-1 shards under a shortened measurement.
func ShardSweepOptions(o ExpOptions, servers, shards int) core.Options {
	opts := core.DefaultOptions(core.PaperSetups[5]) // HopsFS-CL (3,3)
	opts.MetadataServers = servers
	opts.ClientsPerServer = shardSweepClients
	if o.ClientsPerServer > 0 {
		opts.ClientsPerServer = o.ClientsPerServer
	}
	opts.StorageNodes = shardSweepStorageDNs
	opts.PartitionsPerTable = shardSweepPartitions
	opts.Shards = shards
	opts.Seed = o.Seed
	return opts
}

// MeasureShards builds and measures one shard-sweep point.
func MeasureShards(o ExpOptions, servers, shards int) (*Result, error) {
	d, err := core.Build(ShardSweepOptions(o, servers, shards))
	if err != nil {
		return nil, err
	}
	defer d.Close()
	return Run(d, runConfigFor(o)), nil
}

// ShardSweep sweeps the shard count at fixed offered load: throughput,
// latency, and CPU per point, the 4-vs-1-shard scaling factor against the
// 1.8x acceptance floor, and the cost of the cross-shard rename path
// (ordered two-cluster commits) reported separately from the shard-local
// fast path.
func ShardSweep(o ExpOptions) (string, error) {
	counts := shardSweepCounts(o)
	results := make(map[int]*Result, len(counts))
	cfg := runConfigFor(o)
	for _, shards := range counts {
		res, err := MeasureShards(o, shardSweepServers, shards)
		if err != nil {
			return "", fmt.Errorf("shardsweep @%d shards: %w", shards, err)
		}
		results[shards] = res
		recordPoint(fmt.Sprintf("%s [%d shards]", core.PaperSetups[5].Name, shards),
			shardSweepServers, o, cfg, res)
	}

	clients := o.ClientsPerServer
	if clients <= 0 {
		clients = shardSweepClients
	}
	var b strings.Builder
	fmt.Fprintf(&b, "shard sweep: namespace hash-sharded across independent NDB clusters, HopsFS-CL (3,3)\n")
	fmt.Fprintf(&b, "fixed offered load: %d metadata servers x %d clients; %d datanodes (one node group) per shard\n\n",
		shardSweepServers, shardSweepServers*clients, shardSweepStorageDNs)

	base := results[counts[0]].Throughput
	tbl := metrics.NewTable("shards", "ops/s", "vs 1 shard", "avg latency", "p99", "storage CPU", "server CPU")
	for _, n := range counts {
		r := results[n]
		tbl.AddRow(fmt.Sprintf("%d", n),
			metrics.FormatOps(r.Throughput),
			fmt.Sprintf("%.2fx", r.Throughput/base),
			fmtMS(r.AvgLatency), fmtMS(r.P99),
			fmt.Sprintf("%.0f%%", r.StorageCPU*100),
			fmt.Sprintf("%.0f%%", r.ServerCPU*100))
	}
	b.WriteString(tbl.String())

	if r4, ok := results[4]; ok {
		scale := r4.Throughput / base
		verdict := "PASS"
		if scale < 1.8 {
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "scaling at 4 shards: %.2fx over the single-cluster plateau (floor 1.8x) %s\n", scale, verdict)
	}

	// The cross-shard rename path, reported separately: how many commits
	// left the single-cluster fast path, and what the ordered two-cluster
	// protocol cost them. Aborts and indeterminate outcomes stay zero on a
	// healthy sweep — they only appear under faults (see the chaos suite).
	b.WriteString("\ncross-shard commit cost (two-cluster ordered commit vs shard-local fast path):\n")
	ctbl := metrics.NewTable("shards", "local txns", "cross txns", "cross share",
		"cross commit mean", "cross commit max", "aborts", "indeterminate")
	for _, n := range counts {
		reg := results[n].Registry
		local, _ := trace.Lookup(reg, "shard.txn.local")
		cross, _ := trace.Lookup(reg, "shard.txn.cross")
		aborts, _ := trace.Lookup(reg, "shard.txn.cross_aborts")
		indet, _ := trace.Lookup(reg, "shard.txn.cross_indeterminate")
		count, _ := trace.Lookup(reg, "shard.txn.cross_commit.count")
		sum, _ := trace.Lookup(reg, "shard.txn.cross_commit.sum_ns")
		maxNS, _ := trace.Lookup(reg, "shard.txn.cross_commit.max_ns")
		if n == 1 {
			ctbl.AddRow("1", "-", "-", "-", "-", "-", "-", "-")
			continue
		}
		mean := time.Duration(0)
		if count > 0 {
			mean = time.Duration(sum / count)
		}
		share := "-"
		if local+cross > 0 {
			share = fmt.Sprintf("%.2f%%", cross/(local+cross)*100)
		}
		ctbl.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", local), fmt.Sprintf("%.0f", cross), share,
			fmtMS(mean), fmtMS(time.Duration(maxNS)),
			fmt.Sprintf("%.0f", aborts), fmt.Sprintf("%.0f", indet))
	}
	b.WriteString(ctbl.String())
	return b.String(), nil
}
