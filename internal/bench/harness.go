// Package bench is the experiment harness of the reproduction: it drives
// closed-loop benchmark clients against a deployment (the methodology of
// the paper's benchmarking tool [23]) and captures every signal the paper
// plots — throughput, end-to-end latency percentiles, per-server request
// rates, CPU utilization per layer and per NDB thread type, network and
// disk utilization, and per-partition replica read counts.
package bench

import (
	"errors"
	"time"

	"hopsfscl/internal/core"
	"hopsfscl/internal/heat"
	"hopsfscl/internal/metrics"
	"hopsfscl/internal/ndb"
	"hopsfscl/internal/profile"
	"hopsfscl/internal/sim"
	"hopsfscl/internal/slo"
	"hopsfscl/internal/trace"
	"hopsfscl/internal/workload"
)

// RunConfig controls one measurement.
type RunConfig struct {
	// Warmup is the minimum unrecorded run-in (queue fill).
	Warmup time.Duration
	// MaxWarmup bounds the adaptive warm-up extension.
	MaxWarmup time.Duration
	// WarmOpsPerClient extends the warm-up until every client has
	// averaged this many operations — client-side caches (CephFS kernel
	// caches, NN hint caches) must be warm before measuring, as they are
	// in the paper's minutes-long runs.
	WarmOpsPerClient int
	// Window is the recorded measurement interval.
	Window time.Duration
	// Mix selects the operation distribution (Spotify or a micro mix).
	Mix workload.Mix
	// Affinity overrides the clients' dataset-affinity probability
	// (0 = the ClientAffinity default). Micro-benchmarks use 1.0: the
	// paper's tool re-reads each thread's own file set.
	Affinity float64
	// Seed feeds the generator.
	Seed int64
	// Profile enables detailed span capture and contention accounting over
	// the measurement window: the Result gains a critical-path attribution
	// report and the deployment's contention ledger, both reset at window
	// start. Tracing adds no randomness, so enabling it does not perturb
	// the measured schedule.
	Profile bool
	// SLO enables the live SLO engine for the run: the Result gains an
	// SLOReport with rolling per-op percentiles, the alert log, and the
	// closing health state. SLOSpec overrides the evaluated spec (zero
	// value = slo.DefaultSpec).
	SLO     bool
	SLOSpec slo.Spec
	// Heat enables namespace heat tracking from warm-up start (the decayed
	// sketches converge to the steady-state ranking): the Result gains a
	// heat.Report of the hottest subtrees, inodes, tables, and partitions.
	// HeatConfig overrides the sketch parameters (zero = heat defaults).
	Heat       bool
	HeatConfig heat.Config
	// Exemplars enables tail-based exemplar capture over the measurement
	// window; implies Profile (exemplars are detailed span trees) and SLO
	// (breach and burn gating need objectives). The Result gains an
	// ExemplarReport of pinned outlier traces. ExemplarConfig overrides
	// the store bounds (zero = slo defaults).
	Exemplars      bool
	ExemplarConfig slo.ExemplarConfig
	// HomeDirs overrides every client's home-directory set with the same
	// planted directories — the hotspot experiment's skew source (nil
	// keeps the default per-client assignment).
	HomeDirs []string
}

// ProfileSinkCap bounds the spans retained for a profiled window. When the
// window completes more operations than this, the report covers the most
// recent ProfileSinkCap and Result.SinkDropped says how many were evicted.
const ProfileSinkCap = 32 << 10

// DefaultRunConfig returns the quick-run measurement parameters. The paper
// measures minutes of wall clock; in virtual time a few hundred
// milliseconds of steady state gives stable rates at a fraction of the
// simulation cost.
func DefaultRunConfig() RunConfig {
	return RunConfig{
		Warmup:           80 * time.Millisecond,
		MaxWarmup:        4 * time.Second,
		WarmOpsPerClient: 120,
		Window:           200 * time.Millisecond,
		Mix:              workload.SpotifyMix,
		Seed:             1,
	}
}

// PartitionReads is the Figure 14 measurement for one partition.
type PartitionReads struct {
	Index  int
	Counts []int64
}

// Result is one measured configuration.
type Result struct {
	Setup   string
	Servers int
	Window  time.Duration

	// Ops and Errors are client-side completions in the window.
	Ops    int64
	Errors int64
	// Throughput is client ops per second.
	Throughput float64

	// Latency distribution of client-observed end-to-end operation times.
	AvgLatency time.Duration
	P50, P90   time.Duration
	P99        time.Duration

	// ServerRequestRate is the mean per-server rate of requests that
	// actually reached a metadata server (cache hits excluded) — Fig 6.
	ServerRequestRate float64

	// ServerCPU and StorageCPU are mean utilizations (0..1) — Fig 10.
	ServerCPU  float64
	StorageCPU float64

	// ThreadCPU is utilization per NDB thread type (HopsFS only) — Fig 11.
	ThreadCPU map[string]float64

	// Per-node I/O rates in bytes/second — Figs 12 and 13.
	StorageNetRead, StorageNetWrite   float64
	StorageDiskRead, StorageDiskWrite float64
	ServerNetRead, ServerNetWrite     float64

	// CrossZoneRate is bytes/second crossing AZ boundaries (§V-E's
	// motivation: minimize cross-AZ traffic).
	CrossZoneRate float64

	// ReadSlots is the per-partition replica read split of the inode
	// table (HopsFS only) — Fig 14.
	ReadSlots []PartitionReads

	// Registry is the deployment registry delta over the measurement
	// window: per-op latency/error/byte counters, 2PC phase timings, lock
	// waits, TC-selection proximity, per-class network traffic.
	Registry []trace.Sample

	// Profile is the critical-path attribution of the window's traced
	// operations (RunConfig.Profile only).
	Profile *profile.Report
	// Contention is the deployment's lock-contention ledger, reset at
	// window start (RunConfig.Profile only; nil for CephFS setups).
	Contention *ndb.ContentionLedger
	// SinkDropped counts spans evicted from the profiling ring
	// (RunConfig.Profile only); nonzero means Profile covers a suffix of
	// the window.
	SinkDropped int64

	// SLOReport is the live SLO engine's end-of-window report
	// (RunConfig.SLO only).
	SLOReport *slo.Report

	// Heat is the end-of-run heat snapshot (RunConfig.Heat only).
	Heat *heat.Report
	// Exemplars is the pinned outlier-trace report (RunConfig.Exemplars
	// only).
	Exemplars *slo.ExemplarReport
}

// HomeDirsPerClient is the dataset-locality width of one benchmark client
// (a Hadoop task working over a couple of datasets, see workload docs).
const HomeDirsPerClient = 2

// ClientAffinity is the probability a client operation targets one of its
// home directories.
const ClientAffinity = 0.95

// Run measures one deployment. The deployment is consumed: background
// processes keep their state, so build a fresh deployment per Run.
func Run(d *core.Deployment, cfg RunConfig) *Result {
	env := d.Env
	hist := metrics.NewHistogram(32<<10, cfg.Seed)

	var (
		measuring bool
		stop      bool
		steps     int64 // every generator draw, including no-target idles
		ops       int64 // served operations only
		errCount  int64
	)
	if cfg.Exemplars {
		cfg.Profile = true
		cfg.SLO = true
	}
	if cfg.Heat {
		// Heat tracking starts before warm-up so the decayed sketches reach
		// steady state by window end, like a long-running deployment's would.
		d.EnableHeat(cfg.HeatConfig)
	}
	affinity := cfg.Affinity
	if affinity == 0 {
		affinity = ClientAffinity
	}
	for i, fs := range d.Clients {
		fs := fs
		home := d.Namespace.HomeDirsFor(i, HomeDirsPerClient)
		if cfg.HomeDirs != nil {
			home = cfg.HomeDirs
		}
		gen := workload.NewAffineGenerator(d.Namespace, cfg.Mix, cfg.Seed+int64(i), home, affinity)
		env.Spawn("bench-client", func(p *sim.Proc) {
			for !stop {
				t0 := p.Now()
				_, err := gen.Step(p, fs)
				steps++
				if errors.Is(err, workload.ErrNoTarget) {
					// A no-target draw (exhausted file pool) is a back-off,
					// not a served operation.
					continue
				}
				ops++
				if measuring {
					hist.Observe(p.Now() - t0)
					if err != nil {
						errCount++
					}
				}
			}
		})
	}

	// Warm-up: at least cfg.Warmup, extended until the per-client average
	// reaches WarmOpsPerClient (bounded by MaxWarmup). Steps, not served
	// ops, drive the target: a drained file pool must not stall warm-up.
	env.RunFor(cfg.Warmup)
	warmTarget := int64(len(d.Clients)) * int64(cfg.WarmOpsPerClient)
	warmDeadline := env.Now() - cfg.Warmup + cfg.MaxWarmup
	for steps < warmTarget && env.Now() < warmDeadline {
		env.RunFor(50 * time.Millisecond)
	}
	ops0 := ops

	// Snapshot everything at window start.
	serverCPU := metrics.NewUtilWindow(d.ServerCPUs()...)
	serverCPU.Mark(env.Now())
	storageCPU := metrics.NewUtilWindow(d.StorageCPUs()...)
	storageCPU.Mark(env.Now())
	threadWindows := markThreadWindows(d, env.Now())

	storageNet0 := nicSnapshot(d, true)
	storageDisk0 := diskSnapshot(d)
	serverNet0 := nicSnapshot(d, false)
	crossZone0 := d.Net.CrossZoneBytes()
	serverReqs0 := sumInt64(d.ServerRequests())
	readSlots0 := readSlotSnapshot(d)
	reg0 := d.Registry.Snapshot()
	var sink *trace.Sink
	if cfg.Profile {
		sink = d.EnableTracing(ProfileSinkCap)
		if d.DB != nil {
			d.DB.Contention().Reset()
		}
	}
	var sloEng *slo.Engine
	if cfg.SLO {
		sloEng = d.EnableSLO(cfg.SLOSpec)
	}
	var exemplars *slo.Exemplars
	if cfg.Exemplars {
		exemplars = d.EnableExemplars(cfg.ExemplarConfig)
	}

	measuring = true
	env.RunFor(cfg.Window)
	measuring = false
	stop = true

	now := env.Now()
	win := cfg.Window.Seconds()
	nStorage := float64(len(d.StorageNodes()))
	nServers := float64(len(d.ServerCPUs()))

	res := &Result{
		Setup:      d.Setup.Name,
		Servers:    d.Opts.MetadataServers,
		Window:     cfg.Window,
		Ops:        ops - ops0,
		Errors:     errCount,
		Throughput: float64(ops-ops0) / win,
		AvgLatency: hist.Mean(),
		P50:        hist.Percentile(0.50),
		P90:        hist.Percentile(0.90),
		P99:        hist.Percentile(0.99),
		ServerCPU:  serverCPU.Report(now),
		StorageCPU: storageCPU.Report(now),
	}
	if nServers > 0 {
		res.ServerRequestRate = float64(sumInt64(d.ServerRequests())-serverReqs0) / win / nServers
	}
	res.ThreadCPU = reportThreadWindows(threadWindows, now)

	storageNet1 := nicSnapshot(d, true)
	storageDisk1 := diskSnapshot(d)
	serverNet1 := nicSnapshot(d, false)
	if nStorage > 0 {
		res.StorageNetRead = float64(storageNet1[0]-storageNet0[0]) / win / nStorage
		res.StorageNetWrite = float64(storageNet1[1]-storageNet0[1]) / win / nStorage
		res.StorageDiskRead = float64(storageDisk1[0]-storageDisk0[0]) / win / nStorage
		res.StorageDiskWrite = float64(storageDisk1[1]-storageDisk0[1]) / win / nStorage
	}
	if nServers > 0 {
		res.ServerNetRead = float64(serverNet1[0]-serverNet0[0]) / win / nServers
		res.ServerNetWrite = float64(serverNet1[1]-serverNet0[1]) / win / nServers
	}
	res.CrossZoneRate = float64(d.Net.CrossZoneBytes()-crossZone0) / win
	res.ReadSlots = diffReadSlots(readSlotSnapshot(d), readSlots0)
	res.Registry = trace.Diff(reg0, d.Registry.Snapshot())
	if cfg.Profile {
		res.Profile = profile.Analyze(sink.Spans())
		res.SinkDropped = sink.Dropped()
		if d.DB != nil {
			res.Contention = d.DB.Contention()
		}
	}
	if sloEng != nil {
		res.SLOReport = sloEng.Report(now)
	}
	if cfg.Heat {
		res.Heat = d.Heat.Snapshot(now, 0)
	}
	if exemplars != nil {
		res.Exemplars = exemplars.Report(now)
	}
	return res
}

// markThreadWindows sets up one utilization window per NDB thread type.
func markThreadWindows(d *core.Deployment, now time.Duration) map[string]*metrics.UtilWindow {
	if d.DB == nil {
		return nil
	}
	out := make(map[string]*metrics.UtilWindow, 7)
	for t := 0; t < 7; t++ {
		var res []*sim.Resource
		for _, dn := range d.DB.DataNodes() {
			res = append(res, dn.Threads()[t])
		}
		w := metrics.NewUtilWindow(res...)
		w.Mark(now)
		out[ndb.ThreadType(t).String()] = w
	}
	return out
}

func reportThreadWindows(ws map[string]*metrics.UtilWindow, now time.Duration) map[string]float64 {
	if ws == nil {
		return nil
	}
	out := make(map[string]float64, len(ws))
	for name, w := range ws {
		out[name] = w.Report(now)
	}
	return out
}

// nicSnapshot returns total (read, write) NIC bytes over storage or server
// nodes.
func nicSnapshot(d *core.Deployment, storage bool) [2]int64 {
	var out [2]int64
	nodes := d.ServerNodes()
	if storage {
		nodes = d.StorageNodes()
	}
	for _, n := range nodes {
		r, w := n.NICBytes()
		out[0] += r
		out[1] += w
	}
	return out
}

func diskSnapshot(d *core.Deployment) [2]int64 {
	var out [2]int64
	for _, n := range d.StorageNodes() {
		r, w := n.DiskBytes()
		out[0] += r
		out[1] += w
	}
	return out
}

func sumInt64(xs []int64) int64 {
	var total int64
	for _, x := range xs {
		total += x
	}
	return total
}

func readSlotSnapshot(d *core.Deployment) []PartitionReads {
	if d.NS == nil {
		return nil
	}
	var out []PartitionReads
	for _, part := range d.NS.InodeTable().Partitions() {
		out = append(out, PartitionReads{Index: part.Index(), Counts: part.ReadCounts()})
	}
	return out
}

func diffReadSlots(now, before []PartitionReads) []PartitionReads {
	if now == nil {
		return nil
	}
	out := make([]PartitionReads, len(now))
	for i := range now {
		counts := make([]int64, len(now[i].Counts))
		copy(counts, now[i].Counts)
		if i < len(before) {
			for j := range counts {
				if j < len(before[i].Counts) {
					counts[j] -= before[i].Counts[j]
				}
			}
		}
		out[i] = PartitionReads{Index: now[i].Index, Counts: counts}
	}
	return out
}

// Measure builds a deployment for (setup, servers) and runs one
// measurement, closing the deployment afterwards.
func Measure(setup core.Setup, servers, clientsPerServer int, cfg RunConfig, seed int64) (*Result, error) {
	opts := core.DefaultOptions(setup)
	opts.MetadataServers = servers
	if clientsPerServer > 0 {
		opts.ClientsPerServer = clientsPerServer
	}
	opts.Seed = seed
	d, err := core.Build(opts)
	if err != nil {
		return nil, err
	}
	defer d.Close()
	return Run(d, cfg), nil
}
