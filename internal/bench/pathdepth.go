package bench

import (
	"fmt"
	"strings"
	"time"

	"hopsfscl/internal/core"
	"hopsfscl/internal/metrics"
	"hopsfscl/internal/profile"
	"hopsfscl/internal/sim"
	"hopsfscl/internal/workload"
)

// pathStatLatency measures stat latency at a given path depth on a minimal
// HopsFS-CL (3,3) deployment, with batched path resolution either enabled
// or disabled (the serial per-component walk). The hint cache is warmed
// first, so the batched variant measures the optimistic fast path the way
// a steady-state server sees it. The returned report attributes the
// measured stats' critical path (the span ring is sized to retain exactly
// the measured operations, evicting setup and warm-up spans).
func pathStatLatency(o ExpOptions, depth int, disableBatched bool) (mean, p99 time.Duration, rep *profile.Report, err error) {
	opts := core.DefaultOptions(core.PaperSetups[5]) // HopsFS-CL (3,3)
	opts.MetadataServers = 3
	opts.ClientsPerServer = 0
	opts.Namespace = workload.NamespaceSpec{}
	opts.Seed = o.Seed
	opts.DisableBatchedResolve = disableBatched
	d, err := core.Build(opts)
	if err != nil {
		return 0, 0, nil, err
	}
	defer d.Close()

	parts := make([]string, depth)
	for i := range parts {
		parts[i] = fmt.Sprintf("d%d", i)
	}
	dir := "/" + strings.Join(parts, "/")
	target := dir + "/f"

	const warmStats = 16
	const measuredStats = 200
	hist := metrics.NewHistogram(measuredStats, o.Seed)
	sink := d.EnableTracing(measuredStats)
	cl := d.NS.NewClient(1, 9001, 1)
	done := false
	d.Env.Spawn("pathdepth", func(p *sim.Proc) {
		if err := cl.MkdirAll(p, dir); err != nil {
			return
		}
		if err := cl.Create(p, target, 0); err != nil {
			return
		}
		for i := 0; i < warmStats; i++ {
			if _, err := cl.Stat(p, target); err != nil {
				return
			}
		}
		p.Flush()
		for i := 0; i < measuredStats; i++ {
			t0 := p.Now()
			if _, err := cl.Stat(p, target); err != nil {
				return
			}
			p.Flush()
			hist.Observe(p.Now() - t0)
		}
		done = true
	})
	d.Env.RunFor(time.Minute)
	if !done {
		return 0, 0, nil, fmt.Errorf("pathdepth: depth-%d run did not complete", depth)
	}
	return hist.Mean(), hist.Percentile(0.99), profile.Analyze(sink.Spans()), nil
}

// PathDepth measures stat latency as a function of path depth, with
// optimistic batched resolution vs the serial per-component walk. The
// serial walk pays one storage round trip per component, so its latency
// grows linearly with depth; the batched resolver reads the whole primed
// chain in one parallel fan-out, so depth only adds rows to a single
// round trip and latency grows sub-linearly.
func PathDepth(o ExpOptions) (string, error) {
	depths := []int{2, 4, 8, 12}
	if o.Full {
		depths = []int{2, 4, 8, 12, 16}
	}
	tbl := metrics.NewTable("depth", "serial mean", "serial p99", "batched mean", "batched p99", "speedup")
	var firstSerial, firstBatched, lastSerial, lastBatched time.Duration
	var labels []string
	var reps []*profile.Report
	for i, depth := range depths {
		serialMean, serialP99, serialRep, err := pathStatLatency(o, depth, true)
		if err != nil {
			return "", err
		}
		batchedMean, batchedP99, batchedRep, err := pathStatLatency(o, depth, false)
		if err != nil {
			return "", err
		}
		if i == 0 {
			firstSerial, firstBatched = serialMean, batchedMean
		}
		lastSerial, lastBatched = serialMean, batchedMean
		tbl.AddRow(fmt.Sprintf("%d", depth),
			fmtMS(serialMean), fmtMS(serialP99),
			fmtMS(batchedMean), fmtMS(batchedP99),
			fmt.Sprintf("%.2fx", float64(serialMean)/float64(batchedMean)))
		labels = append(labels,
			fmt.Sprintf("depth %d serial", depth),
			fmt.Sprintf("depth %d batched", depth))
		reps = append(reps, serialRep, batchedRep)
	}
	growth := func(first, last time.Duration) string {
		if first <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.2fx", float64(last)/float64(first))
	}
	return fmt.Sprintf(
		"Stat latency vs path depth — hint-cache-primed batched resolution vs serial walk\n"+
			"HopsFS-CL (3,3), 3 metadata servers, single zone-1 client\n%s"+
			"latency growth depth %d -> %d: serial %s, batched %s\n"+
			"(serial pays one storage round trip per component; batched reads the primed chain in one fan-out)\n"+
			"\nwhere the time went (critical-path share of measured stats):\n%s",
		tbl.String(), depths[0], depths[len(depths)-1],
		growth(firstSerial, lastSerial), growth(firstBatched, lastBatched),
		renderAttribution(labels, reps)), nil
}
