package bench

// BenchmarkGridPoint is the bench of the bench: it runs one full grid point
// (the deployment shape every sweep experiment measures) and reports how
// expensive the *engine* was, not the simulated system — wall nanoseconds
// per virtual millisecond, heap allocations per served virtual operation,
// and virtual ops per wall second. CI tracks these so a kernel regression
// shows up as a number, not as a mysteriously slower smoke job.

import (
	"runtime"
	"testing"
	"time"

	"hopsfscl/internal/core"
)

func BenchmarkGridPoint(b *testing.B) {
	setup, ok := core.SetupByName("HopsFS-CL (3,3)")
	if !ok {
		b.Fatal("setup not found")
	}
	var m0, m1 runtime.MemStats
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		opts := core.DefaultOptions(setup)
		opts.MetadataServers = 12
		opts.ClientsPerServer = 32
		opts.Seed = 1
		d, err := core.Build(opts)
		if err != nil {
			b.Fatal(err)
		}
		cfg := DefaultRunConfig()
		cfg.Window = 150 * time.Millisecond
		runtime.GC()
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		b.StartTimer()
		res := Run(d, cfg)
		b.StopTimer()
		wall := time.Since(t0)
		runtime.ReadMemStats(&m1)
		virtual := d.Env.Now()
		d.Close()
		if res.Ops == 0 {
			b.Fatal("grid point served no operations")
		}
		vms := float64(virtual) / float64(time.Millisecond)
		b.ReportMetric(float64(wall.Nanoseconds())/vms, "ns/vms")
		b.ReportMetric(float64(m1.Mallocs-m0.Mallocs)/float64(res.Ops), "allocs/vop")
		b.ReportMetric(float64(res.Ops)/wall.Seconds(), "vops/wall-s")
	}
}
