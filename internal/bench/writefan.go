package bench

import (
	"fmt"
	"time"

	"hopsfscl/internal/metrics"
	"hopsfscl/internal/ndb"
	"hopsfscl/internal/profile"
	"hopsfscl/internal/sim"
	"hopsfscl/internal/simnet"
	"hopsfscl/internal/trace"
)

// writeFanPoint measures multi-row write-transaction latency and wire
// footprint on a raw 3-AZ NDB cluster (6 datanodes, RF 3, Read Backup),
// with the batched write path either enabled or forced serial. Every
// transaction stages `rows` rows of one partition whose primary replica is
// deliberately NOT in the client's zone, so serial staging pays one remote
// round trip per row while the batched path pays one per primary — and all
// rows share a replica chain, so the batched commit runs one train where
// the serial path runs one 2PC chain per row. Returned alongside mean
// latency: the average wire messages per transaction, the average commit
// trains per transaction (from the ndb.commit.trains counter), and the
// critical-path attribution of the measured transactions.
func writeFanPoint(o ExpOptions, rows int, serial bool) (mean time.Duration, msgsPerTxn, trainsPerTxn float64, rep *profile.Report, err error) {
	env := sim.New(o.Seed)
	defer env.Close()
	net := simnet.New(env, simnet.USWest1())
	reg := trace.NewRegistry()
	net.SetRegistry(reg)
	tracer := trace.NewTracer(reg)

	cfg := ndb.DefaultConfig()
	cfg.DataNodes = 6
	cfg.Replication = 3
	cfg.PartitionsPerTable = 12
	cfg.AZAware = true
	cfg.DisableWriteBatching = serial
	zones := []simnet.ZoneID{1, 2, 3}
	data := ndb.SpreadPlacement(cfg.DataNodes, zones, 100)
	mgmt := []ndb.Placement{{Zone: 1, Host: 200}, {Zone: 2, Host: 201}, {Zone: 3, Host: 202}}
	c, err := ndb.New(env, net, cfg, data, mgmt)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	c.SetTracer(tracer)
	c.StopBackground()
	env.RunFor(time.Second) // drain housekeeping

	tbl := c.CreateTable("writefan", 256, ndb.TableOptions{ReadBackup: true})
	client := net.NewNode("client", 1, 300)

	// Pick a partition whose primary lives outside the client's zone: with
	// an AZ-local primary the TC serves staging itself and the serial
	// path's per-row round trips would be free, hiding exactly the cost
	// the batched path removes.
	pk := ""
	for i := 0; i < 64; i++ {
		cand := fmt.Sprintf("p%d", i)
		if dn := tbl.PrimaryFor(cand); dn != nil && dn.Domain != 1 {
			pk = cand
			break
		}
	}
	if pk == "" {
		return 0, 0, 0, nil, fmt.Errorf("writefan: no partition with a non-local primary")
	}

	const warmTxns = 4
	const measuredTxns = 64
	hist := metrics.NewHistogram(measuredTxns, o.Seed)
	sink := tracer.EnableSink(measuredTxns)
	trainsC := reg.Counter("ndb.commit.trains")

	var msgs, trains int64
	done := false
	env.Spawn("writefan", func(p *sim.Proc) {
		runTxn := func(it int) error {
			sp := tracer.StartOp("writetxn", p.EffNow())
			prev := p.SetSpan(sp)
			defer func() {
				p.SetSpan(prev)
				sp.Finish(p.EffNow())
			}()
			tx, err := c.Begin(p, client, 1, tbl, pk)
			if err != nil {
				return err
			}
			items := make([]ndb.BatchWrite, rows)
			for r := range items {
				items[r] = ndb.BatchWrite{Table: tbl, PartKey: pk, Key: fmt.Sprintf("r%d", r), Val: fmt.Sprintf("v%d", it)}
			}
			if err := tx.WriteBatch(items); err != nil {
				return err
			}
			return tx.Commit()
		}
		for i := 0; i < warmTxns; i++ {
			if err := runTxn(i); err != nil {
				return
			}
		}
		p.Flush()
		msgsBefore := net.TotalMessages()
		trainsBefore := trainsC.Value()
		for i := 0; i < measuredTxns; i++ {
			t0 := p.Now()
			if err := runTxn(warmTxns + i); err != nil {
				return
			}
			p.Flush()
			hist.Observe(p.Now() - t0)
		}
		msgs = net.TotalMessages() - msgsBefore
		trains = trainsC.Value() - trainsBefore
		done = true
	})
	env.RunFor(time.Minute)
	if !done {
		return 0, 0, 0, nil, fmt.Errorf("writefan: %d-row run (serial=%v) did not complete", rows, serial)
	}
	return hist.Mean(), float64(msgs) / measuredTxns, float64(trains) / measuredTxns,
		profile.Analyze(sink.Spans()), nil
}

// WriteFan measures write-transaction latency and wire footprint as a
// function of rows per transaction, batched vs serial. The serial path pays
// one staging round trip per row and one 2PC chain per row, so both its
// latency and its message count grow linearly with the row count; the
// batched path stages all same-primary rows in one message pair and commits
// all same-chain rows as one train, so rows only add payload bytes to a
// fixed number of messages and latency stays near-flat. The run
// self-checks: it fails if the batched wire footprint is not strictly below
// the serial one at the largest row count.
func WriteFan(o ExpOptions) (string, error) {
	rowCounts := []int{1, 2, 4, 8}
	if o.Full {
		rowCounts = append(rowCounts, 16)
	}
	tbl := metrics.NewTable("rows/txn",
		"serial mean", "serial msgs", "batched mean", "batched msgs", "trains/txn", "speedup")
	var firstSerial, firstBatched, lastSerial, lastBatched time.Duration
	var lastSerialMsgs, lastBatchedMsgs float64
	var labels []string
	var reps []*profile.Report
	for i, rows := range rowCounts {
		serialMean, serialMsgs, _, serialRep, err := writeFanPoint(o, rows, true)
		if err != nil {
			return "", err
		}
		batchedMean, batchedMsgs, trains, batchedRep, err := writeFanPoint(o, rows, false)
		if err != nil {
			return "", err
		}
		if i == 0 {
			firstSerial, firstBatched = serialMean, batchedMean
		}
		lastSerial, lastBatched = serialMean, batchedMean
		lastSerialMsgs, lastBatchedMsgs = serialMsgs, batchedMsgs
		tbl.AddRow(fmt.Sprintf("%d", rows),
			fmtMS(serialMean), fmt.Sprintf("%.1f", serialMsgs),
			fmtMS(batchedMean), fmt.Sprintf("%.1f", batchedMsgs),
			fmt.Sprintf("%.1f", trains),
			fmt.Sprintf("%.2fx", float64(serialMean)/float64(batchedMean)))
		labels = append(labels,
			fmt.Sprintf("%d rows serial", rows),
			fmt.Sprintf("%d rows batched", rows))
		reps = append(reps, serialRep, batchedRep)
	}
	growth := func(first, last time.Duration) string {
		if first <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.2fx", float64(last)/float64(first))
	}
	maxRows := rowCounts[len(rowCounts)-1]
	if lastBatchedMsgs >= lastSerialMsgs {
		return "", fmt.Errorf(
			"writefan: batched wire footprint (%.1f msgs/txn) not below serial (%.1f) at %d rows",
			lastBatchedMsgs, lastSerialMsgs, maxRows)
	}
	return fmt.Sprintf(
		"Write txn latency & wire footprint vs rows per txn — batched write path vs serial\n"+
			"raw NDB, 3 AZs, 6 datanodes, RF 3, Read Backup; all rows in one remote-primary partition\n%s"+
			"latency growth %d -> %d rows: serial %s, batched %s\n"+
			"footprint check: batched %.1f msgs/txn < serial %.1f at %d rows — OK\n"+
			"(serial pays a staging round trip and a 2PC chain per row; batched stages one train per\n"+
			"primary and commits one train per replica chain)\n"+
			"\nwhere the time went (critical-path share of measured txns):\n%s",
		tbl.String(), rowCounts[0], maxRows,
		growth(firstSerial, lastSerial), growth(firstBatched, lastBatched),
		lastBatchedMsgs, lastSerialMsgs, maxRows,
		renderAttribution(labels, reps)), nil
}
