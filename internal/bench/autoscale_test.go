package bench

import (
	"testing"
	"time"

	"hopsfscl/internal/autoscale"
)

// smokeElasticOptions shrinks the recorded experiment to a 3-day week so the
// CI smoke run costs well under a second of wall clock while still crossing
// the mid-week flash crowd (burst day 2).
func smokeElasticOptions(seed int64) ElasticOptions {
	o := DefaultElasticOptions(seed)
	o.Profile.Days = 3
	o.FlightEvery = 0
	return o
}

// TestElasticSmoke runs the autoscaled mode over a compressed 3-day profile
// and asserts the controller actually worked the tier: multiple scale-ups,
// at least one drain, every audit checkpoint clean, every quiesce drained.
func TestElasticSmoke(t *testing.T) {
	r, err := RunElastic(ModeElastic, smokeElasticOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if r.ScaleUps < 2 {
		t.Errorf("scale-ups = %d, want >= 2\n%s", r.ScaleUps, renderEvents(r))
	}
	if r.ScaleDowns < 1 {
		t.Errorf("scale-downs = %d, want >= 1\n%s", r.ScaleDowns, renderEvents(r))
	}
	if len(r.Violations) != 0 {
		t.Errorf("audit violations: %v", r.Violations)
	}
	if r.FailedQuiesces != 0 {
		t.Errorf("%d quiesce(s) failed to drain", r.FailedQuiesces)
	}
	if r.Checkpoints == 0 {
		t.Error("no audit checkpoints ran")
	}
	if r.Ops == 0 {
		t.Error("no operations completed")
	}
	if r.MaxServing > 6 || r.MinServing < 2 {
		t.Errorf("serving range %d..%d escaped the 2..6 bounds", r.MinServing, r.MaxServing)
	}
}

// TestElasticStaticModesAudit runs both static baselines briefly and asserts
// their single settled audit is clean (the elastic comparison is only fair
// when the baselines hold the same invariants).
func TestElasticStaticModesAudit(t *testing.T) {
	o := smokeElasticOptions(1)
	o.Profile.Days = 1
	o.Profile.Bursts = nil // the flash crowd sits on day 2
	for _, m := range []ElasticMode{ModeStaticMin, ModeStaticPeak} {
		r, err := RunElastic(m, o)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if len(r.Violations) != 0 {
			t.Errorf("%s: audit violations: %v", m, r.Violations)
		}
		if got := r.ScaleUps + r.ScaleDowns; got != 0 {
			t.Errorf("%s: static mode recorded %d scale events", m, got)
		}
	}
}

// TestElasticDeterminism is the regression for the ISSUE's reproducibility
// requirement: the same seed must replay a byte-identical scale-event log
// and identical op counts across runs.
func TestElasticDeterminism(t *testing.T) {
	run := func() (string, int64, time.Duration) {
		r, err := RunElastic(ModeElastic, smokeElasticOptions(7))
		if err != nil {
			t.Fatal(err)
		}
		return renderEvents(r), r.Ops, r.OverSLO
	}
	ev1, ops1, over1 := run()
	ev2, ops2, over2 := run()
	if ev1 != ev2 {
		t.Errorf("scale-event logs differ across runs of seed 7:\n%s\nvs\n%s", ev1, ev2)
	}
	if ops1 != ops2 || over1 != over2 {
		t.Errorf("run stats differ: ops %d vs %d, over-SLO %v vs %v", ops1, ops2, over1, over2)
	}
	if ev1 == "" {
		t.Error("no scale events at all; the determinism check is vacuous")
	}
}

// TestElasticOptionValidation covers the config rejections.
func TestElasticOptionValidation(t *testing.T) {
	o := DefaultElasticOptions(1)
	o.Clients = 0
	if _, err := RunElastic(ModeElastic, o); err == nil {
		t.Error("zero clients accepted")
	}
	o = DefaultElasticOptions(1)
	o.Clients = 7 // not divisible by Min=2
	if _, err := RunElastic(ModeElastic, o); err == nil {
		t.Error("indivisible client count accepted")
	}
	o = DefaultElasticOptions(1)
	o.Controller.Min = 0
	if _, err := RunElastic(ModeElastic, o); err == nil {
		t.Error("invalid controller config accepted")
	}
}

func renderEvents(r *ElasticResult) string {
	return autoscale.RenderEvents(r.Events)
}
