package bench

// Kernel is the bench of the bench as a hopsbench experiment: instead of
// measuring the simulated system, it measures the simulation engine — the
// wall cost of the kernel primitives every experiment is built from, and
// the engine cost of one full grid point (the deployment shape every sweep
// measures). CI runs the same numbers as testing.B benchmarks
// (internal/sim, internal/simnet, internal/bench) with in-test allocation
// ceilings; this experiment renders them as a table so a human can see
// where the engine budget goes. BENCH_8.json records the before/after
// trajectory of the kernel overhaul these numbers gate.

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"hopsfscl/internal/core"
	"hopsfscl/internal/metrics"
	"hopsfscl/internal/sim"
	"hopsfscl/internal/simnet"
)

// measureEngine runs fn(ops) once to warm the kernel's pools, then again
// under the clock and allocation counters. It reports wall nanoseconds and
// heap mallocs per operation. This is deliberately the same protocol as the
// alloc-ceiling tests: steady state, pools warm.
func measureEngine(ops int, fn func(ops int)) (nsPerOp, allocsPerOp float64) {
	fn(ops / 4)
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	fn(ops)
	wall := time.Since(t0)
	runtime.ReadMemStats(&m1)
	return float64(wall.Nanoseconds()) / float64(ops),
		float64(m1.Mallocs-m0.Mallocs) / float64(ops)
}

// Kernel reports the simulation engine's own cost model: per-primitive
// wall time and steady-state allocations, then the engine cost of a full
// grid point in wall-ns per virtual millisecond and heap allocations per
// served virtual operation.
func Kernel(o ExpOptions) (string, error) {
	ops := 20000
	if o.Full {
		ops = 100000
	}
	tbl := metrics.NewTable("primitive", "ns/op", "allocs/op")
	row := func(name string, ns, allocs float64) {
		tbl.AddRow(name, fmt.Sprintf("%.0f", ns), fmt.Sprintf("%.2f", allocs))
	}

	{ // Timer wheel: schedule + fire + context switch.
		env := sim.New(o.Seed)
		ns, al := measureEngine(ops, func(n int) {
			env.Spawn("sleeper", func(p *sim.Proc) {
				for i := 0; i < n; i++ {
					p.Sleep(time.Microsecond)
				}
			})
			env.Run()
		})
		env.Close()
		row("sleep/wake", ns, al)
	}

	{ // Mailbox rendezvous: two sends, two receives, two switches per op.
		env := sim.New(o.Seed)
		ping := sim.NewMailbox[int](env)
		pong := sim.NewMailbox[int](env)
		ns, al := measureEngine(ops, func(n int) {
			env.Spawn("a", func(p *sim.Proc) {
				for i := 0; i < n; i++ {
					ping.Send(i)
					pong.Recv(p)
				}
			})
			env.Spawn("b", func(p *sim.Proc) {
				for i := 0; i < n; i++ {
					pong.Send(ping.Recv(p))
				}
			})
			env.Run()
		})
		env.Close()
		row("mailbox ping-pong", ns, al)
	}

	{ // Satisfied timeout: the eager timer-cancellation path.
		env := sim.New(o.Seed)
		mb := sim.NewMailbox[int](env)
		ns, al := measureEngine(ops, func(n int) {
			env.Spawn("w", func(p *sim.Proc) {
				for i := 0; i < n; i++ {
					env.After(time.Microsecond, func() { mb.Send(1) })
					mb.RecvTimeout(p, time.Hour)
				}
			})
			env.Run()
		})
		env.Close()
		row("RecvTimeout (satisfied)", ns, al)
	}

	{ // Expired timeout: the eager waiter-removal path.
		env := sim.New(o.Seed)
		mb := sim.NewMailbox[int](env)
		ns, al := measureEngine(ops, func(n int) {
			env.Spawn("w", func(p *sim.Proc) {
				for i := 0; i < n; i++ {
					mb.RecvTimeout(p, time.Microsecond)
				}
			})
			env.Run()
		})
		env.Close()
		row("RecvTimeout (expired)", ns, al)
	}

	{ // Network datagram: the pooled-envelope fast path, paid twice per RPC.
		env := sim.New(o.Seed)
		net := simnet.New(env, simnet.USWest1())
		a := net.NewNode("a", 1, 1)
		c := net.NewNode("c", 2, 2)
		ns, al := measureEngine(ops, func(n int) {
			env.Spawn("drain", func(p *sim.Proc) {
				for i := 0; i < n; i++ {
					a.Inbox.Recv(p)
				}
			})
			env.Spawn("send", func(p *sim.Proc) {
				for i := 0; i < n; i++ {
					net.Send(c, a, 256, nil)
					p.Sleep(10 * time.Microsecond)
				}
			})
			env.Run()
		})
		env.Close()
		row("network send", ns, al)
	}

	var b strings.Builder
	b.WriteString("Kernel primitive cost, steady state (wall ns and heap allocations per op)\n")
	b.WriteString(tbl.String())

	// One full grid point: the engine cost behind every sweep measurement.
	servers, clients := 12, 32
	if len(o.Counts) > 0 {
		servers = o.Counts[len(o.Counts)-1]
	}
	if o.ClientsPerServer > 0 {
		clients = o.ClientsPerServer
	}
	setup, ok := core.SetupByName("HopsFS-CL (3,3)")
	if !ok {
		return "", fmt.Errorf("setup not found")
	}
	opts := core.DefaultOptions(setup)
	opts.MetadataServers = servers
	opts.ClientsPerServer = clients
	opts.Seed = o.Seed
	d, err := core.Build(opts)
	if err != nil {
		return "", err
	}
	cfg := DefaultRunConfig()
	cfg.Seed = o.Seed
	cfg.Window = 150 * time.Millisecond
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	res := Run(d, cfg)
	wall := time.Since(t0)
	runtime.ReadMemStats(&m1)
	virtual := d.Env.Now()
	d.Close()
	if res.Ops == 0 {
		return "", fmt.Errorf("grid point served no operations")
	}
	vms := float64(virtual) / float64(time.Millisecond)
	fmt.Fprintf(&b, "\nGrid point engine cost — %s, %d metadata servers, %d clients/server:\n",
		setup.Name, servers, opts.ClientsPerServer)
	gp := metrics.NewTable("metric", "value")
	gp.AddRow("wall time", fmt.Sprintf("%.2fs", wall.Seconds()))
	gp.AddRow("virtual time simulated", fmt.Sprintf("%.0fms", vms))
	gp.AddRow("wall ns per virtual ms", fmt.Sprintf("%.0f", float64(wall.Nanoseconds())/vms))
	gp.AddRow("heap allocs per virtual op", fmt.Sprintf("%.1f", float64(m1.Mallocs-m0.Mallocs)/float64(res.Ops)))
	gp.AddRow("virtual ops per wall second", fmt.Sprintf("%.0f", float64(res.Ops)/wall.Seconds()))
	b.WriteString(gp.String())
	b.WriteString("recorded trajectory: BENCH_8.json (pre- vs post-overhaul kernel)\n")
	return b.String(), nil
}
