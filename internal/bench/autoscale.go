package bench

import (
	"fmt"
	"strings"
	"time"

	"hopsfscl/internal/autoscale"
	"hopsfscl/internal/chaos"
	"hopsfscl/internal/core"
	"hopsfscl/internal/loadshape"
	"hopsfscl/internal/metrics"
	"hopsfscl/internal/sim"
	"hopsfscl/internal/slo"
	"hopsfscl/internal/trace"
	"hopsfscl/internal/workload"
)

// The elastic experiment: a fixed client population offers a shaped diurnal
// load (internal/loadshape) against HopsFS-CL (3,3), and the serving tier
// either stays static or follows an autoscale controller
// (internal/autoscale) that commissions and drains namenodes online. The
// paper's §II premise — stateless metadata serving over replicated NDB —
// is exactly what makes this safe, and the experiment proves it: the chaos
// auditor checks cross-layer invariants at every scale transition.
//
// The default NN sizing is deliberately small (2 cores, 1.5ms per op,
// ~1.3k ops/s per server): at the paper's 32-vCPU sizing the benchmark
// client population can never saturate a namenode, so there would be
// nothing to scale on. The population is sized so the closed-loop latency
// ceiling (clients / min-capacity, the queueing bound paced clients
// degrade to under overload) sits well above the p99 target — otherwise
// static-min provisioning could never violate the SLO no matter how hard
// the peak runs. Elections run at 100ms rounds so commissioned servers
// enter the leader's active list within a small fraction of a compressed
// 3s day.

// ElasticMode selects the provisioning policy of one run.
type ElasticMode int

// Elastic modes.
const (
	// ModeElastic runs the autoscale controller between Min and Max servers.
	ModeElastic ElasticMode = iota
	// ModeStaticMin provisions Min servers for the whole run.
	ModeStaticMin
	// ModeStaticPeak provisions Max servers for the whole run.
	ModeStaticPeak
)

// String returns the mode's report label.
func (m ElasticMode) String() string {
	switch m {
	case ModeElastic:
		return "elastic"
	case ModeStaticMin:
		return "static-min"
	case ModeStaticPeak:
		return "static-peak"
	}
	return fmt.Sprintf("mode-%d", int(m))
}

// ElasticOptions parameterize one elastic run.
type ElasticOptions struct {
	// Seed drives all randomness.
	Seed int64
	// Profile is the offered load shape (zero value: loadshape.DefaultProfile).
	Profile loadshape.Profile
	// Controller tunes the autoscaler; Min/Max also size the static modes.
	Controller autoscale.Config
	// Clients is the total paced client population, fixed across modes. It
	// must be divisible by Controller.Min and Controller.Max so the static
	// deployments build with whole clients-per-server counts.
	Clients int
	// NNCores, NNOpBase and ElectionRound size the metadata servers (see
	// the package comment for why they shrink the paper's sizing).
	NNCores       int
	NNOpBase      time.Duration
	ElectionRound time.Duration
	// ControlTick is the monitor/controller evaluation interval.
	ControlTick time.Duration
	// FlightEvery is the flight-recorder sampling interval (0 disables the
	// timeline capture).
	FlightEvery time.Duration
}

// DefaultElasticOptions returns the recorded experiment's parameters.
func DefaultElasticOptions(seed int64) ElasticOptions {
	ctl := autoscale.DefaultConfig()
	ctl.Min = 2
	ctl.Max = 6
	ctl.TargetP99 = 20 * time.Millisecond
	ctl.UpUtil = 0.70
	ctl.DownUtil = 0.30
	ctl.UpStreak = 3
	ctl.DownStreak = 10
	ctl.Cooldown = 250 * time.Millisecond
	prof := loadshape.DefaultProfile()
	// 96 clients x 38 ops/s peak: ~3.6k ops/s offered at a weekday peak
	// (comfortable on 6 servers, hopeless on 2) and a ~45ms closed-loop
	// latency ceiling at min capacity, past the 20ms target.
	prof.RatePerClient = 38
	return ElasticOptions{
		Seed:          seed,
		Profile:       prof,
		Controller:    ctl,
		Clients:       96,
		NNCores:       2,
		NNOpBase:      1500 * time.Microsecond,
		ElectionRound: 100 * time.Millisecond,
		ControlTick:   25 * time.Millisecond,
		FlightEvery:   50 * time.Millisecond,
	}
}

// elasticSpec is the SLO evaluated during elastic runs: windows shrunk to
// compressed-day scale (burn pairs must fit well inside a 3s virtual day to
// fire while a ramp is still happening).
func elasticSpec(target time.Duration) slo.Spec {
	s := slo.DefaultSpec()
	s.Window = 6 * time.Second
	s.Slots = 120 // 50ms resolution
	s.Tick = 50 * time.Millisecond
	s.Latency = []slo.LatencyObjective{{Op: "*", Quantile: 0.99, Target: target}}
	s.Burns = []slo.BurnPair{
		{Name: "fast", Short: 400 * time.Millisecond, Long: 1200 * time.Millisecond, Rate: 14.4, Severity: slo.SevPage},
		{Name: "slow", Short: time.Second, Long: 3 * time.Second, Rate: 3, Severity: slo.SevTicket},
	}
	return s
}

// ElasticResult summarizes one elastic run.
type ElasticResult struct {
	Mode    ElasticMode
	Seed    int64
	Span    time.Duration // accounted (non-paused) run time
	Ops     int64
	Errors  int64
	OverSLO time.Duration // accounted time with rolling p99 above target
	// NNSeconds integrates serving servers over accounted time — the
	// provisioning cost ("server-seconds paid").
	NNSeconds float64
	// MinServing/MaxServing bound the serving count seen at control ticks.
	MinServing, MaxServing int
	ScaleUps, ScaleDowns   int
	Events                 []autoscale.Event
	// Checkpoints/Violations/FailedQuiesces summarize the per-transition
	// audits plus the settled end-of-run audit.
	Checkpoints    int
	Violations     []chaos.Violation
	FailedQuiesces int
	// Recorder holds the timeline frames when FlightEvery > 0.
	Recorder *trace.FlightRecorder
}

// RunElastic runs one mode of the elastic experiment.
func RunElastic(mode ElasticMode, o ElasticOptions) (*ElasticResult, error) {
	if o.Clients <= 0 {
		return nil, fmt.Errorf("elastic: need a positive client count")
	}
	if err := o.Controller.Validate(); err != nil {
		return nil, err
	}
	prof := o.Profile
	if prof.Day == 0 {
		prof = loadshape.DefaultProfile()
	}
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	startNNs := o.Controller.Min
	if mode == ModeStaticPeak {
		startNNs = o.Controller.Max
	}
	if o.Clients%startNNs != 0 {
		return nil, fmt.Errorf("elastic: %d clients not divisible by %d servers", o.Clients, startNNs)
	}

	opts := core.DefaultOptions(core.PaperSetups[5]) // HopsFS-CL (3,3)
	opts.MetadataServers = startNNs
	opts.ClientsPerServer = o.Clients / startNNs
	opts.Seed = o.Seed
	opts.NNCores = o.NNCores
	opts.NNOpBase = o.NNOpBase
	opts.NNElectionRound = o.ElectionRound
	d, err := core.Build(opts)
	if err != nil {
		return nil, err
	}
	defer d.Close()
	env := d.Env

	ctl, err := autoscale.New(o.Controller)
	if err != nil {
		return nil, err
	}
	eng := d.EnableSLO(elasticSpec(o.Controller.TargetP99))
	auditor := chaos.NewAuditor(d)
	res := &ElasticResult{Mode: mode, Seed: o.Seed, MinServing: startNNs, MaxServing: startNNs}

	// Let elections converge before offering load, so the first client pick
	// sees a populated active list.
	env.RunFor(4 * o.ElectionRound)

	// Paced clients: open-loop arrivals following the profile, degrading to
	// closed-loop under overload (loadshape.Pace).
	pace := &loadshape.PaceControl{}
	start := env.Now()
	for i, fs := range d.Clients {
		fs := fs
		home := d.Namespace.HomeDirsFor(i, HomeDirsPerClient)
		gen := workload.NewAffineGenerator(d.Namespace, workload.SpotifyMix, o.Seed+int64(i), home, ClientAffinity)
		env.Spawn("paced-client", func(p *sim.Proc) { prof.Pace(p, start, gen, fs, pace) })
	}

	// Timeline capture: SLO gauges plus probes for the offered load and the
	// serving-server count.
	var paused time.Duration
	elapsed := func() time.Duration { return env.Now() - start - paused }
	if o.FlightEvery > 0 {
		frames := int(prof.Span()/o.FlightEvery) + 64
		fr := d.EnableFlightRecorder(o.FlightEvery, frames, "slo.")
		fr.AddProbe("load.multiplier", func() float64 { return prof.Multiplier(elapsed()) })
		fr.AddProbe("autoscale.serving", func() float64 { return float64(d.ServingNNs()) })
		// The engine's gauges are per observed op class; the controller and
		// the timeline want the aggregate, so publish it as a probe.
		fr.AddProbe("slo.agg.p99_ms", func() float64 {
			sum := eng.OpSummary("*", env.Now(), 400*time.Millisecond)
			return float64(sum.Percentile(0.99)) / float64(time.Millisecond)
		})
		res.Recorder = fr
	}

	// Per-NN CPU windows for the controller's utilization signal (the SLO
	// engine's HealthStats probe keeps its own window; sharing it would make
	// both read half-intervals).
	utilAt := start
	utilBusy := make(map[int]int64)
	for _, nn := range d.NS.NameNodes() {
		utilBusy[nn.ID] = nn.CPU().BusyIntegral()
	}
	servingUtil := func(now time.Duration) float64 {
		var sum float64
		var n int
		for _, nn := range d.NS.ServingNameNodes() {
			base, ok := utilBusy[nn.ID]
			if ok && now > utilAt {
				sum += nn.CPU().Utilization(utilAt, now, base)
				n++
			}
		}
		for _, nn := range d.NS.NameNodes() {
			utilBusy[nn.ID] = nn.CPU().BusyIntegral()
		}
		utilAt = now
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}

	inFlight := func() int {
		total := 0
		for _, nn := range d.NS.NameNodes() {
			total += nn.InFlight()
		}
		return total
	}

	// quiesce parks the paced clients between operations and polls until the
	// stack drains (no server-side ops, no open transactions, no held row
	// locks), then runs one audit checkpoint. Pause time is excluded from
	// the run accounting. settled is true only for the final audit, after
	// elections have had time to converge.
	audit := func(settled bool) {
		pauseStart := env.Now()
		pace.Pause = true
		deadline := env.Now() + 500*time.Millisecond
		drained := false
		for env.Now() < deadline {
			d.FinishDrains()
			if inFlight() == 0 && d.DB.InFlightTxns() == 0 && len(d.DB.HeldLocks()) == 0 {
				drained = true
				break
			}
			env.RunFor(2 * time.Millisecond)
		}
		if !drained {
			res.FailedQuiesces++
		}
		d.FinishDrains()
		vs := auditor.Check(env.Now(), drained, settled)
		res.Violations = append(res.Violations, vs...)
		pace.Pause = false
		paused += env.Now() - pauseStart
	}

	// Main control loop, chaos-engine style: the main goroutine alternates
	// simulation steps with monitoring, controller evaluation, actuation,
	// and a quiesced audit after every scale transition.
	tick := o.ControlTick
	span := prof.Span()
	for elapsed() < span {
		env.RunFor(tick)
		now := env.Now()

		sum := eng.OpSummary("*", now, 400*time.Millisecond)
		p99 := sum.Percentile(0.99)
		serving := d.ServingNNs()
		if serving < res.MinServing {
			res.MinServing = serving
		}
		if serving > res.MaxServing {
			res.MaxServing = serving
		}
		if sum.Count > 0 && p99 > o.Controller.TargetP99 {
			res.OverSLO += tick
		}
		res.NNSeconds += float64(serving) * tick.Seconds()
		d.FinishDrains()

		if mode != ModeElastic {
			continue
		}
		sig := autoscale.Signals{
			Serving: serving,
			Util:    servingUtil(now),
			P99:     p99,
			Firing:  eng.Firing(),
		}
		delta, _ := ctl.Evaluate(now, sig)
		switch {
		case delta > 0:
			d.AddNameNodes(delta)
			res.ScaleUps++
			audit(false)
		case delta < 0:
			d.DrainNameNodes(-delta)
			res.ScaleDowns++
			audit(false)
		}
	}
	pace.Stop = true
	res.Events = ctl.Events()
	res.Span = elapsed()
	res.Ops = pace.Ops
	res.Errors = pace.Errors

	// Final settled audit: let drains complete and elections converge, then
	// hold the full invariant set including leader uniqueness.
	env.RunFor(4 * o.ElectionRound)
	audit(true)
	res.Checkpoints = auditor.Checkpoints

	d.StopBackground()
	env.RunFor(2 * o.ElectionRound)
	return res, nil
}

// OverSLOFraction is the accounted share of the run spent above target.
func (r *ElasticResult) OverSLOFraction() float64 {
	if r.Span <= 0 {
		return 0
	}
	return float64(r.OverSLO) / float64(r.Span)
}

// Autoscale runs the elastic experiment: the same shaped week of traffic
// against the autoscaled tier and both static provisioning baselines, with
// the ISSUE's acceptance checks evaluated inline.
func Autoscale(o ExpOptions) (string, error) {
	eo := DefaultElasticOptions(o.Seed)
	modes := []ElasticMode{ModeElastic, ModeStaticMin, ModeStaticPeak}
	results := make(map[ElasticMode]*ElasticResult, len(modes))
	for _, m := range modes {
		r, err := RunElastic(m, eo)
		if err != nil {
			return "", fmt.Errorf("%s: %w", m, err)
		}
		results[m] = r
	}
	recordAutoscale(eo, results)

	var b strings.Builder
	fmt.Fprintf(&b, "Elastic metadata tier over a compressed week (%d virtual days x %v), %d paced clients\n",
		eo.Profile.Days, eo.Profile.Day, eo.Clients)
	fmt.Fprintf(&b, "NN sizing: %d cores, %v per op (~%.0f ops/s per server); target p99 %v; servers %d..%d\n\n",
		eo.NNCores, eo.NNOpBase,
		float64(eo.NNCores)*float64(time.Second)/float64(eo.NNOpBase),
		eo.Controller.TargetP99, eo.Controller.Min, eo.Controller.Max)

	tbl := metrics.NewTable("mode", "servers", "ops", "errors", "time>SLO", "share", "NN-seconds", "audits", "violations")
	for _, m := range modes {
		r := results[m]
		tbl.AddRow(m.String(),
			fmt.Sprintf("%d..%d", r.MinServing, r.MaxServing),
			fmt.Sprintf("%d", r.Ops),
			fmt.Sprintf("%d", r.Errors),
			fmt.Sprintf("%v", r.OverSLO.Round(time.Millisecond)),
			fmt.Sprintf("%.1f%%", r.OverSLOFraction()*100),
			fmt.Sprintf("%.1f", r.NNSeconds),
			fmt.Sprintf("%d", r.Checkpoints),
			fmt.Sprintf("%d", len(r.Violations)))
	}
	b.WriteString(tbl.String())

	el, mn, pk := results[ModeElastic], results[ModeStaticMin], results[ModeStaticPeak]
	fmt.Fprintf(&b, "\nscale events (%d up, %d down):\n%s",
		el.ScaleUps, el.ScaleDowns, autoscale.RenderEvents(el.Events))

	b.WriteString("\ntimeline (one row per half virtual day):\n")
	b.WriteString(renderElasticTimeline(el, eo))

	check := func(name string, ok bool) {
		status := "PASS"
		if !ok {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "%-58s %s\n", name, status)
	}
	b.WriteString("\nacceptance checks:\n")
	check("time over SLO: elastic < static-min", el.OverSLO < mn.OverSLO)
	check("NN-seconds: elastic < static-peak", el.NNSeconds < pk.NNSeconds)
	check("scale-ups >= 2", el.ScaleUps >= 2)
	check("scale-downs >= 1", el.ScaleDowns >= 1)
	check("audit violations == 0 (all modes)",
		len(el.Violations)+len(mn.Violations)+len(pk.Violations) == 0)
	return b.String(), nil
}

// renderElasticTimeline samples the flight recorder at half-day boundaries:
// offered load vs serving servers vs rolling p99.
func renderElasticTimeline(r *ElasticResult, eo ElasticOptions) string {
	if r.Recorder == nil {
		return "(timeline capture disabled)\n"
	}
	frames := r.Recorder.Frames()
	if len(frames) == 0 {
		return "(no frames)\n"
	}
	tbl := metrics.NewTable("day", "load", "serving", "p99")
	step := eo.Profile.Day / 2
	next := frames[0].At
	for _, fr := range frames {
		if fr.At < next {
			continue
		}
		next = fr.At + step
		mult, _ := trace.Lookup(fr.Samples, "load.multiplier")
		serving, _ := trace.Lookup(fr.Samples, "autoscale.serving")
		p99, _ := trace.Lookup(fr.Samples, "slo.agg.p99_ms")
		day := float64(fr.At-frames[0].At) / float64(eo.Profile.Day)
		tbl.AddRow(fmt.Sprintf("%.1f", day),
			fmt.Sprintf("%.2f", mult),
			fmt.Sprintf("%.0f", serving),
			fmt.Sprintf("%.1fms", p99))
	}
	return tbl.String()
}
