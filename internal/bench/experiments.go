package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hopsfscl/internal/chaos"
	"hopsfscl/internal/core"
	"hopsfscl/internal/metrics"
	"hopsfscl/internal/ndb"
	"hopsfscl/internal/profile"
	"hopsfscl/internal/sim"
	"hopsfscl/internal/simnet"
	"hopsfscl/internal/trace"
	"hopsfscl/internal/workload"
)

// ExpOptions parameterize an experiment run.
type ExpOptions struct {
	// Full selects the paper's complete parameter grid (8 server counts);
	// quick mode uses a subset.
	Full bool
	// Seed drives all randomness.
	Seed int64
	// ClientsPerServer overrides the closed-loop client count (0 = default).
	ClientsPerServer int
	// Counts overrides the server-count grid (nil = Full/quick defaults).
	// The testing.B benchmarks use this to run each figure at reduced
	// scale.
	Counts []int
	// SLO enables the live SLO engine on every sweep measurement, embedding
	// an alert/health summary into the recorded grid points (hopsbench sets
	// it whenever -json is given, so BENCH_*.json catches SLO regressions).
	SLO bool
}

// DefaultExpOptions returns quick-run options.
func DefaultExpOptions() ExpOptions { return ExpOptions{Seed: 1} }

// MicroServers returns the cluster size for the fixed-size micro and
// percentile experiments (figs 7 and 9): the paper's 60 in full mode, 24
// in quick mode (the shapes are already stable there).
func (o ExpOptions) MicroServers() int {
	if len(o.Counts) > 0 {
		return o.Counts[len(o.Counts)-1]
	}
	if o.Full {
		return 60
	}
	return 24
}

// ServerCounts returns the evaluated metadata-server counts: the paper's
// x-axis {1,6,12,18,24,36,48,60} in full mode, a subset in quick mode.
func (o ExpOptions) ServerCounts() []int {
	if len(o.Counts) > 0 {
		return o.Counts
	}
	if o.Full {
		return []int{1, 6, 12, 18, 24, 36, 48, 60}
	}
	return []int{1, 6, 12, 24, 60}
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(o ExpOptions) (string, error)
}

// Experiments lists every reproduced table and figure, in paper order.
var Experiments = []Experiment{
	{ID: "table1", Title: "Table I: inter-AZ latency matrix (measured)", Run: Table1},
	{ID: "table2", Title: "Table II: NDB thread configuration", Run: Table2},
	{ID: "fig5", Title: "Figure 5: throughput vs metadata servers (Spotify workload)", Run: Fig5},
	{ID: "fig6", Title: "Figure 6: per-metadata-server request throughput", Run: Fig6},
	{ID: "fig7", Title: "Figure 7: micro-operation throughput at max servers", Run: Fig7},
	{ID: "fig8", Title: "Figure 8: average end-to-end latency vs metadata servers", Run: Fig8},
	{ID: "fig9", Title: "Figure 9: latency percentiles at 50% load", Run: Fig9},
	{ID: "fig10", Title: "Figure 10: CPU utilization per storage node / metadata server", Run: Fig10},
	{ID: "fig11", Title: "Figure 11: CPU per NDB thread type, HopsFS-CL (3,3)", Run: Fig11},
	{ID: "fig12", Title: "Figure 12: storage layer network and disk utilization", Run: Fig12},
	{ID: "fig13", Title: "Figure 13: per-metadata-server network and disk utilization", Run: Fig13},
	{ID: "fig14", Title: "Figure 14: AZ-local reads with/without Read Backup", Run: Fig14},
	{ID: "pathdepth", Title: "Path depth: stat latency, batched vs serial resolution", Run: PathDepth},
	{ID: "writefan", Title: "Write fan: multi-row txn latency and wire footprint, batched vs serial", Run: WriteFan},
	{ID: "failures", Title: "Section V-F: failure drills (AZ loss, split brain, NN loss)", Run: Failures},
	{ID: "chaos", Title: "Chaos: seeded random fault campaigns with invariant auditing", Run: Chaos},
	{ID: "ablations", Title: "Design-choice ablations: Read Backup, batching, block backend", Run: Ablations},
	{ID: "phases", Title: "Trace registry: 2PC phase latency and cross-AZ bytes per operation", Run: Phases},
	{ID: "autoscale", Title: "Elastic tier: autoscaled NNs vs static provisioning under diurnal load", Run: Autoscale},
	{ID: "kernel", Title: "Bench of the bench: simulation-engine primitive costs and grid-point overhead", Run: Kernel},
	{ID: "hotspot", Title: "Namespace heat maps and tail exemplars under a planted skewed workload", Run: Hotspot},
	{ID: "shardsweep", Title: "Namespace sharding: throughput vs shard count at fixed offered load", Run: ShardSweep},
}

// ExperimentByID finds an experiment.
func ExperimentByID(id string) (Experiment, bool) {
	for _, e := range Experiments {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// sweepCache memoizes measured points within one process, so running
// several figures that share the same sweep (fig5, fig6, fig8, fig10,
// fig12, fig13 — e.g. via `hopsbench all`) measures each point once.
// Experiments run sequentially; no locking is needed.
var sweepCache = make(map[string]*Result)

// sweep measures every setup at every server count.
func sweep(o ExpOptions, setups []core.Setup, counts []int) (map[string]map[int]*Result, error) {
	out := make(map[string]map[int]*Result, len(setups))
	for _, setup := range setups {
		out[setup.Name] = make(map[int]*Result, len(counts))
		for _, n := range counts {
			key := fmt.Sprintf("%s|%d|%d|%d|%v", setup.Name, n, o.ClientsPerServer, o.Seed, o.Full)
			if res, ok := sweepCache[key]; ok {
				out[setup.Name][n] = res
				continue
			}
			res, err := Measure(setup, n, o.ClientsPerServer, runConfigFor(o), o.Seed)
			if err != nil {
				return nil, fmt.Errorf("%s @%d servers: %w", setup.Name, n, err)
			}
			sweepCache[key] = res
			recordPoint(setup.Name, n, o, runConfigFor(o), res)
			out[setup.Name][n] = res
		}
	}
	return out, nil
}

func runConfigFor(o ExpOptions) RunConfig {
	cfg := DefaultRunConfig()
	cfg.Seed = o.Seed
	cfg.SLO = o.SLO
	if o.Full {
		cfg.Window = 300 * time.Millisecond
	}
	return cfg
}

// renderSweep formats one metric of a sweep as a servers x setups table.
func renderSweep(results map[string]map[int]*Result, setups []core.Setup, counts []int,
	metric func(*Result) string, header string) string {
	cols := []string{"servers"}
	for _, s := range setups {
		cols = append(cols, s.Name)
	}
	tbl := metrics.NewTable(cols...)
	for _, n := range counts {
		row := []string{fmt.Sprintf("%d", n)}
		for _, s := range setups {
			row = append(row, metric(results[s.Name][n]))
		}
		tbl.AddRow(row...)
	}
	return header + "\n" + tbl.String()
}

// Table1 measures the RTT matrix between hosts in each AZ pair by actually
// pinging across the simulated network, the reproduction of the paper's GCE
// measurements.
func Table1(o ExpOptions) (string, error) {
	env := sim.New(o.Seed)
	defer env.Close()
	topo := simnet.USWest1()
	net := simnet.New(env, topo)
	// Two VMs per zone: the paper's intra-AZ numbers are between two
	// different machines in the same zone, not loopback.
	nodes := make([]*simnet.Node, 3)
	twins := make([]*simnet.Node, 3)
	for z := 0; z < 3; z++ {
		nodes[z] = net.NewNode(fmt.Sprintf("vm-%d", z+1), simnet.ZoneID(z+1), simnet.HostID(2*z+1))
		twins[z] = net.NewNode(fmt.Sprintf("vm-%d'", z+1), simnet.ZoneID(z+1), simnet.HostID(2*z+2))
	}
	const probes = 200
	rtt := [3][3]time.Duration{}
	env.Spawn("ping", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				target := nodes[j]
				if i == j {
					target = twins[j]
				}
				var total time.Duration
				for k := 0; k < probes; k++ {
					t0 := p.Now()
					net.Travel(p, nodes[i], target, 64, time.Second)
					net.Travel(p, target, nodes[i], 64, time.Second)
					p.Flush()
					total += p.Now() - t0
				}
				rtt[i][j] = total / probes
			}
		}
	})
	env.Run()
	tbl := metrics.NewTable("ms", topo.ZoneName(1), topo.ZoneName(2), topo.ZoneName(3))
	for i := 0; i < 3; i++ {
		row := []string{topo.ZoneName(simnet.ZoneID(i + 1))}
		for j := 0; j < 3; j++ {
			row = append(row, fmt.Sprintf("%.3f", float64(rtt[i][j])/float64(time.Millisecond)))
		}
		tbl.AddRow(row...)
	}
	paper := "paper (Table I): a-a 0.247  a-b 0.360  a-c 0.372  b-b 0.251  b-c 0.399  c-c 0.249"
	return "Measured RTT between VMs in different AZs of us-west1 (ms)\n" + tbl.String() + paper + "\n", nil
}

// Table2 reports the NDB thread configuration of a live datanode.
func Table2(o ExpOptions) (string, error) {
	d, err := core.Build(core.DefaultOptions(core.PaperSetups[5])) // HopsFS-CL (3,3)
	if err != nil {
		return "", err
	}
	defer d.Close()
	tbl := metrics.NewTable("type", "count", "responsibility")
	responsibilities := map[string]string{
		"LDM": "tables' data shards", "TC": "on going transactions on the database nodes",
		"RECV": "inbound network traffic", "SEND": "outbound network traffic",
		"REP": "replication across clusters", "IO": "I/O operations", "MAIN": "schema management",
	}
	total := 0
	threads := d.DB.DataNodes()[0].Threads()
	for t := 0; t < len(threads); t++ {
		name := ndb.ThreadType(t).String()
		tbl.AddRow(name, fmt.Sprintf("%d", threads[t].Capacity()), responsibilities[name])
		total += threads[t].Capacity()
	}
	return fmt.Sprintf("NDB CPU configuration per datanode (%d CPUs locked)\n%s", total, tbl.String()), nil
}

// Fig5 is the headline throughput sweep over all nine setups.
func Fig5(o ExpOptions) (string, error) {
	counts := o.ServerCounts()
	results, err := sweep(o, core.PaperSetups, counts)
	if err != nil {
		return "", err
	}
	return renderSweep(results, core.PaperSetups, counts, func(r *Result) string {
		return metrics.FormatOps(r.Throughput)
	}, "Throughput (ops/s) for the Spotify workload"), nil
}

// Fig6 reports requests actually handled per metadata server (log2 axis in
// the paper); kernel-cache hits never reach a CephFS MDS.
func Fig6(o ExpOptions) (string, error) {
	setups := []core.Setup{
		core.PaperSetups[4], core.PaperSetups[5], // HopsFS-CL (2,3), (3,3)
		core.PaperSetups[6], core.PaperSetups[7], core.PaperSetups[8],
	}
	counts := o.ServerCounts()
	results, err := sweep(o, setups, counts)
	if err != nil {
		return "", err
	}
	return renderSweep(results, setups, counts, func(r *Result) string {
		return fmt.Sprintf("%.0f", r.ServerRequestRate)
	}, "Requests handled per metadata server per second"), nil
}

// renderAttribution formats one "where the time went" table: a row per
// labeled report, a column per attribution category, each cell that
// category's share of the report's critical-path time. Untraced setups
// (CephFS clients bypass the tracer) render as all "-".
func renderAttribution(labels []string, reps []*profile.Report) string {
	header := []string{"setup"}
	for c := profile.Category(0); c < profile.NumCategories; c++ {
		header = append(header, c.String())
	}
	tbl := metrics.NewTable(header...)
	for i, rep := range reps {
		row := []string{labels[i]}
		byCat, total := rep.Totals()
		for c := profile.Category(0); c < profile.NumCategories; c++ {
			row = append(row, profile.PctCell(byCat[c], total))
		}
		tbl.AddRow(row...)
	}
	return tbl.String()
}

// Fig7 runs the four micro-benchmarks at the largest server count.
func Fig7(o ExpOptions) (string, error) {
	servers := o.MicroServers()
	micro := []workload.Op{workload.OpMkdir, workload.OpCreate, workload.OpDelete, workload.OpRead}
	microCfg := runConfigFor(o)
	// Single-op workloads have no caches to warm; a short run-in keeps the
	// pre-seeded file pool available for the deleteFile measurement. Each
	// benchmark thread drives its own file set, as the paper's tool does.
	microCfg.WarmOpsPerClient = 30
	microCfg.Affinity = 1.0
	microCfg.Profile = true
	cols := []string{"operation"}
	for _, s := range core.PaperSetups {
		cols = append(cols, s.Name)
	}
	tbl := metrics.NewTable(cols...)
	var attribution strings.Builder
	for _, op := range micro {
		row := []string{op.String()}
		var labels []string
		var reps []*profile.Report
		for _, setup := range core.PaperSetups {
			cfg := microCfg
			cfg.Mix = workload.MicroMix(op)
			opts := core.DefaultOptions(setup)
			opts.MetadataServers = servers
			if o.ClientsPerServer > 0 {
				opts.ClientsPerServer = o.ClientsPerServer
			}
			if op == workload.OpDelete {
				// deleteFile consumes the pool; seed it deep enough for
				// the measurement window. The read benchmarks keep the
				// default per-dataset working set (clients re-read their
				// datasets, which is what makes kernel caches pay off).
				opts.Namespace.FilesPerDir = 80 + 3*servers
			}
			opts.Seed = o.Seed
			d, err := core.Build(opts)
			if err != nil {
				return "", err
			}
			res := Run(d, cfg)
			d.Close()
			row = append(row, metrics.FormatOps(res.Throughput))
			labels = append(labels, setup.Name)
			reps = append(reps, res.Profile)
		}
		tbl.AddRow(row...)
		fmt.Fprintf(&attribution, "\n%s — critical-path share of end-to-end time:\n%s",
			op, renderAttribution(labels, reps))
	}
	return fmt.Sprintf("Micro-operation throughput (ops/s) with %d metadata servers\n%s\nwhere the time went, per AZ configuration:\n%s",
		servers, tbl.String(), attribution.String()), nil
}

// Fig8 reports average end-to-end latency across the sweep.
func Fig8(o ExpOptions) (string, error) {
	counts := o.ServerCounts()
	results, err := sweep(o, core.PaperSetups, counts)
	if err != nil {
		return "", err
	}
	return renderSweep(results, core.PaperSetups, counts, func(r *Result) string {
		return fmt.Sprintf("%.2fms", float64(r.AvgLatency)/float64(time.Millisecond))
	}, "Average end-to-end operation latency (Spotify workload)"), nil
}

// Fig9 reports latency percentiles for create/read/delete on an unloaded
// cluster (~50% of full throughput, approximated by a quarter of the
// closed-loop clients) at the largest server count.
func Fig9(o ExpOptions) (string, error) {
	servers := o.MicroServers()
	ops := []workload.Op{workload.OpCreate, workload.OpRead, workload.OpDelete}
	var b strings.Builder
	fmt.Fprintf(&b, "Latency percentiles at ~50%% load, %d metadata servers\n", servers)
	for _, op := range ops {
		cols := []string{"setup", "p50", "p90", "p99"}
		tbl := metrics.NewTable(cols...)
		var labels []string
		var reps []*profile.Report
		for _, setup := range core.PaperSetups {
			cfg := runConfigFor(o)
			cfg.Mix = workload.MicroMix(op)
			cfg.WarmOpsPerClient = 30
			cfg.Affinity = 1.0
			cfg.Profile = true
			opts := core.DefaultOptions(setup)
			opts.MetadataServers = servers
			opts.ClientsPerServer = max(1, opts.ClientsPerServer/4)
			opts.Namespace.FilesPerDir = 80
			opts.Seed = o.Seed
			d, err := core.Build(opts)
			if err != nil {
				return "", err
			}
			res := Run(d, cfg)
			d.Close()
			tbl.AddRow(setup.Name, fmtMS(res.P50), fmtMS(res.P90), fmtMS(res.P99))
			labels = append(labels, setup.Name)
			reps = append(reps, res.Profile)
		}
		fmt.Fprintf(&b, "\n%s:\n%s", op, tbl.String())
		fmt.Fprintf(&b, "where the time went (critical-path share of end-to-end time):\n%s",
			renderAttribution(labels, reps))
	}
	return b.String(), nil
}

func fmtMS(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
}

// Fig10 reports mean CPU utilization of storage nodes and metadata servers.
func Fig10(o ExpOptions) (string, error) {
	counts := o.ServerCounts()
	results, err := sweep(o, core.PaperSetups, counts)
	if err != nil {
		return "", err
	}
	a := renderSweep(results, core.PaperSetups, counts, func(r *Result) string {
		if r.ThreadCPU == nil {
			return "-" // CephFS OSD CPU stays flat and low (§V-D1)
		}
		return fmt.Sprintf("%.0f%%", r.StorageCPU*100)
	}, "(a) CPU utilization per metadata storage node")
	b := renderSweep(results, core.PaperSetups, counts, func(r *Result) string {
		return fmt.Sprintf("%.0f%%", r.ServerCPU*100)
	}, "(b) CPU utilization per metadata server")
	return a + "\n" + b, nil
}

// Fig11 reports CPU utilization per NDB thread type for HopsFS-CL (3,3).
func Fig11(o ExpOptions) (string, error) {
	setup := core.PaperSetups[5]
	counts := o.ServerCounts()
	types := []string{"MAIN", "REP", "SEND", "TC", "IO", "RECV", "LDM"}
	cols := append([]string{"servers"}, types...)
	cols = append(cols, "Average")
	tbl := metrics.NewTable(cols...)
	for _, n := range counts {
		res, err := Measure(setup, n, o.ClientsPerServer, runConfigFor(o), o.Seed)
		if err != nil {
			return "", err
		}
		row := []string{fmt.Sprintf("%d", n)}
		var sum float64
		for _, ty := range types {
			u := res.ThreadCPU[ty]
			sum += u
			row = append(row, fmt.Sprintf("%.0f%%", u*100))
		}
		row = append(row, fmt.Sprintf("%.0f%%", sum/float64(len(types))*100))
		tbl.AddRow(row...)
	}
	return "CPU utilization per NDB thread type, HopsFS-CL (3,3)\n" + tbl.String(), nil
}

// Fig12 reports storage layer network and disk utilization.
func Fig12(o ExpOptions) (string, error) {
	counts := o.ServerCounts()
	results, err := sweep(o, core.PaperSetups, counts)
	if err != nil {
		return "", err
	}
	sections := []struct {
		header string
		metric func(*Result) string
	}{
		{"(a) Network read per storage node (MB/s)", func(r *Result) string { return fmtMB(r.StorageNetRead) }},
		{"(b) Network write per storage node (MB/s)", func(r *Result) string { return fmtMB(r.StorageNetWrite) }},
		{"(c) Disk read per storage node (MB/s)", func(r *Result) string { return fmtMB(r.StorageDiskRead) }},
		{"(d) Disk write per storage node (MB/s)", func(r *Result) string { return fmtMB(r.StorageDiskWrite) }},
	}
	var b strings.Builder
	for _, sec := range sections {
		b.WriteString(renderSweep(results, core.PaperSetups, counts, sec.metric, sec.header))
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// Fig13 reports per-metadata-server network utilization (metadata servers
// use no disk in either system, §V-D2).
func Fig13(o ExpOptions) (string, error) {
	counts := o.ServerCounts()
	results, err := sweep(o, core.PaperSetups, counts)
	if err != nil {
		return "", err
	}
	a := renderSweep(results, core.PaperSetups, counts, func(r *Result) string {
		return fmtMB(r.ServerNetRead)
	}, "(a) Network read per metadata server (MB/s)")
	b := renderSweep(results, core.PaperSetups, counts, func(r *Result) string {
		return fmtMB(r.ServerNetWrite)
	}, "(b) Network write per metadata server (MB/s)")
	return a + "\n" + b, nil
}

func fmtMB(bytesPerSec float64) string { return fmt.Sprintf("%.1f", bytesPerSec/1e6) }

// Fig14 compares the per-partition replica read split of the inode table
// with Read Backup enabled vs disabled on HopsFS-CL (3,3): with it, reads
// spread over AZ-local replicas; without it, every read hits the primary.
func Fig14(o ExpOptions) (string, error) {
	var b strings.Builder
	for _, disable := range []bool{false, true} {
		opts := core.DefaultOptions(core.PaperSetups[5])
		opts.MetadataServers = 12
		if o.ClientsPerServer > 0 {
			opts.ClientsPerServer = o.ClientsPerServer
		}
		opts.Seed = o.Seed
		opts.DisableReadBackup = disable
		d, err := core.Build(opts)
		if err != nil {
			return "", err
		}
		res := Run(d, cfg14(o))
		d.Close()

		label := "(a) Read Backup ENABLED"
		if disable {
			label = "(b) Read Backup DISABLED"
		}
		fmt.Fprintf(&b, "%s — share of reads served per replica slot (first 24 inode partitions)\n", label)
		tbl := metrics.NewTable("partition", "primary", "backup1", "backup2")
		slots := res.ReadSlots
		sort.Slice(slots, func(i, j int) bool { return slots[i].Index < slots[j].Index })
		var totals [3]float64
		shown := 0
		for _, pr := range slots {
			if pr.Index >= 24 {
				continue
			}
			var total int64
			for _, c := range pr.Counts {
				total += c
			}
			if total == 0 {
				continue
			}
			row := []string{fmt.Sprintf("%d", pr.Index)}
			for s := 0; s < 3; s++ {
				var c int64
				if s < len(pr.Counts) {
					c = pr.Counts[s]
				}
				frac := float64(c) / float64(total)
				totals[s] += frac
				row = append(row, fmt.Sprintf("%.0f%%", frac*100))
			}
			tbl.AddRow(row...)
			shown++
		}
		if shown > 0 {
			tbl.AddRow("mean",
				fmt.Sprintf("%.0f%%", totals[0]/float64(shown)*100),
				fmt.Sprintf("%.0f%%", totals[1]/float64(shown)*100),
				fmt.Sprintf("%.0f%%", totals[2]/float64(shown)*100))
		}
		b.WriteString(tbl.String())
		b.WriteByte('\n')
	}
	b.WriteString("paper: with Read Backup reads split ~50/25/25 (locked reads stay on the primary);\n" +
		"without it 100% of reads hit the primary replica.\n")
	return b.String(), nil
}

func cfg14(o ExpOptions) RunConfig {
	cfg := runConfigFor(o)
	cfg.Window = 150 * time.Millisecond
	return cfg
}

// Failures reproduces §V-F on the chaos engine: an AZ failure, a split
// brain between two AZs, and a metadata-server failure are injected by a
// deterministic schedule while the sole-mutator workload runs against
// HopsFS-CL (3,3). At every step the engine quiesces the workload and
// audits the cross-layer invariants; afterwards the history checker
// proves that no acknowledged write was lost across the drills.
func Failures(o ExpOptions) (string, error) {
	sched := chaos.Schedule{
		{At: 4 * time.Second, Kind: chaos.FaultFailZone, Zone: 2},
		{At: 10 * time.Second, Kind: chaos.FaultRecoverZone, Zone: 2},
		{At: 16 * time.Second, Kind: chaos.FaultPartition, Zone: 1, ZoneB: 3},
		{At: 21 * time.Second, Kind: chaos.FaultHeal, Zone: 1, ZoneB: 3},
		{At: 25 * time.Second, Kind: chaos.FaultKillNN, Node: 1},
		{At: 28 * time.Second, Kind: chaos.FaultRestartNN, Node: 1},
	}
	rep, err := chaos.RunCampaign(o.Seed, chaos.CampaignOptions{
		Schedule: sched,
		Engine:   chaos.Config{Clients: 6, Duration: 42 * time.Second},
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Section V-F failure drills on the chaos engine, HopsFS-CL (3,3):\n")
	snaps := rep.Snapshots
	if len(snaps) != len(sched)+2 {
		return "", fmt.Errorf("failures: expected %d snapshots, got %d", len(sched)+2, len(snaps))
	}
	line := func(label, note string, s chaos.Snapshot) {
		fmt.Fprintf(&b, "%-26s%s ops/s  ndb %d/%d  leader nn-%d  (%s)\n",
			label+":", metrics.FormatOps(s.OpsPerSec), s.LiveNDB, s.TotalNDB, s.LeaderID, note)
	}
	line("baseline", "healthy cluster", snaps[0])
	line("zone 2 failed", "backups promoted, clients failed over", snaps[1])
	line("zone 2 recovered", "datanodes rejoined and resynced", snaps[2])
	line("zone1/zone3 partitioned", "arbitrator resolved split brain", snaps[3])
	line("partition healed", "losing side restarted and resynced", snaps[4])
	line("leader NN killed", "lease expired, new leader elected", snaps[5])
	line("NN restarted", "rejoined the leader election", snaps[6])
	line("final", "all drills recovered", snaps[7])

	fmt.Fprintf(&b, "invariant checkpoints:    %d, violations: %d\n",
		rep.Checkpoints, len(rep.Violations))
	fmt.Fprintf(&b, "acked writes lost:        %d of %d acknowledged operations (paper: AZ loss costs no data)\n",
		rep.Check.AckedLost, rep.Check.OK)
	b.WriteByte('\n')
	b.WriteString(rep.Render())
	return b.String(), nil
}

// Chaos runs the seeded random-campaign sweep: each seed generates its
// own fault schedule (AZ failures, partitions, datanode crashes, NN
// kills, degraded links) and drives it deterministically — the same seed
// always reproduces the same report bytes. The table summarizes each
// campaign; the first seed's full report follows.
func Chaos(o ExpOptions) (string, error) {
	seeds := 10
	if o.Full {
		seeds = 20
	}
	var b strings.Builder
	fmt.Fprintf(&b, "chaos sweep: %d seeded random campaigns on HopsFS-CL (3,3)\n", seeds)
	tbl := metrics.NewTable("seed", "faults", "ops", "ok", "failed", "indet",
		"max MTTR", "unavail", "violations")
	var first *chaos.Report
	clean := 0
	for i := 0; i < seeds; i++ {
		seed := o.Seed + int64(i)
		rep, err := chaos.RunCampaign(seed, chaos.CampaignOptions{})
		if err != nil {
			return "", err
		}
		if first == nil {
			first = rep
		}
		if rep.Clean() {
			clean++
		}
		degrading := 0
		for _, st := range rep.Schedule {
			if st.Kind.Degrades() {
				degrading++
			}
		}
		tbl.AddRow(fmt.Sprintf("%d", seed),
			fmt.Sprintf("%d", degrading),
			fmt.Sprintf("%d", rep.Check.Ops),
			fmt.Sprintf("%d", rep.Check.OK),
			fmt.Sprintf("%d", rep.Check.Failed),
			fmt.Sprintf("%d", rep.Check.Indet),
			fmt.Sprintf("%v", rep.MaxMTTR().Round(time.Millisecond)),
			fmt.Sprintf("%v", rep.TotalUnavailability().Round(time.Millisecond)),
			fmt.Sprintf("%d", len(rep.Violations)+len(rep.Check.Violations)))
	}
	b.WriteString(tbl.String())
	fmt.Fprintf(&b, "clean campaigns: %d/%d (zero invariant violations, zero acked-write losses)\n\n", clean, seeds)
	b.WriteString("first campaign in full:\n")
	b.WriteString(first.Render())
	return b.String(), nil
}

// Ablations quantifies the design decisions DESIGN.md calls out, each as a
// paired comparison on HopsFS-CL (3,3):
//
//	(a) the Read Backup table option (AZ-local reads) on vs off,
//	(b) NDB executor batching on vs off at saturation,
//	(c) datanode-replicated blocks vs the §VII cloud object store backend,
//	(d) optimistic batched path resolution on vs off at depth 8,
//	(e) the batched write path (commit trains) on vs off at 8 rows per txn.
func Ablations(o ExpOptions) (string, error) {
	var b strings.Builder
	setup := core.PaperSetups[5] // HopsFS-CL (3,3)

	// (a) Read Backup.
	b.WriteString("(a) Read Backup table option — Spotify workload, 24 servers\n")
	tblA := metrics.NewTable("variant", "ops/s", "avg latency", "cross-AZ MB/s")
	for _, disable := range []bool{false, true} {
		opts := core.DefaultOptions(setup)
		opts.MetadataServers = 24
		if o.ClientsPerServer > 0 {
			opts.ClientsPerServer = o.ClientsPerServer
		}
		opts.Seed = o.Seed
		opts.DisableReadBackup = disable
		d, err := core.Build(opts)
		if err != nil {
			return "", err
		}
		res := Run(d, runConfigFor(o))
		d.Close()
		name := "Read Backup ON"
		if disable {
			name = "Read Backup OFF"
		}
		tblA.AddRow(name, metrics.FormatOps(res.Throughput),
			fmtMS(res.AvgLatency), fmtMB(res.CrossZoneRate))
	}
	b.WriteString(tblA.String())

	// (b) Executor batching.
	b.WriteString("\n(b) NDB executor batching — Spotify workload, 48 servers\n")
	tblB := metrics.NewTable("variant", "ops/s", "avg latency", "storage CPU")
	for _, batching := range []bool{true, false} {
		opts := core.DefaultOptions(setup)
		opts.MetadataServers = 48
		if o.ClientsPerServer > 0 {
			opts.ClientsPerServer = o.ClientsPerServer
		}
		opts.Seed = o.Seed
		costs := ndb.DefaultCosts()
		name := "batching ON (floor 0.30)"
		if !batching {
			costs.BatchFloor = 1.0 // no amortization under load
			name = "batching OFF (floor 1.00)"
		}
		opts.NDBCosts = &costs
		d, err := core.Build(opts)
		if err != nil {
			return "", err
		}
		res := Run(d, runConfigFor(o))
		d.Close()
		tblB.AddRow(name, metrics.FormatOps(res.Throughput),
			fmtMS(res.AvgLatency), fmt.Sprintf("%.0f%%", res.StorageCPU*100))
	}
	b.WriteString(tblB.String())

	// (c) Block backend.
	b.WriteString("\n(c) Block backend — 256 MB file write + read from zone 1\n")
	tblC := metrics.NewTable("backend", "write", "read", "cross-AZ MB")
	for _, object := range []bool{false, true} {
		opts := core.DefaultOptions(setup)
		opts.MetadataServers = 3
		opts.ClientsPerServer = 0
		opts.WithBlockLayer = true
		opts.ObjectStoreBlocks = object
		opts.Namespace = workload.NamespaceSpec{}
		opts.Seed = o.Seed
		d, err := core.Build(opts)
		if err != nil {
			return "", err
		}
		cl := d.NS.NewClient(1, 9001, 1)
		var wrote, read time.Duration
		base := d.Net.CrossZoneBytes()
		done := false
		d.Env.Spawn("io", func(p *sim.Proc) {
			t0 := p.Now()
			if err := cl.WriteFile(p, "/big", 256<<20); err != nil {
				return
			}
			p.Flush()
			t1 := p.Now()
			if _, err := cl.ReadFile(p, "/big"); err != nil {
				return
			}
			p.Flush()
			wrote, read = t1-t0, p.Now()-t1
			done = true
		})
		d.Env.RunFor(2 * time.Minute)
		crossAZ := float64(d.Net.CrossZoneBytes()-base) / 1e6
		d.Close()
		if !done {
			return "", fmt.Errorf("block I/O did not complete")
		}
		name := "DN pipeline (RF 3)"
		if object {
			name = "cloud object store"
		}
		tblC.AddRow(name, fmtMS(wrote), fmtMS(read), fmt.Sprintf("%.0f", crossAZ))
	}
	b.WriteString(tblC.String())

	// (d) Batched path resolution.
	b.WriteString("\n(d) Optimistic batched path resolution — depth-8 stat, warm hint cache\n")
	tblD := metrics.NewTable("variant", "mean", "p99")
	for _, disable := range []bool{false, true} {
		mean, p99, _, err := pathStatLatency(o, 8, disable)
		if err != nil {
			return "", err
		}
		name := "batched resolution ON"
		if disable {
			name = "batched resolution OFF (serial walk)"
		}
		tblD.AddRow(name, fmtMS(mean), fmtMS(p99))
	}
	b.WriteString(tblD.String())

	// (e) Batched write path.
	b.WriteString("\n(e) Batched write path — 8-row write transaction, raw NDB, 3 AZs, RF 3\n")
	tblE := metrics.NewTable("variant", "mean", "msgs/txn", "trains/txn")
	for _, serial := range []bool{false, true} {
		mean, msgs, trains, _, err := writeFanPoint(o, 8, serial)
		if err != nil {
			return "", err
		}
		name := "batched writes ON (commit trains)"
		if serial {
			name = "batched writes OFF (per-row chains)"
		}
		tblE.AddRow(name, fmtMS(mean), fmt.Sprintf("%.1f", msgs), fmt.Sprintf("%.1f", trains))
	}
	b.WriteString(tblE.String())
	return b.String(), nil
}

// TraceOps are the client operation names that appear as root spans, in
// reporting order.
var TraceOps = []string{
	"stat", "read", "list", "create", "mkdir", "delete", "rename",
	"setPermission", "setOwner", "setQuota", "quota", "attachBlocks",
	"contentSummary",
}

// RenderPhaseTable formats the transaction-phase breakdown of a registry
// snapshot (or window diff): count, mean and max time spent in lock waits
// and in each linear-2PC phase.
func RenderPhaseTable(samples []trace.Sample) string {
	rows := []struct{ label, name string }{
		{"lock_wait", "txn.lock_wait"},
		{"prepare", "txn.phase.prepare"},
		{"commit", "txn.phase.commit"},
		{"complete", "txn.phase.complete"},
	}
	tbl := metrics.NewTable("phase", "count", "mean", "max")
	for _, r := range rows {
		count, _ := trace.Lookup(samples, r.name+".count")
		sum, _ := trace.Lookup(samples, r.name+".sum_ns")
		maxNS, _ := trace.Lookup(samples, r.name+".max_ns")
		mean := time.Duration(0)
		if count > 0 {
			mean = time.Duration(sum / count)
		}
		tbl.AddRow(r.label, fmt.Sprintf("%.0f", count), fmtMS(mean), fmtMS(time.Duration(maxNS)))
	}
	if acq, ok := trace.Lookup(samples, "txn.lock.acquisitions"); ok && acq > 0 {
		waits, _ := trace.Lookup(samples, "txn.lock_wait.count")
		return tbl.String() + fmt.Sprintf("lock acquisitions: %.0f (%.1f%% contended)\n",
			acq, waits/acq*100)
	}
	return tbl.String()
}

// RenderCrossAZTable formats cross-AZ network bytes attributed to each
// operation type. Bytes recorded outside any client span (elections,
// heartbeats, failure detection, replication housekeeping) show up as the
// "unattributed" row, so columns always reconcile with the global counter.
func RenderCrossAZTable(samples []trace.Sample) string {
	tbl := metrics.NewTable("operation", "ops", "cross-AZ bytes", "bytes/op")
	var attributed float64
	for _, op := range TraceOps {
		ops, _ := trace.Lookup(samples, "op."+op+".latency.count")
		bytes, _ := trace.Lookup(samples, trace.Name("op."+op+".net.bytes", "class", "cross_az"))
		if ops == 0 && bytes == 0 {
			continue
		}
		attributed += bytes
		perOp := "-"
		if ops > 0 {
			perOp = fmt.Sprintf("%.0f", bytes/ops)
		}
		tbl.AddRow(op, fmt.Sprintf("%.0f", ops), fmt.Sprintf("%.0f", bytes), perOp)
	}
	total, _ := trace.Lookup(samples, trace.Name("net.bytes", "class", "cross_az"))
	if rest := total - attributed; rest > 0.5 {
		tbl.AddRow("unattributed", "-", fmt.Sprintf("%.0f", rest), "-")
	}
	tbl.AddRow("total", "-", fmt.Sprintf("%.0f", total), "-")
	return tbl.String()
}

// Phases drills into the cluster-wide trace registry on HopsFS (3,3) vs
// HopsFS-CL (3,3): time spent per linear-2PC phase and in lock waits, and
// cross-AZ network bytes attributed to each operation type — the per-op
// decomposition behind §V-E's aggregate cross-AZ rates.
func Phases(o ExpOptions) (string, error) {
	setups := []core.Setup{core.PaperSetups[3], core.PaperSetups[5]}
	var b strings.Builder
	for i, setup := range setups {
		res, err := Measure(setup, 12, o.ClientsPerServer, runConfigFor(o), o.Seed)
		if err != nil {
			return "", err
		}
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%s — 12 metadata servers, Spotify workload, %s window\n",
			setup.Name, res.Window)
		fmt.Fprintf(&b, "\ntransaction phase latency:\n%s", RenderPhaseTable(res.Registry))
		fmt.Fprintf(&b, "\ncross-AZ bytes per operation type:\n%s", RenderCrossAZTable(res.Registry))
	}
	return b.String(), nil
}
