//go:build !race

package bench

import (
	"runtime"
	"testing"
	"time"

	"hopsfscl/internal/core"
)

// TestGridPointAllocCeiling pins the kernel-overhaul acceptance criterion
// as a test: a full grid point (the shape every sweep experiment measures)
// must stay at least 2x below the pre-overhaul kernel's 164 heap
// allocations per served virtual operation. The recorded trajectory lives
// in BENCH_8.json; the post-overhaul kernel measures ~54, so the 82
// ceiling leaves headroom for legitimate feature work while catching a
// lost pool or a reintroduced per-event allocation. Excluded under -race,
// whose instrumentation allocates.
func TestGridPointAllocCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("grid point drives a full deployment")
	}
	setup, ok := core.SetupByName("HopsFS-CL (3,3)")
	if !ok {
		t.Fatal("setup not found")
	}
	opts := core.DefaultOptions(setup)
	opts.MetadataServers = 12
	opts.ClientsPerServer = 32
	opts.Seed = 1
	d, err := core.Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cfg := DefaultRunConfig()
	cfg.Window = 150 * time.Millisecond
	// Heat sketches ride the hot path (op observer, path/inode/partition
	// touches in the namenode and NDB layers); the ceiling must hold with
	// them on. Tracked-key touches are alloc-free by design.
	cfg.Heat = true
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	res := Run(d, cfg)
	runtime.ReadMemStats(&m1)
	if res.Ops == 0 {
		t.Fatal("grid point served no operations")
	}
	perVop := float64(m1.Mallocs-m0.Mallocs) / float64(res.Ops)
	if perVop > 82 {
		t.Fatalf("grid point allocates %.1f objects per virtual op, ceiling 82 "+
			"(pre-overhaul kernel: 164, post-overhaul: ~54 — see BENCH_8.json)", perVop)
	}
	t.Logf("grid point: %.1f allocs per virtual op (ceiling 82)", perVop)
}
