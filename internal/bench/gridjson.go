package bench

import (
	"encoding/json"
	"os"
	"sort"
	"time"
)

// GridPoint is the machine-readable summary of one measured grid cell:
// one setup at one metadata-server count. All values come straight from
// the deterministic Result, so re-running the same grid with the same seed
// reproduces the same bytes — the file diffs cleanly across versions and
// gives the repo a perf trajectory alongside experiments_quick.txt.
type GridPoint struct {
	Setup            string  `json:"setup"`
	Servers          int     `json:"servers"`
	ClientsPerServer int     `json:"clients_per_server"`
	Seed             int64   `json:"seed"`
	WindowMs         float64 `json:"window_ms"`

	Ops        int64   `json:"ops"`
	Errors     int64   `json:"errors"`
	Throughput float64 `json:"throughput_ops_s"`

	AvgLatencyMs float64 `json:"avg_latency_ms"`
	P50Ms        float64 `json:"p50_ms"`
	P90Ms        float64 `json:"p90_ms"`
	P99Ms        float64 `json:"p99_ms"`

	ServerCPU     float64 `json:"server_cpu"`
	StorageCPU    float64 `json:"storage_cpu"`
	CrossZoneRate float64 `json:"cross_zone_rate"`
}

// GridReport is the top-level document WriteGridJSON emits.
type GridReport struct {
	// Command documents how to regenerate the file.
	Command string `json:"command"`
	// Experiments lists the experiment ids whose sweeps fed the grid.
	Experiments []string    `json:"experiments"`
	Points      []GridPoint `json:"points"`
}

// recordedPoints accumulates every distinct grid cell measured by sweep()
// in this process (experiments run sequentially; no locking needed).
var recordedPoints []GridPoint

func recordPoint(setup string, servers int, o ExpOptions, cfg RunConfig, res *Result) {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	recordedPoints = append(recordedPoints, GridPoint{
		Setup:            setup,
		Servers:          servers,
		ClientsPerServer: o.ClientsPerServer,
		Seed:             o.Seed,
		WindowMs:         ms(cfg.Window),
		Ops:              res.Ops,
		Errors:           res.Errors,
		Throughput:       res.Throughput,
		AvgLatencyMs:     ms(res.AvgLatency),
		P50Ms:            ms(res.P50),
		P90Ms:            ms(res.P90),
		P99Ms:            ms(res.P99),
		ServerCPU:        res.ServerCPU,
		StorageCPU:       res.StorageCPU,
		CrossZoneRate:    res.CrossZoneRate,
	})
}

// WriteGridJSON writes the grid cells measured so far as an indented JSON
// report to path, sorted by (setup, servers) for stable diffs.
func WriteGridJSON(path, command string, experiments []string) error {
	pts := append([]GridPoint(nil), recordedPoints...)
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Setup != pts[j].Setup {
			return pts[i].Setup < pts[j].Setup
		}
		return pts[i].Servers < pts[j].Servers
	})
	rep := GridReport{Command: command, Experiments: experiments, Points: pts}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
