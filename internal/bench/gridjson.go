package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

// GridPoint is the machine-readable summary of one measured grid cell:
// one setup at one metadata-server count. All values come straight from
// the deterministic Result, so re-running the same grid with the same seed
// reproduces the same bytes — the file diffs cleanly across versions and
// gives the repo a perf trajectory alongside experiments_quick.txt.
type GridPoint struct {
	Setup            string  `json:"setup"`
	Servers          int     `json:"servers"`
	ClientsPerServer int     `json:"clients_per_server"`
	Seed             int64   `json:"seed"`
	WindowMs         float64 `json:"window_ms"`

	Ops        int64   `json:"ops"`
	Errors     int64   `json:"errors"`
	Throughput float64 `json:"throughput_ops_s"`

	AvgLatencyMs float64 `json:"avg_latency_ms"`
	P50Ms        float64 `json:"p50_ms"`
	P90Ms        float64 `json:"p90_ms"`
	P99Ms        float64 `json:"p99_ms"`

	ServerCPU     float64 `json:"server_cpu"`
	StorageCPU    float64 `json:"storage_cpu"`
	CrossZoneRate float64 `json:"cross_zone_rate"`

	// SinkDropped counts spans evicted from the profiling ring during the
	// window; nonzero means profiler attribution and exemplar capture only
	// saw a suffix of the run.
	SinkDropped int64 `json:"sink_dropped,omitempty"`

	// SLO is the live SLO engine's window summary (runs with -json enable
	// the engine so regressions show up as fired alerts in the report).
	SLO *SLOPointSummary `json:"slo,omitempty"`
}

// SLOPointSummary is the machine-readable SLO outcome of one grid cell.
type SLOPointSummary struct {
	// Pages and Tickets count alerts fired during the window; Firing is how
	// many were still firing at window end.
	Pages   int `json:"pages"`
	Tickets int `json:"tickets"`
	Firing  int `json:"firing"`
	// Cluster is the closing health level ("healthy", "degraded", ...).
	Cluster string `json:"cluster"`
	// FirstDegradedMs is the time from window start to the first degrading
	// event (detection latency when the window contains a regression);
	// negative when nothing degraded.
	FirstDegradedMs float64 `json:"first_degraded_ms"`
}

// GridReport is the top-level document WriteGridJSON emits.
type GridReport struct {
	// Command documents how to regenerate the file.
	Command string `json:"command"`
	// Experiments lists the experiment ids whose sweeps fed the grid.
	Experiments []string    `json:"experiments"`
	Points      []GridPoint `json:"points"`
	// Autoscale carries the elastic experiment's summary when it ran.
	Autoscale *AutoscaleReport `json:"autoscale,omitempty"`
}

// recordedPoints accumulates every distinct grid cell measured by sweep()
// in this process (experiments run sequentially; no locking needed).
var recordedPoints []GridPoint

func recordPoint(setup string, servers int, o ExpOptions, cfg RunConfig, res *Result) {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	var sloSum *SLOPointSummary
	if rep := res.SLOReport; rep != nil {
		sloSum = &SLOPointSummary{
			Pages:           rep.Pages(),
			Tickets:         rep.Tickets(),
			Firing:          rep.Firing,
			Cluster:         rep.Cluster.String(),
			FirstDegradedMs: -1,
		}
		windowStart := rep.End - res.Window
		for _, e := range rep.Events {
			if e.Degrading {
				sloSum.FirstDegradedMs = ms(e.At - windowStart)
				break
			}
		}
	}
	recordedPoints = append(recordedPoints, GridPoint{
		Setup:            setup,
		Servers:          servers,
		ClientsPerServer: o.ClientsPerServer,
		Seed:             o.Seed,
		WindowMs:         ms(cfg.Window),
		Ops:              res.Ops,
		Errors:           res.Errors,
		Throughput:       res.Throughput,
		AvgLatencyMs:     ms(res.AvgLatency),
		P50Ms:            ms(res.P50),
		P90Ms:            ms(res.P90),
		P99Ms:            ms(res.P99),
		ServerCPU:        res.ServerCPU,
		StorageCPU:       res.StorageCPU,
		CrossZoneRate:    res.CrossZoneRate,
		SinkDropped:      res.SinkDropped,
		SLO:              sloSum,
	})
}

// SinkDropWarnings reports every measured grid cell whose profiling sink
// evicted spans during the window, one human-readable line per cell.
// Callers print these as warnings: nonzero drops mean profiler
// attribution and exemplar capture only saw a suffix of the run.
func SinkDropWarnings() []string {
	var warns []string
	for _, p := range recordedPoints {
		if p.SinkDropped > 0 {
			warns = append(warns, fmt.Sprintf(
				"%s @%d servers (seed %d): %d spans dropped from the profiling sink",
				p.Setup, p.Servers, p.Seed, p.SinkDropped))
		}
	}
	return warns
}

// AutoscaleModeReport is one elastic-experiment mode in the JSON report.
type AutoscaleModeReport struct {
	Mode        string   `json:"mode"`
	MinServers  int      `json:"min_servers"`
	MaxServers  int      `json:"max_servers"`
	Ops         int64    `json:"ops"`
	Errors      int64    `json:"errors"`
	SpanMs      float64  `json:"span_ms"`
	OverSLOMs   float64  `json:"over_slo_ms"`
	NNSeconds   float64  `json:"nn_seconds"`
	ScaleUps    int      `json:"scale_ups"`
	ScaleDowns  int      `json:"scale_downs"`
	Checkpoints int      `json:"audit_checkpoints"`
	Violations  int      `json:"audit_violations"`
	Events      []string `json:"events,omitempty"`
}

// AutoscaleReport is the elastic experiment's section of the JSON report.
type AutoscaleReport struct {
	Seed        int64                 `json:"seed"`
	Clients     int                   `json:"clients"`
	Days        int                   `json:"days"`
	DayMs       float64               `json:"day_ms"`
	TargetP99Ms float64               `json:"target_p99_ms"`
	Modes       []AutoscaleModeReport `json:"modes"`
}

var recordedAutoscale *AutoscaleReport

func recordAutoscale(eo ElasticOptions, results map[ElasticMode]*ElasticResult) {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	rep := &AutoscaleReport{
		Seed:        eo.Seed,
		Clients:     eo.Clients,
		Days:        eo.Profile.Days,
		DayMs:       ms(eo.Profile.Day),
		TargetP99Ms: ms(eo.Controller.TargetP99),
	}
	for _, m := range []ElasticMode{ModeElastic, ModeStaticMin, ModeStaticPeak} {
		r, ok := results[m]
		if !ok {
			continue
		}
		mr := AutoscaleModeReport{
			Mode:        m.String(),
			MinServers:  r.MinServing,
			MaxServers:  r.MaxServing,
			Ops:         r.Ops,
			Errors:      r.Errors,
			SpanMs:      ms(r.Span),
			OverSLOMs:   ms(r.OverSLO),
			NNSeconds:   r.NNSeconds,
			ScaleUps:    r.ScaleUps,
			ScaleDowns:  r.ScaleDowns,
			Checkpoints: r.Checkpoints,
			Violations:  len(r.Violations),
		}
		for _, e := range r.Events {
			mr.Events = append(mr.Events, e.String())
		}
		rep.Modes = append(rep.Modes, mr)
	}
	recordedAutoscale = rep
}

// WriteGridJSON writes the grid cells measured so far as an indented JSON
// report to path, sorted by (setup, servers) for stable diffs.
func WriteGridJSON(path, command string, experiments []string) error {
	pts := append([]GridPoint(nil), recordedPoints...)
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Setup != pts[j].Setup {
			return pts[i].Setup < pts[j].Setup
		}
		return pts[i].Servers < pts[j].Servers
	})
	rep := GridReport{Command: command, Experiments: experiments, Points: pts, Autoscale: recordedAutoscale}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
