package bench

import (
	"testing"
	"time"

	"hopsfscl/internal/core"
)

// measureShardPoint is the smoke-test variant of MeasureShards: the full
// sweep's offered load (the single-shard plateau only shows up overrun),
// but a shortened warm-up and window so three points fit a unit-test
// budget.
func measureShardPoint(t *testing.T, o ExpOptions, shards int) *Result {
	t.Helper()
	d, err := core.Build(ShardSweepOptions(o, shardSweepServers, shards))
	if err != nil {
		t.Fatalf("%d shards: %v", shards, err)
	}
	defer d.Close()
	cfg := DefaultRunConfig()
	cfg.Seed = o.Seed
	cfg.WarmOpsPerClient = 40
	cfg.Window = 100 * time.Millisecond
	return Run(d, cfg)
}

// TestShardSweepScalesAndDeterministic is the CI shardsweep smoke: with
// the offered load overrunning one shard's ceiling, two shards must beat
// one by a clear margin, and repeating a measurement at the same seed must
// reproduce it exactly (the sweep's numbers are simulation outputs, not
// samples).
func TestShardSweepScalesAndDeterministic(t *testing.T) {
	o := DefaultExpOptions()

	r1 := measureShardPoint(t, o, 1)
	r2 := measureShardPoint(t, o, 2)
	t.Logf("1 shard: %.0f ops/s (p99 %v)  2 shards: %.0f ops/s (p99 %v)",
		r1.Throughput, r1.P99, r2.Throughput, r2.P99)
	if r1.Ops == 0 || r2.Ops == 0 {
		t.Fatalf("a sweep point measured zero operations")
	}
	if r2.Throughput <= r1.Throughput*1.15 {
		t.Fatalf("2 shards did not scale: %.0f ops/s vs %.0f ops/s at 1 shard (want >1.15x)",
			r2.Throughput, r1.Throughput)
	}
	if testing.Short() {
		return
	}

	r2b := measureShardPoint(t, o, 2)
	if r2b.Ops != r2.Ops || r2b.Throughput != r2.Throughput ||
		r2b.P50 != r2.P50 || r2b.P99 != r2.P99 {
		t.Fatalf("2-shard point not deterministic: ops %d vs %d, p99 %v vs %v",
			r2.Ops, r2b.Ops, r2.P99, r2b.P99)
	}
}
