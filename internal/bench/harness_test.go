package bench

import (
	"strings"
	"testing"
	"time"

	"hopsfscl/internal/core"
	"hopsfscl/internal/workload"
)

// tinyConfig keeps harness tests fast.
func tinyConfig() RunConfig {
	cfg := DefaultRunConfig()
	cfg.Warmup = 20 * time.Millisecond
	cfg.MaxWarmup = 200 * time.Millisecond
	cfg.WarmOpsPerClient = 5
	cfg.Window = 50 * time.Millisecond
	return cfg
}

func tinyMeasure(t *testing.T, name string) *Result {
	t.Helper()
	setup, ok := core.SetupByName(name)
	if !ok {
		t.Fatalf("unknown setup %q", name)
	}
	res, err := Measure(setup, 3, 8, tinyConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunProducesConsistentResult(t *testing.T) {
	res := tinyMeasure(t, "HopsFS-CL (3,3)")
	if res.Ops <= 0 || res.Throughput <= 0 {
		t.Fatalf("no throughput: %+v", res)
	}
	if res.AvgLatency <= 0 || res.P99 < res.P50 {
		t.Fatalf("latency stats inconsistent: avg=%v p50=%v p99=%v", res.AvgLatency, res.P50, res.P99)
	}
	// Little's law sanity: clients / latency ~ throughput (within 3x; the
	// retry/backoff paths add slack).
	expected := 24.0 / res.AvgLatency.Seconds()
	if res.Throughput > 3*expected || res.Throughput < expected/3 {
		t.Fatalf("throughput %f violates Little's law estimate %f", res.Throughput, expected)
	}
	if res.ServerRequestRate <= 0 {
		t.Fatal("no server-side requests measured")
	}
	if res.StorageCPU <= 0 || res.ServerCPU <= 0 {
		t.Fatal("no CPU utilization measured")
	}
	if res.ThreadCPU["RECV"] <= 0 {
		t.Fatal("no RECV thread utilization")
	}
	if res.StorageNetRead <= 0 || res.ServerNetRead <= 0 {
		t.Fatal("no network rates measured")
	}
	if len(res.ReadSlots) == 0 {
		t.Fatal("no partition read counters")
	}
}

func TestRunCephHasNoHopsOnlyMetrics(t *testing.T) {
	res := tinyMeasure(t, "CephFS")
	if res.ThreadCPU != nil {
		t.Fatal("ceph result carries NDB thread metrics")
	}
	if res.ReadSlots != nil {
		t.Fatal("ceph result carries partition read counters")
	}
	if res.Throughput <= 0 {
		t.Fatal("no ceph throughput")
	}
}

func TestRunIsDeterministic(t *testing.T) {
	a := tinyMeasure(t, "HopsFS (2,3)")
	b := tinyMeasure(t, "HopsFS (2,3)")
	if a.Ops != b.Ops || a.AvgLatency != b.AvgLatency || a.Errors != b.Errors {
		t.Fatalf("runs diverge: %+v vs %+v", a, b)
	}
}

func TestAdaptiveWarmupExtends(t *testing.T) {
	setup, _ := core.SetupByName("HopsFS-CL (3,3)")
	opts := core.DefaultOptions(setup)
	opts.MetadataServers = 3
	opts.ClientsPerServer = 8
	d, err := core.Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cfg := tinyConfig()
	cfg.WarmOpsPerClient = 50 // needs far more than the 20ms minimum
	start := d.Env.Now()
	res := Run(d, cfg)
	elapsed := d.Env.Now() - start
	if elapsed <= cfg.Warmup+cfg.Window {
		t.Fatalf("warmup did not extend: %v", elapsed)
	}
	if res.Ops <= 0 {
		t.Fatal("no measured ops")
	}
}

func TestMicroMixesRun(t *testing.T) {
	for _, op := range []workload.Op{workload.OpMkdir, workload.OpRead} {
		setup, _ := core.SetupByName("HopsFS-CL (3,3)")
		cfg := tinyConfig()
		cfg.Mix = workload.MicroMix(op)
		res, err := Measure(setup, 3, 8, cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Throughput <= 0 {
			t.Fatalf("%v micro mix produced no throughput", op)
		}
	}
}

func TestReadSlotDiffing(t *testing.T) {
	now := []PartitionReads{{Index: 0, Counts: []int64{10, 5, 5}}, {Index: 1, Counts: []int64{4, 0, 0}}}
	before := []PartitionReads{{Index: 0, Counts: []int64{7, 5, 1}}, {Index: 1, Counts: []int64{1, 0, 0}}}
	diff := diffReadSlots(now, before)
	if diff[0].Counts[0] != 3 || diff[0].Counts[2] != 4 || diff[1].Counts[0] != 3 {
		t.Fatalf("diff = %+v", diff)
	}
	if diffReadSlots(nil, before) != nil {
		t.Fatal("nil now should diff to nil")
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := []string{"table1", "table2", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "pathdepth", "writefan", "failures", "chaos", "autoscale", "ablations", "phases", "kernel", "hotspot", "shardsweep"}
	if len(Experiments) != len(ids) {
		t.Fatalf("registry has %d experiments, want %d", len(Experiments), len(ids))
	}
	for _, id := range ids {
		e, ok := ExperimentByID(id)
		if !ok || e.Run == nil || e.Title == "" {
			t.Fatalf("experiment %q missing or incomplete", id)
		}
	}
	if _, ok := ExperimentByID("fig99"); ok {
		t.Fatal("bogus experiment id resolved")
	}
}

func TestServerCountGrids(t *testing.T) {
	quick := ExpOptions{}.ServerCounts()
	full := ExpOptions{Full: true}.ServerCounts()
	if len(full) != 8 || full[0] != 1 || full[7] != 60 {
		t.Fatalf("full grid = %v", full)
	}
	if len(quick) >= len(full) {
		t.Fatalf("quick grid (%v) not smaller than full", quick)
	}
	custom := ExpOptions{Counts: []int{3}}.ServerCounts()
	if len(custom) != 1 || custom[0] != 3 {
		t.Fatalf("custom grid = %v", custom)
	}
}

func TestTable1Output(t *testing.T) {
	out, err := Table1(ExpOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"us-west1-a", "us-west1-b", "us-west1-c", "0.36", "0.399"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Output(t *testing.T) {
	out, err := Table2(ExpOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"LDM", "12", "TC", "RECV", "27 CPUs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table2 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig14ShowsReadBackupContrast(t *testing.T) {
	out, err := Fig14(ExpOptions{Seed: 1, ClientsPerServer: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Read Backup ENABLED") || !strings.Contains(out, "Read Backup DISABLED") {
		t.Fatalf("fig14 output incomplete:\n%s", out)
	}
	// The disabled half must contain all-primary rows.
	disabled := out[strings.Index(out, "DISABLED"):]
	if !strings.Contains(disabled, "100%") {
		t.Fatalf("fig14 disabled section shows no 100%% primary rows:\n%s", disabled)
	}
}

// TestExperimentsSmoke runs every sweep-based figure at a tiny grid (2
// servers, 4 clients) to exercise the full rendering paths end to end.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke drives many deployments")
	}
	o := ExpOptions{Seed: 1, Counts: []int{2}, ClientsPerServer: 4}
	for _, id := range []string{"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13"} {
		exp, ok := ExperimentByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		out, err := exp.Run(o)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(out) < 40 {
			t.Fatalf("%s output suspiciously short:\n%s", id, out)
		}
	}
}

func TestFailuresExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("failure drill drives a full deployment")
	}
	out, err := Failures(ExpOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"baseline", "zone 2 failed", "partitioned", "recovered", "timeline"} {
		if !strings.Contains(out, want) {
			t.Fatalf("failures output missing %q:\n%s", want, out)
		}
	}
}

// TestKernelExperimentSmoke runs the bench-of-the-bench experiment at a
// tiny grid point and checks every section renders: the primitive cost
// table and the grid-point engine-cost table.
func TestKernelExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("kernel experiment drives a full deployment")
	}
	out, err := Kernel(ExpOptions{Seed: 1, Counts: []int{3}, ClientsPerServer: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sleep/wake", "mailbox ping-pong", "RecvTimeout (satisfied)",
		"network send", "wall ns per virtual ms", "heap allocs per virtual op"} {
		if !strings.Contains(out, want) {
			t.Fatalf("kernel output missing %q:\n%s", want, out)
		}
	}
}

// TestSeedVarianceIsModest guards the calibration: measured throughput
// across different seeds must agree within a reasonable band, or the
// figures would be noise.
func TestSeedVarianceIsModest(t *testing.T) {
	setup, _ := core.SetupByName("HopsFS-CL (3,3)")
	var rates []float64
	for seed := int64(1); seed <= 3; seed++ {
		cfg := tinyConfig()
		cfg.Seed = seed
		res, err := Measure(setup, 3, 8, cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		rates = append(rates, res.Throughput)
	}
	min, max := rates[0], rates[0]
	for _, r := range rates {
		if r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	if max > 1.3*min {
		t.Fatalf("seed variance too high: %v", rates)
	}
}
