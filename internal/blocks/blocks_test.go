package blocks

import (
	"testing"
	"time"

	"hopsfscl/internal/objstore"
	"hopsfscl/internal/sim"
	"hopsfscl/internal/simnet"
)

// testManager builds a block layer with three datanodes per zone.
func testManager(t *testing.T, azAware bool) (*sim.Env, *Manager) {
	t.Helper()
	env := sim.New(3)
	t.Cleanup(env.Close)
	net := simnet.New(env, simnet.USWest1())
	cfg := DefaultConfig()
	cfg.AZAware = azAware
	cfg.BlockSize = 1 << 20 // 1 MB blocks keep virtual transfer times short
	var pls []Placement
	h := simnet.HostID(0)
	for z := simnet.ZoneID(1); z <= 3; z++ {
		for i := 0; i < 3; i++ {
			pls = append(pls, Placement{Zone: z, Host: h})
			h++
		}
	}
	return env, NewManager(env, net, cfg, pls)
}

func client(m *Manager, z simnet.ZoneID) *simnet.Node {
	return m.net.NewNode("client", z, simnet.HostID(900+int(z)))
}

func TestAZAwarePlacementSpansAllZones(t *testing.T) {
	env, m := testManager(t, true)
	_ = env
	for trial := 0; trial < 20; trial++ {
		targets, err := m.Place(2, 3)
		if err != nil {
			t.Fatal(err)
		}
		zones := map[simnet.ZoneID]bool{}
		for _, dn := range targets {
			zones[dn.Node.Zone()] = true
		}
		if len(zones) != 3 {
			t.Fatalf("replicas span %d zones, want 3", len(zones))
		}
		if targets[0].Node.Zone() != 2 {
			t.Fatalf("first replica in zone %d, want writer zone 2", targets[0].Node.Zone())
		}
	}
}

func TestPlacementDistinctNodes(t *testing.T) {
	for _, aware := range []bool{true, false} {
		_, m := testManager(t, aware)
		targets, err := m.Place(1, 3)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int]bool{}
		for _, dn := range targets {
			if seen[dn.ID] {
				t.Fatalf("aware=%v: duplicate target %d", aware, dn.ID)
			}
			seen[dn.ID] = true
		}
	}
}

func TestPlacementFailsWithoutEnoughNodes(t *testing.T) {
	_, m := testManager(t, true)
	for _, dn := range m.DataNodes()[:7] {
		dn.Node.Fail()
	}
	if _, err := m.Place(1, 3); err != ErrNoDatanodes {
		t.Fatalf("err = %v, want ErrNoDatanodes", err)
	}
}

func TestWriteAndReadBlock(t *testing.T) {
	env, m := testManager(t, true)
	cl := client(m, 1)
	var blk *Block
	env.Spawn("writer", func(p *sim.Proc) {
		b, err := m.WriteBlock(p, cl, 42, 1<<20)
		if err != nil {
			t.Error(err)
			return
		}
		blk = b
	})
	env.RunFor(time.Minute)
	if blk == nil {
		t.Fatal("write did not complete")
	}
	if got := len(blk.Locations()); got != 3 {
		t.Fatalf("block has %d replicas, want 3", got)
	}
	for _, dn := range blk.Locations() {
		if _, w := dn.Node.DiskBytes(); w != 1<<20 {
			t.Fatalf("replica %d wrote %d bytes to disk", dn.ID, w)
		}
	}
	var src *DataNode
	env.Spawn("reader", func(p *sim.Proc) {
		s, err := m.ReadBlock(p, cl, blk.ID)
		if err != nil {
			t.Error(err)
			return
		}
		src = s
	})
	env.RunFor(time.Minute)
	if src == nil || src.Node.Zone() != cl.Zone() {
		t.Fatalf("read served from zone %v, want client zone %v", src.Node.Zone(), cl.Zone())
	}
}

func TestDeleteBlockFreesReplicas(t *testing.T) {
	env, m := testManager(t, true)
	cl := client(m, 1)
	var blk *Block
	env.Spawn("writer", func(p *sim.Proc) {
		blk, _ = m.WriteBlock(p, cl, 1, 1<<20)
	})
	env.RunFor(time.Minute)
	m.DeleteBlock(blk.ID)
	for _, dn := range m.DataNodes() {
		if dn.HoldsBlock(blk.ID) || dn.Used() != 0 {
			t.Fatalf("datanode %d still holds deleted block", dn.ID)
		}
	}
	if _, ok := m.Block(blk.ID); ok {
		t.Fatal("registry still lists deleted block")
	}
}

func TestReReplicationAfterDatanodeFailure(t *testing.T) {
	env, m := testManager(t, true)
	cl := client(m, 1)
	var blk *Block
	env.Spawn("writer", func(p *sim.Proc) {
		blk, _ = m.WriteBlock(p, cl, 1, 1<<20)
	})
	env.RunFor(time.Minute)
	victim := blk.Locations()[0]
	victim.Node.Fail()
	if got := len(blk.Locations()); got != 2 {
		t.Fatalf("live replicas = %d after failure, want 2", got)
	}
	env.RunFor(time.Minute)
	if got := len(blk.Locations()); got != 3 {
		t.Fatalf("live replicas = %d after monitor, want 3 (re-replicated)", got)
	}
	if m.ReReplications != 1 {
		t.Fatalf("re-replications = %d, want 1", m.ReReplications)
	}
	// The replacement must restore the one-replica-per-AZ invariant.
	zones := map[simnet.ZoneID]bool{}
	for _, dn := range blk.Locations() {
		zones[dn.Node.Zone()] = true
	}
	if len(zones) != 3 {
		t.Fatalf("replicas span %d zones after re-replication, want 3", len(zones))
	}
}

func TestAZFailureKeepsBlocksReadable(t *testing.T) {
	env, m := testManager(t, true)
	cl := client(m, 1)
	var blk *Block
	env.Spawn("writer", func(p *sim.Proc) {
		blk, _ = m.WriteBlock(p, cl, 1, 1<<20)
	})
	env.RunFor(time.Minute)
	// Fail all datanodes in zone 1 (the client's zone).
	for _, dn := range m.DataNodes() {
		if dn.Node.Zone() == 1 {
			dn.Node.Fail()
		}
	}
	var err error
	env.Spawn("reader", func(p *sim.Proc) {
		_, err = m.ReadBlock(p, cl, blk.ID)
	})
	env.RunFor(time.Minute)
	if err != nil {
		t.Fatalf("read after AZ failure: %v", err)
	}
}

func TestMonitorRespectsLeaderGate(t *testing.T) {
	env, m := testManager(t, true)
	m.SetLeaderCheck(func() bool { return false })
	cl := client(m, 1)
	var blk *Block
	env.Spawn("writer", func(p *sim.Proc) {
		blk, _ = m.WriteBlock(p, cl, 1, 1<<20)
	})
	env.RunFor(time.Minute)
	blk.Locations()[0].Node.Fail()
	env.RunFor(time.Minute)
	if m.ReReplications != 0 {
		t.Fatal("monitor re-replicated without a leader")
	}
}

func TestSplitSize(t *testing.T) {
	_, m := testManager(t, true)
	tests := []struct {
		size int64
		want int
	}{
		{0, 0},
		{1, 1},
		{1 << 20, 1},
		{(1 << 20) + 1, 2},
		{5 << 20, 5},
	}
	for _, tt := range tests {
		if got := m.SplitSize(tt.size); got != tt.want {
			t.Errorf("SplitSize(%d) = %d, want %d", tt.size, got, tt.want)
		}
	}
}

func TestObjectStoreBackend(t *testing.T) {
	env := sim.New(3)
	t.Cleanup(env.Close)
	net := simnet.New(env, simnet.USWest1())
	cfg := DefaultConfig()
	cfg.BlockSize = 1 << 20
	m := NewManager(env, net, cfg, nil) // no datanodes: the provider owns storage
	store := objstore.New(env, net, objstore.DefaultConfig(), []simnet.ZoneID{1, 2, 3}, 700)
	m.UseObjectStore(store)
	cl := net.NewNode("client", 2, 900)

	var blk *Block
	env.Spawn("io", func(p *sim.Proc) {
		b, err := m.WriteBlock(p, cl, 7, 1<<20)
		if err != nil {
			t.Error(err)
			return
		}
		blk = b
		if _, err := m.ReadBlock(p, cl, b.ID); err != nil {
			t.Error(err)
		}
	})
	env.RunFor(time.Minute)
	if blk == nil || !blk.InObjectStore() {
		t.Fatalf("block not object-backed: %+v", blk)
	}
	if store.Puts != 1 || store.Gets != 1 {
		t.Fatalf("store API counts: %d puts %d gets", store.Puts, store.Gets)
	}
	// Provider durability: never under-replicated, monitor does nothing.
	if got := len(m.UnderReplicated()); got != 0 {
		t.Fatalf("object blocks reported under-replicated: %d", got)
	}
	m.DeleteBlock(blk.ID)
	if store.Len() != 0 {
		t.Fatal("object survived block delete")
	}
	if _, ok := m.Block(blk.ID); ok {
		t.Fatal("registry kept deleted block")
	}
}

// TestSpreadViolationFlagsAndRepairs loses an AZ and brings it back: while
// the zone is down the block must be flagged under-replicated even if the
// replica count was restored within the surviving zones, and once the zone
// recovers the monitor must restore one-replica-per-AZ, trimming any
// excess copies it piled up in the interim.
func TestSpreadViolationFlagsAndRepairs(t *testing.T) {
	env, m := testManager(t, true)
	cl := client(m, 1)
	var blk *Block
	env.Spawn("writer", func(p *sim.Proc) {
		blk, _ = m.WriteBlock(p, cl, 1, 1<<20)
	})
	env.RunFor(time.Minute)

	for _, dn := range m.DataNodes() {
		if dn.Node.Zone() == 2 {
			dn.Node.Fail()
		}
	}
	// Let the monitor re-replicate within the two surviving zones: the
	// count comes back to 3 across the two live AZs, which satisfies the
	// one-replica-per-LIVE-AZ reading of §IV-C — no violation yet.
	env.RunFor(time.Minute)
	if got := len(blk.Locations()); got != 3 {
		t.Fatalf("live replicas = %d with zone 2 down, want 3 (count repaired)", got)
	}
	if m.SpreadViolated(blk) {
		t.Fatal("3 replicas across both live zones flagged as spread violation")
	}

	// The moment the zone returns, 3 replicas over 2 of 3 live zones IS a
	// violation, and the monitor must both restore the spread and trim the
	// excess copy it piled up during the outage.
	for _, dn := range m.DataNodes() {
		if dn.Node.Zone() == 2 {
			dn.Node.Recover()
		}
	}
	if !m.SpreadViolated(blk) {
		t.Fatal("missing-zone spread not flagged after zone recovery")
	}
	found := false
	for _, b := range m.UnderReplicated() {
		if b.ID == blk.ID {
			found = true
		}
	}
	if !found {
		t.Fatal("spread-violating block missing from UnderReplicated()")
	}
	env.RunFor(time.Minute)
	if m.SpreadViolated(blk) {
		t.Fatal("spread violation persists after zone recovery + monitor")
	}
	locs := blk.Locations()
	if len(locs) != 3 {
		t.Fatalf("live replicas = %d after repair, want exactly 3 (excess trimmed)", len(locs))
	}
	zones := map[simnet.ZoneID]bool{}
	for _, dn := range locs {
		zones[dn.Node.Zone()] = true
	}
	if len(zones) != 3 {
		t.Fatalf("replicas span %d zones after repair, want 3", len(zones))
	}
}

// TestReconcileInvalidatesStaleReplicas recovers a datanode whose block
// was re-replicated elsewhere while it was down: the block-report
// reconciliation must drop the stale copy and return its bytes.
func TestReconcileInvalidatesStaleReplicas(t *testing.T) {
	env, m := testManager(t, true)
	cl := client(m, 1)
	var blk *Block
	env.Spawn("writer", func(p *sim.Proc) {
		blk, _ = m.WriteBlock(p, cl, 1, 1<<20)
	})
	env.RunFor(time.Minute)
	victim := blk.Locations()[0]
	usedBefore := victim.Used()
	victim.Node.Fail()
	env.RunFor(time.Minute) // monitor re-replicates onto a different node
	if !victim.HoldsBlock(blk.ID) {
		t.Fatal("setup: victim should still hold the stale replica while down")
	}
	victim.Node.Recover()
	env.RunFor(time.Minute) // monitor reconciles block reports
	if victim.HoldsBlock(blk.ID) {
		t.Fatal("stale replica not invalidated after recovery")
	}
	if victim.Used() >= usedBefore {
		t.Fatalf("stale replica bytes not returned: used %d -> %d", usedBefore, victim.Used())
	}
	if got := len(blk.Locations()); got != 3 {
		t.Fatalf("live replicas = %d after reconcile, want 3", got)
	}
}

// TestOrphanReclamation registers one referenced and one orphaned block
// and advances past the grace period: only the orphan is reclaimed, and
// only after the grace.
func TestOrphanReclamation(t *testing.T) {
	env, m := testManager(t, true)
	m.SetReferencedCheck(func() map[BlockID]bool {
		// Block 1 is referenced by an inode; anything else is orphaned.
		return map[BlockID]bool{1: true}
	})
	cl := client(m, 1)
	env.Spawn("writer", func(p *sim.Proc) {
		m.WriteBlock(p, cl, 1, 1<<20)
		m.WriteBlock(p, cl, 2, 1<<20)
	})
	env.RunFor(30 * time.Second) // inside the grace period (1 minute)
	if m.OrphansReclaimed != 0 {
		t.Fatal("orphan reclaimed before the grace period expired")
	}
	env.RunFor(2 * time.Minute) // past the grace
	if m.OrphansReclaimed != 1 {
		t.Fatalf("orphans reclaimed = %d, want 1", m.OrphansReclaimed)
	}
	if _, ok := m.Block(1); !ok {
		t.Fatal("referenced block was reclaimed")
	}
	if _, ok := m.Block(2); ok {
		t.Fatal("orphaned block survived the grace period")
	}
}
