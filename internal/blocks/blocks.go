// Package blocks implements the HopsFS-CL block storage layer (paper
// §II-A3 and §IV-C): datanodes storing 128 MB blocks of large files,
// replicated over a pipeline, with an AZ-aware placement policy (the
// rack-aware policy with AZs as racks) that guarantees at least one replica
// in every availability zone, and re-replication driven by the leader
// metadata server when datanodes fail.
//
// Small files (< 128 KB) never reach this layer: they are stored inline
// with their metadata in NDB (§II-A3, [29]); see the namenode package.
package blocks

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"hopsfscl/internal/objstore"
	"hopsfscl/internal/sim"
	"hopsfscl/internal/simnet"
	"hopsfscl/internal/trace"
)

// Errors reported by the block layer.
var (
	// ErrNoDatanodes means placement could not find enough live targets.
	ErrNoDatanodes = errors.New("blocks: not enough live datanodes")
	// ErrNoReplica means a read found no live replica of a block.
	ErrNoReplica = errors.New("blocks: no live replica")
	// ErrUnknownBlock means the block id is not registered.
	ErrUnknownBlock = errors.New("blocks: unknown block")
)

// BlockID identifies a block.
type BlockID int64

// Config parameterizes the layer.
type Config struct {
	// BlockSize is the split size for large files (128 MB default).
	BlockSize int64
	// Replication is the target replica count (3 default).
	Replication int
	// AZAware enables the §IV-C placement policy (AZs as racks). When
	// false, placement is uniform random over distinct datanodes.
	AZAware bool
	// MonitorInterval is the period of the leader's re-replication check.
	MonitorInterval time.Duration
	// RPCTimeout bounds pipeline hops.
	RPCTimeout time.Duration
	// OrphanGrace is how long an unreferenced block may exist before the
	// monitor reclaims it. Blocks can be legitimately unreferenced while a
	// client is still streaming a file (written but not yet attached to an
	// inode), so reclamation only fires after this grace period.
	OrphanGrace time.Duration
}

// DefaultConfig returns the paper's block layer defaults.
func DefaultConfig() Config {
	return Config{
		BlockSize:       128 << 20,
		Replication:     3,
		AZAware:         true,
		MonitorInterval: time.Second,
		RPCTimeout:      30 * time.Second,
		OrphanGrace:     time.Minute,
	}
}

// DataNode is a block storage server.
type DataNode struct {
	Node *simnet.Node
	ID   int

	blocks map[BlockID]int64 // replica sizes held, by block id
	used   int64
}

// Used returns bytes of block data held.
func (dn *DataNode) Used() int64 { return dn.used }

// HoldsBlock reports whether the datanode has a replica of b.
func (dn *DataNode) HoldsBlock(b BlockID) bool { _, ok := dn.blocks[b]; return ok }

// Block is the metadata of one block: its locations and size. In HopsFS
// this state lives in NDB tables fed by datanode block reports; here the
// manager holds the aggregated view directly (the experiments never
// bottleneck on it, §V: "the block layer scales linearly").
type Block struct {
	ID    BlockID
	Inode uint64
	Size  int64
	locs  []*DataNode

	// Created is the virtual time the block was written, used by the
	// orphan-reclamation grace period.
	Created time.Duration

	// objectKey is set when the block lives in a cloud object store
	// instead of on datanodes (the paper's §VII future-work block layer).
	objectKey string
}

// InObjectStore reports whether the block is object-store backed.
func (b *Block) InObjectStore() bool { return b.objectKey != "" }

// Locations returns the live replica holders.
func (b *Block) Locations() []*DataNode {
	var out []*DataNode
	for _, dn := range b.locs {
		if dn.Node.Alive() {
			out = append(out, dn)
		}
	}
	return out
}

// Manager owns the datanodes and the block registry, and runs the leader's
// re-replication monitor.
type Manager struct {
	env *sim.Env
	net *simnet.Network
	cfg Config

	dns      []*DataNode
	registry map[BlockID]*Block
	seq      BlockID

	// store, when non-nil, replaces datanode replication with a cloud
	// object store backend: blocks become objects, the provider handles
	// durability, and no re-replication monitor is needed (§VII).
	store *objstore.Store

	// leaderAlive gates the re-replication monitor: in HopsFS the leader
	// NN triggers re-replication; the namesystem wires its election here.
	leaderAlive func() bool

	// referenced, when set, returns the block ids currently referenced by
	// the namespace. The monitor uses it to reclaim orphaned blocks —
	// replicas whose inode vanished without a client-side delete (a crash
	// between block write and attach, or a lost delete acknowledgment).
	referenced func() map[BlockID]bool

	stop bool

	// ReReplications counts blocks copied by the monitor.
	ReReplications int64

	// OrphansReclaimed counts unreferenced blocks deleted by the monitor.
	OrphansReclaimed int64

	// reg, when attached, counts placement decisions per availability zone
	// under blocks.placed{zone=N}.
	reg *trace.Registry
}

// Placement locates one block datanode.
type Placement struct {
	Zone simnet.ZoneID
	Host simnet.HostID
}

// NewManager creates a block layer with one datanode per placement.
func NewManager(env *sim.Env, net *simnet.Network, cfg Config, placements []Placement) *Manager {
	m := &Manager{
		env:         env,
		net:         net,
		cfg:         cfg,
		registry:    make(map[BlockID]*Block),
		leaderAlive: func() bool { return true },
	}
	for i, pl := range placements {
		m.dns = append(m.dns, &DataNode{
			Node:   net.NewNode(fmt.Sprintf("dn-%d", i+1), pl.Zone, pl.Host),
			ID:     i,
			blocks: make(map[BlockID]int64),
		})
	}
	env.Spawn("block-monitor", func(p *sim.Proc) { m.monitor(p) })
	return m
}

// SetLeaderCheck wires the metadata layer's leader election: the monitor
// only acts while the check returns true.
func (m *Manager) SetLeaderCheck(f func() bool) { m.leaderAlive = f }

// SetReferencedCheck wires the namespace's view of which blocks are
// attached to inodes, enabling orphan reclamation in the monitor. A nil
// check disables reclamation.
func (m *Manager) SetReferencedCheck(f func() map[BlockID]bool) { m.referenced = f }

// SetRegistry attaches a metrics registry: every placement decision is
// counted per target availability zone. A nil registry detaches.
func (m *Manager) SetRegistry(reg *trace.Registry) { m.reg = reg }

// countPlacements records the chosen targets' zones in the registry.
// Placements are rare (one per new block), so the lazy lookup is fine.
func (m *Manager) countPlacements(targets []*DataNode) {
	if m.reg == nil {
		return
	}
	for _, dn := range targets {
		m.reg.Counter("blocks.placed", "zone", strconv.Itoa(int(dn.Node.Zone()))).Add(1)
	}
}

// UseObjectStore switches the manager to the cloud object store backend:
// WriteBlock PUTs one object per block, ReadBlock GETs it from the
// client's zone-local endpoint, and durability is the provider's problem.
// Call before any block is written.
func (m *Manager) UseObjectStore(s *objstore.Store) { m.store = s }

// ObjectStore returns the configured backend (nil for DN replication).
func (m *Manager) ObjectStore() *objstore.Store { return m.store }

// Stop halts the background monitor at its next tick.
func (m *Manager) Stop() { m.stop = true }

// DataNodes returns the layer's datanodes.
func (m *Manager) DataNodes() []*DataNode { return m.dns }

// Block returns a registered block.
func (m *Manager) Block(id BlockID) (*Block, bool) {
	b, ok := m.registry[id]
	return b, ok
}

// BlockSize returns the configured block split size.
func (m *Manager) BlockSize() int64 { return m.cfg.BlockSize }

// Replication returns the configured target replica count.
func (m *Manager) Replication() int { return m.cfg.Replication }

// AZAware reports whether the §IV-C placement policy is enabled.
func (m *Manager) AZAware() bool { return m.cfg.AZAware }

// OrphanGrace returns the configured orphan-reclamation grace period.
func (m *Manager) OrphanGrace() time.Duration { return m.cfg.OrphanGrace }

// Blocks returns every registered block sorted by id, for deterministic
// audit sweeps.
func (m *Manager) Blocks() []*Block {
	out := make([]*Block, 0, len(m.registry))
	for _, b := range m.registry {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SplitSize returns the number of blocks a file of the given size needs.
func (m *Manager) SplitSize(size int64) int {
	if size <= 0 {
		return 0
	}
	return int((size + m.cfg.BlockSize - 1) / m.cfg.BlockSize)
}

// Place chooses replication targets for a new block written by a client in
// clientZone, per §IV-C: with AZ awareness the existing rack-aware policy
// runs with AZs as racks — first replica in the writer's AZ, the rest
// spread so that every AZ holds at least one replica. Without awareness,
// targets are uniform random distinct datanodes.
func (m *Manager) Place(clientZone simnet.ZoneID, n int) ([]*DataNode, error) {
	live := m.liveNodes()
	if len(live) < n {
		return nil, ErrNoDatanodes
	}
	if !m.cfg.AZAware {
		m.shuffle(live)
		m.countPlacements(live[:n])
		return live[:n], nil
	}
	byZone := make(map[simnet.ZoneID][]*DataNode)
	var zones []simnet.ZoneID
	for _, dn := range live {
		z := dn.Node.Zone()
		if len(byZone[z]) == 0 {
			zones = append(zones, z)
		}
		byZone[z] = append(byZone[z], dn)
	}
	// Shuffle per zone in the deterministic zone-discovery order: ranging
	// over the map here would consume the shared RNG in map-iteration
	// order and break run-to-run reproducibility.
	for _, z := range zones {
		m.shuffle(byZone[z])
	}
	// Zone order: the writer's zone first, then the others.
	ordered := make([]simnet.ZoneID, 0, len(zones))
	for _, z := range zones {
		if z == clientZone {
			ordered = append(ordered, z)
		}
	}
	for _, z := range zones {
		if z != clientZone {
			ordered = append(ordered, z)
		}
	}
	var out []*DataNode
	for len(out) < n {
		progress := false
		for _, z := range ordered {
			if len(out) == n {
				break
			}
			if len(byZone[z]) > 0 {
				out = append(out, byZone[z][0])
				byZone[z] = byZone[z][1:]
				progress = true
			}
		}
		if !progress {
			return nil, ErrNoDatanodes
		}
	}
	m.countPlacements(out)
	return out, nil
}

func (m *Manager) liveNodes() []*DataNode {
	var out []*DataNode
	for _, dn := range m.dns {
		if dn.Node.Alive() {
			out = append(out, dn)
		}
	}
	return out
}

func (m *Manager) shuffle(s []*DataNode) {
	m.env.Rand().Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
}

// WriteBlock allocates a block of the given size for the inode and stores
// it: through the datanode replication pipeline (client -> dn1 -> dn2 ->
// dn3, each writing to disk), or as one object PUT when the object-store
// backend is configured. It returns the registered block.
func (m *Manager) WriteBlock(p *sim.Proc, client *simnet.Node, inode uint64, size int64) (*Block, error) {
	if m.store != nil {
		m.seq++
		b := &Block{ID: m.seq, Inode: inode, Size: size, Created: m.env.Now(), objectKey: fmt.Sprintf("blocks/%016x", m.seq)}
		if err := m.store.Put(p, client, b.objectKey, size); err != nil {
			return nil, err
		}
		m.registry[b.ID] = b
		return b, nil
	}
	targets, err := m.Place(client.Zone(), m.cfg.Replication)
	if err != nil {
		return nil, err
	}
	m.seq++
	b := &Block{ID: m.seq, Inode: inode, Size: size, Created: m.env.Now(), locs: targets}
	prev := client
	for _, dn := range targets {
		if !m.net.Travel(p, prev, dn.Node, int(size), m.cfg.RPCTimeout) {
			return nil, ErrNoDatanodes
		}
		dn.Node.DiskWrite(p, int(size))
		prev = dn.Node
	}
	// Ack travels back up the pipeline to the client.
	if !m.net.Travel(p, prev, client, 64, m.cfg.RPCTimeout) {
		return nil, ErrNoDatanodes
	}
	for _, dn := range targets {
		dn.blocks[b.ID] = size
		dn.used += size
	}
	m.registry[b.ID] = b
	return b, nil
}

// ReadBlock streams a block to the client from a replica, preferring an
// AZ-local one when AZ awareness is on; with the object-store backend it
// is one GET from the zone-local endpoint (and the returned datanode is
// nil).
func (m *Manager) ReadBlock(p *sim.Proc, client *simnet.Node, id BlockID) (*DataNode, error) {
	b, ok := m.registry[id]
	if !ok {
		return nil, ErrUnknownBlock
	}
	if b.objectKey != "" {
		if _, err := m.store.Get(p, client, b.objectKey); err != nil {
			return nil, err
		}
		return nil, nil
	}
	locs := b.Locations()
	if len(locs) == 0 {
		return nil, ErrNoReplica
	}
	src := locs[0]
	if m.cfg.AZAware {
		for _, dn := range locs {
			if dn.Node.Zone() == client.Zone() {
				src = dn
				break
			}
		}
	} else {
		src = locs[m.env.Rand().Intn(len(locs))]
	}
	if !m.net.Travel(p, client, src.Node, 128, m.cfg.RPCTimeout) {
		return nil, ErrNoReplica
	}
	src.Node.DiskRead(p, int(b.Size))
	if !m.net.Travel(p, src.Node, client, int(b.Size), m.cfg.RPCTimeout) {
		return nil, ErrNoReplica
	}
	return src, nil
}

// DeleteBlock drops a block's replicas (or object) and registry entry.
func (m *Manager) DeleteBlock(id BlockID) {
	b, ok := m.registry[id]
	if !ok {
		return
	}
	if b.objectKey != "" {
		m.store.Delete(b.objectKey)
		delete(m.registry, id)
		return
	}
	for _, dn := range b.locs {
		if dn.HoldsBlock(id) {
			delete(dn.blocks, id)
			dn.used -= b.Size
		}
	}
	delete(m.registry, id)
}

// liveZones returns the set of zones with at least one live datanode.
func (m *Manager) liveZones() map[simnet.ZoneID]bool {
	out := make(map[simnet.ZoneID]bool)
	for _, dn := range m.dns {
		if dn.Node.Alive() {
			out[dn.Node.Zone()] = true
		}
	}
	return out
}

// SpreadViolated reports whether the block breaks the §IV-C placement
// guarantee: its live replicas must cover min(replication factor, live
// zones) distinct availability zones. A block can satisfy the replica
// *count* yet violate this — e.g. after a zone failure forced a doubled-up
// replacement replica and the zone then recovered.
func (m *Manager) SpreadViolated(b *Block) bool {
	if !m.cfg.AZAware || b.objectKey != "" {
		return false
	}
	zones := make(map[simnet.ZoneID]bool)
	for _, dn := range b.Locations() {
		zones[dn.Node.Zone()] = true
	}
	want := len(m.liveZones())
	if want > m.cfg.Replication {
		want = m.cfg.Replication
	}
	return len(zones) < want
}

// UnderReplicated returns blocks needing the monitor's attention: fewer
// live replicas than the target, or live replicas that no longer cover
// every availability zone (the §IV-C one-replica-per-AZ guarantee).
// Object-store blocks are never under-replicated (provider durability).
// The result is sorted by block id for deterministic repair order.
func (m *Manager) UnderReplicated() []*Block {
	var out []*Block
	for _, b := range m.registry {
		if b.objectKey != "" {
			continue
		}
		if len(b.Locations()) < m.cfg.Replication || m.SpreadViolated(b) {
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// HealthStats reports the block tier's health signal: live vs expected
// datanodes and the number of under-replicated blocks (the tier's pressure
// signal — repair backlog). When a registry is attached it also refreshes
// the blocks.datanodes.live and blocks.under_replicated gauges.
func (m *Manager) HealthStats() (live, expected, underReplicated int) {
	expected = len(m.dns)
	live = len(m.liveNodes())
	underReplicated = len(m.UnderReplicated())
	if m.reg != nil {
		m.reg.Gauge("blocks.datanodes.live").Set(float64(live))
		m.reg.Gauge("blocks.under_replicated").Set(float64(underReplicated))
	}
	return live, expected, underReplicated
}

// monitor is the leader-driven re-replication loop (§IV-C2): when a
// datanode failure leaves blocks under-replicated or breaks the AZ-spread
// guarantee, a surviving replica is copied to a fresh target chosen by the
// placement policy. The loop also reconciles stale replicas on recovered
// datanodes (block-report invalidation) and reclaims orphaned blocks.
func (m *Manager) monitor(p *sim.Proc) {
	for !m.stop {
		p.Sleep(m.cfg.MonitorInterval)
		if m.stop || !m.leaderAlive() {
			continue
		}
		m.reconcile()
		for _, b := range m.UnderReplicated() {
			m.reReplicate(p, b)
		}
		m.reclaimOrphans()
	}
}

// reconcile drops replicas that datanodes hold but the registry no longer
// lists (the registry forgets dead replicas when it re-replicates; when the
// node recovers, its stale copy is invalidated — HDFS's block-report path).
func (m *Manager) reconcile() {
	for _, dn := range m.dns {
		if !dn.Node.Alive() {
			continue
		}
		for id, sz := range dn.blocks {
			b, ok := m.registry[id]
			if !ok {
				delete(dn.blocks, id)
				dn.used -= sz
				continue
			}
			listed := false
			for _, loc := range b.locs {
				if loc == dn {
					listed = true
					break
				}
			}
			if !listed {
				delete(dn.blocks, id)
				dn.used -= b.Size
			}
		}
	}
}

// reclaimOrphans deletes blocks no inode references once they outlive the
// grace period (covers crash-orphaned writes and lost delete acks).
func (m *Manager) reclaimOrphans() {
	if m.referenced == nil || m.cfg.OrphanGrace <= 0 {
		return
	}
	var orphans []BlockID
	now := m.env.Now()
	for id, b := range m.registry {
		if now-b.Created >= m.cfg.OrphanGrace {
			orphans = append(orphans, id)
		}
	}
	if len(orphans) == 0 {
		return
	}
	refs := m.referenced()
	sort.Slice(orphans, func(i, j int) bool { return orphans[i] < orphans[j] })
	for _, id := range orphans {
		if !refs[id] {
			m.DeleteBlock(id)
			m.OrphansReclaimed++
		}
	}
}

func (m *Manager) reReplicate(p *sim.Proc, b *Block) {
	locs := b.Locations()
	if len(locs) == 0 {
		return // all replicas lost; nothing to copy from
	}
	src := locs[0]
	have := make(map[int]bool, len(locs))
	haveZones := make(map[simnet.ZoneID]bool, len(locs))
	for _, dn := range locs {
		have[dn.ID] = true
		haveZones[dn.Node.Zone()] = true
	}
	// Prefer a zone that lost its replica, honoring the placement policy's
	// one-replica-per-AZ guarantee.
	var target *DataNode
	for _, dn := range m.liveNodes() {
		if have[dn.ID] {
			continue
		}
		if m.cfg.AZAware && haveZones[dn.Node.Zone()] {
			continue
		}
		target = dn
		break
	}
	if target == nil {
		if len(locs) >= m.cfg.Replication {
			return // count satisfied and every live zone already covered
		}
		for _, dn := range m.liveNodes() {
			if !have[dn.ID] {
				target = dn
				break
			}
		}
	}
	if target == nil {
		return
	}
	if !m.net.Travel(p, src.Node, target.Node, int(b.Size), m.cfg.RPCTimeout) {
		return
	}
	target.Node.DiskWrite(p, int(b.Size))
	target.blocks[b.ID] = b.Size
	target.used += b.Size
	b.locs = append(b.Locations(), target)
	m.ReReplications++
	// A spread-restoring copy can push the block above the target count
	// (the zone recovery returned it to full count, but doubled up in one
	// zone): trim surplus replicas from over-represented zones so the
	// repair restores AZ spread, not just count.
	if m.cfg.AZAware {
		m.trimExcess(b)
	}
}

// trimExcess removes live replicas beyond the replication factor, always
// taking them from zones that hold more than one, so the one-replica-per-AZ
// guarantee is preserved.
func (m *Manager) trimExcess(b *Block) {
	for {
		locs := b.Locations()
		if len(locs) <= m.cfg.Replication {
			return
		}
		perZone := make(map[simnet.ZoneID]int, len(locs))
		for _, dn := range locs {
			perZone[dn.Node.Zone()]++
		}
		victim := -1
		for i, dn := range locs {
			if perZone[dn.Node.Zone()] > 1 {
				victim = i
				break
			}
		}
		if victim < 0 {
			return // more live zones than the target count; keep the spread
		}
		dn := locs[victim]
		delete(dn.blocks, b.ID)
		dn.used -= b.Size
		b.locs = append(locs[:victim], locs[victim+1:]...)
	}
}
