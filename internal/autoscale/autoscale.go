// Package autoscale decides when to grow and shrink the stateless metadata
// serving tier. The controller is deliberately boring: it reads two signals
// — NN thread-pool utilization and the live SLO engine's rolling p99 — and
// applies threshold rules with hysteresis (consecutive-evaluation streaks on
// both directions) and a post-actuation cooldown, because a flapping
// autoscaler is worse than a static fleet. Scaling up is eager (an extra
// step when a burn-rate page is firing, since by then users are already
// hurting); scaling down is lazy (longer streak, lower threshold), which is
// the standard asymmetry: the cost of a spare server for a few virtual
// hours is small against the cost of a latency cliff.
//
// The controller is a pure function of its inputs plus its own streak
// state: no wall clock, no randomness, so a run is byte-identical per seed
// and the scale-event log can be golden-tested.
package autoscale

import (
	"fmt"
	"strings"
	"time"
)

// Config parameterizes the controller.
type Config struct {
	// Min and Max clamp the serving-server count.
	Min, Max int
	// TargetP99 is the latency objective the controller defends; the p99
	// signal is compared against it directly.
	TargetP99 time.Duration
	// UpUtil and DownUtil are the utilization thresholds: above UpUtil (or
	// above TargetP99) counts toward scaling up, below DownUtil (with p99
	// comfortably under target) counts toward scaling down.
	UpUtil, DownUtil float64
	// UpStreak and DownStreak are how many consecutive evaluations must
	// agree before acting — the hysteresis that stops flapping.
	UpStreak, DownStreak int
	// Cooldown suppresses further actions after one fires, long enough for
	// the previous action's effect to show up in the signals.
	Cooldown time.Duration
	// UpStep and DownStep are how many servers one action adds or drains.
	// A firing SLO page doubles UpStep (emergency growth).
	UpStep, DownStep int
}

// DefaultConfig returns thresholds tuned for the compressed-day elastic
// experiments: evaluations every few tens of milliseconds of virtual time,
// days a few seconds long.
func DefaultConfig() Config {
	return Config{
		Min:        1,
		Max:        8,
		TargetP99:  30 * time.Millisecond,
		UpUtil:     0.70,
		DownUtil:   0.30,
		UpStreak:   2,
		DownStreak: 6,
		Cooldown:   200 * time.Millisecond,
		UpStep:     1,
		DownStep:   1,
	}
}

// Validate reports the first structural problem of a config.
func (c Config) Validate() error {
	if c.Min < 1 || c.Max < c.Min {
		return fmt.Errorf("autoscale: need 1 <= Min <= Max (got %d..%d)", c.Min, c.Max)
	}
	if c.TargetP99 <= 0 {
		return fmt.Errorf("autoscale: need a positive TargetP99")
	}
	if c.UpUtil <= c.DownUtil {
		return fmt.Errorf("autoscale: need DownUtil < UpUtil (got %g >= %g)", c.DownUtil, c.UpUtil)
	}
	if c.UpStreak < 1 || c.DownStreak < 1 {
		return fmt.Errorf("autoscale: streaks must be >= 1")
	}
	if c.UpStep < 1 || c.DownStep < 1 {
		return fmt.Errorf("autoscale: steps must be >= 1")
	}
	return nil
}

// Signals is one evaluation's view of the cluster.
type Signals struct {
	// Serving is the current serving-server count.
	Serving int
	// Util is the mean NN thread-pool utilization in [0,1].
	Util float64
	// P99 is the rolling cluster p99 latency (0 when the window is empty).
	P99 time.Duration
	// Firing is the number of page-severity SLO alerts currently firing.
	Firing int
}

// Event is one scale action, recorded for the experiment log.
type Event struct {
	// At is the virtual instant the controller decided.
	At time.Duration
	// Delta is the server count change (positive grows, negative drains).
	Delta int
	// From and To are the serving counts before and after.
	From, To int
	// Reason is the signal summary that triggered the action.
	Reason string
}

// String renders the event as one fixed-layout log line.
func (e Event) String() string {
	return fmt.Sprintf("%10s  SCALE %+d  %d->%d  %s",
		fmt.Sprintf("%.3fs", e.At.Seconds()), e.Delta, e.From, e.To, e.Reason)
}

// RenderEvents renders a scale-event log, one line per event.
func RenderEvents(evs []Event) string {
	var b strings.Builder
	for _, e := range evs {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Controller evaluates signals into scale decisions.
type Controller struct {
	cfg Config

	upRuns, downRuns int
	lastAction       time.Duration
	acted            bool
	events           []Event
}

// New returns a controller; cfg must Validate.
func New(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Controller{cfg: cfg}, nil
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// Events returns the scale actions decided so far, in order.
func (c *Controller) Events() []Event { return c.events }

// Evaluate consumes one signal sample and returns the server-count delta to
// apply now (0 for no action) with the reason. The caller actuates the
// delta; the controller assumes it lands.
func (c *Controller) Evaluate(now time.Duration, s Signals) (delta int, reason string) {
	cfg := c.cfg
	if c.acted && now-c.lastAction < cfg.Cooldown {
		return 0, "cooldown"
	}

	overLatency := s.P99 > cfg.TargetP99
	wantUp := s.Util > cfg.UpUtil || overLatency || s.Firing > 0
	// Scale-down wants both a quiet CPU and comfortable latency headroom
	// (half the target), so a latency-bound cluster with idle CPUs is not
	// drained further.
	wantDown := s.Util < cfg.DownUtil && s.P99 < cfg.TargetP99/2 && s.Firing == 0

	if wantUp {
		c.upRuns++
		c.downRuns = 0
	} else if wantDown {
		c.downRuns++
		c.upRuns = 0
	} else {
		c.upRuns, c.downRuns = 0, 0
	}

	switch {
	case wantUp && c.upRuns >= cfg.UpStreak && s.Serving < cfg.Max:
		step := cfg.UpStep
		why := fmt.Sprintf("util %.2f p99 %.1fms", s.Util, float64(s.P99)/float64(time.Millisecond))
		if s.Firing > 0 {
			// A page means the error budget is burning now: grow harder.
			step *= 2
			why += fmt.Sprintf(" firing %d", s.Firing)
		}
		if s.Serving+step > cfg.Max {
			step = cfg.Max - s.Serving
		}
		c.record(now, step, s.Serving, why)
		return step, why
	case wantDown && c.downRuns >= cfg.DownStreak && s.Serving > cfg.Min:
		step := cfg.DownStep
		if s.Serving-step < cfg.Min {
			step = s.Serving - cfg.Min
		}
		why := fmt.Sprintf("util %.2f p99 %.1fms idle", s.Util, float64(s.P99)/float64(time.Millisecond))
		c.record(now, -step, s.Serving, why)
		return -step, why
	}
	return 0, ""
}

func (c *Controller) record(now time.Duration, delta, from int, reason string) {
	c.upRuns, c.downRuns = 0, 0
	c.lastAction = now
	c.acted = true
	c.events = append(c.events, Event{At: now, Delta: delta, From: from, To: from + delta, Reason: reason})
}
