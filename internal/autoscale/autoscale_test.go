package autoscale

import (
	"strings"
	"testing"
	"time"
)

func newTest(t *testing.T, tweak func(*Config)) *Controller {
	t.Helper()
	cfg := DefaultConfig()
	if tweak != nil {
		tweak(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestUpStreakRequired(t *testing.T) {
	c := newTest(t, nil)
	hot := Signals{Serving: 2, Util: 0.9, P99: 5 * time.Millisecond}
	if d, _ := c.Evaluate(0, hot); d != 0 {
		t.Fatalf("scaled up after one sample (delta %d)", d)
	}
	if d, _ := c.Evaluate(50*time.Millisecond, hot); d != 1 {
		t.Fatalf("no scale-up after streak (delta %d)", d)
	}
}

func TestMixedSignalsResetStreaks(t *testing.T) {
	c := newTest(t, nil)
	hot := Signals{Serving: 2, Util: 0.9}
	calm := Signals{Serving: 2, Util: 0.5, P99: 5 * time.Millisecond}
	c.Evaluate(0, hot)
	c.Evaluate(10*time.Millisecond, calm) // resets the up streak
	if d, _ := c.Evaluate(20*time.Millisecond, hot); d != 0 {
		t.Fatalf("streak survived a calm sample (delta %d)", d)
	}
}

func TestCooldownSuppresses(t *testing.T) {
	c := newTest(t, nil)
	hot := Signals{Serving: 2, Util: 0.9}
	c.Evaluate(0, hot)
	if d, _ := c.Evaluate(time.Millisecond, hot); d != 1 {
		t.Fatal("expected scale-up")
	}
	if d, reason := c.Evaluate(2*time.Millisecond, Signals{Serving: 3, Util: 0.9}); d != 0 || reason != "cooldown" {
		t.Fatalf("cooldown not enforced (delta %d, reason %q)", d, reason)
	}
}

func TestFiringDoublesStep(t *testing.T) {
	c := newTest(t, nil)
	paged := Signals{Serving: 2, Util: 0.9, Firing: 1}
	c.Evaluate(0, paged)
	if d, reason := c.Evaluate(time.Millisecond, paged); d != 2 || !strings.Contains(reason, "firing") {
		t.Fatalf("emergency step = %d (%q), want 2", d, reason)
	}
}

func TestClampAtMax(t *testing.T) {
	c := newTest(t, func(cfg *Config) { cfg.Max = 3 })
	paged := Signals{Serving: 2, Util: 0.9, Firing: 1}
	c.Evaluate(0, paged)
	if d, _ := c.Evaluate(time.Millisecond, paged); d != 1 {
		t.Fatalf("delta %d breaches Max", d)
	}
	at := Signals{Serving: 3, Util: 0.95, Firing: 2}
	c.Evaluate(300*time.Millisecond, at)
	if d, _ := c.Evaluate(301*time.Millisecond, at); d != 0 {
		t.Fatalf("scaled past Max (delta %d)", d)
	}
}

func TestScaleDownLazyAndClamped(t *testing.T) {
	c := newTest(t, func(cfg *Config) { cfg.Min = 2; cfg.DownStreak = 3 })
	idle := Signals{Serving: 3, Util: 0.1, P99: 2 * time.Millisecond}
	for i := 0; i < 2; i++ {
		if d, _ := c.Evaluate(time.Duration(i)*10*time.Millisecond, idle); d != 0 {
			t.Fatalf("drained before the streak completed")
		}
	}
	if d, _ := c.Evaluate(30*time.Millisecond, idle); d != -1 {
		t.Fatal("expected a drain after the streak")
	}
	// At Min nothing more drains, however long the idle streak.
	atMin := Signals{Serving: 2, Util: 0.05, P99: time.Millisecond}
	for i := 0; i < 10; i++ {
		if d, _ := c.Evaluate(time.Second+time.Duration(i)*50*time.Millisecond, atMin); d != 0 {
			t.Fatalf("drained below Min (delta %d)", d)
		}
	}
}

func TestLatencyBoundClusterNotDrained(t *testing.T) {
	c := newTest(t, nil)
	// CPUs idle but latency near target: must not count toward scale-down.
	slow := Signals{Serving: 4, Util: 0.1, P99: 25 * time.Millisecond}
	for i := 0; i < 20; i++ {
		if d, _ := c.Evaluate(time.Duration(i)*50*time.Millisecond, slow); d != 0 {
			t.Fatalf("drained a latency-bound cluster (delta %d)", d)
		}
	}
}

func TestEventLogDeterministic(t *testing.T) {
	run := func() string {
		c := newTest(t, nil)
		sig := func(i int) Signals {
			switch {
			case i < 10:
				return Signals{Serving: 1, Util: 0.9, P99: 40 * time.Millisecond}
			case i < 30:
				return Signals{Serving: 3, Util: 0.5, P99: 10 * time.Millisecond}
			default:
				return Signals{Serving: 3, Util: 0.1, P99: 2 * time.Millisecond}
			}
		}
		serving := 1
		for i := 0; i < 60; i++ {
			s := sig(i)
			s.Serving = serving
			d, _ := c.Evaluate(time.Duration(i)*50*time.Millisecond, s)
			serving += d
		}
		return RenderEvents(c.Events())
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("event logs differ:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "SCALE +") || !strings.Contains(a, "SCALE -") {
		t.Fatalf("expected both directions in the log:\n%s", a)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Min = 0 },
		func(c *Config) { c.Max = c.Min - 1 },
		func(c *Config) { c.TargetP99 = 0 },
		func(c *Config) { c.DownUtil = c.UpUtil },
		func(c *Config) { c.UpStreak = 0 },
		func(c *Config) { c.UpStep = 0 },
	}
	for i, tweak := range bad {
		cfg := DefaultConfig()
		tweak(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}
