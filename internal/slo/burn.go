package slo

import (
	"fmt"
	"time"
)

// objective is one evaluatable SLO: it knows which sketch to read and what
// fraction of a window's completions violated it.
type objective struct {
	name   string
	op     string // sketch key; "*" = the aggregate sketch
	budget float64
	// bad returns how many completions in the summary violated the
	// objective (errors for availability, over-target for latency).
	bad func(Summary) int64
}

// availabilityObjective builds the error-rate objective.
func availabilityObjective(availability float64) objective {
	return objective{
		name:   fmt.Sprintf("availability:%g", availability*100),
		op:     "*",
		budget: 1 - availability,
		bad:    func(m Summary) int64 { return m.Errors },
	}
}

// latencyObjectiveFor builds the over-target objective for one latency SLO.
func latencyObjectiveFor(o LatencyObjective) objective {
	target := o.Target
	return objective{
		name:   o.Name(),
		op:     o.Op,
		budget: o.Budget(),
		bad:    func(m Summary) int64 { return m.OverCount(target) },
	}
}

// alertState tracks one (objective, burn pair) alert.
type alertState struct {
	firing  bool
	firedAt time.Duration
}

// alerter evaluates every objective against every burn pair on each tick
// and emits fire/resolve events on transitions.
type alerter struct {
	objectives []objective
	pairs      []BurnPair
	// states[i*len(pairs)+j] is objective i under pair j.
	states []alertState
	firing int
}

func newAlerter(spec Spec) *alerter {
	a := &alerter{pairs: spec.Burns}
	a.objectives = append(a.objectives, availabilityObjective(spec.Availability))
	for _, o := range spec.Latency {
		a.objectives = append(a.objectives, latencyObjectiveFor(o))
	}
	a.states = make([]alertState, len(a.objectives)*len(a.pairs))
	return a
}

// burnRate returns the budget burn rate of an objective over one window
// summary: observed bad fraction divided by the error budget. An empty
// window burns nothing.
func (o objective) burnRate(m Summary) float64 {
	if m.Count == 0 || o.budget <= 0 {
		return 0
	}
	return float64(o.bad(m)) / float64(m.Count) / o.budget
}

// evaluate runs one tick: sketchFor resolves an op class to its sketch
// (nil when the class has no traffic yet). Returned events are appended in
// (objective, pair) declaration order, which is fixed, so logs are
// deterministic.
func (a *alerter) evaluate(now time.Duration, sketchFor func(op string) *Sketch) []Event {
	var events []Event
	for i, o := range a.objectives {
		sk := sketchFor(o.op)
		for j, p := range a.pairs {
			st := &a.states[i*len(a.pairs)+j]
			var short, long Summary
			if sk != nil {
				short = sk.Window(now, p.Short)
				long = sk.Window(now, p.Long)
			}
			bs, bl := o.burnRate(short), o.burnRate(long)
			switch {
			case !st.firing && bs >= p.Rate && bl >= p.Rate:
				st.firing = true
				st.firedAt = now
				a.firing++
				events = append(events, Event{
					At: now, Kind: EventAlertFire, Severity: p.Severity,
					Subject:   o.name + " [" + p.Name + "]",
					Detail:    fmt.Sprintf("burn %.1fx/%.1fx over %v/%v (threshold %gx)", bs, bl, p.Short, p.Long, p.Rate),
					Degrading: true,
				})
			case st.firing && bl < p.Rate:
				st.firing = false
				a.firing--
				events = append(events, Event{
					At: now, Kind: EventAlertResolve, Severity: SevInfo,
					Subject: o.name + " [" + p.Name + "]",
					Detail:  fmt.Sprintf("burn %.1fx/%.1fx below %gx after %v", bs, bl, p.Rate, now-st.firedAt),
				})
			}
		}
	}
	return events
}

// Firing returns how many (objective, pair) alerts are currently firing.
func (a *alerter) Firing() int { return a.firing }
