package slo

import (
	"strings"
	"testing"
	"time"

	"hopsfscl/internal/trace"
)

func span(id uint64, op string, start, end time.Duration) *trace.Span {
	return &trace.Span{ID: trace.SpanID(id), Name: op, Start: start, End: end}
}

func exemplarEngine() *Engine {
	return NewEngine(Spec{
		Latency: []LatencyObjective{
			{Op: "stat", Quantile: 0.99, Target: 10 * time.Millisecond},
			{Op: "*", Quantile: 0.99, Target: 80 * time.Millisecond},
		},
	}, nil)
}

func TestExemplarsPinBreaches(t *testing.T) {
	x := NewExemplars(exemplarEngine(), ExemplarConfig{})
	x.Observe(span(1, "stat", 0, 20*time.Millisecond))           // breach: 20ms > 10ms
	x.Observe(span(2, "stat", 0, 5*time.Millisecond))            // within objective
	x.Observe(span(3, "mkdir", 0, 100*time.Millisecond))         // breach via "*" fallback
	x.Observe(span(4, "read", time.Second, 1001*time.Millisecond)) // fast, new window

	rep := x.Report(2 * time.Second)
	c := rep.Class("stat")
	if c == nil || c.Target != 10*time.Millisecond {
		t.Fatalf("stat class = %+v", c)
	}
	if len(c.Exemplars) != 1 || c.Exemplars[0].Root.ID != 1 || c.Exemplars[0].Reason&ReasonBreach == 0 {
		t.Fatalf("stat exemplars = %+v, want span 1 pinned for breach", c.Exemplars)
	}
	m := rep.Class("mkdir")
	if m == nil || m.Target != 80*time.Millisecond || len(m.Exemplars) != 1 {
		t.Fatalf("mkdir class = %+v, want one breach pinned against the fallback", m)
	}
	if m.Exemplars[0].Reason&ReasonSlowest == 0 {
		t.Fatal("mkdir span 3 was window 0's slowest but lacks ReasonSlowest")
	}
	if rep.Seen != 4 {
		t.Fatalf("seen = %d, want 4", rep.Seen)
	}
}

func TestExemplarsWindowSlowest(t *testing.T) {
	// No engine: no objectives, only window-slowest pinning.
	x := NewExemplars(nil, ExemplarConfig{Window: time.Second})
	x.Observe(span(1, "stat", 0, 3*time.Millisecond))
	x.Observe(span(2, "stat", 0, 9*time.Millisecond)) // window 0's slowest
	x.Observe(span(3, "stat", 0, 4*time.Millisecond))
	// Crossing into window 1 commits window 0.
	x.Observe(span(4, "stat", time.Second, 1005*time.Millisecond))

	rep := x.Report(2 * time.Second)
	c := rep.Class("stat")
	if c == nil || len(c.Exemplars) != 2 {
		t.Fatalf("stat exemplars = %+v, want the two window-slowest ops", c)
	}
	// Best-first: 9ms before 5ms.
	if c.Exemplars[0].Root.ID != 2 || c.Exemplars[0].Reason != ReasonSlowest {
		t.Fatalf("rank 1 = %+v, want span 2 window-slowest", c.Exemplars[0])
	}
	if c.Exemplars[1].Root.ID != 4 {
		t.Fatalf("rank 2 = %+v, want span 4 (committed by Report)", c.Exemplars[1])
	}
}

func TestExemplarsBoundAndOrder(t *testing.T) {
	x := NewExemplars(exemplarEngine(), ExemplarConfig{PerOp: 2})
	x.Observe(span(1, "stat", 0, 20*time.Millisecond))
	x.Observe(span(2, "stat", 0, 40*time.Millisecond))
	x.Observe(span(3, "stat", 0, 30*time.Millisecond))
	x.Observe(span(4, "stat", 0, 15*time.Millisecond))

	rep := x.Report(time.Second)
	c := rep.Class("stat")
	if len(c.Exemplars) != 2 {
		t.Fatalf("bound not enforced: %d exemplars", len(c.Exemplars))
	}
	if c.Exemplars[0].Root.ID != 2 || c.Exemplars[1].Root.ID != 3 {
		t.Fatalf("kept spans %d,%d, want the two slowest (2,3)",
			c.Exemplars[0].Root.ID, c.Exemplars[1].Root.ID)
	}
	if rep.Pinned != 2 {
		t.Fatalf("pinned = %d, want 2", rep.Pinned)
	}
}

func TestExemplarsBurnFiring(t *testing.T) {
	eng := NewEngine(Spec{
		Window:       10 * time.Second,
		Slots:        40,
		Availability: 0.999,
		Latency:      []LatencyObjective{},
		Burns: []BurnPair{
			{Name: "fast", Short: time.Second, Long: 4 * time.Second, Rate: 10, Severity: SevPage},
		},
	}, nil)
	x := NewExemplars(eng, ExemplarConfig{})

	// 5s of 20% failures lights the burn alert.
	for ms := 0; ms <= 5_000; ms += 10 {
		eng.ObserveOp("stat", time.Duration(ms)*time.Millisecond, time.Millisecond, ms%50 == 0)
	}
	eng.Tick(5 * time.Second)
	if eng.Firing() == 0 {
		t.Fatal("burn alert did not fire; exemplar gating untestable")
	}

	// A fast op completing during the burn is pinned with ReasonBurn even
	// though it breached nothing.
	x.Observe(span(9, "stat", 5*time.Second, 5001*time.Millisecond))
	rep := x.Report(6 * time.Second)
	c := rep.Class("stat")
	if c == nil || len(c.Exemplars) == 0 || c.Exemplars[0].Reason&ReasonBurn == 0 {
		t.Fatalf("exemplars = %+v, want span 9 pinned with ReasonBurn", c)
	}
}

func TestExemplarsDeterministicRender(t *testing.T) {
	drive := func() string {
		x := NewExemplars(exemplarEngine(), ExemplarConfig{PerOp: 3})
		for i := 0; i < 50; i++ {
			end := time.Duration(i*37) * time.Millisecond
			lat := time.Duration(1+i%25) * time.Millisecond
			op := []string{"stat", "read", "create"}[i%3]
			x.Observe(span(uint64(i+1), op, end-lat, end))
		}
		return x.Report(2 * time.Second).Render()
	}
	a, b := drive(), drive()
	if a != b {
		t.Fatalf("renders diverge:\n%s\n---\n%s", a, b)
	}
	if !strings.Contains(a, "op stat") || !strings.Contains(a, "reason=") {
		t.Fatalf("render missing expected content:\n%s", a)
	}
}
