package slo

import (
	"testing"
	"time"
)

// burnSpec is a minimal spec with one availability objective and one burn
// pair over a 1s/4s window, against a 10s sketch.
func burnSpec() Spec {
	return Spec{
		Window:       10 * time.Second,
		Slots:        40,
		Tick:         250 * time.Millisecond,
		Availability: 0.999,
		Latency:      []LatencyObjective{},
		Burns: []BurnPair{
			{Name: "fast", Short: time.Second, Long: 4 * time.Second, Rate: 10, Severity: SevPage},
		},
	}.withDefaults()
}

func TestAlerterFiresOnSustainedBurn(t *testing.T) {
	spec := burnSpec()
	a := newAlerter(spec)
	sk := NewSketch(spec.Window, spec.Slots)
	sketchFor := func(op string) *Sketch { return sk }

	// 10s of healthy traffic: no events.
	for ms := 0; ms <= 10_000; ms += 10 {
		sk.Observe(time.Duration(ms)*time.Millisecond, time.Millisecond, false)
	}
	if ev := a.evaluate(10*time.Second, sketchFor); len(ev) != 0 {
		t.Fatalf("healthy traffic raised events: %v", ev)
	}

	// 5s of 20% errors: burn 200x >> 10x over both windows.
	for ms := 10_000; ms <= 15_000; ms += 10 {
		sk.Observe(time.Duration(ms)*time.Millisecond, time.Millisecond, ms%50 == 0)
	}
	ev := a.evaluate(15*time.Second, sketchFor)
	if len(ev) != 1 || ev[0].Kind != EventAlertFire || !ev[0].Degrading {
		t.Fatalf("want one firing event, got %v", ev)
	}
	if ev[0].Severity != SevPage {
		t.Fatalf("severity = %v, want page", ev[0].Severity)
	}
	if a.Firing() != 1 {
		t.Fatalf("firing = %d", a.Firing())
	}
	// Still burning: no duplicate event.
	if ev := a.evaluate(15250*time.Millisecond, sketchFor); len(ev) != 0 {
		t.Fatalf("duplicate event while firing: %v", ev)
	}

	// Healthy again: resolves once the long window drains.
	for ms := 15_010; ms <= 25_000; ms += 10 {
		sk.Observe(time.Duration(ms)*time.Millisecond, time.Millisecond, false)
	}
	ev = a.evaluate(25*time.Second, sketchFor)
	if len(ev) != 1 || ev[0].Kind != EventAlertResolve {
		t.Fatalf("want one resolve event, got %v", ev)
	}
	if a.Firing() != 0 {
		t.Fatalf("firing after resolve = %d", a.Firing())
	}
}

// TestAlerterNeedsBothWindows pins the multi-window property: a short
// error spike inflates the short window but not the long one, so no alert
// fires (that is the point of the Google-SRE construction).
func TestAlerterNeedsBothWindows(t *testing.T) {
	spec := burnSpec()
	a := newAlerter(spec)
	sk := NewSketch(spec.Window, spec.Slots)
	sketchFor := func(op string) *Sketch { return sk }

	// 9.7s of healthy traffic then two errors: the 1s window burns at ~20x
	// (over the 10x threshold) but the 4s window sits near 5x, so the pair
	// stays quiet.
	for ms := 0; ms < 9_700; ms += 10 {
		sk.Observe(time.Duration(ms)*time.Millisecond, time.Millisecond, false)
	}
	sk.Observe(9700*time.Millisecond, time.Millisecond, true)
	sk.Observe(9700*time.Millisecond, time.Millisecond, true)
	if ev := a.evaluate(9700*time.Millisecond, sketchFor); len(ev) != 0 {
		t.Fatalf("short blip paged: %v", ev)
	}
}

func TestAlerterEmptySketchBurnsNothing(t *testing.T) {
	spec := burnSpec()
	a := newAlerter(spec)
	sk := NewSketch(spec.Window, spec.Slots)
	if ev := a.evaluate(time.Second, func(string) *Sketch { return sk }); len(ev) != 0 {
		t.Fatalf("empty sketch raised events: %v", ev)
	}
	// A missing sketch (op class never seen) is also quiet.
	if ev := a.evaluate(2*time.Second, func(string) *Sketch { return nil }); len(ev) != 0 {
		t.Fatalf("nil sketch raised events: %v", ev)
	}
}

func TestLatencyObjectiveBurn(t *testing.T) {
	o := latencyObjectiveFor(LatencyObjective{Op: "stat", Quantile: 0.99, Target: 10 * time.Millisecond})
	sk := NewSketch(time.Second, 10)
	// 50 fast, 50 slow: half the completions are over target, burn = 50x.
	for i := 0; i < 50; i++ {
		sk.Observe(0, time.Millisecond, false)
		sk.Observe(0, 100*time.Millisecond, false)
	}
	burn := o.burnRate(sk.Window(0, 0))
	if burn < 45 || burn > 55 {
		t.Fatalf("burn = %v, want ~50", burn)
	}
}
