package slo

import (
	"fmt"
	"time"
)

// Severity ranks an event for routing: pages wake someone up, tickets wait
// for morning, info is timeline context.
type Severity uint8

// Severities, least to most urgent.
const (
	SevInfo Severity = iota
	SevTicket
	SevPage
)

// String returns the log label of the severity.
func (s Severity) String() string {
	switch s {
	case SevPage:
		return "page"
	case SevTicket:
		return "ticket"
	default:
		return "info"
	}
}

// EventKind classifies a timeline event.
type EventKind uint8

// Event kinds.
const (
	// EventAlertFire is a burn-rate alert starting to fire.
	EventAlertFire EventKind = iota
	// EventAlertResolve is a firing alert returning below threshold.
	EventAlertResolve
	// EventHealth is a component or cluster health state transition.
	EventHealth
)

// String returns the log label of the kind.
func (k EventKind) String() string {
	switch k {
	case EventAlertFire:
		return "ALERT"
	case EventAlertResolve:
		return "RESOLVE"
	case EventHealth:
		return "HEALTH"
	default:
		return "?"
	}
}

// Event is one line of the deterministic alert/health log.
type Event struct {
	// At is the virtual evaluation instant the event was emitted.
	At       time.Duration
	Kind     EventKind
	Severity Severity
	// Subject names what changed: an objective ("latency:stat:p99<10ms"),
	// a burn pair suffix, or a health component ("ndb", "cluster").
	Subject string
	// Detail is the human-readable cause ("burn 22.1x/16.0x over 1s/8s").
	Detail string
	// Degrading marks events that represent things getting worse — alert
	// fires and health transitions to a worse state. Detection latency is
	// measured to the first degrading event after a fault.
	Degrading bool
}

// String renders the event as one fixed-layout log line.
func (e Event) String() string {
	return fmt.Sprintf("%10s  %-7s %-6s %-34s %s",
		fmtDur(e.At), e.Kind, e.Severity, e.Subject, e.Detail)
}

// fmtDur renders a virtual instant with fixed millisecond precision
// ("12.250s") so log columns align and renders are byte-stable.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}
