package slo

import (
	"fmt"
	"sort"
	"time"
)

// Level is a health state, ordered from best to worst.
type Level uint8

// Health levels.
const (
	Healthy Level = iota
	Degraded
	Critical
	Down
)

// String returns the log label of the level.
func (l Level) String() string {
	switch l {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Critical:
		return "critical"
	default:
		return "down"
	}
}

// ComponentStats is the instantaneous signal a component probe reports.
// Liveness is structural (how many members are up vs expected); Util and
// Pressure are load signals judged against HealthThresholds.
type ComponentStats struct {
	// Live and Expected count component members (NN replicas, NDB data
	// nodes, datanodes). Expected 0 means liveness does not apply.
	Live, Expected int
	// Quorum is the minimum live count for the component to function
	// (e.g. NDB arbitration majority). 0 means any live member suffices.
	Quorum int
	// Util is the mean busy fraction of the component's worker pool over a
	// recent window (0..1).
	Util float64
	// Pressure is the component's contention/backlog signal: mean lock
	// waiters for NDB, under-replicated block count for the block layer.
	Pressure float64
}

// level folds one component's stats into a health level: structural
// liveness rules first (no live member ⇒ down, below quorum ⇒ critical,
// any member lost ⇒ at least degraded), then utilization and pressure
// thresholds, taking the worst verdict.
func (st ComponentStats) level(t HealthThresholds) Level {
	lvl := Healthy
	if st.Expected > 0 {
		switch {
		case st.Live <= 0:
			return Down
		case st.Live < st.Quorum:
			lvl = Critical
		case st.Live < st.Expected:
			lvl = Degraded
		}
	}
	raise := func(l Level) {
		if l > lvl {
			lvl = l
		}
	}
	if t.UtilCritical > 0 && st.Util >= t.UtilCritical {
		raise(Critical)
	} else if t.UtilDegraded > 0 && st.Util >= t.UtilDegraded {
		raise(Degraded)
	}
	if t.PressureCritical > 0 && st.Pressure >= t.PressureCritical {
		raise(Critical)
	} else if t.PressureDegraded > 0 && st.Pressure >= t.PressureDegraded {
		raise(Degraded)
	}
	return lvl
}

// cause renders the dominant reason for a non-healthy verdict, for event
// detail lines.
func (st ComponentStats) cause(t HealthThresholds) string {
	if st.Expected > 0 && st.Live < st.Expected {
		return fmt.Sprintf("%d/%d live (quorum %d)", st.Live, st.Expected, st.Quorum)
	}
	if t.UtilDegraded > 0 && st.Util >= t.UtilDegraded {
		return fmt.Sprintf("util %.0f%%", st.Util*100)
	}
	if t.PressureDegraded > 0 && st.Pressure >= t.PressureDegraded {
		return fmt.Sprintf("pressure %.1f", st.Pressure)
	}
	return fmt.Sprintf("%d/%d live, util %.0f%%, pressure %.1f", st.Live, st.Expected, st.Util*100, st.Pressure)
}

// Probe reports a component's instantaneous stats at virtual instant now.
type Probe func(now time.Duration) ComponentStats

// component is one registered probe plus its last known level.
type component struct {
	name  string
	probe Probe
	level Level
}

// healthModel folds per-component probes into component and cluster-wide
// health states, emitting transition events.
type healthModel struct {
	thresholds HealthThresholds
	components []component // sorted by name; evaluation order is fixed
	cluster    Level
}

func newHealthModel(t HealthThresholds) *healthModel {
	return &healthModel{thresholds: t}
}

// register adds (or replaces) a component probe, keeping evaluation order
// sorted by name so event logs are deterministic regardless of wiring order.
func (h *healthModel) register(name string, probe Probe) {
	for i := range h.components {
		if h.components[i].name == name {
			h.components[i].probe = probe
			return
		}
	}
	h.components = append(h.components, component{name: name, probe: probe})
	sort.Slice(h.components, func(i, j int) bool { return h.components[i].name < h.components[j].name })
}

// evaluate probes every component, emits transition events for components
// that changed level, and folds the cluster level as the worst component.
func (h *healthModel) evaluate(now time.Duration) []Event {
	var events []Event
	worst := Healthy
	for i := range h.components {
		c := &h.components[i]
		st := c.probe(now)
		lvl := st.level(h.thresholds)
		if lvl > worst {
			worst = lvl
		}
		if lvl != c.level {
			events = append(events, Event{
				At: now, Kind: EventHealth, Severity: healthSeverity(lvl),
				Subject:   c.name + ": " + c.level.String() + " -> " + lvl.String(),
				Detail:    st.cause(h.thresholds),
				Degrading: lvl > c.level,
			})
			c.level = lvl
		}
	}
	if len(h.components) > 0 && worst != h.cluster {
		events = append(events, Event{
			At: now, Kind: EventHealth, Severity: healthSeverity(worst),
			Subject:   "cluster: " + h.cluster.String() + " -> " + worst.String(),
			Detail:    fmt.Sprintf("worst of %d components", len(h.components)),
			Degrading: worst > h.cluster,
		})
		h.cluster = worst
	}
	return events
}

// healthSeverity maps a health level to an event severity: entering
// critical/down pages, degraded tickets, recovery to healthy is info.
func healthSeverity(l Level) Severity {
	switch l {
	case Down, Critical:
		return SevPage
	case Degraded:
		return SevTicket
	default:
		return SevInfo
	}
}

// Cluster returns the current cluster-wide level.
func (h *healthModel) Cluster() Level { return h.cluster }

// Levels returns the current per-component levels keyed by name.
func (h *healthModel) Levels() map[string]Level {
	out := make(map[string]Level, len(h.components))
	for _, c := range h.components {
		out[c.name] = c.level
	}
	return out
}
