package slo

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"hopsfscl/internal/trace"
)

// Reason is the bitmask of why an exemplar was pinned.
type Reason uint8

const (
	// ReasonBreach marks an op that finished over its latency objective's
	// target (the op's own objective, falling back to the "*" aggregate).
	ReasonBreach Reason = 1 << iota
	// ReasonBurn marks an op that completed while at least one burn-rate
	// alert was firing.
	ReasonBurn
	// ReasonSlowest marks the slowest op of its capture window.
	ReasonSlowest
)

func (r Reason) String() string {
	if r == 0 {
		return "none"
	}
	var parts []string
	if r&ReasonBreach != 0 {
		parts = append(parts, "p99-breach")
	}
	if r&ReasonBurn != 0 {
		parts = append(parts, "burn-firing")
	}
	if r&ReasonSlowest != 0 {
		parts = append(parts, "window-slowest")
	}
	return strings.Join(parts, "+")
}

// Exemplar is one pinned operation: its full detailed span tree plus why
// it was kept. The root span renders through the critical-path profiler
// (profile.Analyze) for a per-exemplar "where the time went" breakdown.
type Exemplar struct {
	Op string
	// At is the op's virtual end instant; Latency its end-to-end time.
	At      time.Duration
	Latency time.Duration
	// Target is the latency objective the op was judged against (0 when
	// the spec has no applicable objective).
	Target time.Duration
	Reason Reason
	Root   *trace.Span
}

// ExemplarConfig bounds the store.
type ExemplarConfig struct {
	// PerOp is the max pinned exemplars per op class (default 4). The
	// slowest qualifying ops win: rank by latency desc, then earlier end
	// instant, then span ID, so a fixed seed pins a byte-identical set.
	PerOp int
	// Window is the slowest-op capture window: every Window of virtual
	// time, the slowest completed op is pinned even when nothing breaches
	// (default 1s), so quiet runs still yield exemplars.
	Window time.Duration
}

func (c ExemplarConfig) withDefaults() ExemplarConfig {
	if c.PerOp <= 0 {
		c.PerOp = 4
	}
	if c.Window <= 0 {
		c.Window = time.Second
	}
	return c
}

// Exemplars is a bounded deterministic store of outlier span trees,
// installed as the tracer's span observer. It pins ops that breach their
// latency objective, ops that complete while a burn alert is firing, and
// the slowest op of every capture window — the retrieval half of
// tail-based sampling: aggregates say that p99 degraded, exemplars say
// which op, on which path, spent the time where.
type Exemplars struct {
	eng *Engine
	cfg ExemplarConfig
	// targets maps op class -> objective target; fallback is the "*" row.
	targets  map[string]time.Duration
	fallback time.Duration

	mu   sync.Mutex
	// perOp holds each class's pinned exemplars, ordered best-first by
	// (latency desc, At asc, ID asc).
	perOp map[string][]*Exemplar
	// slot is the current capture window index; slotBest the slowest root
	// seen in it so far.
	slot     int64
	slotBest *Exemplar
	seen     int64
}

// NewExemplars builds a store judging ops against eng's spec (eng may be
// nil: no objectives, no burn gating — only window-slowest pinning).
func NewExemplars(eng *Engine, cfg ExemplarConfig) *Exemplars {
	x := &Exemplars{
		eng:     eng,
		cfg:     cfg.withDefaults(),
		targets: make(map[string]time.Duration),
		perOp:   make(map[string][]*Exemplar),
	}
	if eng != nil {
		for _, o := range eng.Spec().Latency {
			if o.Op == "*" {
				x.fallback = o.Target
			} else {
				x.targets[o.Op] = o.Target
			}
		}
	}
	return x
}

// target returns the objective target judged against op (0 if none).
func (x *Exemplars) target(op string) time.Duration {
	if t, ok := x.targets[op]; ok {
		return t
	}
	return x.fallback
}

// Observe judges one finished detailed root span; it is the store's
// trace.SpanObserver. Nil stores and non-root spans are ignored.
func (x *Exemplars) Observe(root *trace.Span) {
	if x == nil || root == nil {
		return
	}
	lat := root.End - root.Start
	target := x.target(root.Name)
	var reason Reason
	if target > 0 && lat > target {
		reason |= ReasonBreach
	}
	if x.eng.Firing() > 0 {
		reason |= ReasonBurn
	}

	x.mu.Lock()
	defer x.mu.Unlock()
	x.seen++
	ex := &Exemplar{Op: root.Name, At: root.End, Latency: lat, Target: target, Reason: reason, Root: root}

	// Window-slowest tracking: when the op's end crosses into a new
	// window, commit the previous window's slowest.
	slot := int64(root.End / x.cfg.Window)
	if slot > x.slot {
		x.commitSlotLocked()
		x.slot = slot
	}
	if slot == x.slot && better(ex, x.slotBest) {
		x.slotBest = ex
	}

	if reason != 0 {
		x.pinLocked(ex)
	}
}

// better orders exemplars best-first: latency desc, At asc, ID asc.
func better(a, b *Exemplar) bool {
	if b == nil {
		return true
	}
	if a.Latency != b.Latency {
		return a.Latency > b.Latency
	}
	if a.At != b.At {
		return a.At < b.At
	}
	return a.Root.ID < b.Root.ID
}

// commitSlotLocked pins the pending window's slowest op. Caller holds x.mu.
func (x *Exemplars) commitSlotLocked() {
	if x.slotBest == nil {
		return
	}
	x.slotBest.Reason |= ReasonSlowest
	x.pinLocked(x.slotBest)
	x.slotBest = nil
}

// pinLocked inserts ex into its class's bounded best-first list (dedup by
// root span ID, merging reasons). Caller holds x.mu.
func (x *Exemplars) pinLocked(ex *Exemplar) {
	list := x.perOp[ex.Op]
	for _, e := range list {
		if e.Root == ex.Root {
			e.Reason |= ex.Reason
			return
		}
	}
	i := sort.Search(len(list), func(i int) bool { return !better(list[i], ex) })
	if i >= x.cfg.PerOp {
		return // ranks below every kept exemplar of a full class
	}
	list = append(list, nil)
	copy(list[i+1:], list[i:])
	list[i] = ex
	if len(list) > x.cfg.PerOp {
		list = list[:x.cfg.PerOp]
	}
	x.perOp[ex.Op] = list
}

// ExemplarClass is one op class's pinned exemplars, best-first.
type ExemplarClass struct {
	Op string
	// Target is the latency objective the class was judged against.
	Target    time.Duration
	Exemplars []*Exemplar
}

// ExemplarReport is an immutable snapshot of the store.
type ExemplarReport struct {
	At time.Duration
	// Seen counts every judged root; Pinned the exemplars retained.
	Seen, Pinned int64
	Classes      []ExemplarClass
}

// Report snapshots the store at virtual instant now, committing the
// in-flight capture window first so a run's last window is not lost.
func (x *Exemplars) Report(now time.Duration) *ExemplarReport {
	if x == nil {
		return nil
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	x.commitSlotLocked()
	r := &ExemplarReport{At: now, Seen: x.seen}
	ops := make([]string, 0, len(x.perOp))
	for op := range x.perOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		list := x.perOp[op]
		if len(list) == 0 {
			continue
		}
		r.Classes = append(r.Classes, ExemplarClass{
			Op:        op,
			Target:    x.target(op),
			Exemplars: append([]*Exemplar(nil), list...),
		})
		r.Pinned += int64(len(list))
	}
	return r
}

// Class returns the report's class for op, or nil.
func (r *ExemplarReport) Class(op string) *ExemplarClass {
	if r == nil {
		return nil
	}
	for i := range r.Classes {
		if r.Classes[i].Op == op {
			return &r.Classes[i]
		}
	}
	return nil
}

// Render formats the pinned set as deterministic text, one block per op
// class. The per-exemplar critical-path breakdown is rendered by callers
// holding the profiler (see bench and cmd/hopstrace): slo stays a leaf
// over trace.
func (r *ExemplarReport) Render() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "exemplars: %d pinned of %d ops judged\n", r.Pinned, r.Seen)
	for _, c := range r.Classes {
		target := "none"
		if c.Target > 0 {
			target = c.Target.String()
		}
		fmt.Fprintf(&b, "op %s (objective target %s):\n", c.Op, target)
		for i, ex := range c.Exemplars {
			fmt.Fprintf(&b, "  #%d span=%d end=%s latency=%s reason=%s\n",
				i+1, ex.Root.ID, ex.At, ex.Latency, ex.Reason)
		}
	}
	return b.String()
}
