package slo

import (
	"testing"
	"time"
)

func testThresholds() HealthThresholds {
	return HealthThresholds{
		UtilDegraded: 0.85, UtilCritical: 0.97,
		PressureDegraded: 1, PressureCritical: 8,
	}
}

func TestComponentLevelStructural(t *testing.T) {
	th := testThresholds()
	cases := []struct {
		st   ComponentStats
		want Level
	}{
		{ComponentStats{Live: 3, Expected: 3, Quorum: 2}, Healthy},
		{ComponentStats{Live: 2, Expected: 3, Quorum: 2}, Degraded},
		{ComponentStats{Live: 1, Expected: 3, Quorum: 2}, Critical},
		{ComponentStats{Live: 0, Expected: 3, Quorum: 2}, Down},
		// Down wins even with idle load signals; quorum 0 means any member
		// suffices.
		{ComponentStats{Live: 1, Expected: 3, Quorum: 0}, Degraded},
		// Expected 0: liveness does not apply, load signals rule.
		{ComponentStats{Live: 0, Expected: 0}, Healthy},
	}
	for _, c := range cases {
		if got := c.st.level(th); got != c.want {
			t.Errorf("level(%+v) = %v, want %v", c.st, got, c.want)
		}
	}
}

func TestComponentLevelLoadSignals(t *testing.T) {
	th := testThresholds()
	cases := []struct {
		st   ComponentStats
		want Level
	}{
		{ComponentStats{Live: 3, Expected: 3, Util: 0.90}, Degraded},
		{ComponentStats{Live: 3, Expected: 3, Util: 0.98}, Critical},
		{ComponentStats{Live: 3, Expected: 3, Pressure: 2}, Degraded},
		{ComponentStats{Live: 3, Expected: 3, Pressure: 9}, Critical},
		// Worst signal wins: one lost member plus critical pressure.
		{ComponentStats{Live: 2, Expected: 3, Pressure: 9}, Critical},
	}
	for _, c := range cases {
		if got := c.st.level(th); got != c.want {
			t.Errorf("level(%+v) = %v, want %v", c.st, got, c.want)
		}
	}
}

func TestHealthModelTransitions(t *testing.T) {
	h := newHealthModel(testThresholds())
	stats := map[string]ComponentStats{
		"ndb":      {Live: 6, Expected: 6, Quorum: 4},
		"namenode": {Live: 3, Expected: 3, Quorum: 1},
	}
	for name := range stats {
		n := name
		h.register(n, func(time.Duration) ComponentStats { return stats[n] })
	}

	if ev := h.evaluate(time.Second); len(ev) != 0 {
		t.Fatalf("healthy cluster raised events: %v", ev)
	}
	if h.Cluster() != Healthy {
		t.Fatalf("cluster = %v", h.Cluster())
	}

	// Lose two NDB nodes below quorum: ndb critical + cluster critical.
	stats["ndb"] = ComponentStats{Live: 3, Expected: 6, Quorum: 4}
	ev := h.evaluate(2 * time.Second)
	if len(ev) != 2 {
		t.Fatalf("want 2 transition events, got %v", ev)
	}
	if ev[0].Subject != "ndb: healthy -> critical" || !ev[0].Degrading || ev[0].Severity != SevPage {
		t.Fatalf("component event = %+v", ev[0])
	}
	if ev[1].Subject != "cluster: healthy -> critical" {
		t.Fatalf("cluster event = %+v", ev[1])
	}

	// Same state: no repeated events.
	if ev := h.evaluate(3 * time.Second); len(ev) != 0 {
		t.Fatalf("steady state raised events: %v", ev)
	}

	// Recovery emits info-severity non-degrading transitions.
	stats["ndb"] = ComponentStats{Live: 6, Expected: 6, Quorum: 4}
	ev = h.evaluate(4 * time.Second)
	if len(ev) != 2 || ev[0].Degrading || ev[0].Severity != SevInfo {
		t.Fatalf("recovery events = %v", ev)
	}
	if h.Cluster() != Healthy {
		t.Fatalf("cluster after recovery = %v", h.Cluster())
	}
}

// TestHealthModelOrderIndependent pins determinism: the event order depends
// on component names, not registration order.
func TestHealthModelOrderIndependent(t *testing.T) {
	run := func(names []string) string {
		h := newHealthModel(testThresholds())
		for _, n := range names {
			h.register(n, func(time.Duration) ComponentStats {
				return ComponentStats{Live: 1, Expected: 2, Quorum: 1}
			})
		}
		var out string
		for _, ev := range h.evaluate(time.Second) {
			out += ev.String() + "\n"
		}
		return out
	}
	a := run([]string{"ndb", "blocks", "namenode"})
	b := run([]string{"namenode", "ndb", "blocks"})
	if a != b {
		t.Fatalf("event log depends on registration order:\n%s\nvs\n%s", a, b)
	}
}
