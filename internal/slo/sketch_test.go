package slo

import (
	"testing"
	"time"
)

func TestBucketBoundsMonotone(t *testing.T) {
	for i := 1; i < numBuckets; i++ {
		if bucketBounds[i] <= bucketBounds[i-1] {
			t.Fatalf("bucket bounds not increasing at %d: %v <= %v", i, bucketBounds[i], bucketBounds[i-1])
		}
	}
	for _, d := range []time.Duration{0, time.Microsecond, 20 * time.Microsecond, time.Millisecond, time.Second, time.Hour} {
		b := bucketOf(d)
		if d > bucketBounds[b] {
			t.Fatalf("bucketOf(%v) = %d but bound %v < value", d, b, bucketBounds[b])
		}
		if b > 0 && d <= bucketBounds[b-1] {
			t.Fatalf("bucketOf(%v) = %d but previous bound %v already covers it", d, b, bucketBounds[b-1])
		}
	}
}

func TestSketchEmptyWindow(t *testing.T) {
	s := NewSketch(2*time.Second, 20)
	m := s.Window(10*time.Second, 0)
	if m.Count != 0 || m.Errors != 0 || m.Max != 0 {
		t.Fatalf("empty sketch summary not zero: %+v", m)
	}
	if p := m.Percentile(0.99); p != 0 {
		t.Fatalf("empty percentile = %v, want 0", p)
	}
	if r := m.Rate(); r != 0 {
		t.Fatalf("empty rate = %v, want 0", r)
	}
	if f := m.ErrorFraction(); f != 0 {
		t.Fatalf("empty error fraction = %v, want 0", f)
	}
	if mean := m.Mean(); mean != 0 {
		t.Fatalf("empty mean = %v, want 0", mean)
	}
}

// TestSketchWindowBoundary pins the inclusion rule: a slot is inside the
// trailing window iff its start lies in (now-window, now], so with 100ms
// slots a query for the last 200ms at t=1s covers observations from 800ms
// (exclusive) on.
func TestSketchWindowBoundary(t *testing.T) {
	s := NewSketch(time.Second, 10)                           // 100ms slots
	s.Observe(800*time.Millisecond, time.Millisecond, false)  // slot [800,900) — outside
	s.Observe(850*time.Millisecond, time.Millisecond, false)  // same slot — outside
	s.Observe(900*time.Millisecond, time.Millisecond, false)  // slot [900,1000) — inside
	s.Observe(1000*time.Millisecond, time.Millisecond, false) // slot [1000,1100) — inside (current)

	m := s.Window(time.Second, 200*time.Millisecond)
	if m.Count != 2 {
		t.Fatalf("200ms window at 1s: count = %d, want 2", m.Count)
	}
	// Widening by one slot picks up the [800,900) pair.
	m = s.Window(time.Second, 300*time.Millisecond)
	if m.Count != 4 {
		t.Fatalf("300ms window at 1s: count = %d, want 4", m.Count)
	}
}

func TestSketchExpiresOldSlots(t *testing.T) {
	s := NewSketch(time.Second, 10)
	s.Observe(0, time.Millisecond, false)
	if m := s.Window(500*time.Millisecond, 0); m.Count != 1 {
		t.Fatalf("fresh observation missing: %+v", m)
	}
	// Advance past the span: the slot's ring position is reused and the
	// old tenant must not leak into the merged summary.
	s.Observe(5*time.Second, 2*time.Millisecond, true)
	m := s.Window(5*time.Second, 0)
	if m.Count != 1 || m.Errors != 1 {
		t.Fatalf("expired slot leaked: %+v", m)
	}
}

func TestSketchStaleObservationLandsInCurrentSlot(t *testing.T) {
	s := NewSketch(time.Second, 10)
	s.Observe(2*time.Second, time.Millisecond, false)
	// An observation with an older timestamp (stale caller) must not
	// resurrect an expired slot; it lands in the newest slot.
	s.Observe(time.Second, time.Millisecond, false)
	if m := s.Window(2*time.Second, 100*time.Millisecond); m.Count != 2 {
		t.Fatalf("stale observation lost: %+v", m)
	}
}

func TestSketchPercentileClampsToMax(t *testing.T) {
	s := NewSketch(time.Second, 10)
	// One observation: every quantile must answer exactly the observed
	// latency, not the (much wider) bucket upper bound.
	s.Observe(0, 3*time.Millisecond, false)
	m := s.Window(0, 0)
	if p := m.Percentile(0.99); p != 3*time.Millisecond {
		t.Fatalf("p99 of single 3ms op = %v, want 3ms", p)
	}
	if p := m.Percentile(1); p != 3*time.Millisecond {
		t.Fatalf("p100 = %v, want 3ms", p)
	}
}

func TestSketchPercentileOrdering(t *testing.T) {
	s := NewSketch(time.Second, 10)
	for i := 0; i < 100; i++ {
		s.Observe(time.Duration(i)*time.Millisecond, time.Duration(i+1)*time.Millisecond, false)
	}
	m := s.Window(100*time.Millisecond, 0)
	p50, p95, p99 := m.Percentile(0.5), m.Percentile(0.95), m.Percentile(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Fatalf("percentiles not ordered: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	if p99 > m.Max {
		t.Fatalf("p99 %v exceeds max %v", p99, m.Max)
	}
}

func TestSketchOverCount(t *testing.T) {
	s := NewSketch(time.Second, 10)
	for i := 0; i < 90; i++ {
		s.Observe(0, time.Millisecond, false)
	}
	for i := 0; i < 10; i++ {
		s.Observe(0, 100*time.Millisecond, false)
	}
	m := s.Window(0, 0)
	over := m.OverCount(10 * time.Millisecond)
	if over != 10 {
		t.Fatalf("OverCount(10ms) = %d, want 10", over)
	}
	if m.OverCount(time.Hour) != 0 {
		t.Fatalf("OverCount(1h) = %d, want 0", m.OverCount(time.Hour))
	}
}

func TestSketchErrorCounting(t *testing.T) {
	s := NewSketch(time.Second, 10)
	s.Observe(0, time.Millisecond, false)
	s.Observe(0, time.Millisecond, true)
	s.Observe(0, time.Millisecond, true)
	m := s.Window(0, 0)
	if m.Errors != 2 || m.Count != 3 {
		t.Fatalf("errors=%d count=%d, want 2/3", m.Errors, m.Count)
	}
	if f := m.ErrorFraction(); f < 0.66 || f > 0.67 {
		t.Fatalf("error fraction = %v, want 2/3", f)
	}
}

func TestNilSketchIsSafe(t *testing.T) {
	var s *Sketch
	s.Observe(0, time.Millisecond, false)
	if m := s.Window(0, 0); m.Count != 0 {
		t.Fatal("nil sketch returned observations")
	}
}
