package slo

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// LatencyObjective declares "quantile of op completions must finish within
// Target": p99 stat < 10ms means 99% of stats under 10ms, so the error
// budget is the remaining 1% — completions slower than Target consume it.
type LatencyObjective struct {
	// Op is the operation class ("stat", "create", ...); "*" covers every
	// class through the aggregate sketch.
	Op string
	// Quantile is the objective quantile in (0,1), e.g. 0.99.
	Quantile float64
	// Target is the latency bound at the quantile.
	Target time.Duration
}

// Budget returns the objective's error budget: the allowed fraction of
// completions over Target.
func (o LatencyObjective) Budget() float64 { return 1 - o.Quantile }

// Name renders the objective for event logs: "latency:stat:p99<10ms".
func (o LatencyObjective) Name() string {
	return fmt.Sprintf("latency:%s:p%g<%v", o.Op, o.Quantile*100, o.Target)
}

// BurnPair is one multi-window burn-rate rule: the alert fires when the
// error-budget burn rate over both the short and the long trailing window
// is at least Rate, and resolves when the long window drops back under.
// Pairing a long window (sustained burn) with a short one (still burning
// now) is the Google SRE construction: the long window keeps one latency
// spike from paging, the short window makes the alert reset fast once the
// cause is fixed.
type BurnPair struct {
	// Name labels the pair in the event log ("fast", "slow").
	Name string
	// Short and Long are the trailing windows; Short < Long <= sketch span.
	Short, Long time.Duration
	// Rate is the burn-rate threshold: 1.0 burns the whole budget exactly
	// over the objective period, higher is faster.
	Rate float64
	// Severity of the resulting alert (fast burns page, slow burns ticket).
	Severity Severity
}

// HealthThresholds tune when a component's utilization or pressure signal
// degrades its health (liveness rules are structural: losing nodes degrades,
// losing quorum is critical, losing all is down).
type HealthThresholds struct {
	// UtilDegraded and UtilCritical bound the mean thread-pool/CPU
	// utilization (0..1).
	UtilDegraded, UtilCritical float64
	// PressureDegraded and PressureCritical bound the component's pressure
	// signal (mean lock waiters for NDB, under-replicated blocks for the
	// block layer).
	PressureDegraded, PressureCritical float64
}

// Spec is the declarative SLO of a deployment: sketch geometry, the
// availability objective, per-op latency objectives, the burn-rate rules
// that alert on them, and the health thresholds. The zero Spec is not
// runnable; start from DefaultSpec.
type Spec struct {
	// Window is the sketch span (the longest answerable trailing window);
	// Slots is its resolution.
	Window time.Duration
	Slots  int
	// Tick is the evaluation interval of the engine on virtual time.
	Tick time.Duration

	// Availability is the cluster availability objective in (0,1), e.g.
	// 0.999: failed operations consume the 1-Availability error budget.
	Availability float64
	// Latency lists the per-op latency objectives.
	Latency []LatencyObjective
	// Burns lists the multi-window burn-rate rules applied to every
	// objective.
	Burns []BurnPair

	// Health tunes the cluster health model.
	Health HealthThresholds
}

// DefaultSpec returns the evaluation SLO, scaled to virtual-time campaigns
// that last tens of seconds: availability 99.9%, per-op p99 latency bounds
// wide enough for healthy cross-AZ operation, and a 14.4x fast-burn /
// 3x slow-burn pair over 1s/8s and 4s/12s windows. The windows are short
// on purpose: ops that degrade also complete more slowly, so they are
// underrepresented in completion counts, and a long window would dilute a
// real burn below threshold before the fault ends.
func DefaultSpec() Spec {
	return Spec{
		Window:       24 * time.Second,
		Slots:        96, // 250ms resolution
		Tick:         250 * time.Millisecond,
		Availability: 0.999,
		Latency: []LatencyObjective{
			{Op: "stat", Quantile: 0.99, Target: 10 * time.Millisecond},
			{Op: "read", Quantile: 0.99, Target: 15 * time.Millisecond},
			{Op: "create", Quantile: 0.99, Target: 40 * time.Millisecond},
			{Op: "*", Quantile: 0.99, Target: 80 * time.Millisecond},
		},
		Burns: []BurnPair{
			{Name: "fast", Short: time.Second, Long: 8 * time.Second, Rate: 14.4, Severity: SevPage},
			{Name: "slow", Short: 4 * time.Second, Long: 12 * time.Second, Rate: 3, Severity: SevTicket},
		},
		Health: HealthThresholds{
			UtilDegraded: 0.85, UtilCritical: 0.97,
			PressureDegraded: 1, PressureCritical: 8,
		},
	}
}

func (s Spec) withDefaults() Spec {
	d := DefaultSpec()
	if s.Window <= 0 {
		s.Window = d.Window
	}
	if s.Slots <= 0 {
		s.Slots = d.Slots
	}
	if s.Tick <= 0 {
		s.Tick = d.Tick
	}
	if s.Availability <= 0 || s.Availability >= 1 {
		s.Availability = d.Availability
	}
	// nil means "unset" and takes the defaults; an explicit empty non-nil
	// slice means "no latency objectives" and is kept.
	if s.Latency == nil {
		s.Latency = d.Latency
	}
	if len(s.Burns) == 0 {
		s.Burns = d.Burns
	}
	if s.Health == (HealthThresholds{}) {
		s.Health = d.Health
	}
	return s
}

// Render writes the spec in the line syntax ParseSpec reads.
func (s Spec) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "window %v slots %d tick %v\n", s.Window, s.Slots, s.Tick)
	fmt.Fprintf(&b, "availability %g\n", s.Availability*100)
	lat := append([]LatencyObjective(nil), s.Latency...)
	sort.Slice(lat, func(i, j int) bool { return lat[i].Op < lat[j].Op })
	for _, o := range lat {
		fmt.Fprintf(&b, "latency %s p%g %v\n", o.Op, o.Quantile*100, o.Target)
	}
	for _, p := range s.Burns {
		fmt.Fprintf(&b, "burn %s %v %v %gx\n", p.Name, p.Short, p.Long, p.Rate)
	}
	return b.String()
}

// ParseSpec reads a declarative SLO spec in a line-oriented syntax:
//
//	# comment
//	window 24s slots 96 tick 250ms
//	availability 99.9
//	latency stat p99 10ms
//	latency * p99 80ms
//	burn fast 1s 8s 14.4x
//	burn slow 4s 12s 3x
//
// Omitted sections fall back to DefaultSpec values, except latency
// objectives: a spec that lists any keeps exactly those.
func ParseSpec(text string) (Spec, error) {
	spec := Spec{}
	var burns []BurnPair
	for ln, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		f := strings.Fields(line)
		fail := func(err error) (Spec, error) {
			return Spec{}, fmt.Errorf("slo: line %d: %q: %w", ln+1, raw, err)
		}
		switch f[0] {
		case "window":
			// "window <dur> [slots <n>] [tick <dur>]"
			rest := f[1:]
			for len(rest) > 0 {
				switch rest[0] {
				case "slots":
					if len(rest) < 2 {
						return fail(fmt.Errorf("slots needs a value"))
					}
					n, err := strconv.Atoi(rest[1])
					if err != nil {
						return fail(err)
					}
					spec.Slots = n
					rest = rest[2:]
				case "tick":
					if len(rest) < 2 {
						return fail(fmt.Errorf("tick needs a value"))
					}
					d, err := time.ParseDuration(rest[1])
					if err != nil {
						return fail(err)
					}
					spec.Tick = d
					rest = rest[2:]
				default:
					d, err := time.ParseDuration(rest[0])
					if err != nil {
						return fail(err)
					}
					spec.Window = d
					rest = rest[1:]
				}
			}
		case "availability":
			if len(f) != 2 {
				return fail(fmt.Errorf("want `availability <percent>`"))
			}
			pct, err := strconv.ParseFloat(f[1], 64)
			if err != nil {
				return fail(err)
			}
			if pct <= 0 || pct >= 100 {
				return fail(fmt.Errorf("availability must be in (0,100)"))
			}
			spec.Availability = pct / 100
		case "latency":
			if len(f) != 4 || !strings.HasPrefix(f[2], "p") {
				return fail(fmt.Errorf("want `latency <op> p<quantile> <target>`"))
			}
			q, err := strconv.ParseFloat(f[2][1:], 64)
			if err != nil {
				return fail(err)
			}
			if q <= 0 || q >= 100 {
				return fail(fmt.Errorf("quantile must be in (0,100)"))
			}
			target, err := time.ParseDuration(f[3])
			if err != nil {
				return fail(err)
			}
			spec.Latency = append(spec.Latency, LatencyObjective{Op: f[1], Quantile: q / 100, Target: target})
		case "burn":
			if len(f) != 5 {
				return fail(fmt.Errorf("want `burn <name> <short> <long> <rate>x`"))
			}
			short, err := time.ParseDuration(f[2])
			if err != nil {
				return fail(err)
			}
			long, err := time.ParseDuration(f[3])
			if err != nil {
				return fail(err)
			}
			rate, err := strconv.ParseFloat(strings.TrimSuffix(f[4], "x"), 64)
			if err != nil {
				return fail(err)
			}
			if short <= 0 || long <= short || rate <= 0 {
				return fail(fmt.Errorf("want 0 < short < long and rate > 0"))
			}
			sev := SevTicket
			if f[1] == "fast" || f[1] == "page" {
				sev = SevPage
			}
			burns = append(burns, BurnPair{Name: f[1], Short: short, Long: long, Rate: rate, Severity: sev})
		default:
			return fail(fmt.Errorf("unknown directive %q", f[0]))
		}
	}
	if burns != nil {
		spec.Burns = burns
	}
	spec = spec.withDefaults()
	for _, p := range spec.Burns {
		if p.Long > spec.Window {
			return Spec{}, fmt.Errorf("slo: burn pair %q long window %v exceeds sketch window %v", p.Name, p.Long, spec.Window)
		}
	}
	return spec, nil
}
