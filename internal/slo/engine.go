package slo

import (
	"sort"
	"sync"
	"time"

	"hopsfscl/internal/trace"
)

// opGauges caches the registry gauge handles published for one op class.
type opGauges struct {
	p50, p95, p99, rate *trace.Gauge
}

// Engine is the live SLO evaluator of a deployment: it maintains one
// windowed latency sketch per operation class (plus an aggregate), and on
// every Tick publishes rolling percentiles and throughput as registry
// gauges, evaluates the burn-rate alerter over the spec's objectives, and
// folds registered component probes into the cluster health model. All
// state transitions append to a deterministic event log on virtual time.
//
// ObserveOp is safe for concurrent use (it is called from every finishing
// root span); Tick and RegisterComponent are expected from the single
// evaluation process.
type Engine struct {
	spec   Spec
	reg    *trace.Registry
	alerts *alerter
	health *healthModel

	mu      sync.Mutex
	sketch  map[string]*Sketch // per op class
	ops     []string           // sorted keys of sketch
	all     *Sketch            // aggregate across classes
	gauges  map[string]*opGauges
	events  []Event
	lastNow time.Duration
}

// NewEngine builds an engine for the spec (zero fields fall back to
// DefaultSpec) publishing gauges into reg. reg may be nil; gauges are then
// skipped but evaluation still runs.
func NewEngine(spec Spec, reg *trace.Registry) *Engine {
	spec = spec.withDefaults()
	return &Engine{
		spec:   spec,
		reg:    reg,
		alerts: newAlerter(spec),
		health: newHealthModel(spec.Health),
		sketch: make(map[string]*Sketch),
		all:    NewSketch(spec.Window, spec.Slots),
		gauges: make(map[string]*opGauges),
	}
}

// Spec returns the engine's effective (defaulted) spec.
func (e *Engine) Spec() Spec { return e.spec }

// ObserveOp records one operation completion: op class, the virtual end
// instant, end-to-end latency, and whether it failed. Nil engines ignore
// the call so callers can wire the hook unconditionally.
func (e *Engine) ObserveOp(op string, now, latency time.Duration, failed bool) {
	if e == nil {
		return
	}
	e.mu.Lock()
	sk := e.sketch[op]
	if sk == nil {
		sk = NewSketch(e.spec.Window, e.spec.Slots)
		e.sketch[op] = sk
		e.ops = append(e.ops, op)
		sort.Strings(e.ops)
	}
	e.mu.Unlock()
	sk.Observe(now, latency, failed)
	e.all.Observe(now, latency, failed)
}

// RegisterComponent adds a health probe evaluated on every tick. Component
// names are sorted internally, so wiring order does not affect the log.
func (e *Engine) RegisterComponent(name string, probe Probe) {
	if e == nil {
		return
	}
	e.health.register(name, probe)
}

// sketchFor resolves an objective's op class to its sketch; "*" is the
// aggregate. Caller holds e.mu.
func (e *Engine) sketchFor(op string) *Sketch {
	if op == "*" {
		return e.all
	}
	return e.sketch[op]
}

// Tick evaluates the engine at virtual instant now: refresh the live
// gauges, run the burn-rate alerter and the health model, and append any
// emitted events to the log. Returns the events emitted by this tick.
func (e *Engine) Tick(now time.Duration) []Event {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.lastNow = now
	e.publishGauges(now)
	events := e.alerts.evaluate(now, e.sketchFor)
	events = append(events, e.health.evaluate(now)...)
	e.events = append(e.events, events...)
	return events
}

// publishGauges refreshes the per-op rolling gauges over the full sketch
// window: slo.op.<op>.p50_ms/p95_ms/p99_ms/rate. Caller holds e.mu.
func (e *Engine) publishGauges(now time.Duration) {
	if e.reg == nil {
		return
	}
	for _, op := range e.ops {
		g := e.gauges[op]
		if g == nil {
			g = &opGauges{
				p50:  e.reg.Gauge("slo.op." + op + ".p50_ms"),
				p95:  e.reg.Gauge("slo.op." + op + ".p95_ms"),
				p99:  e.reg.Gauge("slo.op." + op + ".p99_ms"),
				rate: e.reg.Gauge("slo.op." + op + ".rate"),
			}
			e.gauges[op] = g
		}
		m := e.sketch[op].Window(now, 0)
		g.p50.Set(ms(m.Percentile(0.50)))
		g.p95.Set(ms(m.Percentile(0.95)))
		g.p99.Set(ms(m.Percentile(0.99)))
		g.rate.Set(m.Rate())
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Events returns a copy of the full event log so far.
func (e *Engine) Events() []Event {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Event(nil), e.events...)
}

// Firing returns how many burn-rate alerts are currently firing.
func (e *Engine) Firing() int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.alerts.Firing()
}

// ClusterLevel returns the current cluster-wide health level.
func (e *Engine) ClusterLevel() Level {
	if e == nil {
		return Healthy
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.health.Cluster()
}

// OpSummary returns the rolling window summary for one op class ("*" for
// the aggregate) over the trailing window w (0 = full sketch span).
func (e *Engine) OpSummary(op string, now, w time.Duration) Summary {
	if e == nil {
		return Summary{}
	}
	e.mu.Lock()
	sk := e.sketchFor(op)
	e.mu.Unlock()
	return sk.Window(now, w)
}

// Ops returns the op classes observed so far, sorted.
func (e *Engine) Ops() []string {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.ops...)
}

// Report snapshots the engine into an immutable end-of-run report at
// virtual instant now.
func (e *Engine) Report(now time.Duration) *Report {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	r := &Report{
		End:     now,
		Spec:    e.spec,
		Events:  append([]Event(nil), e.events...),
		Firing:  e.alerts.Firing(),
		Cluster: e.health.Cluster(),
		Levels:  e.health.Levels(),
		Ops:     make([]OpReport, 0, len(e.ops)),
	}
	for _, op := range e.ops {
		m := e.sketch[op].Window(now, 0)
		r.Ops = append(r.Ops, OpReport{Op: op, Summary: m})
	}
	r.All = e.all.Window(now, 0)
	return r
}
