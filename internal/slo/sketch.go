// Package slo is the live objective layer of the engine: windowed latency
// sketches per operation class, a declarative SLO spec evaluated by a
// multi-window burn-rate alerter (Google-SRE style fast-burn/slow-burn
// pairs), and a cluster health model folding layer signals (NN thread-pool
// utilization, NDB node liveness and lock contention, block
// under-replication) into per-component and cluster-wide health states.
//
// Everything is keyed to virtual time and bounded: the same seed and
// schedule always produce a byte-identical alert log, which is what lets
// the chaos engine report time-to-detect deterministically and what will
// let an autoscaler close the loop on these signals. Like trace, the
// package is a leaf over the standard library plus trace itself.
package slo

import (
	"math"
	"sync"
	"time"
)

// Bucket layout of the latency sketches: numBuckets log-spaced bucket
// boundaries starting at bucketBase with ratio bucketGrowth. The layout is
// fixed (not configurable) so every sketch in a cluster quantizes latencies
// identically and merged summaries stay exact.
const (
	numBuckets   = 64
	bucketBase   = 20 * time.Microsecond
	bucketGrowth = 1.3
)

// bucketBounds[i] is the inclusive upper latency bound of bucket i; the
// last bucket is unbounded.
var bucketBounds = func() [numBuckets]time.Duration {
	var b [numBuckets]time.Duration
	v := float64(bucketBase)
	for i := 0; i < numBuckets; i++ {
		b[i] = time.Duration(v)
		v *= bucketGrowth
	}
	b[numBuckets-1] = math.MaxInt64
	return b
}()

// bucketOf returns the index of the bucket containing d (binary search over
// the fixed bounds).
func bucketOf(d time.Duration) int {
	lo, hi := 0, numBuckets-1
	for lo < hi {
		mid := (lo + hi) / 2
		if d <= bucketBounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// slot is one fixed-width sub-window of a sketch.
type slot struct {
	index   int64 // absolute slot number (start = index * width); -1 = empty
	counts  [numBuckets]uint32
	total   int64
	errors  int64
	sum     time.Duration
	maxSeen time.Duration
}

func (s *slot) reset(index int64) {
	*s = slot{index: index}
}

// Sketch is a sliding-window latency sketch: a ring of fixed-width
// sub-window slots, each holding a bucketed latency histogram plus
// operation and error counts. Observations are keyed to virtual time, so
// advancing the window is driven entirely by the caller's clock — the
// sketch is deterministic and allocation-free after construction.
//
// Memory is bounded by slots*numBuckets regardless of traffic. Queries
// merge the slots covering the requested trailing window; the resolution
// of any windowed answer is one slot width.
type Sketch struct {
	mu    sync.Mutex
	width time.Duration // slot width
	slots []slot
	last  int64 // newest absolute slot index seen; -1 before first roll
}

// NewSketch returns a sketch covering a trailing window of the given
// length, divided into the given number of slots (window/slots rounds up
// to at least 1ms of slot width). Defaults: 2s window, 20 slots.
func NewSketch(window time.Duration, slots int) *Sketch {
	if window <= 0 {
		window = 2 * time.Second
	}
	if slots <= 0 {
		slots = 20
	}
	width := window / time.Duration(slots)
	if width < time.Millisecond {
		width = time.Millisecond
	}
	s := &Sketch{width: width, slots: make([]slot, slots), last: -1}
	for i := range s.slots {
		s.slots[i].index = -1
	}
	return s
}

// Width returns the slot width — the resolution of windowed queries.
func (s *Sketch) Width() time.Duration { return s.width }

// Span returns the maximum trailing window the sketch can answer for.
func (s *Sketch) Span() time.Duration { return s.width * time.Duration(len(s.slots)) }

// roll advances the ring so the slot containing now is current, resetting
// any slots whose previous tenants expired. Caller holds s.mu.
func (s *Sketch) roll(now time.Duration) *slot {
	idx := int64(now / s.width)
	if idx < s.last {
		// Observations never run backwards on virtual time; a stale caller
		// lands in the current slot rather than corrupting history.
		idx = s.last
	}
	sl := &s.slots[idx%int64(len(s.slots))]
	if sl.index != idx {
		sl.reset(idx)
	}
	s.last = idx
	return sl
}

// Observe records one operation completion at virtual instant now with the
// given end-to-end latency; failed marks it an error.
func (s *Sketch) Observe(now, latency time.Duration, failed bool) {
	if s == nil {
		return
	}
	if latency < 0 {
		latency = 0
	}
	s.mu.Lock()
	sl := s.roll(now)
	sl.counts[bucketOf(latency)]++
	sl.total++
	sl.sum += latency
	if latency > sl.maxSeen {
		sl.maxSeen = latency
	}
	if failed {
		sl.errors++
	}
	s.mu.Unlock()
}

// Summary is the merged view of a sketch over one trailing window.
type Summary struct {
	// Window is the queried window length (clamped to the sketch span).
	Window time.Duration
	// Count and Errors are completions and failures inside the window.
	Count  int64
	Errors int64
	// Sum and Max aggregate the latencies inside the window.
	Sum time.Duration
	Max time.Duration

	counts [numBuckets]uint32
}

// Rate returns completions per second over the window.
func (m Summary) Rate() float64 {
	if m.Window <= 0 {
		return 0
	}
	return float64(m.Count) / m.Window.Seconds()
}

// ErrorFraction returns the failed share of completions (0 for an empty
// window).
func (m Summary) ErrorFraction() float64 {
	if m.Count == 0 {
		return 0
	}
	return float64(m.Errors) / float64(m.Count)
}

// Mean returns the average latency (0 for an empty window).
func (m Summary) Mean() time.Duration {
	if m.Count == 0 {
		return 0
	}
	return m.Sum / time.Duration(m.Count)
}

// Percentile returns the latency at quantile q (0 < q <= 1) by
// ceiling-nearest-rank over the merged buckets: the upper bound of the
// bucket containing the rank, clamped to the window maximum so a
// low-resolution tail bucket cannot overstate an observed latency. Empty
// windows return 0.
func (m Summary) Percentile(q float64) time.Duration {
	if m.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(m.Count)))
	var seen int64
	for i := 0; i < numBuckets; i++ {
		seen += int64(m.counts[i])
		if seen >= rank {
			bound := bucketBounds[i]
			if bound > m.Max {
				bound = m.Max
			}
			return bound
		}
	}
	return m.Max
}

// OverCount returns how many completions in the window were slower than the
// target, counting whole buckets: a bucket counts as over once its upper
// bound exceeds the target, so the answer errs toward detection by at most
// one bucket ratio (30%).
func (m Summary) OverCount(target time.Duration) int64 {
	var over int64
	for i := 0; i < numBuckets; i++ {
		if bucketBounds[i] > target {
			over += int64(m.counts[i])
		}
	}
	return over
}

// Window merges the slots covering the trailing window [now-window, now]
// and returns the summary. Windows longer than the sketch span are clamped;
// expired slots contribute nothing.
func (s *Sketch) Window(now, window time.Duration) Summary {
	if s == nil {
		return Summary{}
	}
	if window <= 0 || window > s.Span() {
		window = s.Span()
	}
	out := Summary{Window: window}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := int64(now / s.width)
	if cur < s.last {
		cur = s.last
	}
	// Slots whose *start* lies in (now-window, now] are inside: the current
	// (partial) slot always is, and window/width older complete slots.
	nSlots := int64(window / s.width)
	lo := cur - nSlots
	for i := range s.slots {
		sl := &s.slots[i]
		if sl.index < 0 || sl.index > cur || sl.index <= lo {
			continue
		}
		out.Count += sl.total
		out.Errors += sl.errors
		out.Sum += sl.sum
		if sl.maxSeen > out.Max {
			out.Max = sl.maxSeen
		}
		for b := 0; b < numBuckets; b++ {
			out.counts[b] += sl.counts[b]
		}
	}
	return out
}
