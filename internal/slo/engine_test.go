package slo

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"hopsfscl/internal/trace"
)

// driveEngine feeds a seeded synthetic workload with a mid-run error storm
// and latency regression into an engine, ticking every 250ms for 20s, and
// returns the rendered event log.
func driveEngine(seed int64) string {
	eng := NewEngine(Spec{}, nil)
	live := 6
	eng.RegisterComponent("ndb", func(time.Duration) ComponentStats {
		return ComponentStats{Live: live, Expected: 6, Quorum: 4}
	})
	rng := rand.New(rand.NewSource(seed))
	var events []Event
	for ms := 0; ms <= 20_000; ms += 10 {
		now := time.Duration(ms) * time.Millisecond
		bad := ms >= 8_000 && ms < 12_000
		if ms == 8_000 {
			live = 5
		}
		if ms == 12_000 {
			live = 6
		}
		lat := time.Duration(1+rng.Intn(3)) * time.Millisecond
		failed := false
		if bad {
			lat = 50 * time.Millisecond
			failed = rng.Intn(4) == 0
		}
		eng.ObserveOp("stat", now, lat, failed)
		if ms%250 == 0 {
			events = append(events, eng.Tick(now)...)
		}
	}
	var b strings.Builder
	for _, ev := range events {
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestEngineDeterministicEventLog is the headline determinism guarantee:
// the same seed produces a byte-identical alert log.
func TestEngineDeterministicEventLog(t *testing.T) {
	a, b := driveEngine(7), driveEngine(7)
	if a != b {
		t.Fatalf("same seed, different logs:\n%s\nvs\n%s", a, b)
	}
	if a == "" {
		t.Fatal("drive produced no events")
	}
	// The storm must both alert (latency or availability) and degrade
	// health, and both must clear.
	for _, want := range []string{"ALERT", "RESOLVE", "ndb: healthy -> degraded", "ndb: degraded -> healthy"} {
		if !strings.Contains(a, want) {
			t.Fatalf("log missing %q:\n%s", want, a)
		}
	}
}

func TestEngineTickPublishesGauges(t *testing.T) {
	reg := trace.NewRegistry()
	eng := NewEngine(Spec{}, reg)
	for ms := 0; ms <= 1_000; ms += 10 {
		eng.ObserveOp("stat", time.Duration(ms)*time.Millisecond, 2*time.Millisecond, false)
	}
	eng.Tick(time.Second)
	snap := reg.Snapshot()
	p99, ok := trace.Lookup(snap, "slo.op.stat.p99_ms")
	if !ok || p99 <= 0 {
		t.Fatalf("p99 gauge = %v (ok=%v)", p99, ok)
	}
	rate, ok := trace.Lookup(snap, "slo.op.stat.rate")
	if !ok || rate <= 0 {
		t.Fatalf("rate gauge = %v (ok=%v)", rate, ok)
	}
}

func TestEngineReport(t *testing.T) {
	eng := NewEngine(Spec{}, nil)
	eng.RegisterComponent("ndb", func(time.Duration) ComponentStats {
		return ComponentStats{Live: 0, Expected: 6, Quorum: 4}
	})
	eng.ObserveOp("stat", time.Second, time.Millisecond, false)
	eng.ObserveOp("create", time.Second, 5*time.Millisecond, true)
	eng.Tick(time.Second)

	rep := eng.Report(time.Second)
	if rep.Cluster != Down {
		t.Fatalf("cluster = %v, want down", rep.Cluster)
	}
	if len(rep.Ops) != 2 || rep.Ops[0].Op != "create" || rep.Ops[1].Op != "stat" {
		t.Fatalf("op reports not sorted: %+v", rep.Ops)
	}
	if rep.All.Count != 2 || rep.All.Errors != 1 {
		t.Fatalf("aggregate = %+v", rep.All)
	}
	if det, ok := rep.FirstDetection(0); !ok || !det.Degrading {
		t.Fatalf("no degrading event in report: %+v", rep.Events)
	}
	if det, ok := rep.FirstDetection(2 * time.Second); ok {
		t.Fatalf("detection before injection window: %+v", det)
	}
	out := rep.Render()
	for _, want := range []string{"SLO report", "cluster: down", "ndb: healthy -> down", "(all)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Rendering is pure: same report, same bytes.
	if rep.Render() != out {
		t.Fatal("render not deterministic")
	}
}

func TestNilEngineIsSafe(t *testing.T) {
	var eng *Engine
	eng.ObserveOp("stat", 0, time.Millisecond, false)
	eng.RegisterComponent("x", nil)
	if ev := eng.Tick(time.Second); ev != nil {
		t.Fatal("nil engine ticked")
	}
	if eng.Report(0) != nil {
		t.Fatal("nil engine reported")
	}
	if eng.Firing() != 0 || eng.ClusterLevel() != Healthy {
		t.Fatal("nil engine state")
	}
}

// TestEngineWithDisabledRegistry covers running the engine over a registry
// switched to no-op mode before wiring (core's DisableMetrics path):
// evaluation — sketches, alerts, reports — must be unaffected, and no
// gauges may be registered.
func TestEngineWithDisabledRegistry(t *testing.T) {
	reg := trace.NewRegistry()
	reg.Disable()
	eng := NewEngine(Spec{}, reg)
	for ms := 0; ms <= 3_000; ms += 10 {
		now := time.Duration(ms) * time.Millisecond
		lat := 2 * time.Millisecond
		failed := false
		if ms >= 1_000 {
			lat = 200 * time.Millisecond
			failed = true
		}
		eng.ObserveOp("stat", now, lat, failed)
		if ms%250 == 0 {
			eng.Tick(now)
		}
	}
	if eng.Firing() == 0 {
		t.Error("storm fired no alerts with a disabled registry")
	}
	for _, s := range reg.Snapshot() {
		if strings.HasPrefix(s.Name, "slo.") {
			t.Errorf("disabled registry accumulated gauge %s", s.Name)
		}
	}
	rep := eng.Report(3 * time.Second)
	if rep == nil || len(rep.Ops) == 0 {
		t.Fatalf("report missing op summaries: %+v", rep)
	}
}

// TestEngineDisableMidRun disables the registry after gauges exist: handles
// registered before keep updating (values must not go stale), and op
// classes first seen afterwards must not register new gauges or panic
// publishing through nil handles.
func TestEngineDisableMidRun(t *testing.T) {
	reg := trace.NewRegistry()
	eng := NewEngine(Spec{}, reg)
	eng.ObserveOp("stat", 0, 2*time.Millisecond, false)
	eng.Tick(250 * time.Millisecond)
	if _, ok := trace.Lookup(reg.Snapshot(), "slo.op.stat.p99_ms"); !ok {
		t.Fatal("stat gauge missing before Disable")
	}
	reg.Disable()
	for ms := 250; ms <= 1_500; ms += 10 {
		now := time.Duration(ms) * time.Millisecond
		eng.ObserveOp("stat", now, 30*time.Millisecond, false)
		eng.ObserveOp("create", now, time.Millisecond, false)
	}
	eng.Tick(1_500 * time.Millisecond)
	snap := reg.Snapshot()
	if _, ok := trace.Lookup(snap, "slo.op.create.p99_ms"); ok {
		t.Error("gauge registered for an op class first seen after Disable")
	}
	p99, ok := trace.Lookup(snap, "slo.op.stat.p99_ms")
	if !ok || p99 < 20 {
		t.Errorf("pre-Disable stat p99 gauge went stale: %v (ok=%v)", p99, ok)
	}
}
