package slo

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// OpReport is one op class's rolling summary at report time.
type OpReport struct {
	Op      string
	Summary Summary
}

// Report is an immutable end-of-run snapshot of an Engine: the full event
// log, the final alert/health state, and the closing window summaries.
type Report struct {
	// End is the virtual instant the report was taken.
	End time.Duration
	// Spec is the evaluated (defaulted) SLO spec.
	Spec Spec
	// Events is the full deterministic event log.
	Events []Event
	// Firing counts burn-rate alerts still firing at End.
	Firing int
	// Cluster and Levels are the closing health states.
	Cluster Level
	Levels  map[string]Level
	// Ops are the closing per-op window summaries (sorted by op); All is
	// the aggregate.
	Ops []OpReport
	All Summary
}

// Pages and Tickets count fired alerts of each severity.
func (r *Report) Pages() int   { return r.countFires(SevPage) }
func (r *Report) Tickets() int { return r.countFires(SevTicket) }

func (r *Report) countFires(sev Severity) int {
	n := 0
	for _, e := range r.Events {
		if e.Kind == EventAlertFire && e.Severity == sev {
			n++
		}
	}
	return n
}

// FirstDetection returns the first degrading event at or after the given
// virtual instant — the signal a fault injected then was detected — and
// whether one exists.
func (r *Report) FirstDetection(after time.Duration) (Event, bool) {
	for _, e := range r.Events {
		if e.Degrading && e.At >= after {
			return e, true
		}
	}
	return Event{}, false
}

// Render writes the report as a deterministic text timeline: closing op
// summaries, health states, then the event log.
func (r *Report) Render() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "SLO report @ %s  availability %g%%  alerts firing: %d  cluster: %s\n",
		fmtDur(r.End), r.Spec.Availability*100, r.Firing, r.Cluster)

	fmt.Fprintf(&b, "\n%-10s %10s %10s %10s %10s %10s %10s\n",
		"op", "count", "err%", "rate/s", "p50", "p95", "p99")
	row := func(name string, m Summary) {
		fmt.Fprintf(&b, "%-10s %10d %9.2f%% %10.1f %10s %10s %10s\n",
			name, m.Count, m.ErrorFraction()*100, m.Rate(),
			fmtDur(m.Percentile(0.50)), fmtDur(m.Percentile(0.95)), fmtDur(m.Percentile(0.99)))
	}
	for _, o := range r.Ops {
		row(o.Op, o.Summary)
	}
	row("(all)", r.All)

	if len(r.Levels) > 0 {
		names := make([]string, 0, len(r.Levels))
		for n := range r.Levels {
			names = append(names, n)
		}
		sort.Strings(names)
		b.WriteString("\nhealth:")
		for _, n := range names {
			fmt.Fprintf(&b, "  %s=%s", n, r.Levels[n])
		}
		b.WriteByte('\n')
	}

	fmt.Fprintf(&b, "\nevents (%d):\n", len(r.Events))
	if len(r.Events) == 0 {
		b.WriteString("  (none)\n")
	}
	for _, e := range r.Events {
		b.WriteString("  " + e.String() + "\n")
	}
	return b.String()
}
