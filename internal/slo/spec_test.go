package slo

import (
	"strings"
	"testing"
	"time"
)

func TestDefaultSpecIsRunnable(t *testing.T) {
	s := DefaultSpec()
	if s.Window <= 0 || s.Slots <= 0 || s.Tick <= 0 {
		t.Fatalf("default geometry not set: %+v", s)
	}
	if len(s.Latency) == 0 || len(s.Burns) == 0 {
		t.Fatal("default spec has no objectives or burn pairs")
	}
	for _, p := range s.Burns {
		if p.Short >= p.Long {
			t.Fatalf("burn pair %q: short %v >= long %v", p.Name, p.Short, p.Long)
		}
		if p.Long > s.Window {
			t.Fatalf("burn pair %q long window %v exceeds sketch window %v", p.Name, p.Long, s.Window)
		}
	}
}

func TestWithDefaultsFillsLatency(t *testing.T) {
	// A zero spec takes the default latency objectives; an explicit empty
	// (non-nil) list means "none" and is kept.
	got := (Spec{}).withDefaults()
	if len(got.Latency) != len(DefaultSpec().Latency) {
		t.Fatalf("zero spec latency objectives = %d, want defaults", len(got.Latency))
	}
	none := (Spec{Latency: []LatencyObjective{}}).withDefaults()
	if len(none.Latency) != 0 {
		t.Fatalf("explicit empty latency list replaced with defaults: %+v", none.Latency)
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	orig := DefaultSpec()
	again, err := ParseSpec(orig.Render())
	if err != nil {
		t.Fatalf("parse of rendered spec failed: %v", err)
	}
	if again.Render() != orig.Render() {
		t.Fatalf("round trip changed the spec:\n%s\nvs\n%s", orig.Render(), again.Render())
	}
}

func TestParseSpecOverrides(t *testing.T) {
	spec, err := ParseSpec(`
		# tuned spec
		window 8s slots 32 tick 100ms
		availability 99.5
		latency stat p95 5ms
		burn fast 500ms 2s 10x
	`)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Window != 8*time.Second || spec.Slots != 32 || spec.Tick != 100*time.Millisecond {
		t.Fatalf("geometry not applied: %+v", spec)
	}
	if spec.Availability != 0.995 {
		t.Fatalf("availability = %v", spec.Availability)
	}
	if len(spec.Latency) != 1 || spec.Latency[0].Op != "stat" || spec.Latency[0].Quantile != 0.95 {
		t.Fatalf("latency objectives = %+v", spec.Latency)
	}
	if len(spec.Burns) != 1 || spec.Burns[0].Rate != 10 || spec.Burns[0].Severity != SevPage {
		t.Fatalf("burns = %+v", spec.Burns)
	}
}

func TestParseSpecRejectsLongWindowBeyondSketch(t *testing.T) {
	_, err := ParseSpec("window 4s\nburn slow 1s 8s 3x\n")
	if err == nil || !strings.Contains(err.Error(), "exceeds sketch window") {
		t.Fatalf("want long-window error, got %v", err)
	}
}

func TestLatencyObjectiveName(t *testing.T) {
	o := LatencyObjective{Op: "stat", Quantile: 0.99, Target: 10 * time.Millisecond}
	if o.Name() != "latency:stat:p99<10ms" {
		t.Fatalf("name = %q", o.Name())
	}
	if o.Budget() < 0.0099 || o.Budget() > 0.0101 {
		t.Fatalf("budget = %v", o.Budget())
	}
}
