// Package simnet models a cloud region: availability zones, hosts, nodes,
// and the network between them. Latencies are seeded from the paper's
// Table I measurements of GCE us-west1. Inter-AZ links have finite shared
// bandwidth and per-direction byte accounting so experiments can measure
// cross-AZ traffic (the quantity AZ-awareness is designed to minimize).
package simnet

import (
	"fmt"
	"time"

	"hopsfscl/internal/sim"
	"hopsfscl/internal/trace"
)

// ZoneID identifies an availability zone. Zone 0 is reserved to mean
// "unset" (the paper's locationDomainId=0 fallback); real zones start at 1.
type ZoneID int

// ZoneUnset is the sentinel "no zone configured" value.
const ZoneUnset ZoneID = 0

// HostID identifies a physical host (VM). Two nodes on the same host have
// the lowest proximity distance.
type HostID int

// NodeID identifies a network endpoint.
type NodeID int

// Proximity distances, ascending per §IV-A4 of the paper.
const (
	ProximitySameHost = 1 // same host, same AZ
	ProximitySameZone = 2 // different hosts, same AZ
	ProximityRemote   = 3 // different AZs
)

// Topology describes zones and the latency between them.
type Topology struct {
	// ZoneNames[i] names zone i+1 (ZoneID 1 is ZoneNames[0]).
	ZoneNames []string
	// RTT[i][j] is the measured round-trip time between a host in zone i+1
	// and a host in zone j+1. One-way latency is RTT/2.
	RTT [][]time.Duration
	// SameHostRTT is the loopback round trip between two nodes on one host.
	SameHostRTT time.Duration
	// InterZoneBandwidth is the shared bandwidth of each directed zone-pair
	// link, bytes/second. Zero means unlimited.
	InterZoneBandwidth float64
	// IntraZoneBandwidth bounds each directed intra-zone fabric. Zero means
	// unlimited.
	IntraZoneBandwidth float64
	// JitterFrac adds +/- JitterFrac/2 uniform jitter to each one-way
	// latency, to avoid artificial phase locking. Deterministic per seed.
	JitterFrac float64
}

// USWest1 returns the paper's Table I topology: three AZs of GCE us-west1
// with the measured RTTs (milliseconds): a↔a 0.247, a↔b 0.360, a↔c 0.372,
// b↔b 0.251, b↔c 0.399, c↔c 0.249.
func USWest1() *Topology {
	ms := func(f float64) time.Duration { return time.Duration(f * float64(time.Millisecond)) }
	return &Topology{
		ZoneNames: []string{"us-west1-a", "us-west1-b", "us-west1-c"},
		RTT: [][]time.Duration{
			{ms(0.247), ms(0.360), ms(0.372)},
			{ms(0.360), ms(0.251), ms(0.399)},
			{ms(0.372), ms(0.399), ms(0.249)},
		},
		SameHostRTT: 30 * time.Microsecond,
		// 2 GB/s shared per inter-AZ directed link. Deliberately finite:
		// §V-B1 attributes the growing HopsFS-CL advantage past 24 NNs to
		// network I/O becoming a bottleneck, which requires a shared
		// cross-AZ pipe to reproduce. The intra-AZ fabric is effectively
		// unconstrained at this scale (Clos fabrics, [4]).
		InterZoneBandwidth: 350e6,
		IntraZoneBandwidth: 0,
		JitterFrac:         0.10,
	}
}

// Zones returns the number of zones in the topology.
func (t *Topology) Zones() int { return len(t.ZoneNames) }

// ZoneName returns the display name for z ("unset" for ZoneUnset).
func (t *Topology) ZoneName(z ZoneID) string {
	if z == ZoneUnset {
		return "unset"
	}
	return t.ZoneNames[int(z)-1]
}

// Message is a network datagram. Payload is interpreted by the receiver.
type Message struct {
	From    NodeID
	To      NodeID
	Size    int
	Payload any
}

// Network connects nodes according to a topology.
type Network struct {
	env   *sim.Env
	topo  *Topology
	nodes []*Node

	// links holds fluid-queue state and counters per directed zone pair
	// (including z->z for the intra-zone fabric).
	links map[[2]ZoneID]*link

	// partitions marks unordered zone pairs whose traffic is dropped.
	partitions map[[2]ZoneID]bool

	// degraded marks unordered zone pairs whose traffic suffers extra
	// latency and/or probabilistic loss (chaos fault injection). Kept in a
	// separate map so the fast path pays only a len() check when no
	// degradation is active, preserving the RNG stream of undisturbed runs.
	degraded map[[2]ZoneID]*degradation

	dropped int64

	// topoEpoch counts node up/down transitions (see TopoEpoch).
	topoEpoch uint64

	// freeEnvs pools delivery envelopes for the asynchronous Send path: one
	// envelope per in-flight message, recycled on arrival, each carrying a
	// prebuilt fire closure so steady-state sends schedule without
	// allocating per message.
	freeEnvs []*envelope

	// obs holds pre-registered per-hop-class counters; nil when no metrics
	// registry is attached (see SetRegistry).
	obs *netObs
}

// envelope is one pooled in-flight datagram: the delivery state of a Send
// between departure and arrival. fire is built once per envelope and
// captures only the envelope, so reusing it schedules no new closure.
type envelope struct {
	n        *Network
	from, to *Node
	msg      Message
	fire     func()
}

// newEnvelope takes an envelope from the pool or builds one.
func (n *Network) newEnvelope() *envelope {
	if cnt := len(n.freeEnvs); cnt > 0 {
		e := n.freeEnvs[cnt-1]
		n.freeEnvs[cnt-1] = nil
		n.freeEnvs = n.freeEnvs[:cnt-1]
		return e
	}
	e := &envelope{n: n}
	e.fire = func() { e.deliver() }
	return e
}

// deliver runs at the arrival instant: it re-checks liveness and
// partitions (conditions may have changed while the message was in
// flight), hands the message to the destination inbox, and recycles the
// envelope. State is copied out and the envelope recycled first, so a
// handler scheduling more sends can reuse it immediately.
func (e *envelope) deliver() {
	n, from, to, msg := e.n, e.from, e.to, e.msg
	e.from, e.to = nil, nil
	e.msg = Message{}
	n.freeEnvs = append(n.freeEnvs, e)
	if !to.alive {
		n.dropped++
		return
	}
	if from.zone != to.zone && n.Partitioned(from.zone, to.zone) {
		n.dropped++
		return
	}
	to.nicRead += int64(msg.Size)
	to.Inbox.Send(msg)
}

// netObs caches registry handles so the per-message cost is two atomic adds
// (plus one map lookup for the per-zone-pair link counter).
type netObs struct {
	bytes [trace.NumHopClasses]*trace.Counter
	msgs  [trace.NumHopClasses]*trace.Counter
	// linkBytes counts traffic per directed zone pair
	// (net.link.bytes{from=...,to=...}), the per-AZ signal the flight
	// recorder samples over time.
	linkBytes map[[2]ZoneID]*trace.Counter
}

type link struct {
	nextFree time.Duration
	bytes    int64
	messages int64
}

// degradation describes an impaired zone pair: one-way latency is scaled by
// LatencyFactor (>= 1) and each message is independently dropped with
// probability LossProb.
type degradation struct {
	LatencyFactor float64
	LossProb      float64
}

// New returns a network over env with the given topology.
func New(env *sim.Env, topo *Topology) *Network {
	return &Network{
		env:        env,
		topo:       topo,
		links:      make(map[[2]ZoneID]*link),
		partitions: make(map[[2]ZoneID]bool),
		degraded:   make(map[[2]ZoneID]*degradation),
	}
}

// Env returns the simulation environment.
func (n *Network) Env() *sim.Env { return n.env }

// SetRegistry attaches a metrics registry: every subsequent message is
// counted under net.bytes{class=...} and net.msgs{class=...} by hop class.
// A nil registry detaches.
func (n *Network) SetRegistry(reg *trace.Registry) {
	if reg == nil {
		n.obs = nil
		return
	}
	obs := &netObs{linkBytes: make(map[[2]ZoneID]*trace.Counter)}
	for c := trace.HopClass(0); c < trace.NumHopClasses; c++ {
		obs.bytes[c] = reg.Counter("net.bytes", "class", c.String())
		obs.msgs[c] = reg.Counter("net.msgs", "class", c.String())
	}
	for a := ZoneID(1); int(a) <= n.topo.Zones(); a++ {
		for b := ZoneID(1); int(b) <= n.topo.Zones(); b++ {
			obs.linkBytes[[2]ZoneID{a, b}] = reg.Counter("net.link.bytes",
				"from", n.topo.ZoneName(a), "to", n.topo.ZoneName(b))
		}
	}
	n.obs = obs
}

// observeLink counts one delivered message on the directed zone-pair link
// counter (if a registry is attached).
func (n *Network) observeLink(from, to ZoneID, size int) {
	if n.obs == nil {
		return
	}
	// Nodes always sit in a real zone, but guard the lookup anyway: an
	// unknown pair simply goes uncounted.
	if c, ok := n.obs.linkBytes[[2]ZoneID{from, to}]; ok {
		c.Add(int64(size))
	}
}

// HopClassOf classifies a message between two nodes by endpoint proximity:
// loopback, same host, same zone, or cross-AZ. Unlike Proximity it compares
// physical zones directly (deployed nodes always have a real zone; the
// ZoneUnset sentinel only disables *awareness*, not physical placement).
func HopClassOf(from, to *Node) trace.HopClass {
	switch {
	case from.id == to.id:
		return trace.HopLocal
	case from.host == to.host && from.zone == to.zone:
		return trace.HopSameHost
	case from.zone == to.zone:
		return trace.HopSameZone
	default:
		return trace.HopCrossZone
	}
}

// observe counts one delivered message in the registry (if attached).
func (n *Network) observe(class trace.HopClass, size int) {
	if n.obs != nil {
		n.obs.bytes[class].Add(int64(size))
		n.obs.msgs[class].Add(1)
	}
}

// Topology returns the network's topology.
func (n *Network) Topology() *Topology { return n.topo }

// Node is a network endpoint on a host in a zone, with a NIC byte counter
// and a local disk.
type Node struct {
	net  *Network
	id   NodeID
	name string
	zone ZoneID
	host HostID

	Inbox *sim.Mailbox[Message]

	alive bool

	nicRead, nicWrite   int64
	diskRead, diskWrite int64
	diskNextFree        time.Duration

	// DiskBandwidth is the node-local disk throughput, bytes/second.
	DiskBandwidth float64
	// DiskLatency is the fixed per-IO cost.
	DiskLatency time.Duration
}

// NewNode registers a node in zone z on host h. Host IDs only matter for
// proximity: give two nodes the same HostID to co-locate them.
func (n *Network) NewNode(name string, z ZoneID, h HostID) *Node {
	nd := &Node{
		net:           n,
		id:            NodeID(len(n.nodes)),
		name:          name,
		zone:          z,
		host:          h,
		Inbox:         sim.NewMailbox[Message](n.env),
		alive:         true,
		DiskBandwidth: 400e6, // 400 MB/s, a cloud persistent SSD
		DiskLatency:   200 * time.Microsecond,
	}
	n.nodes = append(n.nodes, nd)
	return nd
}

// Node returns the node with the given id.
func (n *Network) Node(id NodeID) *Node { return n.nodes[id] }

// ID returns the node's network id.
func (nd *Node) ID() NodeID { return nd.id }

// Name returns the node's diagnostic name.
func (nd *Node) Name() string { return nd.name }

// Zone returns the node's availability zone.
func (nd *Node) Zone() ZoneID { return nd.zone }

// Host returns the node's host.
func (nd *Node) Host() HostID { return nd.host }

// Alive reports whether the node is up.
func (nd *Node) Alive() bool { return nd.alive }

// Fail marks the node down: its queued and future messages are dropped.
func (nd *Node) Fail() {
	nd.alive = false
	nd.net.topoEpoch++
	nd.Inbox.Drain(0)
}

// Recover marks the node up again.
func (nd *Node) Recover() {
	nd.alive = true
	nd.net.topoEpoch++
}

// TopoEpoch counts node up/down transitions. Layers that derive state from
// node liveness (e.g. a partition's alive-replica list) use it to cache
// that state between failures instead of recomputing per access.
func (n *Network) TopoEpoch() uint64 { return n.topoEpoch }

// NICBytes returns cumulative (read, write) bytes through the node's NIC.
func (nd *Node) NICBytes() (read, write int64) { return nd.nicRead, nd.nicWrite }

// DiskBytes returns cumulative (read, write) bytes through the node's disk.
func (nd *Node) DiskBytes() (read, write int64) { return nd.diskRead, nd.diskWrite }

// Proximity returns the §IV-A4 proximity distance between two nodes, taking
// LocationDomainId (zone) into account: same host < same zone < remote.
// Nodes with an unset zone are treated as remote unless on the same host.
func Proximity(a, b *Node) int {
	if a.host == b.host && a.zone == b.zone {
		return ProximitySameHost
	}
	if a.zone != ZoneUnset && a.zone == b.zone {
		return ProximitySameZone
	}
	return ProximityRemote
}

// Partition severs connectivity between two zones (both directions).
func (n *Network) Partition(a, b ZoneID) { n.partitions[zonePair(a, b)] = true }

// Heal restores connectivity between two zones.
func (n *Network) Heal(a, b ZoneID) { delete(n.partitions, zonePair(a, b)) }

// Partitioned reports whether traffic between zones a and b is severed.
func (n *Network) Partitioned(a, b ZoneID) bool { return n.partitions[zonePair(a, b)] }

func zonePair(a, b ZoneID) [2]ZoneID {
	if a > b {
		a, b = b, a
	}
	return [2]ZoneID{a, b}
}

// DegradeLink impairs the path between two zones (both directions): one-way
// latency is multiplied by latencyFactor (values < 1 are clamped to 1) and
// each message is independently dropped with probability lossProb. Used by
// chaos campaigns to model gray failures: slow links and lossy links, the
// failure modes between "healthy" and "partitioned".
func (n *Network) DegradeLink(a, b ZoneID, latencyFactor, lossProb float64) {
	if latencyFactor < 1 {
		latencyFactor = 1
	}
	if lossProb < 0 {
		lossProb = 0
	}
	if lossProb > 1 {
		lossProb = 1
	}
	n.degraded[zonePair(a, b)] = &degradation{LatencyFactor: latencyFactor, LossProb: lossProb}
}

// RestoreLink removes any degradation between two zones.
func (n *Network) RestoreLink(a, b ZoneID) { delete(n.degraded, zonePair(a, b)) }

// Degraded reports whether the path between two zones is impaired.
func (n *Network) Degraded(a, b ZoneID) bool {
	if len(n.degraded) == 0 {
		return false
	}
	return n.degraded[zonePair(a, b)] != nil
}

// degradationFor returns the active degradation between two zones, or nil.
// The len() guard keeps the common no-chaos path free of map lookups.
func (n *Network) degradationFor(a, b ZoneID) *degradation {
	if len(n.degraded) == 0 {
		return nil
	}
	return n.degraded[zonePair(a, b)]
}

// lost draws the loss coin for a message on a degraded path. It must only
// be called when a degradation with LossProb > 0 is active, so undisturbed
// runs never consume RNG values they did not consume before.
func (n *Network) lost(d *degradation) bool {
	return d != nil && d.LossProb > 0 && n.env.Rand().Float64() < d.LossProb
}

// Send transmits a message of the given size from one node to another. It
// never blocks the caller; delivery is scheduled after queueing latency on
// the zone-pair link plus propagation latency. Messages to dead nodes or
// across partitions are silently dropped, as on a real network. This is
// the pooled fast path: each message rides a recycled envelope instead of
// a fresh closure pair.
func (n *Network) Send(from, to *Node, size int, payload any) {
	arrive, ok := n.departure(from, to, size)
	if !ok {
		return
	}
	e := n.newEnvelope()
	e.from, e.to = from, to
	e.msg = Message{From: from.id, To: to.id, Size: size, Payload: payload}
	n.env.At(arrive, e.fire)
}

// Deliver transmits size bytes from one node to another and, on arrival,
// delivers v into the given mailbox instead of the destination's inbox.
// This is the reply path of an RPC: the caller parks on its own mailbox and
// the responder answers with Deliver, keeping latency, bandwidth queueing,
// and traffic accounting identical to Send without a demultiplexer.
func Deliver[T any](n *Network, from, to *Node, size int, mb *sim.Mailbox[T], v T) {
	n.transmit(from, to, size, func() { mb.Send(v) })
}

// Travel blocks p until a message of the given size sent from one node
// would arrive at the other, with full traffic accounting: the synchronous
// form of Send, used by code modelling a control flow that follows its own
// messages (RPC-style protocol implementations). It returns false if the
// message was dropped (dead node or partition) and the timeout elapsed
// instead.
func (n *Network) Travel(p *sim.Proc, from, to *Node, size int, timeout time.Duration) bool {
	if from.alive && (from.zone == to.zone || !n.Partitioned(from.zone, to.zone)) {
		// The blocking form cannot know the wire time up front (transmit
		// schedules it); it is off the hot metadata path, so hop time 0 is
		// an acceptable attribution loss.
		p.Span().RecordHop(HopClassOf(from, to), size, 0)
	}
	mb := sim.NewMailbox[struct{}](n.env)
	n.transmit(from, to, size, func() { mb.Send(struct{}{}) })
	_, ok := mb.RecvTimeout(p, timeout)
	return ok
}

// TravelDeferred is the fluid-time form of Travel: it computes the
// message's queueing, transmission, and propagation delay analytically
// against the caller's effective time and adds it to the process's pending
// accumulator instead of parking. When the destination is dead or the path
// partitioned, the RPC timeout is deferred and false is returned — the
// caller observes exactly what Travel's timeout would have cost.
func (n *Network) TravelDeferred(p *sim.Proc, from, to *Node, size int, timeout time.Duration) bool {
	if !from.alive || !to.alive ||
		(from.zone != to.zone && n.Partitioned(from.zone, to.zone)) {
		n.dropped++
		p.Defer(timeout)
		return false
	}
	if n.lost(n.degradationFor(from.zone, to.zone)) {
		n.dropped++
		p.Defer(timeout)
		return false
	}
	from.nicWrite += int64(size)
	to.nicRead += int64(size)
	hop := HopClassOf(from, to)
	n.observe(hop, size)
	n.observeLink(from.zone, to.zone, size)
	lat := n.latency(from, to)
	key := [2]ZoneID{from.zone, to.zone}
	lk := n.links[key]
	if lk == nil {
		lk = &link{}
		n.links[key] = lk
	}
	lk.bytes += int64(size)
	lk.messages++
	// Link horizons are kept in the clock frame (see Resource.UseDeferred);
	// the caller's message additionally cannot depart before its own
	// effective instant.
	clock := n.env.Now()
	eff := p.EffNow()
	departClock := clock
	arrival := eff
	bw := n.bandwidth(from.zone, to.zone)
	if bw > 0 && from.id != to.id {
		if lk.nextFree > departClock {
			departClock = lk.nextFree
		}
		tx := time.Duration(float64(size) / bw * float64(time.Second))
		lk.nextFree = departClock + tx
		arrival = departClock + tx
		if eff+tx > arrival {
			arrival = eff + tx
		}
	}
	// The hop's wire time is the whole deferral: queueing + transmission +
	// propagation. Recorded after the delay computation so the profiler can
	// attribute it, but before Defer (RecordHop consumes no randomness, so
	// the RNG stream is unchanged).
	wire := arrival + lat - eff
	p.Span().RecordHop(hop, size, wire)
	p.Defer(wire)
	return true
}

// departure runs the shared drop/accounting/queueing/latency path of the
// asynchronous forms, returning the arrival instant. ok is false when the
// message is dropped at the source (dead sender, partition, lossy link).
func (n *Network) departure(from, to *Node, size int) (arrive time.Duration, ok bool) {
	if !from.alive {
		n.dropped++
		return 0, false
	}
	if from.zone != to.zone && n.Partitioned(from.zone, to.zone) {
		n.dropped++
		return 0, false
	}
	if n.lost(n.degradationFor(from.zone, to.zone)) {
		n.dropped++
		return 0, false
	}
	from.nicWrite += int64(size)
	n.observe(HopClassOf(from, to), size)
	n.observeLink(from.zone, to.zone, size)
	lat := n.latency(from, to)
	key := [2]ZoneID{from.zone, to.zone}
	lk := n.links[key]
	if lk == nil {
		lk = &link{}
		n.links[key] = lk
	}
	lk.bytes += int64(size)
	lk.messages++
	depart := n.env.Now()
	bw := n.bandwidth(from.zone, to.zone)
	if bw > 0 && from.id != to.id {
		if lk.nextFree > depart {
			depart = lk.nextFree
		}
		tx := time.Duration(float64(size) / bw * float64(time.Second))
		lk.nextFree = depart + tx
		depart += tx
	}
	return depart + lat, true
}

// transmit schedules an arbitrary handover on arrival: the generic (and
// closure-allocating) form used by Deliver and Travel, which carry typed
// mailboxes the envelope pool cannot.
func (n *Network) transmit(from, to *Node, size int, handover func()) {
	arrive, ok := n.departure(from, to, size)
	if !ok {
		return
	}
	n.env.At(arrive, func() {
		if !to.alive {
			n.dropped++
			return
		}
		if from.zone != to.zone && n.Partitioned(from.zone, to.zone) {
			n.dropped++
			return
		}
		to.nicRead += int64(size)
		handover()
	})
}

// latency returns the one-way propagation latency between two nodes with
// deterministic jitter applied.
func (n *Network) latency(from, to *Node) time.Duration {
	var rtt time.Duration
	switch {
	case from.id == to.id:
		return 2 * time.Microsecond
	case from.host == to.host && from.zone == to.zone:
		rtt = n.topo.SameHostRTT
	default:
		fi, ti := zoneIndex(from.zone), zoneIndex(to.zone)
		rtt = n.topo.RTT[fi][ti]
	}
	lat := rtt / 2
	if n.topo.JitterFrac > 0 {
		f := 1 + n.topo.JitterFrac*(n.env.Rand().Float64()-0.5)
		lat = time.Duration(float64(lat) * f)
	}
	if d := n.degradationFor(from.zone, to.zone); d != nil && d.LatencyFactor > 1 {
		lat = time.Duration(float64(lat) * d.LatencyFactor)
	}
	return lat
}

// zoneIndex maps a ZoneID to a topology matrix index, treating the unset
// zone as zone 1 (it has to live somewhere; unset only disables awareness).
func zoneIndex(z ZoneID) int {
	if z == ZoneUnset {
		return 0
	}
	return int(z) - 1
}

func (n *Network) bandwidth(a, b ZoneID) float64 {
	if a == b {
		return n.topo.IntraZoneBandwidth
	}
	return n.topo.InterZoneBandwidth
}

// TrafficBetween returns cumulative bytes sent from zone a to zone b plus
// from b to a (a == b gives intra-zone traffic).
func (n *Network) TrafficBetween(a, b ZoneID) int64 {
	total := n.linkBytes(a, b)
	if a != b {
		total += n.linkBytes(b, a)
	}
	return total
}

func (n *Network) linkBytes(a, b ZoneID) int64 {
	if lk := n.links[[2]ZoneID{a, b}]; lk != nil {
		return lk.bytes
	}
	return 0
}

// CrossZoneBytes returns total bytes that crossed any AZ boundary.
func (n *Network) CrossZoneBytes() int64 {
	var total int64
	for key, lk := range n.links {
		if key[0] != key[1] {
			total += lk.bytes
		}
	}
	return total
}

// TotalBytes returns total bytes sent on all links.
func (n *Network) TotalBytes() int64 {
	var total int64
	for _, lk := range n.links {
		total += lk.bytes
	}
	return total
}

// TotalMessages returns the count of messages sent on all links.
func (n *Network) TotalMessages() int64 {
	var total int64
	for _, lk := range n.links {
		total += lk.messages
	}
	return total
}

// Dropped returns the count of messages dropped due to death or partition.
func (n *Network) Dropped() int64 { return n.dropped }

// DiskWrite blocks p for the duration of writing size bytes to the node's
// local disk (FIFO fluid queue) and accounts the bytes.
func (nd *Node) DiskWrite(p *sim.Proc, size int) {
	nd.diskWrite += int64(size)
	p.Sleep(nd.diskDelay(size))
}

// DiskRead blocks p for the duration of reading size bytes from the node's
// local disk and accounts the bytes.
func (nd *Node) DiskRead(p *sim.Proc, size int) {
	nd.diskRead += int64(size)
	p.Sleep(nd.diskDelay(size))
}

// AsyncDiskWrite accounts a background write (e.g. a lazily flushed log)
// without blocking the caller. Queueing is still modelled, so sustained
// over-rate writing pushes subsequent disk operations out in time.
func (nd *Node) AsyncDiskWrite(size int) {
	nd.diskWrite += int64(size)
	_ = nd.diskDelay(size)
}

func (nd *Node) diskDelay(size int) time.Duration {
	now := nd.net.env.Now()
	start := now
	if nd.diskNextFree > start {
		start = nd.diskNextFree
	}
	tx := time.Duration(float64(size) / nd.DiskBandwidth * float64(time.Second))
	nd.diskNextFree = start + tx + nd.DiskLatency
	return nd.diskNextFree - now
}

// DiskBusyUntil exposes the disk fluid-queue horizon, used by utilization
// accounting.
func (nd *Node) DiskBusyUntil() time.Duration { return nd.diskNextFree }

// String implements fmt.Stringer.
func (nd *Node) String() string {
	return fmt.Sprintf("%s(zone=%d,host=%d)", nd.name, nd.zone, nd.host)
}
