package simnet

import (
	"testing"
	"time"

	"hopsfscl/internal/sim"
)

// BenchmarkNetworkSend measures the asynchronous datagram fast path: b.N
// messages from one node to another, drained by a server process. This is
// the per-message envelope cost every simulated RPC pays twice.
func BenchmarkNetworkSend(b *testing.B) {
	env := sim.New(1)
	defer env.Close()
	net := New(env, USWest1())
	a := net.NewNode("a", 1, 1)
	c := net.NewNode("c", 2, 2)
	env.Spawn("drain", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			a.Inbox.Recv(p)
		}
	})
	env.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			net.Send(c, a, 256, nil)
			p.Sleep(10 * time.Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	env.Run()
}

// BenchmarkNetworkTravelDeferred measures the fluid-time RPC leg used by
// the metadata hot path (client->NN->NDB hops).
func BenchmarkNetworkTravelDeferred(b *testing.B) {
	env := sim.New(1)
	defer env.Close()
	net := New(env, USWest1())
	a := net.NewNode("a", 1, 1)
	c := net.NewNode("c", 2, 2)
	env.Spawn("rpc", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			net.TravelDeferred(p, a, c, 256, time.Second)
			p.Flush()
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	env.Run()
}
