package simnet

import (
	"testing"
	"time"

	"hopsfscl/internal/sim"
)

func newTestNet(t *testing.T) (*sim.Env, *Network) {
	t.Helper()
	env := sim.New(7)
	t.Cleanup(env.Close)
	topo := USWest1()
	topo.JitterFrac = 0 // exact latencies for assertions
	return env, New(env, topo)
}

func TestSendDeliversWithZoneLatency(t *testing.T) {
	env, net := newTestNet(t)
	a := net.NewNode("a", 1, 1)
	b := net.NewNode("b", 2, 2)
	var at time.Duration
	var got Message
	env.Spawn("recv", func(p *sim.Proc) {
		got = b.Inbox.Recv(p)
		at = p.Now()
	})
	env.Spawn("send", func(p *sim.Proc) {
		net.Send(a, b, 100, "hi")
	})
	env.Run()
	if got.Payload != "hi" || got.From != a.ID() {
		t.Fatalf("got %+v", got)
	}
	// One-way a->b latency is RTT/2 = 180us plus tiny transmission time.
	want := 180 * time.Microsecond
	if at < want || at > want+10*time.Microsecond {
		t.Fatalf("delivered at %v, want ~%v", at, want)
	}
}

func TestSameHostLatencyIsLowest(t *testing.T) {
	env, net := newTestNet(t)
	a := net.NewNode("a", 1, 1)
	b := net.NewNode("b", 1, 1) // same host
	c := net.NewNode("c", 1, 2) // same zone, other host
	var tb, tc time.Duration
	env.Spawn("rb", func(p *sim.Proc) { b.Inbox.Recv(p); tb = p.Now() })
	env.Spawn("rc", func(p *sim.Proc) { c.Inbox.Recv(p); tc = p.Now() })
	net.Send(a, b, 10, nil)
	net.Send(a, c, 10, nil)
	env.Run()
	if tb >= tc {
		t.Fatalf("same-host %v not faster than same-zone %v", tb, tc)
	}
}

func TestProximityOrdering(t *testing.T) {
	env, net := newTestNet(t)
	_ = env
	a := net.NewNode("a", 1, 1)
	sameHost := net.NewNode("sh", 1, 1)
	sameZone := net.NewNode("sz", 1, 2)
	remote := net.NewNode("r", 2, 3)
	unset := net.NewNode("u", ZoneUnset, 4)
	tests := []struct {
		name string
		b    *Node
		want int
	}{
		{"same host", sameHost, ProximitySameHost},
		{"same zone", sameZone, ProximitySameZone},
		{"remote", remote, ProximityRemote},
		{"unset zone", unset, ProximityRemote},
	}
	for _, tt := range tests {
		if got := Proximity(a, tt.b); got != tt.want {
			t.Errorf("%s: proximity = %d, want %d", tt.name, got, tt.want)
		}
	}
}

func TestPartitionDropsAndHealRestores(t *testing.T) {
	env, net := newTestNet(t)
	a := net.NewNode("a", 1, 1)
	b := net.NewNode("b", 2, 2)
	net.Partition(1, 2)
	var got int
	env.Spawn("recv", func(p *sim.Proc) {
		for {
			if _, ok := b.Inbox.RecvTimeout(p, 10*time.Millisecond); !ok {
				return
			}
			got++
		}
	})
	env.Spawn("send", func(p *sim.Proc) {
		net.Send(a, b, 10, 1)
		p.Sleep(time.Millisecond)
		net.Heal(1, 2)
		net.Send(a, b, 10, 2)
	})
	env.Run()
	if got != 1 {
		t.Fatalf("delivered %d messages, want 1 (one dropped by partition)", got)
	}
	if net.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", net.Dropped())
	}
}

func TestFailedNodeDropsTraffic(t *testing.T) {
	env, net := newTestNet(t)
	a := net.NewNode("a", 1, 1)
	b := net.NewNode("b", 1, 2)
	b.Fail()
	net.Send(a, b, 10, nil)
	env.Run()
	if b.Inbox.Len() != 0 {
		t.Fatal("dead node received a message")
	}
	b.Recover()
	net.Send(a, b, 10, nil)
	env.Run()
	if b.Inbox.Len() != 1 {
		t.Fatal("recovered node did not receive")
	}
}

func TestTrafficAccounting(t *testing.T) {
	env, net := newTestNet(t)
	a := net.NewNode("a", 1, 1)
	b := net.NewNode("b", 2, 2)
	c := net.NewNode("c", 1, 3)
	net.Send(a, b, 100, nil)
	net.Send(b, a, 50, nil)
	net.Send(a, c, 30, nil)
	env.Run()
	if got := net.TrafficBetween(1, 2); got != 150 {
		t.Fatalf("zone1<->zone2 traffic = %d, want 150", got)
	}
	if got := net.TrafficBetween(1, 1); got != 30 {
		t.Fatalf("intra-zone1 traffic = %d, want 30", got)
	}
	if got := net.CrossZoneBytes(); got != 150 {
		t.Fatalf("cross-zone = %d, want 150", got)
	}
	if r, w := a.NICBytes(); w != 130 || r != 50 {
		t.Fatalf("a NIC = (%d,%d), want (50,130)", r, w)
	}
}

func TestBandwidthQueueingDelaysBulkTransfers(t *testing.T) {
	env := sim.New(7)
	defer env.Close()
	topo := USWest1()
	topo.JitterFrac = 0
	topo.InterZoneBandwidth = 1e6 // 1 MB/s: 1 MB takes 1 s
	net := New(env, topo)
	a := net.NewNode("a", 1, 1)
	b := net.NewNode("b", 2, 2)
	var t1, t2 time.Duration
	env.Spawn("recv", func(p *sim.Proc) {
		b.Inbox.Recv(p)
		t1 = p.Now()
		b.Inbox.Recv(p)
		t2 = p.Now()
	})
	net.Send(a, b, 1_000_000, nil)
	net.Send(a, b, 1_000_000, nil)
	env.Run()
	if t1 < time.Second || t1 > time.Second+time.Millisecond {
		t.Fatalf("first delivery at %v, want ~1s", t1)
	}
	if t2 < 2*time.Second || t2 > 2*time.Second+time.Millisecond {
		t.Fatalf("second delivery at %v, want ~2s (FIFO queueing)", t2)
	}
}

func TestDeliverRoutesToReplyMailbox(t *testing.T) {
	env, net := newTestNet(t)
	a := net.NewNode("a", 1, 1)
	b := net.NewNode("b", 2, 2)
	reply := sim.NewMailbox[string](env)
	var got string
	env.Spawn("caller", func(p *sim.Proc) {
		Deliver(net, b, a, 64, reply, "pong")
		got = reply.Recv(p)
	})
	env.Run()
	if got != "pong" {
		t.Fatalf("got %q, want pong", got)
	}
	if _, w := b.NICBytes(); w != 64 {
		t.Fatalf("reply bytes not accounted: %d", w)
	}
}

func TestDiskWriteQueueing(t *testing.T) {
	env, net := newTestNet(t)
	n := net.NewNode("n", 1, 1)
	n.DiskBandwidth = 1e6 // 1 MB/s
	n.DiskLatency = 0
	var done time.Duration
	env.Spawn("writer", func(p *sim.Proc) {
		n.DiskWrite(p, 500_000)
		n.DiskWrite(p, 500_000)
		done = p.Now()
	})
	env.Run()
	if done < time.Second || done > time.Second+time.Millisecond {
		t.Fatalf("two 0.5MB writes took %v, want ~1s", done)
	}
	if _, w := n.DiskBytes(); w != 1_000_000 {
		t.Fatalf("disk write bytes = %d", w)
	}
}

func TestTable1MatrixSymmetryAndDiagonalMinimum(t *testing.T) {
	topo := USWest1()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if topo.RTT[i][j] != topo.RTT[j][i] {
				t.Fatalf("RTT[%d][%d] != RTT[%d][%d]", i, j, j, i)
			}
			if i != j && topo.RTT[i][j] <= topo.RTT[i][i] {
				t.Fatalf("cross-AZ RTT[%d][%d]=%v not greater than intra %v",
					i, j, topo.RTT[i][j], topo.RTT[i][i])
			}
		}
	}
}

func TestZoneNames(t *testing.T) {
	topo := USWest1()
	if topo.ZoneName(ZoneUnset) != "unset" {
		t.Fatal("unset zone name")
	}
	if topo.ZoneName(2) != "us-west1-b" {
		t.Fatalf("zone 2 = %q", topo.ZoneName(2))
	}
}

func TestTravelDeferredMatchesLatency(t *testing.T) {
	env, net := newTestNet(t)
	a := net.NewNode("a", 1, 1)
	b := net.NewNode("b", 2, 2)
	var pending time.Duration
	env.Spawn("p", func(p *sim.Proc) {
		if !net.TravelDeferred(p, a, b, 100, time.Second) {
			t.Error("deferred travel failed")
			return
		}
		pending = p.Pending()
	})
	env.Run()
	// One-way a->b latency is RTT/2 = 180us plus transmission.
	if pending < 180*time.Microsecond || pending > 181*time.Microsecond {
		t.Fatalf("deferred delay %v, want ~180us", pending)
	}
	if r, _ := b.NICBytes(); r != 100 {
		t.Fatalf("deferred travel did not account bytes: %d", r)
	}
}

func TestTravelDeferredToDeadNodeDefersTimeout(t *testing.T) {
	env, net := newTestNet(t)
	a := net.NewNode("a", 1, 1)
	b := net.NewNode("b", 2, 2)
	b.Fail()
	var ok bool
	var pending time.Duration
	env.Spawn("p", func(p *sim.Proc) {
		ok = net.TravelDeferred(p, a, b, 100, 250*time.Millisecond)
		pending = p.Pending()
	})
	env.Run()
	if ok {
		t.Fatal("travel to dead node succeeded")
	}
	if pending != 250*time.Millisecond {
		t.Fatalf("timeout not deferred: %v", pending)
	}
	if net.Dropped() != 1 {
		t.Fatalf("dropped = %d", net.Dropped())
	}
}

func TestTravelDeferredPartitioned(t *testing.T) {
	env, net := newTestNet(t)
	a := net.NewNode("a", 1, 1)
	b := net.NewNode("b", 3, 2)
	net.Partition(1, 3)
	var ok bool
	env.Spawn("p", func(p *sim.Proc) {
		ok = net.TravelDeferred(p, a, b, 10, time.Millisecond)
	})
	env.Run()
	if ok {
		t.Fatal("travel across partition succeeded")
	}
}

func TestTravelDeferredLinkQueueing(t *testing.T) {
	env := sim.New(7)
	defer env.Close()
	topo := USWest1()
	topo.JitterFrac = 0
	topo.InterZoneBandwidth = 1e6 // 1 MB/s: 1 MB takes 1 s
	net := New(env, topo)
	a := net.NewNode("a", 1, 1)
	b := net.NewNode("b", 2, 2)
	var d1, d2 time.Duration
	env.Spawn("p", func(p *sim.Proc) {
		net.TravelDeferred(p, a, b, 1_000_000, time.Minute)
		d1 = p.Pending()
		p.Flush()
		// Second transfer starts after the first's horizon in clock frame.
		net.TravelDeferred(p, a, b, 1_000_000, time.Minute)
		d2 = p.Pending()
	})
	env.Run()
	if d1 < time.Second || d1 > time.Second+time.Millisecond {
		t.Fatalf("first deferred transfer %v, want ~1s", d1)
	}
	if d2 < time.Second || d2 > time.Second+time.Millisecond {
		t.Fatalf("second deferred transfer %v, want ~1s after flush", d2)
	}
}

func TestDegradeLinkStretchesLatency(t *testing.T) {
	env, net := newTestNet(t)
	a := net.NewNode("a", 1, 1)
	b := net.NewNode("b", 2, 2)
	net.DegradeLink(1, 2, 4, 0)
	if !net.Degraded(1, 2) || !net.Degraded(2, 1) {
		t.Fatal("degradation not visible (or not symmetric)")
	}
	var pending time.Duration
	env.Spawn("p", func(p *sim.Proc) {
		if !net.TravelDeferred(p, a, b, 100, time.Second) {
			t.Error("travel over slow link failed")
			return
		}
		pending = p.Pending()
	})
	env.Run()
	// Base one-way latency is 180us; the 4x factor applies to latency but
	// not to transmission time.
	if pending < 4*180*time.Microsecond || pending > 4*180*time.Microsecond+10*time.Microsecond {
		t.Fatalf("slow-link delay %v, want ~720us", pending)
	}
	net.RestoreLink(1, 2)
	if net.Degraded(1, 2) {
		t.Fatal("degradation survived RestoreLink")
	}
}

func TestDegradeLinkDropsProbabilistically(t *testing.T) {
	env, net := newTestNet(t)
	a := net.NewNode("a", 1, 1)
	b := net.NewNode("b", 2, 2)
	net.DegradeLink(1, 2, 1, 0.5)
	lost, delivered := 0, 0
	env.Spawn("p", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			if net.TravelDeferred(p, a, b, 10, time.Millisecond) {
				delivered++
			} else {
				lost++
			}
		}
	})
	env.Run()
	if lost == 0 || delivered == 0 {
		t.Fatalf("50%% loss gave lost=%d delivered=%d", lost, delivered)
	}
	if lost < 60 || lost > 140 {
		t.Fatalf("loss far from 50%%: %d/200", lost)
	}
	if int(net.Dropped()) != lost {
		t.Fatalf("dropped counter %d, want %d", net.Dropped(), lost)
	}
	// Other zone pairs are unaffected.
	c := net.NewNode("c", 3, 3)
	ok := true
	env.Spawn("q", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			if !net.TravelDeferred(p, a, c, 10, time.Millisecond) {
				ok = false
			}
		}
	})
	env.Run()
	if !ok {
		t.Fatal("degradation of pair (1,2) leaked onto pair (1,3)")
	}
}

// TestDegradeLinkPreservesCleanRNGStream pins the determinism contract:
// installing and removing a degradation must not perturb the RNG stream
// of runs that never degrade — loss draws only happen while a
// degradation is installed.
func TestDegradeLinkPreservesCleanRNGStream(t *testing.T) {
	run := func(withEpisode bool) []time.Duration {
		env := sim.New(99)
		defer env.Close()
		net := New(env, USWest1()) // default jitter: latency consumes RNG
		a := net.NewNode("a", 1, 1)
		b := net.NewNode("b", 2, 2)
		var out []time.Duration
		env.Spawn("p", func(p *sim.Proc) {
			for i := 0; i < 20; i++ {
				if i == 10 && withEpisode {
					net.DegradeLink(1, 3, 3, 0.5) // other pair entirely
					net.RestoreLink(1, 3)
				}
				net.TravelDeferred(p, a, b, 10, time.Second)
				out = append(out, p.Pending())
			}
		})
		env.Run()
		return out
	}
	clean, episodic := run(false), run(true)
	for i := range clean {
		if clean[i] != episodic[i] {
			t.Fatalf("step %d: clean %v vs episodic %v — degradation episode perturbed the RNG stream",
				i, clean[i], episodic[i])
		}
	}
}

// The asynchronous Send path pools its delivery envelopes: each in-flight
// message takes one envelope, recycled the instant it arrives, so a
// steady-state message stream reuses the same envelope (and its prebuilt
// fire closure) instead of allocating per message.
func TestEnvelopePoolRecyclesAndDelivers(t *testing.T) {
	env, net := newTestNet(t)
	a := net.NewNode("a", 1, 1)
	b := net.NewNode("b", 2, 2)
	var got []string
	env.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, b.Inbox.Recv(p).Payload.(string))
		}
	})
	env.Spawn("send", func(p *sim.Proc) {
		for i, msg := range []string{"m0", "m1", "m2"} {
			net.Send(a, b, 100, msg)
			// Serialize the messages so each envelope is back in the pool
			// before the next Send draws one.
			p.Sleep(time.Duration(i+1) * time.Millisecond)
		}
	})
	env.Run()
	if len(got) != 3 || got[0] != "m0" || got[1] != "m1" || got[2] != "m2" {
		t.Fatalf("delivered %v, want [m0 m1 m2]", got)
	}
	if len(net.freeEnvs) != 1 {
		t.Fatalf("envelope pool holds %d entries after serialized sends, want 1 (reuse)", len(net.freeEnvs))
	}
	// A recycled envelope must not retain the delivered message.
	if e := net.freeEnvs[0]; e.msg.Payload != nil || e.from != nil || e.to != nil {
		t.Fatalf("pooled envelope retains delivery state: %+v", e)
	}
}
