package metrics

import (
	"math"
	"strings"
	"testing"
	"time"

	"hopsfscl/internal/sim"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(1000, 1)
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("mean = %v", got)
	}
	if got := h.Percentile(0.5); got < 49*time.Millisecond || got > 51*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := h.Percentile(0.99); got < 98*time.Millisecond || got > 100*time.Millisecond {
		t.Fatalf("p99 = %v", got)
	}
	if h.Max() != 100*time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
}

func TestHistogramReservoirBoundsMemory(t *testing.T) {
	h := NewHistogram(128, 1)
	for i := 0; i < 100000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if len(h.samples) != 128 {
		t.Fatalf("retained %d samples, want 128", len(h.samples))
	}
	if h.Count() != 100000 {
		t.Fatalf("count = %d", h.Count())
	}
	// The reservoir median should be around the true median.
	p50 := h.Percentile(0.5)
	if p50 < 30*time.Millisecond || p50 > 70*time.Millisecond {
		t.Fatalf("reservoir p50 = %v, want ~50ms", p50)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(16, 1)
	h.Observe(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear state")
	}
}

// TestHistogramPercentileNearestRank pins the ceiling nearest-rank
// definition: Percentile(q) is the smallest sample with at least a q
// fraction of the sample at or below it. Truncating the rank instead
// biases small-sample tails low — p99 of 10 samples must be the 10th
// value, not the 9th.
func TestHistogramPercentileNearestRank(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	cases := []struct {
		name    string
		samples []time.Duration
		q       float64
		want    time.Duration
	}{
		{"1-sample p50", []time.Duration{ms(7)}, 0.5, ms(7)},
		{"1-sample p99", []time.Duration{ms(7)}, 0.99, ms(7)},
		{"1-sample p100", []time.Duration{ms(7)}, 1.0, ms(7)},
		{"2-sample p50", []time.Duration{ms(1), ms(2)}, 0.5, ms(1)},
		{"2-sample p51", []time.Duration{ms(1), ms(2)}, 0.51, ms(2)},
		{"2-sample p99", []time.Duration{ms(1), ms(2)}, 0.99, ms(2)},
		{"10-sample p10", []time.Duration{ms(1), ms(2), ms(3), ms(4), ms(5), ms(6), ms(7), ms(8), ms(9), ms(10)}, 0.10, ms(1)},
		{"10-sample p50", []time.Duration{ms(1), ms(2), ms(3), ms(4), ms(5), ms(6), ms(7), ms(8), ms(9), ms(10)}, 0.50, ms(5)},
		{"10-sample p90", []time.Duration{ms(1), ms(2), ms(3), ms(4), ms(5), ms(6), ms(7), ms(8), ms(9), ms(10)}, 0.90, ms(9)},
		{"10-sample p99", []time.Duration{ms(1), ms(2), ms(3), ms(4), ms(5), ms(6), ms(7), ms(8), ms(9), ms(10)}, 0.99, ms(10)},
		{"10-sample p100", []time.Duration{ms(1), ms(2), ms(3), ms(4), ms(5), ms(6), ms(7), ms(8), ms(9), ms(10)}, 1.0, ms(10)},
	}
	for _, tc := range cases {
		h := NewHistogram(64, 1)
		for _, d := range tc.samples {
			h.Observe(d)
		}
		if got := h.Percentile(tc.q); got != tc.want {
			t.Errorf("%s: Percentile(%v) = %v, want %v", tc.name, tc.q, got, tc.want)
		}
	}
}

func TestHistogramResetReseedsRNG(t *testing.T) {
	// A reset histogram must replay the exact reservoir decisions of a
	// fresh one with the same seed; otherwise reset-and-reuse runs diverge.
	reset := NewHistogram(32, 7)
	for i := 0; i < 500; i++ {
		reset.Observe(time.Duration(i) * time.Microsecond)
	}
	reset.Reset()
	fresh := NewHistogram(32, 7)
	for i := 0; i < 500; i++ {
		d := time.Duration(i) * time.Millisecond
		reset.Observe(d)
		fresh.Observe(d)
	}
	if len(reset.samples) != len(fresh.samples) {
		t.Fatalf("sample counts diverged: %d vs %d", len(reset.samples), len(fresh.samples))
	}
	for i := range fresh.samples {
		if reset.samples[i] != fresh.samples[i] {
			t.Fatalf("reservoirs diverged at %d: %v vs %v", i, reset.samples[i], fresh.samples[i])
		}
	}
}

func TestHistogramPercentileCacheInvalidation(t *testing.T) {
	h := NewHistogram(1000, 1)
	for i := 1; i <= 10; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := h.Percentile(1.0); got != 10*time.Millisecond {
		t.Fatalf("p100 = %v, want 10ms", got)
	}
	// A later observation must be visible to the next query even though a
	// sorted view was already cached.
	h.Observe(time.Second)
	if got := h.Percentile(1.0); got != time.Second {
		t.Fatalf("p100 after new max = %v, want 1s", got)
	}
	// 11 samples now: the median is the 6th smallest (ceiling nearest
	// rank), not the 5th.
	if got := h.Percentile(0.5); got != 6*time.Millisecond {
		t.Fatalf("p50 = %v, want 6ms", got)
	}
	h.Reset()
	if got := h.Percentile(0.5); got != 0 {
		t.Fatalf("p50 after reset = %v, want 0", got)
	}
}

func TestUtilWindow(t *testing.T) {
	env := sim.New(1)
	defer env.Close()
	res := sim.NewResource(env, "cpu", 2)
	env.Spawn("w", func(p *sim.Proc) {
		p.Sleep(10 * time.Millisecond) // outside window activity later
		res.Use(p, 2, 10*time.Millisecond)
	})
	u := NewUtilWindow(res)
	env.RunFor(10 * time.Millisecond)
	u.Mark(env.Now())
	env.RunFor(10 * time.Millisecond)
	got := u.Report(env.Now())
	if got < 0.99 || got > 1.01 {
		t.Fatalf("window util = %f, want 1.0", got)
	}
	// Next window: idle.
	u.Mark(env.Now())
	env.RunFor(10 * time.Millisecond)
	if got := u.Report(env.Now()); got != 0 {
		t.Fatalf("idle window util = %f", got)
	}
}

func TestRateFormatting(t *testing.T) {
	tests := []struct {
		rate float64
		want string
	}{
		{1_660_000, "1.66M"},
		{770_000, "770K"},
		{950, "950"},
	}
	for _, tt := range tests {
		if got := FormatOps(tt.rate); got != tt.want {
			t.Errorf("FormatOps(%f) = %q, want %q", tt.rate, got, tt.want)
		}
	}
	if got := OpsPerSec(100, time.Second); got != 100 {
		t.Errorf("OpsPerSec = %f", got)
	}
	if got := OpsPerSec(100, 0); got != 0 {
		t.Errorf("OpsPerSec zero window = %f", got)
	}
}

func TestTableRendersAligned(t *testing.T) {
	tbl := NewTable("setup", "ops/sec")
	tbl.AddRow("HopsFS (2,1)", "1.62M")
	tbl.AddRow("CephFS", "770K")
	out := tbl.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "setup") || !strings.Contains(lines[2], "1.62M") {
		t.Fatalf("unexpected table:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Fatalf("empty series = %q", got)
	}
	if got := Sparkline([]float64{0, 0}); got != "▁▁" {
		t.Fatalf("zero series = %q", got)
	}
	got := Sparkline([]float64{1, 4, 8})
	runes := []rune(got)
	if len(runes) != 3 {
		t.Fatalf("length = %d", len(runes))
	}
	if runes[2] != '█' {
		t.Fatalf("max bar = %q", string(runes[2]))
	}
	if runes[0] >= runes[1] || runes[1] >= runes[2] {
		t.Fatalf("bars not increasing: %q", got)
	}
}

func TestZeroWindowAndEmptyGuards(t *testing.T) {
	// Rates over an empty or inverted window must not divide by zero.
	cases := []struct {
		ops    int64
		window time.Duration
	}{
		{0, 0}, {100, 0}, {100, -time.Second}, {0, time.Second},
	}
	for _, c := range cases {
		if got := OpsPerSec(c.ops, c.window); got != 0 && c.window <= 0 {
			t.Errorf("OpsPerSec(%d, %v) = %v, want 0", c.ops, c.window, got)
		}
		s := Rate(c.ops, c.window)
		if strings.Contains(s, "NaN") || strings.Contains(s, "Inf") {
			t.Errorf("Rate(%d, %v) = %q", c.ops, c.window, s)
		}
	}

	// An untouched histogram reports zeros, not NaN.
	h := NewHistogram(16, 1)
	if h.Mean() != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Fatalf("empty histogram: mean=%v max=%v count=%d", h.Mean(), h.Max(), h.Count())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Percentile(q); got != 0 {
			t.Fatalf("empty Percentile(%v) = %v", q, got)
		}
	}
}

func TestFormatOpsNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := FormatOps(v); got != "0" {
			t.Errorf("FormatOps(%v) = %q, want \"0\"", v, got)
		}
	}
	if got := FormatOps(1.66e6); got != "1.66M" {
		t.Errorf("FormatOps(1.66e6) = %q", got)
	}
}

func TestSparklineNonFinite(t *testing.T) {
	s := Sparkline([]float64{math.NaN(), 1, math.Inf(1), 2, math.Inf(-1)})
	if strings.Contains(s, "NaN") || len([]rune(s)) != 5 {
		t.Fatalf("Sparkline with non-finite values = %q", s)
	}
	// The Inf must not flatten the finite values' scale: 2 is the max and
	// renders as the top bar.
	if []rune(s)[3] != '█' {
		t.Fatalf("finite max not at full scale: %q", s)
	}
}

func TestReservoirDeterministicPastCap(t *testing.T) {
	// Two histograms with the same seed fed the same over-capacity sequence
	// must retain identical reservoirs and report identical percentiles.
	const n = 5000
	a := NewHistogram(64, 42)
	b := NewHistogram(64, 42)
	for i := 0; i < n; i++ {
		d := time.Duration((i*2654435761)%1000000) * time.Microsecond
		a.Observe(d)
		b.Observe(d)
	}
	if a.Count() != n || int64(len(a.samples)) != 64 {
		t.Fatalf("reservoir state: count=%d retained=%d", a.Count(), len(a.samples))
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if a.Percentile(q) != b.Percentile(q) {
			t.Fatalf("p%v diverged: %v vs %v", q*100, a.Percentile(q), b.Percentile(q))
		}
	}
}

func TestReservoirCrossSeedStability(t *testing.T) {
	// Different seeds sample different subsets, but over a wide uniform
	// stream the median estimate must stay near the true median — the
	// reservoir is a sample, not a bias.
	const n = 20000
	trueMedian := 500 * time.Microsecond
	for seed := int64(1); seed <= 5; seed++ {
		h := NewHistogram(1024, seed)
		for i := 0; i < n; i++ {
			h.Observe(time.Duration((i*7919)%1000) * time.Microsecond)
		}
		p50 := h.Percentile(0.5)
		lo, hi := trueMedian*9/10, trueMedian*11/10
		if p50 < lo || p50 > hi {
			t.Fatalf("seed %d: p50 = %v, want within [%v, %v]", seed, p50, lo, hi)
		}
	}
}
