// Package metrics provides the measurement plumbing for the experiment
// harness: latency histograms with percentile queries, windowed resource
// utilization from the simulation kernel's busy-time integrals, and byte
// counter snapshots.
package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"hopsfscl/internal/sim"
)

// Histogram collects latency samples with deterministic reservoir sampling
// so memory stays bounded for arbitrarily long runs.
type Histogram struct {
	samples []time.Duration
	count   int64
	sum     time.Duration
	max     time.Duration
	cap     int
	seed    int64
	rng     *rand.Rand

	// sorted caches the sorted view for repeated percentile queries
	// (harnesses ask for p50/p90/p99 back to back); Observe invalidates it.
	sorted      []time.Duration
	sortedValid bool
}

// NewHistogram returns a histogram keeping at most capSamples samples
// (reservoir-sampled beyond that). A zero capSamples defaults to 64k.
func NewHistogram(capSamples int, seed int64) *Histogram {
	if capSamples <= 0 {
		capSamples = 64 << 10
	}
	return &Histogram{
		cap:  capSamples,
		seed: seed,
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.count++
	h.sum += d
	h.sortedValid = false
	if d > h.max {
		h.max = d
	}
	if len(h.samples) < h.cap {
		h.samples = append(h.samples, d)
		return
	}
	// Vitter's algorithm R.
	if idx := h.rng.Int63n(h.count); idx < int64(h.cap) {
		h.samples[idx] = d
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the average of all observations.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return h.max }

// Percentile returns the q-quantile (0 < q <= 1) from the retained sample.
func (h *Histogram) Percentile(q float64) time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sortedValid {
		h.sorted = append(h.sorted[:0], h.samples...)
		sort.Slice(h.sorted, func(i, j int) bool { return h.sorted[i] < h.sorted[j] })
		h.sortedValid = true
	}
	s := h.sorted
	// Ceiling nearest-rank: the smallest sample with at least a q fraction
	// of the sample at or below it. Truncating here biases small-sample
	// tails low (p99 of 10 samples would return the 9th value, not the
	// 10th).
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// Reset clears all state, including the sampling RNG: a reset histogram
// behaves identically to a freshly constructed one, so reset-and-reuse
// runs stay reproducible.
func (h *Histogram) Reset() {
	h.samples = h.samples[:0]
	h.count = 0
	h.sum = 0
	h.max = 0
	h.sortedValid = false
	h.rng = rand.New(rand.NewSource(h.seed))
}

// UtilWindow measures average utilization of a set of resources over a
// window: Mark at window start, Report at window end.
type UtilWindow struct {
	res    []*sim.Resource
	busyAt []int64
	start  time.Duration
}

// NewUtilWindow tracks the given resources.
func NewUtilWindow(res ...*sim.Resource) *UtilWindow {
	return &UtilWindow{res: res, busyAt: make([]int64, len(res))}
}

// Mark snapshots the window start at the current virtual time.
func (u *UtilWindow) Mark(now time.Duration) {
	u.start = now
	for i, r := range u.res {
		u.busyAt[i] = r.BusyIntegral()
	}
}

// Report returns the average utilization (0..1) across all tracked
// resources since Mark.
func (u *UtilWindow) Report(now time.Duration) float64 {
	window := now - u.start
	if window <= 0 || len(u.res) == 0 {
		return 0
	}
	var total float64
	for i, r := range u.res {
		delta := r.BusyIntegral() - u.busyAt[i]
		total += float64(delta) / (float64(r.Capacity()) * float64(window))
	}
	return total / float64(len(u.res))
}

// ReportEach returns per-resource utilizations since Mark.
func (u *UtilWindow) ReportEach(now time.Duration) []float64 {
	window := now - u.start
	out := make([]float64, len(u.res))
	if window <= 0 {
		return out
	}
	for i, r := range u.res {
		delta := r.BusyIntegral() - u.busyAt[i]
		out[i] = float64(delta) / (float64(r.Capacity()) * float64(window))
	}
	return out
}

// Rate formats ops over a window as a human-readable ops/sec string.
func Rate(ops int64, window time.Duration) string {
	return FormatOps(OpsPerSec(ops, window))
}

// OpsPerSec converts a count over a window to a rate.
func OpsPerSec(ops int64, window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(ops) / window.Seconds()
}

// FormatOps renders a rate as e.g. "1.66M", "800K", "950". Non-finite
// rates (a zero-duration window divided through, an empty measurement)
// render as "0" rather than leaking NaN/Inf into report tables.
func FormatOps(rate float64) string {
	switch {
	case math.IsNaN(rate) || math.IsInf(rate, 0):
		return "0"
	case rate >= 1e6:
		return fmt.Sprintf("%.2fM", rate/1e6)
	case rate >= 1e3:
		return fmt.Sprintf("%.0fK", rate/1e3)
	default:
		return fmt.Sprintf("%.0f", rate)
	}
}

// Sparkline renders values as a compact unicode bar series, normalized to
// the series maximum — used for throughput timelines in experiment output.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	bars := []rune("▁▂▃▄▅▆▇█")
	// Non-finite values (NaN, ±Inf) render as the lowest bar and never set
	// the scale, so one bad sample cannot flatten the series.
	max := 0.0
	for _, v := range values {
		if v > max && !math.IsInf(v, 1) {
			max = v
		}
	}
	if max <= 0 {
		return strings.Repeat(string(bars[0]), len(values))
	}
	var b strings.Builder
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			b.WriteRune(bars[0])
			continue
		}
		idx := int(v / max * float64(len(bars)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(bars) {
			idx = len(bars) - 1
		}
		b.WriteRune(bars[idx])
	}
	return b.String()
}

// Table is a minimal fixed-width table printer for experiment output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row (stringified cells).
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
