package workload

import (
	"fmt"
	"math/rand"
)

// Namespace is the shared, mutable view of the file tree the generators
// operate on. The simulation kernel serializes access. Files are indexed
// per directory so generators with directory affinity (modelling per-job
// dataset locality) pick efficiently.
type Namespace struct {
	Dirs []string

	// leafDirs are the directories seeded with files — the datasets
	// clients take affinity to.
	leafDirs []string

	byDir     map[string]*dirFiles
	fileCount int
	seq       int
	zipf      *rand.Zipf
	rng       *rand.Rand
}

type dirFiles struct {
	files []string
	pos   map[string]int
}

// BuildNamespace materializes a spec into directory and file path lists.
// Callers seed the actual file system (directly, to skip warm-up traffic)
// with Dirs then Files.
func BuildNamespace(spec NamespaceSpec, seed int64) *Namespace {
	ns := &Namespace{
		byDir: make(map[string]*dirFiles),
		rng:   rand.New(rand.NewSource(seed)),
	}
	for t := 0; t < spec.TopDirs; t++ {
		top := fmt.Sprintf("/proj%03d", t)
		ns.addDir(top)
		for s := 0; s < spec.SubDirs; s++ {
			dir := fmt.Sprintf("%s/ds%02d", top, s)
			ns.addDir(dir)
			ns.leafDirs = append(ns.leafDirs, dir)
			for f := 0; f < spec.FilesPerDir; f++ {
				ns.addFile(dir, fmt.Sprintf("%s/part-%05d", dir, f))
			}
		}
	}
	if spec.ZipfS > 1 && len(ns.Dirs) > 1 {
		ns.zipf = rand.NewZipf(ns.rng, spec.ZipfS, 1, uint64(len(ns.Dirs)-1))
	}
	return ns
}

func (ns *Namespace) addDir(path string) {
	ns.Dirs = append(ns.Dirs, path)
	if ns.byDir[path] == nil {
		ns.byDir[path] = &dirFiles{pos: make(map[string]int)}
	}
}

func (ns *Namespace) addFile(dir, path string) {
	df := ns.byDir[dir]
	if df == nil {
		df = &dirFiles{pos: make(map[string]int)}
		ns.byDir[dir] = df
	}
	if _, exists := df.pos[path]; exists {
		return
	}
	df.pos[path] = len(df.files)
	df.files = append(df.files, path)
	ns.fileCount++
}

func (ns *Namespace) removeFile(dir, path string) {
	df := ns.byDir[dir]
	if df == nil {
		return
	}
	idx, ok := df.pos[path]
	if !ok {
		return
	}
	last := len(df.files) - 1
	df.files[idx] = df.files[last]
	df.pos[df.files[idx]] = idx
	df.files = df.files[:last]
	delete(df.pos, path)
	ns.fileCount--
}

// FileCount returns the number of live files.
func (ns *Namespace) FileCount() int { return ns.fileCount }

// AllFiles returns every live file path (for seeding), in directory order.
func (ns *Namespace) AllFiles() []string {
	out := make([]string, 0, ns.fileCount)
	for _, dir := range ns.Dirs {
		if df := ns.byDir[dir]; df != nil {
			out = append(out, df.files...)
		}
	}
	return out
}

// pickDir returns a directory, Zipf-skewed toward hot directories.
func (ns *Namespace) pickDir(rng *rand.Rand) string {
	if len(ns.Dirs) == 0 {
		return "/"
	}
	if ns.zipf != nil {
		return ns.Dirs[int(ns.zipf.Uint64())%len(ns.Dirs)]
	}
	return ns.Dirs[rng.Intn(len(ns.Dirs))]
}

// pickFileIn returns a live file in dir ("" if none), biased by a
// power law toward low-index (popular) files: real metadata traces re-read
// a small working set of hot files per dataset.
func (ns *Namespace) pickFileIn(rng *rand.Rand, dir string) string {
	df := ns.byDir[dir]
	if df == nil || len(df.files) == 0 {
		return ""
	}
	u := rng.Float64()
	idx := int(u * u * u * float64(len(df.files)))
	if idx >= len(df.files) {
		idx = len(df.files) - 1
	}
	return df.files[idx]
}

// freshName returns a unique new path under dir.
func (ns *Namespace) freshName(dir, prefix string) string {
	ns.seq++
	return fmt.Sprintf("%s/%s%08d", dir, prefix, ns.seq)
}

// dirOf returns the parent directory of a generated path.
func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			if i == 0 {
				return "/"
			}
			return path[:i]
		}
	}
	return "/"
}
