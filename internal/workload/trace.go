package workload

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"hopsfscl/internal/sim"
)

// TraceOp is one recorded file system operation. Dst is only set for
// renames; Recursive only for deletes.
type TraceOp struct {
	Op        Op
	Path      string
	Dst       string
	Recursive bool
}

// Recorder wraps an FS and records every operation flowing through it, so
// a workload run can be captured once and replayed against other
// deployments — the methodology behind the paper's use of the Spotify
// operational trace.
type Recorder struct {
	fs  FS
	ops []TraceOp
}

var _ FS = (*Recorder)(nil)

// NewRecorder wraps fs.
func NewRecorder(fs FS) *Recorder { return &Recorder{fs: fs} }

// Trace returns the recorded operations (shared slice; copy to keep).
func (r *Recorder) Trace() []TraceOp { return r.ops }

func (r *Recorder) record(op Op, path, dst string, recursive bool) {
	r.ops = append(r.ops, TraceOp{Op: op, Path: path, Dst: dst, Recursive: recursive})
}

// Mkdir records and forwards.
func (r *Recorder) Mkdir(p *sim.Proc, path string) error {
	r.record(OpMkdir, path, "", false)
	return r.fs.Mkdir(p, path)
}

// Create records and forwards.
func (r *Recorder) Create(p *sim.Proc, path string) error {
	r.record(OpCreate, path, "", false)
	return r.fs.Create(p, path)
}

// Stat records and forwards.
func (r *Recorder) Stat(p *sim.Proc, path string) error {
	r.record(OpStat, path, "", false)
	return r.fs.Stat(p, path)
}

// Read records and forwards.
func (r *Recorder) Read(p *sim.Proc, path string) error {
	r.record(OpRead, path, "", false)
	return r.fs.Read(p, path)
}

// List records and forwards.
func (r *Recorder) List(p *sim.Proc, path string) error {
	r.record(OpList, path, "", false)
	return r.fs.List(p, path)
}

// Delete records and forwards.
func (r *Recorder) Delete(p *sim.Proc, path string) error {
	r.record(OpDelete, path, "", false)
	return r.fs.Delete(p, path)
}

// Rename records and forwards.
func (r *Recorder) Rename(p *sim.Proc, src, dst string) error {
	r.record(OpRename, src, dst, false)
	return r.fs.Rename(p, src, dst)
}

// SetPermission records and forwards.
func (r *Recorder) SetPermission(p *sim.Proc, path string) error {
	r.record(OpSetPerm, path, "", false)
	return r.fs.SetPermission(p, path)
}

// Replay executes a trace against fs, returning how many operations
// errored (replays on a different deployment may race differently; errors
// are tolerated, not fatal).
func Replay(p *sim.Proc, fs FS, trace []TraceOp) (errs int) {
	for _, op := range trace {
		var err error
		switch op.Op {
		case OpMkdir:
			err = fs.Mkdir(p, op.Path)
		case OpCreate:
			err = fs.Create(p, op.Path)
		case OpStat:
			err = fs.Stat(p, op.Path)
		case OpRead:
			err = fs.Read(p, op.Path)
		case OpList:
			err = fs.List(p, op.Path)
		case OpDelete:
			err = fs.Delete(p, op.Path)
		case OpRename:
			err = fs.Rename(p, op.Path, op.Dst)
		case OpSetPerm:
			err = fs.SetPermission(p, op.Path)
		}
		if err != nil {
			errs++
		}
	}
	return errs
}

// WriteTrace serializes a trace as one line per operation:
//
//	<op> <path> [<dst>]
func WriteTrace(w io.Writer, trace []TraceOp) error {
	bw := bufio.NewWriter(w)
	for _, op := range trace {
		if op.Dst != "" {
			fmt.Fprintf(bw, "%s %s %s\n", op.Op, op.Path, op.Dst)
		} else {
			fmt.Fprintf(bw, "%s %s\n", op.Op, op.Path)
		}
	}
	return bw.Flush()
}

// ReadTrace parses the WriteTrace format.
func ReadTrace(rd io.Reader) ([]TraceOp, error) {
	names := map[string]Op{}
	for op := Op(1); op < numOps; op++ {
		names[op.String()] = op
	}
	var out []TraceOp
	scanner := bufio.NewScanner(rd)
	line := 0
	for scanner.Scan() {
		line++
		text := strings.TrimSpace(scanner.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		op, ok := names[fields[0]]
		if !ok {
			return nil, fmt.Errorf("workload: trace line %d: unknown op %q", line, fields[0])
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("workload: trace line %d: missing path", line)
		}
		t := TraceOp{Op: op, Path: fields[1]}
		want := 2
		if op == OpRename {
			if len(fields) < 3 {
				return nil, fmt.Errorf("workload: trace line %d: rename needs a destination", line)
			}
			t.Dst = fields[2]
			want = 3
		}
		if len(fields) > want {
			// A trailing field is a malformed line (typically a path with an
			// unescaped space); dropping it silently would replay a different
			// operation than the one recorded.
			return nil, fmt.Errorf("workload: trace line %d: %d unexpected trailing field(s) after %q",
				line, len(fields)-want, fields[want-1])
		}
		out = append(out, t)
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
