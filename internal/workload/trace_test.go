package workload

import (
	"strings"
	"testing"

	"hopsfscl/internal/sim"
)

func TestRecorderCapturesEveryOp(t *testing.T) {
	env := sim.New(1)
	defer env.Close()
	inner := newFakeFS()
	rec := NewRecorder(inner)
	env.Spawn("driver", func(p *sim.Proc) {
		_ = rec.Mkdir(p, "/d")
		_ = rec.Create(p, "/d/f")
		_ = rec.Stat(p, "/d/f")
		_ = rec.Read(p, "/d/f")
		_ = rec.List(p, "/d")
		_ = rec.Rename(p, "/d/f", "/d/g")
		_ = rec.SetPermission(p, "/d/g")
		_ = rec.Delete(p, "/d/g")
	})
	env.Run()
	trace := rec.Trace()
	if len(trace) != 8 {
		t.Fatalf("recorded %d ops, want 8", len(trace))
	}
	if trace[5].Op != OpRename || trace[5].Dst != "/d/g" {
		t.Fatalf("rename recorded as %+v", trace[5])
	}
	// The inner FS saw everything too.
	if inner.calls["mkdir"] != 1 || inner.calls["delete"] != 1 {
		t.Fatalf("inner calls: %v", inner.calls)
	}
}

func TestTraceRoundTripAndReplay(t *testing.T) {
	trace := []TraceOp{
		{Op: OpMkdir, Path: "/a"},
		{Op: OpCreate, Path: "/a/f"},
		{Op: OpRename, Path: "/a/f", Dst: "/a/g"},
		{Op: OpStat, Path: "/a/g"},
		{Op: OpDelete, Path: "/a/g"},
	}
	var buf strings.Builder
	if err := WriteTrace(&buf, trace); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(trace) {
		t.Fatalf("parsed %d ops, want %d", len(parsed), len(trace))
	}
	for i := range trace {
		if parsed[i] != trace[i] {
			t.Fatalf("op %d: %+v != %+v", i, parsed[i], trace[i])
		}
	}

	env := sim.New(1)
	defer env.Close()
	fs := newFakeFS()
	var errs int
	env.Spawn("replay", func(p *sim.Proc) { errs = Replay(p, fs, parsed) })
	env.Run()
	if errs != 0 {
		t.Fatalf("replay errors: %d", errs)
	}
	if fs.calls["mkdir"] != 1 || fs.calls["rename"] != 1 || fs.calls["delete"] != 1 {
		t.Fatalf("replayed calls: %v", fs.calls)
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	cases := []string{
		"fly /a",
		"mkdir",
		"rename /a",
		// Trailing fields are malformed lines (unescaped spaces in a path),
		// not noise to drop: the replay would diverge from the recording.
		"stat /a extra",
		"mkdir /a /b",
		"rename /a /b /c",
		"delete /path with spaces",
	}
	for _, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c)); err == nil {
			t.Errorf("trace %q accepted", c)
		}
	}
	// Comments and blanks are fine.
	got, err := ReadTrace(strings.NewReader("# header\n\nmkdir /a\n"))
	if err != nil || len(got) != 1 {
		t.Fatalf("comment handling: %v %v", got, err)
	}
}

func TestReadTraceEdgeCases(t *testing.T) {
	// Blank lines, indentation, comments, and a rename with both endpoints —
	// the whole accepted grammar in one document.
	doc := "\n\n  # generated\n  mkdir /a  \n\ncreateFile /a/f\nrename /a/f /a/g\n# trailing comment\n"
	got, err := ReadTrace(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	want := []TraceOp{
		{Op: OpMkdir, Path: "/a"},
		{Op: OpCreate, Path: "/a/f"},
		{Op: OpRename, Path: "/a/f", Dst: "/a/g"},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d ops, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("op %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Error messages carry the 1-based physical line number, counting
	// blanks and comments.
	_, err = ReadTrace(strings.NewReader("mkdir /a\n\n# c\nrename /x\n"))
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Errorf("line number missing or wrong: %v", err)
	}
	// An empty document is an empty trace, not an error.
	if ops, err := ReadTrace(strings.NewReader("")); err != nil || len(ops) != 0 {
		t.Errorf("empty input: %v %v", ops, err)
	}
}
