package workload

import (
	"strings"
	"testing"

	"hopsfscl/internal/sim"
)

func TestRecorderCapturesEveryOp(t *testing.T) {
	env := sim.New(1)
	defer env.Close()
	inner := newFakeFS()
	rec := NewRecorder(inner)
	env.Spawn("driver", func(p *sim.Proc) {
		_ = rec.Mkdir(p, "/d")
		_ = rec.Create(p, "/d/f")
		_ = rec.Stat(p, "/d/f")
		_ = rec.Read(p, "/d/f")
		_ = rec.List(p, "/d")
		_ = rec.Rename(p, "/d/f", "/d/g")
		_ = rec.SetPermission(p, "/d/g")
		_ = rec.Delete(p, "/d/g")
	})
	env.Run()
	trace := rec.Trace()
	if len(trace) != 8 {
		t.Fatalf("recorded %d ops, want 8", len(trace))
	}
	if trace[5].Op != OpRename || trace[5].Dst != "/d/g" {
		t.Fatalf("rename recorded as %+v", trace[5])
	}
	// The inner FS saw everything too.
	if inner.calls["mkdir"] != 1 || inner.calls["delete"] != 1 {
		t.Fatalf("inner calls: %v", inner.calls)
	}
}

func TestTraceRoundTripAndReplay(t *testing.T) {
	trace := []TraceOp{
		{Op: OpMkdir, Path: "/a"},
		{Op: OpCreate, Path: "/a/f"},
		{Op: OpRename, Path: "/a/f", Dst: "/a/g"},
		{Op: OpStat, Path: "/a/g"},
		{Op: OpDelete, Path: "/a/g"},
	}
	var buf strings.Builder
	if err := WriteTrace(&buf, trace); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(trace) {
		t.Fatalf("parsed %d ops, want %d", len(parsed), len(trace))
	}
	for i := range trace {
		if parsed[i] != trace[i] {
			t.Fatalf("op %d: %+v != %+v", i, parsed[i], trace[i])
		}
	}

	env := sim.New(1)
	defer env.Close()
	fs := newFakeFS()
	var errs int
	env.Spawn("replay", func(p *sim.Proc) { errs = Replay(p, fs, parsed) })
	env.Run()
	if errs != 0 {
		t.Fatalf("replay errors: %d", errs)
	}
	if fs.calls["mkdir"] != 1 || fs.calls["rename"] != 1 || fs.calls["delete"] != 1 {
		t.Fatalf("replayed calls: %v", fs.calls)
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	cases := []string{
		"fly /a",
		"mkdir",
		"rename /a",
	}
	for _, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c)); err == nil {
			t.Errorf("trace %q accepted", c)
		}
	}
	// Comments and blanks are fine.
	got, err := ReadTrace(strings.NewReader("# header\n\nmkdir /a\n"))
	if err != nil || len(got) != 1 {
		t.Fatalf("comment handling: %v %v", got, err)
	}
}
