// Package workload generates the evaluation workloads of the paper's §V:
// a synthetic reproduction of the Spotify Hadoop operational mix used for
// the throughput and latency experiments, and the four micro-benchmarks
// (mkdir, createFile, readFile, deleteFile) of §V-B2.
//
// The real Spotify trace is proprietary; what matters for the reproduced
// results is its operation mix (heavily read-dominated metadata traffic),
// its hierarchical namespace with skewed directory popularity, and the
// per-client dataset locality of Hadoop jobs (each task works over its own
// datasets repeatedly — which is what makes CephFS's capability-based
// kernel cache effective). All three are encoded here.
package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"hopsfscl/internal/sim"
)

// FS is the file system surface the workloads drive. Both HopsFS/HopsFS-CL
// clients and CephFS clients are adapted to it (see internal/core).
type FS interface {
	Mkdir(p *sim.Proc, path string) error
	Create(p *sim.Proc, path string) error
	Stat(p *sim.Proc, path string) error
	Read(p *sim.Proc, path string) error
	List(p *sim.Proc, path string) error
	Delete(p *sim.Proc, path string) error
	Rename(p *sim.Proc, src, dst string) error
	SetPermission(p *sim.Proc, path string) error
}

// Op enumerates file system operation types.
type Op int

// Operation types.
const (
	OpMkdir Op = iota + 1
	OpCreate
	OpStat
	OpRead
	OpList
	OpDelete
	OpRename
	OpSetPerm

	numOps
)

// String returns the operation's display name.
func (o Op) String() string {
	switch o {
	case OpMkdir:
		return "mkdir"
	case OpCreate:
		return "createFile"
	case OpStat:
		return "stat"
	case OpRead:
		return "readFile"
	case OpList:
		return "listDir"
	case OpDelete:
		return "deleteFile"
	case OpRename:
		return "rename"
	case OpSetPerm:
		return "setPermission"
	default:
		return "?"
	}
}

// Mix is a discrete distribution over operations.
type Mix map[Op]float64

// SpotifyMix is the synthetic stand-in for the operation mix of Spotify's
// Hadoop cluster trace ([23]): metadata traffic dominated by reads —
// stat/getFileInfo, read/getBlockLocations and directory listings — with a
// thin tail of namespace mutations. Weights sum to 1.
var SpotifyMix = Mix{
	OpStat:    0.350,
	OpRead:    0.330,
	OpList:    0.250,
	OpCreate:  0.025,
	OpDelete:  0.015,
	OpMkdir:   0.005,
	OpRename:  0.007,
	OpSetPerm: 0.018,
}

// MicroMix returns a single-operation mix (the §V-B2 micro-benchmarks).
func MicroMix(op Op) Mix { return Mix{op: 1} }

// NamespaceSpec shapes the pre-seeded namespace.
type NamespaceSpec struct {
	// TopDirs is the number of first-level directories (project roots).
	TopDirs int
	// SubDirs is the number of second-level directories per top dir.
	SubDirs int
	// FilesPerDir seeds this many files in every leaf directory.
	FilesPerDir int
	// ZipfS is the skew of directory popularity (1.01 mild, 1.5 heavy).
	ZipfS float64
}

// DefaultNamespace returns the evaluation namespace: 256 projects x 6
// subdirectories with 12 files each (18432 files, depth 3), mildly skewed.
// The tree is wide enough that even the largest deployments' clients do
// not over-share datasets (Spotify's production namespace has millions of
// directories).
func DefaultNamespace() NamespaceSpec {
	return NamespaceSpec{TopDirs: 256, SubDirs: 6, FilesPerDir: 12, ZipfS: 1.1}
}

// Generator draws operations from a mix and executes them against an FS,
// keeping the shared namespace view consistent. A generator models one
// client (a Hadoop task): it has home directories it prefers with
// probability Affinity, the dataset locality that makes client-side
// caching effective.
type Generator struct {
	ns  *Namespace
	mix []weightedOp
	rng *rand.Rand

	// home are this client's preferred directories; empty disables
	// affinity.
	home []string
	// affinity is the probability an operation targets a home directory.
	affinity float64

	// Executed counts operations per type; Errors counts failures per
	// type (benign races like delete/delete are expected under load).
	Executed [numOps]int64
	Errors   [numOps]int64
}

type weightedOp struct {
	op  Op
	cum float64
}

// NewGenerator builds a generator over a shared namespace with no
// directory affinity.
func NewGenerator(ns *Namespace, mix Mix, seed int64) *Generator {
	return NewAffineGenerator(ns, mix, seed, nil, 0)
}

// NewAffineGenerator builds a generator that targets the given home
// directories with probability affinity, and the global Zipf-skewed
// namespace otherwise.
func NewAffineGenerator(ns *Namespace, mix Mix, seed int64, home []string, affinity float64) *Generator {
	g := &Generator{
		ns:       ns,
		rng:      rand.New(rand.NewSource(seed)),
		home:     home,
		affinity: affinity,
	}
	var cum float64
	for op := Op(1); op < numOps; op++ {
		w := mix[op]
		if w <= 0 {
			continue
		}
		cum += w
		g.mix = append(g.mix, weightedOp{op: op, cum: cum})
	}
	for i := range g.mix {
		g.mix[i].cum /= cum
	}
	return g
}

// NextOp draws the next operation type.
func (g *Generator) NextOp() Op {
	x := g.rng.Float64()
	for _, w := range g.mix {
		if x <= w.cum {
			return w.op
		}
	}
	return g.mix[len(g.mix)-1].op
}

// pickDir draws a target directory honoring affinity.
func (g *Generator) pickDir() string {
	if len(g.home) > 0 && g.rng.Float64() < g.affinity {
		return g.home[g.rng.Intn(len(g.home))]
	}
	return g.ns.pickDir(g.rng)
}

// pickFile draws an existing file, preferring home directories.
func (g *Generator) pickFile() string {
	if f := g.ns.pickFileIn(g.rng, g.pickDir()); f != "" {
		return f
	}
	// The chosen directory was empty; try a few global draws.
	for i := 0; i < 4; i++ {
		if f := g.ns.pickFileIn(g.rng, g.ns.pickDir(g.rng)); f != "" {
			return f
		}
	}
	return ""
}

// Step executes one operation against fs and returns the type executed and
// its error (nil on success; benign namespace races surface as errors and
// are also tallied; ErrNoTarget marks skipped no-target draws).
func (g *Generator) Step(p *sim.Proc, fs FS) (Op, error) {
	op := g.NextOp()
	err := g.execute(p, fs, op)
	g.Executed[op]++
	if err != nil && !errors.Is(err, ErrNoTarget) {
		g.Errors[op]++
	}
	return op, err
}

// ErrNoTarget reports that an operation had nothing to act on (e.g. every
// file was already deleted). The generator charges a small back-off so the
// simulation never runs a zero-virtual-time loop; measurement harnesses
// exclude these from throughput.
var ErrNoTarget = errors.New("workload: no target for operation")

// idle charges the back-off delay and reports ErrNoTarget.
func idle(p *sim.Proc) error {
	p.Sleep(200 * time.Microsecond)
	return ErrNoTarget
}

func (g *Generator) execute(p *sim.Proc, fs FS, op Op) error {
	ns := g.ns
	switch op {
	case OpMkdir:
		dir := ns.freshName(g.pickDir(), "dir")
		if err := fs.Mkdir(p, dir); err != nil {
			return err
		}
		ns.addDir(dir)
		return nil
	case OpCreate:
		dir := g.pickDir()
		path := ns.freshName(dir, "part-")
		if err := fs.Create(p, path); err != nil {
			return err
		}
		ns.addFile(dir, path)
		return nil
	case OpStat:
		if f := g.pickFile(); f != "" {
			return fs.Stat(p, f)
		}
		return fs.Stat(p, g.pickDir())
	case OpRead:
		f := g.pickFile()
		if f == "" {
			return idle(p)
		}
		return fs.Read(p, f)
	case OpList:
		return fs.List(p, g.pickDir())
	case OpDelete:
		f := g.pickFile()
		if f == "" {
			return idle(p)
		}
		ns.removeFile(dirOf(f), f)
		return fs.Delete(p, f)
	case OpRename:
		f := g.pickFile()
		if f == "" {
			return idle(p)
		}
		dstDir := g.pickDir()
		dst := ns.freshName(dstDir, "moved-")
		ns.removeFile(dirOf(f), f)
		if err := fs.Rename(p, f, dst); err != nil {
			return err
		}
		ns.addFile(dstDir, dst)
		return nil
	case OpSetPerm:
		f := g.pickFile()
		if f == "" {
			return idle(p)
		}
		return fs.SetPermission(p, f)
	default:
		return fmt.Errorf("workload: unknown op %d", op)
	}
}

// HomeDirsFor deterministically assigns count home directories to client i
// from the namespace's leaf (dataset) directories — a client's affinity is
// to datasets that actually hold files, like a task reading its input
// partitions.
func (ns *Namespace) HomeDirsFor(i, count int) []string {
	pool := ns.leafDirs
	if len(pool) == 0 {
		pool = ns.Dirs
	}
	if len(pool) == 0 || count <= 0 {
		return nil
	}
	out := make([]string, 0, count)
	for k := 0; k < count; k++ {
		out = append(out, pool[(i*count+k)%len(pool)])
	}
	return out
}
