package workload

import (
	"errors"
	"strings"
	"testing"

	"hopsfscl/internal/sim"
)

// fakeFS records operations and always succeeds.
type fakeFS struct {
	calls map[string]int
	paths map[string]bool
}

func newFakeFS() *fakeFS {
	return &fakeFS{calls: make(map[string]int), paths: make(map[string]bool)}
}

func (f *fakeFS) Mkdir(p *sim.Proc, path string) error {
	f.calls["mkdir"]++
	f.paths[path] = true
	return nil
}
func (f *fakeFS) Create(p *sim.Proc, path string) error {
	f.calls["create"]++
	f.paths[path] = true
	return nil
}
func (f *fakeFS) Stat(p *sim.Proc, path string) error   { f.calls["stat"]++; return nil }
func (f *fakeFS) Read(p *sim.Proc, path string) error   { f.calls["read"]++; return nil }
func (f *fakeFS) List(p *sim.Proc, path string) error   { f.calls["list"]++; return nil }
func (f *fakeFS) Delete(p *sim.Proc, path string) error { f.calls["delete"]++; return nil }
func (f *fakeFS) Rename(p *sim.Proc, src, dst string) error {
	f.calls["rename"]++
	return nil
}
func (f *fakeFS) SetPermission(p *sim.Proc, path string) error { f.calls["setperm"]++; return nil }

func TestBuildNamespaceShape(t *testing.T) {
	spec := NamespaceSpec{TopDirs: 4, SubDirs: 3, FilesPerDir: 5, ZipfS: 1.1}
	ns := BuildNamespace(spec, 1)
	if got := len(ns.Dirs); got != 4+4*3 {
		t.Fatalf("dirs = %d, want 16", got)
	}
	if got := ns.FileCount(); got != 4*3*5 {
		t.Fatalf("files = %d, want 60", got)
	}
	for _, f := range ns.AllFiles() {
		if !strings.HasPrefix(f, "/proj") || strings.Count(f, "/") != 3 {
			t.Fatalf("file path %q has unexpected shape", f)
		}
	}
}

func TestSpotifyMixProportions(t *testing.T) {
	var total float64
	for _, w := range SpotifyMix {
		total += w
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("mix sums to %f, want 1", total)
	}
	reads := SpotifyMix[OpStat] + SpotifyMix[OpRead] + SpotifyMix[OpList]
	if reads < 0.8 {
		t.Fatalf("read share = %f; the Spotify workload is read-dominated", reads)
	}
}

func TestGeneratorFollowsMix(t *testing.T) {
	ns := BuildNamespace(DefaultNamespace(), 1)
	g := NewGenerator(ns, SpotifyMix, 7)
	const draws = 100000
	counts := map[Op]int{}
	for i := 0; i < draws; i++ {
		counts[g.NextOp()]++
	}
	for op, w := range SpotifyMix {
		got := float64(counts[op]) / draws
		if got < w*0.9-0.005 || got > w*1.1+0.005 {
			t.Errorf("op %v frequency %f, want ~%f", op, got, w)
		}
	}
}

func TestGeneratorKeepsNamespaceConsistent(t *testing.T) {
	env := sim.New(1)
	defer env.Close()
	ns := BuildNamespace(NamespaceSpec{TopDirs: 2, SubDirs: 2, FilesPerDir: 3, ZipfS: 0}, 1)
	g := NewGenerator(ns, SpotifyMix, 7)
	fs := newFakeFS()
	env.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 2000; i++ {
			if _, err := g.Step(p, fs); err != nil && !errors.Is(err, ErrNoTarget) {
				t.Errorf("step %d: %v", i, err)
				return
			}
		}
	})
	env.Run()
	// Every file in the namespace view must be unique.
	seen := map[string]bool{}
	for _, f := range ns.AllFiles() {
		if seen[f] {
			t.Fatalf("duplicate file %q in namespace", f)
		}
		seen[f] = true
	}
	// Per-directory indexes must agree with the slices.
	for dir, df := range ns.byDir {
		for path, idx := range df.pos {
			if df.files[idx] != path {
				t.Fatalf("index inconsistent for %q in %q", path, dir)
			}
		}
	}
	if len(seen) != ns.FileCount() {
		t.Fatalf("file count %d != %d live files", ns.FileCount(), len(seen))
	}
	var executed int64
	for op := Op(1); op < numOps; op++ {
		executed += g.Executed[op]
	}
	if executed != 2000 {
		t.Fatalf("executed = %d, want 2000", executed)
	}
}

func TestMicroMixOnlyDrawsOneOp(t *testing.T) {
	ns := BuildNamespace(DefaultNamespace(), 1)
	g := NewGenerator(ns, MicroMix(OpMkdir), 7)
	for i := 0; i < 100; i++ {
		if op := g.NextOp(); op != OpMkdir {
			t.Fatalf("draw %d = %v, want mkdir", i, op)
		}
	}
}

func TestZipfSkewsDirectoryChoice(t *testing.T) {
	ns := BuildNamespace(NamespaceSpec{TopDirs: 50, SubDirs: 1, FilesPerDir: 0, ZipfS: 1.5}, 1)
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		counts[ns.pickDir(ns.rng)]++
	}
	// The hottest directory should be much hotter than the median.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 10000/10 {
		t.Fatalf("hottest dir got %d/10000 picks; Zipf skew not applied", max)
	}
}

func TestOpStrings(t *testing.T) {
	names := map[Op]string{
		OpMkdir: "mkdir", OpCreate: "createFile", OpStat: "stat",
		OpRead: "readFile", OpList: "listDir", OpDelete: "deleteFile",
		OpRename: "rename", OpSetPerm: "setPermission",
	}
	for op, want := range names {
		if got := op.String(); got != want {
			t.Errorf("op %d = %q, want %q", op, got, want)
		}
	}
}
