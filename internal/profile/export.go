package profile

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"

	"hopsfscl/internal/trace"
)

// WriteChromeTrace renders span trees as Chrome Trace Event JSON (the
// chrome://tracing / Perfetto "JSON Array with metadata" flavor): one
// complete ("X") event per span, timestamps in microseconds of virtual
// time, one track (tid) per root operation so concurrent operations render
// side by side. The JSON is hand-assembled with integer-math timestamp
// formatting so output is byte-identical for identical spans.
func WriteChromeTrace(w io.Writer, spans []*trace.Span) error {
	type event struct {
		ts, dur int64 // nanoseconds
		tid     uint64
		id      trace.SpanID
		span    *trace.Span
	}
	var events []event
	for _, root := range spans {
		if root == nil || root.Root() != root {
			continue
		}
		tid := uint64(root.ID)
		var walk func(s *trace.Span)
		walk = func(s *trace.Span) {
			events = append(events, event{
				ts:   s.Start.Nanoseconds(),
				dur:  s.Duration().Nanoseconds(),
				tid:  tid,
				id:   s.ID,
				span: s,
			})
			for _, c := range s.Children {
				walk(c)
			}
		}
		walk(root)
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].ts != events[j].ts {
			return events[i].ts < events[j].ts
		}
		if events[i].tid != events[j].tid {
			return events[i].tid < events[j].tid
		}
		return events[i].id < events[j].id
	})

	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")
	for i, e := range events {
		if i > 0 {
			bw.WriteByte(',')
		}
		s := e.span
		bw.WriteString("\n{\"name\":")
		bw.WriteString(strconv.Quote(s.Name))
		bw.WriteString(",\"ph\":\"X\",\"pid\":1,\"tid\":")
		fmt.Fprintf(bw, "%d", e.tid)
		bw.WriteString(",\"ts\":")
		writeMicros(bw, e.ts)
		bw.WriteString(",\"dur\":")
		writeMicros(bw, e.dur)
		bw.WriteString(",\"args\":{")
		writeArgs(bw, s)
		bw.WriteString("}}")
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// writeMicros renders nanoseconds as microseconds with three decimals,
// using integer math only (float formatting of large ns counts would lose
// precision and determinism).
func writeMicros(bw *bufio.Writer, ns int64) {
	neg := ns < 0
	if neg {
		ns = -ns
		bw.WriteByte('-')
	}
	fmt.Fprintf(bw, "%d.%03d", ns/1000, ns%1000)
}

// writeArgs emits the span's annotations: span ID, error flag, attributes,
// and per-class hop counts/bytes/wire time when present.
func writeArgs(bw *bufio.Writer, s *trace.Span) {
	first := true
	field := func(key, val string) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteString(strconv.Quote(key))
		bw.WriteByte(':')
		bw.WriteString(val)
	}
	field("span", fmt.Sprintf("%d", uint64(s.ID)))
	if s.Err {
		field("err", "true")
	}
	for _, a := range s.Attrs {
		field(a.Key, strconv.Quote(a.Value))
	}
	for c := trace.HopClass(0); c < trace.NumHopClasses; c++ {
		if s.HopCount[c] == 0 {
			continue
		}
		field("hops."+c.String(), fmt.Sprintf("%d", s.HopCount[c]))
		field("bytes."+c.String(), fmt.Sprintf("%d", s.HopBytes[c]))
		field("wire_us."+c.String(), fmt.Sprintf("%d", s.HopTime[c].Microseconds()))
	}
}
