// Package profile turns captured span trees into answers: for every traced
// operation it extracts the critical path — the chain of spans that actually
// gated completion, in the style of Canopy's blocked-time analysis — and
// attributes each nanosecond of it to a category: lock wait, a 2PC phase,
// a network hop class, or metadata-server compute. Aggregated per operation
// type, the result is a "where the time went" table; per span stack, it is
// folded-stack flamegraph input.
//
// Everything here is deterministic: given the same spans, every report is
// byte-identical. Ordering never depends on map iteration; ties break on
// span ID or name.
package profile

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hopsfscl/internal/metrics"
	"hopsfscl/internal/trace"
)

// Category is one bucket of critical-path time.
type Category int

// Categories, in report column order.
const (
	// CatLockWait is time parked on a contended row lock.
	CatLockWait Category = iota
	// CatPrepare, CatCommit and CatComplete are the 2PC passes of §II-B2,
	// excluding the network time within them (attributed to hop classes).
	CatPrepare
	CatCommit
	CatComplete
	// CatHopLocal..CatHopCrossAZ are network wire time by endpoint
	// proximity (queueing + transmission + propagation).
	CatHopLocal
	CatHopSameHost
	CatHopSameZone
	CatHopCrossAZ
	// CatCompute is everything else on the critical path: CPU charged on
	// metadata servers and storage threads, and instrumentation-free gaps.
	CatCompute

	NumCategories
)

// String returns the category's report label.
func (c Category) String() string {
	switch c {
	case CatLockWait:
		return "lock_wait"
	case CatPrepare:
		return "2pc.prepare"
	case CatCommit:
		return "2pc.commit"
	case CatComplete:
		return "2pc.complete"
	case CatHopLocal:
		return "net.local"
	case CatHopSameHost:
		return "net.same_host"
	case CatHopSameZone:
		return "net.same_zone"
	case CatHopCrossAZ:
		return "net.cross_az"
	case CatCompute:
		return "compute"
	default:
		return "?"
	}
}

// hopCategory maps a trace hop class to its attribution category.
var hopCategory = [trace.NumHopClasses]Category{
	trace.HopLocal:     CatHopLocal,
	trace.HopSameHost:  CatHopSameHost,
	trace.HopSameZone:  CatHopSameZone,
	trace.HopCrossZone: CatHopCrossAZ,
}

// spanCategory is the bucket a span's non-network critical self time lands
// in, keyed by the span names the instrumentation uses (ndb.commitChain's
// phase children, lockRow's lock_wait child).
func spanCategory(name string) Category {
	switch name {
	case "lock_wait":
		return CatLockWait
	case "prepare":
		return CatPrepare
	case "commit":
		return CatCommit
	case "complete":
		return CatComplete
	default:
		return CatCompute
	}
}

// OpProfile is the aggregated critical-path attribution for one operation
// type.
type OpProfile struct {
	Op     string
	Count  int64
	Errors int64
	// Total is the summed root duration — by construction also the summed
	// critical-path time, since the critical path tiles the root exactly.
	Total time.Duration
	// ByCat splits Total across attribution categories.
	ByCat [NumCategories]time.Duration
}

// Mean returns the mean critical-path (= end-to-end) time per operation.
func (o *OpProfile) Mean() time.Duration {
	if o.Count == 0 {
		return 0
	}
	return o.Total / time.Duration(o.Count)
}

// Report is the full attribution analysis of a span set.
type Report struct {
	// Ops holds per-operation-type profiles, ordered by total critical-path
	// time descending (op name breaks ties).
	Ops []*OpProfile
	// Spans is how many root spans the report covers.
	Spans int
}

// Total returns the summed critical-path time across all op types.
func (r *Report) Total() time.Duration {
	if r == nil {
		return 0
	}
	var t time.Duration
	for _, o := range r.Ops {
		t += o.Total
	}
	return t
}

// spanStat is the per-span working state of one root analysis.
type spanStat struct {
	span   *trace.Span
	parent *spanStat
	// actualSelf is the span's wall time not covered by children (the
	// union of child intervals subtracted from the span's own extent).
	actualSelf time.Duration
	// critSelf is how much of the root's critical path this span's self
	// time contributes.
	critSelf time.Duration
	// hopTime is the span's own wire time per class: for the root, the
	// tree total minus every descendant's share (hops are recorded on both
	// the root and the active child).
	hopTime [trace.NumHopClasses]time.Duration
}

// Analyze extracts and attributes the critical path of every root span.
// Non-root spans in the input are ignored; a nil or empty input yields an
// empty report.
func Analyze(spans []*trace.Span) *Report {
	byOp := make(map[string]*OpProfile)
	n := 0
	for _, root := range spans {
		if root == nil || root.Root() != root {
			continue
		}
		n++
		op := byOp[root.Name]
		if op == nil {
			op = &OpProfile{Op: root.Name}
			byOp[root.Name] = op
		}
		op.Count++
		if root.Err {
			op.Errors++
		}
		op.Total += root.Duration()
		var cats [NumCategories]time.Duration
		analyzeRoot(root, &cats)
		for c := range cats {
			op.ByCat[c] += cats[c]
		}
	}
	rep := &Report{Spans: n}
	for _, op := range byOp {
		rep.Ops = append(rep.Ops, op)
	}
	sort.Slice(rep.Ops, func(i, j int) bool {
		if rep.Ops[i].Total != rep.Ops[j].Total {
			return rep.Ops[i].Total > rep.Ops[j].Total
		}
		return rep.Ops[i].Op < rep.Ops[j].Op
	})
	return rep
}

// analyzeRoot attributes one root's critical path into cats.
func analyzeRoot(root *trace.Span, cats *[NumCategories]time.Duration) {
	stats := buildStats(root)
	walkCritical(root, root.Start, root.End, func(s *trace.Span, d time.Duration) {
		stats[s].critSelf += d
	})
	for _, st := range orderedStats(stats) {
		attributeSpan(st, func(c Category, d time.Duration) {
			cats[c] += d
		})
	}
}

// attributeSpan splits one span's critical self time between its hop
// classes and its own category. Hop time is scaled by the fraction of the
// span's actual self time that sits on the critical path; the remainder is
// the span's own category (compute, lock wait, or a 2PC phase).
func attributeSpan(st *spanStat, emit func(Category, time.Duration)) {
	if st.critSelf <= 0 {
		return
	}
	scale := 1.0
	if st.actualSelf > 0 {
		scale = float64(st.critSelf) / float64(st.actualSelf)
		if scale > 1 {
			scale = 1
		}
	} else {
		scale = 0
	}
	var hopTotal time.Duration
	var hopShare [trace.NumHopClasses]time.Duration
	for c := range st.hopTime {
		hopShare[c] = time.Duration(float64(st.hopTime[c]) * scale)
		hopTotal += hopShare[c]
	}
	if hopTotal > st.critSelf {
		// Rounding (or hops recorded past the span's measured extent) can
		// push the scaled shares over the budget; squeeze proportionally.
		f := float64(st.critSelf) / float64(hopTotal)
		hopTotal = 0
		for c := range hopShare {
			hopShare[c] = time.Duration(float64(hopShare[c]) * f)
			hopTotal += hopShare[c]
		}
	}
	for c := range hopShare {
		if hopShare[c] > 0 {
			emit(hopCategory[c], hopShare[c])
		}
	}
	if rest := st.critSelf - hopTotal; rest > 0 {
		emit(spanCategory(st.span.Name), rest)
	}
}

// buildStats walks the tree computing per-span actual self time and own hop
// time (root hop totals minus all descendants' shares).
func buildStats(root *trace.Span) map[*trace.Span]*spanStat {
	stats := make(map[*trace.Span]*spanStat)
	var walk func(s *trace.Span, parent *spanStat)
	walk = func(s *trace.Span, parent *spanStat) {
		st := &spanStat{span: s, parent: parent, actualSelf: selfTime(s), hopTime: s.HopTime}
		stats[s] = st
		for _, c := range s.Children {
			walk(c, st)
		}
	}
	walk(root, nil)
	rootStat := stats[root]
	for _, st := range stats {
		if st == rootStat {
			continue
		}
		for c := range st.hopTime {
			rootStat.hopTime[c] -= st.hopTime[c]
		}
	}
	for c := range rootStat.hopTime {
		if rootStat.hopTime[c] < 0 {
			rootStat.hopTime[c] = 0
		}
	}
	return stats
}

// orderedStats returns stats values in deterministic order (span ID, with
// start time then name as the fallback for aggregate-mode zero IDs).
func orderedStats(stats map[*trace.Span]*spanStat) []*spanStat {
	out := make([]*spanStat, 0, len(stats))
	for _, st := range stats {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].span, out[j].span
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.Name < b.Name
	})
	return out
}

// selfTime returns the span's wall time not covered by its children: its
// extent minus the union of child intervals (children may overlap — the
// commit chain's parallel fan-outs — and may spill past the parent's end).
func selfTime(s *trace.Span) time.Duration {
	if len(s.Children) == 0 {
		return s.Duration()
	}
	type iv struct{ lo, hi time.Duration }
	ivs := make([]iv, 0, len(s.Children))
	for _, c := range s.Children {
		lo, hi := c.Start, c.End
		if lo < s.Start {
			lo = s.Start
		}
		if hi > s.End {
			hi = s.End
		}
		if hi > lo {
			ivs = append(ivs, iv{lo, hi})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	covered := time.Duration(0)
	var curLo, curHi time.Duration
	started := false
	for _, v := range ivs {
		if !started || v.lo > curHi {
			if started {
				covered += curHi - curLo
			}
			curLo, curHi = v.lo, v.hi
			started = true
			continue
		}
		if v.hi > curHi {
			curHi = v.hi
		}
	}
	if started {
		covered += curHi - curLo
	}
	return s.Duration() - covered
}

// walkCritical walks the critical path of s within [lo, hi], emitting one
// self segment per blocking stretch. The algorithm is the classic
// last-finishing-child walk: scanning children by descending end time, the
// child that finishes last is what the parent was waiting on; the gap after
// it is the parent's own blocking time, and the walk recurses into the
// child for the interval it owned. Segments tile [lo, hi] exactly.
func walkCritical(s *trace.Span, lo, hi time.Duration, emit func(*trace.Span, time.Duration)) {
	t := hi
	if len(s.Children) > 0 {
		kids := make([]*trace.Span, len(s.Children))
		copy(kids, s.Children)
		sort.Slice(kids, func(i, j int) bool {
			if kids[i].End != kids[j].End {
				return kids[i].End > kids[j].End
			}
			return kids[i].ID > kids[j].ID
		})
		for _, c := range kids {
			if t <= lo {
				break
			}
			cEnd, cStart := c.End, c.Start
			if cEnd > t {
				cEnd = t
			}
			if cStart < lo {
				cStart = lo
			}
			if cEnd <= cStart {
				continue
			}
			if cEnd < t {
				emit(s, t-cEnd)
			}
			walkCritical(c, cStart, cEnd, emit)
			t = cStart
		}
	}
	if t > lo {
		emit(s, t-lo)
	}
}

// Table renders the report as a fixed-width attribution table: one row per
// op type, with the share of critical-path time per category. A nil or
// empty report renders a placeholder line.
func (r *Report) Table() string {
	if r == nil || len(r.Ops) == 0 {
		return "(no traced operations)\n"
	}
	header := []string{"op", "ops", "err", "mean"}
	for c := Category(0); c < NumCategories; c++ {
		header = append(header, c.String())
	}
	tbl := metrics.NewTable(header...)
	addRow := func(label string, count, errs int64, mean time.Duration, byCat [NumCategories]time.Duration, total time.Duration) {
		row := []string{
			label,
			fmt.Sprintf("%d", count),
			fmt.Sprintf("%d", errs),
			fmt.Sprintf("%.3fms", float64(mean)/1e6),
		}
		for c := Category(0); c < NumCategories; c++ {
			row = append(row, pct(byCat[c], total))
		}
		tbl.AddRow(row...)
	}
	var all OpProfile
	for _, o := range r.Ops {
		addRow(o.Op, o.Count, o.Errors, o.Mean(), o.ByCat, o.Total)
		all.Count += o.Count
		all.Errors += o.Errors
		all.Total += o.Total
		for c := range o.ByCat {
			all.ByCat[c] += o.ByCat[c]
		}
	}
	if len(r.Ops) > 1 {
		addRow("TOTAL", all.Count, all.Errors, all.Mean(), all.ByCat, all.Total)
	}
	return tbl.String()
}

// Totals returns the report's whole-run attribution — summed per-category
// time and the grand total — for callers building cross-configuration
// comparison tables.
func (r *Report) Totals() (byCat [NumCategories]time.Duration, total time.Duration) {
	if r == nil {
		return
	}
	for _, o := range r.Ops {
		total += o.Total
		for c := range o.ByCat {
			byCat[c] += o.ByCat[c]
		}
	}
	return
}

// PctCell renders part/total as a percentage table cell ("-" below 0.05%),
// matching Table's formatting.
func PctCell(part, total time.Duration) string { return pct(part, total) }

// pct renders part/total as a percentage cell ("-" below 0.05%).
func pct(part, total time.Duration) string {
	if total <= 0 || part <= 0 {
		return "-"
	}
	p := float64(part) / float64(total) * 100
	if p < 0.05 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", p)
}

// FoldedStacks renders spans in the folded-stack format flamegraph tools
// consume: "root;child;leaf <nanoseconds>" per line, with the critical-path
// self time of each span under its name stack and its attributed network
// time under a "net.<class>" pseudo-leaf. Lines are sorted; identical
// stacks aggregate.
func FoldedStacks(spans []*trace.Span) string {
	folded := make(map[string]time.Duration)
	for _, root := range spans {
		if root == nil || root.Root() != root {
			continue
		}
		stats := buildStats(root)
		walkCritical(root, root.Start, root.End, func(s *trace.Span, d time.Duration) {
			stats[s].critSelf += d
		})
		for _, st := range orderedStats(stats) {
			stack := stackOf(st)
			attributeSpan(st, func(c Category, d time.Duration) {
				key := stack
				switch c {
				case CatHopLocal, CatHopSameHost, CatHopSameZone, CatHopCrossAZ:
					key = stack + ";" + c.String()
				}
				folded[key] += d
			})
		}
	}
	keys := make([]string, 0, len(folded))
	for k := range folded {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %d\n", k, folded[k].Nanoseconds())
	}
	return b.String()
}

// stackOf renders the semicolon-joined name chain from root to st.
func stackOf(st *spanStat) string {
	var names []string
	for s := st; s != nil; s = s.parent {
		names = append(names, s.span.Name)
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, ";")
}
