package profile

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"hopsfscl/internal/trace"
)

// buildTree constructs the reference span tree used across tests:
//
//	create [0, 20ms]
//	├── txn       [1ms, 18ms]
//	│   ├── lock_wait [2ms, 5ms]
//	│   ├── prepare   [5ms, 10ms]   2ms cross-AZ wire time
//	│   └── commit    [10ms, 16ms]  3ms same-zone wire time
//
// Critical path: create self [0,1)+[18,20) = 3ms, txn self
// [1,2)+[16,18) = 3ms, lock_wait 3ms, prepare 5ms, commit 6ms.
func buildTree(t *testing.T) *trace.Span {
	t.Helper()
	tr := trace.NewTracer(trace.NewRegistry())
	tr.EnableSink(8)
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }

	root := tr.StartOp("create", 0)
	txn := root.Child("txn", ms(1))
	lw := txn.Child("lock_wait", ms(2))
	lw.Finish(ms(5))
	prep := txn.Child("prepare", ms(5))
	prep.RecordHop(trace.HopCrossZone, 128, ms(2))
	prep.Finish(ms(10))
	com := txn.Child("commit", ms(10))
	com.RecordHop(trace.HopSameZone, 64, ms(3))
	com.Finish(ms(16))
	txn.Finish(ms(18))
	root.Finish(ms(20))
	return root
}

func TestAnalyzeAttribution(t *testing.T) {
	root := buildTree(t)
	rep := Analyze([]*trace.Span{root})
	if rep.Spans != 1 || len(rep.Ops) != 1 {
		t.Fatalf("report shape: spans=%d ops=%d", rep.Spans, len(rep.Ops))
	}
	op := rep.Ops[0]
	if op.Op != "create" || op.Count != 1 || op.Errors != 0 {
		t.Fatalf("op profile = %+v", op)
	}
	if op.Total != 20*time.Millisecond {
		t.Fatalf("total = %v, want 20ms", op.Total)
	}
	// The critical path must tile the root exactly.
	var sum time.Duration
	for _, d := range op.ByCat {
		sum += d
	}
	if sum != op.Total {
		t.Fatalf("categories sum to %v, want %v", sum, op.Total)
	}
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	want := map[Category]time.Duration{
		CatLockWait:    ms(3),
		CatPrepare:     ms(3), // 5ms on path, 2ms of it cross-AZ wire
		CatCommit:      ms(3), // 6ms on path, 3ms of it same-zone wire
		CatHopCrossAZ:  ms(2),
		CatHopSameZone: ms(3),
		CatCompute:     ms(6), // root self 3ms + txn self 3ms
	}
	for c, d := range want {
		if op.ByCat[c] != d {
			t.Errorf("%s = %v, want %v", c, op.ByCat[c], d)
		}
	}
}

func TestAnalyzeOverlappingChildren(t *testing.T) {
	// Parallel fan-outs: two children covering the same interval. The
	// last-finishing child owns the overlap; totals still tile the root.
	tr := trace.NewTracer(trace.NewRegistry())
	tr.EnableSink(8)
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	root := tr.StartOp("attachBlocks", 0)
	a := root.Child("complete", ms(1))
	b := root.Child("complete", ms(1))
	a.Finish(ms(6))
	b.Finish(ms(9))
	root.Finish(ms(10))

	rep := Analyze([]*trace.Span{root})
	op := rep.Ops[0]
	var sum time.Duration
	for _, d := range op.ByCat {
		sum += d
	}
	if sum != ms(10) {
		t.Fatalf("categories sum to %v, want 10ms", sum)
	}
	// complete owns [1,9) = 8ms; root self is [0,1)+[9,10) = 2ms.
	if op.ByCat[CatComplete] != ms(8) {
		t.Errorf("complete = %v, want 8ms", op.ByCat[CatComplete])
	}
	if op.ByCat[CatCompute] != ms(2) {
		t.Errorf("compute = %v, want 2ms", op.ByCat[CatCompute])
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	roots := []*trace.Span{buildTree(t), buildTree(t)}
	a := Analyze(roots).Table()
	b := Analyze(roots).Table()
	if a != b {
		t.Fatalf("Table not deterministic:\n%s\nvs\n%s", a, b)
	}
	if FoldedStacks(roots) != FoldedStacks(roots) {
		t.Fatal("FoldedStacks not deterministic")
	}
}

func TestAnalyzeEmptyAndNil(t *testing.T) {
	if rep := Analyze(nil); rep.Spans != 0 || len(rep.Ops) != 0 {
		t.Fatalf("nil input produced %+v", rep)
	}
	var nilRep *Report
	if got := nilRep.Table(); !strings.Contains(got, "no traced") {
		t.Fatalf("nil report table = %q", got)
	}
	if nilRep.Total() != 0 {
		t.Fatal("nil report total != 0")
	}
}

func TestFoldedStacks(t *testing.T) {
	out := FoldedStacks([]*trace.Span{buildTree(t)})
	wantLines := []string{
		"create 3000000",
		"create;txn 3000000",
		"create;txn;lock_wait 3000000",
		"create;txn;prepare 3000000",
		"create;txn;prepare;net.cross_az 2000000",
		"create;txn;commit 3000000",
		"create;txn;commit;net.same_zone 3000000",
	}
	for _, w := range wantLines {
		if !strings.Contains(out, w+"\n") {
			t.Errorf("folded output missing %q:\n%s", w, out)
		}
	}
	// Folded totals must also tile the root.
	var total int64
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		var v int64
		if _, err := fmtSscanf(line, &v); err != nil {
			t.Fatalf("bad folded line %q: %v", line, err)
		}
		total += v
	}
	if total != (20 * time.Millisecond).Nanoseconds() {
		t.Fatalf("folded total = %d, want 20ms", total)
	}
}

// fmtSscanf extracts the trailing integer of a folded line.
func fmtSscanf(line string, v *int64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	n, err := jsonNumber(line[i+1:])
	*v = n
	return 1, err
}

func jsonNumber(s string) (int64, error) {
	var n int64
	err := json.Unmarshal([]byte(s), &n)
	return n, err
}

func TestChromeTraceExport(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []*trace.Span{buildTree(t)}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  uint64         `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("got %d events, want 5", len(doc.TraceEvents))
	}
	lastTs := -1.0
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			t.Fatalf("event ph = %q, want X", e.Ph)
		}
		if e.Ts < lastTs {
			t.Fatalf("ts not monotonic: %v after %v", e.Ts, lastTs)
		}
		lastTs = e.Ts
		if e.Dur < 0 {
			t.Fatalf("negative dur: %v", e.Dur)
		}
	}
	// Byte determinism.
	var buf2 bytes.Buffer
	if err := WriteChromeTrace(&buf2, []*trace.Span{buildTree(t)}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("chrome trace output not byte-identical")
	}
}

func TestTableRendersCategories(t *testing.T) {
	out := Analyze([]*trace.Span{buildTree(t)}).Table()
	for _, want := range []string{"create", "lock_wait", "net.cross_az", "compute", "15.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
