// Package ndb implements the metadata storage layer of HopsFS-CL: an
// in-memory, shared-nothing, transactional storage engine modelled on NDB,
// the MySQL Cluster storage engine (paper §II-B), extended with the AZ
// awareness features of §IV-A:
//
//   - LocationDomainId pinning database nodes to availability zones,
//   - the Read Backup table option (client Ack delayed until all backup
//     replicas completed, enabling consistent read-committed reads from any
//     replica),
//   - the Fully Replicated table option (a replica on every datanode),
//   - AZ-aware proximity ordering and transaction-coordinator selection.
//
// The engine stores real rows; transactions run the linear two-phase commit
// protocol of §II-B2 hop by hop over the simulated network, consuming CPU
// on per-node thread pools configured like the paper's Table II.
package ndb

import (
	"errors"
	"fmt"
	"hash/fnv"

	"hopsfscl/internal/heat"
	"hopsfscl/internal/sim"
	"hopsfscl/internal/simnet"
	"hopsfscl/internal/trace"
	"time"
)

// Errors returned by transactions. HopsFS uses these to drive its retry and
// backpressure mechanism (§II-B2).
var (
	// ErrLockTimeout corresponds to TransactionDeadlockDetectionTimeout:
	// the transaction waited too long for a row lock (deadlock, node
	// failure, or overload) and was aborted.
	ErrLockTimeout = errors.New("ndb: lock wait timeout")
	// ErrNodeUnavailable means a datanode needed by the transaction did not
	// respond before the RPC timeout.
	ErrNodeUnavailable = errors.New("ndb: datanode unavailable")
	// ErrAborted means the transaction was aborted and must not be reused.
	ErrAborted = errors.New("ndb: transaction aborted")
	// ErrNoNodes means no datanode is available to coordinate.
	ErrNoNodes = errors.New("ndb: no datanodes available")
)

// Config parameterizes a cluster.
type Config struct {
	// DataNodes is the number of NDB datanodes (paper: 12).
	DataNodes int
	// Replication is the number of replicas per partition (NoOfReplicas).
	// The number of node groups is DataNodes/Replication.
	Replication int
	// PartitionsPerTable is the partition count for new tables.
	PartitionsPerTable int
	// LockTimeout aborts a transaction that waited this long for a lock
	// (TransactionDeadlockDetectionTimeout).
	LockTimeout time.Duration
	// RPCTimeout bounds each internal message hop; a missing response means
	// the target node is treated as unavailable.
	RPCTimeout time.Duration
	// HeartbeatInterval is the datanode failure-detection period.
	HeartbeatInterval time.Duration
	// GCPInterval is the global checkpoint period (REDO flush to disk).
	GCPInterval time.Duration
	// AZAware, when true, assigns each datanode a LocationDomainId equal to
	// its physical zone, enabling all §IV-A locality behaviour. When false
	// the cluster behaves like vanilla NDB deployed unaware (HopsFS
	// baselines).
	AZAware bool
	// DisableWriteBatching forces the serial write path: WriteBatch stages
	// rows one TC round trip at a time and Commit runs one 2PC chain per
	// row instead of coalescing rows that share a replica chain into commit
	// trains. It is the reference the batched path is compared against
	// (writefan experiment, ablation (e), equivalence tests).
	DisableWriteBatching bool
	// NamePrefix prefixes every node and resource name ("s1-ndb-3",
	// "s1-mgm-1"), so multiple independent clusters — the shard router's
	// deployments — coexist on one network without name or gauge-label
	// collisions. Empty keeps the historical unprefixed names (shard 0).
	NamePrefix string
	// Costs hold the calibrated CPU service demands.
	Costs Costs
}

// DefaultConfig returns the paper's deployment defaults.
func DefaultConfig() Config {
	return Config{
		DataNodes:          12,
		Replication:        2,
		PartitionsPerTable: 24,
		LockTimeout:        150 * time.Millisecond,
		RPCTimeout:         75 * time.Millisecond,
		HeartbeatInterval:  100 * time.Millisecond,
		GCPInterval:        250 * time.Millisecond,
		AZAware:            true,
		Costs:              DefaultCosts(),
	}
}

// Cluster is a running NDB cluster: datanodes organized into node groups,
// management nodes for arbitration, and a set of tables.
type Cluster struct {
	env *sim.Env
	net *simnet.Network
	cfg Config

	datanodes []*DataNode
	mgmt      []*MgmtNode
	groups    [][]*DataNode
	tables    map[string]*Table

	txnSeq     uint64
	arbEpoch   int
	arbGranted map[int]int // epoch -> index of datanode whose view won
	bgStop     bool

	// gcpEpoch is the in-progress global checkpoint epoch; writes stamp
	// their rows with it. durableEpoch is the recovery horizon (§II-B2).
	gcpEpoch     uint64
	durableEpoch uint64

	// Stats are cumulative cluster-wide counters.
	Stats Stats

	// tracer and obs attach the cluster to a deployment's trace layer;
	// both are nil for uninstrumented clusters (see SetTracer).
	tracer *trace.Tracer
	obs    *clusterObs

	// heat attributes per-access table and partition touches to the
	// deployment's heat collector; nil for deployments without heat
	// tracking (see SetHeat).
	heat *heat.Collector

	// ledger records who blocked whom on which table (nil until SetTracer
	// attaches a registry); activeOps maps in-flight transaction IDs to
	// the op type that issued them, so the ledger can name both sides of a
	// wait-for edge.
	ledger    *ContentionLedger
	activeOps map[uint64]string

	// Fan-out worker pool and result-mailbox free-lists (workers.go): the
	// steady-state batch/commit fan-out path allocates no processes and no
	// mailboxes.
	freeWorkers []*fanWorker
	freeBoolMbx []*sim.Mailbox[bool]
	freeErrMbx  []*sim.Mailbox[error]
	freeScratch []*batchScratch

	// topoEpoch counts cluster-side replica-topology changes (shutdown
	// orders, primary promotions); combined with the network's node
	// up/down epoch it validates Partition.repCache. Starts at 1 so the
	// combined epoch is never zero (a Partition's zero repEpoch is always
	// invalid).
	topoEpoch uint64
}

// 2PC phase indices for clusterObs.phase; names match the registry
// (txn.phase.<name>) and the child-span names in commitTrain.
const (
	phasePrepare = iota
	phaseCommit
	phaseComplete
	numPhases
)

var phaseNames = [numPhases]string{"prepare", "commit", "complete"}

// clusterObs caches pre-registered registry handles for the hot paths of
// the commit protocol, so recording costs one atomic add or an uncontended
// mutex — never a map lookup.
type clusterObs struct {
	// phase times each 2PC pass: prepare (Prepare out + Prepared back),
	// commit (Commit out + Committed back), and complete (only awaited
	// under Read Backup, §IV-A3).
	phase [numPhases]*trace.Timing
	// lockAcq counts row-lock acquisitions; lockWait times only the
	// contended ones (immediate grants would drown the mean in zeros).
	lockAcq  *trace.Counter
	lockWait *trace.Timing
	// tcSelect counts transaction-coordinator selections by the proximity
	// of the chosen TC to the API client (§IV-A5).
	tcSelect [ProximityRemote + 1]*trace.Counter
	// batchReads counts ReadBatch/ScanBatch fan-outs; batchRows counts the
	// rows they carried, by proximity of the serving replica to the TC.
	batchReads *trace.Counter
	batchRows  [ProximityRemote + 1]*trace.Counter
	// batchWrites counts WriteBatch fan-outs; batchWriteRows counts the rows
	// they staged, by proximity of the locking primary replica to the TC.
	batchWrites    *trace.Counter
	batchWriteRows [ProximityRemote + 1]*trace.Counter
	// commitTrains counts coalesced 2PC passes; trainRows is the
	// rows-per-train distribution (a Timing abused as a histogram: one
	// nanosecond per row, so count/sum/max read as trains/rows/largest).
	commitTrains *trace.Counter
	trainRows    *trace.Timing

	// Contention metrics are registered lazily per table / op pair (the
	// label space is data-dependent); the maps cache the handles so the
	// blocking path pays one map hit after the first event.
	reg        *trace.Registry
	contBlocks map[string]*trace.Counter
	contWait   map[string]*trace.Counter
	contPairs  map[[2]string]*trace.Counter
}

// contention records one blocking event in the registry: per-table block
// and wait counters plus a per-(holder, waiter) pair counter.
func (o *clusterObs) contention(table, holder, waiter string, wait time.Duration) {
	if o == nil {
		return
	}
	cb := o.contBlocks[table]
	if cb == nil {
		cb = o.reg.Counter("ndb.contention.blocks", "table", table)
		o.contBlocks[table] = cb
	}
	cb.Add(1)
	cw := o.contWait[table]
	if cw == nil {
		cw = o.reg.Counter("ndb.contention.wait_ns", "table", table)
		o.contWait[table] = cw
	}
	cw.Add(int64(wait))
	pk := [2]string{holder, waiter}
	cp := o.contPairs[pk]
	if cp == nil {
		cp = o.reg.Counter("ndb.contention.pairs", "holder", holder, "waiter", waiter)
		o.contPairs[pk] = cp
	}
	cp.Add(1)
}

// proximityLabel names a §IV-A4 proximity distance for registry labels.
func proximityLabel(d int) string {
	switch d {
	case ProximitySameHost:
		return "same_host"
	case ProximitySameZone:
		return "same_zone"
	default:
		return "remote"
	}
}

// SetTracer attaches the cluster to a deployment's tracer: 2PC phases,
// lock waits and TC selections are recorded in the tracer's registry, and
// transactions annotate the caller's active span. A nil tracer detaches.
func (c *Cluster) SetTracer(tr *trace.Tracer) {
	c.tracer = tr
	reg := tr.Registry()
	if reg == nil {
		c.obs = nil
		c.ledger = nil
		c.activeOps = nil
		return
	}
	obs := &clusterObs{
		lockAcq:      reg.Counter("txn.lock.acquisitions"),
		lockWait:     reg.Timing("txn.lock_wait"),
		batchReads:   reg.Counter("ndb.batch.reads"),
		batchWrites:  reg.Counter("ndb.batch_write.batches"),
		commitTrains: reg.Counter("ndb.commit.trains"),
		trainRows:    reg.Timing("ndb.commit.rows_per_train"),
		reg:          reg,
		contBlocks:   make(map[string]*trace.Counter),
		contWait:     make(map[string]*trace.Counter),
		contPairs:    make(map[[2]string]*trace.Counter),
	}
	c.ledger = newContentionLedger()
	c.activeOps = make(map[uint64]string)
	for ph := 0; ph < numPhases; ph++ {
		obs.phase[ph] = reg.Timing("txn.phase." + phaseNames[ph])
	}
	for d := ProximitySameHost; d <= ProximityRemote; d++ {
		obs.tcSelect[d] = reg.Counter("ndb.tc_select", "prox", proximityLabel(d))
		obs.batchRows[d] = reg.Counter("ndb.batch.rows", "prox", proximityLabel(d))
		obs.batchWriteRows[d] = reg.Counter("ndb.batch_write.rows", "prox", proximityLabel(d))
	}
	c.obs = obs
}

// SetHeat attaches a heat collector: every row access attributes one touch
// to the table and partition it lands on, so sharding decisions can be
// grounded in observed partition skew. A nil collector detaches.
func (c *Cluster) SetHeat(h *heat.Collector) {
	c.heat = h
}

// Stats holds cluster-wide transaction counters.
type Stats struct {
	Begun     int64
	Committed int64
	Aborted   int64
	Reads     int64
	Writes    int64
}

// DataNode is one NDB datanode: a network endpoint plus the Table II thread
// pools.
type DataNode struct {
	c     *Cluster
	Node  *simnet.Node
	Index int
	Group int
	// Domain is the LocationDomainId (§IV-A): the configured AZ, or
	// simnet.ZoneUnset when the deployment is not AZ aware.
	Domain simnet.ZoneID

	threads      [threadTypes]*sim.Resource
	declaredDead bool

	// healthAt/healthBusy snapshot the thread-pool busy integrals at the
	// last health probe (see Cluster.HealthStats).
	healthAt   time.Duration
	healthBusy [threadTypes]int64

	// redoPending accumulates bytes to be flushed at the next global
	// checkpoint.
	redoPending int64

	shutdown bool
}

// MgmtNode is an NDB management node; the elected one arbitrates network
// partitions (§IV-A2).
type MgmtNode struct {
	c    *Cluster
	Node *simnet.Node
}

// Placement locates one datanode: its zone and host.
type Placement struct {
	Zone simnet.ZoneID
	Host simnet.HostID
}

// New builds a cluster with cfg. dataPlacement must have cfg.DataNodes
// entries; node group membership follows the paper's deployments: node i
// joins group i % numGroups, so consecutive placements in the same zone end
// up in different groups and each group spans zones (Figures 3 and 4).
// mgmtPlacement lists management nodes; the first reachable one arbitrates.
func New(env *sim.Env, net *simnet.Network, cfg Config, dataPlacement, mgmtPlacement []Placement) (*Cluster, error) {
	if cfg.DataNodes != len(dataPlacement) {
		return nil, fmt.Errorf("ndb: %d placements for %d datanodes", len(dataPlacement), cfg.DataNodes)
	}
	if cfg.Replication <= 0 || cfg.DataNodes%cfg.Replication != 0 {
		return nil, fmt.Errorf("ndb: datanodes %d not divisible by replication %d", cfg.DataNodes, cfg.Replication)
	}
	c := &Cluster{
		env:        env,
		net:        net,
		cfg:        cfg,
		tables:     make(map[string]*Table),
		arbGranted: make(map[int]int),
		topoEpoch:  1,
	}
	numGroups := cfg.DataNodes / cfg.Replication
	c.groups = make([][]*DataNode, numGroups)
	for i, pl := range dataPlacement {
		dn := &DataNode{
			c:     c,
			Node:  net.NewNode(fmt.Sprintf("%sndb-%d", cfg.NamePrefix, i+1), pl.Zone, pl.Host),
			Index: i,
			Group: i % numGroups,
		}
		if cfg.AZAware {
			dn.Domain = pl.Zone
		}
		for t := range dn.threads {
			dn.threads[t] = sim.NewResource(env, fmt.Sprintf("%sndb-%d/%s", cfg.NamePrefix, i+1, ThreadType(t)), threadCounts[t])
		}
		c.datanodes = append(c.datanodes, dn)
		c.groups[dn.Group] = append(c.groups[dn.Group], dn)
	}
	for i, pl := range mgmtPlacement {
		c.mgmt = append(c.mgmt, &MgmtNode{c: c, Node: net.NewNode(fmt.Sprintf("%smgm-%d", cfg.NamePrefix, i+1), pl.Zone, pl.Host)})
	}
	c.startBackground()
	return c, nil
}

// Env returns the simulation environment.
func (c *Cluster) Env() *sim.Env { return c.env }

// Net returns the simulated network.
func (c *Cluster) Net() *simnet.Network { return c.net }

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// DataNodes returns the cluster's datanodes.
func (c *Cluster) DataNodes() []*DataNode { return c.datanodes }

// NodeGroups returns datanodes grouped into replication node groups.
func (c *Cluster) NodeGroups() [][]*DataNode { return c.groups }

// Alive reports whether the datanode is up and not shut down by
// arbitration.
func (dn *DataNode) Alive() bool { return dn.Node.Alive() && !dn.shutdown }

// Threads exposes the node's thread pools for utilization accounting.
func (dn *DataNode) Threads() [threadTypes]*sim.Resource { return dn.threads }

// HealthStats reports the storage tier's health signal at virtual instant
// now: datanodes that are live (up and not declared dead by arbitration)
// vs expected, whether any node group has lost every replica (the cluster
// cannot serve its partitions then, regardless of how many other nodes
// survive), the mean thread-pool utilization across live nodes since the
// previous call, and the contention pressure (the largest thread-pool
// backlog on any live node). When instrumented it also refreshes the
// per-DN ndb.util{dn=...} gauges and ndb.pressure.
func (c *Cluster) HealthStats(now time.Duration) (live, expected int, groupLost bool, util, pressure float64) {
	expected = len(c.datanodes)
	var sum float64
	var n int
	for _, dn := range c.datanodes {
		var nodeSum float64
		for t := range dn.threads {
			u := 0.0
			if now > dn.healthAt {
				u = dn.threads[t].Utilization(dn.healthAt, now, dn.healthBusy[t])
			}
			dn.healthBusy[t] = dn.threads[t].BusyIntegral()
			nodeSum += u
		}
		nodeUtil := nodeSum / float64(threadTypes)
		dn.healthAt = now
		if c.obs != nil {
			c.obs.reg.Gauge("ndb.util", "dn", dn.Node.Name()).Set(nodeUtil)
		}
		if !dn.Alive() || dn.declaredDead {
			continue
		}
		live++
		sum += nodeUtil
		n++
		for t := range dn.threads {
			if q := float64(dn.threads[t].QueueLen()); q > pressure {
				pressure = q
			}
		}
	}
	for _, g := range c.groups {
		alive := 0
		for _, dn := range g {
			if dn.Alive() && !dn.declaredDead {
				alive++
			}
		}
		if alive == 0 {
			groupLost = true
		}
	}
	if n > 0 {
		util = sum / float64(n)
	}
	if c.obs != nil {
		c.obs.reg.Gauge("ndb.pressure").Set(pressure)
	}
	return live, expected, groupLost, util, pressure
}

// CreateTable registers a table. Every table in HopsFS-CL is created with
// ReadBackup enabled (§IV-A5 end); baseline HopsFS deployments pass
// opts.ReadBackup=false.
func (c *Cluster) CreateTable(name string, rowSize int, opts TableOptions) *Table {
	t := &Table{
		c:       c,
		name:    name,
		rowSize: rowSize,
		opts:    opts,
	}
	n := c.cfg.PartitionsPerTable
	if opts.FullyReplicated {
		// One logical partition set per node group; data on all nodes.
		n = c.cfg.PartitionsPerTable
	}
	t.partitions = make([]*Partition, n)
	numGroups := len(c.groups)
	for i := range t.partitions {
		g := i % numGroups
		t.partitions[i] = &Partition{
			table:   t,
			index:   i,
			group:   g,
			primary: (i / numGroups) % len(c.groups[g]),
			rows:    make(map[string]map[string]*row),
			reads:   make([]int64, c.cfg.Replication),
		}
	}
	c.tables[name] = t
	return t
}

// Table returns a table by name, or nil.
func (c *Cluster) Table(name string) *Table { return c.tables[name] }

// Contention returns the cluster's lock-contention ledger, or nil when no
// registry-backed tracer is attached.
func (c *Cluster) Contention() *ContentionLedger { return c.ledger }

// opFor names the op type driving a transaction ID: the root span name
// recorded at Begin, the process name for untraced internal work, or
// "(unknown)" for IDs no longer in flight.
func (c *Cluster) opFor(txn uint64) string {
	if op, ok := c.activeOps[txn]; ok {
		return op
	}
	return "(unknown)"
}

// SpreadPlacement returns datanode placements that realize the paper's
// deployment diagrams (Figures 3 and 4): n datanodes spread evenly over the
// given zones in contiguous runs, so that with numGroups = n/replication
// and group membership i % numGroups, every node group spans all the zones.
// Each datanode gets its own host, numbered from hostBase.
func SpreadPlacement(n int, zones []simnet.ZoneID, hostBase int) []Placement {
	per := n / len(zones)
	if per == 0 {
		per = 1
	}
	out := make([]Placement, n)
	for i := range out {
		zi := i / per
		if zi >= len(zones) {
			zi = len(zones) - 1
		}
		out[i] = Placement{Zone: zones[zi], Host: simnet.HostID(hostBase + i)}
	}
	return out
}

// hashKey maps a partition key to a partition index.
func hashKey(key string, n int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}
