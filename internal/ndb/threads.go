package ndb

import (
	"time"

	"hopsfscl/internal/sim"
)

// ThreadType enumerates the NDB thread classes of the paper's Table II.
type ThreadType int

// Thread classes, in Table II order.
const (
	LDM  ThreadType = iota // tables' data shards
	TC                     // ongoing transactions
	RECV                   // inbound network traffic
	SEND                   // outbound network traffic
	REP                    // replication across clusters (idle helper here)
	IO                     // I/O operations
	MAIN                   // schema management

	threadTypes = 7
)

// threadCounts is Table II: CPUs locked per thread type (27 total).
var threadCounts = [threadTypes]int{
	LDM:  12,
	TC:   7,
	RECV: 3,
	SEND: 2,
	REP:  1,
	IO:   1,
	MAIN: 1,
}

// String returns the Table II name of the thread type.
func (t ThreadType) String() string {
	switch t {
	case LDM:
		return "LDM"
	case TC:
		return "TC"
	case RECV:
		return "RECV"
	case SEND:
		return "SEND"
	case REP:
		return "REP"
	case IO:
		return "IO"
	case MAIN:
		return "MAIN"
	default:
		return "?"
	}
}

// Costs are the calibrated CPU service demands of the engine. They are the
// model's stand-in for the instruction footprints of real NDB code paths;
// see DESIGN.md §2. Only ratios matter for the reproduced shapes.
type Costs struct {
	// Recv/Send are charged per message arriving at / leaving a datanode.
	Recv time.Duration
	Send time.Duration
	// TCBegin is charged on the coordinator when a transaction starts.
	TCBegin time.Duration
	// TCOp is charged on the coordinator per routed operation.
	TCOp time.Duration
	// TCCommitRow is charged on the coordinator per row in the commit.
	TCCommitRow time.Duration
	// LDMRead/LDMWrite are charged on the owning LDM per row access.
	LDMRead  time.Duration
	LDMWrite time.Duration
	// LDMPrepare/LDMCommit are charged per replica per commit phase.
	LDMPrepare time.Duration
	LDMCommit  time.Duration
	// BatchWindow models NDB's executor batching: when a thread pool has
	// queued work, per-item cost shrinks asymptotically toward BatchFloor
	// of the nominal cost (throughput keeps growing after CPU plateaus,
	// §V-D1).
	BatchFloor float64
}

// DefaultCosts returns the calibration used by the experiments.
func DefaultCosts() Costs {
	return Costs{
		Recv:        10 * time.Microsecond,
		Send:        6 * time.Microsecond,
		TCBegin:     3 * time.Microsecond,
		TCOp:        7 * time.Microsecond,
		TCCommitRow: 4 * time.Microsecond,
		LDMRead:     9 * time.Microsecond,
		LDMWrite:    12 * time.Microsecond,
		LDMPrepare:  5 * time.Microsecond,
		LDMCommit:   3 * time.Microsecond,
		BatchFloor:  0.30,
	}
}

// use charges d of CPU on the node's thread pool of the given type as
// fluid (deferred) service, applying the batching model: the deeper the
// backlog, the more of the fixed per-message overhead is amortized across
// the batch (NDB's executor batching, §V-D1: throughput keeps growing
// after the CPU plateaus).
func (dn *DataNode) use(p *sim.Proc, t ThreadType, d time.Duration) {
	res := dn.threads[t]
	if backlog := res.Backlog(p.EffNow()); backlog > 0 {
		floor := dn.c.cfg.Costs.BatchFloor
		scale := floor + (1-floor)*float64(d)/float64(d+backlog)
		d = time.Duration(float64(d) * scale)
	}
	res.UseDeferred(p, d)
}

// recv charges the receive cost for an inbound message on dn.
func (dn *DataNode) recv(p *sim.Proc) { dn.use(p, RECV, dn.c.cfg.Costs.Recv) }

// send charges the cost of an outbound message. SEND work overflows to the
// REP helper thread when the SEND pool is backlogged — NDB's idle threads
// assist busy ones (§V-D1), which is what drives the high REP utilization
// in Figure 11.
func (dn *DataNode) send(p *sim.Proc) {
	cost := dn.c.cfg.Costs.Send
	now := p.EffNow()
	if dn.threads[SEND].Backlog(now) > 0 && dn.threads[REP].Backlog(now) == 0 {
		dn.use(p, REP, cost)
		return
	}
	dn.use(p, SEND, cost)
}
