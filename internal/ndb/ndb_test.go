package ndb

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"hopsfscl/internal/sim"
	"hopsfscl/internal/simnet"
)

// testCluster builds a 3-zone cluster with 6 datanodes (RF 3, two node
// groups spanning all zones, as in Figure 4) and a management node per
// zone. It returns a client node in zone 1.
func testCluster(t *testing.T, azAware bool, rf int) (*sim.Env, *Cluster, *simnet.Node) {
	t.Helper()
	return testClusterCfg(t, azAware, rf, nil)
}

// testClusterCfg is testCluster with a config hook applied before the
// cluster is built (e.g. to disable write batching).
func testClusterCfg(t *testing.T, azAware bool, rf int, tweak func(*Config)) (*sim.Env, *Cluster, *simnet.Node) {
	t.Helper()
	env := sim.New(11)
	t.Cleanup(env.Close)
	net := simnet.New(env, simnet.USWest1())
	cfg := DefaultConfig()
	cfg.DataNodes = 6
	cfg.Replication = rf
	cfg.PartitionsPerTable = 12
	cfg.AZAware = azAware
	if tweak != nil {
		tweak(&cfg)
	}
	zones := []simnet.ZoneID{1, 2, 3}
	data := SpreadPlacement(cfg.DataNodes, zones, 100)
	mgmt := []Placement{{Zone: 1, Host: 200}, {Zone: 2, Host: 201}, {Zone: 3, Host: 202}}
	c, err := New(env, net, cfg, data, mgmt)
	if err != nil {
		t.Fatal(err)
	}
	client := net.NewNode("client", 1, 300)
	return env, c, client
}

// inTxn runs fn inside a process, giving it a fresh transaction.
func inTxn(t *testing.T, env *sim.Env, c *Cluster, client *simnet.Node, domain simnet.ZoneID,
	table *Table, hint string, fn func(p *sim.Proc, tx *Txn) error) {
	t.Helper()
	var err error
	env.Spawn("txn", func(p *sim.Proc) {
		var tx *Txn
		tx, err = c.Begin(p, client, domain, table, hint)
		if err != nil {
			return
		}
		err = fn(p, tx)
	})
	env.RunFor(5 * time.Second)
	if err != nil {
		t.Fatalf("txn failed: %v", err)
	}
}

func TestCommitAndReadBack(t *testing.T) {
	env, c, client := testCluster(t, true, 3)
	tbl := c.CreateTable("inodes", 256, TableOptions{ReadBackup: true})
	inTxn(t, env, c, client, 1, tbl, "p1", func(p *sim.Proc, tx *Txn) error {
		if err := tx.Insert(tbl, "p1", "k1", "v1"); err != nil {
			return err
		}
		return tx.Commit()
	})
	inTxn(t, env, c, client, 1, tbl, "p1", func(p *sim.Proc, tx *Txn) error {
		v, ok, err := tx.ReadCommitted(tbl, "p1", "k1")
		if err != nil {
			return err
		}
		if !ok || v != "v1" {
			t.Errorf("read (%v,%v), want (v1,true)", v, ok)
		}
		return tx.Commit()
	})
	if c.Stats.Committed != 2 {
		t.Fatalf("committed = %d, want 2", c.Stats.Committed)
	}
}

func TestDeleteRemovesRow(t *testing.T) {
	env, c, client := testCluster(t, true, 3)
	tbl := c.CreateTable("inodes", 256, TableOptions{ReadBackup: true})
	inTxn(t, env, c, client, 1, tbl, "p", func(p *sim.Proc, tx *Txn) error {
		if err := tx.Insert(tbl, "p", "k", "v"); err != nil {
			return err
		}
		return tx.Commit()
	})
	inTxn(t, env, c, client, 1, tbl, "p", func(p *sim.Proc, tx *Txn) error {
		if err := tx.Delete(tbl, "p", "k"); err != nil {
			return err
		}
		return tx.Commit()
	})
	inTxn(t, env, c, client, 1, tbl, "p", func(p *sim.Proc, tx *Txn) error {
		_, ok, err := tx.ReadCommitted(tbl, "p", "k")
		if err != nil {
			return err
		}
		if ok {
			t.Error("row still visible after delete")
		}
		return tx.Commit()
	})
}

func TestUncommittedWriteInvisible(t *testing.T) {
	env, c, client := testCluster(t, true, 3)
	tbl := c.CreateTable("inodes", 256, TableOptions{ReadBackup: true})
	var sawBeforeCommit bool
	env.Spawn("writer", func(p *sim.Proc) {
		tx, err := c.Begin(p, client, 1, tbl, "p")
		if err != nil {
			t.Error(err)
			return
		}
		if err := tx.Insert(tbl, "p", "k", "v"); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(50 * time.Millisecond) // hold the write uncommitted
		if err := tx.Commit(); err != nil {
			t.Error(err)
		}
	})
	env.Spawn("reader", func(p *sim.Proc) {
		p.Sleep(20 * time.Millisecond)
		tx, err := c.Begin(p, client, 1, tbl, "p")
		if err != nil {
			t.Error(err)
			return
		}
		_, ok, err := tx.ReadCommitted(tbl, "p", "k")
		if err != nil {
			t.Error(err)
			return
		}
		sawBeforeCommit = ok
		tx.Abort()
	})
	env.RunFor(time.Second)
	if sawBeforeCommit {
		t.Fatal("read-committed saw an uncommitted write")
	}
}

func TestReadsGoToPrimaryWithoutReadBackup(t *testing.T) {
	env, c, client := testCluster(t, true, 3)
	tbl := c.CreateTable("plain", 128, TableOptions{})
	inTxn(t, env, c, client, 1, tbl, "p", func(p *sim.Proc, tx *Txn) error {
		if err := tx.Insert(tbl, "p", "k", "v"); err != nil {
			return err
		}
		return tx.Commit()
	})
	// Read from clients in all three zones: every read must hit slot 0.
	for z := simnet.ZoneID(1); z <= 3; z++ {
		cl := c.net.NewNode("cl", z, 400+simnet.HostID(z))
		inTxn(t, env, c, cl, z, tbl, "p", func(p *sim.Proc, tx *Txn) error {
			_, _, err := tx.ReadCommitted(tbl, "p", "k")
			if err != nil {
				return err
			}
			return tx.Commit()
		})
	}
	part := tbl.partitionFor("p")
	counts := part.ReadCounts()
	if counts[0] != 3 || counts[1] != 0 || counts[2] != 0 {
		t.Fatalf("read counts = %v, want [3 0 0]", counts)
	}
}

func TestReadBackupServesAZLocalReplica(t *testing.T) {
	env, c, _ := testCluster(t, true, 3)
	tbl := c.CreateTable("rb", 128, TableOptions{ReadBackup: true})
	seed := c.net.NewNode("seed", 1, 399)
	inTxn(t, env, c, seed, 1, tbl, "p", func(p *sim.Proc, tx *Txn) error {
		if err := tx.Insert(tbl, "p", "k", "v"); err != nil {
			return err
		}
		return tx.Commit()
	})
	// A client per zone: with RF 3 each zone holds a replica, so the three
	// reads must land on three different replica slots.
	for z := simnet.ZoneID(1); z <= 3; z++ {
		cl := c.net.NewNode("cl", z, 400+simnet.HostID(z))
		inTxn(t, env, c, cl, z, tbl, "p", func(p *sim.Proc, tx *Txn) error {
			_, _, err := tx.ReadCommitted(tbl, "p", "k")
			if err != nil {
				return err
			}
			return tx.Commit()
		})
	}
	counts := tbl.partitionFor("p").ReadCounts()
	for slot, n := range counts {
		if n != 1 {
			t.Fatalf("read counts = %v, want one read per replica slot (slot %d)", counts, slot)
		}
	}
}

func TestFullyReplicatedWritesReachAllGroupsAndReadsAreTCLocal(t *testing.T) {
	env, c, client := testCluster(t, true, 3)
	tbl := c.CreateTable("fr", 64, TableOptions{ReadBackup: true, FullyReplicated: true})
	inTxn(t, env, c, client, 1, tbl, "p", func(p *sim.Proc, tx *Txn) error {
		if err := tx.Insert(tbl, "p", "k", "v"); err != nil {
			return err
		}
		return tx.Commit()
	})
	// The commit chain must have touched at least one node in every group:
	// check REDO bytes accumulated (pending or already checkpointed to
	// disk) on some member of each group.
	for g, group := range c.NodeGroups() {
		var redo int64
		for _, dn := range group {
			_, w := dn.Node.DiskBytes()
			redo += dn.redoPending + w
		}
		if redo == 0 {
			t.Fatalf("group %d saw no redo from fully replicated write", g)
		}
	}
	// Reads are served by the TC itself: no extra cross-node read traffic.
	// Stop heartbeats first so only the read's traffic is measured.
	c.StopBackground()
	env.RunFor(time.Second)
	before := c.net.CrossZoneBytes()
	inTxn(t, env, c, client, 1, tbl, "p", func(p *sim.Proc, tx *Txn) error {
		v, ok, err := tx.ReadCommitted(tbl, "p", "k")
		if err != nil {
			return err
		}
		if !ok || v != "v" {
			t.Errorf("read (%v,%v)", v, ok)
		}
		return tx.Commit()
	})
	if got := c.net.CrossZoneBytes(); got != before {
		t.Fatalf("fully replicated read crossed zones: %d extra bytes", got-before)
	}
}

func TestExclusiveLockSerializesWriters(t *testing.T) {
	env, c, client := testCluster(t, true, 3)
	tbl := c.CreateTable("t", 64, TableOptions{ReadBackup: true})
	var order []string
	writer := func(name string, delay time.Duration) {
		env.Spawn(name, func(p *sim.Proc) {
			p.Sleep(delay)
			tx, err := c.Begin(p, client, 1, tbl, "p")
			if err != nil {
				t.Error(err)
				return
			}
			if err := tx.Insert(tbl, "p", "k", name); err != nil {
				t.Error(err)
				return
			}
			if name == "first" {
				p.Sleep(30 * time.Millisecond) // hold the lock
			}
			if err := tx.Commit(); err != nil {
				t.Error(err)
				return
			}
			order = append(order, name)
		})
	}
	writer("first", 0)
	writer("second", 5*time.Millisecond)
	env.RunFor(time.Second)
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("order = %v, want [first second]", order)
	}
	inTxn(t, env, c, client, 1, tbl, "p", func(p *sim.Proc, tx *Txn) error {
		v, _, err := tx.ReadCommitted(tbl, "p", "k")
		if err != nil {
			return err
		}
		if v != "second" {
			t.Errorf("final value %v, want second", v)
		}
		return tx.Commit()
	})
}

func TestLockTimeoutAbortsWaiter(t *testing.T) {
	env, c, client := testCluster(t, true, 3)
	tbl := c.CreateTable("t", 64, TableOptions{ReadBackup: true})
	var waiterErr error
	env.Spawn("holder", func(p *sim.Proc) {
		tx, err := c.Begin(p, client, 1, tbl, "p")
		if err != nil {
			t.Error(err)
			return
		}
		if err := tx.Insert(tbl, "p", "k", "h"); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(500 * time.Millisecond) // far beyond LockTimeout
		if err := tx.Commit(); err != nil {
			t.Error(err)
		}
	})
	env.Spawn("waiter", func(p *sim.Proc) {
		p.Sleep(10 * time.Millisecond)
		tx, err := c.Begin(p, client, 1, tbl, "p")
		if err != nil {
			t.Error(err)
			return
		}
		waiterErr = tx.Insert(tbl, "p", "k", "w")
	})
	env.RunFor(2 * time.Second)
	if !errors.Is(waiterErr, ErrLockTimeout) {
		t.Fatalf("waiter error = %v, want ErrLockTimeout", waiterErr)
	}
	if c.Stats.Aborted == 0 {
		t.Fatal("no aborts recorded")
	}
}

func TestSharedLocksCoexistAndBlockExclusive(t *testing.T) {
	env, c, client := testCluster(t, true, 3)
	tbl := c.CreateTable("t", 64, TableOptions{ReadBackup: true})
	inTxn(t, env, c, client, 1, tbl, "p", func(p *sim.Proc, tx *Txn) error {
		if err := tx.Insert(tbl, "p", "k", "v"); err != nil {
			return err
		}
		return tx.Commit()
	})
	base := env.Now()
	var sharedDone [2]time.Duration
	var writerDone time.Duration
	for i := 0; i < 2; i++ {
		i := i
		env.Spawn("shared", func(p *sim.Proc) {
			tx, err := c.Begin(p, client, 1, tbl, "p")
			if err != nil {
				t.Error(err)
				return
			}
			if _, _, err := tx.ReadLocked(tbl, "p", "k", LockShared); err != nil {
				t.Error(err)
				return
			}
			p.Sleep(20 * time.Millisecond)
			if err := tx.Commit(); err != nil {
				t.Error(err)
			}
			sharedDone[i] = p.Now() - base
		})
	}
	env.Spawn("writer", func(p *sim.Proc) {
		p.Sleep(5 * time.Millisecond)
		tx, err := c.Begin(p, client, 1, tbl, "p")
		if err != nil {
			t.Error(err)
			return
		}
		if err := tx.Insert(tbl, "p", "k", "w"); err != nil {
			t.Error(err)
			return
		}
		if err := tx.Commit(); err != nil {
			t.Error(err)
		}
		writerDone = p.Now() - base
	})
	env.RunFor(time.Second)
	// Both shared readers overlap (finish ~same time); the writer finishes
	// only after both released.
	if sharedDone[0] > 30*time.Millisecond || sharedDone[1] > 30*time.Millisecond {
		t.Fatalf("shared readers did not overlap: %v", sharedDone)
	}
	if writerDone <= sharedDone[0] || writerDone <= sharedDone[1] {
		t.Fatalf("writer finished at %v before shared readers %v", writerDone, sharedDone)
	}
}

func TestTCSelectionPrefersDomainLocal(t *testing.T) {
	env, c, _ := testCluster(t, true, 3)
	tbl := c.CreateTable("t", 64, TableOptions{ReadBackup: true})
	for z := simnet.ZoneID(1); z <= 3; z++ {
		cl := c.net.NewNode("cl", z, 500+simnet.HostID(z))
		var tc *DataNode
		env.Spawn("probe", func(p *sim.Proc) {
			tx, err := c.Begin(p, cl, z, tbl, "p")
			if err != nil {
				t.Error(err)
				return
			}
			tc = tx.Coordinator()
			tx.Abort()
		})
		env.RunFor(time.Second)
		if tc == nil || tc.Domain != z {
			t.Fatalf("zone %d client got TC in domain %v", z, tc.Domain)
		}
	}
}

func TestTCSelectionWithoutAwarenessPicksPrimary(t *testing.T) {
	env, c, client := testCluster(t, false, 3)
	tbl := c.CreateTable("t", 64, TableOptions{})
	var tc *DataNode
	env.Spawn("probe", func(p *sim.Proc) {
		tx, err := c.Begin(p, client, simnet.ZoneUnset, tbl, "p")
		if err != nil {
			t.Error(err)
			return
		}
		tc = tx.Coordinator()
		tx.Abort()
	})
	env.RunFor(time.Second)
	primary := tbl.partitionFor("p").replicas()[0]
	if tc != primary {
		t.Fatalf("TC = %v, want hinted primary %v", tc.Node, primary.Node)
	}
}

func TestNodeFailurePromotesBackupAndClusterContinues(t *testing.T) {
	env, c, client := testCluster(t, true, 3)
	tbl := c.CreateTable("t", 64, TableOptions{ReadBackup: true})
	inTxn(t, env, c, client, 1, tbl, "p", func(p *sim.Proc, tx *Txn) error {
		if err := tx.Insert(tbl, "p", "k", "before"); err != nil {
			return err
		}
		return tx.Commit()
	})
	part := tbl.partitionFor("p")
	oldPrimary := part.replicas()[0]
	oldPrimary.Node.Fail()
	// Let heartbeats detect and declare the failure.
	env.RunFor(2 * time.Second)
	if !oldPrimary.declaredDead {
		t.Fatal("failed primary not declared dead")
	}
	newPrimary := part.replicas()[0]
	if newPrimary == oldPrimary {
		t.Fatal("primary not promoted")
	}
	inTxn(t, env, c, client, 1, tbl, "p", func(p *sim.Proc, tx *Txn) error {
		v, ok, err := tx.ReadCommitted(tbl, "p", "k")
		if err != nil {
			return err
		}
		if !ok || v != "before" {
			t.Errorf("read (%v,%v) after failover", v, ok)
		}
		if err := tx.Insert(tbl, "p", "k", "after"); err != nil {
			return err
		}
		return tx.Commit()
	})
}

func TestSplitBrainArbitrationShutsDownOneSide(t *testing.T) {
	env, c, _ := testCluster(t, true, 3)
	// Partition zone 2 from zone 3; the arbitrator (M1, zone 1) is
	// reachable from both sides, so the first claimant's side survives and
	// the other side is ordered down.
	c.net.Partition(2, 3)
	env.RunFor(3 * time.Second)
	shutdownZones := map[simnet.ZoneID]int{}
	for _, dn := range c.DataNodes() {
		if dn.Shutdown() {
			shutdownZones[dn.Node.Zone()]++
		}
	}
	if len(shutdownZones) != 1 {
		t.Fatalf("zones shut down: %v, want exactly one of zone2/zone3", shutdownZones)
	}
	for z, n := range shutdownZones {
		if z == 1 {
			t.Fatal("zone 1 shut down; it was never partitioned")
		}
		if n != 2 {
			t.Fatalf("zone %d: %d nodes shut down, want 2", z, n)
		}
	}
	// The surviving majority keeps serving transactions.
	tbl := c.CreateTable("t", 64, TableOptions{ReadBackup: true})
	client := c.net.NewNode("cl", 1, 600)
	inTxn(t, env, c, client, 1, tbl, "p", func(p *sim.Proc, tx *Txn) error {
		if err := tx.Insert(tbl, "p", "k", "v"); err != nil {
			return err
		}
		return tx.Commit()
	})
}

func TestZoneCutOffFromArbitratorShutsItselfDown(t *testing.T) {
	env, c, _ := testCluster(t, true, 3)
	// Cut zone 3 from both zone 1 (arbitrator) and zone 2: zone 3 cannot
	// reach the arbitrator and must shut down (§V-F).
	c.net.Partition(1, 3)
	c.net.Partition(2, 3)
	env.RunFor(3 * time.Second)
	for _, dn := range c.DataNodes() {
		down := dn.Shutdown() || dn.declaredDead
		if dn.Node.Zone() == 3 && !down {
			t.Fatalf("zone-3 node %v still up without arbitrator", dn.Node)
		}
		if dn.Node.Zone() != 3 && down {
			t.Fatalf("node %v outside zone 3 went down", dn.Node)
		}
	}
}

func TestAZFailureToleratedWithRF3(t *testing.T) {
	env, c, _ := testCluster(t, true, 3)
	tbl := c.CreateTable("t", 64, TableOptions{ReadBackup: true})
	seed := c.net.NewNode("seed", 1, 601)
	inTxn(t, env, c, seed, 1, tbl, "p", func(p *sim.Proc, tx *Txn) error {
		if err := tx.Insert(tbl, "p", "k", "v"); err != nil {
			return err
		}
		return tx.Commit()
	})
	c.FailZone(2)
	env.RunFor(3 * time.Second)
	inTxn(t, env, c, seed, 1, tbl, "p", func(p *sim.Proc, tx *Txn) error {
		v, ok, err := tx.ReadCommitted(tbl, "p", "k")
		if err != nil {
			return err
		}
		if !ok || v != "v" {
			t.Errorf("read (%v,%v) after AZ failure", v, ok)
		}
		if err := tx.Insert(tbl, "p", "k2", "v2"); err != nil {
			return err
		}
		return tx.Commit()
	})
}

func TestCheckpointFlushesRedoToDisk(t *testing.T) {
	env, c, client := testCluster(t, true, 3)
	tbl := c.CreateTable("t", 4096, TableOptions{ReadBackup: true})
	for i := 0; i < 5; i++ {
		key := string(rune('a' + i))
		inTxn(t, env, c, client, 1, tbl, key, func(p *sim.Proc, tx *Txn) error {
			if err := tx.Insert(tbl, key, key, i); err != nil {
				return err
			}
			return tx.Commit()
		})
	}
	env.RunFor(c.cfg.GCPInterval * 2)
	var disk int64
	for _, dn := range c.DataNodes() {
		_, w := dn.Node.DiskBytes()
		disk += w
	}
	if disk == 0 {
		t.Fatal("no REDO bytes reached disk after two checkpoint intervals")
	}
}

func TestSpreadPlacementSpansZonesPerGroup(t *testing.T) {
	zones := []simnet.ZoneID{1, 2, 3}
	pl := SpreadPlacement(12, zones, 0)
	numGroups := 4 // 12 nodes, RF 3
	for g := 0; g < numGroups; g++ {
		seen := map[simnet.ZoneID]bool{}
		for i := g; i < 12; i += numGroups {
			seen[pl[i].Zone] = true
		}
		if len(seen) != 3 {
			t.Fatalf("group %d spans %d zones, want 3", g, len(seen))
		}
	}
}

func TestBeginWithNoAliveNodesFails(t *testing.T) {
	env, c, client := testCluster(t, true, 3)
	for _, dn := range c.DataNodes() {
		dn.Node.Fail()
		dn.shutdown = true
	}
	var err error
	env.Spawn("probe", func(p *sim.Proc) {
		_, err = c.Begin(p, client, 1, nil, "")
	})
	env.RunFor(time.Second)
	if !errors.Is(err, ErrNoNodes) {
		t.Fatalf("err = %v, want ErrNoNodes", err)
	}
}

func TestRejoinAfterNodeFailure(t *testing.T) {
	env, c, client := testCluster(t, true, 3)
	tbl := c.CreateTable("t", 128, TableOptions{ReadBackup: true})
	inTxn(t, env, c, client, 1, tbl, "p", func(p *sim.Proc, tx *Txn) error {
		if err := tx.Insert(tbl, "p", "k", "v"); err != nil {
			return err
		}
		return tx.Commit()
	})
	victim := tbl.partitionFor("p").replicas()[0]
	victim.Node.Fail()
	env.RunFor(2 * time.Second)
	if !victim.declaredDead {
		t.Fatal("victim not declared dead")
	}
	env.Spawn("rejoin", func(p *sim.Proc) { c.Rejoin(p, victim) })
	env.RunFor(5 * time.Second)
	if !victim.Alive() || victim.declaredDead {
		t.Fatal("victim did not rejoin")
	}
	// The rejoined node is a replica again and the resync moved bytes.
	found := false
	for _, dn := range tbl.partitionFor("p").replicas() {
		if dn == victim {
			found = true
		}
	}
	if !found {
		t.Fatal("rejoined node not serving its partitions")
	}
	if r, _ := victim.Node.NICBytes(); r == 0 {
		t.Fatal("rejoin copied no data")
	}
	// And transactions keep working, including on the rejoined node's data.
	inTxn(t, env, c, client, 1, tbl, "p", func(p *sim.Proc, tx *Txn) error {
		v, ok, err := tx.ReadCommitted(tbl, "p", "k")
		if err != nil {
			return err
		}
		if !ok || v != "v" {
			t.Errorf("read after rejoin: (%v,%v)", v, ok)
		}
		return tx.Commit()
	})
}

func TestRecoverZoneAfterAZFailure(t *testing.T) {
	env, c, client := testCluster(t, true, 3)
	tbl := c.CreateTable("t", 128, TableOptions{ReadBackup: true})
	inTxn(t, env, c, client, 1, tbl, "p", func(p *sim.Proc, tx *Txn) error {
		if err := tx.Insert(tbl, "p", "k", "v"); err != nil {
			return err
		}
		return tx.Commit()
	})
	c.FailZone(2)
	env.RunFor(2 * time.Second)
	env.Spawn("recover", func(p *sim.Proc) { c.RecoverZone(p, 2) })
	env.RunFor(10 * time.Second)
	for _, dn := range c.DataNodes() {
		if !dn.Alive() {
			t.Fatalf("node %v still down after zone recovery", dn.Node)
		}
	}
	inTxn(t, env, c, client, 1, tbl, "p", func(p *sim.Proc, tx *Txn) error {
		if err := tx.Insert(tbl, "p", "k2", "v2"); err != nil {
			return err
		}
		return tx.Commit()
	})
}

// TestCommitProtocolMessageCount pins the linear-2PC wire footprint to the
// paper's Figure 2. For one written row with three replicas the chain is:
// Prepare x3 down the chain, Prepared x1 back to the TC, Commit x3 in
// reverse, Committed x1, then (Read Backup) Complete x2 and Completed x2 —
// 12 messages, plus the Ack to the API client.
func TestCommitProtocolMessageCount(t *testing.T) {
	env, c, client := testCluster(t, true, 3)
	c.StopBackground()
	env.RunFor(time.Second) // drain housekeeping
	tbl := c.CreateTable("t", 64, TableOptions{ReadBackup: true})
	var commitMsgs int64
	env.Spawn("txn", func(p *sim.Proc) {
		tx, err := c.Begin(p, client, 1, tbl, "p")
		if err != nil {
			t.Error(err)
			return
		}
		if err := tx.Insert(tbl, "p", "k", "v"); err != nil {
			t.Error(err)
			return
		}
		p.Flush()
		before := c.net.TotalMessages()
		if err := tx.Commit(); err != nil {
			t.Error(err)
			return
		}
		p.Flush()
		commitMsgs = c.net.TotalMessages() - before
	})
	env.RunFor(time.Minute)
	// 12 protocol messages + 1 client Ack.
	if commitMsgs != 13 {
		t.Fatalf("commit used %d messages, want 13 (Figure 2 with RF 3 + Ack)", commitMsgs)
	}
}

// TestReadBackupDelaysAck verifies §IV-A3: with Read Backup the Ack waits
// for the Completed round trips, so a commit takes strictly longer than
// without (same deployment geometry).
func TestReadBackupDelaysAck(t *testing.T) {
	commitTime := func(rb bool) time.Duration {
		env, c, client := testCluster(t, true, 3)
		_ = env
		tbl := c.CreateTable("t", 64, TableOptions{ReadBackup: rb})
		var took time.Duration
		env.Spawn("txn", func(p *sim.Proc) {
			tx, err := c.Begin(p, client, 1, tbl, "p")
			if err != nil {
				t.Error(err)
				return
			}
			if err := tx.Insert(tbl, "p", "k", "v"); err != nil {
				t.Error(err)
				return
			}
			p.Flush()
			t0 := p.Now()
			if err := tx.Commit(); err != nil {
				t.Error(err)
				return
			}
			p.Flush()
			took = p.Now() - t0
		})
		env.RunFor(time.Minute)
		return took
	}
	with := commitTime(true)
	without := commitTime(false)
	if with <= without {
		t.Fatalf("Read Backup commit (%v) not slower than plain commit (%v)", with, without)
	}
}

// TestClusterCrashRecoversDurableEpochOnly pins the §II-B2 global
// checkpoint durability semantics: commits older than the last completed
// global checkpoint survive a whole-cluster failure; newer ones are lost.
func TestClusterCrashRecoversDurableEpochOnly(t *testing.T) {
	env, c, client := testCluster(t, true, 3)
	tbl := c.CreateTable("t", 64, TableOptions{ReadBackup: true})
	write := func(p *sim.Proc, key, val string) error {
		tx, err := c.Begin(p, client, 1, tbl, "p")
		if err != nil {
			return err
		}
		if err := tx.Insert(tbl, "p", key, val); err != nil {
			return err
		}
		return tx.Commit()
	}
	env.Spawn("scenario", func(p *sim.Proc) {
		if err := write(p, "durable", "v1"); err != nil {
			t.Error(err)
			return
		}
		// Let GCP epochs pass so the write becomes durable, then write a
		// row in the current (non-durable) epoch and crash immediately.
		p.Sleep(3 * c.cfg.GCPInterval)
		if c.DurableEpoch() == 0 {
			t.Error("no durable epoch after three intervals")
			return
		}
		if err := write(p, "volatile", "v2"); err != nil {
			t.Error(err)
			return
		}
		p.Flush()
		c.CrashRestartCluster(p)
	})
	env.RunFor(10 * time.Second)

	inTxn(t, env, c, client, 1, tbl, "p", func(p *sim.Proc, tx *Txn) error {
		v, ok, err := tx.ReadCommitted(tbl, "p", "durable")
		if err != nil {
			return err
		}
		if !ok || v != "v1" {
			t.Errorf("durable row after crash: (%v,%v)", v, ok)
		}
		_, ok, err = tx.ReadCommitted(tbl, "p", "volatile")
		if err != nil {
			return err
		}
		if ok {
			t.Error("non-durable row survived a whole-cluster crash")
		}
		return tx.Commit()
	})
	// The cluster keeps working after recovery.
	inTxn(t, env, c, client, 1, tbl, "p", func(p *sim.Proc, tx *Txn) error {
		if err := tx.Insert(tbl, "p", "after", "v3"); err != nil {
			return err
		}
		return tx.Commit()
	})
	// Recovery replayed REDO from disk on every node.
	var reads int64
	for _, dn := range c.DataNodes() {
		r, _ := dn.Node.DiskBytes()
		reads += r
	}
	if reads == 0 {
		t.Fatal("recovery read nothing from disk")
	}
}

func TestEpochAdvances(t *testing.T) {
	env, c, _ := testCluster(t, true, 3)
	e0 := c.CurrentEpoch()
	env.RunFor(3 * c.cfg.GCPInterval)
	if c.CurrentEpoch() <= e0 {
		t.Fatalf("epoch did not advance: %d -> %d", e0, c.CurrentEpoch())
	}
	if c.DurableEpoch() >= c.CurrentEpoch() {
		t.Fatalf("durable epoch %d not behind current %d", c.DurableEpoch(), c.CurrentEpoch())
	}
}

// TestRepeatedCrashRestartEpochMonotone drives several whole-cluster
// crash/restart cycles with writes in between and checks the global
// checkpoint bookkeeping: the durable epoch never regresses across a
// crash, the current epoch always stays ahead of it, and every write
// acknowledged before a durable checkpoint survives every later crash.
func TestRepeatedCrashRestartEpochMonotone(t *testing.T) {
	env, c, client := testCluster(t, true, 3)
	tbl := c.CreateTable("t", 64, TableOptions{})
	var lastDurable uint64
	for cycle := 0; cycle < 3; cycle++ {
		key := fmt.Sprintf("k%d", cycle)
		inTxn(t, env, c, client, 1, tbl, "p", func(p *sim.Proc, tx *Txn) error {
			if err := tx.Insert(tbl, "p", key, "v"); err != nil {
				return err
			}
			return tx.Commit()
		})
		// Let the write become durable, then crash.
		env.RunFor(3 * c.cfg.GCPInterval)
		if d := c.DurableEpoch(); d < lastDurable {
			t.Fatalf("cycle %d: durable epoch regressed %d -> %d before crash", cycle, lastDurable, d)
		}
		env.Spawn("crash", func(p *sim.Proc) { c.CrashRestartCluster(p) })
		env.RunFor(2 * time.Second)
		if d := c.DurableEpoch(); d < lastDurable {
			t.Fatalf("cycle %d: durable epoch regressed %d -> %d across crash", cycle, lastDurable, d)
		}
		lastDurable = c.DurableEpoch()
		if cur := c.CurrentEpoch(); cur <= lastDurable {
			t.Fatalf("cycle %d: current epoch %d not ahead of durable %d after restart", cycle, cur, lastDurable)
		}
		// Every previously durable write is still there.
		for i := 0; i <= cycle; i++ {
			want := fmt.Sprintf("k%d", i)
			inTxn(t, env, c, client, 1, tbl, "p", func(p *sim.Proc, tx *Txn) error {
				v, ok, err := tx.ReadCommitted(tbl, "p", want)
				if err != nil {
					return err
				}
				if !ok || v != "v" {
					t.Errorf("cycle %d: durable row %s lost across crash: (%v,%v)", cycle, want, v, ok)
				}
				return tx.Commit()
			})
		}
	}
}

// TestReinstateClearsFalseDeclaration covers the lossy-network case: a
// node declared dead on missed heartbeats while still running. Reinstate
// clears the declaration without respawning its housekeeping processes,
// and the cluster keeps committing throughout.
func TestReinstateClearsFalseDeclaration(t *testing.T) {
	env, c, client := testCluster(t, true, 3)
	tbl := c.CreateTable("t", 64, TableOptions{})
	victim := c.DataNodes()[1]
	c.DeclareDeadForTest(victim)
	if !victim.DeclaredDead() || !victim.Alive() {
		t.Fatalf("setup: want alive+declared-dead, got alive=%v declared=%v",
			victim.Alive(), victim.DeclaredDead())
	}
	env.Spawn("reinstate", func(p *sim.Proc) { c.Reinstate(p, victim) })
	env.RunFor(2 * time.Second)
	if victim.DeclaredDead() {
		t.Fatal("Reinstate did not clear the declaration")
	}
	inTxn(t, env, c, client, 1, tbl, "p", func(p *sim.Proc, tx *Txn) error {
		if err := tx.Insert(tbl, "p", "k", "v"); err != nil {
			return err
		}
		return tx.Commit()
	})
	// Reinstate on a healthy node is a no-op.
	env.Spawn("noop", func(p *sim.Proc) { c.Reinstate(p, victim) })
	env.RunFor(time.Second)
	if victim.DeclaredDead() || !victim.Alive() {
		t.Fatal("Reinstate perturbed a healthy node")
	}
}
