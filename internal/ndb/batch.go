package ndb

import (
	"strconv"

	"hopsfscl/internal/sim"
	"hopsfscl/internal/trace"
)

// This file implements the batched read API of the primary-key-batched path
// resolution protocol (HopsFS [23] §3.2.2 and the λFS elasticity argument):
// instead of one serial round trip per row, the transaction coordinator fans
// all reads out to their routed replicas in one shot. Rows are grouped by
// target datanode, each group travels as a single request/response pair, and
// the groups proceed concurrently. Per-row routing honors the same rules as
// ReadCommitted/ScanPrefix: fully replicated tables serve from the TC, Read
// Backup tables from the replica nearest the TC, plain tables from the
// primary replica. The per-row LDM charges flow through DataNode.use, so the
// executor batching cost model (threads.go) amortizes them exactly as NDB's
// LDM threads do for a multi-row TCKEYREQ train.

// BatchGet names one row of a ReadBatch: a committed, lock-free point read.
type BatchGet struct {
	Table   *Table
	PartKey string
	Key     string
}

// BatchVal is the result of one BatchGet.
type BatchVal struct {
	Val Value
	OK  bool
}

// BatchScan names one partition-pruned prefix scan of a ScanBatch.
type BatchScan struct {
	Table   *Table
	PartKey string
	Prefix  string
}

// batchRowOverhead is the nominal wire size each additional row key adds to
// a batched request beyond the first.
const batchRowOverhead = 24

// batchGroup is the per-target slice of a batch: the rows (indices into the
// caller's request slice) served by one datanode, plus the §IV-A4 proximity
// of that datanode to the TC. rows is groupByTarget's counting scratch.
type batchGroup struct {
	target *DataNode
	prox   int
	rows   int
	idx    []int
}

// routeRow resolves the read target for one row of table at partKey,
// following ReadCommitted's routing rules. It returns the chosen datanode,
// its replica slot (-1 when the TC serves a fully replicated row it does not
// own), and the row's partition.
func (t *Txn) routeRow(table *Table, partKey string) (*DataNode, int, *Partition) {
	part := table.partitionFor(partKey)
	t.heatTouch(part)
	reps := part.replicas()
	if len(reps) == 0 {
		return nil, -1, part
	}
	var target *DataNode
	slot := -1
	switch {
	case table.opts.FullyReplicated:
		target = t.tc
		for i, r := range reps {
			if r == target {
				slot = i
			}
		}
	case table.opts.ReadBackup:
		best := ProximityRemote + 1
		for i, r := range reps {
			if !r.Alive() {
				continue
			}
			if d := domainProximity(t.tc.Node, t.tc.Domain, r); d < best {
				best, target, slot = d, r, i
			}
		}
	default:
		target, slot = reps[0], 0
	}
	if target != nil && !target.Alive() {
		target = nil
	}
	return target, slot, part
}

// groupByTarget routes every row and groups the row indices by target
// datanode, preserving first-appearance order for determinism. route is
// called once per row index. Batches are small (a path's worth of rows over
// a handful of targets), so groups are found by linear scan and the index
// lists are carved out of one shared array — no per-batch map, no per-group
// slice growth.
func groupByTarget(sc *batchScratch, n int, route func(i int) (*DataNode, bool)) ([]*batchGroup, bool) {
	if cap(sc.targets) < n {
		sc.targets = make([]*DataNode, n)
	}
	targets := sc.targets[:n]
	for i := 0; i < n; i++ {
		target, ok := route(i)
		if !ok {
			return nil, false
		}
		targets[i] = target
	}
	// backing is pre-sized so appends never reallocate: pointers handed out
	// in groups stay valid.
	if cap(sc.backing) < n {
		sc.backing = make([]batchGroup, 0, n)
		sc.groups = make([]*batchGroup, 0, n)
		sc.buf = make([]int, 0, n)
	}
	backing := sc.backing[:0]
	groups := sc.groups[:0]
	for _, target := range targets {
		g := findGroup(groups, target)
		if g == nil {
			backing = append(backing, batchGroup{target: target})
			g = &backing[len(backing)-1]
			groups = append(groups, g)
		}
		g.rows++
	}
	buf := sc.buf[:0]
	for _, g := range groups {
		g.idx = buf[len(buf) : len(buf) : len(buf)+g.rows]
		buf = buf[:len(buf)+g.rows]
	}
	for i, target := range targets {
		g := findGroup(groups, target)
		g.idx = append(g.idx, i)
	}
	return groups, true
}

func findGroup(groups []*batchGroup, target *DataNode) *batchGroup {
	for _, g := range groups {
		if g.target == target {
			return g
		}
	}
	return nil
}

// ReadBatch reads the committed values of all rows in one batched fan-out,
// returning results positionally. Routing is per row (see the file comment);
// rows sharing a target travel together, distinct targets are visited
// concurrently. The whole batch is one "batch_read" child span, and the
// registry counts rows per proximity class of their serving replica. Any
// unreachable target aborts the transaction, as ReadCommitted would.
func (t *Txn) ReadBatch(gets []BatchGet) ([]BatchVal, error) {
	if t.done {
		return nil, ErrAborted
	}
	out := make([]BatchVal, len(gets))
	if len(gets) == 0 {
		return out, nil
	}
	cfg := &t.c.cfg
	// One coordinator pass routes the whole key train (§II-B: a multi-row
	// TCKEYREQ is a single TC job, not one per row).
	t.tc.use(t.p, TC, cfg.Costs.TCOp)

	sc := t.c.getScratch()
	defer t.c.putScratch(sc)
	slots := sc.intsFor(len(gets))
	parts := sc.partsFor(len(gets))
	groups, ok := groupByTarget(sc, len(gets), func(i int) (*DataNode, bool) {
		target, slot, part := t.routeRow(gets[i].Table, gets[i].PartKey)
		slots[i], parts[i] = slot, part
		return target, target != nil
	})
	if !ok {
		return nil, t.failAbort()
	}

	serve := func(p *sim.Proc, g *batchGroup) bool {
		target := g.target
		if target != t.tc {
			req := reqSize + batchRowOverhead*(len(g.idx)-1)
			if !t.c.net.TravelDeferred(p, t.tc.Node, target.Node, req, cfg.RPCTimeout) {
				return false
			}
			target.recv(p)
		}
		resp := ackSize
		for _, i := range g.idx {
			target.use(p, LDM, cfg.Costs.LDMRead)
			val, exists := parts[i].committed(gets[i].PartKey, gets[i].Key)
			out[i] = BatchVal{Val: val, OK: exists}
			if slots[i] >= 0 {
				parts[i].reads[slots[i]]++
			}
			resp += gets[i].Table.rowSize
		}
		t.c.Stats.Reads += int64(len(g.idx))
		if target != t.tc {
			target.send(p)
			if !t.c.net.TravelDeferred(p, target.Node, t.tc.Node, resp, cfg.RPCTimeout) {
				return false
			}
			t.tc.recv(p)
		}
		return true
	}
	if !t.runBatch("read", groups, len(gets), serve) {
		return nil, t.failAbort()
	}
	return out, nil
}

// ScanBatch runs all partition-pruned prefix scans in one batched fan-out,
// returning each scan's rows positionally (key-sorted, as ScanPrefix).
// Scans sharing a target replica travel together; distinct targets are
// visited concurrently — a level of a subtree walk costs one parallel round
// instead of one serial round trip per directory.
func (t *Txn) ScanBatch(scans []BatchScan) ([][]KV, error) {
	if t.done {
		return nil, ErrAborted
	}
	out := make([][]KV, len(scans))
	if len(scans) == 0 {
		return out, nil
	}
	cfg := &t.c.cfg
	t.tc.use(t.p, TC, cfg.Costs.TCOp)

	sc := t.c.getScratch()
	defer t.c.putScratch(sc)
	slots := sc.intsFor(len(scans))
	parts := sc.partsFor(len(scans))
	groups, ok := groupByTarget(sc, len(scans), func(i int) (*DataNode, bool) {
		target, slot, part := t.routeRow(scans[i].Table, scans[i].PartKey)
		slots[i], parts[i] = slot, part
		return target, target != nil
	})
	if !ok {
		return nil, t.failAbort()
	}

	serve := func(p *sim.Proc, g *batchGroup) bool {
		target := g.target
		if target != t.tc {
			req := reqSize + batchRowOverhead*(len(g.idx)-1)
			if !t.c.net.TravelDeferred(p, t.tc.Node, target.Node, req, cfg.RPCTimeout) {
				return false
			}
			target.recv(p)
		}
		resp := ackSize
		for _, i := range g.idx {
			rows := parts[i].scanPrefix(scans[i].PartKey, scans[i].Prefix)
			out[i] = rows
			// One LDM charge per small batch of rows scanned, minimum one
			// (the ScanPrefix cost model).
			for b := 0; b < 1+len(rows)/8; b++ {
				target.use(p, LDM, cfg.Costs.LDMRead)
			}
			if slots[i] >= 0 {
				parts[i].reads[slots[i]]++
			}
			resp += len(rows) * scans[i].Table.rowSize
		}
		t.c.Stats.Reads += int64(len(g.idx))
		if target != t.tc {
			target.send(p)
			if !t.c.net.TravelDeferred(p, target.Node, t.tc.Node, resp, cfg.RPCTimeout) {
				return false
			}
			t.tc.recv(p)
		}
		return true
	}
	if !t.runBatch("read", groups, len(scans), serve) {
		return nil, t.failAbort()
	}
	return out, nil
}

// runBatch executes the groups of one batch — inline when a single target
// serves everything, concurrently via sub-processes otherwise — under one
// "batch_<kind>" child span carrying row/target counts. kind is "read" or
// "write" and selects which registry family counts the fan-out. It returns
// false if any group failed (unreachable target, or a lock failure on the
// write path).
func (t *Txn) runBatch(kind string, groups []*batchGroup, rows int, serve func(p *sim.Proc, g *batchGroup) bool) bool {
	obs := t.c.obs
	sp := t.p.Span().Child("batch_"+kind, t.p.EffNow())
	var prev *trace.Span
	if sp != nil {
		sp.SetAttr("rows", strconv.Itoa(rows))
		sp.SetAttr("targets", strconv.Itoa(len(groups)))
		prev = t.p.SetSpan(sp)
	}
	defer func() {
		if sp != nil {
			sp.Finish(t.p.EffNow())
			t.p.SetSpan(prev)
		}
	}()
	if obs != nil {
		batches, rowsByProx := obs.batchReads, &obs.batchRows
		if kind == "write" {
			batches, rowsByProx = obs.batchWrites, &obs.batchWriteRows
		}
		batches.Add(1)
		for _, g := range groups {
			g.prox = domainProximity(t.tc.Node, t.tc.Domain, g.target)
			rowsByProx[g.prox].Add(int64(len(g.idx)))
		}
	}
	if len(groups) == 1 {
		return serve(t.p, groups[0])
	}
	// Concurrent deferred travel: each remote group is a pooled worker arm
	// starting from the transaction's current effective instant, so the
	// batch's latency is the slowest group, not the sum. The serve closure
	// is shared across arms and the results mailbox is pooled, so the
	// fan-out itself allocates nothing.
	t.p.Flush()
	fanSpan := sp
	if fanSpan == nil {
		fanSpan = t.p.Span()
	}
	results := t.c.getBoolMbx()
	for _, g := range groups {
		t.c.dispatch(fanTask{span: fanSpan, g: g, serve: serve, boolResults: results})
	}
	allOK := true
	for range groups {
		if !results.Recv(t.p) {
			allOK = false
		}
	}
	t.c.putBoolMbx(results)
	return allOK
}

// Annotate tags the calling process's active trace span (a no-op when
// tracing is off). Layers above use it to mark operations that took a
// batched path without threading the process handle around.
func (t *Txn) Annotate(key, value string) {
	t.p.Span().SetAttr(key, value)
}
