package ndb

import (
	"hopsfscl/internal/sim"
	"hopsfscl/internal/simnet"
)

// startBackground launches the cluster's housekeeping processes: a message
// server and a heartbeat prober per datanode, and the global checkpoint
// writer. They run until StopBackground is called (or the environment is
// closed); cluster simulations are normally driven with Env.RunFor.
func (c *Cluster) startBackground() {
	c.gcpEpoch = 1
	c.env.Spawn("ndb/gcp-ticker", func(p *sim.Proc) { c.gcpLoop(p) })
	for _, dn := range c.datanodes {
		dn := dn
		c.env.Spawn(dn.Node.Name()+"/server", func(p *sim.Proc) { dn.serve(p) })
		c.env.Spawn(dn.Node.Name()+"/hb", func(p *sim.Proc) { dn.heartbeatLoop(p) })
		c.env.Spawn(dn.Node.Name()+"/gcp", func(p *sim.Proc) { dn.checkpointLoop(p) })
	}
}

// StopBackground asks all housekeeping processes to exit at their next
// tick, letting Env.Run quiesce.
func (c *Cluster) StopBackground() { c.bgStop = true }

// serve drains the datanode's inbox: Complete messages from commit chains
// (charged to RECV and dropped) and shutdown orders from the arbitrator.
func (dn *DataNode) serve(p *sim.Proc) {
	for !dn.c.bgStop {
		msg, ok := dn.Node.Inbox.RecvTimeout(p, dn.c.cfg.HeartbeatInterval)
		if !ok {
			continue
		}
		switch msg.Payload {
		case "complete":
			dn.recv(p)
		case "shutdown":
			dn.shutdownSelf()
			return
		}
	}
}

// heartbeatLoop probes the next alive datanode in the ring (§II-B2's node
// failure and heartbeat protocols). Two consecutive missed probes declare
// the peer failed and trigger arbitration.
func (dn *DataNode) heartbeatLoop(p *sim.Proc) {
	misses := 0
	for !dn.c.bgStop {
		p.Sleep(dn.c.cfg.HeartbeatInterval)
		if !dn.Alive() {
			return
		}
		peer := dn.c.ringSuccessor(dn)
		if peer == nil {
			continue
		}
		ok := dn.c.net.Travel(p, dn.Node, peer.Node, ackSize, dn.c.cfg.RPCTimeout) &&
			dn.c.net.Travel(p, peer.Node, dn.Node, ackSize, dn.c.cfg.RPCTimeout)
		if !dn.Alive() {
			return
		}
		if ok {
			misses = 0
			continue
		}
		misses++
		if misses < 2 {
			continue
		}
		misses = 0
		dn.c.handleSuspectedFailure(p, dn, peer)
	}
}

// ringSuccessor returns the next datanode by index that is believed alive.
func (c *Cluster) ringSuccessor(dn *DataNode) *DataNode {
	n := len(c.datanodes)
	for i := 1; i < n; i++ {
		peer := c.datanodes[(dn.Index+i)%n]
		if peer.declaredDead {
			continue
		}
		return peer
	}
	return nil
}

// handleSuspectedFailure runs the arbitration protocol of §IV-A2: the
// detector asks the elected arbitrator whether its side of the cluster may
// survive. The arbitrator accepts the first claimant of an epoch, orders
// unreachable-from-claimant nodes to shut down, and the surviving side
// promotes backup partitions for every node now dead.
func (c *Cluster) handleSuspectedFailure(p *sim.Proc, detector, suspect *DataNode) {
	if suspect.declaredDead || !detector.Alive() {
		return
	}
	arb := c.arbitrator()
	if !c.splitBrainPossible(detector) {
		// The failed set could not form a viable cluster on its own (it
		// lacks a complete node-group coverage), so no split brain is
		// possible and the survivors may continue without arbitration.
		arb = nil
	}
	if arb != nil {
		// Round trip to the arbitrator; failure to reach it means the
		// detector is on the losing side of a partition and must shut
		// down gracefully.
		if !c.net.Travel(p, detector.Node, arb.Node, reqSize, c.cfg.RPCTimeout) {
			detector.shutdownSelf()
			return
		}
		granted := c.arbitrate(detector)
		if !c.net.Travel(p, arb.Node, detector.Node, ackSize, c.cfg.RPCTimeout) {
			detector.shutdownSelf()
			return
		}
		if !granted {
			detector.shutdownSelf()
			return
		}
	}
	if suspect.Alive() && !c.reachable(detector, suspect) {
		// Partitioned, not dead: the arbitrator has already ordered the
		// other side down; nothing more for the detector to do here.
		return
	}
	if suspect.Alive() && c.reachable(detector, suspect) &&
		c.net.Travel(p, detector.Node, suspect.Node, ackSize, c.cfg.RPCTimeout) &&
		c.net.Travel(p, suspect.Node, detector.Node, ackSize, c.cfg.RPCTimeout) {
		// Final direct probe before declaring: the suspect answers, so the
		// missed heartbeats were a transient (a healed partition or a lossy
		// spell), not a failure. Without this re-check a node whose misses
		// accumulated during a partition would be declared dead moments
		// after the network recovered.
		return
	}
	c.declareDead(suspect)
}

// splitBrainPossible applies NDB's viability rule: arbitration is required
// only when the set of nodes the detector cannot reach (but which may still
// be running) covers at least one member of every node group — i.e. the
// other side could serve all data and form a second cluster.
func (c *Cluster) splitBrainPossible(detector *DataNode) bool {
	for _, group := range c.groups {
		covered := false
		for _, dn := range group {
			if dn.declaredDead || dn.shutdown {
				continue
			}
			if dn.Node.Alive() && !c.reachable(detector, dn) {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

// arbitrate runs at the arbitrator: the first claimant of an epoch wins;
// every alive datanode the claimant cannot reach is ordered to shut down.
func (c *Cluster) arbitrate(claimant *DataNode) bool {
	if claimant.shutdown {
		return false
	}
	winner, decided := c.arbGranted[c.arbEpoch]
	if decided {
		// A second claimant in the same epoch wins only if it is on the
		// winner's side.
		return c.reachable(claimant, c.datanodes[winner])
	}
	c.arbGranted[c.arbEpoch] = claimant.Index
	arb := c.arbitrator()
	for _, dn := range c.datanodes {
		if dn == claimant || !dn.Alive() {
			continue
		}
		if !c.reachable(claimant, dn) {
			c.net.Send(arb.Node, dn.Node, ackSize, "shutdown")
		}
	}
	return true
}

// NextArbitrationEpoch starts a fresh arbitration window. Failure-injection
// harnesses call it between distinct failure scenarios.
func (c *Cluster) NextArbitrationEpoch() { c.arbEpoch++ }

// reachable reports whether a's zone can talk to b's zone.
func (c *Cluster) reachable(a, b *DataNode) bool {
	return !c.net.Partitioned(a.Node.Zone(), b.Node.Zone())
}

// arbitrator returns the elected management node: the first one alive
// (§IV-A2 — if M1 fails, another management node is elected).
func (c *Cluster) arbitrator() *MgmtNode {
	for _, m := range c.mgmt {
		if m.Node.Alive() {
			return m
		}
	}
	return nil
}

// declareDead marks a datanode dead cluster-wide and promotes backup
// partitions on the surviving members of its node group (§IV-A2).
func (c *Cluster) declareDead(suspect *DataNode) {
	if suspect.declaredDead {
		return
	}
	suspect.declaredDead = true
	for _, t := range c.tables {
		for _, part := range t.partitions {
			part.promoteFrom(suspect)
		}
	}
}

// DeclareDeadForTest exposes failure declaration to integration tests and
// harnesses that kill nodes directly.
func (c *Cluster) DeclareDeadForTest(dn *DataNode) { c.declareDead(dn) }

// shutdownSelf takes the datanode out of the cluster gracefully.
func (dn *DataNode) shutdownSelf() {
	if dn.shutdown {
		return
	}
	dn.shutdown = true
	dn.Node.Fail()
	dn.c.declareDead(dn)
}

// Shutdown reports whether the node shut itself down after losing
// arbitration.
func (dn *DataNode) Shutdown() bool { return dn.shutdown }

// checkpointLoop implements the global checkpoint protocol: every
// GCPInterval the REDO log accumulated since the last checkpoint is flushed
// to the node's disk (the only disk NDB uses in steady state, §V-D1).
func (dn *DataNode) checkpointLoop(p *sim.Proc) {
	for !dn.c.bgStop {
		p.Sleep(dn.c.cfg.GCPInterval)
		if !dn.Alive() {
			return
		}
		if dn.redoPending == 0 {
			continue
		}
		dn.use(p, IO, dn.c.cfg.Costs.LDMCommit)
		dn.Node.AsyncDiskWrite(int(dn.redoPending))
		dn.redoPending = 0
	}
}

// Rejoin brings a failed or shut-down datanode back into the cluster: the
// node recovers, copies the current data of its node group's partitions
// from the surviving primaries (a full node restart recovery, charged as
// network transfer), restarts its housekeeping processes, and resumes as a
// backup replica. The caller's process is blocked for the duration of the
// resync.
func (c *Cluster) Rejoin(p *sim.Proc, dn *DataNode) {
	if dn.Alive() && !dn.declaredDead {
		return
	}
	dn.Node.Recover()
	dn.shutdown = false
	c.resync(p, dn)
	dn.declaredDead = false
	c.env.Spawn(dn.Node.Name()+"/server", func(sp *sim.Proc) { dn.serve(sp) })
	c.env.Spawn(dn.Node.Name()+"/hb", func(sp *sim.Proc) { dn.heartbeatLoop(sp) })
	c.env.Spawn(dn.Node.Name()+"/gcp", func(sp *sim.Proc) { dn.checkpointLoop(sp) })
}

// Reinstate clears a false failure declaration: a node that missed
// heartbeats (lossy links) can be declared dead while still running. It is
// excluded from its group's replica lists but its housekeeping processes
// never exited, so rejoining it must not respawn them — it only resyncs
// the partitions it missed and resumes as a backup.
func (c *Cluster) Reinstate(p *sim.Proc, dn *DataNode) {
	if !dn.Alive() || !dn.declaredDead {
		return
	}
	c.resync(p, dn)
	dn.declaredDead = false
}

// resync copies the current data of the node's group's partitions from the
// surviving primaries (a full node restart recovery, charged as network
// transfer). The caller's process is blocked for the duration.
func (c *Cluster) resync(p *sim.Proc, dn *DataNode) {
	// Sorted table order: each copy is a network transfer, and ranging the
	// table map here would reorder events run to run.
	for _, t := range c.Tables() {
		for _, part := range t.partitions {
			if part.group != dn.Group && !t.opts.FullyReplicated {
				continue
			}
			reps := part.replicas()
			if len(reps) == 0 || reps[0] == dn {
				continue
			}
			var rows int
			for _, bucket := range part.rows {
				rows += len(bucket)
			}
			if rows == 0 {
				continue
			}
			size := rows * t.rowSize
			if c.net.Travel(p, reps[0].Node, dn.Node, size, 5*c.cfg.RPCTimeout) {
				dn.redoPending += int64(size)
			}
		}
	}
}

// RecoverZone rejoins every datanode and management node of a zone after
// an AZ failure or partition has been repaired.
func (c *Cluster) RecoverZone(p *sim.Proc, z simnet.ZoneID) {
	for _, m := range c.mgmt {
		if m.Node.Zone() == z {
			m.Node.Recover()
		}
	}
	for _, dn := range c.datanodes {
		if dn.Node.Zone() == z {
			c.Rejoin(p, dn)
		}
	}
}

// FailZone fails every datanode and management node in the given zone —
// the paper's AZ-failure scenario (§V-F).
func (c *Cluster) FailZone(z simnet.ZoneID) {
	for _, dn := range c.datanodes {
		if dn.Node.Zone() == z {
			dn.Node.Fail()
		}
	}
	for _, m := range c.mgmt {
		if m.Node.Zone() == z {
			m.Node.Fail()
		}
	}
}
