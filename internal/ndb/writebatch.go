package ndb

import "hopsfscl/internal/sim"

// This file implements the batched write path: the write-side twin of
// batch.go. Real NDB packs operations destined for the same datanode into
// one TCKEYREQ train, which is what the HopsFS line of work leans on for
// multi-row metadata transactions (HopsFS §3.2.2). WriteBatch stages N
// exclusive-locked writes with one message pair per primary datanode
// instead of one serial TC round trip per row; Commit then coalesces staged
// rows that share a replica chain into commit trains (see buildTrains in
// txn.go). Locking still goes through lockRow per row, so the contention
// ledger, lock-wait accounting, and deadlock (timeout) behavior are exactly
// those of the serial path.

// BatchWrite names one row of a WriteBatch: an insert/update (Del false)
// or a delete (Del true), staged under an exclusive lock like Write.
type BatchWrite struct {
	Table   *Table
	PartKey string
	Key     string
	Val     Value
	Del     bool
}

// WriteBatch stages all mutations at once: rows are grouped by primary
// datanode, each group's locks are acquired with one request/response pair
// carrying the whole row train, and distinct primaries proceed
// concurrently. A single-row batch is message-for-message identical to
// Write. Any failure — unreachable primary or a lock timeout on any row —
// aborts the transaction exactly as the serial path would, returning the
// error of the first failed row in request order.
func (t *Txn) WriteBatch(items []BatchWrite) error {
	if t.done {
		return ErrAborted
	}
	if len(items) == 0 {
		return nil
	}
	if t.c.cfg.DisableWriteBatching {
		// The serial reference path: one TC round trip per row, exactly as
		// independent Write calls would issue.
		for _, it := range items {
			if err := t.Write(it.Table, it.PartKey, it.Key, it.Val, it.Del); err != nil {
				return err
			}
		}
		return nil
	}
	cfg := &t.c.cfg
	// One coordinator pass routes the whole row train (§II-B: a multi-row
	// TCKEYREQ is a single TC job, not one per row).
	t.tc.use(t.p, TC, cfg.Costs.TCOp)

	sc := t.c.getScratch()
	defer t.c.putScratch(sc)
	parts := sc.partsFor(len(items))
	groups, ok := groupByTarget(sc, len(items), func(i int) (*DataNode, bool) {
		part := items[i].Table.partitionFor(items[i].PartKey)
		t.heatTouch(part)
		parts[i] = part
		reps := part.replicas()
		if len(reps) == 0 {
			return nil, false
		}
		// Writes always lock on the acting primary, as Write does.
		return reps[0], true
	})
	if !ok {
		return t.failAbort()
	}

	errs := sc.errsFor(len(items))
	serve := func(p *sim.Proc, g *batchGroup) bool {
		target := g.target
		if target != t.tc {
			req := reqSize + batchRowOverhead*(len(g.idx)-1)
			for _, i := range g.idx {
				req += items[i].Table.rowSize
			}
			if !t.c.net.TravelDeferred(p, t.tc.Node, target.Node, req, cfg.RPCTimeout) {
				errs[g.idx[0]] = ErrNodeUnavailable
				return false
			}
			target.recv(p)
		}
		for _, i := range g.idx {
			// Per-row locking: conflicts, the ledger, and the deadlock
			// timeout behave exactly as on the serial path. A failure stops
			// this group where a serial Write sequence would have stopped.
			if err := t.lockRowOn(p, parts[i], items[i].PartKey, items[i].Key, LockExclusive); err != nil {
				errs[i] = err
				return false
			}
			target.use(p, LDM, cfg.Costs.LDMWrite)
			t.c.Stats.Writes++
		}
		if target != t.tc {
			target.send(p)
			if !t.c.net.TravelDeferred(p, target.Node, t.tc.Node, ackSize, cfg.RPCTimeout) {
				errs[g.idx[0]] = ErrNodeUnavailable
				return false
			}
			t.tc.recv(p)
		}
		return true
	}
	if !t.runBatch("write", groups, len(items), serve) {
		// Abort semantics match the serial path: every lock taken so far —
		// including those of groups that succeeded before another failed —
		// is released, nothing is staged, and the first failed row in
		// request order decides the returned error.
		t.releaseAll()
		t.finish(false)
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return ErrNodeUnavailable
	}
	// Stage positionally only after every group succeeded, in request
	// order, so commit-train packing is deterministic and matches the order
	// serial Writes would have staged.
	for i := range items {
		t.writes = append(t.writes, writeOp{part: parts[i], pk: items[i].PartKey, key: items[i].Key, val: items[i].Val, del: items[i].Del})
	}
	return nil
}
