package ndb

import (
	"sort"
	"strconv"
	"strings"
	"time"

	"hopsfscl/internal/sim"
	"hopsfscl/internal/simnet"
	"hopsfscl/internal/trace"
)

// Txn is a transaction coordinated by one datanode's TC thread on behalf of
// an API client (a HopsFS metadata server). The calling process drives the
// protocol; every hop between nodes is a simulated message with latency,
// bandwidth, and CPU accounting.
//
// Isolation follows NDB: read committed by default, with explicit row locks
// for stronger guarantees (§II-B). Locks follow strict two-phase locking
// and are released as the commit chain passes the primary replica.
type Txn struct {
	c            *Cluster
	p            *sim.Proc
	id           uint64
	origin       *simnet.Node
	originDomain simnet.ZoneID
	tc           *DataNode

	locks  []lockRef
	writes []writeOp
	done   bool
}

type lockRef struct {
	part *Partition
	pk   string
	key  string
}

type writeOp struct {
	part *Partition
	pk   string
	key  string
	val  Value
	del  bool
}

// reqSize/ackSize are nominal wire sizes of protocol messages.
const (
	reqSize = 128
	ackSize = 64
)

// Begin starts a transaction from the given origin node (with the origin's
// LocationDomainId), using table and partKey as the distribution-aware hint
// for transaction-coordinator selection (§IV-A5). A nil table or empty
// partKey is the no-hint fallback (case 4).
func (c *Cluster) Begin(p *sim.Proc, origin *simnet.Node, originDomain simnet.ZoneID, table *Table, partKey string) (*Txn, error) {
	tc := c.selectTC(origin, originDomain, table, partKey)
	if tc == nil {
		return nil, ErrNoNodes
	}
	if sp := p.Span(); c.obs != nil || sp != nil {
		d := domainProximity(origin, originDomain, tc)
		if c.obs != nil {
			c.obs.tcSelect[d].Add(1)
		}
		sp.SetAttr("tc", tc.Node.Name())
		sp.SetAttr("tc_prox", proximityLabel(d))
	}
	t := &Txn{
		c:            c,
		p:            p,
		id:           c.nextTxnID(),
		origin:       origin,
		originDomain: originDomain,
		tc:           tc,
	}
	if c.activeOps != nil {
		// Name the transaction after the client op driving it (the process
		// name for untraced internal work), so the contention ledger can
		// label both sides of a wait-for edge.
		op := p.Span().OpName()
		if op == "" {
			op = p.Name()
		}
		c.activeOps[t.id] = op
	}
	if !c.net.TravelDeferred(p, origin, tc.Node, reqSize, c.cfg.RPCTimeout) {
		return nil, ErrNodeUnavailable
	}
	tc.recv(p)
	tc.use(p, TC, c.cfg.Costs.TCBegin)
	c.Stats.Begun++
	return t, nil
}

func (c *Cluster) nextTxnID() uint64 {
	c.txnSeq++
	return c.txnSeq
}

// selectTC implements the four-case AZ-aware coordinator selection policy
// of §IV-A5. Ties are broken by the candidate order (primary replica first,
// as NDB's distribution awareness orders them), then randomly among nodes
// of equal proximity to spread coordination load.
func (c *Cluster) selectTC(origin *simnet.Node, originDomain simnet.ZoneID, table *Table, partKey string) *DataNode {
	var candidates []*DataNode
	switch {
	case table != nil && partKey != "" && table.opts.FullyReplicated:
		// Case 2: a replica exists on every node; use them all.
		candidates = c.datanodes
	case table != nil && partKey != "":
		// Cases 1 and 3: the nodes holding the hinted partition,
		// primary replica first.
		candidates = table.partitionFor(partKey).replicas()
	default:
		// Case 4: no usable hint; all datanodes by proximity.
		candidates = c.datanodes
	}
	best := ProximityRemote + 1
	var pool []*DataNode
	for _, dn := range candidates {
		if !dn.Alive() {
			continue
		}
		d := domainProximity(origin, originDomain, dn)
		if d < best {
			best = d
			pool = pool[:0]
		}
		if d == best {
			pool = append(pool, dn)
		}
	}
	switch len(pool) {
	case 0:
		return nil
	case 1:
		return pool[0]
	}
	if best == ProximityRemote {
		// No locality information distinguishes the pool; NDB prefers the
		// first candidate (the primary replica under distribution
		// awareness).
		return pool[0]
	}
	return pool[c.env.Rand().Intn(len(pool))]
}

// Proximity distances mirror simnet's but operate on configured location
// domains, not physical zones: an unconfigured deployment gets no locality.
const (
	ProximitySameHost = simnet.ProximitySameHost
	ProximitySameZone = simnet.ProximitySameZone
	ProximityRemote   = simnet.ProximityRemote
)

// domainProximity is the §IV-A4 score between a caller (its node and
// configured domain) and a datanode, using LocationDomainIds.
func domainProximity(origin *simnet.Node, originDomain simnet.ZoneID, dn *DataNode) int {
	if origin.Host() == dn.Node.Host() && originDomain == dn.Domain && originDomain != simnet.ZoneUnset {
		return ProximitySameHost
	}
	if originDomain != simnet.ZoneUnset && originDomain == dn.Domain {
		return ProximitySameZone
	}
	return ProximityRemote
}

// ID returns the transaction id.
func (t *Txn) ID() uint64 { return t.id }

// Now returns the executing process's current virtual time, so callers can
// timestamp derived observations (heat touches) without holding the proc.
func (t *Txn) Now() time.Duration { return t.p.Now() }

// heatTouch attributes one row access to the accessed partition in the
// cluster's heat collector; a no-op for uninstrumented clusters.
func (t *Txn) heatTouch(part *Partition) {
	if t.c.heat != nil {
		t.c.heat.TouchPartition(t.p.Now(), part.table.name, part.index)
	}
}

// Coordinator returns the datanode coordinating this transaction.
func (t *Txn) Coordinator() *DataNode { return t.tc }

// Cluster returns the cluster this transaction runs against.
func (t *Txn) Cluster() *Cluster { return t.c }

// HasWrites reports whether the transaction has staged any writes; the
// shard router uses it to pick between the single-cluster fast path and
// the cross-shard intent protocol.
func (t *Txn) HasWrites() bool { return len(t.writes) > 0 }

// StagedWrites calls fn for every write staged so far, in staging order.
// The shard router serializes these into a durable intent record before
// committing a cross-shard transaction, so a crash between the per-shard
// commits leaves enough to finish or undo the operation.
func (t *Txn) StagedWrites(fn func(table *Table, partKey, key string, val Value, del bool)) {
	for _, w := range t.writes {
		fn(w.part.table, w.pk, w.key, w.val, w.del)
	}
}

// ReadCommitted reads the committed value of a row without locking. Routing
// follows §IV-A5: Read Backup tables may serve from the TC-local replica
// (primary or backup), fully replicated tables serve from the TC itself,
// and plain tables always read the primary replica.
func (t *Txn) ReadCommitted(table *Table, partKey, key string) (Value, bool, error) {
	if t.done {
		return nil, false, ErrAborted
	}
	cfg := &t.c.cfg
	t.tc.use(t.p, TC, cfg.Costs.TCOp)
	part := table.partitionFor(partKey)
	t.heatTouch(part)
	reps := part.replicas()
	if len(reps) == 0 {
		return nil, false, t.failAbort()
	}

	var target *DataNode
	slot := -1
	switch {
	case table.opts.FullyReplicated:
		// Every datanode has the row; the TC serves it locally.
		target = t.tc
		for i, r := range reps {
			if r == target {
				slot = i
			}
		}
	case table.opts.ReadBackup:
		// Any replica is consistent; prefer the one nearest the TC.
		best := ProximityRemote + 1
		for i, r := range reps {
			if !r.Alive() {
				continue
			}
			d := domainProximity(t.tc.Node, t.tc.Domain, r)
			if d < best {
				best, target, slot = d, r, i
			}
		}
	default:
		// Reads are rerouted to the primary replica.
		target, slot = reps[0], 0
	}
	if target == nil || !target.Alive() {
		return nil, false, t.failAbort()
	}
	t.c.Stats.Reads++
	if slot >= 0 {
		part.reads[slot]++
	}
	if target != t.tc {
		if !t.c.net.TravelDeferred(t.p, t.tc.Node, target.Node, reqSize, cfg.RPCTimeout) {
			return nil, false, t.failAbort()
		}
		target.recv(t.p)
	}
	target.use(t.p, LDM, cfg.Costs.LDMRead)
	val, ok := part.committed(partKey, key)
	if target != t.tc {
		target.send(t.p)
		if !t.c.net.TravelDeferred(t.p, target.Node, t.tc.Node, ackSize+table.rowSize, cfg.RPCTimeout) {
			return nil, false, t.failAbort()
		}
		t.tc.recv(t.p)
	}
	return val, ok, nil
}

// KV is one row returned by a scan.
type KV struct {
	Key string
	Val Value
}

// ScanPrefix reads all committed rows of the hinted partition whose key
// starts with prefix, in key order. HopsFS uses it for partition-pruned
// index scans (directory listings): inodes are partitioned by parent id, so
// a directory's children live in a single partition. Routing follows the
// same rules as ReadCommitted.
func (t *Txn) ScanPrefix(table *Table, partKey, prefix string) ([]KV, error) {
	if t.done {
		return nil, ErrAborted
	}
	cfg := &t.c.cfg
	t.tc.use(t.p, TC, cfg.Costs.TCOp)
	part := table.partitionFor(partKey)
	t.heatTouch(part)
	reps := part.replicas()
	if len(reps) == 0 {
		return nil, t.failAbort()
	}
	target := reps[0]
	slot := 0
	if table.opts.FullyReplicated {
		target, slot = t.tc, -1
	} else if table.opts.ReadBackup {
		best := ProximityRemote + 1
		for i, r := range reps {
			d := domainProximity(t.tc.Node, t.tc.Domain, r)
			if d < best {
				best, target, slot = d, r, i
			}
		}
	}
	if target != t.tc {
		if !t.c.net.TravelDeferred(t.p, t.tc.Node, target.Node, reqSize, cfg.RPCTimeout) {
			return nil, t.failAbort()
		}
		target.recv(t.p)
	}
	out := part.scanPrefix(partKey, prefix)
	// One LDM charge per small batch of rows scanned, minimum one.
	batches := 1 + len(out)/8
	for i := 0; i < batches; i++ {
		target.use(t.p, LDM, cfg.Costs.LDMRead)
	}
	t.c.Stats.Reads++
	if slot >= 0 {
		part.reads[slot]++
	}
	if target != t.tc {
		target.send(t.p)
		size := ackSize + len(out)*table.rowSize
		if !t.c.net.TravelDeferred(t.p, target.Node, t.tc.Node, size, cfg.RPCTimeout) {
			return nil, t.failAbort()
		}
		t.tc.recv(t.p)
	}
	return out, nil
}

// ScanTablePrefix scans every partition of the table for committed rows
// whose key starts with prefix, in key order. It exists for listings whose
// rows are deliberately scattered across partitions (a HopsFS root
// directory listing); it costs one routed scan per partition.
func (t *Txn) ScanTablePrefix(table *Table, prefix string) ([]KV, error) {
	if t.done {
		return nil, ErrAborted
	}
	cfg := &t.c.cfg
	var out []KV
	for _, part := range table.partitions {
		t.tc.use(t.p, TC, cfg.Costs.TCOp)
		reps := part.replicas()
		if len(reps) == 0 {
			return nil, t.failAbort()
		}
		target := reps[0]
		if table.opts.FullyReplicated {
			target = t.tc
		} else if table.opts.ReadBackup {
			best := ProximityRemote + 1
			for _, r := range reps {
				if d := domainProximity(t.tc.Node, t.tc.Domain, r); d < best {
					best, target = d, r
				}
			}
		}
		if target != t.tc {
			if !t.c.net.TravelDeferred(t.p, t.tc.Node, target.Node, reqSize, cfg.RPCTimeout) {
				return nil, t.failAbort()
			}
			target.recv(t.p)
		}
		var found int
		for _, bucket := range part.rows {
			for k, r := range bucket {
				if r.exists && strings.HasPrefix(k, prefix) {
					out = append(out, KV{Key: k, Val: r.val})
					found++
				}
			}
		}
		for i := 0; i < 1+found/8; i++ {
			target.use(t.p, LDM, cfg.Costs.LDMRead)
		}
		t.c.Stats.Reads++
		if target != t.tc {
			target.send(t.p)
			if !t.c.net.TravelDeferred(t.p, target.Node, t.tc.Node, ackSize+found*table.rowSize, cfg.RPCTimeout) {
				return nil, t.failAbort()
			}
			t.tc.recv(t.p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// ReadLocked reads a row under a shared or exclusive lock. Locked reads
// always go to the primary replica (§II-B2) and guarantee the latest
// committed data.
func (t *Txn) ReadLocked(table *Table, partKey, key string, mode LockMode) (Value, bool, error) {
	if t.done {
		return nil, false, ErrAborted
	}
	cfg := &t.c.cfg
	t.tc.use(t.p, TC, cfg.Costs.TCOp)
	part := table.partitionFor(partKey)
	t.heatTouch(part)
	reps := part.replicas()
	if len(reps) == 0 {
		return nil, false, t.failAbort()
	}
	primary := reps[0]
	if primary != t.tc {
		if !t.c.net.TravelDeferred(t.p, t.tc.Node, primary.Node, reqSize, cfg.RPCTimeout) {
			return nil, false, t.failAbort()
		}
		primary.recv(t.p)
	}
	if err := t.lockRow(part, partKey, key, mode); err != nil {
		t.abortLocked()
		return nil, false, err
	}
	primary.use(t.p, LDM, cfg.Costs.LDMRead)
	t.c.Stats.Reads++
	part.reads[0]++
	val, ok := part.committed(partKey, key)
	if primary != t.tc {
		primary.send(t.p)
		if !t.c.net.TravelDeferred(t.p, primary.Node, t.tc.Node, ackSize+table.rowSize, cfg.RPCTimeout) {
			return nil, false, t.failAbort()
		}
		t.tc.recv(t.p)
	}
	return val, ok, nil
}

// Write stages an insert/update (val != nil, del == false) or delete
// (del == true) of a row, taking an exclusive lock on the primary replica
// at operation time, as NDB does. The mutation becomes visible at commit.
func (t *Txn) Write(table *Table, partKey, key string, val Value, del bool) error {
	if t.done {
		return ErrAborted
	}
	cfg := &t.c.cfg
	t.tc.use(t.p, TC, cfg.Costs.TCOp)
	part := table.partitionFor(partKey)
	t.heatTouch(part)
	reps := part.replicas()
	if len(reps) == 0 {
		return t.failAbort()
	}
	primary := reps[0]
	if primary != t.tc {
		if !t.c.net.TravelDeferred(t.p, t.tc.Node, primary.Node, reqSize+table.rowSize, cfg.RPCTimeout) {
			return t.failAbort()
		}
		primary.recv(t.p)
	}
	if err := t.lockRow(part, partKey, key, LockExclusive); err != nil {
		t.abortLocked()
		return err
	}
	primary.use(t.p, LDM, cfg.Costs.LDMWrite)
	if primary != t.tc {
		primary.send(t.p)
		if !t.c.net.TravelDeferred(t.p, primary.Node, t.tc.Node, ackSize, cfg.RPCTimeout) {
			return t.failAbort()
		}
		t.tc.recv(t.p)
	}
	t.writes = append(t.writes, writeOp{part: part, pk: partKey, key: key, val: val, del: del})
	t.c.Stats.Writes++
	return nil
}

// Insert is Write with a value.
func (t *Txn) Insert(table *Table, partKey, key string, val Value) error {
	return t.Write(table, partKey, key, val, false)
}

// Delete is Write marking removal.
func (t *Txn) Delete(table *Table, partKey, key string) error {
	return t.Write(table, partKey, key, "", true)
}

// Commit runs the NDB commit protocol (§II-B2, Figure 2): a linear 2PC
// pass per commit train across the train's replica chain, committing at the
// primary on the reverse pass. Staged writes that share a replica chain
// (same partition node group, same replica order — or the same full chain
// for fully replicated rows) ride one train, so a multi-row transaction on
// one chain costs one Prepare/Commit/Complete pass carrying the combined
// payload instead of one chain per row. For Read Backup tables the client
// Ack is delayed until every backup has acknowledged the Complete phase
// (§IV-A3); for fully replicated tables the chain covers every datanode.
// Read-only transactions release their locks and return immediately.
func (t *Txn) Commit() error {
	if t.done {
		return ErrAborted
	}
	cfg := &t.c.cfg
	if len(t.writes) == 0 {
		t.releaseAll()
		t.finish(true)
		// Reply to the API client.
		t.tc.send(t.p)
		if !t.c.net.TravelDeferred(t.p, t.tc.Node, t.origin, ackSize, cfg.RPCTimeout) {
			return ErrNodeUnavailable
		}
		return nil
	}

	trains := t.buildTrains()
	if obs := t.c.obs; obs != nil {
		for _, ws := range trains {
			obs.commitTrains.Add(1)
			obs.trainRows.Observe(time.Duration(len(ws)))
		}
	}
	results := t.c.getErrMbx()
	single := len(trains) == 1
	if !single {
		// Trains commit in parallel; sub-processes must start from the
		// transaction's current effective instant.
		t.p.Flush()
	}
	for _, ws := range trains {
		ws := ws
		// The TC charges one commit-row job per row regardless of how the
		// rows are packed into trains.
		for range ws {
			t.tc.use(t.p, TC, cfg.Costs.TCCommitRow)
		}
		if single {
			// A one-train transaction is trivially atomic: the chain applies
			// every row at its commit point, as in Figure 2.
			err := t.commitTrain(t.p, ws, readBackupFor(ws[0]), true)
			t.p.Flush()
			results.Send(err)
			continue
		}
		// Worker arms inherit the transaction's span so their network hops
		// and phase timings stay attributed to the operation.
		t.c.dispatch(fanTask{
			span:       t.p.Span(),
			errRun:     func(p *sim.Proc) error { return t.commitTrain(p, ws, readBackupFor(ws[0]), false) },
			errResults: results,
		})
	}
	var firstErr error
	for range trains {
		if err := results.Recv(t.p); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	t.c.putErrMbx(results)
	if firstErr != nil {
		// Atomic abort: with multi-train commits the staged writes were not
		// applied (applyNow=false above), so a failure in any train —
		// e.g. a partition landing mid-2PC — leaves no half-commit.
		t.releaseAll()
		t.finish(false)
		return firstErr
	}
	if !single {
		// Atomic commit point: every train prepared and committed its
		// replicas; the staged rows of the whole transaction become
		// visible at one instant, under the locks still held.
		t.p.Flush()
		for i := range t.writes {
			w := &t.writes[i]
			w.part.apply(w, t.id)
		}
	}
	t.releaseAll()
	t.finish(true)
	// Ack to the API client (message 10, or 14 under Read Backup — the
	// timing difference is already inside commitTrain).
	t.tc.send(t.p)
	if !t.c.net.TravelDeferred(t.p, t.tc.Node, t.origin, ackSize, cfg.RPCTimeout) {
		return ErrNodeUnavailable
	}
	return nil
}

func readBackupFor(w *writeOp) bool { return w.part.table.opts.ReadBackup }

// buildTrains buckets the staged writes by identical replica chain,
// preserving first-appearance order so the packing is deterministic. Two
// rows share a train iff their partitions resolve to the same replica
// datanodes in the same order (fully replicated rows compare their full
// chain) and agree on Read Backup — exactly the condition under which one
// linear 2PC pass can carry both. With write batching disabled every row is
// its own single-row train, which is the old one-chain-per-row protocol.
func (t *Txn) buildTrains() [][]*writeOp {
	if t.c.cfg.DisableWriteBatching || len(t.writes) == 1 {
		out := make([][]*writeOp, len(t.writes))
		for i := range t.writes {
			out[i] = []*writeOp{&t.writes[i]}
		}
		return out
	}
	var out [][]*writeOp
	slot := make(map[string]int)
	for i := range t.writes {
		w := &t.writes[i]
		key := t.chainKey(w)
		j, ok := slot[key]
		if !ok {
			j = len(out)
			slot[key] = j
			out = append(out, nil)
		}
		out[j] = append(out[j], w)
	}
	return out
}

// chainKey fingerprints the replica chain a write's 2PC pass would walk,
// plus its Read Backup mode (trains must agree on whether the Complete
// phase is awaited).
func (t *Txn) chainKey(w *writeOp) string {
	chain := w.part.replicas()
	if w.part.table.opts.FullyReplicated {
		chain = t.fullChain(w.part)
	}
	var b strings.Builder
	if readBackupFor(w) {
		b.WriteByte('r')
	}
	for _, dn := range chain {
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(dn.Index))
	}
	return b.String()
}

// commitTrain runs the linear 2PC of Figure 2 for one train of same-chain
// rows, returning when the TC may count the train as committed (after
// Committed, or after all Completed messages under Read Backup). The pass
// structure is per train — one message per hop per phase, carrying the
// combined row payload — while the LDM work and REDO volume stay per row.
// applyNow selects whether the train applies its rows itself at the commit
// point (single-train transactions) or leaves the staged writes for the
// caller to apply once every train of the transaction has succeeded
// (multi-train atomicity under mid-flight failures).
func (t *Txn) commitTrain(p *sim.Proc, ws []*writeOp, readBackup, applyNow bool) error {
	cfg := &t.c.cfg
	part := ws[0].part
	chain := part.replicas()
	if len(chain) == 0 {
		return ErrNodeUnavailable
	}
	if part.table.opts.FullyReplicated {
		// §IV-A3: linear 2PC over the primary replicas of the changed row
		// on all node groups (every datanode holds the data).
		chain = t.fullChain(part)
	}
	for _, dn := range chain {
		if !dn.Alive() {
			return ErrNodeUnavailable
		}
	}
	trainBytes := reqSize
	for _, w := range ws {
		trainBytes += w.part.table.rowSize
	}

	// Phase instrumentation: each 2PC pass gets a child span (detailed
	// mode only) and a registry timing. Hops made while a phase span is
	// installed are attributed to both the phase and the operation's root.
	obs := t.c.obs
	parent := p.Span()
	var phase *trace.Span
	var phaseIdx int
	phaseStart := p.EffNow()
	beginPhase := func(idx int) {
		phaseIdx = idx
		phase = parent.Child(phaseNames[idx], phaseStart)
		if phase != nil {
			p.SetSpan(phase)
		}
	}
	endPhase := func() {
		now := p.EffNow()
		phase.Finish(now)
		if obs != nil {
			obs.phase[phaseIdx].Observe(now - phaseStart)
		}
		phase = nil
		phaseStart = now
	}
	defer func() {
		// Error returns leave the active phase open; close it so sink
		// trees render consistently, and restore the caller's span.
		phase.Finish(p.EffNow())
		p.SetSpan(parent)
	}()

	// Prepare pass: TC -> primary -> backups -> ... ; last replica answers
	// Prepared to the TC. One message per hop carries the whole train's
	// payload; each replica prepares (and REDO-logs) every row of the train.
	beginPhase(phasePrepare)
	prev := t.tc
	for _, dn := range chain {
		prev.send(p)
		if !t.c.net.TravelDeferred(p, prev.Node, dn.Node, trainBytes, cfg.RPCTimeout) {
			return ErrNodeUnavailable
		}
		dn.recv(p)
		for _, w := range ws {
			dn.use(p, LDM, cfg.Costs.LDMPrepare)
			dn.redoPending += int64(w.part.table.rowSize)
		}
		prev = dn
	}
	last := chain[len(chain)-1]
	last.send(p)
	if !t.c.net.TravelDeferred(p, last.Node, t.tc.Node, ackSize, cfg.RPCTimeout) {
		return ErrNodeUnavailable
	}
	t.tc.recv(p)
	endPhase()
	// Commit pass in reverse order: the primary replica (chain head) is the
	// commit point; it applies the mutation and releases the row locks.
	beginPhase(phaseCommit)
	prev = t.tc
	for i := len(chain) - 1; i >= 0; i-- {
		dn := chain[i]
		prev.send(p)
		if !t.c.net.TravelDeferred(p, prev.Node, dn.Node, ackSize, cfg.RPCTimeout) {
			return ErrNodeUnavailable
		}
		dn.recv(p)
		for range ws {
			dn.use(p, LDM, cfg.Costs.LDMCommit)
		}
		prev = dn
	}
	// Synchronize with the virtual clock before the commit point: the
	// primary applies the train's mutations and releases their row locks at
	// the instant the Commit message actually reaches it. Multi-train
	// transactions defer the apply to the transaction-wide commit point.
	p.Flush()
	if applyNow {
		for _, w := range ws {
			w.part.apply(w, t.id)
		}
	}
	chain[0].send(p)
	if !t.c.net.TravelDeferred(p, chain[0].Node, t.tc.Node, ackSize, cfg.RPCTimeout) {
		return ErrNodeUnavailable
	}
	t.tc.recv(p)
	endPhase()
	// Complete pass: release backup-side resources. Without Read Backup
	// the TC does not wait for the Completed responses (the paper's short
	// staleness window on backups); with Read Backup it must (§IV-A3).
	backups := chain[1:]
	if len(backups) == 0 {
		return nil
	}
	if !readBackup {
		// Fire-and-forget Completes go through Send (no process carries
		// them), so simnet can only count them in the global net.* metrics.
		// Record them on the active span too — zero wire time, the Travel
		// convention, since they are off the Ack's critical path — so per-op
		// attribution and the commit-phase profile stop under-counting.
		for _, dn := range backups {
			t.tc.send(p)
			p.Span().RecordHop(simnet.HopClassOf(t.tc.Node, dn.Node), ackSize, 0)
			t.c.net.Send(t.tc.Node, dn.Node, ackSize, "complete")
		}
		return nil
	}
	beginPhase(phaseComplete)
	donec := t.c.getBoolMbx()
	// The Complete fan-out runs as pooled worker arms; synchronize them
	// with the parent's effective instant first.
	p.Flush()
	// Capture the span the fan-out should charge: the complete-phase span
	// when detailed, else the transaction's span.
	fanSpan := phase
	if fanSpan == nil {
		fanSpan = parent
	}
	for _, dn := range backups {
		dn := dn
		t.tc.send(p)
		t.c.dispatch(fanTask{
			span: fanSpan,
			boolRun: func(cp *sim.Proc) bool {
				ok := t.c.net.TravelDeferred(cp, t.tc.Node, dn.Node, ackSize, cfg.RPCTimeout)
				if ok {
					dn.recv(cp)
					dn.use(cp, LDM, cfg.Costs.LDMCommit)
					dn.send(cp)
					ok = t.c.net.TravelDeferred(cp, dn.Node, t.tc.Node, ackSize, cfg.RPCTimeout)
				}
				return ok
			},
			boolResults: donec,
		})
	}
	allOK := true
	for range backups {
		if !donec.Recv(p) {
			allOK = false
		}
	}
	t.c.putBoolMbx(donec)
	t.tc.recv(p)
	if !allOK {
		return ErrNodeUnavailable
	}
	endPhase()
	return nil
}

// fullChain returns the commit chain for a fully replicated partition: the
// owning group's replicas first (primary at the head), then one primary per
// other node group.
func (t *Txn) fullChain(part *Partition) []*DataNode {
	reps := part.replicas()
	// Copy: replicas() is memoized and must not be appended to.
	chain := make([]*DataNode, len(reps), len(reps)+len(t.c.groups)-1)
	copy(chain, reps)
	for g := range t.c.groups {
		if g == part.group {
			continue
		}
		for _, dn := range t.c.groups[g] {
			if dn.Alive() {
				chain = append(chain, dn)
				break
			}
		}
	}
	return chain
}

// Abort releases all locks and discards staged writes.
func (t *Txn) Abort() {
	if t.done {
		return
	}
	t.releaseAll()
	t.finish(false)
}

// failAbort aborts and reports the unavailable-node error.
func (t *Txn) failAbort() error {
	t.Abort()
	return ErrNodeUnavailable
}

// abortLocked aborts after a lock acquisition failure.
func (t *Txn) abortLocked() {
	t.releaseAll()
	t.finish(false)
}

func (t *Txn) finish(committed bool) {
	t.done = true
	delete(t.c.activeOps, t.id)
	if committed {
		t.c.Stats.Committed++
	} else {
		t.c.Stats.Aborted++
	}
}

// lockRow acquires a row lock with the deadlock-detection timeout, on the
// transaction's own process.
func (t *Txn) lockRow(part *Partition, pk, key string, mode LockMode) error {
	return t.lockRowOn(t.p, part, pk, key, mode)
}

// lockRowOn is lockRow on an explicit process: WriteBatch's concurrent
// group sub-processes block on their own clocks while sharing the
// transaction's lock set (appends are safe under the cooperative kernel —
// exactly one process runs at a time). The process's deferred delay is
// flushed first so the lock is taken at the correct virtual instant.
func (t *Txn) lockRowOn(p *sim.Proc, part *Partition, pk, key string, mode LockMode) error {
	p.Flush()
	r := part.getRow(pk, key)
	obs := t.c.obs
	if obs != nil {
		obs.lockAcq.Add(1)
	}
	mb := r.lock.acquire(t.c.env, t.id, mode)
	if mb == nil {
		t.locks = append(t.locks, lockRef{part: part, pk: pk, key: key})
		return nil
	}
	// Contended: park until granted or the deadlock-detection timeout.
	// The blocker is identified now, while it still holds the lock (by the
	// time the wait resolves it may have finished and vanished).
	var holderOp string
	if t.c.ledger != nil {
		if blocker, ok := r.lock.blockerOf(t.id); ok {
			holderOp = t.c.opFor(blocker)
		} else {
			holderOp = "(unknown)"
		}
	}
	start := p.Now()
	ls := p.Span().Child("lock_wait", start)
	_, ok := mb.RecvTimeout(p, t.c.cfg.LockTimeout)
	wait := p.Now() - start
	if obs != nil {
		obs.lockWait.Observe(wait)
	}
	if t.c.ledger != nil {
		table := part.table.name
		t.c.ledger.record(p.Now(), table, holderOp, t.c.opFor(t.id), mode, wait, !ok)
		obs.contention(table, holderOp, t.c.opFor(t.id), wait)
	}
	if !ok {
		ls.SetAttr("timeout", "true")
		ls.Finish(p.Now())
		r.lock.removeWaiter(t.id)
		// The grant may have raced the timeout within the same instant.
		if _, held := r.lock.holders[t.id]; held {
			r.lock.release(t.id)
			part.cleanRow(pk, key, r)
		}
		return ErrLockTimeout
	}
	ls.Finish(p.Now())
	t.locks = append(t.locks, lockRef{part: part, pk: pk, key: key})
	return nil
}

// releaseAll releases every lock the transaction holds.
func (t *Txn) releaseAll() {
	for _, lr := range t.locks {
		if r, ok := lr.part.rows[lr.pk][lr.key]; ok {
			r.lock.release(t.id)
			lr.part.cleanRow(lr.pk, lr.key, r)
		}
	}
	t.locks = nil
}

// scanPrefix returns committed rows of one partition-key bucket with the
// given key prefix, key-sorted.
func (p *Partition) scanPrefix(pk, prefix string) []KV {
	bucket := p.rows[pk]
	out := make([]KV, 0, len(bucket))
	for k, r := range bucket {
		if r.exists && strings.HasPrefix(k, prefix) {
			out = append(out, KV{Key: k, Val: r.val})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// committed returns the committed value of a row.
func (p *Partition) committed(pk, key string) (Value, bool) {
	r, ok := p.rows[pk][key]
	if !ok || !r.exists {
		return nil, false
	}
	return r.val, true
}

// getRow returns the row, creating a placeholder for lock acquisition if
// the row does not exist yet (insert path).
func (p *Partition) getRow(pk, key string) *row {
	bucket, ok := p.rows[pk]
	if !ok {
		bucket = make(map[string]*row)
		p.rows[pk] = bucket
	}
	r, ok := bucket[key]
	if !ok {
		r = &row{}
		bucket[key] = r
	}
	return r
}

// apply makes a staged write the committed value, stamped with the
// current global checkpoint epoch.
func (p *Partition) apply(w *writeOp, txn uint64) {
	r := p.getRow(w.pk, w.key)
	if w.del {
		r.exists = false
		r.val = nil
	} else {
		r.exists = true
		r.val = w.val
	}
	r.epoch = p.table.c.gcpEpoch
	r.lock.release(txn)
	p.cleanRow(w.pk, w.key, r)
}

// cleanRow drops placeholder rows that never materialized and carry no
// lock state, bounding memory.
func (p *Partition) cleanRow(pk, key string, r *row) {
	if !r.exists && len(r.lock.holders) == 0 && len(r.lock.waiters) == 0 {
		delete(p.rows[pk], key)
	}
}
