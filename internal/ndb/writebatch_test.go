package ndb

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"hopsfscl/internal/sim"
	"hopsfscl/internal/simnet"
	"hopsfscl/internal/trace"
)

// measureTxnMessages runs one transaction writing len(pks) rows (row i in
// partition pks[i]) and returns the wire messages spent staging (WriteBatch)
// and committing, with the batched write path on or off. pksFor receives the
// created table so callers can pick partition keys by replica geometry.
func measureTxnMessages(t *testing.T, serial bool, pksFor func(tbl *Table) []string) (staging, commit int64) {
	t.Helper()
	env, c, client := testClusterCfg(t, true, 3, func(cfg *Config) { cfg.DisableWriteBatching = serial })
	c.StopBackground()
	env.RunFor(time.Second) // drain housekeeping
	tbl := c.CreateTable("t", 64, TableOptions{ReadBackup: true})
	pks := pksFor(tbl)
	done := false
	env.Spawn("txn", func(p *sim.Proc) {
		tx, err := c.Begin(p, client, 1, tbl, pks[0])
		if err != nil {
			t.Error(err)
			return
		}
		items := make([]BatchWrite, len(pks))
		for i, pk := range pks {
			items[i] = BatchWrite{Table: tbl, PartKey: pk, Key: fmt.Sprintf("k%d", i), Val: "v"}
		}
		p.Flush()
		before := c.net.TotalMessages()
		if err := tx.WriteBatch(items); err != nil {
			t.Error(err)
			return
		}
		p.Flush()
		staging = c.net.TotalMessages() - before
		before = c.net.TotalMessages()
		if err := tx.Commit(); err != nil {
			t.Error(err)
			return
		}
		p.Flush()
		commit = c.net.TotalMessages() - before
		done = true
	})
	env.RunFor(time.Minute)
	if !done {
		t.Fatalf("txn (serial=%v, %d rows) did not complete", serial, len(pks))
	}
	return staging, commit
}

// repeatPK returns n copies of one partition key: n rows sharing a replica
// chain.
func repeatPK(pk string, n int) func(*Table) []string {
	return func(*Table) []string {
		pks := make([]string, n)
		for i := range pks {
			pks[i] = pk
		}
		return pks
	}
}

// crossGroupPKs returns n rows split evenly between partition "p" and a
// partition whose primary lives in the other node group — two distinct
// replica chains.
func crossGroupPKs(t *testing.T, n int) func(*Table) []string {
	return func(tbl *Table) []string {
		t.Helper()
		primA := tbl.PrimaryFor("p")
		other := ""
		for i := 0; i < 64 && other == ""; i++ {
			cand := fmt.Sprintf("q%d", i)
			if dn := tbl.PrimaryFor(cand); dn != nil && dn.Group != primA.Group {
				other = cand
			}
		}
		if other == "" {
			t.Fatal("no partition key with a primary in the other node group")
		}
		pks := make([]string, n)
		for i := range pks {
			if i < n/2 {
				pks[i] = "p"
			} else {
				pks[i] = other
			}
		}
		return pks
	}
}

// TestCommitTrainMessageCounts extends TestCommitProtocolMessageCount into a
// regression suite pinning the exact wire footprint of the commit protocol
// (Figure 2 geometry: RF 3, Read Backup, 12 messages per chain plus the
// client Ack):
//
//   - 1 row: 13 messages, batched and serial identical (a single-row batch
//     takes the old protocol path message for message),
//   - 8 rows sharing one replica chain: one commit train of 13 messages vs
//     8 serial chains of 97,
//   - 8 rows across two node groups: two trains, 2x12 + 1 = 25 messages.
//
// For every multi-row shape the batched transaction must use strictly fewer
// messages than the serial one, staging included.
func TestCommitTrainMessageCounts(t *testing.T) {
	// 1 row: batched == serial, exactly 13 commit messages.
	oneSerialStage, oneSerialCommit := measureTxnMessages(t, true, repeatPK("p", 1))
	oneBatchStage, oneBatchCommit := measureTxnMessages(t, false, repeatPK("p", 1))
	if oneBatchCommit != 13 || oneSerialCommit != 13 {
		t.Errorf("1-row commit = %d batched / %d serial messages, want 13 / 13",
			oneBatchCommit, oneSerialCommit)
	}
	if oneBatchStage != oneSerialStage {
		t.Errorf("1-row staging = %d batched vs %d serial messages, want identical",
			oneBatchStage, oneSerialStage)
	}

	// 8 rows, one replica chain: one train vs eight chains.
	sameSerialStage, sameSerialCommit := measureTxnMessages(t, true, repeatPK("p", 8))
	sameBatchStage, sameBatchCommit := measureTxnMessages(t, false, repeatPK("p", 8))
	if sameBatchCommit != 13 {
		t.Errorf("8-row same-chain batched commit = %d messages, want 13 (one train)", sameBatchCommit)
	}
	if sameSerialCommit != 97 {
		t.Errorf("8-row serial commit = %d messages, want 97 (8 chains + Ack)", sameSerialCommit)
	}
	if total, serialTotal := sameBatchStage+sameBatchCommit, sameSerialStage+sameSerialCommit; total >= serialTotal {
		t.Errorf("8-row same-chain batched txn = %d messages, serial = %d; want strictly fewer", total, serialTotal)
	}
	if sameBatchStage > sameSerialStage {
		t.Errorf("8-row batched staging = %d messages > serial %d", sameBatchStage, sameSerialStage)
	}

	// 8 rows across two node groups: two trains.
	crossSerialStage, crossSerialCommit := measureTxnMessages(t, true, crossGroupPKs(t, 8))
	crossBatchStage, crossBatchCommit := measureTxnMessages(t, false, crossGroupPKs(t, 8))
	if crossBatchCommit != 25 {
		t.Errorf("8-row cross-group batched commit = %d messages, want 25 (two trains + Ack)", crossBatchCommit)
	}
	if crossSerialCommit != 97 {
		t.Errorf("8-row cross-group serial commit = %d messages, want 97", crossSerialCommit)
	}
	if total, serialTotal := crossBatchStage+crossBatchCommit, crossSerialStage+crossSerialCommit; total >= serialTotal {
		t.Errorf("8-row cross-group batched txn = %d messages, serial = %d; want strictly fewer", total, serialTotal)
	}
}

// seededWBCluster builds the testCluster geometry under an arbitrary
// simulation seed, with the batched write path on or off.
func seededWBCluster(t *testing.T, seed int64, serial bool) (*sim.Env, *Cluster, *simnet.Node) {
	t.Helper()
	env := sim.New(seed)
	t.Cleanup(env.Close)
	net := simnet.New(env, simnet.USWest1())
	cfg := DefaultConfig()
	cfg.DataNodes = 6
	cfg.Replication = 3
	cfg.PartitionsPerTable = 12
	cfg.AZAware = true
	cfg.DisableWriteBatching = serial
	data := SpreadPlacement(cfg.DataNodes, []simnet.ZoneID{1, 2, 3}, 100)
	mgmt := []Placement{{Zone: 1, Host: 200}, {Zone: 2, Host: 201}, {Zone: 3, Host: 202}}
	c, err := New(env, net, cfg, data, mgmt)
	if err != nil {
		t.Fatal(err)
	}
	return env, c, net.NewNode("client", 1, 300)
}

// TestWriteBatchSerialEquivalenceAcrossSeeds drives an identical randomized
// sequence of multi-row transactions (inserts, updates, deletes over several
// partitions) through a batched and a serial cluster for each seed and
// requires byte-identical final table state: coalescing rows into trains
// must never change what commits.
func TestWriteBatchSerialEquivalenceAcrossSeeds(t *testing.T) {
	for seed := int64(1); seed <= 7; seed++ {
		run := func(serial bool) map[string]string {
			env, c, client := seededWBCluster(t, seed, serial)
			c.StopBackground()
			env.RunFor(time.Second)
			tbl := c.CreateTable("t", 64, TableOptions{ReadBackup: true})
			rng := rand.New(rand.NewSource(seed * 77))
			type txnSpec struct{ items []BatchWrite }
			txns := make([]txnSpec, 30)
			for i := range txns {
				n := 1 + rng.Intn(6)
				items := make([]BatchWrite, 0, n)
				used := map[string]bool{}
				for len(items) < n {
					pk := fmt.Sprintf("p%d", rng.Intn(3))
					key := fmt.Sprintf("k%d", rng.Intn(10))
					if used[pk+key] {
						continue
					}
					used[pk+key] = true
					items = append(items, BatchWrite{
						Table: tbl, PartKey: pk, Key: key,
						Val: fmt.Sprintf("v%d-%d", i, len(items)),
						Del: rng.Intn(5) == 0,
					})
				}
				txns[i] = txnSpec{items: items}
			}
			done := false
			env.Spawn("driver", func(p *sim.Proc) {
				for _, spec := range txns {
					tx, err := c.Begin(p, client, 1, tbl, spec.items[0].PartKey)
					if err != nil {
						t.Error(err)
						return
					}
					if err := tx.WriteBatch(spec.items); err != nil {
						t.Error(err)
						return
					}
					if err := tx.Commit(); err != nil {
						t.Error(err)
						return
					}
				}
				done = true
			})
			env.RunFor(time.Minute)
			if !done {
				t.Fatalf("seed %d (serial=%v): driver did not complete", seed, serial)
			}
			out := make(map[string]string)
			tbl.ForEachCommitted(func(pk, key string, val Value) {
				out[pk+"|"+key] = fmt.Sprint(val)
			})
			return out
		}
		batched, serial := run(false), run(true)
		if len(batched) != len(serial) {
			t.Fatalf("seed %d: %d rows batched vs %d serial", seed, len(batched), len(serial))
		}
		for k, v := range serial {
			if batched[k] != v {
				t.Fatalf("seed %d: row %s = %q batched vs %q serial", seed, k, batched[k], v)
			}
		}
	}
}

// TestWriteBatchLockTimeoutAborts pins the lock-conflict semantics of the
// batched path: a WriteBatch containing a row another transaction holds
// exclusively times out with ErrLockTimeout exactly as serial Writes would,
// the transaction aborts, and every lock the batch had already taken is
// released.
func TestWriteBatchLockTimeoutAborts(t *testing.T) {
	env, c, client := testCluster(t, true, 3)
	tbl := c.CreateTable("t", 64, TableOptions{ReadBackup: true})
	var waiterErr error
	env.Spawn("holder", func(p *sim.Proc) {
		tx, err := c.Begin(p, client, 1, tbl, "p")
		if err != nil {
			t.Error(err)
			return
		}
		if err := tx.Insert(tbl, "p", "k2", "h"); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(500 * time.Millisecond) // far beyond LockTimeout
		if err := tx.Commit(); err != nil {
			t.Error(err)
		}
	})
	env.Spawn("waiter", func(p *sim.Proc) {
		p.Sleep(10 * time.Millisecond)
		tx, err := c.Begin(p, client, 1, tbl, "p")
		if err != nil {
			t.Error(err)
			return
		}
		items := make([]BatchWrite, 5)
		for i := range items {
			items[i] = BatchWrite{Table: tbl, PartKey: "p", Key: fmt.Sprintf("k%d", i), Val: "w"}
		}
		waiterErr = tx.WriteBatch(items)
	})
	env.RunFor(2 * time.Second)
	if !errors.Is(waiterErr, ErrLockTimeout) {
		t.Fatalf("waiter error = %v, want ErrLockTimeout", waiterErr)
	}
	// The aborted batch must have released k0/k1 (taken before it hit the
	// held k2): a fresh transaction locks all five rows without waiting.
	inTxn(t, env, c, client, 1, tbl, "p", func(p *sim.Proc, tx *Txn) error {
		items := make([]BatchWrite, 5)
		for i := range items {
			items[i] = BatchWrite{Table: tbl, PartKey: "p", Key: fmt.Sprintf("k%d", i), Val: "after"}
		}
		if err := tx.WriteBatch(items); err != nil {
			return err
		}
		return tx.Commit()
	})
}

// TestWriteBatchUnavailablePrimaryAborts: a row whose whole node group is
// down fails the batch with ErrNodeUnavailable, exactly as a serial Write
// would.
func TestWriteBatchUnavailablePrimaryAborts(t *testing.T) {
	env, c, client := testCluster(t, true, 3)
	tbl := c.CreateTable("t", 64, TableOptions{ReadBackup: true})
	part := tbl.partitionFor("p")
	for _, dn := range c.groups[part.group] {
		dn.Node.Fail()
	}
	env.RunFor(2 * time.Second) // let heartbeats declare the group dead
	hint := ""
	for i := 0; i < 64 && hint == ""; i++ {
		if cand := fmt.Sprintf("q%d", i); tbl.PrimaryFor(cand) != nil {
			hint = cand
		}
	}
	if hint == "" {
		t.Fatal("no partition left alive for the transaction hint")
	}
	var got error
	ran := false
	env.Spawn("txn", func(p *sim.Proc) {
		tx, err := c.Begin(p, client, 1, tbl, hint)
		if err != nil {
			t.Error(err)
			return
		}
		got = tx.WriteBatch([]BatchWrite{
			{Table: tbl, PartKey: hint, Key: "ok", Val: "v"},
			{Table: tbl, PartKey: "p", Key: "dead", Val: "v"},
		})
		ran = true
	})
	env.RunFor(time.Minute)
	if !ran {
		t.Fatal("txn did not run")
	}
	if !errors.Is(got, ErrNodeUnavailable) {
		t.Fatalf("WriteBatch error = %v, want ErrNodeUnavailable", got)
	}
}

// TestFireAndForgetCompleteAttributed pins the per-operation accounting fix
// for fire-and-forget Complete messages: on a non-Read-Backup table the TC
// sends Complete to the backups without awaiting them, and those messages
// must still be attributed to the operation's span. Every wire message of
// the commit — protocol, Complete, and client Ack — shows up in the span's
// hop counts, so the span total reconciles exactly with the network's
// message counter.
func TestFireAndForgetCompleteAttributed(t *testing.T) {
	env, c, client := testCluster(t, true, 3)
	reg := trace.NewRegistry()
	tracer := trace.NewTracer(reg)
	c.SetTracer(tracer)
	tracer.EnableSink(4)
	c.StopBackground()
	env.RunFor(time.Second)
	tbl := c.CreateTable("t", 64, TableOptions{}) // no Read Backup: Complete is fire-and-forget
	hopTotal := func(sp *trace.Span) int64 {
		var n int64
		for _, h := range sp.HopCount {
			n += h
		}
		return n
	}
	var spanMsgs, netMsgs int64
	done := false
	env.Spawn("txn", func(p *sim.Proc) {
		sp := tracer.StartOp("op", p.EffNow())
		prev := p.SetSpan(sp)
		defer func() {
			p.SetSpan(prev)
			sp.Finish(p.EffNow())
		}()
		tx, err := c.Begin(p, client, 1, tbl, "p")
		if err != nil {
			t.Error(err)
			return
		}
		if err := tx.Insert(tbl, "p", "k", "v"); err != nil {
			t.Error(err)
			return
		}
		p.Flush()
		netBefore := c.net.TotalMessages()
		spanBefore := hopTotal(sp)
		if err := tx.Commit(); err != nil {
			t.Error(err)
			return
		}
		p.Flush()
		netMsgs = c.net.TotalMessages() - netBefore
		spanMsgs = hopTotal(sp) - spanBefore
		done = true
	})
	env.RunFor(time.Minute)
	if !done {
		t.Fatal("txn did not complete")
	}
	// RF 3 without Read Backup: 8 protocol messages + 2 Complete + 1 Ack.
	if netMsgs != 11 {
		t.Fatalf("commit used %d network messages, want 11", netMsgs)
	}
	if spanMsgs != netMsgs {
		t.Fatalf("span attributed %d messages, network saw %d — fire-and-forget Complete lost", spanMsgs, netMsgs)
	}
}
