package ndb

import (
	"fmt"
	"testing"

	"hopsfscl/internal/sim"
)

// Fan-out arms must come from the cluster's worker pool: the first batch
// grows the pool to its concurrency high-water mark and every later batch
// reuses those workers instead of spawning processes. The result mailboxes
// are pooled the same way.
func TestFanOutReusesPooledWorkers(t *testing.T) {
	env, c, client := testCluster(t, true, 3)
	tbl := c.CreateTable("inodes", 256, TableOptions{})
	const n = 8
	inTxn(t, env, c, client, 1, tbl, "p0", func(p *sim.Proc, tx *Txn) error {
		for i := 0; i < n; i++ {
			pk := fmt.Sprintf("p%d", i)
			if err := tx.Insert(tbl, pk, "k", "v"); err != nil {
				return err
			}
		}
		return tx.Commit()
	})

	runBatchOnce := func() {
		inTxn(t, env, c, client, 1, tbl, "p0", func(p *sim.Proc, tx *Txn) error {
			gets := make([]BatchGet, n)
			for i := range gets {
				gets[i] = BatchGet{Table: tbl, PartKey: fmt.Sprintf("p%d", i), Key: "k"}
			}
			if _, err := tx.ReadBatch(gets); err != nil {
				return err
			}
			return tx.Commit()
		})
	}
	runBatchOnce()
	workers := len(c.freeWorkers)
	if workers == 0 {
		t.Fatal("no pooled workers after a multi-group fan-out")
	}
	if len(c.freeBoolMbx) == 0 {
		t.Fatal("result mailbox was not returned to the pool")
	}
	before := make(map[*fanWorker]bool, workers)
	for _, w := range c.freeWorkers {
		before[w] = true
	}
	for i := 0; i < 5; i++ {
		runBatchOnce()
	}
	if got := len(c.freeWorkers); got != workers {
		t.Fatalf("pool grew from %d to %d workers across identical batches, want reuse", workers, got)
	}
	for _, w := range c.freeWorkers {
		if !before[w] {
			t.Fatal("pool contains a respawned worker: arms were not served by the original pool")
		}
	}
}
