package ndb

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"hopsfscl/internal/sim"
	"hopsfscl/internal/trace"
)

// TestReadBatchMatchesSerialReads checks that one batched fan-out returns
// exactly what per-row ReadCommitted calls return, including a missing row,
// across rows scattered over many partitions.
func TestReadBatchMatchesSerialReads(t *testing.T) {
	env, c, client := testCluster(t, true, 3)
	tbl := c.CreateTable("inodes", 256, TableOptions{ReadBackup: true})
	const n = 10
	inTxn(t, env, c, client, 1, tbl, "p0", func(p *sim.Proc, tx *Txn) error {
		for i := 0; i < n; i++ {
			pk := fmt.Sprintf("p%d", i)
			if err := tx.Insert(tbl, pk, "k"+pk, "v"+pk); err != nil {
				return err
			}
		}
		return tx.Commit()
	})

	var serial []BatchVal
	inTxn(t, env, c, client, 1, tbl, "p0", func(p *sim.Proc, tx *Txn) error {
		for i := 0; i <= n; i++ { // row n was never written
			pk := fmt.Sprintf("p%d", i)
			v, ok, err := tx.ReadCommitted(tbl, pk, "k"+pk)
			if err != nil {
				return err
			}
			serial = append(serial, BatchVal{Val: v, OK: ok})
		}
		return tx.Commit()
	})

	inTxn(t, env, c, client, 1, tbl, "p0", func(p *sim.Proc, tx *Txn) error {
		gets := make([]BatchGet, n+1)
		for i := range gets {
			pk := fmt.Sprintf("p%d", i)
			gets[i] = BatchGet{Table: tbl, PartKey: pk, Key: "k" + pk}
		}
		vals, err := tx.ReadBatch(gets)
		if err != nil {
			return err
		}
		for i, got := range vals {
			if got != serial[i] {
				t.Errorf("row %d: batch (%v,%v), serial (%v,%v)",
					i, got.Val, got.OK, serial[i].Val, serial[i].OK)
			}
		}
		if !vals[n].OK {
			// expected: the unwritten row reports absence, not an error
		} else {
			t.Errorf("row %d should be absent", n)
		}
		return tx.Commit()
	})
}

// TestReadBatchRouting pins the per-row routing rules: plain tables read
// the primary replica (slot 0), Read Backup tables read the replica
// nearest the TC, and the fan-out is visible in the registry counters.
func TestReadBatchRouting(t *testing.T) {
	env, c, client := testCluster(t, true, 3)
	reg := trace.NewRegistry()
	c.SetTracer(trace.NewTracer(reg))
	plain := c.CreateTable("plain", 128, TableOptions{})
	rb := c.CreateTable("rb", 128, TableOptions{ReadBackup: true})

	inTxn(t, env, c, client, 1, plain, "pp", func(p *sim.Proc, tx *Txn) error {
		if err := tx.Insert(plain, "pp", "k", "v"); err != nil {
			return err
		}
		return tx.Commit()
	})
	inTxn(t, env, c, client, 1, rb, "pr", func(p *sim.Proc, tx *Txn) error {
		if err := tx.Insert(rb, "pr", "k", "v"); err != nil {
			return err
		}
		return tx.Commit()
	})

	var tc *DataNode
	inTxn(t, env, c, client, 1, rb, "pr", func(p *sim.Proc, tx *Txn) error {
		tc = tx.Coordinator()
		_, err := tx.ReadBatch([]BatchGet{
			{Table: plain, PartKey: "pp", Key: "k"},
			{Table: rb, PartKey: "pr", Key: "k"},
		})
		if err != nil {
			return err
		}
		return tx.Commit()
	})

	pp := plain.partitionFor("pp")
	if pp.reads[0] != 1 {
		t.Errorf("plain table primary slot reads = %d, want 1", pp.reads[0])
	}
	pr := rb.partitionFor("pr")
	servedSlot := -1
	for i, n := range pr.reads {
		if n > 0 {
			servedSlot = i
		}
	}
	if servedSlot < 0 {
		t.Fatal("read-backup row not counted on any replica slot")
	}
	reps := pr.replicas()
	served := domainProximity(tc.Node, tc.Domain, reps[servedSlot])
	for _, r := range reps {
		if d := domainProximity(tc.Node, tc.Domain, r); d < served {
			t.Errorf("served replica proximity %d, but replica at %d exists", served, d)
		}
	}

	if got := reg.Counter("ndb.batch.reads").Value(); got != 1 {
		t.Errorf("ndb.batch.reads = %d, want 1", got)
	}
	var rows int64
	for d := ProximitySameHost; d <= ProximityRemote; d++ {
		rows += reg.Counter("ndb.batch.rows", "prox", proximityLabel(d)).Value()
	}
	if rows != 2 {
		t.Errorf("ndb.batch.rows total = %d, want 2", rows)
	}
}

// TestReadBatchUnavailableGroupAborts: a row whose entire replica group is
// down aborts the whole batch with ErrNodeUnavailable, as the serial read
// would.
func TestReadBatchUnavailableGroupAborts(t *testing.T) {
	env, c, client := testCluster(t, true, 3)
	tbl := c.CreateTable("plain", 128, TableOptions{})
	inTxn(t, env, c, client, 1, tbl, "p", func(p *sim.Proc, tx *Txn) error {
		if err := tx.Insert(tbl, "p", "k", "v"); err != nil {
			return err
		}
		return tx.Commit()
	})
	doomed := tbl.partitionFor("p")
	// The TC must live in the surviving group, so hint a partition there.
	hint := ""
	for i := 0; hint == ""; i++ {
		k := fmt.Sprintf("h%d", i)
		if tbl.partitionFor(k).group != doomed.group {
			hint = k
		}
	}
	for _, dn := range doomed.replicas() {
		dn.Node.Fail()
	}

	var err error
	env.Spawn("txn", func(p *sim.Proc) {
		tx, berr := c.Begin(p, client, 1, tbl, hint)
		if berr != nil {
			t.Errorf("begin failed: %v", berr)
			return
		}
		_, err = tx.ReadBatch([]BatchGet{{Table: tbl, PartKey: "p", Key: "k"}})
	})
	env.RunFor(5 * time.Second)
	if !errors.Is(err, ErrNodeUnavailable) {
		t.Fatalf("err = %v, want ErrNodeUnavailable", err)
	}
}

// TestScanBatchMatchesSerialScans checks ScanBatch against per-directory
// ScanPrefix over several partitions, including an empty directory.
func TestScanBatchMatchesSerialScans(t *testing.T) {
	env, c, client := testCluster(t, true, 3)
	tbl := c.CreateTable("inodes", 256, TableOptions{ReadBackup: true})
	dirs := []string{"d1", "d2", "d3"}
	inTxn(t, env, c, client, 1, tbl, "d1", func(p *sim.Proc, tx *Txn) error {
		for di, d := range dirs {
			for i := 0; i <= di; i++ {
				k := fmt.Sprintf("%s/c%d", d, i)
				if err := tx.Insert(tbl, d, k, "v"); err != nil {
					return err
				}
			}
		}
		return tx.Commit()
	})

	scans := []BatchScan{
		{Table: tbl, PartKey: "d1", Prefix: "d1/"},
		{Table: tbl, PartKey: "d2", Prefix: "d2/"},
		{Table: tbl, PartKey: "d3", Prefix: "d3/"},
		{Table: tbl, PartKey: "empty", Prefix: "empty/"},
	}
	var serial [][]KV
	inTxn(t, env, c, client, 1, tbl, "d1", func(p *sim.Proc, tx *Txn) error {
		for _, s := range scans {
			rows, err := tx.ScanPrefix(tbl, s.PartKey, s.Prefix)
			if err != nil {
				return err
			}
			serial = append(serial, rows)
		}
		return tx.Commit()
	})
	inTxn(t, env, c, client, 1, tbl, "d1", func(p *sim.Proc, tx *Txn) error {
		batched, err := tx.ScanBatch(scans)
		if err != nil {
			return err
		}
		for i := range scans {
			if len(batched[i]) != len(serial[i]) {
				t.Errorf("scan %d: batch %d rows, serial %d", i, len(batched[i]), len(serial[i]))
				continue
			}
			for j := range batched[i] {
				if batched[i][j] != serial[i][j] {
					t.Errorf("scan %d row %d: batch %+v, serial %+v", i, j, batched[i][j], serial[i][j])
				}
			}
		}
		return tx.Commit()
	})
}

// TestReadBatchFasterThanSerial: reading N scattered rows in one batch must
// take less virtual time than N serial round trips — the point of the
// batched resolution protocol.
func TestReadBatchFasterThanSerial(t *testing.T) {
	env, c, client := testCluster(t, true, 3)
	tbl := c.CreateTable("inodes", 256, TableOptions{ReadBackup: true})
	const n = 8
	inTxn(t, env, c, client, 1, tbl, "p0", func(p *sim.Proc, tx *Txn) error {
		for i := 0; i < n; i++ {
			pk := fmt.Sprintf("p%d", i)
			if err := tx.Insert(tbl, pk, "k", "v"); err != nil {
				return err
			}
		}
		return tx.Commit()
	})

	var serialDur, batchDur time.Duration
	inTxn(t, env, c, client, 1, tbl, "p0", func(p *sim.Proc, tx *Txn) error {
		start := p.EffNow()
		for i := 0; i < n; i++ {
			pk := fmt.Sprintf("p%d", i)
			if _, _, err := tx.ReadCommitted(tbl, pk, "k"); err != nil {
				return err
			}
		}
		serialDur = p.EffNow() - start
		return tx.Commit()
	})
	inTxn(t, env, c, client, 1, tbl, "p0", func(p *sim.Proc, tx *Txn) error {
		gets := make([]BatchGet, n)
		for i := range gets {
			gets[i] = BatchGet{Table: tbl, PartKey: fmt.Sprintf("p%d", i), Key: "k"}
		}
		start := p.EffNow()
		if _, err := tx.ReadBatch(gets); err != nil {
			return err
		}
		batchDur = p.EffNow() - start
		return tx.Commit()
	})
	if batchDur >= serialDur {
		t.Fatalf("batch %v not faster than serial %v over %d rows", batchDur, serialDur, n)
	}
}
