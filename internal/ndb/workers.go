package ndb

import (
	"hopsfscl/internal/sim"
	"hopsfscl/internal/trace"
)

// This file implements the cluster's fan-out worker pool. Batched reads,
// commit trains, and Complete acks all fan out as concurrent sub-processes;
// spawning a fresh process per fan-out arm was the simulator's largest
// steady-state allocation source (a Proc, a resume channel, a goroutine
// stack, and a closure per arm). The pool keeps a free-list of long-lived
// worker processes parked on per-worker task mailboxes and dispatches work
// by Send.
//
// Determinism: dispatch is schedule-equivalent to Spawn. Spawn pushes the
// new process onto the ready ring at the call instant and consumes no event
// sequence number; Send to a parked worker does exactly the same (readyProc
// appends at the identical ready position), and a Send that has to spawn a
// fresh worker queues the task and pushes the new process at that same
// position, where its first Recv picks the task up without parking. Either
// way the arm starts at the instant and ready-order the old per-arm Spawn
// gave it, so virtual-time schedules — and hence RNG streams and golden
// outputs — are unchanged.
type fanTask struct {
	// span is the trace span the arm's work is attributed to (nil when the
	// operation is untraced).
	span *trace.Span

	// Batch fan-out: serve one routed group, reporting success. The serve
	// closure is shared by every group of a batch, so a k-group fan-out
	// allocates nothing per arm.
	g     *batchGroup
	serve func(p *sim.Proc, g *batchGroup) bool

	// Generic bool fan-out (Complete acks): one closure per arm.
	boolRun func(p *sim.Proc) bool

	// Commit-train fan-out: one closure per train.
	errRun func(p *sim.Proc) error

	// Exactly one of boolResults/errResults is set and receives the arm's
	// outcome after its deferred delay has been flushed.
	boolResults *sim.Mailbox[bool]
	errResults  *sim.Mailbox[error]
}

// fanWorker is one pooled worker process, addressed by its task mailbox.
type fanWorker struct {
	tasks *sim.Mailbox[fanTask]
}

// dispatch hands task to an idle pooled worker, spawning one only when the
// pool is empty (LIFO reuse keeps the pool at the high-water mark of
// concurrent arms).
func (c *Cluster) dispatch(task fanTask) {
	var w *fanWorker
	if n := len(c.freeWorkers); n > 0 {
		w = c.freeWorkers[n-1]
		c.freeWorkers[n-1] = nil
		c.freeWorkers = c.freeWorkers[:n-1]
	} else {
		w = c.newWorker()
	}
	w.tasks.Send(task)
}

func (c *Cluster) newWorker() *fanWorker {
	w := &fanWorker{tasks: sim.NewMailbox[fanTask](c.env)}
	c.env.Spawn("ndb-fan", func(p *sim.Proc) {
		for {
			// A worker re-enters the free list only after finishing a task,
			// so a busy worker is never dispatched to; its queue holds at
			// most the one task a fresh spawn was created for.
			task := w.tasks.Recv(p)
			p.SetSpan(task.span)
			var ok bool
			var err error
			switch {
			case task.errResults != nil:
				err = task.errRun(p)
			case task.g != nil:
				ok = task.serve(p, task.g)
			default:
				ok = task.boolRun(p)
			}
			p.Flush()
			// Drop the span before parking so a pooled worker does not pin
			// a finished operation's trace memory.
			p.SetSpan(nil)
			if task.errResults != nil {
				task.errResults.Send(err)
			} else {
				task.boolResults.Send(ok)
			}
			c.freeWorkers = append(c.freeWorkers, w)
		}
	})
	return w
}

// Result-mailbox pools. A fan-out's collector drains exactly as many
// results as it dispatched arms before returning the mailbox, so a pooled
// mailbox is always empty (and waiter-free) when reused.

func (c *Cluster) getBoolMbx() *sim.Mailbox[bool] {
	if n := len(c.freeBoolMbx); n > 0 {
		m := c.freeBoolMbx[n-1]
		c.freeBoolMbx[n-1] = nil
		c.freeBoolMbx = c.freeBoolMbx[:n-1]
		return m
	}
	return sim.NewMailbox[bool](c.env)
}

func (c *Cluster) putBoolMbx(m *sim.Mailbox[bool]) {
	c.freeBoolMbx = append(c.freeBoolMbx, m)
}

func (c *Cluster) getErrMbx() *sim.Mailbox[error] {
	if n := len(c.freeErrMbx); n > 0 {
		m := c.freeErrMbx[n-1]
		c.freeErrMbx[n-1] = nil
		c.freeErrMbx = c.freeErrMbx[:n-1]
		return m
	}
	return sim.NewMailbox[error](c.env)
}

func (c *Cluster) putErrMbx(m *sim.Mailbox[error]) {
	c.freeErrMbx = append(c.freeErrMbx, m)
}

// batchScratch holds the per-batch working arrays of groupByTarget and the
// batch entry points (ReadBatch/ScanBatch/WriteBatch). A batch checks one
// out for its whole lifetime — routing through fan-out — and returns it
// when done, so concurrent transactions never share one and the pool grows
// to the high-water mark of in-flight batches.
type batchScratch struct {
	targets []*DataNode
	backing []batchGroup
	groups  []*batchGroup
	buf     []int
	slots   []int
	parts   []*Partition
	errs    []error
}

func (c *Cluster) getScratch() *batchScratch {
	if n := len(c.freeScratch); n > 0 {
		sc := c.freeScratch[n-1]
		c.freeScratch[n-1] = nil
		c.freeScratch = c.freeScratch[:n-1]
		return sc
	}
	return &batchScratch{}
}

func (c *Cluster) putScratch(sc *batchScratch) {
	c.freeScratch = append(c.freeScratch, sc)
}

// intsFor returns a zeroed length-n int slice backed by sc.slots.
func (sc *batchScratch) intsFor(n int) []int {
	if cap(sc.slots) < n {
		sc.slots = make([]int, n)
	}
	s := sc.slots[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// partsFor returns a zeroed length-n partition slice backed by sc.parts.
func (sc *batchScratch) partsFor(n int) []*Partition {
	if cap(sc.parts) < n {
		sc.parts = make([]*Partition, n)
	}
	s := sc.parts[:n]
	for i := range s {
		s[i] = nil
	}
	return s
}

// errsFor returns a zeroed length-n error slice backed by sc.errs.
func (sc *batchScratch) errsFor(n int) []error {
	if cap(sc.errs) < n {
		sc.errs = make([]error, n)
	}
	s := sc.errs[:n]
	for i := range s {
		s[i] = nil
	}
	return s
}
