package ndb

import "hopsfscl/internal/sim"

// TableOptions are the per-table features of §IV-A3.
type TableOptions struct {
	// ReadBackup delays the commit Ack until all backup replicas have
	// completed, making read-committed reads consistent on every replica.
	// HopsFS-CL enables it for all tables (§IV-A5).
	ReadBackup bool
	// FullyReplicated keeps a replica of every partition on every
	// datanode, trading slower writes for AZ-local reads everywhere.
	FullyReplicated bool
}

// Value is a stored row value. Values must be treated as immutable by
// callers: store a fresh value instead of mutating one read back.
type Value any

// Table is a distributed table: rows keyed by (partition key, row key).
type Table struct {
	c          *Cluster
	name       string
	rowSize    int
	opts       TableOptions
	partitions []*Partition
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Cluster returns the cluster that owns the table; the shard router uses
// it to group batch items by the shard their table lives on.
func (t *Table) Cluster() *Cluster { return t.c }

// Options returns the table's feature flags.
func (t *Table) Options() TableOptions { return t.opts }

// Partitions returns the table's partitions (index order).
func (t *Table) Partitions() []*Partition { return t.partitions }

// RowSize is the nominal on-wire size of one row, used for network and
// disk accounting.
func (t *Table) RowSize() int { return t.rowSize }

// partitionFor maps a partition key to its partition.
func (t *Table) partitionFor(partKey string) *Partition {
	return t.partitions[hashKey(partKey, len(t.partitions))]
}

// PrimaryFor returns the current primary replica datanode of the partition
// holding partKey, or nil when the whole node group is down. Benchmarks use
// it to pick partition keys with a known client/primary zone relationship.
func (t *Table) PrimaryFor(partKey string) *DataNode {
	reps := t.partitionFor(partKey).replicas()
	if len(reps) == 0 {
		return nil
	}
	return reps[0]
}

// Partition is one horizontal fragment of a table, owned by a node group.
// The primary replica serves locked reads and heads the commit chain;
// backups are readable under Read Backup. Row data is held once (replicas
// converge at commit; the staleness window is enforced by routing rules,
// not by duplicate storage).
type Partition struct {
	table   *Table
	index   int
	group   int
	primary int // index into the node group's slice
	// rows buckets by partition key, then row key: all rows of one
	// partition key (e.g. one directory's children) live in one bucket, so
	// partition-pruned scans touch only the relevant bucket.
	rows map[string]map[string]*row

	// reads counts served reads per replica slot (0 = current primary's
	// slot at read time) — the Figure 14 measurement.
	reads []int64

	// repCache memoizes replicas() for the topology epoch repEpoch: the
	// alive-replica list only changes when a node fails, recovers, is shut
	// down, or the primary is promoted, all of which bump an epoch.
	repCache []*DataNode
	repEpoch uint64
}

// Index returns the partition's index within its table.
func (p *Partition) Index() int { return p.index }

// Group returns the owning node group.
func (p *Partition) Group() int { return p.group }

// ReadCounts returns a copy of per-replica-slot served read counters,
// slot 0 being the primary.
func (p *Partition) ReadCounts() []int64 {
	out := make([]int64, len(p.reads))
	copy(out, p.reads)
	return out
}

// replicas returns the alive replica datanodes for this partition with the
// current primary first, then backups in group order. For fully replicated
// tables the partition is additionally present on all other groups; those
// copies are resolved by the routing code, not listed here.
//
// The list is memoized per topology epoch — it is recomputed only after a
// node liveness or primary change, not per row routed. Callers must treat
// the returned slice as read-only.
func (p *Partition) replicas() []*DataNode {
	c := p.table.c
	epoch := c.topoEpoch + c.net.TopoEpoch()
	if p.repCache != nil && p.repEpoch == epoch {
		return p.repCache
	}
	group := c.groups[p.group]
	// Rebuilds allocate fresh: an in-flight operation may still hold the
	// previous epoch's slice across a park.
	out := make([]*DataNode, 0, len(group))
	for i := 0; i < len(group); i++ {
		dn := group[(p.primary+i)%len(group)]
		if dn.Alive() {
			out = append(out, dn)
		}
	}
	p.repCache, p.repEpoch = out, epoch
	return out
}

// promoteFrom makes the next alive replica primary if the current primary
// is the given failed node.
func (p *Partition) promoteFrom(failed *DataNode) {
	group := p.table.c.groups[p.group]
	if group[p.primary] != failed {
		return
	}
	for i := 1; i < len(group); i++ {
		cand := (p.primary + i) % len(group)
		if group[cand].Alive() {
			p.primary = cand
			p.table.c.topoEpoch++
			return
		}
	}
}

// StoreDirect writes a committed row bypassing the transaction machinery.
// It exists only for bootstrap seeding (e.g. a file system root inode or a
// pre-built benchmark namespace) before any traffic runs.
func StoreDirect(t *Table, partKey, key string, val Value) {
	part := t.partitionFor(partKey)
	r := part.getRow(partKey, key)
	r.val = val
	r.exists = true
}

// row is one stored row with its lock state. epoch records the global
// checkpoint epoch of the last committed write: rows newer than the
// durable epoch do not survive a whole-cluster failure (§II-B2).
type row struct {
	val     Value
	exists  bool
	epoch   uint64
	pending *pendingWrite
	lock    rowLock
}

type pendingWrite struct {
	val    Value
	delete bool
	txn    uint64
}

// LockMode is the strength of a row lock.
type LockMode int

// Lock modes.
const (
	// LockShared allows concurrent shared holders.
	LockShared LockMode = iota + 1
	// LockExclusive allows a single holder.
	LockExclusive
)

// rowLock implements strict two-phase locking per row with FIFO waiters.
// Deadlocks resolve via the waiters' timeouts (the NDB
// TransactionDeadlockDetectionTimeout mechanism).
type rowLock struct {
	holders map[uint64]LockMode
	waiters []*lockWaiter
}

type lockWaiter struct {
	txn     uint64
	mode    LockMode
	granted *sim.Mailbox[bool]
}

// compatible reports whether txn may take mode given current holders.
func (l *rowLock) compatible(txn uint64, mode LockMode) bool {
	for holder, hm := range l.holders {
		if holder == txn {
			continue
		}
		if mode == LockExclusive || hm == LockExclusive {
			return false
		}
	}
	return true
}

// acquire attempts to grant immediately; if it cannot, it enqueues a waiter
// and returns the mailbox the grant (or nothing, on timeout) arrives on.
func (l *rowLock) acquire(env *sim.Env, txn uint64, mode LockMode) *sim.Mailbox[bool] {
	if cur, ok := l.holders[txn]; ok && cur >= mode {
		return nil // already held at sufficient strength
	}
	if len(l.waiters) == 0 && l.compatible(txn, mode) {
		l.grant(txn, mode)
		return nil
	}
	w := &lockWaiter{txn: txn, mode: mode, granted: sim.NewMailbox[bool](env)}
	l.waiters = append(l.waiters, w)
	return w.granted
}

func (l *rowLock) grant(txn uint64, mode LockMode) {
	if l.holders == nil {
		l.holders = make(map[uint64]LockMode, 2)
	}
	if cur, ok := l.holders[txn]; !ok || mode > cur {
		l.holders[txn] = mode
	}
}

// release drops txn's hold and grants as many FIFO waiters as possible.
func (l *rowLock) release(txn uint64) {
	delete(l.holders, txn)
	l.pump()
}

// removeWaiter drops a timed-out waiter from the queue.
func (l *rowLock) removeWaiter(txn uint64) {
	for i, w := range l.waiters {
		if w.txn == txn {
			l.waiters = append(l.waiters[:i], l.waiters[i+1:]...)
			break
		}
	}
	l.pump()
}

// blockerOf returns the transaction most plausibly blocking txn: the
// lowest-ID current holder other than txn itself (deterministic despite the
// holder map), else the queued waiter ahead of it. The second argument is
// false when nothing is blocking.
func (l *rowLock) blockerOf(txn uint64) (uint64, bool) {
	var best uint64
	found := false
	for h := range l.holders {
		if h == txn {
			continue
		}
		if !found || h < best {
			best = h
			found = true
		}
	}
	if found {
		return best, true
	}
	for _, w := range l.waiters {
		if w.txn != txn {
			return w.txn, true
		}
	}
	return 0, false
}

// pump grants waiters at the head of the queue while compatible.
func (l *rowLock) pump() {
	for len(l.waiters) > 0 {
		w := l.waiters[0]
		if !l.compatible(w.txn, w.mode) {
			return
		}
		l.waiters = l.waiters[1:]
		l.grant(w.txn, w.mode)
		w.granted.Send(true)
	}
}
