package ndb

import (
	"hopsfscl/internal/sim"
)

// Global checkpoint (GCP) durability semantics (§II-B2): NDB transactions
// commit in memory; durability is provided by the global checkpoint
// protocol, which periodically fences an epoch across all node groups and
// flushes its REDO to disk. Committed transactions in epochs newer than
// the last completed global checkpoint survive any partial failure (the
// surviving replicas hold them), but a failure of the WHOLE cluster loses
// them: recovery restores the last durable epoch.
//
// The epoch counter lives on the cluster; every committed write stamps its
// row with the current epoch. The per-node checkpoint loops flush REDO to
// disk; the cluster-level ticker advances the durable horizon.

// gcpLoop advances the global checkpoint epoch every GCPInterval: epoch n
// becomes durable once every alive node has flushed (modelled by the
// per-node checkpoint loops sharing the same period).
func (c *Cluster) gcpLoop(p *sim.Proc) {
	for !c.bgStop {
		p.Sleep(c.cfg.GCPInterval)
		c.gcpEpoch++
		c.durableEpoch = c.gcpEpoch - 1
	}
}

// CurrentEpoch returns the in-progress global checkpoint epoch.
func (c *Cluster) CurrentEpoch() uint64 { return c.gcpEpoch }

// DurableEpoch returns the newest epoch guaranteed recoverable after a
// whole-cluster failure.
func (c *Cluster) DurableEpoch() uint64 { return c.durableEpoch }

// CrashRestartCluster simulates the §II-B2 whole-cluster failure and
// system recovery from the global checkpoints: every datanode restarts,
// and all committed writes from epochs newer than the last durable global
// checkpoint are rolled back (they never reached disk anywhere). The
// caller's process is charged the recovery REDO replay from each node's
// disk. Lock state is cleared: no transactions survive a cluster crash.
func (c *Cluster) CrashRestartCluster(p *sim.Proc) {
	durable := c.durableEpoch
	for _, t := range c.tables {
		for _, part := range t.partitions {
			for pk, bucket := range part.rows {
				for key, r := range bucket {
					r.lock = rowLock{}
					if r.epoch > durable {
						// Not yet durable: lost with the cluster.
						delete(bucket, key)
					}
				}
				if len(bucket) == 0 {
					delete(part.rows, pk)
				}
			}
		}
	}
	// Restart every node; replay charges the REDO read from local disk.
	for _, dn := range c.datanodes {
		wasDown := !dn.Alive()
		dn.Node.Recover()
		dn.shutdown = false
		dn.declaredDead = false
		dn.redoPending = 0
		var replay int
		for _, t := range c.tables {
			for _, part := range t.partitions {
				if part.group != dn.Group && !t.opts.FullyReplicated {
					continue
				}
				for _, bucket := range part.rows {
					replay += len(bucket) * t.rowSize
				}
			}
		}
		if replay > 0 {
			dn.Node.DiskRead(p, replay)
		}
		if wasDown {
			c.env.Spawn(dn.Node.Name()+"/server", func(sp *sim.Proc) { dn.serve(sp) })
			c.env.Spawn(dn.Node.Name()+"/hb", func(sp *sim.Proc) { dn.heartbeatLoop(sp) })
			c.env.Spawn(dn.Node.Name()+"/gcp", func(sp *sim.Proc) { dn.checkpointLoop(sp) })
		}
	}
	c.gcpEpoch = durable + 1
}
