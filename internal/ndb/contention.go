package ndb

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hopsfscl/internal/metrics"
)

// This file is the contention ledger: when a transaction blocks on a row
// lock, the cluster records who waited on whom — (table, lock mode, waiter
// operation type, holder operation type, wait duration) — into a bounded,
// deterministic aggregate, plus a sampled ring of individual wait-for
// edges. The paper attributes HopsFS's behavior under load to hierarchical
// lock contention (§V-C/V-E); the ledger turns the existing txn.lock_wait
// total into "which op blocked which op on which table".
//
// The kernel runs one process at a time, so the ledger needs no locking
// (the same discipline as Cluster.Stats). All bounds are deterministic:
// eviction never depends on map iteration, and sampling is count-based.

// lockModeLabel names a lock mode for reports and metric labels.
func lockModeLabel(m LockMode) string {
	switch m {
	case LockShared:
		return "S"
	case LockExclusive:
		return "X"
	default:
		return "?"
	}
}

// contKey aggregates blocking events by everything the report groups on.
type contKey struct {
	table  string
	holder string
	waiter string
	mode   LockMode
}

// ContentionEntry is the aggregate for one (table, holder op, waiter op,
// lock mode) combination.
type ContentionEntry struct {
	Table    string
	Holder   string
	Waiter   string
	Mode     LockMode
	Count    int64
	Timeouts int64
	Total    time.Duration
	Max      time.Duration
}

// WaitEdge is one sampled wait-for edge: a concrete instance of waiter
// blocking on holder.
type WaitEdge struct {
	At       time.Duration
	Table    string
	Holder   string
	Waiter   string
	Mode     LockMode
	Wait     time.Duration
	TimedOut bool
}

// ContentionLedger is the bounded record of lock blocking in one cluster.
type ContentionLedger struct {
	capKeys     int
	entries     map[contKey]*ContentionEntry
	droppedKeys int64
	events      int64

	sampleEvery int64
	sampleCap   int
	samples     []WaitEdge
	sampleNext  int
}

// ledger sizing: generous enough that real runs never overflow (tables ×
// op-type pairs is small), bounded so a pathological workload cannot grow
// without limit.
const (
	contCapKeys     = 1024
	contSampleCap   = 256
	contSampleEvery = 8
)

func newContentionLedger() *ContentionLedger {
	return &ContentionLedger{
		capKeys:     contCapKeys,
		entries:     make(map[contKey]*ContentionEntry),
		sampleEvery: contSampleEvery,
		sampleCap:   contSampleCap,
	}
}

// record folds one resolved blocking event into the ledger.
func (l *ContentionLedger) record(now time.Duration, table, holder, waiter string, mode LockMode, wait time.Duration, timedOut bool) {
	if l == nil {
		return
	}
	l.events++
	key := contKey{table: table, holder: holder, waiter: waiter, mode: mode}
	e := l.entries[key]
	if e == nil {
		if len(l.entries) >= l.capKeys {
			// Bounded: overflow folds into a catch-all bucket so totals
			// stay exact even when the key space is exhausted.
			l.droppedKeys++
			key = contKey{table: "(other)", holder: "(other)", waiter: "(other)"}
			if e = l.entries[key]; e == nil {
				e = &ContentionEntry{Table: key.table, Holder: key.holder, Waiter: key.waiter}
				l.entries[key] = e
			}
		} else {
			e = &ContentionEntry{Table: table, Holder: holder, Waiter: waiter, Mode: mode}
			l.entries[key] = e
		}
	}
	e.Count++
	e.Total += wait
	if wait > e.Max {
		e.Max = wait
	}
	if timedOut {
		e.Timeouts++
	}
	// Every Nth event lands in the sample ring (FIFO once full), a
	// deterministic sketch of individual wait-for edges for debugging.
	if l.events%l.sampleEvery == 1 || l.sampleEvery == 1 {
		edge := WaitEdge{At: now, Table: table, Holder: holder, Waiter: waiter, Mode: mode, Wait: wait, TimedOut: timedOut}
		if len(l.samples) < l.sampleCap {
			l.samples = append(l.samples, edge)
		} else {
			l.samples[l.sampleNext] = edge
			l.sampleNext = (l.sampleNext + 1) % l.sampleCap
		}
	}
}

// Events returns how many blocking events the ledger has seen.
func (l *ContentionLedger) Events() int64 {
	if l == nil {
		return 0
	}
	return l.events
}

// DroppedKeys returns how many events were folded into the catch-all
// bucket because the key space was full.
func (l *ContentionLedger) DroppedKeys() int64 {
	if l == nil {
		return 0
	}
	return l.droppedKeys
}

// Entries returns the aggregated blocking entries ordered by total wait
// descending, with (table, holder, waiter, mode) as the deterministic
// tie-break.
func (l *ContentionLedger) Entries() []ContentionEntry {
	if l == nil {
		return nil
	}
	out := make([]ContentionEntry, 0, len(l.entries))
	for _, e := range l.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Total != b.Total {
			return a.Total > b.Total
		}
		if a.Table != b.Table {
			return a.Table < b.Table
		}
		if a.Holder != b.Holder {
			return a.Holder < b.Holder
		}
		if a.Waiter != b.Waiter {
			return a.Waiter < b.Waiter
		}
		return a.Mode < b.Mode
	})
	return out
}

// Samples returns the sampled wait-for edges, oldest first.
func (l *ContentionLedger) Samples() []WaitEdge {
	if l == nil {
		return nil
	}
	out := make([]WaitEdge, 0, len(l.samples))
	out = append(out, l.samples[l.sampleNext:]...)
	out = append(out, l.samples[:l.sampleNext]...)
	return out
}

// Reset clears the ledger — a measurement window restarting its view.
func (l *ContentionLedger) Reset() {
	if l == nil {
		return
	}
	l.entries = make(map[contKey]*ContentionEntry)
	l.droppedKeys = 0
	l.events = 0
	l.samples = l.samples[:0]
	l.sampleNext = 0
}

// TableContention is the per-table rollup of the ledger.
type TableContention struct {
	Table    string
	Count    int64
	Timeouts int64
	Total    time.Duration
	Max      time.Duration
}

// TopTables returns up to n tables by total blocked time descending (table
// name breaks ties).
func (l *ContentionLedger) TopTables(n int) []TableContention {
	if l == nil {
		return nil
	}
	agg := make(map[string]*TableContention)
	for _, e := range l.entries {
		t := agg[e.Table]
		if t == nil {
			t = &TableContention{Table: e.Table}
			agg[e.Table] = t
		}
		t.Count += e.Count
		t.Timeouts += e.Timeouts
		t.Total += e.Total
		if e.Max > t.Max {
			t.Max = e.Max
		}
	}
	out := make([]TableContention, 0, len(agg))
	for _, t := range agg {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Table < out[j].Table
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Render formats the ledger as the two tables operators ask for: top
// contended tables and top blocking op pairs, each limited to n rows.
func (l *ContentionLedger) Render(n int) string {
	if l == nil || l.events == 0 {
		return "(no lock contention recorded)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "top contended tables (%d blocking events", l.events)
	if l.droppedKeys > 0 {
		fmt.Fprintf(&b, ", %d folded into (other)", l.droppedKeys)
	}
	b.WriteString("):\n")
	tt := metrics.NewTable("table", "blocks", "timeouts", "total wait", "max wait")
	for _, t := range l.TopTables(n) {
		tt.AddRow(t.Table,
			fmt.Sprintf("%d", t.Count),
			fmt.Sprintf("%d", t.Timeouts),
			fmt.Sprintf("%.3fms", float64(t.Total)/1e6),
			fmt.Sprintf("%.3fms", float64(t.Max)/1e6))
	}
	b.WriteString(tt.String())

	b.WriteString("\ntop blocking op pairs (holder -> waiter):\n")
	pt := metrics.NewTable("holder", "waiter", "table", "mode", "blocks", "total wait", "mean wait")
	entries := l.Entries()
	if n > 0 && len(entries) > n {
		entries = entries[:n]
	}
	for _, e := range entries {
		mean := time.Duration(0)
		if e.Count > 0 {
			mean = e.Total / time.Duration(e.Count)
		}
		pt.AddRow(e.Holder, e.Waiter, e.Table, lockModeLabel(e.Mode),
			fmt.Sprintf("%d", e.Count),
			fmt.Sprintf("%.3fms", float64(e.Total)/1e6),
			fmt.Sprintf("%.3fms", float64(mean)/1e6))
	}
	b.WriteString(pt.String())
	return b.String()
}
