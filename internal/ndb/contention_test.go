package ndb

import (
	"strings"
	"testing"
	"time"

	"hopsfscl/internal/sim"
	"hopsfscl/internal/trace"
)

// runContention drives one holder/waiter collision on a traced cluster and
// returns it for inspection.
func runContention(t *testing.T) *Cluster {
	t.Helper()
	env, c, client := testCluster(t, true, 3)
	c.SetTracer(trace.NewTracer(trace.NewRegistry()))
	tbl := c.CreateTable("inodes", 64, TableOptions{ReadBackup: true})
	touch := func(name string, hold, delay time.Duration) {
		env.Spawn(name, func(p *sim.Proc) {
			p.Sleep(delay)
			tx, err := c.Begin(p, client, 1, tbl, "p")
			if err != nil {
				t.Error(err)
				return
			}
			if err := tx.Insert(tbl, "p", "k", name); err != nil {
				t.Error(err)
				return
			}
			p.Sleep(hold)
			if err := tx.Commit(); err != nil {
				t.Error(err)
			}
		})
	}
	touch("holder-op", 30*time.Millisecond, 0)
	touch("waiter-op", 0, 5*time.Millisecond)
	env.RunFor(time.Second)
	return c
}

func TestContentionLedgerRecordsBlockingPair(t *testing.T) {
	c := runContention(t)
	l := c.Contention()
	if l == nil {
		t.Fatal("no ledger on traced cluster")
	}
	if l.Events() != 1 {
		t.Fatalf("events = %d, want 1", l.Events())
	}
	entries := l.Entries()
	if len(entries) != 1 {
		t.Fatalf("entries = %+v, want exactly one", entries)
	}
	e := entries[0]
	if e.Table != "inodes" || e.Holder != "holder-op" || e.Waiter != "waiter-op" {
		t.Fatalf("entry = %+v", e)
	}
	if e.Mode != LockExclusive || e.Count != 1 || e.Timeouts != 0 {
		t.Fatalf("entry = %+v", e)
	}
	if e.Total <= 0 || e.Max != e.Total {
		t.Fatalf("wait accounting: %+v", e)
	}
	// The sampled edge ring saw the same event.
	samples := l.Samples()
	if len(samples) != 1 || samples[0].Holder != "holder-op" || samples[0].Wait != e.Total {
		t.Fatalf("samples = %+v", samples)
	}
	// Registry metrics mirror the ledger.
	reg := c.tracer.Registry()
	if got := reg.Counter("ndb.contention.blocks", "table", "inodes").Value(); got != 1 {
		t.Fatalf("ndb.contention.blocks = %d, want 1", got)
	}
	if got := reg.Counter("ndb.contention.wait_ns", "table", "inodes").Value(); got != int64(e.Total) {
		t.Fatalf("ndb.contention.wait_ns = %d, want %d", got, e.Total)
	}
	if got := reg.Counter("ndb.contention.pairs", "holder", "holder-op", "waiter", "waiter-op").Value(); got != 1 {
		t.Fatalf("ndb.contention.pairs = %d, want 1", got)
	}
}

func TestContentionRenderDeterministic(t *testing.T) {
	a := runContention(t).Contention().Render(10)
	b := runContention(t).Contention().Render(10)
	if a != b {
		t.Fatalf("render not deterministic:\n%s\nvs\n%s", a, b)
	}
	for _, want := range []string{"top contended tables", "top blocking op pairs", "inodes", "holder-op", "waiter-op"} {
		if !strings.Contains(a, want) {
			t.Errorf("render missing %q:\n%s", want, a)
		}
	}
}

func TestContentionLedgerBounded(t *testing.T) {
	l := newContentionLedger()
	for i := 0; i < contCapKeys+50; i++ {
		l.record(0, "t", "h", strings.Repeat("w", 1+i%3)+string(rune('a'+i%26))+strings.Repeat("x", i/26), LockShared, time.Millisecond, false)
	}
	if len(l.entries) > contCapKeys+1 { // +1 for the catch-all bucket
		t.Fatalf("ledger grew to %d keys", len(l.entries))
	}
	if l.DroppedKeys() == 0 {
		t.Fatal("no dropped keys counted after overflow")
	}
	var count int64
	for _, e := range l.Entries() {
		count += e.Count
	}
	if count != l.Events() {
		t.Fatalf("entry counts %d != events %d (overflow lost events)", count, l.Events())
	}
}

func TestContentionLedgerSampleRingBounded(t *testing.T) {
	l := newContentionLedger()
	n := int64(contSampleCap*int(contSampleEvery)*2 + 7)
	for i := int64(0); i < n; i++ {
		l.record(time.Duration(i), "t", "h", "w", LockExclusive, time.Millisecond, false)
	}
	s := l.Samples()
	if len(s) != contSampleCap {
		t.Fatalf("sample ring = %d, want %d", len(s), contSampleCap)
	}
	for i := 1; i < len(s); i++ {
		if s[i].At <= s[i-1].At {
			t.Fatal("samples not oldest-first")
		}
	}
}

func TestContentionNilSafety(t *testing.T) {
	var l *ContentionLedger
	l.record(0, "t", "h", "w", LockShared, 0, false)
	if l.Events() != 0 || l.Entries() != nil || l.Samples() != nil || l.TopTables(5) != nil {
		t.Fatal("nil ledger not inert")
	}
	if !strings.Contains(l.Render(5), "no lock contention") {
		t.Fatal("nil ledger render")
	}
	l.Reset()
}
