package ndb

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"hopsfscl/internal/sim"
	"hopsfscl/internal/simnet"
)

// TestPropRowLockInvariants drives a row lock with random acquire/release
// sequences and checks the classic 2PL invariants after every step: at most
// one exclusive holder, shared and exclusive never coexist, and no granted
// waiter remains queued.
func TestPropRowLockInvariants(t *testing.T) {
	prop := func(seed int64, opsRaw []byte) bool {
		env := sim.New(seed)
		defer env.Close()
		var l rowLock
		rng := rand.New(rand.NewSource(seed))
		held := map[uint64]LockMode{}
		pendingTxns := map[uint64]bool{}
		for _, b := range opsRaw {
			txn := uint64(b%6) + 1
			switch {
			case b%3 != 0:
				mode := LockShared
				if b%2 == 0 {
					mode = LockExclusive
				}
				if pendingTxns[txn] {
					continue // txn already waiting; a real txn blocks
				}
				mb := l.acquire(env, txn, mode)
				if mb == nil {
					if cur := l.holders[txn]; cur < mode {
						t.Errorf("grant did not record mode: %v < %v", cur, mode)
						return false
					}
					held[txn] = l.holders[txn]
				} else {
					pendingTxns[txn] = true
				}
			default:
				if len(held) == 0 {
					continue
				}
				var victims []uint64
				for h := range held {
					victims = append(victims, h)
				}
				victim := victims[rng.Intn(len(victims))]
				l.release(victim)
				delete(held, victim)
				// Grants may have fired: sync view from holders.
				for h, m := range l.holders {
					held[h] = m
					delete(pendingTxns, h)
				}
			}
			// Invariants.
			exclusive := 0
			shared := 0
			for _, m := range l.holders {
				if m == LockExclusive {
					exclusive++
				} else {
					shared++
				}
			}
			if exclusive > 1 {
				t.Errorf("%d exclusive holders", exclusive)
				return false
			}
			if exclusive == 1 && shared > 0 {
				t.Errorf("shared (%d) coexists with exclusive", shared)
				return false
			}
			// A queued waiter must genuinely be incompatible right now,
			// or behind another waiter (FIFO, no barging).
			if len(l.waiters) > 0 {
				w := l.waiters[0]
				if l.compatible(w.txn, w.mode) {
					t.Error("head waiter is compatible but not granted")
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropHashKeyBoundsAndDeterminism checks the partition hash.
func TestPropHashKeyBoundsAndDeterminism(t *testing.T) {
	prop := func(key string, n uint8) bool {
		parts := int(n%64) + 1
		a := hashKey(key, parts)
		b := hashKey(key, parts)
		return a == b && a >= 0 && a < parts
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropSpreadPlacementBalanced checks that SpreadPlacement distributes
// nodes evenly over zones and that every node group spans multiple zones
// whenever the geometry allows it.
func TestPropSpreadPlacementBalanced(t *testing.T) {
	prop := func(nodesRaw, zonesRaw, rfRaw uint8) bool {
		zones := int(zonesRaw%3) + 1
		rf := int(rfRaw%3) + 1
		// Node count: a multiple of rf and zones for clean geometry.
		factor := int(nodesRaw%4) + 1
		n := rf * zones * factor
		zoneIDs := make([]simnet.ZoneID, zones)
		for i := range zoneIDs {
			zoneIDs[i] = simnet.ZoneID(i + 1)
		}
		pls := SpreadPlacement(n, zoneIDs, 0)
		if len(pls) != n {
			return false
		}
		// Even spread.
		perZone := map[simnet.ZoneID]int{}
		for _, pl := range pls {
			perZone[pl.Zone]++
		}
		for _, c := range perZone {
			if c != n/zones {
				return false
			}
		}
		// Group coverage: group g = indices {g, g+numGroups, ...}.
		numGroups := n / rf
		want := min(zones, rf)
		for g := 0; g < numGroups; g++ {
			seen := map[simnet.ZoneID]bool{}
			for i := g; i < n; i += numGroups {
				seen[pls[i].Zone] = true
			}
			if len(seen) < want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropSequentialCommitsMatchOracle applies random sequential write
// transactions and checks that reads always return the last committed
// value, using a plain map as the oracle.
func TestPropSequentialCommitsMatchOracle(t *testing.T) {
	prop := func(seed int64, script []byte) bool {
		env := sim.New(seed)
		defer env.Close()
		net := simnet.New(env, simnet.USWest1())
		cfg := DefaultConfig()
		cfg.DataNodes = 6
		cfg.Replication = 3
		cfg.PartitionsPerTable = 8
		c, err := New(env, net, cfg, SpreadPlacement(6, []simnet.ZoneID{1, 2, 3}, 0), nil)
		if err != nil {
			t.Fatal(err)
		}
		tbl := c.CreateTable("t", 64, TableOptions{ReadBackup: true})
		client := net.NewNode("client", 1, 100)
		oracle := map[string]int{}
		ok := true
		env.Spawn("driver", func(p *sim.Proc) {
			for i, b := range script {
				pk := fmt.Sprintf("p%d", b%5)
				key := fmt.Sprintf("k%d", b%7)
				tx, err := c.Begin(p, client, 1, tbl, pk)
				if err != nil {
					t.Error(err)
					ok = false
					return
				}
				switch b % 3 {
				case 0: // write
					if err := tx.Insert(tbl, pk, key, i); err != nil {
						t.Error(err)
						ok = false
						return
					}
					if err := tx.Commit(); err != nil {
						t.Error(err)
						ok = false
						return
					}
					oracle[pk+"|"+key] = i
				case 1: // delete
					if err := tx.Delete(tbl, pk, key); err != nil {
						t.Error(err)
						ok = false
						return
					}
					if err := tx.Commit(); err != nil {
						t.Error(err)
						ok = false
						return
					}
					delete(oracle, pk+"|"+key)
				case 2: // read and compare
					v, found, err := tx.ReadCommitted(tbl, pk, key)
					if err != nil {
						t.Error(err)
						ok = false
						return
					}
					tx.Abort()
					want, exists := oracle[pk+"|"+key]
					if found != exists || (found && v.(int) != want) {
						t.Errorf("read (%v,%v), oracle (%v,%v)", v, found, want, exists)
						ok = false
						return
					}
				}
			}
		})
		env.RunFor(time.Minute)
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropTCSelectionSound checks the coordinator selection policy over
// random hints: the chosen TC is always alive, and for Read Backup tables
// with an AZ-local replica the TC shares the caller's domain.
func TestPropTCSelectionSound(t *testing.T) {
	env := sim.New(5)
	defer env.Close()
	net := simnet.New(env, simnet.USWest1())
	cfg := DefaultConfig()
	cfg.DataNodes = 6
	cfg.Replication = 3
	cfg.PartitionsPerTable = 12
	c, err := New(env, net, cfg, SpreadPlacement(6, []simnet.ZoneID{1, 2, 3}, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	rb := c.CreateTable("rb", 64, TableOptions{ReadBackup: true})
	plain := c.CreateTable("plain", 64, TableOptions{})
	clients := map[simnet.ZoneID]*simnet.Node{}
	for z := simnet.ZoneID(1); z <= 3; z++ {
		clients[z] = net.NewNode("cl", z, simnet.HostID(200+int(z)))
	}
	prop := func(hintRaw uint16, zoneRaw, tblRaw uint8) bool {
		z := simnet.ZoneID(zoneRaw%3) + 1
		hint := fmt.Sprintf("h%d", hintRaw)
		tbl := rb
		if tblRaw%2 == 0 {
			tbl = plain
		}
		tc := c.selectTC(clients[z], z, tbl, hint)
		if tc == nil || !tc.Alive() {
			return false
		}
		// §IV-A5 cases 1 and 3: with RF 3 over 3 AZs a replica of the
		// hinted partition exists in the caller's zone, so the coordinator
		// is always AZ-local (for plain tables only reads reroute to the
		// primary afterwards).
		if tc.Domain != z {
			return false
		}
		for _, rep := range tbl.partitionFor(hint).replicas() {
			if rep == tc {
				return true
			}
		}
		return false
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPropReplicasAlwaysAliveAndPrimaryFirst kills random datanodes and
// checks partition replica lists stay consistent.
func TestPropReplicasAlwaysAliveAndPrimaryFirst(t *testing.T) {
	prop := func(seed int64, kills []byte) bool {
		env := sim.New(seed)
		defer env.Close()
		net := simnet.New(env, simnet.USWest1())
		cfg := DefaultConfig()
		cfg.DataNodes = 6
		cfg.Replication = 3
		cfg.PartitionsPerTable = 6
		c, err := New(env, net, cfg, SpreadPlacement(6, []simnet.ZoneID{1, 2, 3}, 0), nil)
		if err != nil {
			t.Fatal(err)
		}
		tbl := c.CreateTable("t", 64, TableOptions{ReadBackup: true})
		if len(kills) > 4 {
			kills = kills[:4] // keep at least 2 nodes alive
		}
		for _, k := range kills {
			dn := c.datanodes[int(k)%len(c.datanodes)]
			dn.Node.Fail()
			c.declareDead(dn)
		}
		for _, part := range tbl.Partitions() {
			reps := part.replicas()
			for _, dn := range reps {
				if !dn.Alive() {
					return false
				}
			}
			// All replicas of one partition belong to its node group.
			for _, dn := range reps {
				if dn.Group != part.Group() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropPartitionHealSymmetry drives random partition/heal sequences
// over the zone pairs and checks, after every step, that the partition
// relation stays symmetric and reflexively clean (a zone is never
// partitioned from itself), and that healing everything leaves no pair
// partitioned and the cluster able to commit.
func TestPropPartitionHealSymmetry(t *testing.T) {
	prop := func(seed int64, script []byte) bool {
		env := sim.New(seed)
		defer env.Close()
		net := simnet.New(env, simnet.USWest1())
		cfg := DefaultConfig()
		cfg.DataNodes = 6
		cfg.Replication = 3
		cfg.PartitionsPerTable = 8
		mgmt := []Placement{{Zone: 1, Host: 200}, {Zone: 2, Host: 201}, {Zone: 3, Host: 202}}
		c, err := New(env, net, cfg, SpreadPlacement(6, []simnet.ZoneID{1, 2, 3}, 0), mgmt)
		if err != nil {
			t.Fatal(err)
		}
		tbl := c.CreateTable("t", 64, TableOptions{})
		client := net.NewNode("client", 1, 100)
		pairs := [][2]simnet.ZoneID{{1, 2}, {1, 3}, {2, 3}}
		ok := true
		check := func() {
			for z := simnet.ZoneID(1); z <= 3; z++ {
				if net.Partitioned(z, z) {
					t.Errorf("zone %d partitioned from itself", z)
					ok = false
				}
			}
			for _, pr := range pairs {
				if net.Partitioned(pr[0], pr[1]) != net.Partitioned(pr[1], pr[0]) {
					t.Errorf("partition relation asymmetric for %v", pr)
					ok = false
				}
			}
		}
		for _, b := range script {
			pr := pairs[int(b)%len(pairs)]
			if b%2 == 0 {
				c.NextArbitrationEpoch()
				net.Partition(pr[0], pr[1])
			} else {
				net.Heal(pr[0], pr[1])
			}
			check()
			env.RunFor(50 * time.Millisecond)
		}
		// Heal everything and rejoin arbitration casualties; the cluster
		// must be whole and writable again.
		for _, pr := range pairs {
			net.Heal(pr[0], pr[1])
		}
		for _, pr := range pairs {
			if net.Partitioned(pr[0], pr[1]) {
				t.Errorf("pair %v still partitioned after heal", pr)
				ok = false
			}
		}
		env.Spawn("rejoin", func(p *sim.Proc) {
			// Shutdown orders from the last arbitration round may still be
			// in flight when the heal lands, so a node examined early in a
			// pass can go down moments later: keep making passes until one
			// finds every node already restored.
			for pass := 0; pass < 8; pass++ {
				stable := true
				for _, dn := range c.DataNodes() {
					if !dn.Alive() {
						c.Rejoin(p, dn)
						stable = false
					} else if dn.DeclaredDead() {
						c.Reinstate(p, dn)
						stable = false
					}
				}
				if stable && pass > 0 {
					return
				}
				p.Sleep(250 * time.Millisecond)
			}
		})
		env.RunFor(5 * time.Second)
		for _, dn := range c.DataNodes() {
			if !dn.Alive() || dn.DeclaredDead() {
				t.Errorf("datanode %d not restored after heal+rejoin", dn.Index)
				ok = false
			}
		}
		var commitErr error
		env.Spawn("commit", func(p *sim.Proc) {
			tx, err := c.Begin(p, client, 1, tbl, "pk")
			if err != nil {
				commitErr = err
				return
			}
			if err := tx.Insert(tbl, "pk", "k", "v"); err != nil {
				commitErr = err
				return
			}
			commitErr = tx.Commit()
		})
		env.RunFor(5 * time.Second)
		if commitErr != nil {
			t.Errorf("cluster not writable after full heal: %v", commitErr)
			ok = false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestPropNoHalfCommitUnderRepartition fires multi-row transactions (two
// rows hashed to different partitions) while a background process keeps
// re-partitioning and healing random zone pairs mid-flight. Whatever the
// commit outcome, the two rows of each transaction must be present either
// both or not at all — a mid-2PC partition may fail the transaction but
// can never half-commit it.
func TestPropNoHalfCommitUnderRepartition(t *testing.T) {
	prop := func(seed int64, flips []byte) bool {
		env := sim.New(seed)
		defer env.Close()
		net := simnet.New(env, simnet.USWest1())
		cfg := DefaultConfig()
		cfg.DataNodes = 6
		cfg.Replication = 3
		cfg.PartitionsPerTable = 8
		mgmt := []Placement{{Zone: 1, Host: 200}, {Zone: 2, Host: 201}, {Zone: 3, Host: 202}}
		c, err := New(env, net, cfg, SpreadPlacement(6, []simnet.ZoneID{1, 2, 3}, 0), mgmt)
		if err != nil {
			t.Fatal(err)
		}
		tbl := c.CreateTable("t", 64, TableOptions{ReadBackup: true})
		client := net.NewNode("client", 1, 100)
		pairs := [][2]simnet.ZoneID{{1, 2}, {1, 3}, {2, 3}}

		// The flipper toggles partitions on a cadence chosen to land inside
		// commit chains (2PC passes take a few hundred microseconds to a
		// few milliseconds across zones).
		env.Spawn("flipper", func(p *sim.Proc) {
			for i, b := range flips {
				pr := pairs[int(b)%len(pairs)]
				c.NextArbitrationEpoch()
				net.Partition(pr[0], pr[1])
				p.Sleep(time.Duration(1+int(b)%5) * time.Millisecond)
				net.Heal(pr[0], pr[1])
				p.Sleep(time.Duration(1+i%3) * time.Millisecond)
			}
		})
		type attempt struct {
			keyA, keyB string
			err        error
		}
		var attempts []attempt
		env.Spawn("writer", func(p *sim.Proc) {
			for i := 0; i < 2*len(flips)+4; i++ {
				// Distinct partition keys so the two rows commit through
				// two parallel chains.
				a := attempt{keyA: fmt.Sprintf("a%d", i), keyB: fmt.Sprintf("b%d", i)}
				tx, err := c.Begin(p, client, 1, tbl, a.keyA)
				if err != nil {
					a.err = err
					attempts = append(attempts, a)
					continue
				}
				if err := tx.Insert(tbl, a.keyA, "k", i); err == nil {
					if err2 := tx.Insert(tbl, a.keyB, "k", i); err2 == nil {
						a.err = tx.Commit()
					} else {
						a.err = err2
						tx.Abort()
					}
				} else {
					a.err = err
					tx.Abort()
				}
				attempts = append(attempts, a)
			}
		})
		env.RunFor(30 * time.Second)

		// Heal and rejoin everything, then audit atomicity directly on
		// committed state.
		for _, pr := range pairs {
			net.Heal(pr[0], pr[1])
		}
		env.Spawn("rejoin", func(p *sim.Proc) {
			// Shutdown orders from the last arbitration round may still be
			// in flight when the heal lands, so a node examined early in a
			// pass can go down moments later: keep making passes until one
			// finds every node already restored.
			for pass := 0; pass < 8; pass++ {
				stable := true
				for _, dn := range c.DataNodes() {
					if !dn.Alive() {
						c.Rejoin(p, dn)
						stable = false
					} else if dn.DeclaredDead() {
						c.Reinstate(p, dn)
						stable = false
					}
				}
				if stable && pass > 0 {
					return
				}
				p.Sleep(250 * time.Millisecond)
			}
		})
		env.RunFor(5 * time.Second)

		ok := true
		exists := func(pk string) bool {
			_, found := tbl.partitionFor(pk).committed(pk, "k")
			return found
		}
		for _, a := range attempts {
			hasA, hasB := exists(a.keyA), exists(a.keyB)
			if hasA != hasB {
				t.Errorf("half-commit: %s=%v %s=%v (commit err: %v)", a.keyA, hasA, a.keyB, hasB, a.err)
				ok = false
			}
			if a.err == nil && !hasA {
				t.Errorf("acked transaction %s/%s lost", a.keyA, a.keyB)
				ok = false
			}
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
