package ndb

import "sort"

// This file exports read-only accessors used by the chaos auditor
// (internal/chaos) to verify cross-layer invariants after fault injection.
// They inspect cluster state directly — outside the simulated network and
// transaction paths — and therefore must only be called while the
// simulation is quiesced (no workload in flight).

// Tables returns every table in the cluster, sorted by name so audit
// sweeps are deterministic.
func (c *Cluster) Tables() []*Table {
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Replicas returns the alive replica datanodes for the partition, primary
// first (the same view the transaction coordinator uses). The result is a
// copy; the internal list is memoized per topology epoch.
func (p *Partition) Replicas() []*DataNode {
	reps := p.replicas()
	out := make([]*DataNode, len(reps))
	copy(out, reps)
	return out
}

// ForEachCommitted calls fn for every committed row of the table, in
// sorted (partition key, row key) order.
func (t *Table) ForEachCommitted(fn func(partKey, key string, val Value)) {
	for _, part := range t.partitions {
		pks := make([]string, 0, len(part.rows))
		for pk := range part.rows {
			pks = append(pks, pk)
		}
		sort.Strings(pks)
		for _, pk := range pks {
			bucket := part.rows[pk]
			keys := make([]string, 0, len(bucket))
			for k := range bucket {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if r := bucket[k]; r.exists {
					fn(pk, k, r.val)
				}
			}
		}
	}
}

// HeldLocks returns a deterministic description of every row whose lock
// has holders or waiters. On a quiesced cluster (no transaction in flight)
// this must be empty: strict two-phase locking releases everything at
// commit or abort, so a surviving entry is a leaked lock.
func (c *Cluster) HeldLocks() []string {
	var out []string
	for _, t := range c.Tables() {
		for _, part := range t.partitions {
			for pk, bucket := range part.rows {
				for k, r := range bucket {
					if len(r.lock.holders) > 0 || len(r.lock.waiters) > 0 {
						out = append(out, t.name+"/"+pk+"/"+k)
					}
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

// InFlightTxns returns the number of transactions begun but neither
// committed nor aborted. Zero on a quiesced cluster.
func (c *Cluster) InFlightTxns() int64 {
	return c.Stats.Begun - c.Stats.Committed - c.Stats.Aborted
}

// DeclaredDead reports whether the cluster has declared this datanode dead
// (it must rejoin through node recovery before serving again).
func (dn *DataNode) DeclaredDead() bool { return dn.declaredDead }
