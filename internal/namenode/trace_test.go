package namenode

import (
	"testing"

	"hopsfscl/internal/sim"
	"hopsfscl/internal/trace"
)

// tracedHarness wires a tracer with a detailed sink into the test stack.
func tracedHarness(t *testing.T) (*harness, *trace.Sink) {
	h := newHarness(t)
	tr := trace.NewTracer(trace.NewRegistry())
	h.db.SetTracer(tr)
	h.ns.SetTracer(tr)
	return h, tr.EnableSink(256)
}

// phasesOf collects the names of all descendant spans of a root.
func phasesOf(s *trace.Span) map[string]int {
	out := map[string]int{}
	var walk func(sp *trace.Span)
	walk = func(sp *trace.Span) {
		for _, c := range sp.Children {
			out[c.Name]++
			walk(c)
		}
	}
	walk(s)
	return out
}

// TestEveryOpEmitsOneRootSpan drives each client operation once and checks
// that it produces exactly one root span carrying the operation's name,
// and that mutating operations show the linear-2PC phases underneath.
func TestEveryOpEmitsOneRootSpan(t *testing.T) {
	h, sink := tracedHarness(t)
	cl := h.client(1)

	steps := []struct {
		op      string
		mutates bool
		fn      func(p *sim.Proc) error
	}{
		{"mkdir", true, func(p *sim.Proc) error { return cl.Mkdir(p, "/t") }},
		{"create", true, func(p *sim.Proc) error { return cl.Create(p, "/t/f", 0) }},
		{"stat", false, func(p *sim.Proc) error { _, err := cl.Stat(p, "/t/f"); return err }},
		{"read", false, func(p *sim.Proc) error { _, err := cl.ReadFile(p, "/t/f"); return err }},
		{"list", false, func(p *sim.Proc) error { _, err := cl.List(p, "/t"); return err }},
		{"setPermission", true, func(p *sim.Proc) error { return cl.SetPermission(p, "/t/f", 0o600) }},
		{"setOwner", true, func(p *sim.Proc) error { return cl.SetOwner(p, "/t/f", "bob") }},
		{"contentSummary", false, func(p *sim.Proc) error { _, _, _, err := cl.Du(p, "/t"); return err }},
		{"rename", true, func(p *sim.Proc) error { return cl.Rename(p, "/t/f", "/t/g") }},
		{"delete", true, func(p *sim.Proc) error { return cl.Delete(p, "/t/g", false) }},
	}
	for _, step := range steps {
		step := step
		before := sink.Total()
		h.run(t, func(p *sim.Proc) {
			if err := step.fn(p); err != nil {
				t.Errorf("%s: %v", step.op, err)
			}
		})
		if t.Failed() {
			return
		}
		if got := sink.Total() - before; got != 1 {
			t.Fatalf("%s emitted %d root spans, want exactly 1", step.op, got)
		}
		spans := sink.Spans()
		root := spans[len(spans)-1]
		if root.Name != step.op {
			t.Fatalf("root span named %q, want %q", root.Name, step.op)
		}
		if root.Err {
			t.Fatalf("%s span flagged as error", step.op)
		}
		if root.Duration() <= 0 {
			t.Fatalf("%s span has duration %v", step.op, root.Duration())
		}
		ph := phasesOf(root)
		if ph["txn"] == 0 {
			t.Fatalf("%s span has no txn child: %v", step.op, ph)
		}
		if step.mutates {
			// ReadBackup is on in this harness, so a mutating transaction
			// runs all three linear-2PC passes.
			for _, want := range []string{"prepare", "commit", "complete"} {
				if ph[want] == 0 {
					t.Fatalf("%s span lacks %q phase: %v", step.op, want, ph)
				}
			}
		}
	}
}

// TestSpanPhasesNestInsideTxn checks structural nesting: phases are children
// of a txn span, not siblings of it, and their extents lie inside the root's.
func TestSpanPhasesNestInsideTxn(t *testing.T) {
	h, sink := tracedHarness(t)
	cl := h.client(2)
	h.run(t, func(p *sim.Proc) {
		if err := cl.Mkdir(p, "/nest"); err != nil {
			t.Error(err)
		}
	})
	spans := sink.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans captured")
	}
	root := spans[len(spans)-1]
	var txn *trace.Span
	for _, c := range root.Children {
		if c.Name == "txn" {
			txn = c
		}
		if c.Name == "prepare" || c.Name == "commit" || c.Name == "complete" {
			t.Fatalf("phase %q attached directly to the root", c.Name)
		}
	}
	if txn == nil {
		t.Fatalf("no txn child under root: %+v", root.Children)
	}
	var saw int
	var walk func(sp *trace.Span)
	walk = func(sp *trace.Span) {
		for _, c := range sp.Children {
			if c.Name == "prepare" || c.Name == "commit" || c.Name == "complete" {
				saw++
				if c.Start < root.Start || c.End > root.End {
					t.Fatalf("phase %q [%v,%v] outside root [%v,%v]",
						c.Name, c.Start, c.End, root.Start, root.End)
				}
			}
			walk(c)
		}
	}
	walk(txn)
	if saw == 0 {
		t.Fatal("no 2PC phases under the txn span")
	}
}

// TestAggregateModeCountsOpsWithoutSink checks the always-on tier: without
// a sink, no spans are retained but the registry still aggregates per-op
// latency and error counts.
func TestAggregateModeCountsOpsWithoutSink(t *testing.T) {
	h := newHarness(t)
	tr := trace.NewTracer(trace.NewRegistry())
	h.db.SetTracer(tr)
	h.ns.SetTracer(tr)
	cl := h.client(1)
	h.run(t, func(p *sim.Proc) {
		if err := cl.Mkdir(p, "/agg"); err != nil {
			t.Error(err)
			return
		}
		if _, err := cl.Stat(p, "/agg"); err != nil {
			t.Error(err)
		}
		if _, err := cl.Stat(p, "/missing"); err == nil {
			t.Error("stat of missing path succeeded")
		}
	})
	snap := tr.Registry().Snapshot()
	if v, _ := trace.Lookup(snap, "op.mkdir.latency.count"); v != 1 {
		t.Fatalf("mkdir count = %v", v)
	}
	if v, _ := trace.Lookup(snap, "op.stat.latency.count"); v != 2 {
		t.Fatalf("stat count = %v", v)
	}
	if v, _ := trace.Lookup(snap, "op.stat.errors"); v != 1 {
		t.Fatalf("stat errors = %v", v)
	}
	if v, _ := trace.Lookup(snap, "txn.lock.acquisitions"); v <= 0 {
		t.Fatalf("lock acquisitions = %v", v)
	}
	if tr.Sink().Total() != 0 {
		t.Fatal("spans retained without a sink")
	}
}
