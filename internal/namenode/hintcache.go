package namenode

import (
	"container/list"
	"strings"

	"hopsfscl/internal/trace"
)

// hintCache is the per-NN inode hint cache: path → inode id, bounded LRU.
// HopsFS NNs cache resolved path prefixes so transactions can (a) start at
// the right partition (the partition-key hint) and (b) batch the whole
// chain of inode reads optimistically. Entries may go stale — another NN
// can rename or delete the cached inode at any time — so every consumer
// must verify what it reads against the committed rows and fall back to
// the serial walk on mismatch; the cache is a performance hint, never an
// authority. Locally observed mutations (Rename, Delete) invalidate their
// subtree by prefix so the common case stays fresh.
//
// The cache is not a shared structure between simulated operations in the
// way real concurrent maps are: the simulation kernel runs processes
// cooperatively, so no locking is needed.
type hintCache struct {
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	// size mirrors len(items) into the metrics registry (nil-safe).
	size *trace.Gauge
}

// hintEntry is one cached path → inode-id mapping.
type hintEntry struct {
	path string
	id   uint64
}

// newHintCache returns an empty cache bounded to capacity entries.
// A non-positive capacity disables caching entirely (every get misses,
// every put is dropped) — useful for ablations.
func newHintCache(capacity int) *hintCache {
	return &hintCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// setGauge attaches the registry gauge mirroring the entry count.
func (hc *hintCache) setGauge(g *trace.Gauge) {
	hc.size = g
	hc.size.Set(float64(len(hc.items)))
}

// get returns the cached inode id for path, bumping it to most recently
// used.
func (hc *hintCache) get(path string) (uint64, bool) {
	el, ok := hc.items[path]
	if !ok {
		return 0, false
	}
	hc.ll.MoveToFront(el)
	return el.Value.(*hintEntry).id, true
}

// getBytes is get keyed by a byte-slice path: the map lookup converts in
// place, so probing a prefix chain allocates nothing.
func (hc *hintCache) getBytes(path []byte) (uint64, bool) {
	el, ok := hc.items[string(path)]
	if !ok {
		return 0, false
	}
	hc.ll.MoveToFront(el)
	return el.Value.(*hintEntry).id, true
}

// putBytes is put keyed by a byte-slice path: refreshing an entry that is
// already cached (the steady state of a warm cache) allocates nothing;
// only a fresh insert materializes the key string.
func (hc *hintCache) putBytes(path []byte, id uint64) {
	if hc.cap <= 0 {
		return
	}
	if el, ok := hc.items[string(path)]; ok {
		el.Value.(*hintEntry).id = id
		hc.ll.MoveToFront(el)
		return
	}
	hc.put(string(path), id)
}

// put inserts or refreshes a mapping, evicting the least recently used
// entry when full.
func (hc *hintCache) put(path string, id uint64) {
	if hc.cap <= 0 {
		return
	}
	if el, ok := hc.items[path]; ok {
		el.Value.(*hintEntry).id = id
		hc.ll.MoveToFront(el)
		return
	}
	hc.items[path] = hc.ll.PushFront(&hintEntry{path: path, id: id})
	if hc.ll.Len() > hc.cap {
		lru := hc.ll.Back()
		hc.ll.Remove(lru)
		delete(hc.items, lru.Value.(*hintEntry).path)
	}
	hc.size.Set(float64(len(hc.items)))
}

// invalidatePrefix drops the mapping for path and every path beneath it.
// Called after a locally executed Rename or Delete so this NN does not keep
// serving hints it just made stale. (Other NNs still can — that is what the
// verification in tryBatchResolve is for.)
func (hc *hintCache) invalidatePrefix(path string) {
	prefix := path + "/"
	for k, el := range hc.items {
		if k == path || strings.HasPrefix(k, prefix) {
			hc.ll.Remove(el)
			delete(hc.items, k)
		}
	}
	hc.size.Set(float64(len(hc.items)))
}

// len returns the current entry count.
func (hc *hintCache) len() int { return len(hc.items) }
