package namenode

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"hopsfscl/internal/blocks"
	"hopsfscl/internal/ndb"
	"hopsfscl/internal/sim"
	"hopsfscl/internal/simnet"
)

// harness is a full HopsFS-CL stack: 6 NDB datanodes (RF 3) over 3 zones,
// one NN per zone, 6 block datanodes, with AZ awareness on.
type harness struct {
	env *sim.Env
	net *simnet.Network
	db  *ndb.Cluster
	ns  *Namesystem
	mgr *blocks.Manager
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	return newHarnessCfg(t, 21, nil)
}

// newHarnessCfg builds the harness with a specific simulation seed and an
// optional namesystem-config hook.
func newHarnessCfg(t *testing.T, seed int64, tweak func(*Config)) *harness {
	t.Helper()
	return newHarnessFull(t, seed, nil, tweak)
}

// newHarnessFull additionally exposes the storage-layer config (e.g. to
// disable write batching for the serial-reference comparisons).
func newHarnessFull(t *testing.T, seed int64, dbTweak func(*ndb.Config), tweak func(*Config)) *harness {
	t.Helper()
	env := sim.New(seed)
	t.Cleanup(env.Close)
	net := simnet.New(env, simnet.USWest1())
	dbCfg := ndb.DefaultConfig()
	dbCfg.DataNodes = 6
	dbCfg.Replication = 3
	dbCfg.PartitionsPerTable = 12
	if dbTweak != nil {
		dbTweak(&dbCfg)
	}
	zones := []simnet.ZoneID{1, 2, 3}
	db, err := ndb.New(env, net, dbCfg, ndb.SpreadPlacement(6, zones, 100),
		[]ndb.Placement{{Zone: 1, Host: 200}, {Zone: 2, Host: 201}, {Zone: 3, Host: 202}})
	if err != nil {
		t.Fatal(err)
	}
	bCfg := blocks.DefaultConfig()
	bCfg.BlockSize = 1 << 20
	var pls []blocks.Placement
	for i := 0; i < 6; i++ {
		pls = append(pls, blocks.Placement{Zone: simnet.ZoneID(i/2 + 1), Host: simnet.HostID(300 + i)})
	}
	mgr := blocks.NewManager(env, net, bCfg, pls)
	cfg := DefaultConfig()
	cfg.ElectionRound = 200 * time.Millisecond
	if tweak != nil {
		tweak(&cfg)
	}
	ns := NewNamesystem(db, mgr, cfg)
	for z := simnet.ZoneID(1); z <= 3; z++ {
		ns.AddNameNode(z, simnet.HostID(400+int(z)), z)
	}
	return &harness{env: env, net: net, db: db, ns: ns, mgr: mgr}
}

func (h *harness) client(z simnet.ZoneID) *Client {
	return h.ns.NewClient(z, simnet.HostID(500+len(h.ns.nns)+int(z)), z)
}

// run executes fn as a client process and waits up to a virtual minute.
func (h *harness) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	done := false
	h.env.Spawn("test", func(p *sim.Proc) { fn(p); done = true })
	h.env.RunFor(time.Minute)
	if !done {
		t.Fatal("test process did not finish within a virtual minute")
	}
}

func TestMkdirCreateStatRoundtrip(t *testing.T) {
	h := newHarness(t)
	cl := h.client(1)
	h.run(t, func(p *sim.Proc) {
		if err := cl.Mkdir(p, "/data"); err != nil {
			t.Error(err)
			return
		}
		if err := cl.Create(p, "/data/f1", 0); err != nil {
			t.Error(err)
			return
		}
		ino, err := cl.Stat(p, "/data/f1")
		if err != nil {
			t.Error(err)
			return
		}
		if ino.Dir || ino.Name != "f1" {
			t.Errorf("stat returned %+v", ino)
		}
		dir, err := cl.Stat(p, "/data")
		if err != nil || !dir.Dir {
			t.Errorf("stat dir: %+v err %v", dir, err)
		}
		if _, err := cl.Stat(p, "/"); err != nil {
			t.Errorf("stat root: %v", err)
		}
	})
}

func TestMkdirAllCreatesAncestors(t *testing.T) {
	h := newHarness(t)
	cl := h.client(2)
	h.run(t, func(p *sim.Proc) {
		if err := cl.MkdirAll(p, "/a/b/c/d"); err != nil {
			t.Error(err)
			return
		}
		ino, err := cl.Stat(p, "/a/b/c/d")
		if err != nil || !ino.Dir {
			t.Errorf("stat after MkdirAll: %v %+v", err, ino)
		}
	})
}

func TestErrorCases(t *testing.T) {
	h := newHarness(t)
	cl := h.client(1)
	h.run(t, func(p *sim.Proc) {
		if err := cl.Create(p, "/missing/f", 0); !errors.Is(err, ErrNotFound) {
			t.Errorf("create in missing dir: %v", err)
		}
		if err := cl.Mkdir(p, "/d"); err != nil {
			t.Error(err)
			return
		}
		if err := cl.Mkdir(p, "/d"); !errors.Is(err, ErrExists) {
			t.Errorf("duplicate mkdir: %v", err)
		}
		if err := cl.Create(p, "/d", 0); !errors.Is(err, ErrExists) {
			t.Errorf("create over dir: %v", err)
		}
		if err := cl.Create(p, "/d/f", 0); err != nil {
			t.Error(err)
			return
		}
		if err := cl.Mkdir(p, "/d/f/sub"); !errors.Is(err, ErrNotDir) {
			t.Errorf("mkdir under file: %v", err)
		}
		if _, err := cl.Stat(p, "relative"); !errors.Is(err, ErrInvalidPath) {
			t.Errorf("relative path: %v", err)
		}
		if _, err := cl.ReadFile(p, "/d"); !errors.Is(err, ErrIsDir) {
			t.Errorf("read dir: %v", err)
		}
	})
}

func TestListReturnsSortedChildren(t *testing.T) {
	h := newHarness(t)
	cl := h.client(3)
	h.run(t, func(p *sim.Proc) {
		if err := cl.Mkdir(p, "/dir"); err != nil {
			t.Error(err)
			return
		}
		for _, name := range []string{"zeta", "alpha", "mid"} {
			if err := cl.Create(p, "/dir/"+name, 0); err != nil {
				t.Error(err)
				return
			}
		}
		kids, err := cl.List(p, "/dir")
		if err != nil {
			t.Error(err)
			return
		}
		if len(kids) != 3 {
			t.Errorf("list returned %d entries", len(kids))
			return
		}
		want := []string{"alpha", "mid", "zeta"}
		for i, k := range kids {
			if k.Name != want[i] {
				t.Errorf("entry %d = %q, want %q", i, k.Name, want[i])
			}
		}
	})
}

func TestDeleteSemantics(t *testing.T) {
	h := newHarness(t)
	cl := h.client(1)
	h.run(t, func(p *sim.Proc) {
		if err := cl.MkdirAll(p, "/del/sub"); err != nil {
			t.Error(err)
			return
		}
		if err := cl.Create(p, "/del/sub/f", 0); err != nil {
			t.Error(err)
			return
		}
		if err := cl.Delete(p, "/del", false); !errors.Is(err, ErrNotEmpty) {
			t.Errorf("non-recursive delete of non-empty dir: %v", err)
		}
		if err := cl.Delete(p, "/del", true); err != nil {
			t.Errorf("recursive delete: %v", err)
			return
		}
		if _, err := cl.Stat(p, "/del/sub/f"); !errors.Is(err, ErrNotFound) {
			t.Errorf("stat after delete: %v", err)
		}
	})
}

func TestRenameFileAndDirectory(t *testing.T) {
	h := newHarness(t)
	cl := h.client(2)
	h.run(t, func(p *sim.Proc) {
		if err := cl.MkdirAll(p, "/a/d"); err != nil {
			t.Error(err)
			return
		}
		if err := cl.Mkdir(p, "/b"); err != nil {
			t.Error(err)
			return
		}
		if err := cl.Create(p, "/a/d/x", 0); err != nil {
			t.Error(err)
			return
		}
		// Directory rename: children remain reachable under the new path
		// without per-child updates (inode ids are stable).
		if err := cl.Rename(p, "/a/d", "/b/d"); err != nil {
			t.Error(err)
			return
		}
		if _, err := cl.Stat(p, "/b/d/x"); err != nil {
			t.Errorf("child after dir rename: %v", err)
		}
		if _, err := cl.Stat(p, "/a/d"); !errors.Is(err, ErrNotFound) {
			t.Errorf("old dir path: %v", err)
		}
		// File rename.
		if err := cl.Rename(p, "/b/d/x", "/b/y"); err != nil {
			t.Error(err)
			return
		}
		if _, err := cl.Stat(p, "/b/y"); err != nil {
			t.Errorf("renamed file: %v", err)
		}
	})
}

func TestRenameErrorCases(t *testing.T) {
	h := newHarness(t)
	cl := h.client(1)
	h.run(t, func(p *sim.Proc) {
		if err := cl.MkdirAll(p, "/r/inner"); err != nil {
			t.Error(err)
			return
		}
		if err := cl.Create(p, "/r/f", 0); err != nil {
			t.Error(err)
			return
		}
		if err := cl.Rename(p, "/r", "/r/inner/r2"); !errors.Is(err, ErrCycle) {
			t.Errorf("cycle rename: %v", err)
		}
		if err := cl.Rename(p, "/r/f", "/r/inner"); !errors.Is(err, ErrExists) {
			t.Errorf("rename onto existing: %v", err)
		}
		if err := cl.Rename(p, "/r/nope", "/r/x"); !errors.Is(err, ErrNotFound) {
			t.Errorf("rename missing src: %v", err)
		}
	})
}

func TestSetPermissionAndOwner(t *testing.T) {
	h := newHarness(t)
	cl := h.client(1)
	h.run(t, func(p *sim.Proc) {
		if err := cl.Create(p, "/f", 0); err != nil {
			t.Error(err)
			return
		}
		if err := cl.SetPermission(p, "/f", 0o600); err != nil {
			t.Error(err)
			return
		}
		if err := cl.SetOwner(p, "/f", "spotify"); err != nil {
			t.Error(err)
			return
		}
		ino, err := cl.Stat(p, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		if ino.Perm != 0o600 || ino.Owner != "spotify" {
			t.Errorf("inode after updates: %+v", ino)
		}
	})
}

func TestLeaderElectionAndFailover(t *testing.T) {
	h := newHarness(t)
	h.env.RunFor(2 * time.Second)
	leader := h.ns.ElectedLeader()
	if leader == nil || leader.ID != 1 {
		t.Fatalf("leader = %+v, want NN 1", leader)
	}
	if !leader.IsLeader() {
		t.Fatal("NN 1 does not believe it is leader")
	}
	leader.Fail()
	h.env.RunFor(3 * time.Second)
	newLeader := h.ns.ElectedLeader()
	if newLeader == nil || newLeader.ID == 1 {
		t.Fatalf("no failover: leader = %+v", newLeader)
	}
	if newLeader.ID != 2 {
		t.Fatalf("leader = NN %d, want NN 2 (lowest surviving id)", newLeader.ID)
	}
}

func TestElectionReportsDomains(t *testing.T) {
	h := newHarness(t)
	h.env.RunFor(2 * time.Second)
	nn := h.ns.NameNodes()[0]
	active := nn.ActiveNameNodes()
	if len(active) != 3 {
		t.Fatalf("active list has %d entries, want 3", len(active))
	}
	for _, a := range active {
		if a.Domain != h.ns.nns[a.ID-1].Domain {
			t.Fatalf("active entry %+v does not carry the NN's domain", a)
		}
	}
}

func TestClientPrefersAZLocalNameNode(t *testing.T) {
	h := newHarness(t)
	h.env.RunFor(2 * time.Second) // let elections publish domains
	for z := simnet.ZoneID(1); z <= 3; z++ {
		cl := h.client(z)
		h.run(t, func(p *sim.Proc) {
			if err := cl.Mkdir(p, "/zone-"+string(rune('0'+z))); err != nil {
				t.Error(err)
				return
			}
		})
		if nn := cl.CurrentNameNode(); nn == nil || nn.Domain != z {
			t.Fatalf("zone %d client attached to NN domain %v", z, nn.Domain)
		}
	}
}

func TestClientFailsOverWhenNameNodeDies(t *testing.T) {
	h := newHarness(t)
	h.env.RunFor(2 * time.Second)
	cl := h.client(1)
	h.run(t, func(p *sim.Proc) {
		if err := cl.Mkdir(p, "/before"); err != nil {
			t.Error(err)
			return
		}
	})
	victim := cl.CurrentNameNode()
	victim.Fail()
	h.env.RunFor(2 * time.Second)
	h.run(t, func(p *sim.Proc) {
		if err := cl.Mkdir(p, "/after"); err != nil {
			t.Errorf("mkdir after NN failure: %v", err)
		}
	})
	if cl.CurrentNameNode() == victim {
		t.Fatal("client still attached to dead NN")
	}
}

func TestSmallFileStoredInline(t *testing.T) {
	h := newHarness(t)
	cl := h.client(1)
	h.run(t, func(p *sim.Proc) {
		if err := cl.WriteFile(p, "/small", 64<<10); err != nil {
			t.Error(err)
			return
		}
		ino, err := cl.ReadFile(p, "/small")
		if err != nil {
			t.Error(err)
			return
		}
		if ino.InlineSize != 64<<10 || len(ino.Blocks) != 0 {
			t.Errorf("small file not inline: %+v", ino)
		}
	})
}

func TestLargeFileUsesBlockLayer(t *testing.T) {
	h := newHarness(t)
	cl := h.client(2)
	h.run(t, func(p *sim.Proc) {
		size := int64(3 << 20) // 3 blocks of 1 MB
		if err := cl.WriteFile(p, "/big", size); err != nil {
			t.Error(err)
			return
		}
		ino, err := cl.ReadFile(p, "/big")
		if err != nil {
			t.Error(err)
			return
		}
		if len(ino.Blocks) != 3 {
			t.Errorf("blocks = %d, want 3", len(ino.Blocks))
			return
		}
		for _, id := range ino.Blocks {
			b, ok := h.mgr.Block(id)
			if !ok || len(b.Locations()) != 3 {
				t.Errorf("block %d replicas: %v", id, ok)
			}
		}
		// Delete reclaims the block replicas.
		if err := cl.Delete(p, "/big", false); err != nil {
			t.Error(err)
			return
		}
		for _, id := range ino.Blocks {
			if _, ok := h.mgr.Block(id); ok {
				t.Errorf("block %d survived delete", id)
			}
		}
	})
}

func TestConcurrentCreateOnlyOneWins(t *testing.T) {
	h := newHarness(t)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		i := i
		cl := h.client(simnet.ZoneID(i + 1))
		h.env.Spawn("racer", func(p *sim.Proc) {
			errs[i] = cl.Create(p, "/race", 0)
		})
	}
	h.env.RunFor(time.Minute)
	wins, exists := 0, 0
	for _, err := range errs {
		switch {
		case err == nil:
			wins++
		case errors.Is(err, ErrExists):
			exists++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if wins != 1 || exists != 1 {
		t.Fatalf("wins=%d exists=%d, want exactly one winner", wins, exists)
	}
}

func TestConcurrentMkdirsInSameDirProceedInParallel(t *testing.T) {
	h := newHarness(t)
	cl0 := h.client(1)
	h.run(t, func(p *sim.Proc) {
		if err := cl0.Mkdir(p, "/shared"); err != nil {
			t.Error(err)
		}
	})
	var oks int
	for i := 0; i < 8; i++ {
		i := i
		cl := h.client(simnet.ZoneID(i%3 + 1))
		h.env.Spawn("mk", func(p *sim.Proc) {
			if err := cl.Mkdir(p, "/shared/d"+string(rune('a'+i))); err == nil {
				oks++
			}
		})
	}
	h.env.RunFor(time.Minute)
	if oks != 8 {
		t.Fatalf("%d/8 sibling mkdirs succeeded", oks)
	}
}

func TestElectionExpiresStaleRows(t *testing.T) {
	h := newHarness(t)
	h.env.RunFor(2 * time.Second)
	victim := h.ns.NameNodes()[2]
	victim.Fail()
	// The row outlives the failure briefly (the lease), then expires.
	h.env.RunFor(h.ns.cfg.ElectionRound * 4)
	survivor := h.ns.NameNodes()[0]
	for _, a := range survivor.ActiveNameNodes() {
		if a.ID == victim.ID {
			t.Fatalf("dead NN %d still in the active list after expiry", victim.ID)
		}
	}
}

func TestNameNodeRecoverRejoinsElection(t *testing.T) {
	h := newHarness(t)
	h.env.RunFor(2 * time.Second)
	victim := h.ns.NameNodes()[0] // the leader
	victim.Fail()
	h.env.RunFor(h.ns.cfg.ElectionRound * 4)
	if got := h.ns.ElectedLeader(); got == nil || got.ID == victim.ID {
		t.Fatal("leadership did not move")
	}
	victim.Recover()
	h.env.RunFor(h.ns.cfg.ElectionRound * 4)
	// The recovered NN has the lowest id and reclaims leadership.
	if got := h.ns.ElectedLeader(); got == nil || got.ID != victim.ID {
		t.Fatalf("recovered NN did not reclaim leadership: %+v", got)
	}
	// And it serves requests again.
	cl := h.client(1)
	h.run(t, func(p *sim.Proc) {
		if err := cl.Mkdir(p, "/after-recover"); err != nil {
			t.Error(err)
		}
	})
}

func TestSeedRejectsOrphans(t *testing.T) {
	h := newHarness(t)
	if err := h.ns.Seed([]string{"/a/b"}, nil); err == nil {
		t.Fatal("seeding a child before its parent succeeded")
	}
	if err := h.ns.Seed([]string{"/a", "/a/b"}, []string{"/a/b/f"}); err != nil {
		t.Fatal(err)
	}
	cl := h.client(1)
	h.run(t, func(p *sim.Proc) {
		ino, err := cl.Stat(p, "/a/b/f")
		if err != nil || ino.Dir {
			t.Errorf("seeded file: %v %+v", err, ino)
		}
	})
}

// TestCrossingRenamesDoNotDeadlock runs opposing renames concurrently;
// the deterministic lock ordering must let both complete (one wins, the
// other may see the moved state) without deadlock-timeout storms.
func TestCrossingRenamesDoNotDeadlock(t *testing.T) {
	h := newHarness(t)
	cl0 := h.client(1)
	h.run(t, func(p *sim.Proc) {
		if err := cl0.MkdirAll(p, "/a"); err != nil {
			t.Error(err)
			return
		}
		if err := cl0.MkdirAll(p, "/b"); err != nil {
			t.Error(err)
			return
		}
		if err := cl0.Create(p, "/a/x", 0); err != nil {
			t.Error(err)
			return
		}
		if err := cl0.Create(p, "/b/y", 0); err != nil {
			t.Error(err)
		}
	})
	done := 0
	for i := 0; i < 2; i++ {
		i := i
		cl := h.client(simnet.ZoneID(i + 1))
		h.env.Spawn("renamer", func(p *sim.Proc) {
			var err error
			if i == 0 {
				err = cl.Rename(p, "/a/x", "/b/moved-x")
			} else {
				err = cl.Rename(p, "/b/y", "/a/moved-y")
			}
			if err != nil && !errors.Is(err, ErrNotFound) && !errors.Is(err, ErrExists) {
				t.Errorf("renamer %d: %v", i, err)
			}
			done++
		})
	}
	h.env.RunFor(30 * time.Second)
	if done != 2 {
		t.Fatalf("%d/2 renames completed (deadlock?)", done)
	}
	// Exactly the two files exist, under their new names.
	h.run(t, func(p *sim.Proc) {
		if _, err := cl0.Stat(p, "/b/moved-x"); err != nil {
			t.Errorf("moved-x: %v", err)
		}
		if _, err := cl0.Stat(p, "/a/moved-y"); err != nil {
			t.Errorf("moved-y: %v", err)
		}
	})
}

// TestToleratesNMinusOneNameNodeFailures pins §IV-B2: a cluster with N
// metadata servers keeps serving with a single survivor.
func TestToleratesNMinusOneNameNodeFailures(t *testing.T) {
	h := newHarness(t)
	h.env.RunFor(time.Second)
	nns := h.ns.NameNodes()
	for _, nn := range nns[:len(nns)-1] {
		nn.Fail()
	}
	h.env.RunFor(h.ns.cfg.ElectionRound * 4)
	survivor := nns[len(nns)-1]
	if got := h.ns.ElectedLeader(); got != survivor {
		t.Fatalf("leader = %v, want the sole survivor nn-%d", got, survivor.ID)
	}
	cl := h.client(1) // zone 1 client, NN in zone 3: cross-AZ fallback
	h.run(t, func(p *sim.Proc) {
		if err := cl.Mkdir(p, "/still-alive"); err != nil {
			t.Errorf("mkdir with one NN: %v", err)
		}
	})
	if cl.CurrentNameNode() != survivor {
		t.Fatal("client not attached to the survivor")
	}
}

// TestListRootScansAllPartitions covers the root-listing path: the root's
// children are deliberately scattered across partitions (partKeyOf), so
// listing "/" is a table-wide scan and must still see every child.
func TestListRootScansAllPartitions(t *testing.T) {
	h := newHarness(t)
	cl := h.client(1)
	h.run(t, func(p *sim.Proc) {
		names := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
		for _, n := range names {
			if err := cl.Mkdir(p, "/"+n); err != nil {
				t.Error(err)
				return
			}
		}
		if err := cl.Create(p, "/topfile", 0); err != nil {
			t.Error(err)
			return
		}
		kids, err := cl.List(p, "/")
		if err != nil {
			t.Error(err)
			return
		}
		if len(kids) != 6 {
			t.Errorf("root listing has %d entries, want 6: %+v", len(kids), kids)
			return
		}
		if kids[0].Name != "alpha" || kids[5].Name != "topfile" {
			t.Errorf("root listing order: %v...%v", kids[0].Name, kids[5].Name)
		}
	})
}

// TestRenameCostIndependentOfSubtreeSize pins the §I claim that makes
// hierarchical file systems beat object stores: renaming a directory is a
// constant-size metadata transaction no matter how many children it has
// (inodes are keyed by parent id). We compare the wire footprint of
// renaming a 2-entry directory vs a 60-entry directory.
func TestRenameCostIndependentOfSubtreeSize(t *testing.T) {
	messagesFor := func(children int) int64 {
		h := newHarness(t)
		cl := h.client(1)
		var used int64
		h.run(t, func(p *sim.Proc) {
			if err := cl.Mkdir(p, "/src"); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < children; i++ {
				if err := cl.Create(p, fmt.Sprintf("/src/f%03d", i), 0); err != nil {
					t.Error(err)
					return
				}
			}
			h.db.StopBackground()
			p.Sleep(time.Second) // drain housekeeping
			p.Flush()
			before := h.net.TotalMessages()
			if err := cl.Rename(p, "/src", "/dst"); err != nil {
				t.Error(err)
				return
			}
			p.Flush()
			used = h.net.TotalMessages() - before
		})
		return used
	}
	small := messagesFor(2)
	big := messagesFor(60)
	if big != small {
		t.Fatalf("rename wire footprint grew with subtree size: %d vs %d messages", small, big)
	}
}

func TestDuAndExists(t *testing.T) {
	h := newHarness(t)
	cl := h.client(1)
	h.run(t, func(p *sim.Proc) {
		if err := cl.MkdirAll(p, "/proj/sub"); err != nil {
			t.Error(err)
			return
		}
		if err := cl.Create(p, "/proj/a", 100); err != nil {
			t.Error(err)
			return
		}
		if err := cl.Create(p, "/proj/sub/b", 250); err != nil {
			t.Error(err)
			return
		}
		files, dirs, size, err := cl.Du(p, "/proj")
		if err != nil {
			t.Error(err)
			return
		}
		if files != 2 || dirs != 2 || size != 350 {
			t.Errorf("du = (%d files, %d dirs, %d bytes), want (2, 2, 350)", files, dirs, size)
		}
		ok, err := cl.Exists(p, "/proj/a")
		if err != nil || !ok {
			t.Errorf("exists(/proj/a) = %v, %v", ok, err)
		}
		ok, err = cl.Exists(p, "/nope")
		if err != nil || ok {
			t.Errorf("exists(/nope) = %v, %v", ok, err)
		}
	})
}

func TestInlineReadChargesDataBytes(t *testing.T) {
	h := newHarness(t)
	cl := h.client(1)
	h.run(t, func(p *sim.Proc) {
		if err := cl.Create(p, "/small", 64<<10); err != nil {
			t.Error(err)
			return
		}
		r0, _ := cl.Node.NICBytes()
		if _, err := cl.ReadFile(p, "/small"); err != nil {
			t.Error(err)
			return
		}
		r1, _ := cl.Node.NICBytes()
		if r1-r0 < 64<<10 {
			t.Errorf("inline read moved %d bytes to the client, want >= 64KiB", r1-r0)
		}
	})
}
