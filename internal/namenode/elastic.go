package namenode

import (
	"fmt"

	"hopsfscl/internal/simnet"
)

// Elastic namenode lifecycle. The metadata serving tier is stateless
// (§II-A2), which is exactly what makes scaling it cheap — CFS and λFS
// build on the same property. A server's life is:
//
//	commission -> serving -> draining -> decommissioned
//
// Commissioning registers a fresh NN on a live deployment: its election
// process starts immediately, and bumping the client re-balance epoch makes
// every client re-pick a server at its next operation, so the newcomer
// receives load without waiting for failures. Draining is the graceful
// exit: the server stops accepting new operations (clients re-balance the
// same way) but finishes the ones in flight; once drained it is
// decommissioned and leaves the cluster for good. Only failures (Fail /
// Recover) are reversible — decommissioning is not, matching a released
// cloud VM.

// Commission registers and starts a new metadata server on a live
// deployment, like AddNameNode, and additionally bumps the client
// re-balance epoch so existing clients spread over the grown server set.
func (ns *Namesystem) Commission(zone simnet.ZoneID, host simnet.HostID, domain simnet.ZoneID) *NameNode {
	nn := ns.AddNameNode(zone, host, domain)
	ns.balanceEpoch++
	return nn
}

// Serving reports whether the server accepts new operations: alive and not
// draining.
func (nn *NameNode) Serving() bool { return nn.Alive() && !nn.draining }

// Draining reports whether the server is between Drain and Decommission.
func (nn *NameNode) Draining() bool { return nn.draining && !nn.decom }

// Decommissioned reports whether the server has left the cluster.
func (nn *NameNode) Decommissioned() bool { return nn.decom }

// InFlight returns the number of operations currently executing on the
// server.
func (nn *NameNode) InFlight() int { return nn.inflight }

// Drain marks the server as leaving: it accepts no new operations (clients
// re-balance at their next call; its election heartbeat stops so peers drop
// it from the active list) but keeps serving the operations already in
// flight. Complete the exit with Decommission once InFlight reaches zero.
func (nn *NameNode) Drain() {
	if nn.draining || nn.decom {
		return
	}
	nn.draining = true
	nn.ns.balanceEpoch++
}

// Decommission completes a drain: the server leaves the network and the
// health model's expected set. It refuses to cut off in-flight operations —
// callers wait for InFlight to reach zero first (the deployment's
// FinishDrains polls exactly that).
func (nn *NameNode) Decommission() error {
	if nn.decom {
		return nil
	}
	if !nn.draining {
		return fmt.Errorf("namenode: decommission %s: not draining", nn.Node.Name())
	}
	if nn.inflight > 0 {
		return fmt.Errorf("namenode: decommission %s: %d operations in flight", nn.Node.Name(), nn.inflight)
	}
	nn.decom = true
	nn.stopped = true
	if nn.Node.Alive() {
		nn.Node.Fail()
	}
	return nil
}

// ServingCount returns how many servers currently accept new operations.
func (ns *Namesystem) ServingCount() int {
	n := 0
	for _, nn := range ns.nns {
		if nn.Serving() {
			n++
		}
	}
	return n
}

// ServingNameNodes returns the servers currently accepting new operations,
// in id order.
func (ns *Namesystem) ServingNameNodes() []*NameNode {
	var out []*NameNode
	for _, nn := range ns.nns {
		if nn.Serving() {
			out = append(out, nn)
		}
	}
	return out
}

// BalanceEpoch returns the client re-balance epoch (bumped by Commission
// and Drain; exposed for tests).
func (ns *Namesystem) BalanceEpoch() int { return ns.balanceEpoch }
