// Package namenode implements the HopsFS-CL metadata serving layer (paper
// §II-A2 and §IV-B): stateless metadata servers (NNs) that execute file
// system operations as transactions on the NDB metadata storage layer,
// using hierarchical (implicit) locking — row locks on the operated-on
// inodes, read-committed for the rest. It also implements the database-
// backed leader election of [28], extended to report each server's
// locationDomainId every round, and the AZ-aware client selection policy
// of §IV-B3.
package namenode

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"hopsfscl/internal/blocks"
	"hopsfscl/internal/heat"
	"hopsfscl/internal/ndb"
	"hopsfscl/internal/shard"
	"hopsfscl/internal/sim"
	"hopsfscl/internal/simnet"
	"hopsfscl/internal/trace"
)

// File system errors.
var (
	// ErrNotFound means a path component does not exist.
	ErrNotFound = errors.New("namenode: no such file or directory")
	// ErrExists means the target already exists.
	ErrExists = errors.New("namenode: file exists")
	// ErrNotDir means a path component is not a directory.
	ErrNotDir = errors.New("namenode: not a directory")
	// ErrIsDir means the operation needs a file but found a directory.
	ErrIsDir = errors.New("namenode: is a directory")
	// ErrNotEmpty means a non-recursive delete hit a non-empty directory.
	ErrNotEmpty = errors.New("namenode: directory not empty")
	// ErrInvalidPath means the path is malformed.
	ErrInvalidPath = errors.New("namenode: invalid path")
	// ErrRetriesExhausted means the transaction kept aborting (overload,
	// failover in progress) beyond the retry budget.
	ErrRetriesExhausted = errors.New("namenode: transaction retries exhausted")
	// ErrNoNameNodes means no metadata server is reachable.
	ErrNoNameNodes = errors.New("namenode: no metadata servers available")
	// ErrCycle means a rename would move a directory under itself.
	ErrCycle = errors.New("namenode: rename would create a cycle")
)

// IsOutcomeError reports whether err is an expected application outcome
// (not-found, already-exists, namespace shape violations) rather than a
// system failure. Outcome errors count in per-op error tallies but not
// against the availability SLO: a correctly served "no such file" is the
// file system working, not failing.
func IsOutcomeError(err error) bool {
	return errors.Is(err, ErrNotFound) || errors.Is(err, ErrExists) ||
		errors.Is(err, ErrNotDir) || errors.Is(err, ErrIsDir) ||
		errors.Is(err, ErrNotEmpty) || errors.Is(err, ErrInvalidPath) ||
		errors.Is(err, ErrCycle)
}

// RootID is the inode id of "/".
const RootID uint64 = 1

// Config parameterizes the metadata serving layer.
type Config struct {
	// ReadBackup enables the Read Backup option on all metadata tables.
	// HopsFS-CL always sets it (§IV-A5); vanilla HopsFS does not.
	ReadBackup bool
	// SmallFileThreshold is the inline-in-NDB cutoff (§II-A3; 128 KB).
	SmallFileThreshold int64
	// NNCores is the CPU parallelism of each metadata server (paper VMs:
	// 32 vCPUs).
	NNCores int
	// ElectionRound is the leader-election heartbeat period ([28]; 2 s).
	ElectionRound time.Duration
	// RetryMax bounds transaction retries per operation.
	RetryMax int
	// RetryBackoff is the base backoff between retries (exponential with
	// jitter) — the paper's backpressure mechanism.
	RetryBackoff time.Duration
	// HintCacheSize bounds each NN's inode hint cache (path → inode id,
	// LRU). Zero or negative disables the cache.
	HintCacheSize int
	// DisableBatchedResolve forces the serial per-component path walk even
	// when the hint cache could prime a batched read — the ablation knob
	// for the resolution protocol.
	DisableBatchedResolve bool
	// Costs are the NN CPU service demands.
	Costs Costs
}

// Costs model the metadata server's CPU work per operation.
type Costs struct {
	// OpBase is charged for any operation (RPC handling, validation).
	OpBase time.Duration
	// PerComponent is charged per resolved path component.
	PerComponent time.Duration
	// PerListEntry is charged per directory entry returned.
	PerListEntry time.Duration
}

// DefaultConfig returns the paper-aligned defaults.
func DefaultConfig() Config {
	return Config{
		ReadBackup:         true,
		SmallFileThreshold: 128 << 10,
		NNCores:            32,
		ElectionRound:      2 * time.Second,
		RetryMax:           8,
		RetryBackoff:       2 * time.Millisecond,
		HintCacheSize:      64 << 10,
		Costs: Costs{
			OpBase:       25 * time.Microsecond,
			PerComponent: 4 * time.Microsecond,
			PerListEntry: 600 * time.Nanosecond,
		},
	}
}

// Inode is the stored metadata of a file or directory. Values stored in
// NDB are immutable; mutate by storing a modified copy.
type Inode struct {
	ID     uint64
	Parent uint64
	Name   string
	Dir    bool
	Size   int64
	Perm   uint16
	Owner  string
	Mtime  time.Duration
	// InlineSize is the byte count stored inline in NDB for small files.
	InlineSize int64
	// Blocks lists the block layer blocks of large files.
	Blocks []blocks.BlockID
	// QuotaNS/QuotaSS are the directory's namespace (inode count) and
	// storage-space (logical bytes) quota limits, 0 meaning unset. The
	// authoritative record lives in the quotas table; the inode carries a
	// copy so resolution sees quota'd ancestors without extra reads
	// (HopsFS's INodeAttributes pattern).
	QuotaNS int64
	QuotaSS int64
}

// QuotaRecord is the authoritative quota row of a directory (the "q" row in
// the quotas table, partitioned by the directory's inode id).
type QuotaRecord struct {
	NS int64 // namespace limit (files + directories), 0 = unset
	SS int64 // storage-space limit (logical bytes), 0 = unset
}

// QuotaUpdate is one asynchronous usage delta under a quota'd directory.
// HopsFS applies quota charges as append-only update rows folded in the
// background rather than read-modify-write on one hot row; usage is the sum
// of a directory's update rows ("u/..." keys in its quotas partition).
type QuotaUpdate struct {
	NS int64
	SS int64
}

// QuotaInfo is a directory's quota limits plus its accumulated usage.
type QuotaInfo struct {
	NS, SS         int64 // limits (0 = unset)
	UsedNS, UsedSS int64 // inodes created / bytes written under the quota
}

// Namesystem is the shared file system state: the NDB tables, the block
// layer, and the set of metadata servers.
type Namesystem struct {
	db       *ndb.Cluster
	blockMgr *blocks.Manager
	cfg      Config

	// router maps partition keys to shards. A fresh namesystem gets a
	// one-cluster router (the identity), so every table access below goes
	// through the shard layer unconditionally; AttachShards swaps in a
	// multi-cluster router before any namenode or traffic exists.
	router     *shard.Router
	inodes     *shard.TableSet
	election   *shard.TableSet
	smallfiles *shard.TableSet
	quotas     *shard.TableSet

	nns    []*NameNode
	idSeq  uint64
	bgStop bool

	// balanceEpoch forces clients to re-pick their server when the serving
	// set changes (Commission/Drain bump it); clients re-balance lazily at
	// their next operation.
	balanceEpoch int

	// tracer and obs attach the namesystem to a deployment's trace layer;
	// both are nil for uninstrumented deployments.
	tracer *trace.Tracer
	obs    *nnObs

	// heat attributes operation paths (per-depth subtree prefixes) and
	// touched inodes to the deployment's heat collector; nil for
	// deployments without heat tracking (see SetHeat).
	heat *heat.Collector
}

// SetHeat attaches a heat collector: every operation attributes one touch
// per enclosing subtree of its target path, and every inode row read
// attributes one inode touch. A nil collector detaches.
func (ns *Namesystem) SetHeat(h *heat.Collector) {
	ns.heat = h
}

// nnObs caches the namesystem's pre-registered metric handles.
type nnObs struct {
	// resolveHit counts operations whose path was fully primed from the
	// hint cache and verified; resolveMiss counts paths the cache could not
	// prime (serial walk from the start); resolveFallback counts batched
	// attempts that failed verification (stale hints) and re-walked.
	resolveHit      *trace.Counter
	resolveMiss     *trace.Counter
	resolveFallback *trace.Counter
	reg             *trace.Registry
}

// hit/miss/fallback record one resolve-cache outcome; nil-receiver-safe so
// uninstrumented deployments pay only the nil check.
func (o *nnObs) hit() {
	if o != nil {
		o.resolveHit.Add(1)
	}
}

func (o *nnObs) miss() {
	if o != nil {
		o.resolveMiss.Add(1)
	}
}

func (o *nnObs) fallback() {
	if o != nil {
		o.resolveFallback.Add(1)
	}
}

// SetTracer attaches the namesystem to a deployment's tracer: every client
// operation gets a root span, every transaction attempt a child span, and
// the resolve-cache counter family is registered. A nil tracer detaches.
func (ns *Namesystem) SetTracer(tr *trace.Tracer) {
	ns.tracer = tr
	reg := tr.Registry()
	if reg == nil {
		ns.obs = nil
		for _, nn := range ns.nns {
			nn.cache.size = nil
		}
		return
	}
	ns.obs = &nnObs{
		resolveHit:      reg.Counter("namenode.resolve_cache", "result", "hit"),
		resolveMiss:     reg.Counter("namenode.resolve_cache", "result", "miss"),
		resolveFallback: reg.Counter("namenode.resolve_cache", "result", "fallback"),
		reg:             reg,
	}
	for _, nn := range ns.nns {
		nn.cache.setGauge(ns.cacheSizeGauge(nn))
	}
}

// cacheSizeGauge returns the per-NN resolve-cache size gauge (nil when
// uninstrumented).
func (ns *Namesystem) cacheSizeGauge(nn *NameNode) *trace.Gauge {
	if ns.obs == nil {
		return nil
	}
	return ns.obs.reg.Gauge("namenode.resolve_cache.size", "nn", nn.Node.Name())
}

// Tracer returns the attached tracer (nil when uninstrumented).
func (ns *Namesystem) Tracer() *trace.Tracer { return ns.tracer }

// HealthStats reports the metadata tier's health signal at virtual instant
// now: live and expected NN counts, plus the mean CPU thread-pool
// utilization across live NNs since the previous call (each call advances
// the measurement window). When instrumented it also refreshes the per-NN
// namenode.util{nn=...} gauges, so the flight recorder and SLO engine see
// the same number.
func (ns *Namesystem) HealthStats(now time.Duration) (live, expected int, util float64) {
	var sum float64
	var n int
	for _, nn := range ns.nns {
		if nn.draining || nn.decom {
			// Drained servers left the serving target on purpose: they are
			// neither expected nor live, so scaling down does not read as
			// degradation.
			continue
		}
		expected++
		u := 0.0
		if now > nn.healthAt {
			u = nn.cpu.Utilization(nn.healthAt, now, nn.healthBusy)
		}
		nn.healthAt = now
		nn.healthBusy = nn.cpu.BusyIntegral()
		if ns.obs != nil {
			ns.obs.reg.Gauge("namenode.util", "nn", nn.Node.Name()).Set(u)
		}
		if nn.Alive() {
			live++
			sum += u
			n++
		}
	}
	if n > 0 {
		util = sum / float64(n)
	}
	return live, expected, util
}

// NewNamesystem creates the metadata schema on db and seeds the root
// directory. blockMgr may be nil if only metadata operations are exercised
// (the paper's benchmarks use empty files for exactly this reason).
func NewNamesystem(db *ndb.Cluster, blockMgr *blocks.Manager, cfg Config) *Namesystem {
	ns := &Namesystem{
		db:       db,
		blockMgr: blockMgr,
		cfg:      cfg,
		idSeq:    RootID,
	}
	r, err := shard.NewRouter([]*ndb.Cluster{db})
	if err != nil {
		panic(err) // unreachable: one cluster is always a valid router
	}
	ns.router = r
	ns.createTables()
	ns.seedRoot()
	if blockMgr != nil {
		blockMgr.SetLeaderCheck(func() bool { return ns.Leader() != nil })
		blockMgr.SetReferencedCheck(ns.ReferencedBlocks)
	}
	return ns
}

// createTables creates the metadata schema on every shard of the current
// router.
func (ns *Namesystem) createTables() {
	cfg := ns.cfg
	// Inodes are partitioned by parent inode id (application defined
	// partitioning): all children of a directory live in one partition, so
	// listings are partition-pruned scans (§II-A1). Under the shard router
	// the same key also picks the cluster, so a directory's children — and
	// every parent/child lock pair — stay on one shard.
	ns.inodes = ns.router.NewTableSet("inodes", 256, ndb.TableOptions{ReadBackup: cfg.ReadBackup})
	// The election table is tiny and read every round by every NN: fully
	// replicated for AZ-local reads. All its rows share one partition key,
	// so election traffic lands on a single shard regardless of N.
	ns.election = ns.router.NewTableSet("election", 64, ndb.TableOptions{
		ReadBackup:      cfg.ReadBackup,
		FullyReplicated: true,
	})
	// Small-file payloads live inline in NDB (§II-A3) in their own
	// wide-row table, partitioned by the owning file's inode id so the
	// data row survives renames untouched.
	ns.smallfiles = ns.router.NewTableSet("smallfiles", 4096, ndb.TableOptions{ReadBackup: cfg.ReadBackup})
	// Quota rows: per quota'd directory one authoritative "q" record plus
	// append-only "u/..." usage updates, partitioned by directory id.
	ns.quotas = ns.router.NewTableSet("quotas", 64, ndb.TableOptions{ReadBackup: cfg.ReadBackup})
}

// AttachShards re-homes the namesystem onto a multi-cluster router. It must
// be called before any namenode is added or traffic served: the schema is
// re-created across all shards (the tables already created on the seed
// cluster are adopted as shard 0's) and the root directory is re-seeded
// through the routing function. The router's clusters must have the seed
// cluster first.
func (ns *Namesystem) AttachShards(r *shard.Router) error {
	if r.Cluster(0) != ns.db {
		return fmt.Errorf("namenode: AttachShards router must have the namesystem's cluster as shard 0")
	}
	if len(ns.nns) > 0 {
		return fmt.Errorf("namenode: AttachShards after namenodes were added")
	}
	adopt := func(ts *shard.TableSet) (*shard.TableSet, error) {
		t0 := ts.At(0)
		tabs := make([]*ndb.Table, r.Shards())
		tabs[0] = t0
		for i := 1; i < r.Shards(); i++ {
			tabs[i] = r.Cluster(i).CreateTable(t0.Name(), t0.RowSize(), t0.Options())
		}
		return r.Wrap(tabs)
	}
	var err error
	if ns.inodes, err = adopt(ns.inodes); err != nil {
		return err
	}
	if ns.election, err = adopt(ns.election); err != nil {
		return err
	}
	if ns.smallfiles, err = adopt(ns.smallfiles); err != nil {
		return err
	}
	if ns.quotas, err = adopt(ns.quotas); err != nil {
		return err
	}
	ns.router = r
	r.EnableIntents()
	// The root row was seeded on the single cluster; the routing function
	// may place its partition key elsewhere now.
	ns.seedRoot()
	return nil
}

// Router returns the namesystem's shard router (always non-nil; a fresh
// namesystem routes through a one-cluster identity router).
func (ns *Namesystem) Router() *shard.Router { return ns.router }

// PinSubtree pins a directory's children (by inode id) to a shard. The
// namenode inherits the pin onto directories created underneath, so the
// override is subtree-deep for namespace created after the pin. Pins must
// be installed before rows exist under the directory.
func (ns *Namesystem) PinSubtree(dirID uint64, s int) error {
	return ns.router.Pin(partKey(dirID), s)
}

// IdentityID implements shard.Identified: the inode id is the value's
// stable identity, letting the cross-shard intent resolver distinguish "my
// write already applied" from "another writer took this row" after a crash.
func (i *Inode) IdentityID() uint64 { return i.ID }

// ReferencedBlocks returns the set of block ids attached to any committed
// inode. The block layer's monitor uses it to reclaim orphans, and the
// chaos auditor uses it to verify namespace/block-layer agreement. It reads
// storage state directly (the leader NN's in-memory block map in HopsFS),
// bypassing the transaction path.
func (ns *Namesystem) ReferencedBlocks() map[blocks.BlockID]bool {
	out := make(map[blocks.BlockID]bool)
	ns.inodes.ForEachCommitted(func(_, _ string, val ndb.Value) {
		ino, ok := val.(*Inode)
		if !ok {
			return
		}
		for _, id := range ino.Blocks {
			out[id] = true
		}
	})
	return out
}

// seedRoot installs "/" directly in storage (bootstrap, before any traffic).
func (ns *Namesystem) seedRoot() {
	root := &Inode{ID: RootID, Parent: 0, Name: "", Dir: true, Perm: 0o755, Owner: "hdfs"}
	ndb.StoreDirect(ns.inodes.For(partKey(0)), partKey(0), inodeKey(0, ""), root)
}

// Seed installs directories and files directly into NDB storage, bypassing
// transactions — used to pre-build benchmark namespaces without warm-up
// traffic. Directories must be listed parents-first; all paths absolute.
func (ns *Namesystem) Seed(dirs, files []string) error {
	ids := map[string]uint64{"": RootID}
	place := func(path string, dir bool) error {
		comps, err := splitPath(path)
		if err != nil {
			return err
		}
		if len(comps) == 0 {
			return nil
		}
		parentPath := strings.Join(comps[:len(comps)-1], "/")
		parent, ok := ids[parentPath]
		if !ok {
			return fmt.Errorf("namenode: seed %q before its parent", path)
		}
		name := comps[len(comps)-1]
		ino := &Inode{
			ID:     ns.nextID(),
			Parent: parent,
			Name:   name,
			Dir:    dir,
			Perm:   0o755,
			Owner:  "hdfs",
		}
		ndb.StoreDirect(ns.inodes.For(partKeyOf(parent, name)), partKeyOf(parent, name), inodeKey(parent, name), ino)
		if dir {
			ids[strings.Join(comps, "/")] = ino.ID
		}
		return nil
	}
	for _, d := range dirs {
		if err := place(d, true); err != nil {
			return err
		}
	}
	for _, f := range files {
		if err := place(f, false); err != nil {
			return err
		}
	}
	return nil
}

// DB returns the metadata storage cluster.
func (ns *Namesystem) DB() *ndb.Cluster { return ns.db }

// BlockManager returns the block layer (may be nil).
func (ns *Namesystem) BlockManager() *blocks.Manager { return ns.blockMgr }

// Config returns the namesystem configuration.
func (ns *Namesystem) Config() Config { return ns.cfg }

// InodeTable exposes shard 0's inode table for experiments (Figure 14 reads
// the per-partition read counters; those experiments run unsharded).
func (ns *Namesystem) InodeTable() *ndb.Table { return ns.inodes.At(0) }

// NameNodes returns all registered metadata servers.
func (ns *Namesystem) NameNodes() []*NameNode { return ns.nns }

// nextID allocates an inode id.
func (ns *Namesystem) nextID() uint64 {
	ns.idSeq++
	return ns.idSeq
}

// NameNode is one stateless metadata server.
type NameNode struct {
	ns     *Namesystem
	Node   *simnet.Node
	ID     int
	Domain simnet.ZoneID

	cpu *sim.Resource

	// cache is the inode hint cache: path -> inode id (bounded LRU), used
	// to compute the partition-key hint that makes transactions
	// distribution aware and to prime batched optimistic path resolution.
	cache *hintCache

	// Election state observed by this NN at its last round.
	leaderID  int
	active    []ActiveNN
	stopped   bool
	lastRound time.Duration

	// Elastic lifecycle state (see elastic.go): a draining NN finishes its
	// in-flight operations but accepts no new ones; a decommissioned NN has
	// left the cluster for good. inflight counts operations currently
	// executing on this server (cooperative scheduling; no atomics needed).
	draining bool
	decom    bool
	inflight int

	// Ops counts operations served (per-NN throughput, Figure 6).
	Ops int64

	// healthAt/healthBusy snapshot the CPU busy integral at the last health
	// probe, so HealthStats reports utilization over the probe interval.
	healthAt   time.Duration
	healthBusy int64
}

// ActiveNN is one entry of the leader's active-NN list, carrying the
// locationDomainId reported during election (§IV-B3).
type ActiveNN struct {
	ID     int
	Domain simnet.ZoneID
}

// AddNameNode registers a metadata server in the given zone. domain is its
// locationDomainId (ZoneUnset for non-AZ-aware deployments). The NN's
// leader-election process starts immediately.
func (ns *Namesystem) AddNameNode(zone simnet.ZoneID, host simnet.HostID, domain simnet.ZoneID) *NameNode {
	id := len(ns.nns) + 1
	nn := &NameNode{
		ns:       ns,
		Node:     ns.db.Net().NewNode(fmt.Sprintf("nn-%d", id), zone, host),
		ID:       id,
		Domain:   domain,
		cpu:      sim.NewResource(ns.db.Env(), fmt.Sprintf("nn-%d/cpu", id), ns.cfg.NNCores),
		cache:    newHintCache(ns.cfg.HintCacheSize),
		leaderID: 1,
	}
	nn.cache.setGauge(ns.cacheSizeGauge(nn))
	ns.nns = append(ns.nns, nn)
	ns.db.Env().Spawn(nn.Node.Name()+"/election", func(p *sim.Proc) { nn.electionLoop(p) })
	return nn
}

// CPU exposes the NN's processor pool for utilization accounting.
func (nn *NameNode) CPU() *sim.Resource { return nn.cpu }

// Alive reports whether the server is up.
func (nn *NameNode) Alive() bool { return nn.Node.Alive() && !nn.stopped }

// Fail takes the metadata server down.
func (nn *NameNode) Fail() { nn.stopped = true; nn.Node.Fail() }

// Recover restarts a failed metadata server: it is stateless, so recovery
// is simply rejoining the network and resuming leader-election rounds.
// Decommissioned servers have left the cluster and do not come back.
func (nn *NameNode) Recover() {
	if nn.Alive() || nn.decom {
		return
	}
	nn.stopped = false
	nn.Node.Recover()
	nn.cache = newHintCache(nn.ns.cfg.HintCacheSize)
	nn.cache.setGauge(nn.ns.cacheSizeGauge(nn))
	nn.ns.db.Env().Spawn(nn.Node.Name()+"/election", func(p *sim.Proc) { nn.electionLoop(p) })
}

// Leader returns the current leader NN (the namesystem-wide view: the
// lowest-id alive NN whose election row is fresh), or nil.
func (ns *Namesystem) Leader() *NameNode {
	for _, nn := range ns.nns {
		if nn.Alive() {
			return nn
		}
	}
	return nil
}

// partKey is the partition key of a directory's children.
func partKey(parent uint64) string { return strconv.FormatUint(parent, 10) }

// partKeyOf is the partition key of one inode row. Children of "/" are
// partitioned individually by name rather than by parent id: every
// operation resolves a top-level directory, and hashing them all to the
// root's partition would turn that partition's primary into a cluster-wide
// hotspot. HopsFS special-cases the root's immediate children the same way
// ([23]: the root's children are distributed over all partitions).
func partKeyOf(parent uint64, name string) string {
	if parent == RootID {
		return "c:" + name
	}
	return partKey(parent)
}

// inodeKey is the row key of an inode under its parent.
func inodeKey(parent uint64, name string) string {
	return strconv.FormatUint(parent, 10) + "/" + name
}

// charge bills NN CPU for an operation over depth path components (fluid
// deferred service on the server's core pool).
func (nn *NameNode) charge(p *sim.Proc, depth int) {
	c := nn.ns.cfg.Costs
	nn.cpu.UseDeferred(p, c.OpBase+time.Duration(depth)*c.PerComponent)
}

// chargeList bills the leader for serving the cached active-server list to
// a client: a per-entry in-memory read, far cheaper than a metadata op.
func (nn *NameNode) chargeList(p *sim.Proc, entries int) {
	if entries <= 0 {
		return
	}
	c := nn.ns.cfg.Costs
	nn.cpu.UseDeferred(p, time.Duration(entries)*c.PerListEntry)
}

// retriable reports whether a transaction error warrants a retry: lock
// timeouts (deadlock/overload backpressure) and node failovers.
func retriable(err error) bool {
	// An indeterminate cross-shard commit is decided — its durable intent
	// will complete it — so retrying would re-run an operation that is
	// already (going to be) applied and report a false definite failure.
	if errors.Is(err, shard.ErrIndeterminate) {
		return false
	}
	return errors.Is(err, ndb.ErrLockTimeout) || errors.Is(err, ndb.ErrNodeUnavailable)
}

// runTxn executes fn in a routed transaction with the given partition-key
// hint, retrying aborted transactions with exponential backoff — the
// paper's retry mechanism providing backpressure to NDB (§II-B2). The hint
// picks the shard whose sub-transaction opens eagerly; a stale hint only
// costs locality, never correctness, since every read and write re-routes
// by its own partition key. In detailed tracing mode each attempt becomes a
// "txn" child span of the operation's root span, carrying the TC-selection
// attributes set by ndb.Begin.
func (nn *NameNode) runTxn(p *sim.Proc, hint string, fn func(tx *shard.Txn) error) error {
	attemptTxn := func() error {
		tx, err := nn.ns.router.Begin(p, nn.Node, nn.Domain, nn.ns.inodes, hint)
		if err != nil {
			return err
		}
		if err := fn(tx); err != nil {
			tx.Abort()
			return err
		}
		return tx.Commit()
	}
	backoff := nn.ns.cfg.RetryBackoff
	for attempt := 0; attempt <= nn.ns.cfg.RetryMax; attempt++ {
		var err error
		if ts := p.Span().Child("txn", p.EffNow()); ts != nil {
			if attempt > 0 {
				ts.SetAttr("retry", strconv.Itoa(attempt))
			}
			prev := p.SetSpan(ts)
			err = attemptTxn()
			ts.Finish(p.EffNow())
			p.SetSpan(prev)
		} else {
			err = attemptTxn()
		}
		if err == nil {
			return nil
		}
		if !retriable(err) {
			return err
		}
		jitter := time.Duration(p.Rand().Int63n(int64(backoff)))
		p.Sleep(backoff + jitter)
		if backoff < 64*nn.ns.cfg.RetryBackoff {
			backoff *= 2
		}
	}
	return ErrRetriesExhausted
}

// PendingIntents returns the number of durable cross-shard intent records
// not yet resolved — the chaos auditor's "no intent left behind" invariant
// reads it after a quiesced sweep. Always zero for unsharded deployments.
func (ns *Namesystem) PendingIntents() int {
	return ns.router.PendingIntentCount()
}

// ResolvePendingIntents sweeps and resolves every durable cross-shard
// intent record left by coordinators that crashed (or were cut off)
// mid-commit, rolling each one forward or back. Recovery runs from an
// alive namenode; with none alive it reports ErrNoNameNodes.
func (ns *Namesystem) ResolvePendingIntents(p *sim.Proc) (int, error) {
	nn := ns.Leader()
	if nn == nil {
		return 0, ErrNoNameNodes
	}
	return ns.router.ResolvePendingIntents(p, nn.Node, nn.Domain)
}

// annotate tags the operation's active (root) span with the serving server
// and target path, and attributes the path's subtrees to the heat
// collector. Attributes only materialize in detailed tracing mode; heat
// touches happen in aggregate mode too (the sketches are the aggregate).
func (nn *NameNode) annotate(p *sim.Proc, path string) {
	nn.ns.heat.TouchPath(p.Now(), path)
	if sp := p.Span(); sp != nil {
		sp.SetAttr("nn", nn.Node.Name())
		sp.SetAttr("path", path)
	}
}
