package namenode

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"hopsfscl/internal/sim"
)

// modelNode is the oracle: a plain in-memory tree with the same semantics
// the metadata layer promises.
type modelNode struct {
	dir      bool
	perm     uint16
	owner    string
	children map[string]*modelNode
}

func newModelDir() *modelNode {
	return &modelNode{dir: true, perm: 0o755, owner: "hdfs", children: map[string]*modelNode{}}
}

type model struct{ root *modelNode }

func (m *model) walk(comps []string) (*modelNode, error) {
	cur := m.root
	for _, c := range comps {
		if !cur.dir {
			return nil, ErrNotDir
		}
		next, ok := cur.children[c]
		if !ok {
			return nil, ErrNotFound
		}
		cur = next
	}
	return cur, nil
}

func (m *model) parentOf(comps []string) (*modelNode, string, error) {
	parent, err := m.walk(comps[:len(comps)-1])
	if err != nil {
		return nil, "", err
	}
	if !parent.dir {
		return nil, "", ErrNotDir
	}
	return parent, comps[len(comps)-1], nil
}

func (m *model) mkdir(comps []string) error {
	parent, name, err := m.parentOf(comps)
	if err != nil {
		return err
	}
	if _, ok := parent.children[name]; ok {
		return ErrExists
	}
	parent.children[name] = newModelDir()
	return nil
}

func (m *model) create(comps []string) error {
	parent, name, err := m.parentOf(comps)
	if err != nil {
		return err
	}
	if _, ok := parent.children[name]; ok {
		return ErrExists
	}
	parent.children[name] = &modelNode{perm: 0o644, owner: "hdfs"}
	return nil
}

func (m *model) remove(comps []string, recursive bool) error {
	parent, name, err := m.parentOf(comps)
	if err != nil {
		return err
	}
	n, ok := parent.children[name]
	if !ok {
		return ErrNotFound
	}
	if n.dir && len(n.children) > 0 && !recursive {
		return ErrNotEmpty
	}
	delete(parent.children, name)
	return nil
}

func (m *model) rename(src, dst []string) error {
	// Check order mirrors the implementation: source parent, source
	// existence, destination parent chain, cycle, destination existence.
	srcParent, srcName, err := m.parentOf(src)
	if err != nil {
		return err
	}
	n, ok := srcParent.children[srcName]
	if !ok {
		return ErrNotFound
	}
	dstParentNode, err := m.walk(dst[:len(dst)-1])
	if err != nil {
		return err
	}
	if !dstParentNode.dir {
		return ErrNotDir
	}
	// Cycle: the destination parent chain must not pass through n.
	cur := m.root
	for _, c := range dst[:len(dst)-1] {
		if cur == n {
			return ErrCycle
		}
		cur = cur.children[c]
	}
	if cur == n {
		return ErrCycle
	}
	dstName := dst[len(dst)-1]
	if _, ok := dstParentNode.children[dstName]; ok {
		return ErrExists
	}
	delete(srcParent.children, srcName)
	dstParentNode.children[dstName] = n
	return nil
}

func (m *model) list(comps []string) ([]string, error) {
	n, err := m.walk(comps)
	if err != nil {
		return nil, err
	}
	if !n.dir {
		return nil, ErrNotDir
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// errClass normalizes errors for comparison.
func errClass(err error) string {
	if err == nil {
		return "ok"
	}
	return err.Error()
}

// TestPropFSMatchesModel runs random operation sequences through the full
// stack (client -> NN -> transactions -> NDB commit protocol) and through
// the oracle, comparing every outcome. This is the deep end-to-end
// correctness check of the metadata layer.
func TestPropFSMatchesModel(t *testing.T) {
	if testing.Short() {
		t.Skip("model checking is slow")
	}
	prop := func(seed int64) bool {
		h := newHarness(t)
		cl := h.client(1)
		m := &model{root: newModelDir()}
		rng := rand.New(rand.NewSource(seed))

		// A pool of path components keeps collisions frequent enough to
		// exercise the error paths.
		names := []string{"a", "b", "c", "d"}
		randPath := func() (string, []string) {
			depth := rng.Intn(3) + 1
			comps := make([]string, depth)
			for i := range comps {
				comps[i] = names[rng.Intn(len(names))]
			}
			return "/" + strings.Join(comps, "/"), comps
		}

		okAll := true
		h.env.Spawn("driver", func(p *sim.Proc) {
			for i := 0; i < 120 && okAll; i++ {
				op := rng.Intn(6)
				path, comps := randPath()
				var gotErr, wantErr error
				desc := ""
				switch op {
				case 0:
					desc = "mkdir " + path
					gotErr = cl.Mkdir(p, path)
					wantErr = m.mkdir(comps)
				case 1:
					desc = "create " + path
					gotErr = cl.Create(p, path, 0)
					wantErr = m.create(comps)
				case 2:
					recursive := rng.Intn(2) == 0
					desc = fmt.Sprintf("delete %s r=%v", path, recursive)
					gotErr = cl.Delete(p, path, recursive)
					wantErr = m.remove(comps, recursive)
				case 3:
					dst, dstComps := randPath()
					desc = "rename " + path + " -> " + dst
					gotErr = cl.Rename(p, path, dst)
					wantErr = m.rename(comps, dstComps)
				case 4:
					desc = "list " + path
					kids, err := cl.List(p, path)
					gotErr = err
					wantNames, werr := m.list(comps)
					wantErr = werr
					if err == nil && werr == nil {
						gotNames := make([]string, len(kids))
						for j, k := range kids {
							gotNames[j] = k.Name
						}
						if strings.Join(gotNames, ",") != strings.Join(wantNames, ",") {
							t.Errorf("seed %d step %d %s: list %v, model %v", seed, i, desc, gotNames, wantNames)
							okAll = false
							return
						}
					}
				case 5:
					desc = "stat " + path
					ino, err := cl.Stat(p, path)
					gotErr = err
					n, werr := m.walk(comps)
					wantErr = werr
					if err == nil && werr == nil && ino.Dir != n.dir {
						t.Errorf("seed %d step %d %s: dir=%v, model dir=%v", seed, i, desc, ino.Dir, n.dir)
						okAll = false
						return
					}
				}
				if errClass(gotErr) != errClass(wantErr) {
					t.Errorf("seed %d step %d %s: fs=%v model=%v", seed, i, desc, gotErr, wantErr)
					okAll = false
					return
				}
			}
		})
		h.env.RunFor(5 * time.Minute)
		return okAll
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestPropSplitPath checks path validation over arbitrary strings: it never
// panics, and accepted paths round-trip cleanly.
func TestPropSplitPath(t *testing.T) {
	prop := func(raw string) bool {
		comps, err := splitPath(raw)
		if err != nil {
			return true
		}
		for _, c := range comps {
			if c == "" || c == "." || c == ".." || strings.Contains(c, "/") {
				return false
			}
		}
		if len(comps) == 0 {
			return raw == "/"
		}
		return strings.HasPrefix(raw, "/")
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestPropHintCacheNeverAffectsCorrectness poisons the inode hint cache
// with garbage and verifies operations still resolve correctly: a hint only
// influences coordinator placement, never results.
func TestPropHintCacheNeverAffectsCorrectness(t *testing.T) {
	prop := func(seed int64, poison uint64) bool {
		h := newHarness(t)
		cl := h.client(2)
		ok := true
		h.env.Spawn("driver", func(p *sim.Proc) {
			if err := cl.MkdirAll(p, "/x/y"); err != nil {
				t.Error(err)
				ok = false
				return
			}
			if err := cl.Create(p, "/x/y/f", 0); err != nil {
				t.Error(err)
				ok = false
				return
			}
			// Poison every NN's hint cache.
			for _, nn := range h.ns.NameNodes() {
				nn.cache.put("/x", poison)
				nn.cache.put("/x/y", poison%97)
			}
			ino, err := cl.Stat(p, "/x/y/f")
			if err != nil || ino.Name != "f" {
				t.Errorf("stat with poisoned cache: %v %+v", err, ino)
				ok = false
			}
		})
		h.env.RunFor(time.Minute)
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
