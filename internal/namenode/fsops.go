package namenode

import (
	"sort"
	"strconv"
	"strings"
	"time"

	"hopsfscl/internal/blocks"
	"hopsfscl/internal/ndb"
	"hopsfscl/internal/shard"
	"hopsfscl/internal/sim"
)

// splitPath validates an absolute path and returns its components.
func splitPath(path string) ([]string, error) {
	if path == "" || path[0] != '/' {
		return nil, ErrInvalidPath
	}
	if path == "/" {
		return nil, nil
	}
	parts := strings.Split(strings.Trim(path, "/"), "/")
	for _, c := range parts {
		if c == "" || c == "." || c == ".." {
			return nil, ErrInvalidPath
		}
	}
	return parts, nil
}

// hintFor computes the transaction's distribution-aware hint: the partition
// key of the target's parent directory, from the inode hint cache when
// possible (a stale hint only costs locality, never correctness).
func (nn *NameNode) hintFor(comps []string) string {
	if len(comps) == 0 {
		return partKeyOf(0, "")
	}
	if len(comps) == 1 {
		return partKeyOf(RootID, comps[0])
	}
	dir := "/" + strings.Join(comps[:len(comps)-1], "/")
	if id, ok := nn.cache.get(dir); ok {
		return partKey(id)
	}
	// Unresolved parent: hint with the top-level component's partition.
	return partKeyOf(RootID, comps[0])
}

// readInode fetches one inode row read-committed.
func (nn *NameNode) readInode(tx *shard.Txn, parent uint64, name string) (*Inode, error) {
	v, ok, err := tx.ReadCommitted(nn.ns.inodes, partKeyOf(parent, name), inodeKey(parent, name))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrNotFound
	}
	ino, ok := v.(*Inode)
	if !ok {
		return nil, ErrNotFound
	}
	nn.ns.heat.TouchInode(tx.Now(), ino.ID)
	return ino, nil
}

// lockInode re-reads an inode under a row lock on the primary replica.
func (nn *NameNode) lockInode(tx *shard.Txn, parent uint64, name string, mode ndb.LockMode) (*Inode, error) {
	v, ok, err := tx.ReadLocked(nn.ns.inodes, partKeyOf(parent, name), inodeKey(parent, name), mode)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrNotFound
	}
	ino, ok := v.(*Inode)
	if !ok {
		return nil, ErrNotFound
	}
	nn.ns.heat.TouchInode(tx.Now(), ino.ID)
	return ino, nil
}

// rootInode is the immutable "/" inode, cached at every metadata server —
// HopsFS never reads it from the database on the hot path ([23]: the root
// inode is immutable and cached at all namenodes).
var rootInode = &Inode{ID: RootID, Parent: 0, Name: "", Dir: true, Perm: 0o755, Owner: "hdfs"}

// resolveChain resolves the path to the inode chain [root, ..., target]
// with read-committed reads (hierarchical implicit locking: ancestors are
// not locked). When the hint cache covers a prefix of the path, the whole
// covered chain is read in one batched fan-out and verified
// (tryBatchResolve); otherwise — and whenever verification detects stale
// hints — it falls back to the serial per-component walk. Either way the
// hint cache is refreshed with what was actually read.
func (nn *NameNode) resolveChain(tx *shard.Txn, comps []string) ([]*Inode, error) {
	if !nn.ns.cfg.DisableBatchedResolve && len(comps) > 1 {
		chain, ok, err := nn.tryBatchResolve(tx, comps)
		if err != nil {
			return nil, err
		}
		if ok {
			return chain, nil
		}
	}
	chain := make([]*Inode, 1, len(comps)+1)
	chain[0] = rootInode
	return nn.walkFrom(tx, chain, comps)
}

// tryBatchResolve attempts optimistic batched resolution: it collects the
// longest contiguously cached prefix of the path, reads every covered inode
// row in a single ReadBatch, and verifies the parent/name links against
// what the cache promised. ok=false means the cache could not prime a batch
// or verification failed (stale hints) — the caller must re-walk serially;
// a stale cache only ever costs that retry, never a wrong answer. When all
// links verify, errors are authoritative: a missing row below a verified
// parent is exactly the ErrNotFound the serial walk would have returned,
// and a non-directory interior component is ErrNotDir. Any remaining
// uncovered suffix is resolved serially from the verified chain.
func (nn *NameNode) tryBatchResolve(tx *shard.Txn, comps []string) ([]*Inode, bool, error) {
	obs := nn.ns.obs
	// ids[i] is the cached inode id of the prefix comps[:i]; ids[0] is "/".
	// The prefix paths are built incrementally in one byte buffer probed
	// with byte-keyed lookups: the whole chain costs one buffer, not one
	// joined string per level.
	ids := make([]uint64, 1, len(comps)+1)
	ids[0] = RootID
	pbuf := make([]byte, 0, 96)
	for i := 1; i <= len(comps); i++ {
		pbuf = append(pbuf, '/')
		pbuf = append(pbuf, comps[i-1]...)
		id, ok := nn.cache.getBytes(pbuf)
		if !ok {
			break
		}
		ids = append(ids, id)
	}
	// Row i is keyed by (ids[i], comps[i]), so the cache primes one row
	// beyond the covered prefix. A batch of one row is just a serial read.
	rows := len(ids)
	if rows > len(comps) {
		rows = len(comps)
	}
	if rows < 2 {
		obs.miss()
		return nil, false, nil
	}
	gets := make([]shard.BatchGet, rows)
	for i := range gets {
		gets[i] = shard.BatchGet{
			Table:   nn.ns.inodes,
			PartKey: partKeyOf(ids[i], comps[i]),
			Key:     inodeKey(ids[i], comps[i]),
		}
	}
	vals, err := tx.ReadBatch(gets)
	if err != nil {
		return nil, false, err
	}
	chain := make([]*Inode, 1, len(comps)+1)
	chain[0] = rootInode
	pbuf = pbuf[:0]
	for i := 0; i < rows; i++ {
		pbuf = append(pbuf, '/')
		pbuf = append(pbuf, comps[i]...)
		if !vals[i].OK {
			// Every link above row i verified, so the parent id used to
			// key this row was the committed one: the row's absence is the
			// same ErrNotFound the serial walk would see.
			obs.hit()
			tx.Annotate("op.batched", strconv.Itoa(rows))
			return nil, true, ErrNotFound
		}
		ino, ok := vals[i].Val.(*Inode)
		if !ok || ino.Parent != ids[i] || ino.Name != comps[i] {
			// Defensive: the stored row disagrees with its own key.
			obs.fallback()
			return nil, false, nil
		}
		if i+1 < len(ids) && ino.ID != ids[i+1] {
			// The path component exists but is not the inode the cache
			// promised (renamed away and recreated): every row below was
			// keyed off a stale id, so the batch is worthless.
			obs.fallback()
			return nil, false, nil
		}
		if i < len(comps)-1 && !ino.Dir {
			obs.hit()
			tx.Annotate("op.batched", strconv.Itoa(rows))
			return nil, true, ErrNotDir
		}
		nn.cache.putBytes(pbuf, ino.ID)
		chain = append(chain, ino)
	}
	obs.hit()
	tx.Annotate("op.batched", strconv.Itoa(rows))
	chain, err = nn.walkFrom(tx, chain, comps)
	if err != nil {
		return nil, true, err
	}
	return chain, true, nil
}

// walkFrom continues serial resolution: chain already resolves
// comps[:len(chain)-1], and each further component is one read-committed
// round trip. It refreshes the hint cache as it goes.
func (nn *NameNode) walkFrom(tx *shard.Txn, chain []*Inode, comps []string) ([]*Inode, error) {
	cur := chain[len(chain)-1]
	// One buffer carries the growing prefix path for the cache refreshes.
	pbuf := make([]byte, 0, 96)
	for j := 0; j < len(chain)-1; j++ {
		pbuf = append(pbuf, '/')
		pbuf = append(pbuf, comps[j]...)
	}
	for i := len(chain) - 1; i < len(comps); i++ {
		if !cur.Dir {
			return nil, ErrNotDir
		}
		child, err := nn.readInode(tx, cur.ID, comps[i])
		if err != nil {
			return nil, err
		}
		pbuf = append(pbuf, '/')
		pbuf = append(pbuf, comps[i]...)
		nn.cache.putBytes(pbuf, child.ID)
		chain = append(chain, child)
		cur = child
	}
	return chain, nil
}

// resolveParentChain resolves everything but the last component and returns
// the full ancestor chain [root, ..., parent] plus the target's name. The
// chain (not just the parent) is what mutations need: quota charges go to
// every quota'd ancestor on the resolved path.
func (nn *NameNode) resolveParentChain(tx *shard.Txn, comps []string) ([]*Inode, string, error) {
	if len(comps) == 0 {
		return nil, "", ErrInvalidPath
	}
	chain, err := nn.resolveChain(tx, comps[:len(comps)-1])
	if err != nil {
		return nil, "", err
	}
	if !chain[len(chain)-1].Dir {
		return nil, "", ErrNotDir
	}
	return chain, comps[len(comps)-1], nil
}

// resolveParent resolves everything but the last component and returns the
// parent inode plus the target's name.
func (nn *NameNode) resolveParent(tx *shard.Txn, comps []string) (*Inode, string, error) {
	chain, name, err := nn.resolveParentChain(tx, comps)
	if err != nil {
		return nil, "", err
	}
	return chain[len(chain)-1], name, nil
}

// Mkdir creates a directory. The parent is share-locked (it must keep
// existing), the new child row is exclusively locked by the insert.
func (nn *NameNode) Mkdir(p *sim.Proc, path string, perm uint16) error {
	comps, err := splitPath(path)
	if err != nil {
		return err
	}
	if len(comps) == 0 {
		return ErrExists
	}
	nn.charge(p, len(comps))
	nn.Ops++
	nn.annotate(p, path)
	return nn.runTxn(p, nn.hintFor(comps), func(tx *shard.Txn) error {
		chain, name, err := nn.resolveParentChain(tx, comps)
		if err != nil {
			return err
		}
		parent := chain[len(chain)-1]
		if _, err := nn.lockInode(tx, parent.Parent, parent.Name, ndb.LockShared); err != nil {
			return err
		}
		// Exclusive-lock the child row first, then check existence: two
		// racing creators serialize on the lock and the loser sees the
		// winner's row.
		if _, ok, err := tx.ReadLocked(nn.ns.inodes, partKeyOf(parent.ID, name), inodeKey(parent.ID, name), ndb.LockExclusive); err != nil {
			return err
		} else if ok {
			return ErrExists
		}
		ino := &Inode{
			ID:     nn.ns.nextID(),
			Parent: parent.ID,
			Name:   name,
			Dir:    true,
			Perm:   perm,
			Owner:  "hdfs",
			Mtime:  p.Now(),
		}
		// Subtree pinning is inherited: a directory created under a pinned
		// directory pins its own children's partition key to the same
		// shard, keeping the whole subtree together. A pin surviving an
		// aborted attempt is harmless — inode ids are never reused.
		if s, ok := nn.ns.router.Pinned(partKey(parent.ID)); ok {
			_ = nn.ns.router.Pin(partKey(ino.ID), s)
		}
		// The inode row and any quota charges ride one batched write (a
		// single-row batch stages exactly like a plain insert).
		items := []shard.BatchWrite{{Table: nn.ns.inodes, PartKey: partKeyOf(parent.ID, name), Key: inodeKey(parent.ID, name), Val: ino}}
		items = append(items, nn.quotaCharges(chain, "c", ino.ID, 1, 0)...)
		return tx.WriteBatch(items)
	})
}

// Create creates a file of the given logical size. Sizes at or below the
// small-file threshold are recorded as stored inline in NDB (§II-A3);
// larger files get their block list attached later via AttachBlocks (the
// client writes blocks through the block layer between the two).
func (nn *NameNode) Create(p *sim.Proc, path string, size int64) (*Inode, error) {
	comps, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	if len(comps) == 0 {
		return nil, ErrExists
	}
	nn.charge(p, len(comps))
	nn.Ops++
	nn.annotate(p, path)
	var created *Inode
	err = nn.runTxn(p, nn.hintFor(comps), func(tx *shard.Txn) error {
		chain, name, err := nn.resolveParentChain(tx, comps)
		if err != nil {
			return err
		}
		parent := chain[len(chain)-1]
		if _, err := nn.lockInode(tx, parent.Parent, parent.Name, ndb.LockShared); err != nil {
			return err
		}
		if _, ok, err := tx.ReadLocked(nn.ns.inodes, partKeyOf(parent.ID, name), inodeKey(parent.ID, name), ndb.LockExclusive); err != nil {
			return err
		} else if ok {
			return ErrExists
		}
		ino := &Inode{
			ID:     nn.ns.nextID(),
			Parent: parent.ID,
			Name:   name,
			Perm:   0o644,
			Owner:  "hdfs",
			Size:   size,
			Mtime:  p.Now(),
		}
		if size <= nn.ns.cfg.SmallFileThreshold {
			ino.InlineSize = size
		}
		created = ino
		// The inode row, the inline small-file payload (§II-A3), and any
		// quota charges commit as one batched write — one staging message
		// pair per primary, coalesced commit trains where chains coincide.
		items := []shard.BatchWrite{{Table: nn.ns.inodes, PartKey: partKeyOf(parent.ID, name), Key: inodeKey(parent.ID, name), Val: ino}}
		if ino.InlineSize > 0 {
			items = append(items, shard.BatchWrite{Table: nn.ns.smallfiles, PartKey: partKey(ino.ID), Key: smallFileKey, Val: ino.InlineSize})
		}
		items = append(items, nn.quotaCharges(chain, "c", ino.ID, 1, size)...)
		return tx.WriteBatch(items)
	})
	if err != nil {
		return nil, err
	}
	return created, nil
}

// Stat returns a file or directory's metadata (read-committed, lock-free).
func (nn *NameNode) Stat(p *sim.Proc, path string) (*Inode, error) {
	comps, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	nn.charge(p, len(comps))
	nn.Ops++
	nn.annotate(p, path)
	var out *Inode
	err = nn.runTxn(p, nn.hintFor(comps), func(tx *shard.Txn) error {
		chain, err := nn.resolveChain(tx, comps)
		if err != nil {
			return err
		}
		out = chain[len(chain)-1]
		return nil
	})
	return out, err
}

// GetBlockLocations is the read-file metadata operation: ancestors are read
// committed, the target inode is share-locked to guarantee the freshest
// block list (locked reads always go to the primary replica, §II-B2).
func (nn *NameNode) GetBlockLocations(p *sim.Proc, path string) (*Inode, error) {
	comps, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	if len(comps) == 0 {
		return nil, ErrIsDir
	}
	nn.charge(p, len(comps))
	nn.Ops++
	nn.annotate(p, path)
	var out *Inode
	err = nn.runTxn(p, nn.hintFor(comps), func(tx *shard.Txn) error {
		parent, name, err := nn.resolveParent(tx, comps)
		if err != nil {
			return err
		}
		ino, err := nn.lockInode(tx, parent.ID, name, ndb.LockShared)
		if err != nil {
			return err
		}
		if ino.Dir {
			return ErrIsDir
		}
		if ino.InlineSize > 0 {
			// Small files are served straight from NDB (§II-A3): fetch the
			// inline payload row alongside the metadata.
			if _, _, err := tx.ReadCommitted(nn.ns.smallfiles, partKey(ino.ID), smallFileKey); err != nil {
				return err
			}
		}
		out = ino
		return nil
	})
	return out, err
}

// List returns a directory's children, name-sorted. The directory is
// share-locked; the children are one partition-pruned scan.
func (nn *NameNode) List(p *sim.Proc, path string) ([]*Inode, error) {
	comps, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	nn.charge(p, len(comps))
	nn.Ops++
	nn.annotate(p, path)
	var out []*Inode
	err = nn.runTxn(p, nn.hintFor(append(comps, "")), func(tx *shard.Txn) error {
		out = out[:0]
		chain, err := nn.resolveChain(tx, comps)
		if err != nil {
			return err
		}
		dir := chain[len(chain)-1]
		if !dir.Dir {
			return ErrNotDir
		}
		if dir.ID != RootID {
			if _, err := nn.lockInode(tx, dir.Parent, dir.Name, ndb.LockShared); err != nil {
				return err
			}
		}
		var kvs []ndb.KV
		if dir.ID == RootID {
			// The root's children are deliberately scattered across
			// partitions (see partKeyOf); listing "/" is a table scan.
			kvs, err = tx.ScanTablePrefix(nn.ns.inodes, inodeKey(dir.ID, ""))
		} else {
			kvs, err = tx.ScanPrefix(nn.ns.inodes, partKey(dir.ID), inodeKey(dir.ID, ""))
		}
		if err != nil {
			return err
		}
		for _, kv := range kvs {
			if ino, ok := kv.Val.(*Inode); ok && ino.Parent == dir.ID {
				out = append(out, ino)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	nn.cpu.UseDeferred(p, time.Duration(len(out))*nn.ns.cfg.Costs.PerListEntry)
	return out, nil
}

// Delete removes a file or directory. Non-recursive deletes of non-empty
// directories fail with ErrNotEmpty. It returns the block ids freed so the
// caller can reclaim them in the block layer after the commit.
func (nn *NameNode) Delete(p *sim.Proc, path string, recursive bool) ([]blocks.BlockID, error) {
	comps, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	if len(comps) == 0 {
		return nil, ErrInvalidPath
	}
	nn.charge(p, len(comps))
	nn.Ops++
	nn.annotate(p, path)
	var freed []blocks.BlockID
	err = nn.runTxn(p, nn.hintFor(comps), func(tx *shard.Txn) error {
		freed = freed[:0]
		chain, name, err := nn.resolveParentChain(tx, comps)
		if err != nil {
			return err
		}
		parent := chain[len(chain)-1]
		if _, err := nn.lockInode(tx, parent.Parent, parent.Name, ndb.LockShared); err != nil {
			return err
		}
		target, err := nn.lockInode(tx, parent.ID, name, ndb.LockExclusive)
		if err != nil {
			return err
		}
		return nn.deleteSubtree(tx, chain, target, recursive, &freed)
	})
	if err != nil {
		return nil, err
	}
	// The whole subtree is gone: drop its hints so later resolutions do not
	// waste a batched attempt on rows that cannot exist.
	nn.cache.invalidatePrefix("/" + strings.Join(comps, "/"))
	return freed, nil
}

// deleteSubtree removes target and (recursively) its children within the
// same transaction — HopsFS's atomic subtree delete. The tree is discovered
// level by level, each level's directory listings fetched in one batched
// fan-out (ScanBatch) and its children exclusively locked as found; then
// every BFS level's rows — inode rows, inline small-file payloads, and the
// quota records of dying quota'd directories — are deleted as one batched
// write, so a level costs one staging message pair per primary instead of
// one round trip per row. ancestors is the resolved chain above target; the
// whole subtree is charged back to its quota'd ancestors as one aggregate
// negative update.
func (nn *NameNode) deleteSubtree(tx *shard.Txn, ancestors []*Inode, target *Inode, recursive bool, freed *[]blocks.BlockID) error {
	levels := [][]*Inode{{target}}
	var level []*Inode
	if target.Dir {
		level = append(level, target)
	}
	top := true
	for len(level) > 0 {
		scans := make([]shard.BatchScan, len(level))
		for i, dir := range level {
			scans[i] = shard.BatchScan{
				Table:   nn.ns.inodes,
				PartKey: partKey(dir.ID),
				Prefix:  inodeKey(dir.ID, ""),
			}
		}
		results, err := tx.ScanBatch(scans)
		if err != nil {
			return err
		}
		var next, found []*Inode
		for li, dir := range level {
			if top && len(results[li]) > 0 && !recursive {
				return ErrNotEmpty
			}
			for _, kv := range results[li] {
				child, ok := kv.Val.(*Inode)
				if !ok || child.Parent != dir.ID {
					continue
				}
				if _, err := nn.lockInode(tx, dir.ID, child.Name, ndb.LockExclusive); err != nil {
					return err
				}
				found = append(found, child)
				if child.Dir {
					next = append(next, child)
				}
			}
		}
		if len(found) > 0 {
			levels = append(levels, found)
		}
		top = false
		level = next
	}
	var count, bytes int64
	for _, lvl := range levels {
		items := make([]shard.BatchWrite, 0, len(lvl))
		for _, ino := range lvl {
			*freed = append(*freed, ino.Blocks...)
			count++
			bytes += ino.Size
			items = append(items, shard.BatchWrite{Table: nn.ns.inodes, PartKey: partKeyOf(ino.Parent, ino.Name), Key: inodeKey(ino.Parent, ino.Name), Del: true})
			if ino.InlineSize > 0 {
				items = append(items, shard.BatchWrite{Table: nn.ns.smallfiles, PartKey: partKey(ino.ID), Key: smallFileKey, Del: true})
			}
			if ino.Dir && (ino.QuotaNS != 0 || ino.QuotaSS != 0) {
				// A dying quota'd directory takes its quota records with it:
				// the authoritative row plus its accumulated usage updates.
				items = append(items, shard.BatchWrite{Table: nn.ns.quotas, PartKey: partKey(ino.ID), Key: quotaRecordKey, Del: true})
				kvs, err := tx.ScanPrefix(nn.ns.quotas, partKey(ino.ID), quotaUpdatePrefix)
				if err != nil {
					return err
				}
				for _, kv := range kvs {
					items = append(items, shard.BatchWrite{Table: nn.ns.quotas, PartKey: partKey(ino.ID), Key: kv.Key, Del: true})
				}
			}
		}
		if err := tx.WriteBatch(items); err != nil {
			return err
		}
	}
	if charges := nn.quotaCharges(ancestors, "d", target.ID, -count, -bytes); len(charges) > 0 {
		// One aggregate negative charge for the whole subtree, keyed by the
		// delete target so repeated deletes under one quota never collide.
		return tx.WriteBatch(charges)
	}
	return nil
}

// Rename atomically moves src to dst — the operation object stores cannot
// provide (§I). Lock order is by (partition, row key) to avoid deadlocks
// between concurrent renames.
func (nn *NameNode) Rename(p *sim.Proc, src, dst string) error {
	srcComps, err := splitPath(src)
	if err != nil {
		return err
	}
	dstComps, err := splitPath(dst)
	if err != nil {
		return err
	}
	if len(srcComps) == 0 || len(dstComps) == 0 {
		return ErrInvalidPath
	}
	nn.charge(p, len(srcComps)+len(dstComps))
	nn.Ops++
	nn.annotate(p, src)
	p.Span().SetAttr("dst", dst)
	err = nn.runTxn(p, nn.hintFor(srcComps), func(tx *shard.Txn) error {
		srcParent, srcName, err := nn.resolveParent(tx, srcComps)
		if err != nil {
			return err
		}
		srcIno, err := nn.readInode(tx, srcParent.ID, srcName)
		if err != nil {
			return err
		}
		dstChain, err := nn.resolveChain(tx, dstComps[:len(dstComps)-1])
		if err != nil {
			return err
		}
		dstParent := dstChain[len(dstChain)-1]
		if !dstParent.Dir {
			return ErrNotDir
		}
		dstName := dstComps[len(dstComps)-1]
		// Cycle check: the destination's ancestor chain must not contain
		// the source inode.
		for _, anc := range dstChain {
			if anc.ID == srcIno.ID {
				return ErrCycle
			}
		}
		// Deterministic lock order over the two row keys: shard first, so
		// two cross-shard renames over the same pair of shards open their
		// sub-transactions — and take their locks — in the same order.
		type lockSpec struct {
			shard   int
			pk, key string
		}
		specs := []lockSpec{
			{nn.ns.inodes.Shard(partKeyOf(srcParent.ID, srcName)), partKeyOf(srcParent.ID, srcName), inodeKey(srcParent.ID, srcName)},
			{nn.ns.inodes.Shard(partKeyOf(dstParent.ID, dstName)), partKeyOf(dstParent.ID, dstName), inodeKey(dstParent.ID, dstName)},
		}
		sort.Slice(specs, func(i, j int) bool {
			if specs[i].shard != specs[j].shard {
				return specs[i].shard < specs[j].shard
			}
			if specs[i].pk != specs[j].pk {
				return specs[i].pk < specs[j].pk
			}
			return specs[i].key < specs[j].key
		})
		for _, s := range specs {
			if _, _, err := tx.ReadLocked(nn.ns.inodes, s.pk, s.key, ndb.LockExclusive); err != nil {
				return err
			}
		}
		// Re-validate under locks.
		srcIno, err = nn.readInode(tx, srcParent.ID, srcName)
		if err != nil {
			return err
		}
		if _, err := nn.readInode(tx, dstParent.ID, dstName); err == nil {
			return ErrExists
		} else if err != ErrNotFound {
			return err
		}
		moved := *srcIno
		moved.Parent = dstParent.ID
		moved.Name = dstName
		moved.Mtime = p.Now()
		// The unlink and the relink stage as one batched write and — when
		// both rows land on the same replica chain — commit as one train.
		// An inline payload row is keyed by the file's own inode id, so it
		// moves with the file untouched. Quota usage is not migrated across
		// quota boundaries (see quota.go).
		return tx.WriteBatch([]shard.BatchWrite{
			{Table: nn.ns.inodes, PartKey: partKeyOf(srcParent.ID, srcName), Key: inodeKey(srcParent.ID, srcName), Del: true},
			{Table: nn.ns.inodes, PartKey: partKeyOf(dstParent.ID, dstName), Key: inodeKey(dstParent.ID, dstName), Val: &moved},
		})
	})
	if err == nil {
		// Everything under the old path now resolves differently, and a
		// previous life of the destination path may still be cached.
		nn.cache.invalidatePrefix("/" + strings.Join(srcComps, "/"))
		nn.cache.invalidatePrefix("/" + strings.Join(dstComps, "/"))
	}
	return err
}

// SetPermission updates an inode's mode bits under an exclusive lock.
func (nn *NameNode) SetPermission(p *sim.Proc, path string, perm uint16) error {
	return nn.updateInode(p, path, func(ino *Inode) { ino.Perm = perm })
}

// SetOwner updates an inode's owner under an exclusive lock.
func (nn *NameNode) SetOwner(p *sim.Proc, path, owner string) error {
	return nn.updateInode(p, path, func(ino *Inode) { ino.Owner = owner })
}

// AttachBlocks records the block list of a large file after the client has
// written the blocks through the block layer (the create/addBlock/complete
// protocol collapsed into one metadata update).
func (nn *NameNode) AttachBlocks(p *sim.Proc, path string, ids []blocks.BlockID, size int64) error {
	return nn.updateInode(p, path, func(ino *Inode) {
		ino.Blocks = append([]blocks.BlockID(nil), ids...)
		ino.Size = size
	})
}

func (nn *NameNode) updateInode(p *sim.Proc, path string, mutate func(*Inode)) error {
	comps, err := splitPath(path)
	if err != nil {
		return err
	}
	if len(comps) == 0 {
		return ErrInvalidPath
	}
	nn.charge(p, len(comps))
	nn.Ops++
	nn.annotate(p, path)
	return nn.runTxn(p, nn.hintFor(comps), func(tx *shard.Txn) error {
		parent, name, err := nn.resolveParent(tx, comps)
		if err != nil {
			return err
		}
		ino, err := nn.lockInode(tx, parent.ID, name, ndb.LockExclusive)
		if err != nil {
			return err
		}
		updated := *ino
		mutate(&updated)
		updated.Mtime = p.Now()
		return tx.Insert(nn.ns.inodes, partKeyOf(parent.ID, name), inodeKey(parent.ID, name), &updated)
	})
}

// ContentSummary walks a subtree inside one transaction and returns its
// file count, directory count (including the root of the walk), and total
// logical bytes — HDFS's getContentSummary. Reads are read-committed; like
// HDFS, the summary is a consistent-enough snapshot, not a serialized one.
func (nn *NameNode) ContentSummary(p *sim.Proc, path string) (files, dirs int, size int64, err error) {
	comps, err := splitPath(path)
	if err != nil {
		return 0, 0, 0, err
	}
	nn.charge(p, len(comps))
	nn.Ops++
	nn.annotate(p, path)
	err = nn.runTxn(p, nn.hintFor(comps), func(tx *shard.Txn) error {
		files, dirs, size = 0, 0, 0
		chain, cerr := nn.resolveChain(tx, comps)
		if cerr != nil {
			return cerr
		}
		return nn.summarize(tx, chain[len(chain)-1], &files, &dirs, &size)
	})
	if err != nil {
		return 0, 0, 0, err
	}
	return files, dirs, size, nil
}

// summarize accumulates the subtree's file/dir counts and byte total,
// walking the tree level by level with each level's directory listings in
// one batched fan-out. The root directory's children are deliberately
// scattered across partitions (see partKeyOf), so "/" itself still costs a
// table scan.
func (nn *NameNode) summarize(tx *shard.Txn, root *Inode, files, dirs *int, size *int64) error {
	if !root.Dir {
		*files++
		*size += root.Size
		return nil
	}
	type scanned struct {
		dir *Inode
		kvs []ndb.KV
	}
	level := []*Inode{root}
	for len(level) > 0 {
		var sets []scanned
		var batchDirs []*Inode
		for _, dir := range level {
			*dirs++
			if dir.ID == RootID {
				kvs, err := tx.ScanTablePrefix(nn.ns.inodes, inodeKey(dir.ID, ""))
				if err != nil {
					return err
				}
				sets = append(sets, scanned{dir, kvs})
			} else {
				batchDirs = append(batchDirs, dir)
			}
		}
		if len(batchDirs) > 0 {
			scans := make([]shard.BatchScan, len(batchDirs))
			for i, dir := range batchDirs {
				scans[i] = shard.BatchScan{
					Table:   nn.ns.inodes,
					PartKey: partKey(dir.ID),
					Prefix:  inodeKey(dir.ID, ""),
				}
			}
			results, err := tx.ScanBatch(scans)
			if err != nil {
				return err
			}
			for i, dir := range batchDirs {
				sets = append(sets, scanned{dir, results[i]})
			}
		}
		var next []*Inode
		for _, s := range sets {
			for _, kv := range s.kvs {
				child, ok := kv.Val.(*Inode)
				if !ok || child.Parent != s.dir.ID {
					continue
				}
				if child.Dir {
					next = append(next, child)
				} else {
					*files++
					*size += child.Size
				}
			}
		}
		level = next
	}
	return nil
}
