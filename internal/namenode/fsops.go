package namenode

import (
	"sort"
	"strings"
	"time"

	"hopsfscl/internal/blocks"
	"hopsfscl/internal/ndb"
	"hopsfscl/internal/sim"
)

// splitPath validates an absolute path and returns its components.
func splitPath(path string) ([]string, error) {
	if path == "" || path[0] != '/' {
		return nil, ErrInvalidPath
	}
	if path == "/" {
		return nil, nil
	}
	parts := strings.Split(strings.Trim(path, "/"), "/")
	for _, c := range parts {
		if c == "" || c == "." || c == ".." {
			return nil, ErrInvalidPath
		}
	}
	return parts, nil
}

// hintFor computes the transaction's distribution-aware hint: the partition
// key of the target's parent directory, from the inode hint cache when
// possible (a stale hint only costs locality, never correctness).
func (nn *NameNode) hintFor(comps []string) string {
	if len(comps) == 0 {
		return partKeyOf(0, "")
	}
	if len(comps) == 1 {
		return partKeyOf(RootID, comps[0])
	}
	dir := "/" + strings.Join(comps[:len(comps)-1], "/")
	if id, ok := nn.cache[dir]; ok {
		return partKey(id)
	}
	// Unresolved parent: hint with the top-level component's partition.
	return partKeyOf(RootID, comps[0])
}

// readInode fetches one inode row read-committed.
func (nn *NameNode) readInode(tx *ndb.Txn, parent uint64, name string) (*Inode, error) {
	v, ok, err := tx.ReadCommitted(nn.ns.inodes, partKeyOf(parent, name), inodeKey(parent, name))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrNotFound
	}
	ino, ok := v.(*Inode)
	if !ok {
		return nil, ErrNotFound
	}
	return ino, nil
}

// lockInode re-reads an inode under a row lock on the primary replica.
func (nn *NameNode) lockInode(tx *ndb.Txn, parent uint64, name string, mode ndb.LockMode) (*Inode, error) {
	v, ok, err := tx.ReadLocked(nn.ns.inodes, partKeyOf(parent, name), inodeKey(parent, name), mode)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrNotFound
	}
	ino, ok := v.(*Inode)
	if !ok {
		return nil, ErrNotFound
	}
	return ino, nil
}

// resolveChain walks the path from the root with read-committed reads
// (hierarchical implicit locking: ancestors are not locked) and returns the
// inode chain [root, ..., target]. It also refreshes the hint cache.
// rootInode is the immutable "/" inode, cached at every metadata server —
// HopsFS never reads it from the database on the hot path ([23]: the root
// inode is immutable and cached at all namenodes).
var rootInode = &Inode{ID: RootID, Parent: 0, Name: "", Dir: true, Perm: 0o755, Owner: "hdfs"}

func (nn *NameNode) resolveChain(tx *ndb.Txn, comps []string) ([]*Inode, error) {
	root := rootInode
	chain := make([]*Inode, 0, len(comps)+1)
	chain = append(chain, root)
	cur := root
	for i, c := range comps {
		if !cur.Dir {
			return nil, ErrNotDir
		}
		child, err := nn.readInode(tx, cur.ID, c)
		if err != nil {
			return nil, err
		}
		nn.cache["/"+strings.Join(comps[:i+1], "/")] = child.ID
		chain = append(chain, child)
		cur = child
	}
	return chain, nil
}

// resolveParent resolves everything but the last component and returns the
// parent inode plus the target's name.
func (nn *NameNode) resolveParent(tx *ndb.Txn, comps []string) (*Inode, string, error) {
	if len(comps) == 0 {
		return nil, "", ErrInvalidPath
	}
	chain, err := nn.resolveChain(tx, comps[:len(comps)-1])
	if err != nil {
		return nil, "", err
	}
	parent := chain[len(chain)-1]
	if !parent.Dir {
		return nil, "", ErrNotDir
	}
	return parent, comps[len(comps)-1], nil
}

// Mkdir creates a directory. The parent is share-locked (it must keep
// existing), the new child row is exclusively locked by the insert.
func (nn *NameNode) Mkdir(p *sim.Proc, path string, perm uint16) error {
	comps, err := splitPath(path)
	if err != nil {
		return err
	}
	if len(comps) == 0 {
		return ErrExists
	}
	nn.charge(p, len(comps))
	nn.Ops++
	nn.annotate(p, path)
	return nn.runTxn(p, nn.hintFor(comps), func(tx *ndb.Txn) error {
		parent, name, err := nn.resolveParent(tx, comps)
		if err != nil {
			return err
		}
		if _, err := nn.lockInode(tx, parent.Parent, parent.Name, ndb.LockShared); err != nil {
			return err
		}
		// Exclusive-lock the child row first, then check existence: two
		// racing creators serialize on the lock and the loser sees the
		// winner's row.
		if _, ok, err := tx.ReadLocked(nn.ns.inodes, partKeyOf(parent.ID, name), inodeKey(parent.ID, name), ndb.LockExclusive); err != nil {
			return err
		} else if ok {
			return ErrExists
		}
		ino := &Inode{
			ID:     nn.ns.nextID(),
			Parent: parent.ID,
			Name:   name,
			Dir:    true,
			Perm:   perm,
			Owner:  "hdfs",
			Mtime:  p.Now(),
		}
		return tx.Insert(nn.ns.inodes, partKeyOf(parent.ID, name), inodeKey(parent.ID, name), ino)
	})
}

// Create creates a file of the given logical size. Sizes at or below the
// small-file threshold are recorded as stored inline in NDB (§II-A3);
// larger files get their block list attached later via AttachBlocks (the
// client writes blocks through the block layer between the two).
func (nn *NameNode) Create(p *sim.Proc, path string, size int64) (*Inode, error) {
	comps, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	if len(comps) == 0 {
		return nil, ErrExists
	}
	nn.charge(p, len(comps))
	nn.Ops++
	nn.annotate(p, path)
	var created *Inode
	err = nn.runTxn(p, nn.hintFor(comps), func(tx *ndb.Txn) error {
		parent, name, err := nn.resolveParent(tx, comps)
		if err != nil {
			return err
		}
		if _, err := nn.lockInode(tx, parent.Parent, parent.Name, ndb.LockShared); err != nil {
			return err
		}
		if _, ok, err := tx.ReadLocked(nn.ns.inodes, partKeyOf(parent.ID, name), inodeKey(parent.ID, name), ndb.LockExclusive); err != nil {
			return err
		} else if ok {
			return ErrExists
		}
		ino := &Inode{
			ID:     nn.ns.nextID(),
			Parent: parent.ID,
			Name:   name,
			Perm:   0o644,
			Owner:  "hdfs",
			Size:   size,
			Mtime:  p.Now(),
		}
		if size <= nn.ns.cfg.SmallFileThreshold {
			ino.InlineSize = size
		}
		created = ino
		return tx.Insert(nn.ns.inodes, partKeyOf(parent.ID, name), inodeKey(parent.ID, name), ino)
	})
	if err != nil {
		return nil, err
	}
	return created, nil
}

// Stat returns a file or directory's metadata (read-committed, lock-free).
func (nn *NameNode) Stat(p *sim.Proc, path string) (*Inode, error) {
	comps, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	nn.charge(p, len(comps))
	nn.Ops++
	nn.annotate(p, path)
	var out *Inode
	err = nn.runTxn(p, nn.hintFor(comps), func(tx *ndb.Txn) error {
		chain, err := nn.resolveChain(tx, comps)
		if err != nil {
			return err
		}
		out = chain[len(chain)-1]
		return nil
	})
	return out, err
}

// GetBlockLocations is the read-file metadata operation: ancestors are read
// committed, the target inode is share-locked to guarantee the freshest
// block list (locked reads always go to the primary replica, §II-B2).
func (nn *NameNode) GetBlockLocations(p *sim.Proc, path string) (*Inode, error) {
	comps, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	if len(comps) == 0 {
		return nil, ErrIsDir
	}
	nn.charge(p, len(comps))
	nn.Ops++
	nn.annotate(p, path)
	var out *Inode
	err = nn.runTxn(p, nn.hintFor(comps), func(tx *ndb.Txn) error {
		parent, name, err := nn.resolveParent(tx, comps)
		if err != nil {
			return err
		}
		ino, err := nn.lockInode(tx, parent.ID, name, ndb.LockShared)
		if err != nil {
			return err
		}
		if ino.Dir {
			return ErrIsDir
		}
		out = ino
		return nil
	})
	return out, err
}

// List returns a directory's children, name-sorted. The directory is
// share-locked; the children are one partition-pruned scan.
func (nn *NameNode) List(p *sim.Proc, path string) ([]*Inode, error) {
	comps, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	nn.charge(p, len(comps))
	nn.Ops++
	nn.annotate(p, path)
	var out []*Inode
	err = nn.runTxn(p, nn.hintFor(append(comps, "")), func(tx *ndb.Txn) error {
		out = out[:0]
		chain, err := nn.resolveChain(tx, comps)
		if err != nil {
			return err
		}
		dir := chain[len(chain)-1]
		if !dir.Dir {
			return ErrNotDir
		}
		if dir.ID != RootID {
			if _, err := nn.lockInode(tx, dir.Parent, dir.Name, ndb.LockShared); err != nil {
				return err
			}
		}
		var kvs []ndb.KV
		if dir.ID == RootID {
			// The root's children are deliberately scattered across
			// partitions (see partKeyOf); listing "/" is a table scan.
			kvs, err = tx.ScanTablePrefix(nn.ns.inodes, inodeKey(dir.ID, ""))
		} else {
			kvs, err = tx.ScanPrefix(nn.ns.inodes, partKey(dir.ID), inodeKey(dir.ID, ""))
		}
		if err != nil {
			return err
		}
		for _, kv := range kvs {
			if ino, ok := kv.Val.(*Inode); ok && ino.Parent == dir.ID {
				out = append(out, ino)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	nn.cpu.UseDeferred(p, time.Duration(len(out))*nn.ns.cfg.Costs.PerListEntry)
	return out, nil
}

// Delete removes a file or directory. Non-recursive deletes of non-empty
// directories fail with ErrNotEmpty. It returns the block ids freed so the
// caller can reclaim them in the block layer after the commit.
func (nn *NameNode) Delete(p *sim.Proc, path string, recursive bool) ([]blocks.BlockID, error) {
	comps, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	if len(comps) == 0 {
		return nil, ErrInvalidPath
	}
	nn.charge(p, len(comps))
	nn.Ops++
	nn.annotate(p, path)
	var freed []blocks.BlockID
	err = nn.runTxn(p, nn.hintFor(comps), func(tx *ndb.Txn) error {
		freed = freed[:0]
		parent, name, err := nn.resolveParent(tx, comps)
		if err != nil {
			return err
		}
		if _, err := nn.lockInode(tx, parent.Parent, parent.Name, ndb.LockShared); err != nil {
			return err
		}
		target, err := nn.lockInode(tx, parent.ID, name, ndb.LockExclusive)
		if err != nil {
			return err
		}
		return nn.deleteSubtree(tx, target, recursive, true, &freed)
	})
	if err != nil {
		return nil, err
	}
	return freed, nil
}

// deleteSubtree removes target and (recursively) its children within the
// same transaction — HopsFS's atomic subtree delete.
func (nn *NameNode) deleteSubtree(tx *ndb.Txn, target *Inode, recursive, topLocked bool, freed *[]blocks.BlockID) error {
	if target.Dir {
		kvs, err := tx.ScanPrefix(nn.ns.inodes, partKey(target.ID), inodeKey(target.ID, ""))
		if err != nil {
			return err
		}
		if len(kvs) > 0 && !recursive {
			return ErrNotEmpty
		}
		for _, kv := range kvs {
			child, ok := kv.Val.(*Inode)
			if !ok {
				continue
			}
			if _, err := nn.lockInode(tx, target.ID, child.Name, ndb.LockExclusive); err != nil {
				return err
			}
			if err := nn.deleteSubtree(tx, child, recursive, true, freed); err != nil {
				return err
			}
		}
	}
	*freed = append(*freed, target.Blocks...)
	return tx.Delete(nn.ns.inodes, partKeyOf(target.Parent, target.Name), inodeKey(target.Parent, target.Name))
}

// Rename atomically moves src to dst — the operation object stores cannot
// provide (§I). Lock order is by (partition, row key) to avoid deadlocks
// between concurrent renames.
func (nn *NameNode) Rename(p *sim.Proc, src, dst string) error {
	srcComps, err := splitPath(src)
	if err != nil {
		return err
	}
	dstComps, err := splitPath(dst)
	if err != nil {
		return err
	}
	if len(srcComps) == 0 || len(dstComps) == 0 {
		return ErrInvalidPath
	}
	nn.charge(p, len(srcComps)+len(dstComps))
	nn.Ops++
	nn.annotate(p, src)
	p.Span().SetAttr("dst", dst)
	return nn.runTxn(p, nn.hintFor(srcComps), func(tx *ndb.Txn) error {
		srcParent, srcName, err := nn.resolveParent(tx, srcComps)
		if err != nil {
			return err
		}
		srcIno, err := nn.readInode(tx, srcParent.ID, srcName)
		if err != nil {
			return err
		}
		dstChain, err := nn.resolveChain(tx, dstComps[:len(dstComps)-1])
		if err != nil {
			return err
		}
		dstParent := dstChain[len(dstChain)-1]
		if !dstParent.Dir {
			return ErrNotDir
		}
		dstName := dstComps[len(dstComps)-1]
		// Cycle check: the destination's ancestor chain must not contain
		// the source inode.
		for _, anc := range dstChain {
			if anc.ID == srcIno.ID {
				return ErrCycle
			}
		}
		// Deterministic lock order over the two row keys.
		type lockSpec struct{ pk, key string }
		specs := []lockSpec{
			{partKeyOf(srcParent.ID, srcName), inodeKey(srcParent.ID, srcName)},
			{partKeyOf(dstParent.ID, dstName), inodeKey(dstParent.ID, dstName)},
		}
		sort.Slice(specs, func(i, j int) bool {
			if specs[i].pk != specs[j].pk {
				return specs[i].pk < specs[j].pk
			}
			return specs[i].key < specs[j].key
		})
		for _, s := range specs {
			if _, _, err := tx.ReadLocked(nn.ns.inodes, s.pk, s.key, ndb.LockExclusive); err != nil {
				return err
			}
		}
		// Re-validate under locks.
		srcIno, err = nn.readInode(tx, srcParent.ID, srcName)
		if err != nil {
			return err
		}
		if _, err := nn.readInode(tx, dstParent.ID, dstName); err == nil {
			return ErrExists
		} else if err != ErrNotFound {
			return err
		}
		moved := *srcIno
		moved.Parent = dstParent.ID
		moved.Name = dstName
		moved.Mtime = p.Now()
		if err := tx.Delete(nn.ns.inodes, partKeyOf(srcParent.ID, srcName), inodeKey(srcParent.ID, srcName)); err != nil {
			return err
		}
		return tx.Insert(nn.ns.inodes, partKeyOf(dstParent.ID, dstName), inodeKey(dstParent.ID, dstName), &moved)
	})
}

// SetPermission updates an inode's mode bits under an exclusive lock.
func (nn *NameNode) SetPermission(p *sim.Proc, path string, perm uint16) error {
	return nn.updateInode(p, path, func(ino *Inode) { ino.Perm = perm })
}

// SetOwner updates an inode's owner under an exclusive lock.
func (nn *NameNode) SetOwner(p *sim.Proc, path, owner string) error {
	return nn.updateInode(p, path, func(ino *Inode) { ino.Owner = owner })
}

// AttachBlocks records the block list of a large file after the client has
// written the blocks through the block layer (the create/addBlock/complete
// protocol collapsed into one metadata update).
func (nn *NameNode) AttachBlocks(p *sim.Proc, path string, ids []blocks.BlockID, size int64) error {
	return nn.updateInode(p, path, func(ino *Inode) {
		ino.Blocks = append([]blocks.BlockID(nil), ids...)
		ino.Size = size
	})
}

func (nn *NameNode) updateInode(p *sim.Proc, path string, mutate func(*Inode)) error {
	comps, err := splitPath(path)
	if err != nil {
		return err
	}
	if len(comps) == 0 {
		return ErrInvalidPath
	}
	nn.charge(p, len(comps))
	nn.Ops++
	nn.annotate(p, path)
	return nn.runTxn(p, nn.hintFor(comps), func(tx *ndb.Txn) error {
		parent, name, err := nn.resolveParent(tx, comps)
		if err != nil {
			return err
		}
		ino, err := nn.lockInode(tx, parent.ID, name, ndb.LockExclusive)
		if err != nil {
			return err
		}
		updated := *ino
		mutate(&updated)
		updated.Mtime = p.Now()
		return tx.Insert(nn.ns.inodes, partKeyOf(parent.ID, name), inodeKey(parent.ID, name), &updated)
	})
}

// ContentSummary walks a subtree inside one transaction and returns its
// file count, directory count (including the root of the walk), and total
// logical bytes — HDFS's getContentSummary. Reads are read-committed; like
// HDFS, the summary is a consistent-enough snapshot, not a serialized one.
func (nn *NameNode) ContentSummary(p *sim.Proc, path string) (files, dirs int, size int64, err error) {
	comps, err := splitPath(path)
	if err != nil {
		return 0, 0, 0, err
	}
	nn.charge(p, len(comps))
	nn.Ops++
	nn.annotate(p, path)
	err = nn.runTxn(p, nn.hintFor(comps), func(tx *ndb.Txn) error {
		files, dirs, size = 0, 0, 0
		chain, cerr := nn.resolveChain(tx, comps)
		if cerr != nil {
			return cerr
		}
		return nn.summarize(tx, chain[len(chain)-1], &files, &dirs, &size)
	})
	if err != nil {
		return 0, 0, 0, err
	}
	return files, dirs, size, nil
}

func (nn *NameNode) summarize(tx *ndb.Txn, ino *Inode, files, dirs *int, size *int64) error {
	if !ino.Dir {
		*files++
		*size += ino.Size
		return nil
	}
	*dirs++
	var kvs []ndb.KV
	var err error
	if ino.ID == RootID {
		kvs, err = tx.ScanTablePrefix(nn.ns.inodes, inodeKey(ino.ID, ""))
	} else {
		kvs, err = tx.ScanPrefix(nn.ns.inodes, partKey(ino.ID), inodeKey(ino.ID, ""))
	}
	if err != nil {
		return err
	}
	for _, kv := range kvs {
		child, ok := kv.Val.(*Inode)
		if !ok {
			continue
		}
		if err := nn.summarize(tx, child, files, dirs, size); err != nil {
			return err
		}
	}
	return nil
}
