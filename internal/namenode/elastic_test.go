package namenode

import (
	"testing"
	"time"

	"hopsfscl/internal/sim"
	"hopsfscl/internal/simnet"
)

// settleRounds runs the simulation long enough for election rows to refresh
// and stale ones to expire.
func (h *harness) settleRounds(n int) {
	h.env.RunFor(time.Duration(n) * h.ns.cfg.ElectionRound)
}

func TestCommissionJoinsServingSet(t *testing.T) {
	h := newHarness(t)
	h.settleRounds(4)
	if got := h.ns.ServingCount(); got != 3 {
		t.Fatalf("ServingCount = %d, want 3", got)
	}
	epoch := h.ns.BalanceEpoch()
	nn := h.ns.Commission(1, simnet.HostID(600), 1)
	if h.ns.BalanceEpoch() != epoch+1 {
		t.Fatalf("Commission did not bump balance epoch")
	}
	if !nn.Serving() {
		t.Fatal("commissioned NN not serving")
	}
	if got := h.ns.ServingCount(); got != 4 {
		t.Fatalf("ServingCount = %d, want 4", got)
	}
	// After a few rounds the newcomer appears in the leader's active list.
	h.settleRounds(4)
	leader := h.ns.ElectedLeader()
	if leader == nil {
		t.Fatal("no leader")
	}
	found := false
	for _, a := range leader.ActiveNameNodes() {
		if a.ID == nn.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("commissioned NN %d missing from leader's active list %v", nn.ID, leader.ActiveNameNodes())
	}
}

func TestClientRebalancesOnEpochBump(t *testing.T) {
	h := newHarness(t)
	h.settleRounds(4)
	cl := h.client(1)
	h.run(t, func(p *sim.Proc) {
		if err := cl.Mkdir(p, "/d"); err != nil {
			t.Error(err)
		}
	})
	first := cl.CurrentNameNode()
	if first == nil {
		t.Fatal("client has no server after an operation")
	}
	// Without a scale event the client sticks.
	h.run(t, func(p *sim.Proc) {
		if _, err := cl.Stat(p, "/d"); err != nil {
			t.Error(err)
		}
	})
	if cl.CurrentNameNode() != first {
		t.Fatal("client re-picked without an epoch bump")
	}
	// A drain of its server forces a re-pick away from it.
	first.Drain()
	h.run(t, func(p *sim.Proc) {
		if _, err := cl.Stat(p, "/d"); err != nil {
			t.Error(err)
		}
	})
	if cl.CurrentNameNode() == first {
		t.Fatal("client still on a draining server after epoch bump")
	}
}

func TestDrainDecommissionLifecycle(t *testing.T) {
	h := newHarness(t)
	h.settleRounds(4)
	nn := h.ns.nns[2]
	if err := nn.Decommission(); err == nil {
		t.Fatal("Decommission before Drain should fail")
	}
	nn.Drain()
	if nn.Serving() || !nn.Draining() {
		t.Fatalf("after Drain: serving=%v draining=%v", nn.Serving(), nn.Draining())
	}
	if !nn.Alive() {
		t.Fatal("draining NN should stay alive for in-flight work")
	}
	// Its election row expires once it stops heartbeating.
	h.settleRounds(6)
	leader := h.ns.ElectedLeader()
	for _, a := range leader.ActiveNameNodes() {
		if a.ID == nn.ID {
			t.Fatalf("draining NN %d still in active list", nn.ID)
		}
	}
	if err := nn.Decommission(); err != nil {
		t.Fatal(err)
	}
	if !nn.Decommissioned() || nn.Alive() {
		t.Fatalf("after Decommission: decom=%v alive=%v", nn.Decommissioned(), nn.Alive())
	}
	// Decommissioning is irreversible.
	nn.Recover()
	if nn.Alive() {
		t.Fatal("Recover revived a decommissioned NN")
	}
	// The health model forgets the drained server entirely.
	live, expected, _ := h.ns.HealthStats(h.env.Now())
	if live != 2 || expected != 2 {
		t.Fatalf("HealthStats live=%d expected=%d, want 2/2", live, expected)
	}
}

func TestDrainWaitsForInFlight(t *testing.T) {
	h := newHarness(t)
	h.settleRounds(4)
	cl := h.client(2)
	h.run(t, func(p *sim.Proc) {
		if err := cl.Mkdir(p, "/busy"); err != nil {
			t.Error(err)
		}
	})
	nn := cl.CurrentNameNode()
	// Start a slow operation and drain mid-flight: decommission must refuse
	// until the operation completes.
	var refused bool
	done := false
	h.env.Spawn("op", func(p *sim.Proc) {
		_, err := cl.List(p, "/")
		if err != nil {
			t.Error(err)
		}
		done = true
	})
	h.env.Spawn("drainer", func(p *sim.Proc) {
		p.Sleep(10 * time.Microsecond)
		nn.Drain()
		if nn.InFlight() > 0 {
			if err := nn.Decommission(); err != nil {
				refused = true
			}
		}
	})
	h.env.RunFor(time.Minute)
	if !done {
		t.Fatal("operation did not finish")
	}
	if nn.InFlight() != 0 {
		t.Fatalf("InFlight = %d after quiesce", nn.InFlight())
	}
	_ = refused // refusal only observable if the drain raced the op; lifecycle still must end clean
	if err := nn.Decommission(); err != nil {
		t.Fatal(err)
	}
}
