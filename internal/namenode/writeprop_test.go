package namenode

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"
	"time"

	"hopsfscl/internal/ndb"
	"hopsfscl/internal/sim"
)

// --- batched vs serial write-path equivalence property tests ---

// fsOp is one step of a randomized namespace workload.
type fsOp struct {
	kind     string
	path, p2 string
	size     int64
	ns, ss   int64
}

// randomFSOps generates a deterministic op sequence over a small path
// universe: creates spanning the small-file threshold, recursive deletes,
// renames, and quota changes — every mutation shape that now stages through
// WriteBatch and commits in trains.
func randomFSOps(seed int64, n int) []fsOp {
	rng := rand.New(rand.NewSource(seed * 131))
	dir := func() string { return fmt.Sprintf("/t%d/s%d", rng.Intn(3), rng.Intn(3)) }
	ops := make([]fsOp, 0, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(6) {
		case 0:
			ops = append(ops, fsOp{kind: "mkdir", path: dir()})
		case 1:
			// Sizes straddle the 128 KB inline threshold: some creates add a
			// smallfiles row to the batch, some do not.
			ops = append(ops, fsOp{kind: "create",
				path: dir() + fmt.Sprintf("/f%d", rng.Intn(4)),
				size: int64(rng.Intn(200 << 10))})
		case 2:
			ops = append(ops, fsOp{kind: "delete", path: dir()})
		case 3:
			ops = append(ops, fsOp{kind: "rename", path: dir(), p2: dir()})
		case 4:
			ops = append(ops, fsOp{kind: "setQuota", path: fmt.Sprintf("/t%d", rng.Intn(3)),
				ns: int64(rng.Intn(50)), ss: int64(rng.Intn(1 << 20))})
		case 5:
			ops = append(ops, fsOp{kind: "quota", path: fmt.Sprintf("/t%d", rng.Intn(3))})
		}
	}
	return ops
}

// applyFSOp runs one op, returning its outcome (the error's message, or "").
func applyFSOp(p *sim.Proc, cl *Client, op fsOp) string {
	var err error
	switch op.kind {
	case "mkdir":
		err = cl.MkdirAll(p, op.path)
	case "create":
		err = cl.Create(p, op.path, op.size)
	case "delete":
		err = cl.Delete(p, op.path, true)
	case "rename":
		err = cl.Rename(p, op.path, op.p2)
	case "setQuota":
		err = cl.SetQuota(p, op.path, op.ns, op.ss)
	case "quota":
		_, err = cl.Quota(p, op.path)
	}
	if err != nil {
		return err.Error()
	}
	return ""
}

// dumpNamesystem renders the full committed metadata state — inodes,
// inline small-file payloads, quota records and updates — for comparison.
// Mtime is deliberately excluded: it records virtual time, and the batched
// path finishing operations earlier than the serial one is exactly the
// point, not a divergence.
func dumpNamesystem(ns *Namesystem) map[string]string {
	out := make(map[string]string)
	ns.inodes.ForEachCommitted(func(pk, key string, val ndb.Value) {
		ino, ok := val.(*Inode)
		if !ok {
			out["inodes|"+pk+"|"+key] = "corrupt"
			return
		}
		out["inodes|"+pk+"|"+key] = fmt.Sprintf("id=%d parent=%d name=%s dir=%v size=%d perm=%o owner=%s inline=%d qns=%d qss=%d blocks=%v",
			ino.ID, ino.Parent, ino.Name, ino.Dir, ino.Size, ino.Perm, ino.Owner,
			ino.InlineSize, ino.QuotaNS, ino.QuotaSS, ino.Blocks)
	})
	ns.smallfiles.ForEachCommitted(func(pk, key string, val ndb.Value) {
		out["smallfiles|"+pk+"|"+key] = fmt.Sprint(val)
	})
	ns.quotas.ForEachCommitted(func(pk, key string, val ndb.Value) {
		out["quotas|"+pk+"|"+key] = fmt.Sprintf("%+v", val)
	})
	return out
}

// TestPropWriteBatchedSerialEquivalence drives the same randomized op
// sequence through a batched and a serial (DisableWriteBatching) stack for
// each seed and requires identical outcomes: every operation returns the
// same result and the final committed state of all three metadata tables is
// identical. Coalescing rows into staging batches and commit trains must be
// invisible to the namespace.
func TestPropWriteBatchedSerialEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5, 6, 7} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ops := randomFSOps(seed, 60)
			run := func(serial bool) (map[string]string, []string) {
				h := newHarnessFull(t, seed,
					func(cfg *ndb.Config) { cfg.DisableWriteBatching = serial }, nil)
				cl := h.client(1)
				outcomes := make([]string, len(ops))
				h.run(t, func(p *sim.Proc) {
					for i, op := range ops {
						outcomes[i] = applyFSOp(p, cl, op)
					}
				})
				return dumpNamesystem(h.ns), outcomes
			}
			batchedState, batchedOut := run(false)
			serialState, serialOut := run(true)
			for i := range ops {
				if batchedOut[i] != serialOut[i] {
					t.Errorf("op %d %s %s: batched %q vs serial %q",
						i, ops[i].kind, ops[i].path, batchedOut[i], serialOut[i])
				}
			}
			if len(batchedState) != len(serialState) {
				t.Errorf("%d rows batched vs %d serial", len(batchedState), len(serialState))
			}
			for k, v := range serialState {
				if batchedState[k] != v {
					t.Errorf("row %s:\n  batched %q\n  serial  %q", k, batchedState[k], v)
				}
			}
			for k := range batchedState {
				if _, ok := serialState[k]; !ok {
					t.Errorf("row %s exists only in the batched state", k)
				}
			}
		})
	}
}

// TestPropWritesSafeUnderConcurrentMutation runs two writers on different
// NNs mutating the same subtrees — creates, recursive deletes, renames,
// quota changes — and then audits cross-table invariants that only hold if
// commit trains preserved multi-row atomicity: every inode row sits under
// its keyed parent/name, and the smallfiles table holds exactly one payload
// row per living inline file. Run under -race this also proves the batch
// fan-out and train spawning stay data-race free across NNs.
func TestPropWritesSafeUnderConcurrentMutation(t *testing.T) {
	for _, seed := range []int64{11, 12, 13, 14, 15} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			h := newHarnessCfg(t, seed, nil)
			a, b := h.client(1), h.client(2)
			rngA := rand.New(rand.NewSource(seed))
			rngB := rand.New(rand.NewSource(seed + 1000))

			writer := func(cl *Client, rng *rand.Rand, done *bool) func(p *sim.Proc) {
				return func(p *sim.Proc) {
					for i := 0; i < 40; i++ {
						d := fmt.Sprintf("/w%d", rng.Intn(3))
						switch rng.Intn(5) {
						case 0:
							_ = cl.MkdirAll(p, d+"/a/b")
						case 1:
							_ = cl.Create(p, d+fmt.Sprintf("/a/f%d", rng.Intn(3)), int64(rng.Intn(8<<10)))
						case 2:
							_ = cl.Delete(p, d+"/a", true)
						case 3:
							_ = cl.Rename(p, d+"/a", d+"/a2")
						case 4:
							_ = cl.SetQuota(p, d, int64(rng.Intn(100)), 0)
						}
						p.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
					}
					*done = true
				}
			}
			var doneA, doneB bool
			h.run(t, func(p *sim.Proc) {
				for i := 0; i < 3; i++ {
					if err := a.MkdirAll(p, fmt.Sprintf("/w%d/a", i)); err != nil {
						t.Error(err)
						return
					}
				}
			})
			if t.Failed() {
				return
			}
			h.env.Spawn("writer-a", writer(a, rngA, &doneA))
			h.env.Spawn("writer-b", writer(b, rngB, &doneB))
			h.env.RunFor(time.Minute)
			if !doneA || !doneB {
				t.Fatalf("writers did not finish: a=%v b=%v", doneA, doneB)
			}

			// Invariant 1: every inode row is keyed by its own parent/name.
			inline := make(map[string]int64)
			h.ns.inodes.ForEachCommitted(func(pk, key string, val ndb.Value) {
				ino, ok := val.(*Inode)
				if !ok {
					t.Errorf("non-inode value at %s|%s", pk, key)
					return
				}
				if key != inodeKey(ino.Parent, ino.Name) || pk != partKeyOf(ino.Parent, ino.Name) {
					t.Errorf("inode %d stored at (%s,%s), want (%s,%s)",
						ino.ID, pk, key, partKeyOf(ino.Parent, ino.Name), inodeKey(ino.Parent, ino.Name))
				}
				if !ino.Dir && ino.InlineSize > 0 {
					inline[partKey(ino.ID)] = ino.InlineSize
				}
			})
			// Invariant 2: the smallfiles table matches the living inline
			// files exactly — no orphaned payloads after deletes, no files
			// whose payload went missing mid-rename.
			seen := make(map[string]bool)
			h.ns.smallfiles.ForEachCommitted(func(pk, key string, val ndb.Value) {
				want, ok := inline[pk]
				if !ok {
					t.Errorf("orphan smallfiles row in partition %s", pk)
					return
				}
				if got, _ := val.(int64); got != want {
					t.Errorf("smallfiles row %s = %v, inode says %d", pk, val, want)
				}
				seen[pk] = true
			})
			for pk := range inline {
				if !seen[pk] {
					t.Errorf("inline file in partition %s lost its payload row", pk)
				}
			}
		})
	}
}

// --- quota behavior ---

func TestQuotaSetAndUsage(t *testing.T) {
	h := newHarness(t)
	cl := h.client(1)
	h.run(t, func(p *sim.Proc) {
		if err := cl.Mkdir(p, "/q"); err != nil {
			t.Error(err)
			return
		}
		if err := cl.SetQuota(p, "/q", 100, 1<<20); err != nil {
			t.Error(err)
			return
		}
		ino, err := cl.Stat(p, "/q")
		if err != nil || ino.QuotaNS != 100 || ino.QuotaSS != 1<<20 {
			t.Errorf("inode quota copy = %+v, %v", ino, err)
			return
		}
		// Nested quota: charges must reach every quota'd ancestor.
		if err := cl.Mkdir(p, "/q/sub"); err != nil {
			t.Error(err)
			return
		}
		if err := cl.SetQuota(p, "/q/sub", 10, 0); err != nil {
			t.Error(err)
			return
		}
		if err := cl.Create(p, "/q/sub/f1", 1000); err != nil {
			t.Error(err)
			return
		}
		if err := cl.Create(p, "/q/f2", 2000); err != nil {
			t.Error(err)
			return
		}
		info, err := cl.Quota(p, "/q")
		if err != nil {
			t.Error(err)
			return
		}
		if info.NS != 100 || info.SS != 1<<20 || info.UsedNS != 3 || info.UsedSS != 3000 {
			t.Errorf("Quota(/q) = %+v, want limits 100/%d used 3/3000", info, 1<<20)
		}
		sub, err := cl.Quota(p, "/q/sub")
		if err != nil || sub.NS != 10 || sub.UsedNS != 1 || sub.UsedSS != 1000 {
			t.Errorf("Quota(/q/sub) = %+v, %v, want NS 10 used 1/1000", sub, err)
		}
		// Recursive delete charges the whole subtree back as one aggregate.
		if err := cl.Delete(p, "/q/sub", true); err != nil {
			t.Error(err)
			return
		}
		info, err = cl.Quota(p, "/q")
		if err != nil || info.UsedNS != 1 || info.UsedSS != 2000 {
			t.Errorf("Quota(/q) after delete = %+v, %v, want used 1/2000", info, err)
		}
		// The dead directory's quota rows died with it.
		orphans := 0
		h.ns.quotas.ForEachCommitted(func(pk, _ string, _ ndb.Value) {
			if id, err := strconv.ParseUint(pk, 10, 64); err == nil && id != ino.ID {
				orphans++
			}
		})
		if orphans != 0 {
			t.Errorf("%d quota rows survived outside /q's partition", orphans)
		}
		// Clearing the quota deletes the authoritative record.
		if err := cl.SetQuota(p, "/q", 0, 0); err != nil {
			t.Error(err)
			return
		}
		info, err = cl.Quota(p, "/q")
		if err != nil || info.NS != 0 || info.SS != 0 {
			t.Errorf("Quota(/q) after clear = %+v, %v, want no limits", info, err)
		}
	})
}

func TestSetQuotaOnFileFails(t *testing.T) {
	h := newHarness(t)
	cl := h.client(1)
	h.run(t, func(p *sim.Proc) {
		if err := cl.Create(p, "/f", 0); err != nil {
			t.Error(err)
			return
		}
		if err := cl.SetQuota(p, "/f", 10, 0); err != ErrNotDir {
			t.Errorf("SetQuota on a file = %v, want ErrNotDir", err)
		}
	})
}

// --- small-file inline payload behavior ---

func TestSmallFileInlineRowLifecycle(t *testing.T) {
	h := newHarness(t)
	cl := h.client(1)
	h.run(t, func(p *sim.Proc) {
		if err := cl.Mkdir(p, "/d"); err != nil {
			t.Error(err)
			return
		}
		if err := cl.Create(p, "/d/small", 4096); err != nil {
			t.Error(err)
			return
		}
		ino, err := cl.Stat(p, "/d/small")
		if err != nil || ino.InlineSize != 4096 {
			t.Errorf("stat small file = %+v, %v, want InlineSize 4096", ino, err)
			return
		}
		rows := func() map[string]int64 {
			out := make(map[string]int64)
			h.ns.smallfiles.ForEachCommitted(func(pk, key string, val ndb.Value) {
				if key != smallFileKey {
					t.Errorf("unexpected smallfiles key %q", key)
				}
				out[pk], _ = val.(int64)
			})
			return out
		}
		if got := rows(); len(got) != 1 || got[partKey(ino.ID)] != 4096 {
			t.Errorf("smallfiles rows = %v, want one 4096-byte row in partition %s", got, partKey(ino.ID))
			return
		}
		if _, err := cl.ReadFile(p, "/d/small"); err != nil {
			t.Errorf("read inline file: %v", err)
			return
		}
		// The payload is keyed by the file's own inode id: a rename moves
		// the metadata row but must leave the data row untouched.
		if err := cl.Rename(p, "/d/small", "/d/moved"); err != nil {
			t.Error(err)
			return
		}
		if got := rows(); len(got) != 1 || got[partKey(ino.ID)] != 4096 {
			t.Errorf("smallfiles rows after rename = %v", got)
			return
		}
		if _, err := cl.ReadFile(p, "/d/moved"); err != nil {
			t.Errorf("read renamed inline file: %v", err)
			return
		}
		// Above the threshold no payload row is written.
		if err := cl.Create(p, "/d/big", 1<<20); err != nil {
			t.Error(err)
			return
		}
		if got := rows(); len(got) != 1 {
			t.Errorf("large create added a smallfiles row: %v", got)
			return
		}
		// Delete removes metadata and payload atomically.
		if err := cl.Delete(p, "/d/moved", false); err != nil {
			t.Error(err)
			return
		}
		if got := rows(); len(got) != 0 {
			t.Errorf("smallfiles rows after delete = %v, want none", got)
		}
	})
}
