package namenode

import (
	"fmt"
	"time"

	"hopsfscl/internal/shard"
	"hopsfscl/internal/sim"
	"hopsfscl/internal/simnet"
)

// electionRow is one NN's entry in the election table. Following [28]
// (leader election using NewSQL database systems) each metadata server
// updates its row every round; the lowest-id server with a fresh row is the
// leader. HopsFS-CL extends the row with the server's locationDomainId so
// clients can pick AZ-local servers (§IV-B3).
type electionRow struct {
	ID     int
	Domain simnet.ZoneID
	At     time.Duration
}

const electionPartKey = "e"

func electionKey(id int) string { return fmt.Sprintf("e/%05d", id) }

// electionLoop is the NN's heartbeat: write own row, read all rows, derive
// the leader and the active list.
func (nn *NameNode) electionLoop(p *sim.Proc) {
	// Stagger the first round so NNs don't phase-lock; a quarter round of
	// spread converges the initial view quickly.
	p.Sleep(time.Duration(p.Rand().Int63n(int64(nn.ns.cfg.ElectionRound / 4))))
	for !nn.ns.bgStop {
		if !nn.Alive() || nn.draining {
			// A draining server stops heartbeating so its election row
			// expires and peers drop it from the active list.
			return
		}
		nn.electionRound(p)
		p.Sleep(nn.ns.cfg.ElectionRound)
	}
}

func (nn *NameNode) electionRound(p *sim.Proc) {
	err := nn.runTxn(p, electionPartKey, func(tx *shard.Txn) error {
		row := &electionRow{ID: nn.ID, Domain: nn.Domain, At: p.Now()}
		if err := tx.Insert(nn.ns.election, electionPartKey, electionKey(nn.ID), row); err != nil {
			return err
		}
		kvs, err := tx.ScanPrefix(nn.ns.election, electionPartKey, "e/")
		if err != nil {
			return err
		}
		expiry := nn.ns.cfg.ElectionRound * 5 / 2
		leader := 0
		var active []ActiveNN
		sawSelf := false
		for _, kv := range kvs {
			r, ok := kv.Val.(*electionRow)
			if !ok {
				continue
			}
			if r.ID != nn.ID && p.Now()-r.At > expiry {
				continue
			}
			if r.ID == nn.ID {
				sawSelf = true
			}
			active = append(active, ActiveNN{ID: r.ID, Domain: r.Domain})
			if leader == 0 || r.ID < leader {
				leader = r.ID
			}
		}
		if !sawSelf {
			// The scan reads committed rows, so the round's own write is
			// not visible yet (first round): include ourselves.
			active = append(active, ActiveNN{ID: nn.ID, Domain: nn.Domain})
			if leader == 0 || nn.ID < leader {
				leader = nn.ID
			}
		}
		nn.leaderID = leader
		nn.active = active
		nn.lastRound = p.Now()
		return nil
	})
	// Election failures (storage failover in progress) are retried next
	// round; the previous view remains in effect meanwhile.
	_ = err
}

// IsLeader reports whether this NN currently believes it is the leader.
func (nn *NameNode) IsLeader() bool { return nn.Alive() && nn.leaderID == nn.ID }

// LeaderID returns the NN's current view of the leader's id.
func (nn *NameNode) LeaderID() int { return nn.leaderID }

// ActiveNameNodes returns the NN's current view of the active server list
// with their reported location domains.
func (nn *NameNode) ActiveNameNodes() []ActiveNN {
	out := make([]ActiveNN, len(nn.active))
	copy(out, nn.active)
	return out
}

// ElectedLeader returns the namesystem-wide elected leader according to
// the freshest NN views, or nil if no NN is alive.
func (ns *Namesystem) ElectedLeader() *NameNode {
	var best *NameNode
	for _, nn := range ns.nns {
		if !nn.Alive() {
			continue
		}
		if best == nil || nn.lastRound > best.lastRound {
			best = nn
		}
	}
	if best == nil {
		return nil
	}
	id := best.leaderID
	if id >= 1 && id <= len(ns.nns) && ns.nns[id-1].Alive() {
		return ns.nns[id-1]
	}
	return best
}

// StopBackground asks election loops (and client-visible housekeeping) to
// exit at their next tick so the simulation can quiesce.
func (ns *Namesystem) StopBackground() { ns.bgStop = true }
