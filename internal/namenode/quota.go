package namenode

import (
	"strconv"

	"hopsfscl/internal/ndb"
	"hopsfscl/internal/shard"
	"hopsfscl/internal/sim"
)

// Quota support, modeled on HopsFS's asynchronous quota system: each quota'd
// directory owns one authoritative limit row plus append-only usage-update
// rows in the quotas table, all partitioned by the directory's inode id.
// Mutations charge usage by inserting a uniquely keyed update row per quota'd
// ancestor instead of read-modify-writing a single hot counter row, so a busy
// quota'd directory never serializes its subtree's writers on one row lock.
// Usage reads fold the update rows on demand (HopsFS folds them in the
// background). Quotas here are advisory — recorded and queryable, not
// enforced at create time — which is all the write-path experiments need.
//
// Rename deliberately does not migrate usage between quota'd directories:
// moving a subtree across a quota boundary leaves the old charges in place,
// matching the level of fidelity of the rest of the model (HopsFS recomputes
// asynchronously; nothing downstream consumes cross-boundary moves).

// Row keys within a directory's quotas partition.
const (
	// smallFileKey is the single data row of an inline small file, in the
	// smallfiles table partition keyed by the file's own inode id.
	smallFileKey = "d"
	// quotaRecordKey is the authoritative QuotaRecord row of a directory.
	quotaRecordKey = "q"
	// quotaUpdatePrefix prefixes every QuotaUpdate row; the suffix encodes
	// the charging operation kind and subject inode for uniqueness.
	quotaUpdatePrefix = "u/"
)

// quotaUpdateKey builds the unique row key of one usage charge: kind is "c"
// (create) or "d" (delete), ino the inode the charge is about.
func quotaUpdateKey(kind string, ino uint64) string {
	return quotaUpdatePrefix + kind + strconv.FormatUint(ino, 10)
}

// quotaCharges returns one usage-update row per quota'd ancestor in chain.
// Every quota'd directory on the resolved path is charged — not just the
// nearest — so each quota's usage stays the true total of its whole subtree.
// The returned rows ride the caller's WriteBatch; an unquota'd path yields
// nil and costs nothing.
func (nn *NameNode) quotaCharges(chain []*Inode, kind string, ino uint64, ns, ss int64) []shard.BatchWrite {
	var items []shard.BatchWrite
	for _, anc := range chain {
		if anc.QuotaNS == 0 && anc.QuotaSS == 0 {
			continue
		}
		items = append(items, shard.BatchWrite{
			Table:   nn.ns.quotas,
			PartKey: partKey(anc.ID),
			Key:     quotaUpdateKey(kind, ino),
			Val:     &QuotaUpdate{NS: ns, SS: ss},
		})
	}
	return items
}

// SetQuota sets (or, with both limits zero, clears) a directory's namespace
// and storage-space quota. The directory inode (carrying the limit copies
// resolution reads) and the authoritative quota record update as one batched
// write.
func (nn *NameNode) SetQuota(p *sim.Proc, path string, nsQuota, ssQuota int64) error {
	comps, err := splitPath(path)
	if err != nil {
		return err
	}
	if len(comps) == 0 {
		return ErrInvalidPath
	}
	nn.charge(p, len(comps))
	nn.Ops++
	nn.annotate(p, path)
	return nn.runTxn(p, nn.hintFor(comps), func(tx *shard.Txn) error {
		parent, name, err := nn.resolveParent(tx, comps)
		if err != nil {
			return err
		}
		ino, err := nn.lockInode(tx, parent.ID, name, ndb.LockExclusive)
		if err != nil {
			return err
		}
		if !ino.Dir {
			return ErrNotDir
		}
		updated := *ino
		updated.QuotaNS = nsQuota
		updated.QuotaSS = ssQuota
		updated.Mtime = p.Now()
		quotaRow := shard.BatchWrite{Table: nn.ns.quotas, PartKey: partKey(ino.ID), Key: quotaRecordKey}
		if nsQuota == 0 && ssQuota == 0 {
			quotaRow.Del = true
		} else {
			quotaRow.Val = &QuotaRecord{NS: nsQuota, SS: ssQuota}
		}
		return tx.WriteBatch([]shard.BatchWrite{
			{Table: nn.ns.inodes, PartKey: partKeyOf(parent.ID, name), Key: inodeKey(parent.ID, name), Val: &updated},
			quotaRow,
		})
	})
}

// Quota returns a directory's quota limits and accumulated usage: the
// authoritative record plus the fold of its pending update rows, both served
// from the directory's own quotas partition (one partition-pruned scan).
func (nn *NameNode) Quota(p *sim.Proc, path string) (QuotaInfo, error) {
	comps, err := splitPath(path)
	if err != nil {
		return QuotaInfo{}, err
	}
	nn.charge(p, len(comps))
	nn.Ops++
	nn.annotate(p, path)
	var info QuotaInfo
	err = nn.runTxn(p, nn.hintFor(append(comps, "")), func(tx *shard.Txn) error {
		info = QuotaInfo{}
		chain, err := nn.resolveChain(tx, comps)
		if err != nil {
			return err
		}
		dir := chain[len(chain)-1]
		if !dir.Dir {
			return ErrNotDir
		}
		if v, ok, err := tx.ReadCommitted(nn.ns.quotas, partKey(dir.ID), quotaRecordKey); err != nil {
			return err
		} else if ok {
			if rec, ok := v.(*QuotaRecord); ok {
				info.NS, info.SS = rec.NS, rec.SS
			}
		}
		kvs, err := tx.ScanPrefix(nn.ns.quotas, partKey(dir.ID), quotaUpdatePrefix)
		if err != nil {
			return err
		}
		for _, kv := range kvs {
			if upd, ok := kv.Val.(*QuotaUpdate); ok {
				info.UsedNS += upd.NS
				info.UsedSS += upd.SS
			}
		}
		return nil
	})
	if err != nil {
		return QuotaInfo{}, err
	}
	return info, nil
}
