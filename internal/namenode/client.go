package namenode

import (
	"errors"
	"time"

	"hopsfscl/internal/blocks"
	"hopsfscl/internal/sim"
	"hopsfscl/internal/simnet"
	"hopsfscl/internal/trace"
)

// Wire sizes for client-NN RPCs.
const (
	rpcReqSize  = 256
	rpcRespSize = 512
)

// Client is a HopsFS-CL file system client. Per §II-A2 and §IV-B3: a client
// fetches the active metadata-server list from the leader, prefers a server
// with its own locationDomainId (falling back to a random one), sticks with
// it until it fails, and then selects a random surviving server.
type Client struct {
	ns     *Namesystem
	Node   *simnet.Node
	Domain simnet.ZoneID

	nn *NameNode

	// epoch is the re-balance epoch the sticky choice was made under; when
	// the serving set changes (Commission / Drain) the namesystem bumps its
	// epoch and every client re-picks lazily at its next operation.
	epoch int

	// Ops and LatencySum feed the benchmark harness.
	Ops        int64
	LatencySum time.Duration

	// span is the reusable root-span buffer for aggregate-mode tracing:
	// a client runs one operation at a time, so StartOpInto can overwrite
	// it per call instead of allocating.
	span trace.Span
}

// NewClient registers a client in the given zone. domain is its
// locationDomainId (ZoneUnset disables the AZ-local preference).
func (ns *Namesystem) NewClient(zone simnet.ZoneID, host simnet.HostID, domain simnet.ZoneID) *Client {
	return &Client{
		ns:     ns,
		Node:   ns.db.Net().NewNode("client", zone, host),
		Domain: domain,
	}
}

// CurrentNameNode returns the server the client is stuck to (nil before the
// first operation).
func (cl *Client) CurrentNameNode() *NameNode { return cl.nn }

// pick selects (or keeps) the client's metadata server.
func (cl *Client) pick(p *sim.Proc) (*NameNode, error) {
	if cl.nn != nil && cl.nn.Serving() && cl.epoch == cl.ns.balanceEpoch {
		return cl.nn, nil
	}
	cl.epoch = cl.ns.balanceEpoch
	leader := cl.ns.ElectedLeader()
	if leader == nil {
		return nil, ErrNoNameNodes
	}
	// Fetch the active-NN list from the leader. Serving it is an in-memory
	// read of the cached election view, so it is billed per entry rather
	// than as a full metadata operation: when a Commission or Drain bumps
	// the balance epoch, every client re-picks at its next call, and at
	// full-op cost that stampede would queue behind real work on the
	// leader's cores and show up as a latency spike the autoscaler then
	// chases.
	if !cl.travel(p, cl.Node, leader.Node, rpcReqSize) {
		return nil, ErrNoNameNodes
	}
	active := leader.ActiveNameNodes()
	leader.chargeList(p, len(active))
	if !cl.travel(p, leader.Node, cl.Node, rpcRespSize+16*len(active)) {
		return nil, ErrNoNameNodes
	}
	if len(active) == 0 {
		// Elections have not completed a round yet; the leader answers
		// with the statically configured server set.
		for _, nn := range cl.ns.nns {
			active = append(active, ActiveNN{ID: nn.ID, Domain: nn.Domain})
		}
	}
	var local, all []*NameNode
	for _, a := range active {
		if a.ID < 1 || a.ID > len(cl.ns.nns) {
			continue
		}
		nn := cl.ns.nns[a.ID-1]
		if !nn.Serving() {
			continue
		}
		all = append(all, nn)
		if cl.Domain != simnet.ZoneUnset && a.Domain == cl.Domain {
			local = append(local, nn)
		}
	}
	pool := local
	if len(pool) == 0 {
		pool = all
	}
	if len(pool) == 0 {
		// Every server in the leader's (possibly stale) view is dead:
		// fall back to the statically configured set, like a real client
		// falling back to its configured namenode list.
		for _, nn := range cl.ns.nns {
			if nn.Serving() {
				pool = append(pool, nn)
			}
		}
	}
	if len(pool) == 0 {
		return nil, ErrNoNameNodes
	}
	cl.nn = pool[p.Rand().Intn(len(pool))]
	return cl.nn, nil
}

func (cl *Client) travel(p *sim.Proc, from, to *simnet.Node, size int) bool {
	return cl.ns.db.Net().TravelDeferred(p, from, to, size, 2*time.Second)
}

// do runs one metadata RPC against the client's server, switching to a
// surviving server when the current one fails mid-call. op names the
// operation for the trace layer ("stat", "mkdir", ...): each call emits
// exactly one root span under that name.
func (cl *Client) do(p *sim.Proc, op string, reqExtra, respExtra int, fn func(nn *NameNode) error) error {
	return cl.doSized(p, op, reqExtra, func(nn *NameNode) (int, error) {
		return respExtra, fn(nn)
	})
}

// doSized is do with a response payload size determined by the handler
// (e.g. inline file bytes riding the reply).
func (cl *Client) doSized(p *sim.Proc, op string, reqExtra int, fn func(nn *NameNode) (int, error)) error {
	sp := cl.ns.tracer.StartOpInto(&cl.span, op, p.EffNow())
	var prev *trace.Span
	if sp != nil {
		prev = p.SetSpan(sp)
	}
	err := cl.rpc(p, reqExtra, fn)
	if sp != nil {
		p.SetSpan(prev)
		if err != nil {
			sp.SetError()
			if IsOutcomeError(err) {
				sp.SetBenign()
			}
		}
		sp.Finish(p.EffNow())
	}
	return err
}

// rpc is the uninstrumented RPC retry loop shared by all operations.
func (cl *Client) rpc(p *sim.Proc, reqExtra int, fn func(nn *NameNode) (int, error)) error {
	start := p.Now()
	for attempt := 0; attempt < 4; attempt++ {
		nn, err := cl.pick(p)
		if err != nil {
			return err
		}
		if !cl.travel(p, cl.Node, nn.Node, rpcReqSize+reqExtra) {
			cl.nn = nil
			continue
		}
		nn.inflight++
		respExtra, err := fn(nn)
		nn.inflight--
		if !cl.travel(p, nn.Node, cl.Node, rpcRespSize+respExtra) {
			cl.nn = nil
			continue
		}
		// Synchronize with the clock so the recorded end-to-end latency
		// includes every deferred hop and service time.
		p.Flush()
		cl.Ops++
		cl.LatencySum += p.Now() - start
		return err
	}
	return ErrNoNameNodes
}

// Exists reports whether a path resolves.
func (cl *Client) Exists(p *sim.Proc, path string) (bool, error) {
	_, err := cl.Stat(p, path)
	if errors.Is(err, ErrNotFound) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// Du returns the content summary of a subtree: file count, directory
// count, and total logical bytes (the HDFS getContentSummary operation,
// implemented as recursive partition-pruned scans in one transaction).
func (cl *Client) Du(p *sim.Proc, path string) (files, dirs int, bytes int64, err error) {
	err = cl.do(p, "contentSummary", 0, 0, func(nn *NameNode) error {
		var ierr error
		files, dirs, bytes, ierr = nn.ContentSummary(p, path)
		return ierr
	})
	return files, dirs, bytes, err
}

// Mkdir creates a directory.
func (cl *Client) Mkdir(p *sim.Proc, path string) error {
	return cl.do(p, "mkdir", 0, 0, func(nn *NameNode) error { return nn.Mkdir(p, path, 0o755) })
}

// MkdirAll creates a directory and any missing ancestors.
func (cl *Client) MkdirAll(p *sim.Proc, path string) error {
	comps, err := splitPath(path)
	if err != nil {
		return err
	}
	cur := ""
	for _, c := range comps {
		cur += "/" + c
		if err := cl.Mkdir(p, cur); err != nil && err != ErrExists {
			return err
		}
	}
	return nil
}

// Create creates an empty or small file (metadata-only operation).
func (cl *Client) Create(p *sim.Proc, path string, size int64) error {
	return cl.do(p, "create", int(size), 0, func(nn *NameNode) error {
		_, err := nn.Create(p, path, size)
		return err
	})
}

// WriteFile creates a file of the given size: small files travel inline to
// NDB with the metadata; large files are split into blocks and streamed
// through the block layer pipeline, then attached to the inode.
func (cl *Client) WriteFile(p *sim.Proc, path string, size int64) error {
	if size <= cl.ns.cfg.SmallFileThreshold || cl.ns.blockMgr == nil {
		return cl.Create(p, path, size)
	}
	if err := cl.Create(p, path, 0); err != nil {
		return err
	}
	mgr := cl.ns.blockMgr
	var ids []blocks.BlockID
	remaining := size
	for remaining > 0 {
		sz := min(remaining, mgr.BlockSize())
		b, err := mgr.WriteBlock(p, cl.Node, 0, sz)
		if err != nil {
			return err
		}
		ids = append(ids, b.ID)
		remaining -= sz
	}
	err := cl.do(p, "attachBlocks", 0, 0, func(nn *NameNode) error {
		return nn.AttachBlocks(p, path, ids, size)
	})
	if err != nil && !errors.Is(err, ErrNoNameNodes) && !errors.Is(err, ErrRetriesExhausted) {
		// The attach definitively failed (a namespace error, not a lost
		// response), so the streamed blocks can never be referenced:
		// release them now instead of waiting for orphan reclamation.
		for _, id := range ids {
			mgr.DeleteBlock(id)
		}
	}
	return err
}

// ReadFile reads a file: the metadata operation plus inline data or block
// streaming, preferring AZ-local block replicas. Inline small-file bytes
// ride the metadata response from the NN (§II-A3), so they are charged on
// that leg of the wire.
func (cl *Client) ReadFile(p *sim.Proc, path string) (*Inode, error) {
	var ino *Inode
	err := cl.doSized(p, "read", 0, func(nn *NameNode) (int, error) {
		got, err := nn.GetBlockLocations(p, path)
		if err != nil {
			return 0, err
		}
		ino = got
		return int(got.InlineSize), nil
	})
	if err != nil {
		return nil, err
	}
	if cl.ns.blockMgr != nil {
		for _, id := range ino.Blocks {
			if _, err := cl.ns.blockMgr.ReadBlock(p, cl.Node, id); err != nil {
				return nil, err
			}
		}
	}
	return ino, nil
}

// Stat returns metadata for a path.
func (cl *Client) Stat(p *sim.Proc, path string) (*Inode, error) {
	var out *Inode
	err := cl.do(p, "stat", 0, 0, func(nn *NameNode) error {
		got, err := nn.Stat(p, path)
		if err != nil {
			return err
		}
		out = got
		return nil
	})
	return out, err
}

// List returns a directory's children.
func (cl *Client) List(p *sim.Proc, path string) ([]*Inode, error) {
	var out []*Inode
	err := cl.do(p, "list", 0, 0, func(nn *NameNode) error {
		got, err := nn.List(p, path)
		if err != nil {
			return err
		}
		out = got
		return nil
	})
	return out, err
}

// Delete removes a path, reclaiming block replicas after the metadata
// transaction commits. Reclamation happens on the server side of the RPC
// (in HopsFS the NN queues invalidations as part of the delete), so a lost
// response cannot leave the replicas orphaned.
func (cl *Client) Delete(p *sim.Proc, path string, recursive bool) error {
	return cl.do(p, "delete", 0, 0, func(nn *NameNode) error {
		freed, err := nn.Delete(p, path, recursive)
		if err != nil {
			return err
		}
		if cl.ns.blockMgr != nil {
			for _, id := range freed {
				cl.ns.blockMgr.DeleteBlock(id)
			}
		}
		return nil
	})
}

// Rename atomically moves src to dst.
func (cl *Client) Rename(p *sim.Proc, src, dst string) error {
	return cl.do(p, "rename", 0, 0, func(nn *NameNode) error { return nn.Rename(p, src, dst) })
}

// SetPermission updates mode bits.
func (cl *Client) SetPermission(p *sim.Proc, path string, perm uint16) error {
	return cl.do(p, "setPermission", 0, 0, func(nn *NameNode) error { return nn.SetPermission(p, path, perm) })
}

// SetOwner updates ownership.
func (cl *Client) SetOwner(p *sim.Proc, path, owner string) error {
	return cl.do(p, "setOwner", 0, 0, func(nn *NameNode) error { return nn.SetOwner(p, path, owner) })
}

// SetQuota sets (or clears, with both limits zero) a directory's namespace
// and storage-space quota.
func (cl *Client) SetQuota(p *sim.Proc, path string, nsQuota, ssQuota int64) error {
	return cl.do(p, "setQuota", 0, 0, func(nn *NameNode) error { return nn.SetQuota(p, path, nsQuota, ssQuota) })
}

// Quota returns a directory's quota limits and accumulated usage.
func (cl *Client) Quota(p *sim.Proc, path string) (QuotaInfo, error) {
	var out QuotaInfo
	err := cl.do(p, "quota", 0, 0, func(nn *NameNode) error {
		got, err := nn.Quota(p, path)
		if err != nil {
			return err
		}
		out = got
		return nil
	})
	return out, err
}
