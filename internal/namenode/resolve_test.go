package namenode

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"hopsfscl/internal/ndb"
	"hopsfscl/internal/shard"
	"hopsfscl/internal/sim"
	"hopsfscl/internal/trace"
)

// --- hint cache unit tests ---

func TestHintCacheLRU(t *testing.T) {
	hc := newHintCache(3)
	hc.put("/a", 1)
	hc.put("/b", 2)
	hc.put("/c", 3)
	// Touch /a so /b is the least recently used, then overflow.
	if id, ok := hc.get("/a"); !ok || id != 1 {
		t.Fatalf("get /a = (%d,%v)", id, ok)
	}
	hc.put("/d", 4)
	if hc.len() != 3 {
		t.Fatalf("len = %d, want 3 (bounded)", hc.len())
	}
	if _, ok := hc.get("/b"); ok {
		t.Error("/b should have been evicted as LRU")
	}
	for path, want := range map[string]uint64{"/a": 1, "/c": 3, "/d": 4} {
		if id, ok := hc.get(path); !ok || id != want {
			t.Errorf("get %s = (%d,%v), want (%d,true)", path, id, ok, want)
		}
	}
	// Updating an existing key must not grow the cache.
	hc.put("/a", 11)
	if id, _ := hc.get("/a"); id != 11 || hc.len() != 3 {
		t.Errorf("after update: /a=%d len=%d", id, hc.len())
	}
}

func TestHintCacheInvalidatePrefix(t *testing.T) {
	hc := newHintCache(16)
	for path, id := range map[string]uint64{
		"/a": 1, "/a/b": 2, "/a/b/c": 3, "/ab": 4, "/z": 5,
	} {
		hc.put(path, id)
	}
	hc.invalidatePrefix("/a")
	for _, gone := range []string{"/a", "/a/b", "/a/b/c"} {
		if _, ok := hc.get(gone); ok {
			t.Errorf("%s should be invalidated", gone)
		}
	}
	// "/ab" shares the string prefix but is a different path: it stays.
	for path, want := range map[string]uint64{"/ab": 4, "/z": 5} {
		if id, ok := hc.get(path); !ok || id != want {
			t.Errorf("%s = (%d,%v), want (%d,true)", path, id, ok, want)
		}
	}
}

func TestHintCacheDisabled(t *testing.T) {
	hc := newHintCache(0)
	hc.put("/a", 1)
	if _, ok := hc.get("/a"); ok || hc.len() != 0 {
		t.Error("zero-capacity cache must drop every put")
	}
}

func TestHintCacheSizeGauge(t *testing.T) {
	reg := trace.NewRegistry()
	hc := newHintCache(8)
	hc.setGauge(reg.Gauge("namenode.resolve_cache.size", "nn", "nn-test"))
	hc.put("/a", 1)
	hc.put("/a/b", 2)
	g := reg.Gauge("namenode.resolve_cache.size", "nn", "nn-test")
	if g.Value() != 2 {
		t.Fatalf("gauge = %v, want 2", g.Value())
	}
	hc.invalidatePrefix("/a")
	if g.Value() != 0 {
		t.Fatalf("gauge after invalidate = %v, want 0", g.Value())
	}
}

// TestHintCacheBoundedInHarness drives a small configured bound through
// real operations: the per-NN cache never exceeds Config.HintCacheSize no
// matter how many directories are resolved.
func TestHintCacheBoundedInHarness(t *testing.T) {
	h := newHarnessCfg(t, 21, func(cfg *Config) { cfg.HintCacheSize = 4 })
	cl := h.client(1)
	h.run(t, func(p *sim.Proc) {
		for i := 0; i < 12; i++ {
			dir := fmt.Sprintf("/d%d/s", i)
			if err := cl.MkdirAll(p, dir); err != nil {
				t.Error(err)
				return
			}
			if _, err := cl.Stat(p, dir); err != nil {
				t.Error(err)
				return
			}
			if got := cl.CurrentNameNode().cache.len(); got > 4 {
				t.Errorf("cache grew to %d entries, bound is 4", got)
				return
			}
		}
	})
}

// --- invalidation regression tests ---

// TestRenameInvalidatesHintCache is the regression test for the stale-hint
// bug: renaming a directory must drop every hint under the old path on the
// serving NN, the new path must resolve correctly on the first try (no
// stale-cache fallback), and the old path must be gone.
func TestRenameInvalidatesHintCache(t *testing.T) {
	h := newHarness(t)
	reg := trace.NewRegistry()
	h.ns.SetTracer(trace.NewTracer(reg))
	cl := h.client(1)
	h.run(t, func(p *sim.Proc) {
		if err := cl.MkdirAll(p, "/proj/sub"); err != nil {
			t.Error(err)
			return
		}
		if err := cl.Create(p, "/proj/sub/f", 0); err != nil {
			t.Error(err)
			return
		}
		if _, err := cl.Stat(p, "/proj/sub/f"); err != nil {
			t.Error(err)
			return
		}
		nn := cl.CurrentNameNode()
		if _, ok := nn.cache.get("/proj/sub"); !ok {
			t.Error("hint for /proj/sub should be warm before the rename")
			return
		}
		if err := cl.Rename(p, "/proj/sub", "/moved"); err != nil {
			t.Error(err)
			return
		}
		for _, stale := range []string{"/proj/sub", "/proj/sub/f"} {
			if _, ok := nn.cache.get(stale); ok {
				t.Errorf("hint for %s survived the rename", stale)
			}
		}
		fallbacks := reg.Counter("namenode.resolve_cache", "result", "fallback").Value()
		ino, err := cl.Stat(p, "/moved/f")
		if err != nil || ino.Name != "f" {
			t.Errorf("stat new path: %+v, %v", ino, err)
		}
		if got := reg.Counter("namenode.resolve_cache", "result", "fallback").Value(); got != fallbacks {
			t.Errorf("resolving the new path needed %d stale-cache fallbacks, want 0", got-fallbacks)
		}
		if _, err := cl.Stat(p, "/proj/sub/f"); !errors.Is(err, ErrNotFound) {
			t.Errorf("old path still resolves: %v", err)
		}
	})
}

// TestDeleteInvalidatesHintCache: recursively deleting a directory drops
// the subtree's hints, and recreating the same paths resolves the new
// inodes.
func TestDeleteInvalidatesHintCache(t *testing.T) {
	h := newHarness(t)
	cl := h.client(1)
	h.run(t, func(p *sim.Proc) {
		if err := cl.MkdirAll(p, "/tmp/job/out"); err != nil {
			t.Error(err)
			return
		}
		if _, err := cl.Stat(p, "/tmp/job/out"); err != nil {
			t.Error(err)
			return
		}
		nn := cl.CurrentNameNode()
		oldID, ok := nn.cache.get("/tmp/job")
		if !ok {
			t.Error("hint for /tmp/job should be warm")
			return
		}
		if err := cl.Delete(p, "/tmp/job", true); err != nil {
			t.Error(err)
			return
		}
		for _, stale := range []string{"/tmp/job", "/tmp/job/out"} {
			if _, ok := nn.cache.get(stale); ok {
				t.Errorf("hint for %s survived the delete", stale)
			}
		}
		if err := cl.MkdirAll(p, "/tmp/job/out"); err != nil {
			t.Error(err)
			return
		}
		ino, err := cl.Stat(p, "/tmp/job/out")
		if err != nil || !ino.Dir {
			t.Errorf("stat recreated dir: %+v, %v", ino, err)
			return
		}
		if newID, ok := nn.cache.get("/tmp/job"); ok && newID == oldID {
			t.Error("recreated directory kept the deleted inode's hint id")
		}
	})
}

// --- batched vs serial equivalence property tests ---

// isNamespaceErr reports whether err is a final namespace answer (as
// opposed to a retriable transport/lock error the txn layer handles).
func isNamespaceErr(err error) bool {
	return errors.Is(err, ErrNotFound) || errors.Is(err, ErrNotDir)
}

// resolveBothWays resolves comps twice inside one transaction on nn —
// batched-first (the production resolveChain, primed by whatever the hint
// cache holds) then the reference serial walk — and returns both outcomes.
// Infrastructure errors (node down, lock timeout) propagate to runTxn so
// its abort/retry machinery stays in charge.
func resolveBothWays(p *sim.Proc, nn *NameNode, comps []string) (batched, serial []*Inode, berr, serr error) {
	txErr := nn.runTxn(p, nn.hintFor(comps), func(tx *shard.Txn) error {
		batched, berr = nn.resolveChain(tx, comps)
		if berr != nil && !isNamespaceErr(berr) {
			return berr
		}
		chain := make([]*Inode, 1, len(comps)+1)
		chain[0] = rootInode
		serial, serr = nn.walkFrom(tx, chain, comps)
		if serr != nil && !isNamespaceErr(serr) {
			return serr
		}
		return nil
	})
	if txErr != nil {
		berr, serr = txErr, txErr
	}
	return batched, serial, berr, serr
}

// chainIDs renders a chain for comparison and error messages.
func chainIDs(chain []*Inode) string {
	var b strings.Builder
	for _, ino := range chain {
		fmt.Fprintf(&b, "%d/", ino.ID)
	}
	return b.String()
}

// TestPropBatchedSerialEquivalence checks, across seeds, that optimistic
// batched resolution returns exactly what the serial walk returns — same
// chains, same errors — over a randomized namespace whose hint caches have
// been made arbitrarily stale by renames/deletes/recreations issued through
// a different NN, plus deliberately poisoned entries.
func TestPropBatchedSerialEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5, 6, 7} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runEquivalenceSeed(t, seed)
		})
	}
}

func runEquivalenceSeed(t *testing.T, seed int64) {
	h := newHarnessCfg(t, seed, nil)
	reg := trace.NewRegistry()
	h.ns.SetTracer(trace.NewTracer(reg))
	warmer := h.client(1)  // served by nn-1: its cache is the one under test
	mutator := h.client(2) // served by nn-2: nn-1 never sees these mutations
	rng := rand.New(rand.NewSource(seed))

	var paths []string
	h.run(t, func(p *sim.Proc) {
		// Random namespace, built and warmed through nn-1.
		depth := 2 + rng.Intn(4)
		for d := 0; d < 4; d++ {
			dir := fmt.Sprintf("/top%d", d)
			for lvl := 0; lvl < depth; lvl++ {
				dir = fmt.Sprintf("%s/d%d", dir, lvl)
			}
			if err := warmer.MkdirAll(p, dir); err != nil {
				t.Error(err)
				return
			}
			if err := warmer.Create(p, dir+"/leaf", 0); err != nil {
				t.Error(err)
				return
			}
			if _, err := warmer.Stat(p, dir+"/leaf"); err != nil {
				t.Error(err)
				return
			}
			paths = append(paths, dir+"/leaf", dir)
		}
		// Stale-making mutations through nn-2: renames, deletes,
		// recreations under the same names.
		for i := 0; i < 12; i++ {
			top := fmt.Sprintf("/top%d", rng.Intn(4))
			switch rng.Intn(3) {
			case 0:
				_ = mutator.Rename(p, top+"/d0", top+"/moved")
			case 1:
				_ = mutator.Delete(p, top+"/d0", true)
			case 2:
				_ = mutator.MkdirAll(p, top+"/d0/d1")
			}
		}
		// Deliberate poison: existing-path hints pointing at wrong inodes
		// force the verification fallback.
		nn1 := warmer.CurrentNameNode()
		nn1.cache.put("/top0", 999999)
		nn1.cache.put("/top1/d0", 424242)
		paths = append(paths, "/top0/d0/leaf", "/top1/d0/d1", "/nope/deep/path")

		fallbacksBefore := reg.Counter("namenode.resolve_cache", "result", "fallback").Value()
		for _, path := range paths {
			comps, err := splitPath(path)
			if err != nil {
				t.Fatalf("splitPath(%q): %v", path, err)
			}
			batched, serial, berr, serr := resolveBothWays(p, nn1, comps)
			if !errors.Is(berr, serr) && !errors.Is(serr, berr) {
				t.Errorf("%s: batched err %v, serial err %v", path, berr, serr)
				continue
			}
			if berr == nil && chainIDs(batched) != chainIDs(serial) {
				t.Errorf("%s: batched chain %s, serial chain %s", path, chainIDs(batched), chainIDs(serial))
			}
		}
		if got := reg.Counter("namenode.resolve_cache", "result", "fallback").Value(); got == fallbacksBefore {
			t.Error("poisoned hints never exercised the fallback path")
		}
	})
}

// TestPropResolutionSafeUnderConcurrentMutation runs resolutions on nn-1
// while a mutator renames/deletes/recreates the same subtrees through
// nn-2. Whatever interleaving happens, a resolution must either fail with
// a namespace error (ErrNotFound/ErrNotDir) or return a chain whose links
// are internally consistent — a stale cache may cost a retry, never a
// wrong answer.
func TestPropResolutionSafeUnderConcurrentMutation(t *testing.T) {
	for _, seed := range []int64{11, 12, 13, 14, 15} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runConcurrentSafetySeed(t, seed)
		})
	}
}

func runConcurrentSafetySeed(t *testing.T, seed int64) {
	h := newHarnessCfg(t, seed, nil)
	resolver := h.client(1)
	mutator := h.client(2)
	rng := rand.New(rand.NewSource(seed))

	// Seed the namespace and warm nn-1's cache.
	h.run(t, func(p *sim.Proc) {
		for d := 0; d < 3; d++ {
			dir := fmt.Sprintf("/w%d/a/b", d)
			if err := resolver.MkdirAll(p, dir); err != nil {
				t.Error(err)
				return
			}
			if err := resolver.Create(p, dir+"/f", 0); err != nil {
				t.Error(err)
				return
			}
			if _, err := resolver.Stat(p, dir+"/f"); err != nil {
				t.Error(err)
				return
			}
		}
	})
	if t.Failed() {
		return
	}

	mutDone := false
	h.env.Spawn("mutator", func(p *sim.Proc) {
		for i := 0; i < 40; i++ {
			d := fmt.Sprintf("/w%d", rng.Intn(3))
			switch rng.Intn(4) {
			case 0:
				_ = mutator.Rename(p, d+"/a", d+"/a2")
			case 1:
				_ = mutator.Rename(p, d+"/a2", d+"/a")
			case 2:
				_ = mutator.Delete(p, d+"/a", true)
			case 3:
				_ = mutator.MkdirAll(p, d+"/a/b")
			}
			p.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
		}
		mutDone = true
	})

	nn1 := resolver.CurrentNameNode()
	resDone := false
	h.env.Spawn("resolver", func(p *sim.Proc) {
		targets := []string{"/w0/a/b/f", "/w1/a/b/f", "/w2/a/b/f", "/w0/a/b", "/w1/a"}
		for i := 0; i < 60; i++ {
			path := targets[rng.Intn(len(targets))]
			comps, _ := splitPath(path)
			var chain []*Inode
			rerr := nn1.runTxn(p, nn1.hintFor(comps), func(tx *shard.Txn) error {
				c, err := nn1.resolveChain(tx, comps)
				if err != nil {
					return err
				}
				chain = c
				return nil
			})
			switch {
			case rerr == nil:
				if len(chain) != len(comps)+1 || chain[0].ID != RootID {
					t.Errorf("%s: malformed chain %s", path, chainIDs(chain))
					return
				}
				for i := 0; i < len(comps); i++ {
					if chain[i+1].Parent != chain[i].ID || chain[i+1].Name != comps[i] {
						t.Errorf("%s: broken link at %d: %+v under %+v", path, i, chain[i+1], chain[i])
						return
					}
				}
			case isNamespaceErr(rerr):
				// A concurrent delete/rename made the path vanish — the
				// serial walk could have seen exactly the same thing.
			case errors.Is(rerr, ErrRetriesExhausted) || errors.Is(rerr, ndb.ErrLockTimeout):
				// Lock contention with the mutator: acceptable, not a
				// correctness violation.
			default:
				t.Errorf("%s: unexpected resolution error %v", path, rerr)
				return
			}
			p.Sleep(time.Duration(rng.Intn(2)) * time.Millisecond)
		}
		resDone = true
	})
	h.env.RunFor(time.Minute)
	if !mutDone || !resDone {
		t.Fatalf("processes did not finish: mutator=%v resolver=%v", mutDone, resDone)
	}
}
