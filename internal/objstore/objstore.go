// Package objstore models a regional cloud object store (S3 / GCS / Azure
// Blob class): a blob service with per-zone front-end endpoints, regional
// replication handled internally by the provider, per-request latency, and
// an API request-rate limit (§VI notes these stores are "API-request
// rate-limited").
//
// It exists for the paper's stated future work (§VII): "integrate
// HopsFS-CL with native cloud storage as a block layer to make storage and
// inter-AZ networking costs competitive with native cloud object stores."
// The blocks package can use a Store as its block backend; see the
// ablation benchmark in the repository root.
package objstore

import (
	"errors"
	"fmt"
	"time"

	"hopsfscl/internal/sim"
	"hopsfscl/internal/simnet"
)

// Errors returned by the store.
var (
	// ErrNoSuchKey means the object does not exist.
	ErrNoSuchKey = errors.New("objstore: no such key")
	// ErrUnavailable means the regional service was unreachable.
	ErrUnavailable = errors.New("objstore: service unavailable")
)

// Config parameterizes the store.
type Config struct {
	// PutLatency / GetLatency are the service-side first-byte latencies
	// (cloud object stores answer in the tens of milliseconds).
	PutLatency time.Duration
	GetLatency time.Duration
	// RequestsPerSecond rate-limits the API per front-end endpoint; 0
	// disables limiting.
	RequestsPerSecond float64
	// Bandwidth bounds a single connection's transfer rate (bytes/second).
	Bandwidth float64
	// Durability replication inside the store is free for the client but
	// costs regional traffic: each PUT is fanned out to this many zones.
	ReplicationZones int
}

// DefaultConfig returns S3-standard-class numbers.
func DefaultConfig() Config {
	return Config{
		PutLatency:        20 * time.Millisecond,
		GetLatency:        12 * time.Millisecond,
		RequestsPerSecond: 5500, // S3 per-prefix GET limit order of magnitude
		Bandwidth:         1e9,  // ~1 GB/s per connection
		ReplicationZones:  3,
	}
}

// object is one stored blob (sizes only; content is out of scope).
type object struct {
	size int64
}

// Store is a regional object store with one front-end endpoint per AZ.
// Requests from a client are served by the client's zone-local endpoint;
// the store replicates internally across zones (the provider's cost, but
// the traffic is accounted like any other cross-AZ traffic, which is
// exactly the comparison the paper's future work is after).
type Store struct {
	env *sim.Env
	net *simnet.Network
	cfg Config

	endpoints map[simnet.ZoneID]*simnet.Node
	objects   map[string]object

	// rate is the shared API admission queue.
	rate *sim.Resource

	// Puts/Gets count API requests.
	Puts, Gets int64
}

// New builds a store with endpoints in the given zones.
func New(env *sim.Env, net *simnet.Network, cfg Config, zones []simnet.ZoneID, hostBase int) *Store {
	s := &Store{
		env:       env,
		net:       net,
		cfg:       cfg,
		endpoints: make(map[simnet.ZoneID]*simnet.Node, len(zones)),
		objects:   make(map[string]object),
	}
	for i, z := range zones {
		s.endpoints[z] = net.NewNode(fmt.Sprintf("objstore-%d", i+1), z, simnet.HostID(hostBase+i))
	}
	if cfg.RequestsPerSecond > 0 {
		s.rate = sim.NewResource(env, "objstore/api", 64)
	}
	return s
}

// endpoint returns the zone-local front end (any endpoint as fallback).
func (s *Store) endpoint(z simnet.ZoneID) *simnet.Node {
	if ep, ok := s.endpoints[z]; ok && ep.Alive() {
		return ep
	}
	for _, ep := range s.endpoints {
		if ep.Alive() {
			return ep
		}
	}
	return nil
}

// admit models the API rate limit as fluid service on the admission queue.
func (s *Store) admit(p *sim.Proc) {
	if s.rate == nil {
		return
	}
	perReq := time.Duration(float64(s.rate.Capacity()) / s.cfg.RequestsPerSecond * float64(time.Second))
	s.rate.UseDeferred(p, perReq)
}

// Put uploads an object of the given size from the client. The provider
// replicates it across ReplicationZones zones internally.
func (s *Store) Put(p *sim.Proc, client *simnet.Node, key string, size int64) error {
	ep := s.endpoint(client.Zone())
	if ep == nil {
		return ErrUnavailable
	}
	s.admit(p)
	if !s.net.TravelDeferred(p, client, ep, int(size)+256, 30*time.Second) {
		return ErrUnavailable
	}
	p.Defer(s.cfg.PutLatency + s.transferTime(size))
	// Internal durability fan-out: regional replication traffic between
	// the provider's zones.
	reps := 0
	for z, other := range s.endpoints {
		if z == ep.Zone() || reps >= s.cfg.ReplicationZones-1 {
			continue
		}
		s.net.Send(ep, other, int(size), "objstore-replicate")
		reps++
	}
	if !s.net.TravelDeferred(p, ep, client, 256, 30*time.Second) {
		return ErrUnavailable
	}
	s.objects[key] = object{size: size}
	s.Puts++
	return nil
}

// Get downloads an object to the client from its zone-local endpoint.
func (s *Store) Get(p *sim.Proc, client *simnet.Node, key string) (int64, error) {
	obj, ok := s.objects[key]
	if !ok {
		return 0, ErrNoSuchKey
	}
	ep := s.endpoint(client.Zone())
	if ep == nil {
		return 0, ErrUnavailable
	}
	s.admit(p)
	if !s.net.TravelDeferred(p, client, ep, 256, 30*time.Second) {
		return 0, ErrUnavailable
	}
	p.Defer(s.cfg.GetLatency + s.transferTime(obj.size))
	if !s.net.TravelDeferred(p, ep, client, int(obj.size)+256, 30*time.Second) {
		return 0, ErrUnavailable
	}
	s.Gets++
	return obj.size, nil
}

// transferTime is the per-connection streaming time for size bytes.
func (s *Store) transferTime(size int64) time.Duration {
	if s.cfg.Bandwidth <= 0 {
		return 0
	}
	return time.Duration(float64(size) / s.cfg.Bandwidth * float64(time.Second))
}

// Delete removes an object (idempotent, like the real APIs).
func (s *Store) Delete(key string) {
	delete(s.objects, key)
}

// Exists reports whether a key is stored.
func (s *Store) Exists(key string) bool {
	_, ok := s.objects[key]
	return ok
}

// Len returns the number of stored objects.
func (s *Store) Len() int { return len(s.objects) }

// FailZone takes a zone's endpoint down (requests fail over to others).
func (s *Store) FailZone(z simnet.ZoneID) {
	if ep, ok := s.endpoints[z]; ok {
		ep.Fail()
	}
}
