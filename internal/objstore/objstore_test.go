package objstore

import (
	"errors"
	"testing"
	"time"

	"hopsfscl/internal/sim"
	"hopsfscl/internal/simnet"
)

func testStore(t *testing.T) (*sim.Env, *simnet.Network, *Store) {
	t.Helper()
	env := sim.New(9)
	t.Cleanup(env.Close)
	net := simnet.New(env, simnet.USWest1())
	s := New(env, net, DefaultConfig(), []simnet.ZoneID{1, 2, 3}, 700)
	return env, net, s
}

func TestPutGetDeleteRoundTrip(t *testing.T) {
	env, net, s := testStore(t)
	client := net.NewNode("client", 2, 800)
	var gotSize int64
	var getErr error
	env.Spawn("io", func(p *sim.Proc) {
		if err := s.Put(p, client, "a/b", 1<<20); err != nil {
			t.Error(err)
			return
		}
		gotSize, getErr = s.Get(p, client, "a/b")
	})
	env.RunFor(time.Minute)
	if getErr != nil || gotSize != 1<<20 {
		t.Fatalf("get: %v size=%d", getErr, gotSize)
	}
	if !s.Exists("a/b") || s.Len() != 1 {
		t.Fatal("object not registered")
	}
	s.Delete("a/b")
	if s.Exists("a/b") {
		t.Fatal("object survived delete")
	}
	env.Spawn("missing", func(p *sim.Proc) {
		_, getErr = s.Get(p, client, "a/b")
	})
	env.RunFor(time.Minute)
	if !errors.Is(getErr, ErrNoSuchKey) {
		t.Fatalf("get deleted: %v", getErr)
	}
}

func TestGetLatencyIncludesServiceTime(t *testing.T) {
	env, net, s := testStore(t)
	client := net.NewNode("client", 1, 800)
	var dur time.Duration
	env.Spawn("io", func(p *sim.Proc) {
		if err := s.Put(p, client, "k", 1024); err != nil {
			t.Error(err)
			return
		}
		p.Flush()
		t0 := p.Now()
		if _, err := s.Get(p, client, "k"); err != nil {
			t.Error(err)
			return
		}
		p.Flush()
		dur = p.Now() - t0
	})
	env.RunFor(time.Minute)
	if dur < s.cfg.GetLatency {
		t.Fatalf("get took %v, below the service latency %v", dur, s.cfg.GetLatency)
	}
}

func TestPutReplicatesAcrossZones(t *testing.T) {
	env, net, s := testStore(t)
	client := net.NewNode("client", 1, 800)
	env.Spawn("io", func(p *sim.Proc) {
		if err := s.Put(p, client, "k", 4<<20); err != nil {
			t.Error(err)
		}
	})
	env.RunFor(time.Minute)
	// The provider's internal fan-out must have crossed AZ boundaries with
	// roughly 2 extra copies of the object.
	if got := net.CrossZoneBytes(); got < 2*(4<<20) {
		t.Fatalf("cross-zone replication traffic = %d, want >= %d", got, 2*(4<<20))
	}
}

func TestZoneLocalEndpointPreferred(t *testing.T) {
	env, net, s := testStore(t)
	client := net.NewNode("client", 3, 800)
	env.Spawn("io", func(p *sim.Proc) {
		if err := s.Put(p, client, "k", 1<<20); err != nil {
			t.Error(err)
			return
		}
		// Reset counters, then GET: the download must stay in zone 3.
		if _, err := s.Get(p, client, "k"); err != nil {
			t.Error(err)
		}
	})
	env.RunFor(time.Minute)
	ep := s.endpoints[3]
	if _, w := ep.NICBytes(); w < 1<<20 {
		t.Fatalf("zone-3 endpoint served %d bytes; GET not zone-local", w)
	}
}

func TestEndpointFailover(t *testing.T) {
	env, net, s := testStore(t)
	client := net.NewNode("client", 2, 800)
	s.FailZone(2)
	var err error
	env.Spawn("io", func(p *sim.Proc) {
		err = s.Put(p, client, "k", 1024)
	})
	env.RunFor(time.Minute)
	if err != nil {
		t.Fatalf("put after endpoint failure: %v", err)
	}
	if !s.Exists("k") {
		t.Fatal("object missing after failover")
	}
}

func TestAllEndpointsDownIsUnavailable(t *testing.T) {
	env, net, s := testStore(t)
	client := net.NewNode("client", 1, 800)
	for z := simnet.ZoneID(1); z <= 3; z++ {
		s.FailZone(z)
	}
	var err error
	env.Spawn("io", func(p *sim.Proc) {
		err = s.Put(p, client, "k", 1024)
	})
	env.RunFor(time.Minute)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("put with no endpoints: %v", err)
	}
}

func TestRateLimitQueuesRequests(t *testing.T) {
	env := sim.New(9)
	defer env.Close()
	net := simnet.New(env, simnet.USWest1())
	cfg := DefaultConfig()
	cfg.RequestsPerSecond = 100 // very tight: 10ms per request
	cfg.GetLatency = 0
	cfg.PutLatency = 0
	s := New(env, net, cfg, []simnet.ZoneID{1}, 700)
	client := net.NewNode("client", 1, 800)
	var done time.Duration
	env.Spawn("io", func(p *sim.Proc) {
		if err := s.Put(p, client, "k", 16); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 200; i++ {
			if _, err := s.Get(p, client, "k"); err != nil {
				t.Error(err)
				return
			}
		}
		p.Flush()
		done = p.Now()
	})
	env.RunFor(10 * time.Minute)
	// 201 requests at 100 req/s (64-way admission) must take well over the
	// raw network time.
	if done < 20*time.Millisecond {
		t.Fatalf("200 rate-limited requests finished in %v; limit not applied", done)
	}
}
