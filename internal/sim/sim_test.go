package sim

import (
	"testing"
	"time"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	env := New(1)
	defer env.Close()
	var woke time.Duration
	env.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		woke = p.Now()
	})
	env.Run()
	if woke != 5*time.Millisecond {
		t.Fatalf("woke at %v, want 5ms", woke)
	}
	if env.Now() != 5*time.Millisecond {
		t.Fatalf("env now %v, want 5ms", env.Now())
	}
}

func TestEventOrderingIsStableByTimeThenSeq(t *testing.T) {
	env := New(1)
	defer env.Close()
	var order []int
	env.At(2*time.Millisecond, func() { order = append(order, 2) })
	env.At(1*time.Millisecond, func() { order = append(order, 1) })
	env.At(2*time.Millisecond, func() { order = append(order, 3) })
	env.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestMailboxSendRecv(t *testing.T) {
	env := New(1)
	defer env.Close()
	mb := NewMailbox[int](env)
	var got []int
	env.Spawn("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, mb.Recv(p))
		}
	})
	env.Spawn("send", func(p *Proc) {
		mb.Send(10)
		p.Sleep(time.Millisecond)
		mb.Send(20)
		mb.Send(30)
	})
	env.Run()
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("got %v, want [10 20 30]", got)
	}
}

func TestMailboxRecvTimeoutFires(t *testing.T) {
	env := New(1)
	defer env.Close()
	mb := NewMailbox[int](env)
	var ok bool
	var at time.Duration
	env.Spawn("recv", func(p *Proc) {
		_, ok = mb.RecvTimeout(p, 3*time.Millisecond)
		at = p.Now()
	})
	env.Run()
	if ok {
		t.Fatal("recv succeeded, want timeout")
	}
	if at != 3*time.Millisecond {
		t.Fatalf("timed out at %v, want 3ms", at)
	}
}

func TestMailboxRecvTimeoutDelivery(t *testing.T) {
	env := New(1)
	defer env.Close()
	mb := NewMailbox[string](env)
	var v string
	var ok bool
	env.Spawn("recv", func(p *Proc) {
		v, ok = mb.RecvTimeout(p, 10*time.Millisecond)
	})
	env.After(time.Millisecond, func() { mb.Send("hello") })
	env.Run()
	if !ok || v != "hello" {
		t.Fatalf("got (%q,%v), want (hello,true)", v, ok)
	}
	// The cancelled timer must not fire into the process later.
	if env.Now() != 10*time.Millisecond && env.Now() != time.Millisecond {
		t.Fatalf("unexpected end time %v", env.Now())
	}
}

func TestMailboxFIFOAcrossWaiters(t *testing.T) {
	env := New(1)
	defer env.Close()
	mb := NewMailbox[int](env)
	var got [2]int
	env.Spawn("r1", func(p *Proc) { got[0] = mb.Recv(p) })
	env.Spawn("r2", func(p *Proc) { got[1] = mb.Recv(p) })
	env.After(time.Millisecond, func() { mb.Send(1); mb.Send(2) })
	env.Run()
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v, want [1 2]", got)
	}
}

func TestMailboxDrain(t *testing.T) {
	env := New(1)
	defer env.Close()
	mb := NewMailbox[int](env)
	for i := 0; i < 5; i++ {
		mb.Send(i)
	}
	if got := mb.Drain(3); len(got) != 3 || got[2] != 2 {
		t.Fatalf("drain(3) = %v", got)
	}
	if got := mb.Drain(0); len(got) != 2 {
		t.Fatalf("drain(0) = %v, want rest", got)
	}
	if mb.Len() != 0 {
		t.Fatalf("len = %d, want 0", mb.Len())
	}
}

func TestResourceSerializesContention(t *testing.T) {
	env := New(1)
	defer env.Close()
	res := NewResource(env, "cpu", 1)
	var ends []time.Duration
	for i := 0; i < 3; i++ {
		env.Spawn("worker", func(p *Proc) {
			res.Use(p, 1, 10*time.Millisecond)
			ends = append(ends, p.Now())
		})
	}
	env.Run()
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestResourceParallelismWithinCapacity(t *testing.T) {
	env := New(1)
	defer env.Close()
	res := NewResource(env, "cpu", 2)
	var ends []time.Duration
	for i := 0; i < 2; i++ {
		env.Spawn("worker", func(p *Proc) {
			res.Use(p, 1, 10*time.Millisecond)
			ends = append(ends, p.Now())
		})
	}
	env.Run()
	for _, e := range ends {
		if e != 10*time.Millisecond {
			t.Fatalf("ends = %v, want both 10ms", ends)
		}
	}
}

func TestResourceBusyIntegral(t *testing.T) {
	env := New(1)
	defer env.Close()
	res := NewResource(env, "cpu", 2)
	env.Spawn("worker", func(p *Proc) {
		res.Use(p, 1, 10*time.Millisecond)
		p.Sleep(10 * time.Millisecond)
		res.Use(p, 2, 5*time.Millisecond)
	})
	env.Run()
	// 1 unit * 10ms + 2 units * 5ms = 20ms unit-time.
	want := int64(20 * time.Millisecond)
	if got := res.BusyIntegral(); got != want {
		t.Fatalf("busy = %d, want %d", got, want)
	}
	util := res.Utilization(0, env.Now(), 0)
	// 20ms unit-time over capacity 2 * 25ms = 0.4.
	if util < 0.39 || util > 0.41 {
		t.Fatalf("util = %f, want 0.4", util)
	}
}

func TestResourceFIFONoBarging(t *testing.T) {
	env := New(1)
	defer env.Close()
	res := NewResource(env, "cpu", 2)
	var order []string
	env.Spawn("a", func(p *Proc) {
		res.Acquire(p, 2)
		p.Sleep(10 * time.Millisecond)
		res.Release(2)
		order = append(order, "a")
	})
	env.Spawn("big", func(p *Proc) {
		p.Sleep(time.Millisecond)
		res.Acquire(p, 2)
		order = append(order, "big")
		res.Release(2)
	})
	env.Spawn("small", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		res.Acquire(p, 1)
		order = append(order, "small")
		res.Release(1)
	})
	env.Run()
	if order[0] != "a" || order[1] != "big" || order[2] != "small" {
		t.Fatalf("order = %v, want [a big small]", order)
	}
}

func TestRunForStopsAndResumes(t *testing.T) {
	env := New(1)
	defer env.Close()
	ticks := 0
	env.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(time.Second)
			ticks++
		}
	})
	env.RunFor(3 * time.Second)
	if ticks != 3 {
		t.Fatalf("ticks = %d after 3s, want 3", ticks)
	}
	if env.Now() != 3*time.Second {
		t.Fatalf("now = %v, want 3s", env.Now())
	}
	env.RunFor(2 * time.Second)
	if ticks != 5 {
		t.Fatalf("ticks = %d after 5s, want 5", ticks)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int64 {
		env := New(42)
		defer env.Close()
		mb := NewMailbox[int64](env)
		var out []int64
		for i := 0; i < 4; i++ {
			env.Spawn("w", func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(time.Duration(p.Rand().Intn(1000)) * time.Microsecond)
					mb.Send(p.Rand().Int63n(1 << 30))
				}
			})
		}
		env.Spawn("collect", func(p *Proc) {
			for i := 0; i < 20; i++ {
				out = append(out, mb.Recv(p))
			}
		})
		env.Run()
		return out
	}
	a, b := run(), run()
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("lengths %d %d, want 20", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestCloseReleasesParkedProcesses(t *testing.T) {
	env := New(1)
	mb := NewMailbox[int](env)
	env.Spawn("stuck-recv", func(p *Proc) { mb.Recv(p) })
	env.Spawn("stuck-sleep", func(p *Proc) { p.Sleep(time.Hour) })
	res := NewResource(env, "r", 1)
	env.Spawn("holder", func(p *Proc) { res.Acquire(p, 1); p.Sleep(time.Hour) })
	env.Spawn("stuck-res", func(p *Proc) { p.Sleep(time.Millisecond); res.Acquire(p, 1) })
	env.RunFor(time.Second)
	env.Close()
	if env.nprocs != 0 {
		t.Fatalf("nprocs = %d after Close, want 0", env.nprocs)
	}
}

func TestSpawnFromRunningProcess(t *testing.T) {
	env := New(1)
	defer env.Close()
	var childRan bool
	env.Spawn("parent", func(p *Proc) {
		p.Env().Spawn("child", func(c *Proc) {
			c.Sleep(time.Millisecond)
			childRan = true
		})
		p.Sleep(2 * time.Millisecond)
	})
	env.Run()
	if !childRan {
		t.Fatal("child did not run")
	}
}

func TestYieldInterleavesFairly(t *testing.T) {
	env := New(1)
	defer env.Close()
	var order []string
	env.Spawn("a", func(p *Proc) {
		for i := 0; i < 2; i++ {
			order = append(order, "a")
			p.Yield()
		}
	})
	env.Spawn("b", func(p *Proc) {
		for i := 0; i < 2; i++ {
			order = append(order, "b")
			p.Yield()
		}
	})
	env.Run()
	want := []string{"a", "b", "a", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
