// Package sim provides a deterministic discrete-event simulation kernel.
//
// All higher layers (network, database, file system, benchmarks) run as
// cooperative processes on top of this kernel. Exactly one process executes
// at a time, time is virtual, and all scheduling decisions are totally
// ordered by (time, sequence number), so a simulation with a given seed is
// reproducible bit-for-bit.
//
// A process is an ordinary goroutine that blocks only through the kernel's
// primitives (Sleep, Mailbox.Recv, Resource.Acquire). The kernel parks the
// goroutine and resumes it when the corresponding virtual-time event fires.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"hopsfscl/internal/trace"
)

// Env is a simulation environment: a virtual clock, an event queue, and the
// set of processes that run against them. Create one with New, spawn
// processes with Spawn or Go, and drive it with Run or RunFor. Environments
// are not safe for concurrent use from multiple OS threads; all interaction
// must happen either before Run or from within simulation processes.
type Env struct {
	now    time.Duration
	seq    uint64
	events eventHeap
	ready  ring[*Proc]
	yield  chan struct{}
	rng    *rand.Rand
	closed bool
	nprocs int

	// freeEvents is the event free-list: fired and eagerly-removed events
	// are recycled here instead of being garbage, so the steady-state event
	// queue allocates nothing.
	freeEvents []*event

	// allParked tracks processes parked on mailboxes or resources (not on
	// timers) so Close can reach and kill them.
	allParked []*Proc

	// stopAt, when >= 0, bounds RunFor.
	stopAt time.Duration
}

// New returns a fresh simulation environment seeded with seed. Two
// environments with the same seed and the same spawned processes execute
// identically.
func New(seed int64) *Env {
	return &Env{
		yield:  make(chan struct{}),
		rng:    rand.New(rand.NewSource(seed)),
		stopAt: -1,
	}
}

// Now returns the current virtual time.
func (e *Env) Now() time.Duration { return e.now }

// Rand returns the environment's deterministic random source. It must only
// be used from the currently running process or from event callbacks, which
// the kernel already serializes.
func (e *Env) Rand() *rand.Rand { return e.rng }

// Spawn registers fn as a new process. The process starts the next time the
// scheduler runs (immediately at the current virtual time if called from a
// running process). The name is used in diagnostics only.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	if e.closed {
		panic("sim: Spawn on closed Env")
	}
	p := &Proc{env: e, name: name, resume: make(chan struct{})}
	e.nprocs++
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				if r != errKilled {
					panic(r)
				}
			}
			p.done = true
			e.nprocs--
			e.yield <- struct{}{}
		}()
		if !p.killed {
			fn(p)
		}
	}()
	e.ready.Push(p)
	return p
}

// Go is Spawn with an anonymous name.
func (e *Env) Go(fn func(p *Proc)) *Proc { return e.Spawn("proc", fn) }

// At schedules fn to run as an event callback at absolute virtual time t
// (clamped to now). Event callbacks run on the scheduler and must not block;
// they typically send to mailboxes or spawn processes.
func (e *Env) At(t time.Duration, fn func()) {
	if t < e.now {
		t = e.now
	}
	heap.Push(&e.events, e.newEvent(t, fn, nil))
}

// After schedules fn to run as an event callback after delay d.
func (e *Env) After(d time.Duration, fn func()) { e.At(e.now+d, fn) }

// Run drives the simulation until no process is runnable and no event is
// pending (quiescence). Processes blocked forever on empty mailboxes (e.g.
// servers) do not prevent quiescence.
func (e *Env) Run() {
	e.stopAt = -1
	e.loop()
}

// RunFor drives the simulation for d of virtual time (from the current
// instant) and then stops, leaving the environment resumable. The clock is
// advanced to exactly now+d even if the event queue empties earlier.
func (e *Env) RunFor(d time.Duration) {
	e.stopAt = e.now + d
	e.loop()
	if e.now < e.stopAt {
		e.now = e.stopAt
	}
	e.stopAt = -1
}

// Close kills every live process so their goroutines exit. The environment
// must not be used afterwards. It is safe to call Close multiple times.
func (e *Env) Close() {
	if e.closed {
		return
	}
	e.closed = true
	// Kill ready processes first, then any parked ones by letting their
	// wake-up events fire into killed procs. Parked procs not in the event
	// queue (mailbox/resource waiters) are tracked via allParked.
	for _, p := range e.allParked {
		p.killed = true
		p.parked = false
		e.ready.Push(p)
	}
	e.allParked = nil
	for e.ready.Len() > 0 {
		p := e.ready.Pop()
		if p.done {
			continue
		}
		p.killed = true
		e.resumeProc(p)
	}
	// Drain timer events whose procs are parked in the heap.
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.proc != nil && !ev.proc.done {
			ev.proc.killed = true
			e.resumeProc(ev.proc)
		}
	}
}

func (e *Env) loop() {
	for {
		for e.ready.Len() > 0 {
			p := e.ready.Pop()
			if p.done {
				continue
			}
			e.resumeProc(p)
		}
		if e.events.Len() == 0 {
			return
		}
		next := e.events[0].t
		if e.stopAt >= 0 && next > e.stopAt {
			return
		}
		e.now = next
		// Fire all events at this instant in sequence order. Each event is
		// recycled to the free-list once its effect has been captured; pure
		// timer wake-ups (ev.proc set, no fn) ready the process directly
		// without a per-Sleep closure.
		for e.events.Len() > 0 && e.events[0].t == e.now {
			ev := heap.Pop(&e.events).(*event)
			fn, p := ev.fn, ev.proc
			e.recycleEvent(ev)
			if p != nil {
				e.readyProc(p)
			} else if fn != nil {
				fn()
			}
		}
	}
}

// resumeProc hands control to p and waits until it parks or exits.
func (e *Env) resumeProc(p *Proc) {
	p.queued = false
	p.resume <- struct{}{}
	<-e.yield
}

// readyProc marks p runnable at the current instant.
func (e *Env) readyProc(p *Proc) {
	if p.done {
		return
	}
	if p.queued {
		panic("sim: proc readied twice: " + p.name)
	}
	p.queued = true
	e.ready.Push(p)
}

// event is one entry in the queue: a timer wake-up (proc set) or a callback
// (fn set). Events are pooled on Env.freeEvents; heapIdx tracks the event's
// position in the heap so a cancelled timer can be removed eagerly with
// heap.Remove instead of lingering as a tombstone until its deadline.
type event struct {
	t       time.Duration
	seq     uint64
	fn      func()
	proc    *Proc // set for pure timer wake-ups, so Close can find them
	heapIdx int   // position in Env.events, -1 when not queued
}

// newEvent takes an event from the free-list (or allocates one), stamps it
// with the next sequence number, and fills it in. The caller pushes it.
func (e *Env) newEvent(t time.Duration, fn func(), p *Proc) *event {
	e.seq++
	var ev *event
	if n := len(e.freeEvents); n > 0 {
		ev = e.freeEvents[n-1]
		e.freeEvents[n-1] = nil
		e.freeEvents = e.freeEvents[:n-1]
	} else {
		ev = &event{}
	}
	ev.t, ev.seq, ev.fn, ev.proc = t, e.seq, fn, p
	return ev
}

// recycleEvent clears an event no longer in the heap and returns it to the
// free-list. Clearing fn/proc matters: a pooled event must not pin a closure
// or a finished process.
func (e *Env) recycleEvent(ev *event) {
	ev.fn, ev.proc = nil, nil
	ev.heapIdx = -1
	e.freeEvents = append(e.freeEvents, ev)
}

// removeEvent eagerly deletes a still-queued event from the heap and
// recycles it: the cancellation path for timers whose wait was satisfied.
func (e *Env) removeEvent(ev *event) {
	if ev.heapIdx >= 0 {
		heap.Remove(&e.events, ev.heapIdx)
	}
	e.recycleEvent(ev)
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.heapIdx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.heapIdx = -1
	*h = old[:n-1]
	return ev
}
func (h eventHeap) String() string { return fmt.Sprintf("events(%d)", len(h)) }

var errKilled = fmt.Errorf("sim: process killed")

// pushEvent inserts an already-sequenced event into the queue.
func pushEvent(e *Env, ev *event) { heap.Push(&e.events, ev) }

// Proc is the handle a process uses to interact with the kernel. Each
// process receives its own Proc and must not use another process's.
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
	done   bool
	killed bool

	// pending is the accumulated deferred delay (see Defer).
	pending time.Duration

	// span is the process's active trace span: the annotation context that
	// instrumented layers (network hops, 2PC phases) attribute work to.
	// Nil when the process runs outside any traced operation.
	span *trace.Span

	// queued guards against double-insertion into the ready list.
	queued bool
	// parkedEntry, when non-nil, is this proc's entry in env.allParked.
	parkedIdx int
	parked    bool
}

// Env returns the environment this process runs in.
func (p *Proc) Env() *Env { return p.env }

// Name returns the process's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.env.now }

// Rand returns the deterministic random source.
func (p *Proc) Rand() *rand.Rand { return p.env.rng }

// Span returns the process's active trace span (nil when untraced).
func (p *Proc) Span() *trace.Span { return p.span }

// SetSpan installs s as the process's active trace span and returns the
// previously active one, so callers can restore it when their scope ends.
// Processes spawned on behalf of a traced operation (commit chains,
// fan-outs) inherit attribution by setting the parent's span explicitly.
func (p *Proc) SetSpan(s *trace.Span) (prev *trace.Span) {
	prev = p.span
	p.span = s
	return prev
}

// Defer adds d to the process's pending virtual delay without blocking.
// Pending delay represents work whose duration is already determined (an
// uncontended CPU service, a network hop): accumulating it and sleeping
// once at the next state-dependent point (Flush, a lock acquisition, a
// mailbox wait) is semantically equivalent for FIFO fluid resources and
// orders of magnitude cheaper than parking per step.
func (p *Proc) Defer(d time.Duration) {
	if d > 0 {
		p.pending += d
	}
}

// Pending returns the accumulated deferred delay.
func (p *Proc) Pending() time.Duration { return p.pending }

// EffNow returns the process's effective time: the virtual clock plus its
// pending deferred delay. Fluid resources schedule against effective time.
func (p *Proc) EffNow() time.Duration { return p.env.now + p.pending }

// Flush sleeps off any pending deferred delay, synchronizing the process's
// effective time with the virtual clock. Blocking primitives flush
// automatically.
func (p *Proc) Flush() {
	if p.pending > 0 {
		d := p.pending
		p.pending = 0
		p.Sleep(d)
	}
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	env := p.env
	heap.Push(&env.events, env.newEvent(env.now+d, nil, p))
	p.park()
}

// Yield lets other processes runnable at this instant execute before p
// continues.
func (p *Proc) Yield() {
	p.env.readyProc(p)
	p.park()
}

// park hands control back to the scheduler until the process is resumed.
func (p *Proc) park() {
	p.env.yield <- struct{}{}
	<-p.resume
	if p.killed {
		panic(errKilled)
	}
}

// parkTracked parks while registered in env.allParked so Close can kill the
// process even though no timer event references it.
func (p *Proc) parkTracked() {
	env := p.env
	p.parked = true
	p.parkedIdx = len(env.allParked)
	env.allParked = append(env.allParked, p)
	p.park()
}

// unparkTracked removes p from env.allParked (called by the waker before
// readying p).
func (e *Env) unparkTracked(p *Proc) {
	if !p.parked {
		return
	}
	last := len(e.allParked) - 1
	idx := p.parkedIdx
	e.allParked[idx] = e.allParked[last]
	e.allParked[idx].parkedIdx = idx
	e.allParked[last] = nil
	e.allParked = e.allParked[:last]
	p.parked = false
}
