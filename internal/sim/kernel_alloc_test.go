//go:build !race

package sim

import (
	"runtime"
	"testing"
	"time"
)

// Steady-state allocation ceilings for the kernel hot paths. The pooled
// event queue, ring mailboxes, and waiter free-lists make Sleep, Send/Recv,
// and RecvTimeout allocation-free once warm; these tests pin that with a
// hard ceiling so a regression (a new closure, a lost pool) fails CI
// rather than silently eroding throughput. Excluded under -race, whose
// instrumentation allocates.

// mallocsPerOp measures heap mallocs per iteration of a warmed-up
// simulation loop driven by fn(ops).
func mallocsPerOp(ops int, fn func(ops int)) float64 {
	fn(ops / 4) // warm pools
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	fn(ops)
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(ops)
}

func TestSleepAllocFree(t *testing.T) {
	env := New(1)
	defer env.Close()
	per := mallocsPerOp(20000, func(ops int) {
		env.Spawn("sleeper", func(p *Proc) {
			for i := 0; i < ops; i++ {
				p.Sleep(time.Microsecond)
			}
		})
		env.Run()
	})
	if per > 0.1 {
		t.Fatalf("Sleep allocates %.2f objects/op in steady state, want ~0", per)
	}
}

func TestMailboxPingPongAllocFree(t *testing.T) {
	env := New(1)
	defer env.Close()
	ping := NewMailbox[int](env)
	pong := NewMailbox[int](env)
	per := mallocsPerOp(10000, func(ops int) {
		env.Spawn("a", func(p *Proc) {
			for i := 0; i < ops; i++ {
				ping.Send(i)
				pong.Recv(p)
			}
		})
		env.Spawn("b", func(p *Proc) {
			for i := 0; i < ops; i++ {
				pong.Send(ping.Recv(p))
			}
		})
		env.Run()
	})
	// Two Sends, two Recvs, and the scheduling round trip per op.
	if per > 0.2 {
		t.Fatalf("mailbox ping-pong allocates %.2f objects/op in steady state, want ~0", per)
	}
}

func TestRecvTimeoutAllocFree(t *testing.T) {
	env := New(1)
	defer env.Close()
	mb := NewMailbox[int](env)
	per := mallocsPerOp(10000, func(ops int) {
		env.Spawn("w", func(p *Proc) {
			for i := 0; i < ops; i++ {
				// Alternate the tombstone path (satisfied long timeout) and
				// the expiry path.
				if i%2 == 0 {
					env.After(time.Microsecond, func() { mb.Send(1) })
					mb.RecvTimeout(p, time.Hour)
				} else {
					mb.RecvTimeout(p, time.Microsecond)
				}
			}
		})
		env.Run()
	})
	// The even iterations allocate one After closure each; the kernel side
	// (events, waiters, timers) must add nothing.
	if per > 1.1 {
		t.Fatalf("RecvTimeout allocates %.2f objects/op in steady state, want <= ~1 (caller closure)", per)
	}
}
