package sim

import "time"

// Mailbox is an unbounded FIFO queue connecting processes. Sends never
// block; receives block the calling process until a value arrives. A
// mailbox may have many senders and many receivers; waiting receivers are
// served in FIFO order.
type Mailbox[T any] struct {
	env     *Env
	q       []T
	waiters []*mboxWaiter[T]
}

type mboxWaiter[T any] struct {
	p        *Proc
	v        T
	got      bool
	timedOut bool
	timer    *event
}

// NewMailbox returns an empty mailbox bound to env.
func NewMailbox[T any](env *Env) *Mailbox[T] {
	return &Mailbox[T]{env: env}
}

// Send enqueues v, waking the oldest waiting receiver if any. Send may be
// called from processes or from event callbacks.
func (m *Mailbox[T]) Send(v T) {
	for len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		if w.got || w.timedOut {
			continue
		}
		w.v = v
		w.got = true
		if w.timer != nil {
			w.timer.cancelled = true
		}
		m.env.unparkTracked(w.p)
		m.env.readyProc(w.p)
		return
	}
	m.q = append(m.q, v)
}

// Recv blocks p until a value is available and returns it. Pending
// deferred delay is flushed first.
func (m *Mailbox[T]) Recv(p *Proc) T {
	p.Flush()
	if len(m.q) > 0 {
		v := m.q[0]
		m.q = m.q[1:]
		return v
	}
	w := &mboxWaiter[T]{p: p}
	m.waiters = append(m.waiters, w)
	p.parkTracked()
	return w.v
}

// RecvTimeout blocks p until a value arrives or d elapses. The second
// result reports whether a value was received. Pending deferred delay is
// flushed first.
func (m *Mailbox[T]) RecvTimeout(p *Proc, d time.Duration) (T, bool) {
	p.Flush()
	if len(m.q) > 0 {
		v := m.q[0]
		m.q = m.q[1:]
		return v, true
	}
	env := m.env
	w := &mboxWaiter[T]{p: p}
	env.seq++
	w.timer = &event{t: env.now + d, seq: env.seq}
	w.timer.fn = func() {
		if w.got || w.timedOut {
			return
		}
		w.timedOut = true
		env.unparkTracked(p)
		env.readyProc(p)
	}
	pushEvent(env, w.timer)
	m.waiters = append(m.waiters, w)
	p.parkTracked()
	if w.timedOut {
		var zero T
		return zero, false
	}
	return w.v, true
}

// TryRecv returns a value if one is queued, without blocking.
func (m *Mailbox[T]) TryRecv() (T, bool) {
	if len(m.q) == 0 {
		var zero T
		return zero, false
	}
	v := m.q[0]
	m.q = m.q[1:]
	return v, true
}

// Drain removes and returns up to max queued values without blocking. If
// max <= 0 the entire queue is drained.
func (m *Mailbox[T]) Drain(max int) []T {
	n := len(m.q)
	if max > 0 && max < n {
		n = max
	}
	if n == 0 {
		return nil
	}
	out := make([]T, n)
	copy(out, m.q[:n])
	m.q = m.q[n:]
	return out
}

// Len returns the number of queued (undelivered) values.
func (m *Mailbox[T]) Len() int { return len(m.q) }
