package sim

import "time"

// Mailbox is an unbounded FIFO queue connecting processes. Sends never
// block; receives block the calling process until a value arrives. A
// mailbox may have many senders and many receivers; waiting receivers are
// served in FIFO order.
//
// The queue is a ring buffer (dequeued slots are zeroed and reused, so
// delivered values are not retained) and waiters form an intrusive doubly
// linked list of pooled nodes: a timed-out waiter unlinks itself
// immediately and a wait satisfied by Send removes its timer from the
// event heap eagerly, so neither the waiter list nor the heap accumulates
// dead entries between rare sends.
type Mailbox[T any] struct {
	env *Env
	q   ring[T]

	// whead/wtail are the FIFO waiter list; free is the waiter free-list
	// (singly linked through next).
	whead, wtail *mboxWaiter[T]
	free         *mboxWaiter[T]
}

type mboxWaiter[T any] struct {
	p        *Proc
	v        T
	got      bool
	timedOut bool
	timer    *event
	next     *mboxWaiter[T]
	prev     *mboxWaiter[T]
	// timeoutFn is built once per node and captures the node itself, so a
	// pooled waiter's timeout schedules without allocating a closure. It is
	// only ever reachable from a timer event that is eagerly removed before
	// the node is recycled, so a reused node cannot receive a stale firing.
	timeoutFn func()
}

// NewMailbox returns an empty mailbox bound to env.
func NewMailbox[T any](env *Env) *Mailbox[T] {
	return &Mailbox[T]{env: env}
}

// newWaiter takes a waiter node for p from the free-list or allocates one.
func (m *Mailbox[T]) newWaiter(p *Proc) *mboxWaiter[T] {
	w := m.free
	if w != nil {
		m.free = w.next
		w.next = nil
		w.got, w.timedOut = false, false
	} else {
		w = &mboxWaiter[T]{}
		w.timeoutFn = func() {
			if w.got || w.timedOut {
				return
			}
			w.timedOut = true
			w.timer = nil // the event fired; the loop recycles it
			m.unlink(w)
			m.env.unparkTracked(w.p)
			m.env.readyProc(w.p)
		}
	}
	w.p = p
	return w
}

// recycleWaiter zeroes a node's value and process (so the pool retains
// neither) and returns it to the free-list. Only the owning process calls
// this, after it has read v/timedOut back out.
func (m *Mailbox[T]) recycleWaiter(w *mboxWaiter[T]) {
	var zero T
	w.v = zero
	w.p = nil
	w.next = m.free
	w.prev = nil
	m.free = w
}

// pushWaiter appends w at the tail of the waiter list.
func (m *Mailbox[T]) pushWaiter(w *mboxWaiter[T]) {
	w.prev = m.wtail
	if m.wtail != nil {
		m.wtail.next = w
	} else {
		m.whead = w
	}
	m.wtail = w
}

// unlink removes w from the waiter list (no-op if already removed).
func (m *Mailbox[T]) unlink(w *mboxWaiter[T]) {
	if w.prev != nil {
		w.prev.next = w.next
	} else if m.whead == w {
		m.whead = w.next
	} else {
		return // not linked
	}
	if w.next != nil {
		w.next.prev = w.prev
	} else if m.wtail == w {
		m.wtail = w.prev
	}
	w.next, w.prev = nil, nil
}

// Send enqueues v, waking the oldest waiting receiver if any. Send may be
// called from processes or from event callbacks.
func (m *Mailbox[T]) Send(v T) {
	for w := m.whead; w != nil; w = m.whead {
		m.unlink(w)
		if w.got || w.timedOut || w.p == nil || w.p.done {
			// Defensive: satisfied and timed-out waiters unlink themselves
			// eagerly, so live lists never contain them.
			continue
		}
		w.v = v
		w.got = true
		if w.timer != nil {
			m.env.removeEvent(w.timer)
			w.timer = nil
		}
		m.env.unparkTracked(w.p)
		m.env.readyProc(w.p)
		return
	}
	m.q.Push(v)
}

// Recv blocks p until a value is available and returns it. Pending
// deferred delay is flushed first.
func (m *Mailbox[T]) Recv(p *Proc) T {
	p.Flush()
	if m.q.Len() > 0 {
		return m.q.Pop()
	}
	w := m.newWaiter(p)
	m.pushWaiter(w)
	p.parkTracked()
	v := w.v
	m.recycleWaiter(w)
	return v
}

// RecvTimeout blocks p until a value arrives or d elapses. The second
// result reports whether a value was received. Pending deferred delay is
// flushed first.
func (m *Mailbox[T]) RecvTimeout(p *Proc, d time.Duration) (T, bool) {
	p.Flush()
	if m.q.Len() > 0 {
		return m.q.Pop(), true
	}
	env := m.env
	w := m.newWaiter(p)
	w.timer = env.newEvent(env.now+d, w.timeoutFn, nil)
	pushEvent(env, w.timer)
	m.pushWaiter(w)
	p.parkTracked()
	v, timedOut := w.v, w.timedOut
	m.recycleWaiter(w)
	if timedOut {
		var zero T
		return zero, false
	}
	return v, true
}

// TryRecv returns a value if one is queued, without blocking.
func (m *Mailbox[T]) TryRecv() (T, bool) {
	if m.q.Len() == 0 {
		var zero T
		return zero, false
	}
	return m.q.Pop(), true
}

// Drain removes and returns up to max queued values without blocking. If
// max <= 0 the entire queue is drained.
func (m *Mailbox[T]) Drain(max int) []T {
	n := m.q.Len()
	if max > 0 && max < n {
		n = max
	}
	if n == 0 {
		return nil
	}
	out := make([]T, n)
	for i := range out {
		out[i] = m.q.Pop()
	}
	return out
}

// Len returns the number of queued (undelivered) values.
func (m *Mailbox[T]) Len() int { return m.q.Len() }

// waiterCount returns the length of the live waiter list (test hook for
// the timed-out-waiter leak regression).
func (m *Mailbox[T]) waiterCount() int {
	n := 0
	for w := m.whead; w != nil; w = w.next {
		n++
	}
	return n
}
