package sim

import (
	"testing"
	"time"
)

func TestDeferAccumulatesAndFlushes(t *testing.T) {
	env := New(1)
	defer env.Close()
	var at, eff time.Duration
	env.Spawn("p", func(p *Proc) {
		p.Defer(3 * time.Millisecond)
		p.Defer(2 * time.Millisecond)
		eff = p.EffNow()
		p.Flush()
		at = p.Now()
	})
	env.Run()
	if eff != 5*time.Millisecond {
		t.Fatalf("EffNow = %v, want 5ms", eff)
	}
	if at != 5*time.Millisecond {
		t.Fatalf("flushed at %v, want 5ms", at)
	}
}

func TestDeferNegativeIgnored(t *testing.T) {
	env := New(1)
	defer env.Close()
	env.Spawn("p", func(p *Proc) {
		p.Defer(-time.Second)
		if p.Pending() != 0 {
			t.Errorf("pending = %v", p.Pending())
		}
	})
	env.Run()
}

func TestBlockingPrimitivesAutoFlush(t *testing.T) {
	env := New(1)
	defer env.Close()
	mb := NewMailbox[int](env)
	res := NewResource(env, "r", 1)
	var afterRecv, afterAcquire time.Duration
	env.Spawn("p", func(p *Proc) {
		p.Defer(4 * time.Millisecond)
		mb.Send(1)
		mb.Recv(p) // must flush the 4ms first
		afterRecv = p.Now()
		p.Defer(6 * time.Millisecond)
		res.Acquire(p, 1) // must flush the 6ms first
		afterAcquire = p.Now()
		res.Release(1)
	})
	env.Run()
	if afterRecv != 4*time.Millisecond {
		t.Fatalf("recv flushed at %v, want 4ms", afterRecv)
	}
	if afterAcquire != 10*time.Millisecond {
		t.Fatalf("acquire flushed at %v, want 10ms", afterAcquire)
	}
}

func TestUseDeferredUncontendedEqualsService(t *testing.T) {
	env := New(1)
	defer env.Close()
	res := NewResource(env, "cpu", 2)
	env.Spawn("p", func(p *Proc) {
		res.UseDeferred(p, 7*time.Millisecond)
		if p.Pending() != 7*time.Millisecond {
			t.Errorf("pending = %v, want 7ms", p.Pending())
		}
	})
	env.Run()
}

func TestUseDeferredQueuesInClockFrame(t *testing.T) {
	env := New(1)
	defer env.Close()
	res := NewResource(env, "cpu", 1)
	var d1, d2, d3 time.Duration
	env.Spawn("p", func(p *Proc) {
		// Three services on a single unit scheduled at clock time 0:
		// horizons 10, 20, 30ms.
		res.UseDeferred(p, 10*time.Millisecond)
		d1 = p.Pending()
		p2 := p // same proc: its own second use queues behind the first
		res.UseDeferred(p2, 10*time.Millisecond)
		d2 = p.Pending()
		p.Flush()
		// After flushing to t=20ms the unit is free again at the clock.
		res.UseDeferred(p, 10*time.Millisecond)
		d3 = p.Pending()
	})
	env.Run()
	if d1 != 10*time.Millisecond {
		t.Fatalf("first use pending %v, want 10ms", d1)
	}
	if d2 != 20*time.Millisecond {
		t.Fatalf("second use pending %v, want 20ms (queued behind first)", d2)
	}
	if d3 != 10*time.Millisecond {
		t.Fatalf("third use pending %v, want 10ms (horizon caught up)", d3)
	}
}

func TestUseDeferredCrossProcessQueueing(t *testing.T) {
	env := New(1)
	defer env.Close()
	res := NewResource(env, "cpu", 1)
	var dA, dB time.Duration
	env.Spawn("a", func(p *Proc) {
		res.UseDeferred(p, 10*time.Millisecond)
		dA = p.Pending()
	})
	env.Spawn("b", func(p *Proc) {
		// Scheduled at the same clock instant, after a: queues behind.
		res.UseDeferred(p, 10*time.Millisecond)
		dB = p.Pending()
	})
	env.Run()
	if dA != 10*time.Millisecond || dB != 20*time.Millisecond {
		t.Fatalf("pending a=%v b=%v, want 10ms/20ms", dA, dB)
	}
}

func TestBacklogReflectsClockFrameHorizon(t *testing.T) {
	env := New(1)
	defer env.Close()
	res := NewResource(env, "cpu", 1)
	env.Spawn("p", func(p *Proc) {
		if res.Backlog(p.Now()) != 0 {
			t.Error("fresh resource has backlog")
		}
		res.UseDeferred(p, 5*time.Millisecond)
		if got := res.Backlog(p.Now()); got != 5*time.Millisecond {
			t.Errorf("backlog = %v, want 5ms", got)
		}
		p.Flush()
		if got := res.Backlog(p.Now()); got != 0 {
			t.Errorf("backlog after horizon = %v, want 0", got)
		}
	})
	env.Run()
}

func TestFluidBusyCountsInUtilization(t *testing.T) {
	env := New(1)
	defer env.Close()
	res := NewResource(env, "cpu", 2)
	env.Spawn("p", func(p *Proc) {
		res.UseDeferred(p, 10*time.Millisecond)
		p.Flush()
	})
	env.Run()
	// 10ms of service on capacity 2 over a 10ms run = 50%.
	util := res.Utilization(0, env.Now(), 0)
	if util < 0.49 || util > 0.51 {
		t.Fatalf("util = %f, want 0.5", util)
	}
}

func TestMixedFluidAndBlockingDeterminism(t *testing.T) {
	run := func() time.Duration {
		env := New(3)
		defer env.Close()
		res := NewResource(env, "cpu", 2)
		mb := NewMailbox[int](env)
		for i := 0; i < 4; i++ {
			env.Spawn("w", func(p *Proc) {
				for j := 0; j < 10; j++ {
					res.UseDeferred(p, time.Duration(1+p.Rand().Intn(3))*time.Millisecond)
					if j%3 == 0 {
						p.Flush()
					}
				}
				p.Flush()
				mb.Send(1)
			})
		}
		env.Spawn("join", func(p *Proc) {
			for i := 0; i < 4; i++ {
				mb.Recv(p)
			}
		})
		env.Run()
		return env.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("mixed runs diverge: %v vs %v", a, b)
	}
}
