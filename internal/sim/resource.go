package sim

import "time"

// Resource models a pool of identical servers (CPU threads, disk spindles,
// link transmission slots). Processes Acquire units, hold them while doing
// virtual work, and Release them. The resource keeps a busy-time integral so
// callers can compute utilization over any window.
type Resource struct {
	env      *Env
	name     string
	capacity int
	inUse    int
	waiters  ring[resWaiter]

	// busy accumulates inUse * elapsed in unit-nanoseconds.
	busy       int64
	lastChange time.Duration

	// Fluid-service state (UseDeferred): per-unit busy horizons and the
	// scheduled-service integral.
	nextFree  []time.Duration
	fluidBusy int64
}

type resWaiter struct {
	p *Proc
	n int
}

// NewResource returns a resource with the given capacity (units > 0).
func NewResource(env *Env, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{env: env, name: name, capacity: capacity, lastChange: env.now}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int { return r.waiters.Len() }

// Acquire blocks p until n units (n <= capacity) are available and takes
// them. Waiters are served FIFO; a large request at the head blocks smaller
// requests behind it (no barging), which keeps service order deterministic.
func (r *Resource) Acquire(p *Proc, n int) {
	if n <= 0 {
		return
	}
	p.Flush()
	if n > r.capacity {
		panic("sim: acquire exceeds resource capacity: " + r.name)
	}
	if r.waiters.Len() == 0 && r.inUse+n <= r.capacity {
		r.account()
		r.inUse += n
		return
	}
	r.waiters.Push(resWaiter{p: p, n: n})
	p.parkTracked()
}

// Release returns n units and grants queued waiters in FIFO order.
func (r *Resource) Release(n int) {
	if n <= 0 {
		return
	}
	r.account()
	r.inUse -= n
	if r.inUse < 0 {
		panic("sim: resource over-released: " + r.name)
	}
	for r.waiters.Len() > 0 && r.inUse+r.waiters.Peek().n <= r.capacity {
		w := r.waiters.Pop()
		r.inUse += w.n
		r.env.unparkTracked(w.p)
		r.env.readyProc(w.p)
	}
}

// Use acquires n units, holds them for d of virtual time, and releases
// them. It is the common "do work costing d" idiom.
func (r *Resource) Use(p *Proc, n int, d time.Duration) {
	r.Acquire(p, n)
	p.Sleep(d)
	r.Release(n)
}

// UseDeferred schedules d of service on one unit of the resource starting
// at the caller's effective time, adding the resulting delay (queueing +
// service) to the process's pending accumulator instead of blocking. Units
// are modelled as fluid FIFO servers ordered by scheduling time, which is
// equivalent to Use for uncontended work and a faithful FIFO approximation
// under load, at a fraction of the scheduling cost.
//
// Fluid service and Acquire/Release may be mixed on one resource only if
// the caller accepts that fluid work does not see Acquire'd units.
func (r *Resource) UseDeferred(p *Proc, d time.Duration) {
	if d <= 0 {
		return
	}
	if r.nextFree == nil {
		r.nextFree = make([]time.Duration, r.capacity)
	}
	// Shared horizons live in the clock frame: committed work accumulates
	// against the virtual clock, never against a single process's effective
	// time, so processes running ahead cannot ratchet the queue for others.
	clock := r.env.now
	mi := 0
	for i, t := range r.nextFree {
		if t < r.nextFree[mi] {
			mi = i
		}
	}
	startClock := clock
	if r.nextFree[mi] > startClock {
		startClock = r.nextFree[mi]
	}
	r.nextFree[mi] = startClock + d
	r.fluidBusy += int64(d)
	// The caller's own service cannot start before its effective instant.
	eff := p.EffNow()
	start := startClock
	if eff > start {
		start = eff
	}
	p.Defer(start + d - eff)
}

// Backlog returns how far the least-loaded fluid unit's horizon extends
// past the virtual clock — the queueing delay the next UseDeferred would
// see. The argument is accepted for interface symmetry but the clock frame
// is authoritative.
func (r *Resource) Backlog(time.Duration) time.Duration {
	if r.nextFree == nil {
		return 0
	}
	mi := 0
	for i, t := range r.nextFree {
		if t < r.nextFree[mi] {
			mi = i
		}
	}
	if r.nextFree[mi] <= r.env.now {
		return 0
	}
	return r.nextFree[mi] - r.env.now
}

// BusyIntegral returns the cumulative busy time in unit-nanoseconds up to
// the current instant: the integral of InUse over time. Utilization over a
// window is (BusyIntegral delta) / (capacity * window).
func (r *Resource) BusyIntegral() int64 {
	r.account()
	return r.busy + r.fluidBusy
}

// Utilization returns the average fraction of capacity in use between
// virtual times from and to (both observed via BusyIntegral snapshots taken
// by the caller are preferred for windows; this is the from-zero helper).
func (r *Resource) Utilization(from, to time.Duration, busyAtFrom int64) float64 {
	if to <= from {
		return 0
	}
	delta := r.BusyIntegral() - busyAtFrom
	return float64(delta) / (float64(r.capacity) * float64(to-from))
}

func (r *Resource) account() {
	now := r.env.now
	if now > r.lastChange {
		r.busy += int64(r.inUse) * int64(now-r.lastChange)
		r.lastChange = now
	}
}
