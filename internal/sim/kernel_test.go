package sim

import (
	"fmt"
	"testing"
	"time"
)

// The tests in this file pin the kernel-internals overhaul: pooled events
// with eager timer cancellation, ring-buffer queues that release dequeued
// references, and the mailbox waiter list that cannot leak timed-out
// entries. Each regression here corresponds to a leak or tombstone bug in
// the pre-overhaul kernel.

// A timed-out waiter must unlink itself from the mailbox's waiter list the
// instant its timer fires — the old kernel left it linked until a future
// Send walked past it, so a mailbox that times out often but receives
// rarely accumulated dead waiters without bound.
func TestRecvTimeoutWaiterEagerlyRemoved(t *testing.T) {
	env := New(1)
	defer env.Close()
	mb := NewMailbox[int](env)
	const rounds = 50
	env.Spawn("poller", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			if _, ok := mb.RecvTimeout(p, time.Millisecond); ok {
				t.Error("unexpected receive")
			}
			if n := mb.waiterCount(); n != 0 {
				t.Errorf("round %d: %d waiters linked after timeout, want 0", i, n)
			}
		}
	})
	env.Run()
}

// A RecvTimeout satisfied by a Send must remove its deadline timer from
// the event heap immediately. The old kernel left a cancelled tombstone in
// the heap until the deadline, so a long-timeout wait satisfied early kept
// the simulation's event queue (and quiescence horizon) artificially deep:
// with eager removal this run quiesces at 1ms, not at the 1h deadline.
func TestCancelledTimerRemovedFromHeap(t *testing.T) {
	env := New(1)
	defer env.Close()
	mb := NewMailbox[int](env)
	env.Spawn("waiter", func(p *Proc) {
		v, ok := mb.RecvTimeout(p, time.Hour)
		if !ok || v != 7 {
			t.Errorf("got (%d, %v), want (7, true)", v, ok)
		}
	})
	env.At(time.Millisecond, func() { mb.Send(7) })
	env.Run()
	if env.Now() != time.Millisecond {
		t.Fatalf("quiesced at %v, want 1ms (cancelled timer retained in heap)", env.Now())
	}
	if env.events.Len() != 0 {
		t.Fatalf("%d events left in heap after quiescence", env.events.Len())
	}
}

// Dequeuing from the kernel's queues must release the dequeued reference:
// the old `q = q[1:]` idiom kept the backing array's head slots alive, so
// every value ever queued stayed reachable until the slice reallocated.
func TestDequeueReleasesReferences(t *testing.T) {
	env := New(1)
	defer env.Close()
	mb := NewMailbox[*int](env)
	env.Spawn("drive", func(p *Proc) {
		for i := 0; i < 4; i++ {
			v := i
			mb.Send(&v)
		}
		for i := 0; i < 4; i++ {
			if got := mb.Recv(p); *got != i {
				t.Errorf("recv %d, want %d", *got, i)
			}
		}
	})
	env.Run()
	for i, slot := range mb.q.buf {
		if slot != nil {
			t.Fatalf("mailbox ring slot %d still references a delivered value", i)
		}
	}
	for i, slot := range env.ready.buf {
		if slot != nil {
			t.Fatalf("ready ring slot %d still references a finished proc", i)
		}
	}
	// Resource waiter rings must release served waiters too.
	r := NewResource(env, "res", 1)
	done := 0
	for i := 0; i < 3; i++ {
		env.Spawn("user", func(p *Proc) {
			r.Use(p, 1, time.Millisecond)
			done++
		})
	}
	env.Run()
	if done != 3 {
		t.Fatalf("served %d resource users, want 3", done)
	}
	for i, w := range r.waiters.buf {
		if w.p != nil {
			t.Fatalf("resource waiter slot %d still references a proc", i)
		}
	}
}

// Close while a process is parked inside RecvTimeout must kill it cleanly:
// the proc's goroutine exits, nprocs drops to zero, and neither the waiter
// list nor the event heap panics on the dead entries.
func TestCloseDuringInflightRecvTimeout(t *testing.T) {
	env := New(1)
	mb := NewMailbox[int](env)
	env.Spawn("waiter", func(p *Proc) {
		mb.RecvTimeout(p, time.Hour)
		t.Error("killed waiter resumed past RecvTimeout")
	})
	env.RunFor(time.Millisecond)
	env.Close()
	if env.nprocs != 0 {
		t.Fatalf("%d procs alive after Close, want 0", env.nprocs)
	}
}

// A Send targeting a mailbox whose only waiter has been killed must not
// deliver to the dead proc: the defensive skip queues the value instead.
func TestSendAfterWaiterKilledQueuesValue(t *testing.T) {
	env := New(1)
	mb := NewMailbox[int](env)
	env.Spawn("waiter", func(p *Proc) {
		mb.Recv(p)
		t.Error("killed waiter resumed past Recv")
	})
	env.Run()
	env.Close()
	mb.Send(42)
	if mb.Len() != 1 {
		t.Fatalf("queued %d values, want 1", mb.Len())
	}
}

// kernelTrace runs a mixed workload — sleeps, timeouts satisfied and
// expired, event callbacks, cross-proc sends, RNG draws — and returns a
// trace of everything that happened. Two runs with one seed must be
// bit-identical: the event free-list and ring buffers are pure memory
// reuse and must not leak into scheduling.
func kernelTrace(seed int64) []string {
	env := New(seed)
	defer env.Close()
	var trace []string
	mb := NewMailbox[int](env)
	side := NewMailbox[int](env)
	env.Spawn("producer", func(p *Proc) {
		for i := 0; i < 20; i++ {
			p.Sleep(time.Duration(env.Rand().Intn(5)) * time.Millisecond)
			mb.Send(i)
			trace = append(trace, fmt.Sprintf("send %d @%v", i, p.Now()))
		}
	})
	env.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 20; i++ {
			v, ok := mb.RecvTimeout(p, 3*time.Millisecond)
			trace = append(trace, fmt.Sprintf("recv %d %v @%v", v, ok, p.Now()))
			if !ok {
				continue
			}
			side.Send(v * 2)
		}
	})
	env.Spawn("drain", func(p *Proc) {
		for {
			v, ok := side.RecvTimeout(p, 40*time.Millisecond)
			if !ok {
				return
			}
			trace = append(trace, fmt.Sprintf("side %d @%v", v, p.Now()))
		}
	})
	env.After(7*time.Millisecond, func() {
		trace = append(trace, fmt.Sprintf("cb @%v rng=%d", env.Now(), env.Rand().Intn(100)))
	})
	env.Run()
	trace = append(trace, fmt.Sprintf("end @%v", env.Now()))
	return trace
}

func TestPooledKernelDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		a := kernelTrace(seed)
		b := kernelTrace(seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: trace lengths differ: %d vs %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: traces diverge at %d: %q vs %q", seed, i, a[i], b[i])
			}
		}
	}
}

// The event free-list must actually bound allocation: a steady-state
// sleep/timeout loop reuses pooled events rather than growing the heap or
// the pool. This asserts pool behavior structurally (the alloc ceiling
// itself is asserted in kernel_alloc_test.go, which needs -race off).
func TestEventPoolReuse(t *testing.T) {
	env := New(1)
	defer env.Close()
	mb := NewMailbox[int](env)
	env.Spawn("loop", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(time.Millisecond)
			mb.RecvTimeout(p, time.Millisecond)
		}
	})
	env.Run()
	if n := len(env.freeEvents); n == 0 || n > 8 {
		t.Fatalf("free-list holds %d events after steady-state loop, want a small nonzero pool", n)
	}
	if env.events.Len() != 0 {
		t.Fatalf("%d events still queued after quiescence", env.events.Len())
	}
}
