package sim

// ring is a growable FIFO queue backed by a circular buffer. Unlike the
// `q = append(q, v); q = q[1:]` idiom it replaces, dequeuing zeroes the
// vacated slot and reuses it, so the backing array neither retains
// references to delivered values nor grows without bound under steady
// churn. The zero value is an empty ring.
type ring[T any] struct {
	buf  []T // len(buf) is always 0 or a power of two
	head int
	n    int
}

// Len returns the number of queued values.
func (r *ring[T]) Len() int { return r.n }

// Push appends v at the tail.
func (r *ring[T]) Push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// Pop removes and returns the head value, zeroing its slot. It panics on an
// empty ring; callers check Len first.
func (r *ring[T]) Pop() T {
	if r.n == 0 {
		panic("sim: pop from empty ring")
	}
	var zero T
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// Peek returns the head value without removing it.
func (r *ring[T]) Peek() T {
	if r.n == 0 {
		panic("sim: peek at empty ring")
	}
	return r.buf[r.head]
}

// grow doubles the backing buffer, compacting the live values to the front.
func (r *ring[T]) grow() {
	cap := len(r.buf) * 2
	if cap == 0 {
		cap = 8
	}
	buf := make([]T, cap)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}
